//! # mfcsl — model-checking mean-field models
//!
//! A reproduction of *“A logic for model-checking mean-field models”*
//! (Kolesnichenko, de Boer, Remke, Haverkort — DSN 2013). This facade crate
//! re-exports the public API of the workspace:
//!
//! * [`math`] — dense linear algebra, root finding, interval sets;
//! * [`ode`] — initial-value ODE solvers with dense output and events;
//! * [`ctmc`] — continuous-time Markov chain substrate;
//! * [`csl`] — CSL model checking on homogeneous and time-inhomogeneous
//!   chains;
//! * [`core`] — mean-field models and the MF-CSL logic (the paper's
//!   contribution);
//! * [`sim`] — finite-`N` baselines: exact simulation and the explicit
//!   lumped CTMC;
//! * [`models`] — ready-made example models, including the paper's
//!   virus-spread running example.
//!
//! # Quickstart
//!
//! ```
//! use mfcsl::core::mfcsl::parse_formula;
//! use mfcsl::core::Occupancy;
//! use mfcsl::models::virus;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's running example (Fig. 2, Table II Setting 1).
//! let model = virus::model(virus::setting_1(), virus::InfectionLaw::SmartVirus)?;
//! let m0 = Occupancy::new(vec![0.8, 0.15, 0.05])?;
//!
//! // "the expected probability that a random computer goes from
//! //  not-infected to infected within 1 time unit is below 30%"
//! let psi = parse_formula("EP{<0.3}[ not_infected U[0,1] infected ]")?;
//! let checker = mfcsl::core::mfcsl::Checker::new(&model);
//! let verdict = checker.check(&psi, &m0)?;
//! assert!(verdict.holds());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use mfcsl_core as core;
pub use mfcsl_csl as csl;
pub use mfcsl_ctmc as ctmc;
pub use mfcsl_math as math;
pub use mfcsl_models as models;
pub use mfcsl_ode as ode;
pub use mfcsl_sim as sim;
