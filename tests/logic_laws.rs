//! Property-based integration tests: logical laws of MF-CSL and CSL that
//! must hold for *any* model, occupancy and formula — checked on randomly
//! generated inputs spanning the whole pipeline.

use mfcsl::core::mfcsl::{Checker, MfFormula};
use mfcsl::core::{LocalModel, Occupancy};
use mfcsl::csl::{Comparison, PathFormula, StateFormula, TimeInterval, Tolerances};
use proptest::prelude::*;

/// A random 3-state model with occupancy-coupled rates, parameterized so
/// rates stay bounded and smooth.
fn arb_model() -> impl Strategy<Value = LocalModel> {
    (proptest::collection::vec(0.05_f64..2.0, 6), 0.0_f64..1.5).prop_map(|(rates, coupling)| {
        let (r0, r2) = (rates[0], rates[2]);
        LocalModel::builder()
            .state("a", ["low"])
            .state("b", ["mid"])
            .state("c", ["high"])
            .transition("a", "b", move |m: &Occupancy| r0 + coupling * m[2])
            .expect("no self-loop")
            .constant_transition("b", "a", rates[1])
            .expect("valid")
            .transition("b", "c", move |m: &Occupancy| r2 + coupling * m[0])
            .expect("no self-loop")
            .constant_transition("c", "b", rates[3])
            .expect("valid")
            .constant_transition("c", "a", rates[4])
            .expect("valid")
            .constant_transition("a", "c", rates[5])
            .expect("valid")
            .build()
            .expect("valid model")
    })
}

fn arb_occupancy() -> impl Strategy<Value = Occupancy> {
    proptest::collection::vec(0.01_f64..1.0, 3)
        .prop_map(|v| Occupancy::project(v).expect("positive entries"))
}

fn arb_cmp() -> impl Strategy<Value = Comparison> {
    prop_oneof![
        Just(Comparison::Le),
        Just(Comparison::Lt),
        Just(Comparison::Gt),
        Just(Comparison::Ge),
    ]
}

/// A small random MF-CSL formula over the `low`/`mid`/`high` alphabet.
fn arb_formula() -> impl Strategy<Value = MfFormula> {
    let atom = prop_oneof![Just("low"), Just("mid"), Just("high")];
    let leaf = (arb_cmp(), 0.05_f64..0.95, atom.clone(), proptest::bool::ANY)
        .prop_map(|(cmp, p, ap, use_until)| {
            if use_until {
                MfFormula::expect_path(
                    cmp,
                    p,
                    PathFormula::until(
                        StateFormula::True,
                        TimeInterval::bounded_by(1.0).expect("valid"),
                        StateFormula::ap(ap),
                    ),
                )
                .expect("valid bound")
            } else {
                MfFormula::expect(cmp, p, StateFormula::ap(ap)).expect("valid bound")
            }
        })
        .boxed();
    (leaf.clone(), leaf, proptest::bool::ANY).prop_map(
        |(a, b, conj)| {
            if conj {
                a.and(b)
            } else {
                a.or(b)
            }
        },
    )
}

fn fast() -> Tolerances {
    Tolerances::fast()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Excluded middle: exactly one of Ψ and ¬Ψ holds.
    #[test]
    fn prop_excluded_middle(model in arb_model(), m0 in arb_occupancy(), psi in arb_formula()) {
        let checker = Checker::with_tolerances(&model, fast());
        let v = checker.check(&psi, &m0).unwrap();
        let vn = checker.check(&psi.clone().not(), &m0).unwrap();
        prop_assert_ne!(v.holds(), vn.holds());
    }

    /// De Morgan on verdicts: ¬(A ∧ B) ⇔ ¬A ∨ ¬B.
    #[test]
    fn prop_de_morgan_verdicts(
        model in arb_model(),
        m0 in arb_occupancy(),
        a in arb_formula(),
        b in arb_formula(),
    ) {
        let checker = Checker::with_tolerances(&model, fast());
        let lhs = checker
            .check(&a.clone().and(b.clone()).not(), &m0)
            .unwrap()
            .holds();
        let rhs = checker
            .check(&a.clone().not().or(b.clone().not()), &m0)
            .unwrap()
            .holds();
        prop_assert_eq!(lhs, rhs);
    }

    /// cSat respects boolean structure pointwise along the window.
    #[test]
    fn prop_csat_pointwise(
        model in arb_model(),
        m0 in arb_occupancy(),
        a in arb_formula(),
        b in arb_formula(),
    ) {
        let checker = Checker::with_tolerances(&model, fast());
        let theta = 4.0;
        let ca = checker.csat(&a, &m0, theta).unwrap();
        let cb = checker.csat(&b, &m0, theta).unwrap();
        let cand = checker.csat(&a.clone().and(b.clone()), &m0, theta).unwrap();
        let cor = checker.csat(&a.clone().or(b.clone()), &m0, theta).unwrap();
        // Sample away from interval endpoints (numerical crossing location
        // can differ by the root tolerance between runs).
        for i in 0..=16 {
            let t = theta * i as f64 / 16.0;
            let near_edge = [&ca, &cb, &cand, &cor].iter().any(|s| {
                s.intervals().iter().any(|iv| {
                    (iv.lo().value - t).abs() < 1e-3 || (iv.hi().value - t).abs() < 1e-3
                })
            });
            if near_edge {
                continue;
            }
            prop_assert_eq!(cand.contains(t), ca.contains(t) && cb.contains(t), "AND at t = {}", t);
            prop_assert_eq!(cor.contains(t), ca.contains(t) || cb.contains(t), "OR at t = {}", t);
        }
    }

    /// The verdict at m̄ agrees with cSat membership at t = 0.
    #[test]
    fn prop_check_is_csat_at_zero(
        model in arb_model(),
        m0 in arb_occupancy(),
        psi in arb_formula(),
    ) {
        let checker = Checker::with_tolerances(&model, fast());
        let v = checker.check(&psi, &m0).unwrap();
        if v.is_marginal() {
            // Within numerical noise of a bound: membership at 0 may
            // legitimately differ between the two computations.
            return Ok(());
        }
        let cs = checker.csat(&psi, &m0, 0.0).unwrap();
        prop_assert_eq!(v.holds(), cs.contains(0.0));
    }

    /// Until probabilities are monotone in the time bound and within [0,1].
    #[test]
    fn prop_until_monotone_in_bound(
        model in arb_model(),
        m0 in arb_occupancy(),
        t1 in 0.2_f64..1.0,
    ) {
        let sol = mfcsl::core::meanfield::solve(
            &model, &m0, 2.0 * t1, &fast().ode,
        ).unwrap();
        let tv = sol.local_tv_model().unwrap();
        let checker = mfcsl::csl::checker::InhomogeneousChecker::with_tolerances(&tv, fast());
        let path_short = PathFormula::until(
            StateFormula::True,
            TimeInterval::bounded_by(t1).unwrap(),
            StateFormula::ap("high"),
        );
        let path_long = PathFormula::until(
            StateFormula::True,
            TimeInterval::bounded_by(2.0 * t1).unwrap(),
            StateFormula::ap("high"),
        );
        let p_short = checker.path_probabilities(&path_short).unwrap();
        let p_long = checker.path_probabilities(&path_long).unwrap();
        for (s, (a, b)) in p_short.iter().zip(&p_long).enumerate() {
            prop_assert!((0.0..=1.0 + 1e-9).contains(a), "state {}: {}", s, a);
            prop_assert!(*b >= *a - 1e-7, "state {}: short {} long {}", s, a, b);
        }
    }

    /// E-operator values are exactly occupancy masses: E{>=f}[ap] holds
    /// iff the mass of the ap-states is at least f.
    #[test]
    fn prop_e_operator_is_mass(
        model in arb_model(),
        m0 in arb_occupancy(),
        f in 0.05_f64..0.95,
    ) {
        let checker = Checker::with_tolerances(&model, fast());
        let psi = MfFormula::expect(Comparison::Ge, f, StateFormula::ap("mid")).unwrap();
        let v = checker.check(&psi, &m0).unwrap();
        if (m0[1] - f).abs() > 1e-9 {
            prop_assert_eq!(v.holds(), m0[1] >= f);
        }
    }
}
