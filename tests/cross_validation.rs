//! Cross-validation spine: every analytic checker is validated against an
//! independent computation path.
//!
//! * inhomogeneous CSL vs classic homogeneous CSL on frozen chains;
//! * analytic until probabilities vs statistical model checking on sampled
//!   paths (thinning along the mean-field trajectory);
//! * the MF-CSL `EP` operator vs tagged-object simulation at finite `N`;
//! * mean-field occupancies vs exact lumped-CTMC expectations;
//! * the single-goal-state nested reachability vs the state-space-doubling
//!   construction of the paper's reference [14].

use mfcsl::core::mfcsl::Checker;
use mfcsl::core::{meanfield, Occupancy};
use mfcsl::csl::checker::InhomogeneousChecker;
use mfcsl::csl::nested::{PiecewiseSets, PiecewiseStateSet};
use mfcsl::csl::{homogeneous, parse_path_formula, parse_state_formula, Tolerances};
use mfcsl::models::{sis, virus};
use mfcsl::sim::estimator::proportion_ci;
use mfcsl::sim::{lumped, paths, ssa};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tol() -> Tolerances {
    let mut t = Tolerances::default();
    t.ode = t.ode.with_tolerances(1e-10, 1e-13);
    t
}

/// Frozen-at-m̄ virus chain: the inhomogeneous checker with a *constant*
/// trajectory must agree with the classic homogeneous algorithms on a
/// battery of formulas.
#[test]
fn inhomogeneous_reduces_to_homogeneous_on_frozen_chain() {
    let model = virus::model(virus::setting_2(), virus::InfectionLaw::SmartVirus).unwrap();
    let m0 = virus::example_occupancy_2().unwrap();
    let frozen = model.frozen_at(&m0).unwrap();
    // A constant generator via a zero-length trajectory model: freeze by
    // building the tv model from a constant generator.
    let tv = mfcsl::csl::LocalTvModel::new(
        mfcsl::ctmc::inhomogeneous::ConstGenerator::new(&frozen),
        frozen.labeling().clone(),
        frozen.state_names().to_vec(),
    )
    .unwrap();
    let checker = InhomogeneousChecker::with_tolerances(&tv, tol());
    for text in [
        "P{<0.3}[ not_infected U[0,1] infected ]",
        "P{>0.5}[ tt U[0,3] active ]",
        "P{>0.05}[ infected U[0.5,4] not_infected ]",
        "!P{>0.9}[ tt U[0,2] infected ] & inactive",
        "P{>0.1}[ X[0,1] infected ]",
    ] {
        let phi = parse_state_formula(text).unwrap();
        let a = checker.sat(&phi).unwrap();
        let b = homogeneous::sat(&frozen, &phi, &tol()).unwrap();
        assert_eq!(a, b, "formula `{text}`");
    }
}

/// Statistical check of the time-inhomogeneous until: sample tagged-object
/// paths along the mean-field trajectory by thinning and compare the
/// success frequency with the analytic probability.
#[test]
fn until_probability_matches_thinned_path_sampling() {
    let model = sis::model(2.0, 1.0).unwrap();
    let m0 = Occupancy::new(vec![0.9, 0.1]).unwrap();
    let t2 = 1.5;
    let sol = meanfield::solve(&model, &m0, t2, &tol().ode).unwrap();
    let tv = sol.local_tv_model().unwrap();
    let checker = InhomogeneousChecker::with_tolerances(&tv, tol());
    let path_formula = parse_path_formula("healthy U[0,1.5] infected").unwrap();
    let analytic = checker.path_probabilities(&path_formula).unwrap();

    // Thinning bound: β bounds the infection rate; γ = 1 bounds recovery.
    let mut rng = StdRng::seed_from_u64(1234);
    let trials = 30_000;
    let mut hits = 0usize;
    for _ in 0..trials {
        let p =
            mfcsl::ctmc::simulate::sample_path_inhomogeneous(tv.generator(), 0, t2, 2.5, &mut rng)
                .unwrap();
        let sojourns: Vec<_> = p.sojourns().collect();
        if paths::until_holds(&sojourns, &[true, false], &[false, true], 0.0, t2).unwrap() {
            hits += 1;
        }
    }
    let est = proportion_ci(hits, trials, 3.0).unwrap();
    assert!(
        est.contains(analytic[0]),
        "analytic {} outside CI [{}, {}]",
        analytic[0],
        est.lo,
        est.hi
    );
}

/// The MF-CSL `EP` value is the `N → ∞` limit of the fraction of tagged
/// objects whose finite-`N` paths satisfy the formula.
#[test]
fn ep_operator_matches_tagged_simulation() {
    let model = sis::model(2.0, 1.0).unwrap();
    let m0 = Occupancy::new(vec![0.8, 0.2]).unwrap();
    let checker = Checker::with_tolerances(&model, tol());
    let path_formula = parse_path_formula("healthy U[0,1] infected").unwrap();
    let curve = checker.ep_curve(&path_formula, &m0, 0.0).unwrap();
    // EP = m_s·Prob(s) + m_i·1.
    let analytic = curve.expected_at(0.0);

    let n = 1000;
    let c0 = ssa::counts_from_occupancy(&m0, n).unwrap();
    let mut rng = StdRng::seed_from_u64(99);
    let trials = 8000;
    let mut hits = 0usize;
    for k in 0..trials {
        // Tag an object distributed like m0.
        let tagged0 = usize::from((k % 10) >= 8); // 80/20 split
        let (_, tagged) = ssa::simulate_tagged(&model, c0.clone(), tagged0, 1.0, &mut rng).unwrap();
        let sojourns: Vec<_> = tagged.sojourns().collect();
        if paths::until_holds(&sojourns, &[true, false], &[false, true], 0.0, 1.0).unwrap() {
            hits += 1;
        }
    }
    let est = proportion_ci(hits, trials, 3.0).unwrap();
    // Finite-N bias plus Monte-Carlo noise: allow the CI plus a small slack.
    assert!(
        (est.mean - analytic).abs() < est.half_width() + 0.02,
        "analytic {analytic} vs finite-N estimate {est:?}"
    );
}

/// Mean-field occupancy vs exact lumped-CTMC expectation for the virus
/// model: the bias shrinks as N grows.
#[test]
fn lumped_ctmc_converges_to_mean_field_for_virus() {
    let model = virus::model(virus::setting_2(), virus::InfectionLaw::SmartVirus).unwrap();
    let m0 = Occupancy::new(vec![0.8, 0.1, 0.1]).unwrap();
    let t = 2.0;
    let sol = meanfield::solve(&model, &m0, t, &tol().ode).unwrap();
    let mf = sol.occupancy_at(t);
    let bias = |n: usize| {
        let chain = lumped::build(&model, n, 50_000).unwrap();
        let c0 = ssa::counts_from_occupancy(&m0, n).unwrap();
        let e = chain.expected_occupancy(&c0, t, 1e-12).unwrap();
        (0..3).map(|s| (e[s] - mf[s]).abs()).fold(0.0_f64, f64::max)
    };
    let b10 = bias(10);
    let b60 = bias(60);
    assert!(b60 < b10, "bias must shrink with N: {b10} vs {b60}");
    assert!(b60 < 0.05, "N=60 bias {b60}");
}

/// Goal-state (s*) and state-space-doubling nested reachability agree on
/// the virus model with a manually injected time-varying goal set.
#[test]
fn nested_constructions_agree_on_virus_trajectory() {
    let model = virus::model(virus::setting_2(), virus::InfectionLaw::SmartVirus).unwrap();
    let m0 = virus::example_occupancy_2().unwrap();
    let sol = meanfield::solve(&model, &m0, 16.0, &tol().ode).unwrap();
    let tv = sol.local_tv_model().unwrap();
    let g1 = PiecewiseStateSet::new(
        0.0,
        16.0,
        vec![5.0],
        vec![vec![false, true, true], vec![true, true, true]],
    )
    .unwrap();
    let g2 = PiecewiseStateSet::new(
        0.0,
        16.0,
        vec![10.0],
        vec![vec![false, false, false], vec![false, false, true]],
    )
    .unwrap();
    let sets = PiecewiseSets::new(g1, g2).unwrap();
    let single =
        mfcsl::csl::nested::reach_probability(tv.generator(), &sets, 0.0, 15.0, &tol()).unwrap();
    let doubled =
        mfcsl::csl::doubling::reach_probability_doubled(tv.generator(), &sets, 0.0, 15.0, &tol())
            .unwrap();
    for (s, (a, b)) in single.iter().zip(&doubled).enumerate() {
        assert!((a - b).abs() < 1e-7, "state {s}: {a} vs {b}");
    }
}

/// The `E` operator at θ = 0 agrees with direct occupancy mass, and the
/// cSat at a point agrees with the check verdict — internal consistency of
/// the two public entry points.
#[test]
fn check_and_csat_agree_at_time_zero() {
    let model = sis::model(2.0, 1.0).unwrap();
    let checker = Checker::with_tolerances(&model, tol());
    let formulas = [
        "E{<0.3}[ infected ]",
        "EP{<0.5}[ healthy U[0,1] infected ]",
        "ES{>0.45}[ infected ]",
        "E{<0.3}[ infected ] & EP{<0.5}[ healthy U[0,1] infected ]",
        "!E{<0.3}[ infected ]",
    ];
    for fractions in [[0.9, 0.1], [0.5, 0.5], [0.2, 0.8]] {
        let m0 = Occupancy::new(fractions.to_vec()).unwrap();
        for text in formulas {
            let psi = mfcsl::core::mfcsl::parse_formula(text).unwrap();
            let verdict = checker.check(&psi, &m0).unwrap();
            let cs = checker.csat(&psi, &m0, 0.0).unwrap();
            assert_eq!(
                verdict.holds(),
                cs.contains(0.0),
                "formula `{text}` at m0 = {m0}"
            );
        }
    }
}

/// Statistical validation of the nested (time-varying-set) reachability:
/// the ζ/s* machinery of Sec. IV-C against brute-force path sampling with
/// the time-varying-set until semantics.
#[test]
fn nested_reachability_matches_time_varying_path_sampling() {
    let model = sis::model(2.0, 1.0).unwrap();
    let m0 = Occupancy::new(vec![0.7, 0.3]).unwrap();
    let big_t = 2.0;
    let sol = meanfield::solve(&model, &m0, big_t, &tol().ode).unwrap();
    let tv = sol.local_tv_model().unwrap();

    // Γ₁: everyone early, only healthy after t = 0.8;
    // Γ₂: nothing early, infected becomes the goal at t = 1.2.
    let g1 = PiecewiseStateSet::new(
        0.0,
        big_t,
        vec![0.8],
        vec![vec![true, true], vec![true, false]],
    )
    .unwrap();
    let g2 = PiecewiseStateSet::new(
        0.0,
        big_t,
        vec![1.2],
        vec![vec![false, false], vec![false, true]],
    )
    .unwrap();
    let sets = PiecewiseSets::new(g1.clone(), g2.clone()).unwrap();
    let analytic =
        mfcsl::csl::nested::reach_probability(tv.generator(), &sets, 0.0, big_t, &tol()).unwrap();

    let gamma1_at = |t: f64| g1.set_at(t).to_vec();
    let gamma2_at = |t: f64| g2.set_at(t).to_vec();
    let mut rng = StdRng::seed_from_u64(2024);
    let trials = 30_000;
    for (start, &expected) in analytic.iter().enumerate() {
        let mut hits = 0usize;
        for _ in 0..trials {
            let p = mfcsl::ctmc::simulate::sample_path_inhomogeneous(
                tv.generator(),
                start,
                big_t,
                2.5,
                &mut rng,
            )
            .unwrap();
            let sojourns: Vec<_> = p.sojourns().collect();
            if paths::until_holds_time_varying(&sojourns, gamma1_at, gamma2_at, big_t, &[0.8, 1.2])
                .unwrap()
            {
                hits += 1;
            }
        }
        let est = proportion_ci(hits, trials, 3.5).unwrap();
        assert!(
            est.contains(expected),
            "state {start}: analytic {expected} outside CI [{}, {}]",
            est.lo,
            est.hi
        );
    }
}
