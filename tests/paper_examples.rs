//! End-to-end reproduction of the paper's Section VI worked examples.
//!
//! Quantities that depend only on the stated parameters are asserted
//! against hand-derived values; quantities where the paper's printed
//! numbers are not reproducible from its stated parameters are asserted
//! for *shape* (see EXPERIMENTS.md for the paper-vs-measured table).

use mfcsl::core::meanfield;
use mfcsl::core::mfcsl::{parse_formula, Checker};
use mfcsl::csl::checker::InhomogeneousChecker;
use mfcsl::csl::until::MaskedGenerator;
use mfcsl::csl::{parse_path_formula, parse_state_formula, Tolerances};
use mfcsl::ctmc::inhomogeneous::transition_matrix;
use mfcsl::math::quad::adaptive_simpson;
use mfcsl::models::virus;

fn tight() -> Tolerances {
    let mut t = Tolerances::default();
    t.ode = t.ode.with_tolerances(1e-11, 1e-13);
    t
}

/// Example 1, step 2: the transient matrix `Π'(0,1)` of `M[infected]`.
/// The survival probability of `s1` is `exp(-∫₀¹ k₁ m₃(τ)/m₁(τ) dτ)`,
/// which we verify against independent quadrature over the mean-field
/// trajectory.
#[test]
fn example1_transient_matrix_matches_quadrature() {
    let model = virus::model(virus::setting_1(), virus::InfectionLaw::SmartVirus).unwrap();
    let m0 = virus::example_occupancy().unwrap();
    let tol = tight();
    let sol = meanfield::solve(&model, &m0, 1.0, &tol.ode).unwrap();
    let tv = sol.local_tv_model().unwrap();
    let masked = MaskedGenerator::new(tv.generator(), vec![false, true, true]).unwrap();
    let pi = transition_matrix(&masked, 0.0, 1.0, &tol.ode).unwrap();

    // Independent quadrature of the integrated infection rate.
    let integral = adaptive_simpson(
        |t| {
            let m = sol.occupancy_at(t);
            0.9 * m[2] / m[0]
        },
        0.0,
        1.0,
        1e-12,
    )
    .unwrap();
    let survival = (-integral).exp();
    assert!(
        (pi[(0, 0)] - survival).abs() < 1e-8,
        "kolmogorov {} vs quadrature {survival}",
        pi[(0, 0)]
    );
    // Infected rows are absorbing.
    assert!((pi[(1, 1)] - 1.0).abs() < 1e-10);
    assert!((pi[(2, 2)] - 1.0).abs() < 1e-10);
    // Row sums are stochastic.
    for i in 0..3 {
        assert!((pi.row(i).iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}

/// Example 1, step 3: the satisfaction verdict. Both under standard CSL
/// semantics (infected states satisfy the until immediately) and under the
/// paper's healthy-starters-only reading, the formula holds.
#[test]
fn example1_verdict_holds_under_both_conventions() {
    let model = virus::model(virus::setting_1(), virus::InfectionLaw::SmartVirus).unwrap();
    let m0 = virus::example_occupancy().unwrap();
    let checker = Checker::with_tolerances(&model, tight());
    let psi = parse_formula("EP{<0.3}[ not_infected U[0,1] infected ]").unwrap();
    assert!(checker.check(&psi, &m0).unwrap().holds());

    let path = parse_path_formula("not_infected U[0,1] infected").unwrap();
    let curve = checker.ep_curve(&path, &m0, 0.0).unwrap();
    // Standard semantics: EP = m1·p1 + m2·1 + m3·1.
    let p1 = curve.state_prob_at(0, 0.0);
    let ep = curve.expected_at(0.0);
    assert!((ep - (0.8 * p1 + 0.15 + 0.05)).abs() < 1e-9);
    assert!(ep < 0.3);
    // Paper's convention: only the healthy starters contribute.
    assert!(0.8 * p1 < 0.3);
    // Infected states satisfy the until with probability one.
    assert!((curve.state_prob_at(1, 0.0) - 1.0).abs() < 1e-9);
    assert!((curve.state_prob_at(2, 0.0) - 1.0).abs() < 1e-9);
}

/// The Figure-3 construction: the paper-convention expected probability
/// `m₁(t)·Prob(s₁, φ, m̄, t)` crosses 0.3 from below exactly once for the
/// growing-epidemic variant, and never for Table II Setting 1 as printed.
#[test]
fn figure3_crossing_shape() {
    let m0 = virus::example_occupancy().unwrap();
    let path = parse_path_formula("not_infected U[0,1] infected").unwrap();

    let crossing_count = |params: virus::Params| -> usize {
        let model = virus::model(params, virus::InfectionLaw::SmartVirus).unwrap();
        let checker = Checker::with_tolerances(&model, Tolerances::default());
        let theta = 15.0;
        let curve = checker.ep_curve(&path, &m0, theta).unwrap();
        let mut count = 0;
        let mut prev = curve.expected_at(0.0) - 0.3;
        for i in 1..=300 {
            let v = curve.expected_at(i as f64 * theta / 300.0) - 0.3;
            if prev.signum() != v.signum() {
                count += 1;
            }
            prev = v;
        }
        count
    };
    assert_eq!(
        crossing_count(virus::setting_1()),
        0,
        "printed Setting 1 decays; no upward crossing"
    );
    assert_eq!(
        crossing_count(virus::setting_1_swapped()),
        1,
        "swapped Setting 1 grows and its EP curve crosses 0.3 exactly once (paper shape)"
    );
}

/// Example 3 (Setting 2): the nested formula's final verdicts match the
/// paper: `m̄ ⊭ Ψ₁`, `m̄ ⊨ E{<0.1}[active]`, conjunction fails.
#[test]
fn example3_nested_verdicts() {
    let model = virus::model(virus::setting_2(), virus::InfectionLaw::SmartVirus).unwrap();
    let m0 = virus::example_occupancy_2().unwrap();
    let checker = Checker::with_tolerances(&model, Tolerances::default());
    let psi1 =
        parse_formula("E{>0.8}[ P{>0.9}[ infected U[0,15] P{>0.8}[ tt U[0,0.5] infected ] ] ]")
            .unwrap();
    let psi2 = parse_formula("E{<0.1}[ active ]").unwrap();
    assert!(!checker.check(&psi1, &m0).unwrap().holds(), "paper: ⊭ Ψ₁");
    assert!(checker.check(&psi2, &m0).unwrap().holds(), "paper: ⊨ Ψ₂");
    assert!(
        !checker.check(&psi1.clone().and(psi2), &m0).unwrap().holds(),
        "paper: conjunction fails"
    );
}

/// Example 3: the per-state probabilities of the outer until are
/// `(0, 1, 1)` — infected states are already in the goal set, the healthy
/// state cannot take an `infected U … ` path at all.
#[test]
fn example3_outer_until_probabilities() {
    let model = virus::model(virus::setting_2(), virus::InfectionLaw::SmartVirus).unwrap();
    let m0 = virus::example_occupancy_2().unwrap();
    let tol = Tolerances::default();
    let horizon = 15.5;
    let sol = meanfield::solve(&model, &m0, horizon, &tol.ode).unwrap();
    let tv = sol.local_tv_model().unwrap();
    let csl = InhomogeneousChecker::with_tolerances(&tv, tol);
    let path = parse_path_formula("infected U[0,15] P{>0.8}[ tt U[0,0.5] infected ]").unwrap();
    let probs = csl.path_probabilities(&path).unwrap();
    assert!(
        probs[0].abs() < 1e-9,
        "paper: Prob(s1) = 0, got {}",
        probs[0]
    );
    assert!((probs[1] - 1.0).abs() < 1e-9, "paper: Prob(s2) = 1");
    assert!((probs[2] - 1.0).abs() < 1e-9, "paper: Prob(s3) = 1");
}

/// Example 2 of Sec. III: the three illustrative formulas all parse and
/// evaluate.
#[test]
fn section3_example_formulas_evaluate() {
    let model = virus::model(virus::setting_1(), virus::InfectionLaw::SmartVirus).unwrap();
    let m0 = virus::example_occupancy().unwrap();
    let checker = Checker::with_tolerances(&model, Tolerances::default());
    for text in [
        "E{>0.8}[ infected ]",
        "ES{>=0.1}[ infected ]",
        "EP{<0.4}[ infected U[0,5] not_infected ]",
    ] {
        let psi = parse_formula(text).unwrap();
        let _ = checker.check(&psi, &m0).unwrap();
    }
    // E{>0.8}[infected] fails at 20% infected.
    let psi = parse_formula("E{>0.8}[ infected ]").unwrap();
    assert!(!checker.check(&psi, &m0).unwrap().holds());
}

/// The cSat of the paper's Figure-3 formula: with the printed Setting 1
/// the formula holds on all of [0, 20]; with the growing variant it holds
/// on a left half-open window `[0, τ)` (the paper's [0, 14.5412) shape).
#[test]
fn csat_shapes_for_figure3_formula() {
    let m0 = virus::example_occupancy().unwrap();
    let psi = parse_formula("EP{<0.3}[ not_infected U[0,1] infected ]").unwrap();

    let model = virus::model(virus::setting_1(), virus::InfectionLaw::SmartVirus).unwrap();
    let checker = Checker::with_tolerances(&model, Tolerances::default());
    let cs = checker.csat(&psi, &m0, 20.0).unwrap();
    assert_eq!(cs.measure(), 20.0, "printed setting: holds everywhere");

    let model = virus::model(virus::setting_1_swapped(), virus::InfectionLaw::SmartVirus).unwrap();
    let checker = Checker::with_tolerances(&model, Tolerances::default());
    let cs = checker.csat(&psi, &m0, 20.0).unwrap();
    assert_eq!(cs.intervals().len(), 1, "one left window: {cs}");
    let iv = cs.intervals()[0];
    assert_eq!(iv.lo().value, 0.0);
    assert!(iv.lo().closed);
    assert!(!iv.hi().closed, "strict < excludes the crossing instant");
    assert!(iv.hi().value > 0.0 && iv.hi().value < 20.0);
}

/// The inner formula of Example 3 under the swapped Setting 2 variant:
/// when the epidemic explodes, a satisfaction-set discontinuity appears
/// inside the window, exercising the ζ/s* machinery end to end.
#[test]
fn example3_discontinuity_appears_for_growing_variant() {
    // Swap k2/k3 in Setting 2 as well — the stronger activation makes the
    // infection probability of a healthy machine cross 0.8 inside [0, 15].
    let params = virus::Params {
        k1: 5.0,
        k2: 0.01,
        k3: 0.02,
        k4: 0.5,
        k5: 0.5,
    };
    let model = virus::model(params, virus::InfectionLaw::SmartVirus).unwrap();
    let m0 = virus::example_occupancy_2().unwrap();
    let tol = Tolerances::default();
    let sol = meanfield::solve(&model, &m0, 16.0, &tol.ode).unwrap();
    let tv = sol.local_tv_model().unwrap();
    let csl = InhomogeneousChecker::with_tolerances(&tv, tol);
    let phi1 = parse_state_formula("P{>0.8}[ tt U[0,0.5] infected ]").unwrap();
    let sat = csl.sat_over_time(&phi1, 15.0).unwrap();
    // s2/s3 are always in; whether s1 joins depends on the trajectory.
    assert_eq!(sat.set_at(0.0), &[false, true, true]);
    if sat.boundaries().is_empty() {
        // Even without a crossing the machinery must agree with the
        // single-until answer; nothing more to assert here.
        return;
    }
    assert_eq!(sat.boundaries().len(), 1);
    let b = sat.boundaries()[0];
    assert!(b > 0.0 && b < 15.0);
    assert_eq!(sat.set_at(b + 1e-6), &[true, true, true]);
}
