//! Evaluating botnet countermeasures with MF-CSL.
//!
//! Compares an aggressive botnet against a well-defended network: endemic
//! steady-state levels (the `ES` operator), the window during which the
//! botnet is considered dangerous, and the chance that a clean machine
//! survives a deadline — the style of question the paper's botnet
//! reference [6] asks.
//!
//! Run with `cargo run --example botnet_takedown`.

use mfcsl::core::fixedpoint::{self, FixedPointOptions};
use mfcsl::core::mfcsl::{parse_formula, Checker};
use mfcsl::core::Occupancy;
use mfcsl::models::botnet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let m0 = Occupancy::new(vec![0.90, 0.07, 0.03])?;
    for (name, params) in [
        ("aggressive botnet", botnet::aggressive()),
        ("defended network", botnet::defended()),
    ] {
        println!("══ {name}: {params:?} ══");
        let model = botnet::model(params)?;
        let checker = Checker::new(&model);

        // Fixed-point landscape.
        let fps = fixedpoint::find_all(&model, 12, 7, &FixedPointOptions::default())?;
        for fp in &fps {
            println!(
                "fixed point m̃ = {} ({:?}, spectral abscissa {:+.4})",
                fp.occupancy, fp.stability, fp.spectral_abscissa
            );
        }

        // Long-run infection level from m0.
        match checker.check(&parse_formula("ES{>0.25}[ infected ]")?, &m0) {
            Ok(v) => println!(
                "steady state has >25% infected: {}",
                if v.holds() { "yes" } else { "no" }
            ),
            Err(e) => println!("steady-state query not answerable: {e}"),
        }

        // Danger window: more than 5% of machines working as bots.
        let danger = parse_formula("E{>0.05}[ working ]")?;
        let cs = checker.csat(&danger, &m0, 40.0)?;
        println!("danger window (>5% working bots): {cs}");

        // Survival of a clean machine over a 5-unit deadline, evaluated now.
        let survive = parse_formula("EP{<0.5}[ clean U[0,5] infected ]")?;
        let v = checker.check(&survive, &m0)?;
        println!(
            "less than half of current exposure leads to infection within 5: {}\n",
            if v.holds() { "yes" } else { "no" }
        );
    }
    Ok(())
}
