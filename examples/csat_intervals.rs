//! Conditional satisfaction sets with boolean structure.
//!
//! Computes `cSat(Ψ, m̄, θ)` for several formulas over an SIS epidemic and
//! shows that negation/conjunction act as exact interval-set complement /
//! intersection (Sec. V-B of the paper).
//!
//! Run with `cargo run --example csat_intervals`.

use mfcsl::core::mfcsl::{parse_formula, Checker};
use mfcsl::core::Occupancy;
use mfcsl::models::sis;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Supercritical SIS: the infected fraction grows logistically from 10%
    // toward the endemic 50%.
    let model = sis::model(2.0, 1.0)?;
    let m0 = Occupancy::new(vec![0.9, 0.1])?;
    let checker = Checker::new(&model);
    let theta = 12.0;

    println!("SIS (β = 2, γ = 1), m̄(0) = {m0}, window [0, {theta}]");
    println!("analytic infected fraction: i(t) = 0.5 / (1 + 4 e^(-t))\n");

    let queries = [
        "E{<0.3}[ infected ]",
        "E{>0.2}[ infected ] & E{<0.4}[ infected ]",
        "!E{<0.3}[ infected ]",
        "E{<0.2}[ infected ] | E{>0.4}[ infected ]",
        "ES{>0.45}[ infected ]",
        "EP{<0.5}[ healthy U[0,1] infected ]",
        "EP{<0.5}[ healthy U[0,1] infected ] & E{>0.15}[ infected ]",
    ];
    for text in queries {
        let psi = parse_formula(text)?;
        let cs = checker.csat(&psi, &m0, theta)?;
        println!("cSat({text})\n    = {cs}   (measure {:.4})\n", cs.measure());
    }

    // Analytic check for the first query: i(t) = 0.3 at t = ln(6) ≈ 1.792.
    let psi = parse_formula("E{<0.3}[ infected ]")?;
    let cs = checker.csat(&psi, &m0, theta)?;
    let crossing = cs.intervals()[0].hi().value;
    println!(
        "first query's crossing: {crossing:.6} (analytic ln 6 = {:.6})",
        6.0_f64.ln()
    );
    Ok(())
}
