//! The paper's Section VI worked examples, end to end.
//!
//! Reproduces (with this library's standard CSL semantics — see
//! EXPERIMENTS.md for the one documented deviation):
//!
//! 1. checking `EP{<0.3}[ not_infected U[0,1] infected ]` against
//!    `m̄ = (0.8, 0.15, 0.05)` under Table II Setting 1, including the
//!    transient matrix `Π'(0,1)` of the modified chain;
//! 2. the conditional satisfaction set of the same formula on `[0, 20]`
//!    (the paper reports `[0, 14.5412)` for the growing-epidemic variant);
//! 3. the Setting-2 nested formula
//!    `E{>0.8}[ P{>0.9}[ infected U[0,15] Φ₁ ] ] & E{<0.1}[ active ]` with
//!    `Φ₁ = P{>0.8}[ tt U[0,0.5] infected ]`, including the inner
//!    satisfaction-set discontinuity the paper locates at `t ≈ 10.443`.
//!
//! Run with `cargo run --example virus_outbreak`.

use mfcsl::core::meanfield;
use mfcsl::core::mfcsl::{parse_formula, Checker};
use mfcsl::csl::checker::InhomogeneousChecker;
use mfcsl::csl::{parse_path_formula, parse_state_formula, Tolerances};
use mfcsl::ctmc::inhomogeneous::transition_matrix;
use mfcsl::models::virus;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    example_one()?;
    example_csat()?;
    example_nested()?;
    Ok(())
}

/// Sec. VI, first example: checking the satisfaction relation.
fn example_one() -> Result<(), Box<dyn std::error::Error>> {
    println!("── Example 1: m̄ ⊨ EP{{<0.3}}[ not_infected U[0,1] infected ] ──");
    let model = virus::model(virus::setting_1(), virus::InfectionLaw::SmartVirus)?;
    let m0 = virus::example_occupancy()?;
    let tol = Tolerances::default();

    // Step 1+2 of the paper: solve the mean-field ODE and the forward
    // Kolmogorov equation on the modified chain M[infected] (infected
    // states absorbing).
    let sol = meanfield::solve(&model, &m0, 1.0, &tol.ode)?;
    let tv = sol.local_tv_model()?;
    let masked = mfcsl::csl::until::MaskedGenerator::new(tv.generator(), vec![false, true, true])?;
    let pi = transition_matrix(&masked, 0.0, 1.0, &tol.ode)?;
    println!("Π'(0,1) on M[infected] (paper: [[0.91, 0.09, 0], …]):\n{pi}");

    // Step 3: the weighted sum of Def. 6.
    let checker = Checker::new(&model);
    let path = parse_path_formula("not_infected U[0,1] infected")?;
    let curve = checker.ep_curve(&path, &m0, 0.0)?;
    let ep = curve.expected_at(0.0);
    println!("per-state probabilities at t = 0:");
    for s in 0..3 {
        println!(
            "  Prob(s{}, φ, m̄) = {:.6}",
            s + 1,
            curve.state_prob_at(s, 0.0)
        );
    }
    println!("EP(φ) = Σ m_j·Prob(s_j) = {ep:.6}");
    println!(
        "paper's convention (healthy starters only): m₁·Prob(s₁) = {:.6}  (paper: 0.072)",
        m0[0] * curve.state_prob_at(0, 0.0)
    );
    let psi = parse_formula("EP{<0.3}[ not_infected U[0,1] infected ]")?;
    let verdict = checker.check(&psi, &m0)?;
    println!(
        "verdict: m̄ {} EP{{<0.3}}[…]\n",
        if verdict.holds() { "⊨" } else { "⊭" },
    );
    Ok(())
}

/// Sec. VI, second computation: the conditional satisfaction set.
fn example_csat() -> Result<(), Box<dyn std::error::Error>> {
    println!("── Example 2: cSat(EP{{<0.3}}[ not_infected U[0,1] infected ], m̄, 20) ──");
    let m0 = virus::example_occupancy()?;
    let psi = parse_formula("EP{<0.3}[ not_infected U[0,1] infected ]")?;
    for (name, params) in [
        ("Table II Setting 1 (as printed)", virus::setting_1()),
        ("Setting 1 with k2 ↔ k3 swapped", virus::setting_1_swapped()),
    ] {
        let model = virus::model(params, virus::InfectionLaw::SmartVirus)?;
        let checker = Checker::new(&model);
        let csat = checker.csat(&psi, &m0, 20.0)?;
        println!("{name}: cSat = {csat}");
    }
    println!("(the paper reports [0, 14.5412) for its Figure 3 curve)\n");
    Ok(())
}

/// Sec. VI, third example: the nested formula under Setting 2.
fn example_nested() -> Result<(), Box<dyn std::error::Error>> {
    println!("── Example 3 (Setting 2): nested until with a time-varying goal set ──");
    let model = virus::model(virus::setting_2(), virus::InfectionLaw::SmartVirus)?;
    let m0 = virus::example_occupancy_2()?;
    let tol = Tolerances::default();

    // The inner formula Φ₁ = P{>0.8}[ tt U[0,0.5] infected ]: its
    // satisfaction set changes when the infection probability of a healthy
    // machine crosses 0.8 (the paper locates this at t ≈ 10.443).
    let sol = meanfield::solve(&model, &m0, 16.0, &tol.ode)?;
    let tv = sol.local_tv_model()?;
    let csl = InhomogeneousChecker::with_tolerances(&tv, tol);
    let phi1 = parse_state_formula("P{>0.8}[ tt U[0,0.5] infected ]")?;
    let sat = csl.sat_over_time(&phi1, 15.0)?;
    println!(
        "Sat(Φ₁, m̄, t) boundaries on [0, 15]: {:?}  (paper: {{10.443}})",
        sat.boundaries()
    );
    println!("Sat(Φ₁) early: {:?}", sat.set_at(0.0));
    println!("Sat(Φ₁) late:  {:?}", sat.set_at(14.9));

    // The full MF-CSL conjunction of the paper.
    let checker = Checker::new(&model);
    let psi1 =
        parse_formula("E{>0.8}[ P{>0.9}[ infected U[0,15] P{>0.8}[ tt U[0,0.5] infected ] ] ]")?;
    let psi2 = parse_formula("E{<0.1}[ active ]")?;
    let v1 = checker.check(&psi1, &m0)?;
    let v2 = checker.check(&psi2, &m0)?;
    let both = checker.check(&psi1.clone().and(psi2.clone()), &m0)?;
    println!("m̄ {} Ψ₁ (paper: ⊭)", if v1.holds() { "⊨" } else { "⊭" });
    println!("m̄ {} Ψ₂ (paper: ⊨)", if v2.holds() { "⊨" } else { "⊭" });
    println!(
        "m̄ {} Ψ₁ ∧ Ψ₂ (paper: ⊭)",
        if both.holds() { "⊨" } else { "⊭" },
    );
    Ok(())
}
