//! MF-CSL analysis of a push–pull gossip protocol.
//!
//! Answers protocol-design questions with MF-CSL: when has the rumor
//! reached a majority? What is the chance a random ignorant node learns it
//! within one round-trip time? Does the rumor ever die out?
//!
//! Run with `cargo run --example gossip_spread`.

use mfcsl::core::mfcsl::{parse_formula, Checker};
use mfcsl::core::Occupancy;
use mfcsl::csl::parse_path_formula;
use mfcsl::models::gossip;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = gossip::default_params();
    let model = gossip::model(params)?;
    // One initial spreader per twenty nodes.
    let m0 = Occupancy::new(vec![0.95, 0.05, 0.0])?;
    let checker = Checker::new(&model);

    println!("push–pull gossip, {params:?}");
    println!("initial occupancy: {m0}\n");

    // When is a majority informed?
    let majority = parse_formula("E{>=0.5}[ informed ]")?;
    let cs = checker.csat(&majority, &m0, 30.0)?;
    println!("majority informed during: {cs}");

    // When is the network actively spreading (at least 10% spreaders)?
    let active = parse_formula("E{>=0.1}[ spreading ]")?;
    let cs = checker.csat(&active, &m0, 30.0)?;
    println!("≥10% of nodes actively spreading during: {cs}");

    // Probability that a random node gets informed within Δ = 2.
    let path = parse_path_formula("ignorant U[0,2] informed")?;
    let curve = checker.ep_curve(&path, &m0, 20.0)?;
    println!("\nexpected probability of learning the rumor within 2 time units:");
    for t in [0.0, 2.0, 5.0, 10.0, 20.0] {
        println!(
            "  evaluated at t = {t:>4}: EP = {:.4}   (informed fraction {:.4})",
            curve.expected_at(t),
            1.0 - curve.occupancy_at(t)[gossip::IGNORANT],
        );
    }

    // The rumor eventually stops spreading: the spreader fraction sinks
    // below every positive bound.
    let quiet = parse_formula("E{<0.01}[ spreading ]")?;
    let cs = checker.csat(&quiet, &m0, 30.0)?;
    println!("\nspreading below 1% during: {cs}");
    Ok(())
}
