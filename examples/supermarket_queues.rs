//! Load-balancing analysis with MF-CSL: the power-of-`d`-choices
//! supermarket model.
//!
//! The mean-field limit of join-shortest-of-`d` queues has the famous
//! doubly-exponential tail; MF-CSL turns that into checkable service-level
//! statements: "fewer than 1% of queues are ever deeper than 4", "a task
//! arriving at an empty queue stays served quickly", etc.
//!
//! Run with `cargo run --release --example supermarket_queues`.

use mfcsl::core::mfcsl::{parse_formula, Checker};
use mfcsl::core::{meanfield, Occupancy};
use mfcsl::models::supermarket::{self, Params};
use mfcsl::ode::OdeOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cap = 8;
    for d in [1u32, 2] {
        let params = Params {
            lambda: 0.8,
            mu: 1.0,
            d,
            cap,
        };
        let model = supermarket::model(params)?;
        // All queues start empty.
        let m0 = Occupancy::unit(cap + 1, 0)?;
        println!("══ λ = 0.8, d = {d} ══");

        // Settle into the stationary profile.
        let sol = meanfield::solve(&model, &m0, 400.0, &OdeOptions::default())?;
        let stat = sol.occupancy_at(400.0);
        let tail = |i: usize| -> f64 { (i..stat.len()).map(|j| stat[j]).sum() };
        println!("stationary tail s_i = P(queue length ≥ i):");
        for i in 1..=4 {
            println!(
                "  s_{i} = {:.6}   (analytic infinite-cap: {:.6})",
                tail(i),
                supermarket::analytic_tail(0.8, d, i)
            );
        }

        // MF-CSL service-level checks at the stationary profile.
        let checker = Checker::new(&model);
        let queries = [
            // deep queues are rare (doubly-exponentially so for d = 2)
            "E{<0.05}[ len_4 | len_5 | len_6 | len_7 | len_8 ]",
            // an empty queue fills within one service time with bounded
            // probability
            "EP{<0.9}[ empty U[0,1] busy ]",
            // in steady state most queues are short
            "ES{>0.5}[ empty | len_1 | len_2 ]",
        ];
        for text in queries {
            let psi = parse_formula(text)?;
            let v = checker.check(&psi, &stat)?;
            println!(
                "stationary ⊨ {text:<55} : {}",
                if v.holds() { "holds" } else { "fails" }
            );
        }
        println!();
    }
    println!(
        "two choices collapse the queue tail: the d = 2 run satisfies the \
         deep-queue bound that d = 1 misses."
    );
    Ok(())
}
