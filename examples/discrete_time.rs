//! Discrete-time mean-field checking (the paper's Sec. II-B remark).
//!
//! A synchronous-round gossip protocol: in every round an ignorant node
//! hears the rumor with probability proportional to the spreading
//! fraction, and a spreader gets stifled when it contacts another informed
//! node. The discrete layer answers the same questions as the continuous
//! one, with step-indexed bounds.
//!
//! Run with `cargo run --release --example discrete_time`.

use mfcsl::core::discrete::DiscreteLocalModel;
use mfcsl::core::Occupancy;
use mfcsl::csl::Comparison;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = DiscreteLocalModel::builder()
        .state("ignorant", ["ignorant"])
        .state("spreading", ["informed", "spreading"])
        .state("stifled", ["informed", "stifled"])
        .transition("ignorant", "spreading", |m: &Occupancy| {
            (0.8 * m[1]).min(1.0)
        })?
        .transition("spreading", "stifled", |m: &Occupancy| {
            (0.4 * (m[1] + m[2])).min(1.0)
        })?
        .build()?;

    let m0 = Occupancy::new(vec![0.95, 0.05, 0.0])?;
    let rounds = 60;
    let traj = model.iterate(&m0, rounds)?;

    println!("round-synchronous gossip, occupancy per round:");
    println!(
        "{:>6} {:>10} {:>10} {:>10}",
        "round", "ignorant", "spread", "stifled"
    );
    for k in [0usize, 5, 10, 20, 40, 60] {
        let m = traj.occupancy_at(k);
        println!("{k:>6} {:>10.4} {:>10.4} {:>10.4}", m[0], m[1], m[2]);
    }

    // Discrete EP: probability that a random ignorant node learns the
    // rumor within 5 rounds, evaluated at round k.
    let sat1 = model.sat_ap("ignorant")?;
    let sat2 = model.sat_ap("informed")?;
    println!("\nEP(ignorant U[0,5] informed) per evaluation round:");
    for k in [0usize, 5, 10, 20, 40] {
        let ep = model.expected_until(&traj, k, &sat1, &sat2, 0, 5)?;
        println!("  round {k:>2}: {ep:.4}");
    }

    // Discrete cSat: rounds at which the expected value is below 0.9.
    let steps = model.csat_expected_until(&traj, 50, &sat1, &sat2, 0, 5, Comparison::Lt, 0.9)?;
    println!(
        "\nrounds in [0, 50] where EP(ignorant U[0,5] informed) < 0.9: {} of 51",
        steps.len()
    );
    if let (Some(first), Some(last)) = (steps.first(), steps.last()) {
        println!("  (from round {first} to round {last})");
    }
    Ok(())
}
