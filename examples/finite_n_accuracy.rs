//! Mean-field accuracy at finite population sizes.
//!
//! The convergence theorem (Theorem 1 of the paper) promises the mean-field
//! occupancy is the `N → ∞` limit. This example quantifies the error at
//! finite `N` three ways: exact lumped-CTMC expectations for small `N`,
//! Gillespie estimates for larger `N`, and a tagged-object estimate of the
//! `EP` operator.
//!
//! Run with `cargo run --release --example finite_n_accuracy`.

use mfcsl::core::{meanfield, Occupancy};
use mfcsl::csl::parse_path_formula;
use mfcsl::models::sis;
use mfcsl::ode::OdeOptions;
use mfcsl::sim::estimator::{proportion_ci, run_replications};
use mfcsl::sim::{lumped, paths, ssa};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = sis::model(2.0, 1.0)?;
    let m0 = Occupancy::new(vec![0.8, 0.2])?;
    let t = 1.5;

    let sol = meanfield::solve(&model, &m0, t, &OdeOptions::default())?;
    let mf = sol.occupancy_at(t)[sis::INFECTED];
    println!("mean-field infected fraction at t = {t}: {mf:.6}\n");

    // Exact finite-N expectations via the lumped overall CTMC.
    println!("exact lumped-CTMC E[i(t)] (state space C(N+1, 1)):");
    println!(
        "{:>6} {:>10} {:>12} {:>12}",
        "N", "states", "E[i(t)]", "|bias|"
    );
    for n in [5usize, 10, 20, 40, 80, 160] {
        let chain = lumped::build(&model, n, 500_000)?;
        let c0 = ssa::counts_from_occupancy(&m0, n)?;
        let e = chain.expected_occupancy(&c0, t, 1e-12)?;
        println!(
            "{:>6} {:>10} {:>12.6} {:>12.2e}",
            n,
            chain.n_states(),
            e[sis::INFECTED],
            (e[sis::INFECTED] - mf).abs()
        );
    }

    // Gillespie estimates for larger N (parallel replications).
    println!("\nSSA estimates (1000 replications each):");
    println!("{:>6} {:>12} {:>22}", "N", "mean i(t)", "95% CI");
    for n in [100usize, 1000, 10_000] {
        let c0 = ssa::counts_from_occupancy(&m0, n)?;
        let samples = run_replications(1000, 8, 42, |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let traj = ssa::simulate(&model, c0.clone(), t, &mut rng).expect("simulation");
            traj.occupancy_at(t)[sis::INFECTED]
        });
        let est = mfcsl::sim::estimator::mean_ci(&samples, 1.96)?;
        println!(
            "{:>6} {:>12.6} {:>22}",
            n,
            est.mean,
            format!("[{:.6}, {:.6}]", est.lo, est.hi)
        );
    }

    // EP operator at finite N: tagged-object estimate vs analytic checker.
    let path = parse_path_formula("healthy U[0,1.5] infected")?;
    let checker = mfcsl::core::mfcsl::Checker::new(&model);
    let curve = checker.ep_curve(&path, &m0, 0.0)?;
    let analytic = curve.expected_at(0.0);
    println!("\nEP[ healthy U[0,1.5] infected ] mean-field value: {analytic:.6}");
    let _ = path; // the satisfaction sets below mirror the formula
    println!("tagged-object estimates:");
    for n in [50usize, 500, 5000] {
        let c0 = ssa::counts_from_occupancy(&m0, n)?;
        let trials = 4000;
        let hits = run_replications(trials, 8, 9, |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            // Tag a random object according to m0.
            let tagged0 = if (seed % 1000) as f64 / 1000.0 < m0[0] {
                0
            } else {
                1
            };
            let (_, tagged) = ssa::simulate_tagged(&model, c0.clone(), tagged0, 1.5, &mut rng)
                .expect("simulation");
            let sojourns: Vec<_> = tagged.sojourns().collect();
            u8::from(
                paths::until_holds(&sojourns, &[true, false], &[false, true], 0.0, 1.5)
                    .expect("path check"),
            )
        });
        let successes: usize = hits.iter().map(|&h| h as usize).sum();
        let est = proportion_ci(successes, trials, 1.96)?;
        println!(
            "  N = {n:>5}: {:.4} [{:.4}, {:.4}]",
            est.mean, est.lo, est.hi
        );
    }
    Ok(())
}
