//! Quickstart: build the paper's virus model and check MF-CSL formulas.
//!
//! Run with `cargo run --example quickstart`.

use mfcsl::core::mfcsl::{parse_formula, Checker};
use mfcsl::models::virus;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The running example of the paper (Fig. 2, Table II Setting 1): a
    // computer is not-infected, infected-inactive, or infected-active; the
    // infection rate depends on the fraction of active spreaders.
    let params = virus::setting_1();
    let model = virus::model(params, virus::InfectionLaw::SmartVirus)?;
    println!("local model states: {:?}", model.state_names());
    println!("atomic propositions: {:?}", model.labeling().alphabet());

    // The occupancy vector of the paper's worked example: 80% healthy,
    // 15% inactive infected, 5% active infected.
    let m0 = virus::example_occupancy()?;
    println!("\ninitial occupancy m̄ = {m0}");

    let checker = Checker::new(&model);

    // The three formulas of the paper's Example 2.
    let formulas = [
        // "the system is infected" (more than 80% of machines infected)
        "E{>0.8}[ infected ]",
        // "in steady state at least 10% of machines are infected"
        "ES{>=0.1}[ infected ]",
        // "a random infected machine recovers within 5 time units with
        //  probability below 40%"
        "EP{<0.4}[ infected U[0,5] not_infected ]",
    ];
    println!();
    for text in formulas {
        let psi = parse_formula(text)?;
        let verdict = checker.check(&psi, &m0)?;
        println!(
            "m̄ ⊨ {text:<45} : {}{}",
            if verdict.holds() { "holds" } else { "fails" },
            if verdict.is_marginal() {
                "  (marginal)"
            } else {
                ""
            },
        );
    }

    // Conditional satisfaction set: at which times does the formula hold
    // along the mean-field trajectory?
    let psi = parse_formula("E{<0.25}[ infected ]")?;
    let csat = checker.csat(&psi, &m0, 20.0)?;
    println!("\ncSat(E{{<0.25}}[ infected ], m̄, 20) = {csat}");
    Ok(())
}
