//! Error type for the ODE solvers.

use std::fmt;

use mfcsl_math::MathError;

/// Error returned by the solvers in `mfcsl-ode`.
#[derive(Debug, Clone, PartialEq)]
pub enum OdeError {
    /// The adaptive controller pushed the step size below its minimum; the
    /// problem is too stiff for the chosen method/tolerances.
    StepSizeTooSmall {
        /// Time at which the step underflow occurred.
        t: f64,
        /// The step size that would have been needed.
        h: f64,
    },
    /// The step budget was exhausted before reaching the end time.
    MaxStepsExceeded {
        /// Number of steps taken.
        steps: usize,
        /// Time reached when the budget ran out.
        t: f64,
    },
    /// The right-hand side produced a non-finite derivative.
    NonFiniteDerivative {
        /// Time of the offending evaluation.
        t: f64,
    },
    /// Newton iteration inside an implicit method failed to converge.
    NewtonFailed {
        /// Time of the failing step.
        t: f64,
    },
    /// An argument was outside its documented domain.
    InvalidArgument(String),
    /// An underlying linear-algebra operation failed.
    Math(MathError),
}

impl fmt::Display for OdeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OdeError::StepSizeTooSmall { t, h } => {
                write!(f, "step size underflow at t = {t} (h = {h})")
            }
            OdeError::MaxStepsExceeded { steps, t } => {
                write!(f, "exceeded {steps} steps at t = {t}")
            }
            OdeError::NonFiniteDerivative { t } => {
                write!(f, "right-hand side returned a non-finite value at t = {t}")
            }
            OdeError::NewtonFailed { t } => {
                write!(f, "newton iteration failed to converge at t = {t}")
            }
            OdeError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            OdeError::Math(e) => write!(f, "linear algebra error: {e}"),
        }
    }
}

impl std::error::Error for OdeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OdeError::Math(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MathError> for OdeError {
    fn from(e: MathError) -> Self {
        OdeError::Math(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = OdeError::StepSizeTooSmall { t: 1.0, h: 1e-18 };
        assert!(e.to_string().contains("underflow"));
        let wrapped = OdeError::from(MathError::Singular);
        assert!(std::error::Error::source(&wrapped).is_some());
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OdeError>();
    }
}
