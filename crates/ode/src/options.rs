//! Solver configuration.

use serde::{Deserialize, Serialize};

use crate::OdeError;

/// Configuration for the adaptive solvers.
///
/// The defaults are tuned for the model-checking workloads in this
/// workspace: probabilities and occupancy fractions live in `[0, 1]`, so a
/// relative tolerance of `1e-9` with a small absolute floor keeps threshold
/// crossings (located on the dense output) accurate to well below the
/// `1e-4` granularity the paper reports.
///
/// # Example
///
/// ```
/// use mfcsl_ode::OdeOptions;
///
/// let opts = OdeOptions::default().with_tolerances(1e-12, 1e-14);
/// assert_eq!(opts.rtol, 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OdeOptions {
    /// Relative error tolerance per step.
    pub rtol: f64,
    /// Absolute error tolerance per step.
    pub atol: f64,
    /// Initial step size; `None` selects it automatically.
    pub h_init: Option<f64>,
    /// Smallest step the controller may take before giving up.
    pub h_min: f64,
    /// Largest step the controller may take (caps dense-output error).
    pub h_max: f64,
    /// Hard bound on the number of accepted + rejected steps.
    pub max_steps: usize,
}

impl Default for OdeOptions {
    fn default() -> Self {
        OdeOptions {
            rtol: 1e-9,
            atol: 1e-12,
            h_init: None,
            h_min: 1e-14,
            h_max: 0.25,
            max_steps: 1_000_000,
        }
    }
}

impl OdeOptions {
    /// Returns a copy with the given relative and absolute tolerances.
    #[must_use]
    pub fn with_tolerances(mut self, rtol: f64, atol: f64) -> Self {
        self.rtol = rtol;
        self.atol = atol;
        self
    }

    /// Returns a copy with the given maximum step size.
    #[must_use]
    pub fn with_h_max(mut self, h_max: f64) -> Self {
        self.h_max = h_max;
        self
    }

    /// Returns a copy with the given step budget.
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Validates the option combination.
    ///
    /// # Errors
    ///
    /// Returns [`OdeError::InvalidArgument`] for non-positive tolerances or
    /// step bounds, or `h_min > h_max`.
    pub fn validate(&self) -> Result<(), OdeError> {
        if !(self.rtol > 0.0) || !(self.atol > 0.0) {
            return Err(OdeError::InvalidArgument(format!(
                "tolerances must be positive (rtol = {}, atol = {})",
                self.rtol, self.atol
            )));
        }
        if !(self.h_min > 0.0) || !(self.h_max > 0.0) || self.h_min > self.h_max {
            return Err(OdeError::InvalidArgument(format!(
                "step bounds must satisfy 0 < h_min <= h_max (h_min = {}, h_max = {})",
                self.h_min, self.h_max
            )));
        }
        if let Some(h) = self.h_init {
            if !(h > 0.0) {
                return Err(OdeError::InvalidArgument(format!(
                    "initial step must be positive, got {h}"
                )));
            }
        }
        if self.max_steps == 0 {
            return Err(OdeError::InvalidArgument(
                "max_steps must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        OdeOptions::default().validate().unwrap();
    }

    #[test]
    fn builders_chain() {
        let o = OdeOptions::default()
            .with_tolerances(1e-6, 1e-9)
            .with_h_max(0.5)
            .with_max_steps(10);
        assert_eq!(o.rtol, 1e-6);
        assert_eq!(o.h_max, 0.5);
        assert_eq!(o.max_steps, 10);
        o.validate().unwrap();
    }

    #[test]
    fn invalid_combinations_rejected() {
        assert!(OdeOptions::default()
            .with_tolerances(0.0, 1e-9)
            .validate()
            .is_err());
        assert!(OdeOptions::default().with_h_max(-1.0).validate().is_err());
        assert!(OdeOptions::default().with_max_steps(0).validate().is_err());
        let o = OdeOptions {
            h_min: 1.0,
            h_max: 0.5,
            ..OdeOptions::default()
        };
        assert!(o.validate().is_err());
        let o = OdeOptions {
            h_init: Some(-0.1),
            ..OdeOptions::default()
        };
        assert!(o.validate().is_err());
    }
}
