//! The ODE problem abstraction.

/// A first-order ODE system `dy/dt = f(t, y)`.
///
/// Implementors write the derivative into a caller-provided buffer so the
/// solvers can run allocation-free inner loops.
///
/// # Example
///
/// ```
/// use mfcsl_ode::problem::{FnSystem, OdeSystem};
///
/// let sys = FnSystem::new(2, |_t, y: &[f64], dy: &mut [f64]| {
///     dy[0] = y[1];
///     dy[1] = -y[0];
/// });
/// let mut dy = [0.0; 2];
/// sys.rhs(0.0, &[1.0, 0.0], &mut dy);
/// assert_eq!(dy, [0.0, -1.0]);
/// ```
pub trait OdeSystem {
    /// State dimension.
    fn dim(&self) -> usize;

    /// Writes `f(t, y)` into `dy`.
    ///
    /// Implementations may assume `y.len() == dy.len() == self.dim()`.
    fn rhs(&self, t: f64, y: &[f64], dy: &mut [f64]);

    /// Optional post-step projection applied to every accepted solution
    /// point (e.g. renormalizing an occupancy vector onto the probability
    /// simplex). The default is a no-op.
    fn project(&self, _t: f64, _y: &mut [f64]) {}
}

/// Adapter turning a closure into an [`OdeSystem`].
pub struct FnSystem<F> {
    dim: usize,
    f: F,
}

impl<F: Fn(f64, &[f64], &mut [f64])> FnSystem<F> {
    /// Wraps the closure `f(t, y, dy)` as a system of dimension `dim`.
    pub fn new(dim: usize, f: F) -> Self {
        FnSystem { dim, f }
    }
}

impl<F: Fn(f64, &[f64], &mut [f64])> OdeSystem for FnSystem<F> {
    fn dim(&self) -> usize {
        self.dim
    }

    fn rhs(&self, t: f64, y: &[f64], dy: &mut [f64]) {
        (self.f)(t, y, dy);
    }
}

impl<F> std::fmt::Debug for FnSystem<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnSystem").field("dim", &self.dim).finish()
    }
}

/// An [`OdeSystem`] with a projection hook, built from two closures.
pub struct ProjectedFnSystem<F, P> {
    inner: FnSystem<F>,
    projection: P,
}

impl<F, P> ProjectedFnSystem<F, P>
where
    F: Fn(f64, &[f64], &mut [f64]),
    P: Fn(f64, &mut [f64]),
{
    /// Wraps `f(t, y, dy)` and the post-step projection `p(t, y)`.
    pub fn new(dim: usize, f: F, projection: P) -> Self {
        ProjectedFnSystem {
            inner: FnSystem::new(dim, f),
            projection,
        }
    }
}

impl<F, P> OdeSystem for ProjectedFnSystem<F, P>
where
    F: Fn(f64, &[f64], &mut [f64]),
    P: Fn(f64, &mut [f64]),
{
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn rhs(&self, t: f64, y: &[f64], dy: &mut [f64]) {
        self.inner.rhs(t, y, dy);
    }

    fn project(&self, t: f64, y: &mut [f64]) {
        (self.projection)(t, y);
    }
}

impl<F, P> std::fmt::Debug for ProjectedFnSystem<F, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProjectedFnSystem")
            .field("dim", &self.inner.dim)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_system_delegates() {
        let sys = FnSystem::new(1, |t, _y: &[f64], dy: &mut [f64]| dy[0] = t);
        assert_eq!(sys.dim(), 1);
        let mut dy = [0.0];
        sys.rhs(3.0, &[0.0], &mut dy);
        assert_eq!(dy[0], 3.0);
        // Default projection is a no-op.
        let mut y = [5.0];
        sys.project(0.0, &mut y);
        assert_eq!(y[0], 5.0);
    }

    #[test]
    fn projected_system_applies_projection() {
        let sys = ProjectedFnSystem::new(
            2,
            |_t, y: &[f64], dy: &mut [f64]| dy.copy_from_slice(y),
            |_t, y: &mut [f64]| {
                let s: f64 = y.iter().sum();
                for v in y.iter_mut() {
                    *v /= s;
                }
            },
        );
        let mut y = [2.0, 6.0];
        sys.project(0.0, &mut y);
        assert_eq!(y, [0.25, 0.75]);
    }

    #[test]
    fn debug_is_nonempty() {
        let sys = FnSystem::new(3, |_t, _y: &[f64], _dy: &mut [f64]| {});
        assert!(format!("{sys:?}").contains('3'));
    }
}
