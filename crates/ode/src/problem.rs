//! The ODE problem abstraction.

/// A first-order ODE system `dy/dt = f(t, y)`.
///
/// Implementors write the derivative into a caller-provided buffer so the
/// solvers can run allocation-free inner loops.
///
/// # Example
///
/// ```
/// use mfcsl_ode::problem::{FnSystem, OdeSystem};
///
/// let sys = FnSystem::new(2, |_t, y: &[f64], dy: &mut [f64]| {
///     dy[0] = y[1];
///     dy[1] = -y[0];
/// });
/// let mut dy = [0.0; 2];
/// sys.rhs(0.0, &[1.0, 0.0], &mut dy);
/// assert_eq!(dy, [0.0, -1.0]);
/// ```
pub trait OdeSystem {
    /// State dimension.
    fn dim(&self) -> usize;

    /// Writes `f(t, y)` into `dy`.
    ///
    /// Implementations may assume `y.len() == dy.len() == self.dim()`.
    fn rhs(&self, t: f64, y: &[f64], dy: &mut [f64]);

    /// Optional post-step projection applied to every accepted solution
    /// point (e.g. renormalizing an occupancy vector onto the probability
    /// simplex). The default is a no-op.
    fn project(&self, _t: f64, _y: &mut [f64]) {}

    /// Writes `f(ts[b], y[:, b])` into column `b` of `dy` for every lane
    /// with `active[b]`, where `y`/`dy` are component-major,
    /// lane-minor structure-of-arrays buffers of shape `dim × width`
    /// (component `i` of lane `b` lives at `i * width + b`).
    ///
    /// This is the kernel of the batched solving lane
    /// ([`crate::batch`]): one invocation advances every lane of a
    /// [`crate::batch::BatchWorkspace`]. The contract is **column
    /// independence** — column `b` of `dy` may depend only on column `b` of
    /// `y` (and `ts[b]`), and inactive columns must be left untouched — so
    /// per-lane results match the scalar [`OdeSystem::rhs`] bitwise.
    ///
    /// The default implementation gathers each active column into a scratch
    /// vector, calls the scalar [`OdeSystem::rhs`], and scatters the result
    /// back: correct for every system (bitwise identical per column), at
    /// the cost of two small allocations per call. Hot systems override it
    /// with a real K×B kernel.
    ///
    /// Implementations may assume `ts.len() == active.len() == width` and
    /// `y.len() == dy.len() == self.dim() * width`.
    fn rhs_batch(&self, ts: &[f64], active: &[bool], y: &[f64], dy: &mut [f64], width: usize) {
        let n = self.dim();
        let mut col = vec![0.0; n];
        let mut dcol = vec![0.0; n];
        for b in 0..width {
            if !active[b] {
                continue;
            }
            for i in 0..n {
                col[i] = y[i * width + b];
            }
            self.rhs(ts[b], &col, &mut dcol);
            for i in 0..n {
                dy[i * width + b] = dcol[i];
            }
        }
    }

    /// Batched counterpart of [`OdeSystem::project`]: applies the post-step
    /// projection to every column of `y` with `active[b]` set, in the same
    /// structure-of-arrays layout as [`OdeSystem::rhs_batch`]. Same column
    /// independence contract; the default gathers, projects with the scalar
    /// hook, and scatters.
    fn project_batch(&self, ts: &[f64], active: &[bool], y: &mut [f64], width: usize) {
        let n = self.dim();
        let mut col = vec![0.0; n];
        for b in 0..width {
            if !active[b] {
                continue;
            }
            for i in 0..n {
                col[i] = y[i * width + b];
            }
            self.project(ts[b], &mut col);
            for i in 0..n {
                y[i * width + b] = col[i];
            }
        }
    }
}

/// Adapter turning a closure into an [`OdeSystem`].
pub struct FnSystem<F> {
    dim: usize,
    f: F,
}

impl<F: Fn(f64, &[f64], &mut [f64])> FnSystem<F> {
    /// Wraps the closure `f(t, y, dy)` as a system of dimension `dim`.
    pub fn new(dim: usize, f: F) -> Self {
        FnSystem { dim, f }
    }
}

impl<F: Fn(f64, &[f64], &mut [f64])> OdeSystem for FnSystem<F> {
    fn dim(&self) -> usize {
        self.dim
    }

    fn rhs(&self, t: f64, y: &[f64], dy: &mut [f64]) {
        (self.f)(t, y, dy);
    }
}

impl<F> std::fmt::Debug for FnSystem<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnSystem").field("dim", &self.dim).finish()
    }
}

/// An [`OdeSystem`] with a projection hook, built from two closures.
pub struct ProjectedFnSystem<F, P> {
    inner: FnSystem<F>,
    projection: P,
}

impl<F, P> ProjectedFnSystem<F, P>
where
    F: Fn(f64, &[f64], &mut [f64]),
    P: Fn(f64, &mut [f64]),
{
    /// Wraps `f(t, y, dy)` and the post-step projection `p(t, y)`.
    pub fn new(dim: usize, f: F, projection: P) -> Self {
        ProjectedFnSystem {
            inner: FnSystem::new(dim, f),
            projection,
        }
    }
}

impl<F, P> OdeSystem for ProjectedFnSystem<F, P>
where
    F: Fn(f64, &[f64], &mut [f64]),
    P: Fn(f64, &mut [f64]),
{
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn rhs(&self, t: f64, y: &[f64], dy: &mut [f64]) {
        self.inner.rhs(t, y, dy);
    }

    fn project(&self, t: f64, y: &mut [f64]) {
        (self.projection)(t, y);
    }
}

impl<F, P> std::fmt::Debug for ProjectedFnSystem<F, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProjectedFnSystem")
            .field("dim", &self.inner.dim)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_system_delegates() {
        let sys = FnSystem::new(1, |t, _y: &[f64], dy: &mut [f64]| dy[0] = t);
        assert_eq!(sys.dim(), 1);
        let mut dy = [0.0];
        sys.rhs(3.0, &[0.0], &mut dy);
        assert_eq!(dy[0], 3.0);
        // Default projection is a no-op.
        let mut y = [5.0];
        sys.project(0.0, &mut y);
        assert_eq!(y[0], 5.0);
    }

    #[test]
    fn projected_system_applies_projection() {
        let sys = ProjectedFnSystem::new(
            2,
            |_t, y: &[f64], dy: &mut [f64]| dy.copy_from_slice(y),
            |_t, y: &mut [f64]| {
                let s: f64 = y.iter().sum();
                for v in y.iter_mut() {
                    *v /= s;
                }
            },
        );
        let mut y = [2.0, 6.0];
        sys.project(0.0, &mut y);
        assert_eq!(y, [0.25, 0.75]);
    }

    #[test]
    fn debug_is_nonempty() {
        let sys = FnSystem::new(3, |_t, _y: &[f64], _dy: &mut [f64]| {});
        assert!(format!("{sys:?}").contains('3'));
    }
}
