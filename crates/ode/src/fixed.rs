//! Fixed-step explicit Runge–Kutta methods.
//!
//! These exist as convergence-test baselines and ablation points for the
//! adaptive production solver; the classic RK4 is also handy when a cheap,
//! predictable integration over a known-smooth interval is wanted.

use crate::problem::OdeSystem;
use crate::solution::{SolveStats, Trajectory};
use crate::OdeError;

/// Which fixed-step scheme to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixedMethod {
    /// Explicit Euler (order 1).
    Euler,
    /// Heun's method / explicit trapezoid (order 2).
    Heun,
    /// The classic Runge–Kutta method (order 4).
    Rk4,
}

impl FixedMethod {
    /// Formal order of accuracy.
    #[must_use]
    pub fn order(self) -> usize {
        match self {
            FixedMethod::Euler => 1,
            FixedMethod::Heun => 2,
            FixedMethod::Rk4 => 4,
        }
    }
}

/// Integrates `sys` from `t0` to `t1` with `steps` equal steps of the given
/// scheme, returning a dense trajectory.
///
/// # Errors
///
/// Returns [`OdeError::InvalidArgument`] for a reversed interval, zero
/// steps, or a state of the wrong dimension, and
/// [`OdeError::NonFiniteDerivative`] if the right-hand side misbehaves.
///
/// # Example
///
/// ```
/// use mfcsl_ode::fixed::{integrate_fixed, FixedMethod};
/// use mfcsl_ode::problem::FnSystem;
///
/// # fn main() -> Result<(), mfcsl_ode::OdeError> {
/// let sys = FnSystem::new(1, |_t, y: &[f64], dy: &mut [f64]| dy[0] = -y[0]);
/// let sol = integrate_fixed(&sys, FixedMethod::Rk4, 0.0, 1.0, &[1.0], 100)?;
/// assert!((sol.final_state()[0] - (-1.0_f64).exp()).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn integrate_fixed<S: OdeSystem>(
    sys: &S,
    method: FixedMethod,
    t0: f64,
    t1: f64,
    y0: &[f64],
    steps: usize,
) -> Result<Trajectory, OdeError> {
    let n = sys.dim();
    if y0.len() != n {
        return Err(OdeError::InvalidArgument(format!(
            "initial state has dimension {}, system expects {n}",
            y0.len()
        )));
    }
    if !(t1 >= t0) {
        return Err(OdeError::InvalidArgument(format!(
            "integration range [{t0}, {t1}] is reversed or NaN"
        )));
    }
    if steps == 0 {
        return Err(OdeError::InvalidArgument("steps must be positive".into()));
    }
    let mut stats = SolveStats::default();
    let mut y = y0.to_vec();
    let mut t = t0;
    sys.project(t, &mut y);
    let mut k = vec![0.0; n];
    sys.rhs(t, &y, &mut k);
    stats.rhs_evals += 1;

    let mut ts = vec![t];
    let mut ys = vec![y.clone()];
    let mut ds = vec![k.clone()];
    if t1 == t0 {
        return Trajectory::new(ts, ys, ds, stats);
    }
    let h = (t1 - t0) / steps as f64;

    let mut k2 = vec![0.0; n];
    let mut k3 = vec![0.0; n];
    let mut k4 = vec![0.0; n];
    let mut y_stage = vec![0.0; n];

    for step in 0..steps {
        match method {
            FixedMethod::Euler => {
                for i in 0..n {
                    y[i] += h * k[i];
                }
                stats.rhs_evals += 0;
            }
            FixedMethod::Heun => {
                for i in 0..n {
                    y_stage[i] = y[i] + h * k[i];
                }
                sys.rhs(t + h, &y_stage, &mut k2);
                stats.rhs_evals += 1;
                for i in 0..n {
                    y[i] += 0.5 * h * (k[i] + k2[i]);
                }
            }
            FixedMethod::Rk4 => {
                for i in 0..n {
                    y_stage[i] = y[i] + 0.5 * h * k[i];
                }
                sys.rhs(t + 0.5 * h, &y_stage, &mut k2);
                for i in 0..n {
                    y_stage[i] = y[i] + 0.5 * h * k2[i];
                }
                sys.rhs(t + 0.5 * h, &y_stage, &mut k3);
                for i in 0..n {
                    y_stage[i] = y[i] + h * k3[i];
                }
                sys.rhs(t + h, &y_stage, &mut k4);
                stats.rhs_evals += 3;
                for i in 0..n {
                    y[i] += h / 6.0 * (k[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
                }
            }
        }
        // Snap the final time exactly.
        t = if step + 1 == steps {
            t1
        } else {
            t0 + h * (step + 1) as f64
        };
        sys.project(t, &mut y);
        sys.rhs(t, &y, &mut k);
        stats.rhs_evals += 1;
        if k.iter().any(|v| !v.is_finite()) || y.iter().any(|v| !v.is_finite()) {
            return Err(OdeError::NonFiniteDerivative { t });
        }
        stats.accepted += 1;
        ts.push(t);
        ys.push(y.clone());
        ds.push(k.clone());
    }
    Trajectory::new(ts, ys, ds, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::FnSystem;

    fn decay() -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
        FnSystem::new(1, |_t, y: &[f64], dy: &mut [f64]| dy[0] = -y[0])
    }

    fn error_at_unit_time(method: FixedMethod, steps: usize) -> f64 {
        let sol = integrate_fixed(&decay(), method, 0.0, 1.0, &[1.0], steps).unwrap();
        (sol.final_state()[0] - (-1.0_f64).exp()).abs()
    }

    #[test]
    fn euler_converges_at_order_one() {
        let e1 = error_at_unit_time(FixedMethod::Euler, 100);
        let e2 = error_at_unit_time(FixedMethod::Euler, 200);
        let order = (e1 / e2).log2();
        assert!((order - 1.0).abs() < 0.1, "observed order {order}");
    }

    #[test]
    fn heun_converges_at_order_two() {
        let e1 = error_at_unit_time(FixedMethod::Heun, 100);
        let e2 = error_at_unit_time(FixedMethod::Heun, 200);
        let order = (e1 / e2).log2();
        assert!((order - 2.0).abs() < 0.1, "observed order {order}");
    }

    #[test]
    fn rk4_converges_at_order_four() {
        let e1 = error_at_unit_time(FixedMethod::Rk4, 20);
        let e2 = error_at_unit_time(FixedMethod::Rk4, 40);
        let order = (e1 / e2).log2();
        assert!((order - 4.0).abs() < 0.2, "observed order {order}");
    }

    #[test]
    fn orders_exposed() {
        assert_eq!(FixedMethod::Euler.order(), 1);
        assert_eq!(FixedMethod::Heun.order(), 2);
        assert_eq!(FixedMethod::Rk4.order(), 4);
    }

    #[test]
    fn validates_arguments() {
        assert!(integrate_fixed(&decay(), FixedMethod::Rk4, 1.0, 0.0, &[1.0], 10).is_err());
        assert!(integrate_fixed(&decay(), FixedMethod::Rk4, 0.0, 1.0, &[1.0, 2.0], 10).is_err());
        assert!(integrate_fixed(&decay(), FixedMethod::Rk4, 0.0, 1.0, &[1.0], 0).is_err());
    }

    #[test]
    fn zero_length_interval() {
        let sol = integrate_fixed(&decay(), FixedMethod::Euler, 2.0, 2.0, &[0.3], 5).unwrap();
        assert_eq!(sol.final_state(), vec![0.3]);
    }

    #[test]
    fn final_knot_time_is_exact() {
        let sol = integrate_fixed(&decay(), FixedMethod::Rk4, 0.0, 0.3, &[1.0], 3).unwrap();
        assert_eq!(sol.t_end(), 0.3);
    }
}
