//! Adaptive Dormand–Prince 5(4) integration.
//!
//! The production solver of the workspace: an explicit embedded Runge–Kutta
//! pair of orders 5 and 4 with FSAL (first-same-as-last), a smoothed
//! step-size controller, and dense output through the trajectory's cubic
//! Hermite representation.

use crate::problem::OdeSystem;
use crate::solution::{SolveStats, Trajectory};
use crate::{OdeError, OdeOptions};

/// Dormand–Prince 5(4) solver.
///
/// # Example
///
/// ```
/// use mfcsl_ode::dopri::Dopri5;
/// use mfcsl_ode::problem::FnSystem;
/// use mfcsl_ode::OdeOptions;
///
/// # fn main() -> Result<(), mfcsl_ode::OdeError> {
/// // Harmonic oscillator: y'' = -y.
/// let sys = FnSystem::new(2, |_t, y: &[f64], dy: &mut [f64]| {
///     dy[0] = y[1];
///     dy[1] = -y[0];
/// });
/// let sol = Dopri5::new(OdeOptions::default()).solve(&sys, 0.0, std::f64::consts::PI, &[1.0, 0.0])?;
/// assert!((sol.final_state()[0] + 1.0).abs() < 1e-7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Dopri5 {
    options: OdeOptions,
}

/// Reusable integration scratch: the seven stage buffers, the current and
/// trial states, and the flat knot arenas that accumulate accepted steps.
///
/// A workspace is allocated once and handed to [`Dopri5::solve_into`] for
/// every integration that should reuse its buffers — the hot Kolmogorov
/// loops issue thousands of `solve` calls, and without a workspace each one
/// re-allocates ten state-sized vectors plus one `Vec` clone of the state
/// and derivative per accepted step. The arenas are moved into the returned
/// [`Trajectory`] (which owns its knot data), so only the stage buffers
/// persist across calls; they are resized on demand if the dimension
/// changes.
#[derive(Debug, Default)]
pub struct SolverWorkspace {
    k1: Vec<f64>,
    k2: Vec<f64>,
    k3: Vec<f64>,
    k4: Vec<f64>,
    k5: Vec<f64>,
    k6: Vec<f64>,
    k7: Vec<f64>,
    y: Vec<f64>,
    y_stage: Vec<f64>,
    y_new: Vec<f64>,
    ts: Vec<f64>,
    ys: Vec<f64>,
    ds: Vec<f64>,
}

impl SolverWorkspace {
    /// Creates an empty workspace; buffers are sized lazily on first use.
    #[must_use]
    pub fn new() -> Self {
        SolverWorkspace::default()
    }

    /// Clears the arenas and sizes every stage buffer for dimension `n`.
    fn reset(&mut self, n: usize) {
        for buf in [
            &mut self.k1,
            &mut self.k2,
            &mut self.k3,
            &mut self.k4,
            &mut self.k5,
            &mut self.k6,
            &mut self.k7,
            &mut self.y,
            &mut self.y_stage,
            &mut self.y_new,
        ] {
            buf.clear();
            buf.resize(n, 0.0);
        }
        self.ts.clear();
        self.ys.clear();
        self.ds.clear();
    }

    /// Moves the accumulated knot arenas into a trajectory.
    fn take_trajectory(&mut self, dim: usize, stats: SolveStats) -> Result<Trajectory, OdeError> {
        Trajectory::from_flat(
            dim,
            std::mem::take(&mut self.ts),
            std::mem::take(&mut self.ys),
            std::mem::take(&mut self.ds),
            stats,
        )
    }
}

// Butcher tableau of the Dormand–Prince 5(4) pair. `pub(crate)` so the
// batched lane (crate::batch) steps with the exact same coefficients.
pub(crate) const A21: f64 = 1.0 / 5.0;
pub(crate) const A31: f64 = 3.0 / 40.0;
pub(crate) const A32: f64 = 9.0 / 40.0;
pub(crate) const A41: f64 = 44.0 / 45.0;
pub(crate) const A42: f64 = -56.0 / 15.0;
pub(crate) const A43: f64 = 32.0 / 9.0;
pub(crate) const A51: f64 = 19372.0 / 6561.0;
pub(crate) const A52: f64 = -25360.0 / 2187.0;
pub(crate) const A53: f64 = 64448.0 / 6561.0;
pub(crate) const A54: f64 = -212.0 / 729.0;
pub(crate) const A61: f64 = 9017.0 / 3168.0;
pub(crate) const A62: f64 = -355.0 / 33.0;
pub(crate) const A63: f64 = 46732.0 / 5247.0;
pub(crate) const A64: f64 = 49.0 / 176.0;
pub(crate) const A65: f64 = -5103.0 / 18656.0;
pub(crate) const B1: f64 = 35.0 / 384.0;
pub(crate) const B3: f64 = 500.0 / 1113.0;
pub(crate) const B4: f64 = 125.0 / 192.0;
pub(crate) const B5: f64 = -2187.0 / 6784.0;
pub(crate) const B6: f64 = 11.0 / 84.0;
// Error coefficients: b (order 5) minus b* (order 4).
pub(crate) const E1: f64 = 71.0 / 57_600.0;
pub(crate) const E3: f64 = -71.0 / 16_695.0;
pub(crate) const E4: f64 = 71.0 / 1_920.0;
pub(crate) const E5: f64 = -17_253.0 / 339_200.0;
pub(crate) const E6: f64 = 22.0 / 525.0;
pub(crate) const E7: f64 = -1.0 / 40.0;

pub(crate) const C2: f64 = 1.0 / 5.0;
pub(crate) const C3: f64 = 3.0 / 10.0;
pub(crate) const C4: f64 = 4.0 / 5.0;
pub(crate) const C5: f64 = 8.0 / 9.0;

pub(crate) const SAFETY: f64 = 0.9;
pub(crate) const FAC_MIN: f64 = 0.2;
pub(crate) const FAC_MAX: f64 = 5.0;

impl Dopri5 {
    /// Creates a solver with the given options.
    #[must_use]
    pub fn new(options: OdeOptions) -> Self {
        Dopri5 { options }
    }

    /// Borrows the solver options.
    #[must_use]
    pub fn options(&self) -> &OdeOptions {
        &self.options
    }

    /// Integrates `sys` from `t0` to `t1 >= t0` starting at `y0`, returning
    /// a dense trajectory.
    ///
    /// # Errors
    ///
    /// Returns [`OdeError::InvalidArgument`] for `t1 < t0`, a state of the
    /// wrong dimension, or invalid options; [`OdeError::StepSizeTooSmall`] /
    /// [`OdeError::MaxStepsExceeded`] if the controller fails; and
    /// [`OdeError::NonFiniteDerivative`] if the right-hand side misbehaves.
    pub fn solve<S: OdeSystem>(
        &self,
        sys: &S,
        t0: f64,
        t1: f64,
        y0: &[f64],
    ) -> Result<Trajectory, OdeError> {
        let mut ws = SolverWorkspace::new();
        self.solve_into(sys, t0, t1, y0, &mut ws)
    }

    /// Like [`Dopri5::solve`] but reuses a caller-owned [`SolverWorkspace`]
    /// for the stage buffers and knot arenas, so back-to-back integrations
    /// (the Kolmogorov row/column fan-outs, trajectory extensions) allocate
    /// nothing per call beyond the returned trajectory's own knot storage.
    ///
    /// The result is bitwise identical to [`Dopri5::solve`]: only the memory
    /// layout differs, not the arithmetic.
    ///
    /// # Errors
    ///
    /// Same contract as [`Dopri5::solve`].
    pub fn solve_into<S: OdeSystem>(
        &self,
        sys: &S,
        t0: f64,
        t1: f64,
        y0: &[f64],
        ws: &mut SolverWorkspace,
    ) -> Result<Trajectory, OdeError> {
        self.options.validate()?;
        let n = sys.dim();
        if y0.len() != n {
            return Err(OdeError::InvalidArgument(format!(
                "initial state has dimension {}, system expects {n}",
                y0.len()
            )));
        }
        if !(t1 >= t0) {
            return Err(OdeError::InvalidArgument(format!(
                "integration range [{t0}, {t1}] is reversed or NaN"
            )));
        }
        ws.reset(n);
        let mut stats = SolveStats::default();
        let mut t = t0;
        ws.y.copy_from_slice(y0);
        sys.project(t, &mut ws.y);
        sys.rhs(t, &ws.y, &mut ws.k1);
        stats.rhs_evals += 1;
        check_finite(t, &ws.k1)?;

        ws.ts.push(t);
        ws.ys.extend_from_slice(&ws.y);
        ws.ds.extend_from_slice(&ws.k1);

        if t1 == t0 {
            return ws.take_trajectory(n, stats);
        }

        let mut h = match self.options.h_init {
            Some(h) => h.min(self.options.h_max).min(t1 - t0),
            None => self.initial_step(sys, t, &ws.y, &ws.k1, t1, &mut stats),
        };

        let mut steps = 0usize;
        while t < t1 {
            steps += 1;
            if steps > self.options.max_steps {
                return Err(OdeError::MaxStepsExceeded {
                    steps: self.options.max_steps,
                    t,
                });
            }
            h = h.min(t1 - t).min(self.options.h_max);
            if h < self.options.h_min {
                // Allow the final sliver of the interval to be smaller than
                // h_min; everything else is a genuine underflow.
                if t1 - t > self.options.h_min {
                    return Err(OdeError::StepSizeTooSmall { t, h });
                }
                h = t1 - t;
            }

            // Stage 2.
            for i in 0..n {
                ws.y_stage[i] = ws.y[i] + h * A21 * ws.k1[i];
            }
            sys.rhs(t + C2 * h, &ws.y_stage, &mut ws.k2);
            // Stage 3.
            for i in 0..n {
                ws.y_stage[i] = ws.y[i] + h * (A31 * ws.k1[i] + A32 * ws.k2[i]);
            }
            sys.rhs(t + C3 * h, &ws.y_stage, &mut ws.k3);
            // Stage 4.
            for i in 0..n {
                ws.y_stage[i] = ws.y[i] + h * (A41 * ws.k1[i] + A42 * ws.k2[i] + A43 * ws.k3[i]);
            }
            sys.rhs(t + C4 * h, &ws.y_stage, &mut ws.k4);
            // Stage 5.
            for i in 0..n {
                ws.y_stage[i] = ws.y[i]
                    + h * (A51 * ws.k1[i] + A52 * ws.k2[i] + A53 * ws.k3[i] + A54 * ws.k4[i]);
            }
            sys.rhs(t + C5 * h, &ws.y_stage, &mut ws.k5);
            // Stage 6 (c = 1).
            for i in 0..n {
                ws.y_stage[i] = ws.y[i]
                    + h * (A61 * ws.k1[i]
                        + A62 * ws.k2[i]
                        + A63 * ws.k3[i]
                        + A64 * ws.k4[i]
                        + A65 * ws.k5[i]);
            }
            sys.rhs(t + h, &ws.y_stage, &mut ws.k6);
            // 5th-order solution (also stage 7 location).
            for i in 0..n {
                ws.y_new[i] = ws.y[i]
                    + h * (B1 * ws.k1[i]
                        + B3 * ws.k3[i]
                        + B4 * ws.k4[i]
                        + B5 * ws.k5[i]
                        + B6 * ws.k6[i]);
            }
            sys.rhs(t + h, &ws.y_new, &mut ws.k7);
            stats.rhs_evals += 6;
            check_finite(t + h, &ws.k7)?;

            // Scaled error norm.
            let mut err_sq = 0.0;
            for i in 0..n {
                let err_i = h
                    * (E1 * ws.k1[i]
                        + E3 * ws.k3[i]
                        + E4 * ws.k4[i]
                        + E5 * ws.k5[i]
                        + E6 * ws.k6[i]
                        + E7 * ws.k7[i]);
                let scale =
                    self.options.atol + self.options.rtol * ws.y[i].abs().max(ws.y_new[i].abs());
                let q = err_i / scale;
                err_sq += q * q;
            }
            let err = (err_sq / n as f64).sqrt();

            if err <= 1.0 || h <= self.options.h_min {
                // Accept.
                stats.accepted += 1;
                let t_new = t + h;
                // Stash the pre-projection state in y_stage (free scratch at
                // this point) so we only pay the FSAL refresh when the
                // projection actually moved the accepted point; k7 was
                // evaluated at the unprojected state, so when the point is
                // unchanged the stored derivative is already exact and
                // skipping the refresh is bitwise-neutral.
                ws.y_stage.copy_from_slice(&ws.y_new);
                sys.project(t_new, &mut ws.y_new);
                if ws.y_new != ws.y_stage {
                    sys.rhs(t_new, &ws.y_new, &mut ws.k7);
                    stats.rhs_evals += 1;
                }
                t = t_new;
                std::mem::swap(&mut ws.y, &mut ws.y_new);
                std::mem::swap(&mut ws.k1, &mut ws.k7);
                ws.ts.push(t);
                ws.ys.extend_from_slice(&ws.y);
                ws.ds.extend_from_slice(&ws.k1);
            } else {
                stats.rejected += 1;
            }
            // Step-size update (order-5 controller).
            let fac = (SAFETY * err.powf(-0.2)).clamp(FAC_MIN, FAC_MAX);
            h *= fac;
        }
        ws.take_trajectory(n, stats)
    }

    /// Hairer-style automatic initial step selection.
    fn initial_step<S: OdeSystem>(
        &self,
        sys: &S,
        t0: f64,
        y0: &[f64],
        f0: &[f64],
        t1: f64,
        stats: &mut SolveStats,
    ) -> f64 {
        let n = y0.len();
        let scale: Vec<f64> = y0
            .iter()
            .map(|&yi| self.options.atol + self.options.rtol * yi.abs())
            .collect();
        let d0 = rms(y0, &scale);
        let d1 = rms(f0, &scale);
        let h0 = if d0 < 1e-5 || d1 < 1e-5 {
            1e-6
        } else {
            0.01 * d0 / d1
        };
        // One explicit Euler step to estimate the second derivative.
        let y1: Vec<f64> = (0..n).map(|i| y0[i] + h0 * f0[i]).collect();
        let mut f1 = vec![0.0; n];
        sys.rhs(t0 + h0, &y1, &mut f1);
        stats.rhs_evals += 1;
        let diff: Vec<f64> = (0..n).map(|i| f1[i] - f0[i]).collect();
        let d2 = rms(&diff, &scale) / h0;
        let max_d = d1.max(d2);
        let h1 = if max_d <= 1e-15 {
            (h0 * 1e-3).max(1e-6)
        } else {
            (0.01 / max_d).powf(0.2)
        };
        (100.0 * h0)
            .min(h1)
            .min(t1 - t0)
            .min(self.options.h_max)
            .max(self.options.h_min)
    }
}

impl Default for Dopri5 {
    fn default() -> Self {
        Dopri5::new(OdeOptions::default())
    }
}

fn rms(v: &[f64], scale: &[f64]) -> f64 {
    let s: f64 = v
        .iter()
        .zip(scale)
        .map(|(a, s)| (a / s) * (a / s))
        .sum::<f64>()
        / v.len() as f64;
    s.sqrt()
}

fn check_finite(t: f64, v: &[f64]) -> Result<(), OdeError> {
    if v.iter().all(|x| x.is_finite()) {
        Ok(())
    } else {
        Err(OdeError::NonFiniteDerivative { t })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{FnSystem, ProjectedFnSystem};

    fn decay() -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
        FnSystem::new(1, |_t, y: &[f64], dy: &mut [f64]| dy[0] = -y[0])
    }

    #[test]
    fn exponential_decay_high_accuracy() {
        let sol = Dopri5::new(OdeOptions::default().with_tolerances(1e-12, 1e-14))
            .solve(&decay(), 0.0, 5.0, &[1.0])
            .unwrap();
        let exact = (-5.0_f64).exp();
        assert!((sol.final_state()[0] - exact).abs() < 1e-11);
    }

    #[test]
    fn dense_output_accuracy() {
        let sol = Dopri5::new(
            OdeOptions::default()
                .with_tolerances(1e-10, 1e-13)
                .with_h_max(0.1),
        )
        .solve(&decay(), 0.0, 3.0, &[1.0])
        .unwrap();
        for &t in &[0.123, 0.77, 1.5, 2.9] {
            let exact = (-t_f(t)).exp();
            assert!(
                (sol.eval(t)[0] - exact).abs() < 1e-8,
                "dense output at t = {t}"
            );
        }
        fn t_f(t: f64) -> f64 {
            t
        }
    }

    #[test]
    fn oscillator_conserves_energy_approximately() {
        let sys = FnSystem::new(2, |_t, y: &[f64], dy: &mut [f64]| {
            dy[0] = y[1];
            dy[1] = -y[0];
        });
        let sol = Dopri5::new(OdeOptions::default().with_tolerances(1e-11, 1e-13))
            .solve(&sys, 0.0, 20.0 * std::f64::consts::PI, &[1.0, 0.0])
            .unwrap();
        let yf = sol.final_state();
        assert!((yf[0] - 1.0).abs() < 1e-7, "{yf:?}");
        assert!(yf[1].abs() < 1e-7);
    }

    #[test]
    fn time_dependent_rhs() {
        // dy/dt = 2t => y = t^2.
        let sys = FnSystem::new(1, |t, _y: &[f64], dy: &mut [f64]| dy[0] = 2.0 * t);
        let sol = Dopri5::default().solve(&sys, 0.0, 4.0, &[0.0]).unwrap();
        assert!((sol.final_state()[0] - 16.0).abs() < 1e-8);
    }

    #[test]
    fn zero_length_interval() {
        let sol = Dopri5::default().solve(&decay(), 1.0, 1.0, &[0.7]).unwrap();
        assert_eq!(sol.final_state(), vec![0.7]);
        assert_eq!(sol.stats().accepted, 0);
    }

    #[test]
    fn rejects_bad_arguments() {
        assert!(Dopri5::default().solve(&decay(), 1.0, 0.0, &[1.0]).is_err());
        assert!(Dopri5::default()
            .solve(&decay(), 0.0, 1.0, &[1.0, 2.0])
            .is_err());
        let bad_opts = OdeOptions::default().with_tolerances(-1.0, 1e-9);
        assert!(Dopri5::new(bad_opts)
            .solve(&decay(), 0.0, 1.0, &[1.0])
            .is_err());
    }

    #[test]
    fn nan_rhs_is_reported() {
        let sys = FnSystem::new(1, |_t, _y: &[f64], dy: &mut [f64]| dy[0] = f64::NAN);
        let err = Dopri5::default().solve(&sys, 0.0, 1.0, &[1.0]).unwrap_err();
        assert!(matches!(err, OdeError::NonFiniteDerivative { .. }));
    }

    #[test]
    fn max_steps_is_enforced() {
        let opts = OdeOptions::default().with_max_steps(3).with_h_max(1e-3);
        let err = Dopri5::new(opts)
            .solve(&decay(), 0.0, 10.0, &[1.0])
            .unwrap_err();
        assert!(matches!(err, OdeError::MaxStepsExceeded { .. }));
    }

    #[test]
    fn projection_is_applied_at_every_knot() {
        // A system whose exact flow preserves the simplex; inject the
        // renormalizing projection and verify every stored knot satisfies it.
        let sys = ProjectedFnSystem::new(
            2,
            |_t, y: &[f64], dy: &mut [f64]| {
                dy[0] = -y[0] + 0.5 * y[1];
                dy[1] = y[0] - 0.5 * y[1];
            },
            |_t, y: &mut [f64]| {
                let s = y[0] + y[1];
                y[0] /= s;
                y[1] /= s;
            },
        );
        let sol = Dopri5::default()
            .solve(&sys, 0.0, 10.0, &[0.9, 0.1])
            .unwrap();
        for &t in sol.knots() {
            let y = sol.eval(t);
            assert!((y[0] + y[1] - 1.0).abs() < 1e-12);
        }
        // Converges to the stationary distribution (1/3, 2/3).
        let yf = sol.final_state();
        assert!((yf[0] - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn solve_into_reuses_workspace_bitwise() {
        // One workspace across dimension changes and repeated solves; every
        // result must be bitwise identical to the allocating path.
        let mut ws = SolverWorkspace::new();
        let osc = FnSystem::new(2, |_t, y: &[f64], dy: &mut [f64]| {
            dy[0] = y[1];
            dy[1] = -y[0];
        });
        let solver = Dopri5::default();
        let a = solver.solve(&decay(), 0.0, 3.0, &[1.0]).unwrap();
        let b = solver.solve_into(&decay(), 0.0, 3.0, &[1.0], &mut ws).unwrap();
        assert_eq!(a, b);
        let c = solver.solve(&osc, 0.0, 7.0, &[1.0, 0.0]).unwrap();
        let d = solver.solve_into(&osc, 0.0, 7.0, &[1.0, 0.0], &mut ws).unwrap();
        assert_eq!(c, d);
        // Zero-length interval through the workspace path.
        let e = solver.solve_into(&decay(), 1.0, 1.0, &[0.5], &mut ws).unwrap();
        assert_eq!(e.final_state(), vec![0.5]);
    }

    #[test]
    fn stats_are_plausible() {
        let sol = Dopri5::default().solve(&decay(), 0.0, 1.0, &[1.0]).unwrap();
        let st = sol.stats();
        assert!(st.accepted >= 1);
        // 6 stage evals per accepted step (FSAL saves the 7th when the
        // projection leaves the accepted point untouched), plus rejections.
        assert!(st.rhs_evals >= 6 * st.accepted);
    }

    #[test]
    fn convergence_order_is_five() {
        // Fixed-step behaviour approximated by constraining h_max; halving
        // h_max should cut the error by roughly 2^5 once tolerances are loose
        // enough that h_max binds.
        let sys = FnSystem::new(1, |t, y: &[f64], dy: &mut [f64]| dy[0] = y[0] * t.cos());
        let exact = (1.0_f64.sin()).exp();
        let run = |h: f64| {
            let opts = OdeOptions::default()
                .with_tolerances(1e-2, 1e-2)
                .with_h_max(h);
            let sol = Dopri5::new(opts).solve(&sys, 0.0, 1.0, &[1.0]).unwrap();
            (sol.final_state()[0] - exact).abs()
        };
        let e1 = run(0.2);
        let e2 = run(0.1);
        let order = (e1 / e2).log2();
        assert!(
            order > 4.0,
            "observed order {order} (errors {e1:.3e}, {e2:.3e})"
        );
    }
}
