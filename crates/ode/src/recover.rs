//! The integration **recovery ladder**.
//!
//! The model checker's whole output is computed from ODE-integrated
//! probabilities, so an integration failure is the product failing. This
//! module turns a hard [`Dopri5`] failure into a graceful degradation
//! sequence:
//!
//! 1. **Primary** — the exact [`Dopri5::solve_into`] call the caller would
//!    have made. When it succeeds, the result is bitwise identical to a
//!    ladder-free solve.
//! 2. **Relaxed controller** — on [`OdeError::StepSizeTooSmall`],
//!    [`OdeError::MaxStepsExceeded`] or [`OdeError::NonFiniteDerivative`],
//!    retry with tolerances loosened to at least
//!    ([`RELAXED_RTOL`], [`RELAXED_ATOL`]): a transiently fussy error
//!    estimate (fast but benign dynamics, a spiky derivative) often clears
//!    at engineering accuracy.
//! 3. **Stiff fallback** — if the relaxed controller also fails, hand the
//!    problem to the A-stable [`ImplicitTrapezoid`], whose step size is not
//!    stability-limited. Its output is a [`Trajectory`] like any other, so
//!    dense-output consumers are oblivious to which rung produced it.
//!
//! Recoveries are recorded in the returned trajectory's [`SolveStats`]
//! (`recoveries`, `stiff_fallbacks`) so every layer above — engine stats,
//! CLI `--stats`, the daemon's `/metrics` — sees them without extra
//! plumbing. Argument errors ([`OdeError::InvalidArgument`],
//! [`OdeError::Math`]) are never retried: they describe the request, not
//! the dynamics. If the whole ladder fails, the *primary* rung's error is
//! returned — it names the original failure mode, which is what callers
//! and tests want to see.
//!
//! [`SolveStats`]: crate::SolveStats

use crate::dopri::{Dopri5, SolverWorkspace};
use crate::error::OdeError;
use crate::options::OdeOptions;
use crate::problem::OdeSystem;
use crate::solution::Trajectory;
use crate::stiff::ImplicitTrapezoid;

/// Relative-tolerance floor used by the relaxed retry rung.
pub const RELAXED_RTOL: f64 = 1e-6;
/// Absolute-tolerance floor used by the relaxed retry rung.
pub const RELAXED_ATOL: f64 = 1e-9;

/// Trapezoid steps per `h_max` interval of the requested span: ×4
/// oversampling keeps the dense output's interpolation error comparable to
/// the adaptive solver's own `h_max` cap.
const FALLBACK_STEPS_PER_H_MAX: usize = 4;
/// Floor on trapezoid steps, so short spans still resolve the dynamics.
const FALLBACK_MIN_STEPS: usize = 64;
/// Ceiling on trapezoid steps, bounding fallback cost on huge horizons.
const FALLBACK_MAX_STEPS: usize = 50_000;

/// Which rung of the ladder produced a recovered solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recovery {
    /// The primary adaptive solve succeeded; output is bitwise identical to
    /// calling [`Dopri5::solve_into`] directly.
    None,
    /// The relaxed-tolerance retry succeeded.
    Relaxed,
    /// The A-stable implicit-trapezoid fallback produced the solution.
    StiffFallback,
}

/// `true` for failures worth climbing the ladder for: the controller gave
/// up or the right-hand side misbehaved. Argument and linear-algebra errors
/// are deterministic properties of the request and are not retried.
fn recoverable(e: &OdeError) -> bool {
    matches!(
        e,
        OdeError::StepSizeTooSmall { .. }
            | OdeError::MaxStepsExceeded { .. }
            | OdeError::NonFiniteDerivative { .. }
    )
}

/// The relaxed-rung options: same controller limits, tolerances loosened to
/// at least the engineering-accuracy floor.
#[must_use]
pub fn relaxed_options(options: &OdeOptions) -> OdeOptions {
    options.with_tolerances(
        options.rtol.max(RELAXED_RTOL),
        options.atol.max(RELAXED_ATOL),
    )
}

/// Number of fixed trapezoid steps used by the fallback rung for the span
/// `[t0, t1]` under `options`. Deterministic in its inputs.
#[must_use]
pub fn fallback_steps(t0: f64, t1: f64, options: &OdeOptions) -> usize {
    let span = (t1 - t0).abs();
    if !(span > 0.0) || !span.is_finite() {
        return FALLBACK_MIN_STEPS;
    }
    // h_max is validated positive before the ladder ever reaches this rung.
    let per_h_max = (span / options.h_max).ceil();
    let per_h_max = if per_h_max.is_finite() && per_h_max >= 0.0 {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        {
            per_h_max.min(usize::MAX as f64) as usize
        }
    } else {
        FALLBACK_MAX_STEPS
    };
    per_h_max
        .saturating_mul(FALLBACK_STEPS_PER_H_MAX)
        .clamp(FALLBACK_MIN_STEPS, FALLBACK_MAX_STEPS)
}

/// Integrates `sys` over `[t0, t1]` through the recovery ladder, reusing
/// `ws` for the adaptive rungs.
///
/// Returns the trajectory together with the rung that produced it. When the
/// result was recovered, its [`Trajectory::stats`] carry the recovery
/// counters.
///
/// # Errors
///
/// Non-recoverable errors (invalid arguments, linear-algebra failures)
/// propagate immediately. If every rung fails, the **primary** rung's error
/// is returned.
pub fn solve_recovering<S: OdeSystem>(
    sys: &S,
    t0: f64,
    t1: f64,
    y0: &[f64],
    options: &OdeOptions,
    ws: &mut SolverWorkspace,
) -> Result<(Trajectory, Recovery), OdeError> {
    let primary_err = match Dopri5::new(*options).solve_into(sys, t0, t1, y0, ws) {
        Ok(trajectory) => return Ok((trajectory, Recovery::None)),
        Err(e) if !recoverable(&e) => return Err(e),
        Err(e) => e,
    };
    // Rung 2: relaxed controller — only if it actually loosens something.
    let relaxed = relaxed_options(options);
    if relaxed != *options {
        match Dopri5::new(relaxed).solve_into(sys, t0, t1, y0, ws) {
            Ok(mut trajectory) => {
                trajectory.mark_recovered(false);
                return Ok((trajectory, Recovery::Relaxed));
            }
            Err(e) if !recoverable(&e) => return Err(e),
            Err(_) => {}
        }
    }
    // Rung 3: A-stable implicit trapezoid with a deterministic step count.
    let steps = fallback_steps(t0, t1, options);
    match ImplicitTrapezoid::default().solve(sys, t0, t1, y0, steps) {
        Ok(mut trajectory) => {
            trajectory.mark_recovered(true);
            Ok((trajectory, Recovery::StiffFallback))
        }
        Err(_) => Err(primary_err),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::FnSystem;

    /// y' = -λ(y - cos t), the classic stiff test problem: the solution
    /// hugs cos t but the stability limit forces h ≈ 2.8/λ on explicit
    /// methods.
    fn stiff_sys(lambda: f64) -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
        FnSystem::new(1, move |t: f64, y: &[f64], dy: &mut [f64]| {
            dy[0] = -lambda * (y[0] - t.cos());
        })
    }

    #[test]
    fn healthy_solve_is_bitwise_identical_to_plain_dopri() {
        let sys = FnSystem::new(1, |_t, y: &[f64], dy: &mut [f64]| dy[0] = -y[0]);
        let options = OdeOptions::default();
        let direct = Dopri5::new(options).solve(&sys, 0.0, 3.0, &[1.0]).unwrap();
        let mut ws = SolverWorkspace::new();
        let (ladder, recovery) =
            solve_recovering(&sys, 0.0, 3.0, &[1.0], &options, &mut ws).unwrap();
        assert_eq!(recovery, Recovery::None);
        assert_eq!(ladder, direct);
        assert_eq!(ladder.stats().recoveries, 0);
        assert_eq!(ladder.stats().stiff_fallbacks, 0);
    }

    #[test]
    fn stiff_problem_fails_plain_and_recovers_via_trapezoid() {
        let lambda = 1e7;
        let sys = stiff_sys(lambda);
        // Stability limits Dopri5 to h ≈ 2.8/λ; the step budget makes it
        // give up quickly instead of grinding out millions of tiny steps.
        // Start on the smooth solution (y(0) = cos 0): the trapezoid is
        // A-stable but not L-stable, so an inconsistent initial transient
        // would oscillate undamped instead of decaying.
        let options = OdeOptions::default().with_max_steps(20_000);
        let plain = Dopri5::new(options).solve(&sys, 0.0, 10.0, &[1.0]);
        assert!(
            matches!(
                plain,
                Err(OdeError::MaxStepsExceeded { .. }) | Err(OdeError::StepSizeTooSmall { .. })
            ),
            "expected the plain solver to fail on the stiff fixture, got {plain:?}"
        );
        let mut ws = SolverWorkspace::new();
        let (trajectory, recovery) =
            solve_recovering(&sys, 0.0, 10.0, &[1.0], &options, &mut ws).unwrap();
        assert_eq!(recovery, Recovery::StiffFallback);
        assert_eq!(trajectory.stats().recoveries, 1);
        assert_eq!(trajectory.stats().stiff_fallbacks, 1);
        // For large λ the exact solution is ≈ cos t + O(1/λ).
        let y5 = trajectory.eval(5.0)[0];
        assert!(
            (y5 - 5.0_f64.cos()).abs() < 1e-2,
            "fallback solution inaccurate: y(5) = {y5}"
        );
        assert_eq!(trajectory.t_start(), 0.0);
        assert_eq!(trajectory.t_end(), 10.0);
    }

    #[test]
    fn overtight_tolerances_recover_via_relaxed_rung() {
        // A tolerance far below machine precision makes every step reject
        // until the controller hits h_min; the relaxed rung clears it.
        let sys = FnSystem::new(1, |t: f64, y: &[f64], dy: &mut [f64]| {
            dy[0] = -y[0] + t.sin();
        });
        let options = OdeOptions::default().with_tolerances(1e-300, 1e-300);
        assert!(Dopri5::new(options).solve(&sys, 0.0, 2.0, &[1.0]).is_err());
        let mut ws = SolverWorkspace::new();
        let (trajectory, recovery) =
            solve_recovering(&sys, 0.0, 2.0, &[1.0], &options, &mut ws).unwrap();
        assert_eq!(recovery, Recovery::Relaxed);
        assert_eq!(trajectory.stats().recoveries, 1);
        assert_eq!(trajectory.stats().stiff_fallbacks, 0);
    }

    #[test]
    fn argument_errors_are_not_retried() {
        let sys = FnSystem::new(1, |_t, y: &[f64], dy: &mut [f64]| dy[0] = -y[0]);
        let mut ws = SolverWorkspace::new();
        let r = solve_recovering(&sys, 0.0, 1.0, &[1.0, 2.0], &OdeOptions::default(), &mut ws);
        assert!(matches!(r, Err(OdeError::InvalidArgument(_))));
        let r = solve_recovering(&sys, 1.0, 0.0, &[1.0], &OdeOptions::default(), &mut ws);
        assert!(matches!(r, Err(OdeError::InvalidArgument(_))));
    }

    #[test]
    fn ladder_exhaustion_reports_the_primary_error() {
        // A right-hand side that is always NaN defeats every rung; the
        // error names the primary failure.
        let sys = FnSystem::new(1, |_t, _y: &[f64], dy: &mut [f64]| dy[0] = f64::NAN);
        let mut ws = SolverWorkspace::new();
        let r = solve_recovering(&sys, 0.0, 1.0, &[1.0], &OdeOptions::default(), &mut ws);
        assert!(matches!(r, Err(OdeError::NonFiniteDerivative { .. })), "{r:?}");
    }

    #[test]
    fn fallback_step_count_is_bounded_and_deterministic() {
        let o = OdeOptions::default();
        assert_eq!(fallback_steps(0.0, 10.0, &o), fallback_steps(0.0, 10.0, &o));
        assert!(fallback_steps(0.0, 1e-9, &o) >= 64);
        assert!(fallback_steps(0.0, 1e12, &o) <= 50_000);
        assert_eq!(fallback_steps(0.0, 0.0, &o), 64);
    }
}
