//! Event location on dense trajectories.
//!
//! An *event* is a time where a scalar function of the solution,
//! `g(t, y(t))`, crosses zero. The model checker expresses its questions in
//! this form: "when does the expected probability cross the threshold `p`?"
//! (the boundaries of `cSat(Ψ, m̄, θ)`, Sec. V-B of the paper) and "when does
//! state `s` enter or leave the satisfaction set?" (the discontinuity points
//! `T_i` of Sec. IV-C).
//!
//! Events are located after integration, on the dense output: each interval
//! between accepted steps is scanned on a refinement grid and sign changes
//! are polished with Brent's method.

use mfcsl_math::roots::brent;

use crate::solution::Trajectory;
use crate::OdeError;

/// Which sign changes count as events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Direction {
    /// Any sign change.
    #[default]
    Any,
    /// Only negative-to-positive crossings.
    Rising,
    /// Only positive-to-negative crossings.
    Falling,
}

/// A located event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Event time.
    pub t: f64,
    /// `true` if `g` was increasing through zero at the event.
    pub rising: bool,
}

/// Locates zero crossings of `g(t, y(t))` along a trajectory.
///
/// # Example
///
/// ```
/// use mfcsl_ode::dopri::Dopri5;
/// use mfcsl_ode::events::{EventLocator, Direction};
/// use mfcsl_ode::problem::FnSystem;
/// use mfcsl_ode::OdeOptions;
///
/// # fn main() -> Result<(), mfcsl_ode::OdeError> {
/// let sys = FnSystem::new(2, |_t, y: &[f64], dy: &mut [f64]| {
///     dy[0] = y[1];
///     dy[1] = -y[0];
/// });
/// let sol = Dopri5::new(OdeOptions::default()).solve(&sys, 0.0, 7.0, &[1.0, 0.0])?;
/// // cos(t) crosses zero at pi/2 and 3pi/2.
/// let events = EventLocator::new(|_t, y| y[0])
///     .with_direction(Direction::Falling)
///     .locate(&sol, 1e-10)?;
/// assert_eq!(events.len(), 1);
/// assert!((events[0].t - std::f64::consts::FRAC_PI_2).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub struct EventLocator<G> {
    g: G,
    direction: Direction,
    /// Subdivisions per accepted step when scanning for sign changes.
    refine: usize,
}

impl<G: Fn(f64, &[f64]) -> f64> EventLocator<G> {
    /// Creates a locator for the event function `g(t, y)`.
    pub fn new(g: G) -> Self {
        EventLocator {
            g,
            direction: Direction::Any,
            refine: 8,
        }
    }

    /// Restricts which crossings are reported.
    #[must_use]
    pub fn with_direction(mut self, direction: Direction) -> Self {
        self.direction = direction;
        self
    }

    /// Sets the per-step scan refinement (default 8). Higher values catch
    /// faster oscillations of `g` between accepted steps.
    #[must_use]
    pub fn with_refinement(mut self, refine: usize) -> Self {
        self.refine = refine.max(1);
        self
    }

    /// Returns all events on the trajectory, in increasing time order,
    /// located to absolute time tolerance `tol`.
    ///
    /// # Errors
    ///
    /// Returns [`OdeError::InvalidArgument`] if `tol <= 0`, and propagates
    /// root-refinement failures.
    pub fn locate(&self, traj: &Trajectory, tol: f64) -> Result<Vec<Event>, OdeError> {
        if !(tol > 0.0) {
            return Err(OdeError::InvalidArgument(format!(
                "event tolerance must be positive, got {tol}"
            )));
        }
        let eval_g = |t: f64| (self.g)(t, &traj.eval(t));
        let knots = traj.knots();
        let mut events: Vec<Event> = Vec::new();
        let mut prev_t = knots[0];
        let mut prev_g = eval_g(prev_t);
        for w in knots.windows(2) {
            let (a, b) = (w[0], w[1]);
            for i in 1..=self.refine {
                let t = if i == self.refine {
                    b
                } else {
                    a + (b - a) * i as f64 / self.refine as f64
                };
                let gt = eval_g(t);
                if prev_g == 0.0 {
                    // Exact zero at a grid point: report with the slope sign.
                    let rising = gt > 0.0;
                    push_event(
                        &mut events,
                        Event { t: prev_t, rising },
                        self.direction,
                        tol,
                    );
                } else if gt != 0.0 && prev_g.signum() != gt.signum() {
                    let root = brent(eval_g, prev_t, t, tol)?;
                    let rising = gt > 0.0;
                    push_event(&mut events, Event { t: root, rising }, self.direction, tol);
                }
                prev_t = t;
                prev_g = gt;
            }
        }
        if prev_g == 0.0 {
            // Trailing exact zero; slope direction unknown, treat as rising.
            push_event(
                &mut events,
                Event {
                    t: prev_t,
                    rising: true,
                },
                self.direction,
                tol,
            );
        }
        Ok(events)
    }

    /// Returns the first event after `t_min`, if any.
    ///
    /// # Errors
    ///
    /// See [`EventLocator::locate`].
    pub fn first_after(
        &self,
        traj: &Trajectory,
        t_min: f64,
        tol: f64,
    ) -> Result<Option<Event>, OdeError> {
        Ok(self
            .locate(traj, tol)?
            .into_iter()
            .find(|e| e.t > t_min + tol))
    }
}

fn push_event(events: &mut Vec<Event>, e: Event, direction: Direction, tol: f64) {
    let wanted = match direction {
        Direction::Any => true,
        Direction::Rising => e.rising,
        Direction::Falling => !e.rising,
    };
    if !wanted {
        return;
    }
    if events
        .last()
        .is_none_or(|last| (e.t - last.t).abs() > 2.0 * tol)
    {
        events.push(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dopri::Dopri5;
    use crate::problem::FnSystem;
    use crate::OdeOptions;

    fn oscillator_solution(t_end: f64) -> Trajectory {
        let sys = FnSystem::new(2, |_t, y: &[f64], dy: &mut [f64]| {
            dy[0] = y[1];
            dy[1] = -y[0];
        });
        Dopri5::new(OdeOptions::default().with_tolerances(1e-11, 1e-13))
            .solve(&sys, 0.0, t_end, &[1.0, 0.0])
            .unwrap()
    }

    #[test]
    fn finds_all_cosine_zeros() {
        let sol = oscillator_solution(10.0);
        let events = EventLocator::new(|_t, y: &[f64]| y[0])
            .locate(&sol, 1e-10)
            .unwrap();
        // cos zeros in [0, 10]: pi/2, 3pi/2, 5pi/2 -> 1.5708, 4.7124, 7.854.
        assert_eq!(events.len(), 3, "{events:?}");
        let expected = [0.5, 1.5, 2.5].map(|k| k * std::f64::consts::PI);
        for (e, x) in events.iter().zip(&expected) {
            assert!((e.t - x).abs() < 1e-8);
        }
        assert!(!events[0].rising);
        assert!(events[1].rising);
    }

    #[test]
    fn direction_filtering() {
        let sol = oscillator_solution(10.0);
        let rising = EventLocator::new(|_t, y: &[f64]| y[0])
            .with_direction(Direction::Rising)
            .locate(&sol, 1e-10)
            .unwrap();
        assert_eq!(rising.len(), 1);
        assert!((rising[0].t - 1.5 * std::f64::consts::PI).abs() < 1e-8);
        let falling = EventLocator::new(|_t, y: &[f64]| y[0])
            .with_direction(Direction::Falling)
            .locate(&sol, 1e-10)
            .unwrap();
        assert_eq!(falling.len(), 2);
    }

    #[test]
    fn first_after_skips_earlier_events() {
        let sol = oscillator_solution(10.0);
        let e = EventLocator::new(|_t, y: &[f64]| y[0])
            .first_after(&sol, 2.0, 1e-10)
            .unwrap()
            .unwrap();
        assert!((e.t - 1.5 * std::f64::consts::PI).abs() < 1e-8);
        let none = EventLocator::new(|_t, y: &[f64]| y[0])
            .first_after(&sol, 9.0, 1e-10)
            .unwrap();
        assert!(none.is_none());
    }

    #[test]
    fn no_events_when_no_crossing() {
        let sol = oscillator_solution(1.0);
        let events = EventLocator::new(|_t, y: &[f64]| y[0] + 10.0)
            .locate(&sol, 1e-10)
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn time_dependent_event_function() {
        let sol = oscillator_solution(2.0);
        // g = t - 1.25 crosses zero at exactly 1.25 regardless of the state.
        let events = EventLocator::new(|t, _y: &[f64]| t - 1.25)
            .locate(&sol, 1e-12)
            .unwrap();
        assert_eq!(events.len(), 1);
        assert!((events[0].t - 1.25).abs() < 1e-10);
        assert!(events[0].rising);
    }

    #[test]
    fn invalid_tolerance() {
        let sol = oscillator_solution(1.0);
        assert!(EventLocator::new(|_t, y: &[f64]| y[0])
            .locate(&sol, 0.0)
            .is_err());
    }

    #[test]
    fn exact_zero_at_start_is_reported_once() {
        let sol = oscillator_solution(3.0);
        // y[1] = -sin starts at exactly 0.
        let events = EventLocator::new(|_t, y: &[f64]| y[1])
            .locate(&sol, 1e-10)
            .unwrap();
        assert!(!events.is_empty());
        assert!(events[0].t.abs() < 1e-9);
        // No duplicate of the t=0 event.
        if events.len() > 1 {
            assert!(events[1].t > 1.0);
        }
    }
}
