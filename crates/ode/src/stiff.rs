//! An A-stable implicit method for stiff rate regimes.
//!
//! Mean-field models with widely separated rates (e.g. a fast activation
//! loop inside a slow epidemic) make explicit solvers take tiny steps. The
//! implicit trapezoidal rule is A-stable and second order; each step solves
//! its nonlinear equation by Newton iteration with a finite-difference
//! Jacobian and an LU factorization from `mfcsl-math`.

use mfcsl_math::lu::LuDecomposition;
use mfcsl_math::Matrix;

use crate::problem::OdeSystem;
use crate::solution::{SolveStats, Trajectory};
use crate::OdeError;

/// Fixed-step implicit trapezoidal integrator.
///
/// # Example
///
/// ```
/// use mfcsl_ode::stiff::ImplicitTrapezoid;
/// use mfcsl_ode::problem::FnSystem;
///
/// # fn main() -> Result<(), mfcsl_ode::OdeError> {
/// // Very stiff decay: y' = -1000 y. 50 implicit steps stay stable where
/// // explicit Euler with the same step size would explode.
/// let sys = FnSystem::new(1, |_t, y: &[f64], dy: &mut [f64]| dy[0] = -1000.0 * y[0]);
/// let sol = ImplicitTrapezoid::default().solve(&sys, 0.0, 1.0, &[1.0], 50)?;
/// assert!(sol.final_state()[0].abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ImplicitTrapezoid {
    /// Newton convergence tolerance on the step increment (max norm).
    pub newton_tol: f64,
    /// Maximum Newton iterations per step.
    pub max_newton_iters: usize,
    /// Finite-difference perturbation scale for the Jacobian.
    pub fd_eps: f64,
}

impl Default for ImplicitTrapezoid {
    fn default() -> Self {
        ImplicitTrapezoid {
            newton_tol: 1e-12,
            max_newton_iters: 25,
            fd_eps: 1e-7,
        }
    }
}

impl ImplicitTrapezoid {
    /// Integrates `sys` from `t0` to `t1` in `steps` equal implicit steps.
    ///
    /// # Errors
    ///
    /// Returns [`OdeError::InvalidArgument`] for bad arguments,
    /// [`OdeError::NewtonFailed`] if a step's Newton iteration does not
    /// converge, and propagates LU failures as [`OdeError::Math`].
    pub fn solve<S: OdeSystem>(
        &self,
        sys: &S,
        t0: f64,
        t1: f64,
        y0: &[f64],
        steps: usize,
    ) -> Result<Trajectory, OdeError> {
        let n = sys.dim();
        if y0.len() != n {
            return Err(OdeError::InvalidArgument(format!(
                "initial state has dimension {}, system expects {n}",
                y0.len()
            )));
        }
        if !(t1 >= t0) {
            return Err(OdeError::InvalidArgument(format!(
                "integration range [{t0}, {t1}] is reversed or NaN"
            )));
        }
        if steps == 0 {
            return Err(OdeError::InvalidArgument("steps must be positive".into()));
        }
        let mut stats = SolveStats::default();
        let mut t = t0;
        let mut y = y0.to_vec();
        sys.project(t, &mut y);
        let mut f_cur = vec![0.0; n];
        sys.rhs(t, &y, &mut f_cur);
        stats.rhs_evals += 1;

        let mut ts = vec![t];
        let mut ys = vec![y.clone()];
        let mut ds = vec![f_cur.clone()];
        if t1 == t0 {
            return Trajectory::new(ts, ys, ds, stats);
        }
        let h = (t1 - t0) / steps as f64;

        let mut f_next = vec![0.0; n];
        for step in 0..steps {
            let t_next = if step + 1 == steps {
                t1
            } else {
                t0 + h * (step + 1) as f64
            };
            // Predictor: the current state. An explicit-Euler predictor
            // `y + h f` overshoots by O(h·λ) on exactly the stiff problems
            // this method exists for, and can strand Newton in a region
            // where a clamping right-hand side has a singular Jacobian;
            // starting from `y` keeps the iterates near the solution
            // manifold at the cost of at most one extra iteration.
            let mut y_next: Vec<f64> = y.clone();
            // Newton iterations on
            //   G(y_next) = y_next - y - h/2 (f(t, y) + f(t_next, y_next)) = 0.
            let mut converged = false;
            let mut prev_step = f64::INFINITY;
            for _ in 0..self.max_newton_iters {
                sys.rhs(t_next, &y_next, &mut f_next);
                stats.rhs_evals += 1;
                let residual: Vec<f64> = (0..n)
                    .map(|i| y_next[i] - y[i] - 0.5 * h * (f_cur[i] + f_next[i]))
                    .collect();
                let jac = self.jacobian(sys, t_next, &y_next, &f_next, &mut stats);
                // Newton matrix: I - h/2 J.
                let mut newton = jac.scaled(-0.5 * h);
                for i in 0..n {
                    newton[(i, i)] += 1.0;
                }
                let delta = LuDecomposition::new(&newton)?.solve(&residual)?;
                let mut max_step = 0.0_f64;
                for i in 0..n {
                    y_next[i] -= delta[i];
                    max_step = max_step.max(delta[i].abs());
                }
                let scale = 1.0 + mfcsl_math::vec_ops::norm_inf(&y_next);
                if max_step <= self.newton_tol * scale {
                    converged = true;
                    break;
                }
                // Stagnation at the rounding floor: with a large Lipschitz
                // constant the residual's f64 noise (h·λ·ulp-level) can sit
                // just above `newton_tol`, so increments go tiny but stop
                // contracting. That is convergence, not failure.
                if max_step <= 1e4 * self.newton_tol * scale && max_step > 0.5 * prev_step {
                    converged = true;
                    break;
                }
                prev_step = max_step;
            }
            if !converged {
                return Err(OdeError::NewtonFailed { t: t_next });
            }
            sys.project(t_next, &mut y_next);
            sys.rhs(t_next, &y_next, &mut f_next);
            stats.rhs_evals += 1;
            if y_next.iter().any(|v| !v.is_finite()) {
                return Err(OdeError::NonFiniteDerivative { t: t_next });
            }
            stats.accepted += 1;
            t = t_next;
            y.copy_from_slice(&y_next);
            f_cur.copy_from_slice(&f_next);
            ts.push(t);
            ys.push(y.clone());
            ds.push(f_cur.clone());
        }
        Trajectory::new(ts, ys, ds, stats)
    }

    /// Forward-difference Jacobian of the right-hand side.
    fn jacobian<S: OdeSystem>(
        &self,
        sys: &S,
        t: f64,
        y: &[f64],
        f_at_y: &[f64],
        stats: &mut SolveStats,
    ) -> Matrix {
        let n = y.len();
        let mut jac = Matrix::zeros(n, n);
        let mut y_pert = y.to_vec();
        let mut f_pert = vec![0.0; n];
        for j in 0..n {
            let eps = self.fd_eps * (1.0 + y[j].abs());
            y_pert[j] = y[j] + eps;
            sys.rhs(t, &y_pert, &mut f_pert);
            stats.rhs_evals += 1;
            for i in 0..n {
                jac[(i, j)] = (f_pert[i] - f_at_y[i]) / eps;
            }
            y_pert[j] = y[j];
        }
        jac
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::{integrate_fixed, FixedMethod};
    use crate::problem::FnSystem;

    fn stiff_decay() -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
        FnSystem::new(1, |_t, y: &[f64], dy: &mut [f64]| dy[0] = -1000.0 * y[0])
    }

    #[test]
    fn stable_on_stiff_problem_where_explicit_explodes() {
        // 50 steps of h = 0.02 on lambda = -1000: explicit Euler diverges.
        let explicit = integrate_fixed(&stiff_decay(), FixedMethod::Euler, 0.0, 1.0, &[1.0], 50)
            .unwrap()
            .final_state()[0];
        assert!(explicit.abs() > 1e10, "explicit euler should blow up");
        let implicit = ImplicitTrapezoid::default()
            .solve(&stiff_decay(), 0.0, 1.0, &[1.0], 50)
            .unwrap()
            .final_state()[0];
        assert!(implicit.abs() < 1e-2, "implicit stays bounded: {implicit}");
    }

    #[test]
    fn second_order_convergence_on_smooth_problem() {
        let sys = FnSystem::new(1, |_t, y: &[f64], dy: &mut [f64]| dy[0] = -y[0]);
        let exact = (-1.0_f64).exp();
        let err = |steps| {
            (ImplicitTrapezoid::default()
                .solve(&sys, 0.0, 1.0, &[1.0], steps)
                .unwrap()
                .final_state()[0]
                - exact)
                .abs()
        };
        let e1 = err(50);
        let e2 = err(100);
        let order = (e1 / e2).log2();
        assert!((order - 2.0).abs() < 0.1, "observed order {order}");
    }

    #[test]
    fn nonlinear_problem_logistic() {
        // y' = y(1-y), y(0)=0.1; exact: 1/(1 + 9 e^{-t}).
        let sys = FnSystem::new(1, |_t, y: &[f64], dy: &mut [f64]| {
            dy[0] = y[0] * (1.0 - y[0])
        });
        let sol = ImplicitTrapezoid::default()
            .solve(&sys, 0.0, 5.0, &[0.1], 500)
            .unwrap();
        let exact = 1.0 / (1.0 + 9.0 * (-5.0_f64).exp());
        assert!((sol.final_state()[0] - exact).abs() < 1e-5);
    }

    #[test]
    fn linear_system_matches_expm() {
        // 2-state generator; compare against the matrix exponential.
        let sys = FnSystem::new(2, |_t, y: &[f64], dy: &mut [f64]| {
            dy[0] = -2.0 * y[0] + 1.0 * y[1];
            dy[1] = 2.0 * y[0] - 1.0 * y[1];
        });
        let sol = ImplicitTrapezoid::default()
            .solve(&sys, 0.0, 1.0, &[1.0, 0.0], 400)
            .unwrap();
        let a = Matrix::from_rows(&[&[-2.0, 1.0], &[2.0, -1.0]]).unwrap();
        let e = mfcsl_math::expm::expm(&a).unwrap();
        // Column vector convention: y(1) = e^{A} y(0).
        let expected = e.mul_vec(&[1.0, 0.0]).unwrap();
        for (a, b) in sol.final_state().iter().zip(&expected) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn validates_arguments() {
        let s = stiff_decay();
        assert!(ImplicitTrapezoid::default()
            .solve(&s, 1.0, 0.0, &[1.0], 10)
            .is_err());
        assert!(ImplicitTrapezoid::default()
            .solve(&s, 0.0, 1.0, &[1.0, 2.0], 10)
            .is_err());
        assert!(ImplicitTrapezoid::default()
            .solve(&s, 0.0, 1.0, &[1.0], 0)
            .is_err());
    }

    #[test]
    fn zero_interval() {
        let sol = ImplicitTrapezoid::default()
            .solve(&stiff_decay(), 0.5, 0.5, &[2.0], 10)
            .unwrap();
        assert_eq!(sol.final_state(), vec![2.0]);
    }
}
