//! Solver output: dense trajectories.

use mfcsl_math::interp::HermiteCurve;
use serde::{Deserialize, Serialize};

use crate::OdeError;

/// Statistics collected during an integration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SolveStats {
    /// Accepted steps.
    pub accepted: usize,
    /// Rejected (re-tried) steps.
    pub rejected: usize,
    /// Right-hand-side evaluations.
    pub rhs_evals: usize,
    /// Integrations that only succeeded after at least one rung of the
    /// recovery ladder (see [`crate::recover`]). Zero for a healthy solve.
    pub recoveries: usize,
    /// Integrations produced by the A-stable [`crate::stiff`] fallback, the
    /// ladder's last rung. Always `<= recoveries`.
    pub stiff_fallbacks: usize,
}

/// A dense ODE solution on `[t_start, t_end]`.
///
/// The trajectory stores the state and derivative at every accepted step and
/// interpolates in between with a C¹ cubic Hermite curve, so it can be
/// evaluated at arbitrary times — which is exactly what the Kolmogorov-based
/// model-checking algorithms need when they query `m̄(t)` at their own
/// integration times.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    curve: HermiteCurve,
    stats: SolveStats,
}

impl Trajectory {
    /// Builds a trajectory from knot data.
    ///
    /// # Errors
    ///
    /// Propagates validation errors from [`HermiteCurve::new`].
    pub fn new(
        ts: Vec<f64>,
        ys: Vec<Vec<f64>>,
        ds: Vec<Vec<f64>>,
        stats: SolveStats,
    ) -> Result<Self, OdeError> {
        Ok(Trajectory {
            curve: HermiteCurve::new(ts, ys, ds)?,
            stats,
        })
    }

    /// Builds a trajectory from flat knot-major arenas (`ys[k*dim..]` is the
    /// state at `ts[k]`), the layout the solver workspace accumulates
    /// accepted steps into.
    ///
    /// # Errors
    ///
    /// Propagates validation errors from [`HermiteCurve::from_flat`].
    pub fn from_flat(
        dim: usize,
        ts: Vec<f64>,
        ys: Vec<f64>,
        ds: Vec<f64>,
        stats: SolveStats,
    ) -> Result<Self, OdeError> {
        Ok(Trajectory {
            curve: HermiteCurve::from_flat(dim, ts, ys, ds)?,
            stats,
        })
    }

    /// Decomposes the trajectory into the flat knot-major arenas accepted
    /// by [`Trajectory::from_flat`], as `(dim, ts, ys, ds, stats)`. The
    /// round trip is bitwise exact, which is what lets snapshot formats
    /// persist a trajectory without touching its numerics.
    #[must_use]
    pub fn to_flat(&self) -> (usize, Vec<f64>, Vec<f64>, Vec<f64>, SolveStats) {
        let dim = self.curve.dim();
        let ts = self.curve.knots().to_vec();
        let mut ys = Vec::with_capacity(ts.len() * dim);
        let mut ds = Vec::with_capacity(ts.len() * dim);
        for k in 0..ts.len() {
            ys.extend_from_slice(self.curve.value_at(k));
            ds.extend_from_slice(self.curve.derivative_at(k));
        }
        (dim, ts, ys, ds, self.stats)
    }

    /// State dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.curve.dim()
    }

    /// Start of the solved time range.
    #[must_use]
    pub fn t_start(&self) -> f64 {
        self.curve.t_start()
    }

    /// End of the solved time range.
    #[must_use]
    pub fn t_end(&self) -> f64 {
        self.curve.t_end()
    }

    /// The accepted step times.
    #[must_use]
    pub fn knots(&self) -> &[f64] {
        self.curve.knots()
    }

    /// Integration statistics.
    #[must_use]
    pub fn stats(&self) -> SolveStats {
        self.stats
    }

    /// Evaluates the state at time `t` (clamped to the solved range).
    #[must_use]
    pub fn eval(&self, t: f64) -> Vec<f64> {
        self.curve.eval(t)
    }

    /// Evaluates the state at time `t` into a caller-provided buffer.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.dim()`.
    pub fn eval_into(&self, t: f64, out: &mut [f64]) {
        self.curve.eval_into(t, out);
    }

    /// Evaluates the state derivative at time `t`.
    #[must_use]
    pub fn eval_derivative(&self, t: f64) -> Vec<f64> {
        self.curve.eval_derivative(t)
    }

    /// The final state `y(t_end)`.
    #[must_use]
    pub fn final_state(&self) -> Vec<f64> {
        self.eval(self.t_end())
    }

    /// Borrows the underlying interpolation curve.
    #[must_use]
    pub fn curve(&self) -> &HermiteCurve {
        &self.curve
    }

    /// Stamps this trajectory as produced by the recovery ladder: one
    /// recovered integration, plus one stiff fallback when the implicit
    /// trapezoid rung produced it.
    pub(crate) fn mark_recovered(&mut self, stiff_fallback: bool) {
        self.stats.recoveries += 1;
        if stiff_fallback {
            self.stats.stiff_fallbacks += 1;
        }
    }

    /// Appends `tail` (a solution segment starting exactly at this
    /// trajectory's `t_end`) and sums the integration statistics.
    ///
    /// The knot data on the original `[t_start, t_end]` range is kept
    /// bitwise intact, so evaluations there are unchanged; only the solved
    /// range grows. This is how the analysis engine extends a cached
    /// mean-field trajectory to a longer horizon without re-solving from 0.
    ///
    /// # Errors
    ///
    /// Propagates [`HermiteCurve::concat`] errors: dimension mismatch or a
    /// tail that does not start at `t_end`.
    pub fn extended_with(self, tail: &Trajectory) -> Result<Self, OdeError> {
        let stats = SolveStats {
            accepted: self.stats.accepted + tail.stats.accepted,
            rejected: self.stats.rejected + tail.stats.rejected,
            rhs_evals: self.stats.rhs_evals + tail.stats.rhs_evals,
            recoveries: self.stats.recoveries + tail.stats.recoveries,
            stiff_fallbacks: self.stats.stiff_fallbacks + tail.stats.stiff_fallbacks,
        };
        Ok(Trajectory {
            curve: self.curve.concat(&tail.curve)?,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_trajectory() -> Trajectory {
        // y(t) = 2t on [0, 2].
        Trajectory::new(
            vec![0.0, 1.0, 2.0],
            vec![vec![0.0], vec![2.0], vec![4.0]],
            vec![vec![2.0], vec![2.0], vec![2.0]],
            SolveStats {
                accepted: 2,
                rejected: 0,
                rhs_evals: 12,
                ..SolveStats::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn accessors() {
        let tr = linear_trajectory();
        assert_eq!(tr.dim(), 1);
        assert_eq!(tr.t_start(), 0.0);
        assert_eq!(tr.t_end(), 2.0);
        assert_eq!(tr.knots().len(), 3);
        assert_eq!(tr.stats().accepted, 2);
        assert_eq!(tr.final_state(), vec![4.0]);
    }

    #[test]
    fn interpolation_is_exact_for_linear_data() {
        let tr = linear_trajectory();
        assert!((tr.eval(0.7)[0] - 1.4).abs() < 1e-14);
        assert!((tr.eval_derivative(1.3)[0] - 2.0).abs() < 1e-12);
        let mut buf = [0.0];
        tr.eval_into(1.5, &mut buf);
        assert!((buf[0] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn extension_preserves_prefix_and_sums_stats() {
        let tr = linear_trajectory();
        let tail = Trajectory::new(
            vec![2.0, 3.0],
            vec![vec![4.0], vec![6.0]],
            vec![vec![2.0], vec![2.0]],
            SolveStats {
                accepted: 1,
                rejected: 2,
                rhs_evals: 7,
                ..SolveStats::default()
            },
        )
        .unwrap();
        let before = tr.eval(0.7);
        let joined = tr.extended_with(&tail).unwrap();
        assert_eq!(joined.t_end(), 3.0);
        assert_eq!(joined.eval(0.7), before);
        assert!((joined.eval(2.5)[0] - 5.0).abs() < 1e-14);
        assert_eq!(joined.stats().accepted, 3);
        assert_eq!(joined.stats().rejected, 2);
        assert_eq!(joined.stats().rhs_evals, 19);
        // A gap is rejected.
        let gap = linear_trajectory();
        assert!(joined.extended_with(&gap).is_err());
    }

    #[test]
    fn invalid_knots_rejected() {
        let r = Trajectory::new(
            vec![0.0, 0.0],
            vec![vec![0.0], vec![1.0]],
            vec![vec![0.0], vec![0.0]],
            SolveStats::default(),
        );
        assert!(r.is_err());
    }
}
