//! Deterministic, seeded fault injection at the ODE right-hand-side
//! boundary.
//!
//! This is a **test hook**: nothing in the workspace constructs a
//! [`FaultPlan`] on a production path unless the operator explicitly opts
//! in (the daemon requires `--allow-faults`, the chaos tests pass plans
//! directly). With no plan installed the wrappers are never built and the
//! healthy pipeline is bitwise unchanged.
//!
//! A [`FaultySystem`] wraps any [`OdeSystem`] and, on a deterministic
//! pseudo-random schedule derived from (`seed`, `period`), corrupts the
//! derivative it returns:
//!
//! * [`FaultMode::Nan`] — overwrite the derivative with NaN, which the
//!   solvers must surface as [`OdeError::NonFiniteDerivative`]
//!   (never a panic, never a poisoned worker);
//! * [`FaultMode::Reject`] — scale the derivative by a huge factor, forcing
//!   the adaptive error estimator to reject the step and shrink `h`;
//! * [`FaultMode::Stiffen`] — add an artificially stiff relaxation term
//!   `-K·(yᵢ − 1/n)` pulling the state toward the uniform point. The term
//!   sums to zero over the components, so simplex-projected systems stay
//!   consistent; with `period == 1` it yields a *consistent* stiff
//!   right-hand side that the implicit-trapezoid fallback can integrate,
//!   exercising the whole recovery ladder.
//!
//! Firing is decided by an xorshift64 draw per `rhs` call — same seed,
//! same call sequence, same faults, so every chaos test is reproducible.
//!
//! [`OdeError::NonFiniteDerivative`]: crate::OdeError::NonFiniteDerivative

use std::cell::Cell;

use crate::problem::OdeSystem;

/// Rate constant of the artificial stiff term: large enough that explicit
/// stability limits bite at any practical tolerance.
const STIFF_RATE: f64 = 1e12;

/// Scale factor used by [`FaultMode::Reject`] to blow up the local error
/// estimate.
const REJECT_SCALE: f64 = 1e6;

/// What a firing fault does to the derivative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultMode {
    /// Overwrite the derivative with NaN.
    Nan,
    /// Scale the derivative so the step-error estimator rejects the step.
    Reject,
    /// Add an artificially stiff relaxation toward the uniform point.
    Stiffen,
}

impl FaultMode {
    /// Parses the wire/CLI spelling of a mode.
    #[must_use]
    pub fn parse(s: &str) -> Option<FaultMode> {
        match s {
            "nan" => Some(FaultMode::Nan),
            "reject" => Some(FaultMode::Reject),
            "stiffen" => Some(FaultMode::Stiffen),
            _ => None,
        }
    }

    /// The wire/CLI spelling of this mode.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            FaultMode::Nan => "nan",
            FaultMode::Reject => "reject",
            FaultMode::Stiffen => "stiffen",
        }
    }
}

/// A deterministic, seeded fault-injection schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    /// What a firing fault does.
    pub mode: FaultMode,
    /// A fault fires on average once per `period` derivative evaluations
    /// (`1` fires on every evaluation). Clamped to at least 1.
    pub period: u64,
    /// Seed of the xorshift64 draw stream.
    pub seed: u64,
}

impl FaultPlan {
    /// Creates a plan; `period` is clamped to at least 1.
    #[must_use]
    pub fn new(mode: FaultMode, period: u64, seed: u64) -> FaultPlan {
        FaultPlan {
            mode,
            period: period.max(1),
            seed,
        }
    }
}

/// An [`OdeSystem`] wrapper that injects faults per a [`FaultPlan`].
///
/// Interior mutability (`Cell`) keeps the wrapper usable through the
/// `&self` right-hand-side interface; the draw stream advances once per
/// `rhs` call regardless of mode, so the schedule depends only on the call
/// sequence.
#[derive(Debug)]
pub struct FaultySystem<'a, S: OdeSystem> {
    inner: &'a S,
    plan: FaultPlan,
    state: Cell<u64>,
    injected: Cell<u64>,
}

impl<'a, S: OdeSystem> FaultySystem<'a, S> {
    /// Wraps `inner` with the given plan.
    #[must_use]
    pub fn new(inner: &'a S, plan: FaultPlan) -> FaultySystem<'a, S> {
        // Scramble the seed so nearby seeds give unrelated streams; the
        // xorshift state must be non-zero.
        let state = (plan.seed ^ 0x9E37_79B9_7F4A_7C15).max(1);
        FaultySystem {
            inner,
            plan,
            state: Cell::new(state),
            injected: Cell::new(0),
        }
    }

    /// Number of faults injected so far.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.injected.get()
    }

    /// Advances the xorshift64 stream and decides whether this call fires.
    fn fires(&self) -> bool {
        let mut x = self.state.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state.set(x);
        x.is_multiple_of(self.plan.period)
    }
}

impl<S: OdeSystem> OdeSystem for FaultySystem<'_, S> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn rhs(&self, t: f64, y: &[f64], dy: &mut [f64]) {
        self.inner.rhs(t, y, dy);
        if !self.fires() {
            return;
        }
        self.injected.set(self.injected.get() + 1);
        match self.plan.mode {
            FaultMode::Nan => dy.fill(f64::NAN),
            FaultMode::Reject => {
                for d in dy.iter_mut() {
                    *d *= REJECT_SCALE;
                }
            }
            FaultMode::Stiffen => {
                let n = dy.len() as f64;
                for (d, &yi) in dy.iter_mut().zip(y) {
                    *d -= STIFF_RATE * (yi - 1.0 / n);
                }
            }
        }
    }

    fn project(&self, t: f64, y: &mut [f64]) {
        self.inner.project(t, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dopri::{Dopri5, SolverWorkspace};
    use crate::problem::FnSystem;
    use crate::recover::{solve_recovering, Recovery};
    use crate::{OdeError, OdeOptions};

    fn decay() -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
        FnSystem::new(1, |_t, y: &[f64], dy: &mut [f64]| dy[0] = -y[0])
    }

    #[test]
    fn mode_spellings_round_trip() {
        for mode in [FaultMode::Nan, FaultMode::Reject, FaultMode::Stiffen] {
            assert_eq!(FaultMode::parse(mode.as_str()), Some(mode));
        }
        assert_eq!(FaultMode::parse("bogus"), None);
    }

    #[test]
    fn nan_fault_surfaces_as_structured_error() {
        let sys = decay();
        let faulty = FaultySystem::new(&sys, FaultPlan::new(FaultMode::Nan, 1, 42));
        let r = Dopri5::new(OdeOptions::default()).solve(&faulty, 0.0, 1.0, &[1.0]);
        assert!(matches!(r, Err(OdeError::NonFiniteDerivative { .. })), "{r:?}");
        assert!(faulty.injected() >= 1);
    }

    #[test]
    fn same_seed_same_faults() {
        let sys = decay();
        let run = |seed: u64| {
            let faulty = FaultySystem::new(&sys, FaultPlan::new(FaultMode::Reject, 8, seed));
            let r = Dopri5::new(OdeOptions::default().with_max_steps(500))
                .solve(&faulty, 0.0, 5.0, &[1.0]);
            (r, faulty.injected())
        };
        let (r1, n1) = run(7);
        let (r2, n2) = run(7);
        assert_eq!(r1, r2);
        assert_eq!(n1, n2);
        let (_, n3) = run(8);
        assert!(n3 > 0 || n1 > 0);
    }

    #[test]
    fn reject_fault_inflates_rejections() {
        let sys = decay();
        let clean = Dopri5::new(OdeOptions::default())
            .solve(&sys, 0.0, 5.0, &[1.0])
            .unwrap();
        let faulty = FaultySystem::new(&sys, FaultPlan::new(FaultMode::Reject, 64, 3));
        let shaken = Dopri5::new(OdeOptions::default())
            .solve(&faulty, 0.0, 5.0, &[1.0])
            .unwrap();
        assert!(
            shaken.stats().rejected > clean.stats().rejected,
            "expected forced rejections: clean {} vs faulty {}",
            clean.stats().rejected,
            shaken.stats().rejected
        );
    }

    #[test]
    fn stiffen_fault_drives_the_full_ladder() {
        let sys = decay();
        // Every evaluation stiffened: a consistent, A-stable-solvable RHS
        // that defeats the explicit rungs within the step budget.
        let faulty = FaultySystem::new(&sys, FaultPlan::new(FaultMode::Stiffen, 1, 11));
        let options = OdeOptions::default().with_max_steps(20_000);
        // Start at the uniform point the stiff term relaxes toward, so the
        // non-L-stable trapezoid fallback is not handed an undamped
        // transient.
        assert!(Dopri5::new(options).solve(&faulty, 0.0, 1.0, &[1.0]).is_err());
        let mut ws = SolverWorkspace::new();
        let (trajectory, recovery) =
            solve_recovering(&faulty, 0.0, 1.0, &[1.0], &options, &mut ws).unwrap();
        assert_eq!(recovery, Recovery::StiffFallback);
        // The stiff term pins y to the quasi-steady state K/(K+1) ≈ 1.
        assert!((trajectory.final_state()[0] - 1.0).abs() < 1e-3);
    }
}
