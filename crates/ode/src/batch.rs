//! Batched structure-of-arrays Dopri5: one controller drive propagates
//! many trajectories.
//!
//! The checking workloads are inherently *many-solve*: a `cSat` sweep
//! integrates the same vector field from a grid of initial occupancies, and
//! a daemon cold-start storm re-runs near-identical mean-field solves per
//! `m̄(0)`. This module restructures those solves as one **batch**: state,
//! the seven stage buffers and the accepted-step arenas are `K × B`
//! structure-of-arrays (component-major, lane-minor: component `i` of lane
//! `b` lives at `i * width + b`), and the right-hand side becomes the dense
//! [`OdeSystem::rhs_batch`] kernel evaluated once per stage for the whole
//! batch.
//!
//! Two controller modes ([`BatchMode`]):
//!
//! * [`BatchMode::PerLane`] — every lane keeps its own time, step size,
//!   error estimate and accept/reject decisions, advancing in lockstep
//!   attempts (finished lanes are masked out). Each lane replicates the
//!   scalar [`Dopri5::solve_into`] arithmetic exactly, so per-lane results
//!   are **bitwise identical** to serial solves. This is the engine's
//!   default: every cached artifact derived from a batched trajectory is
//!   indistinguishable from the serial pipeline's.
//! * [`BatchMode::Shared`] — one step-size controller for the whole batch:
//!   shared `t` and `h`, error norm = max over the per-lane scaled RMS
//!   norms, one accept/reject decision per attempt. Lanes resynchronize at
//!   every accepted step (each gets a knot), so dense output is available
//!   per lane as usual. Results agree with serial solves to within the
//!   integration tolerance (property-tested: with both drives run at
//!   rtol 1e-12 / atol 1e-14, endpoint occupancies agree to ≤ 1e-12); in
//!   exchange, a `B`-lane sweep costs roughly *one* solve's worth of
//!   controller drive instead of `B`.
//!
//! **Detach semantics** (PR 5's failure ladder survives batching): a lane
//! whose derivative goes non-finite — or that trips fault injection, or
//! whose own controller underflows in per-lane mode — *detaches* from the
//! batch. In per-lane mode the lane simply leaves the lockstep; column
//! independence of [`OdeSystem::rhs_batch`] guarantees the siblings'
//! columns are untouched. In shared mode the whole batch restarts from
//! `t0` without the offending lane (at most `B` restarts), because the
//! shared controller's step history is contaminated by it — after the
//! restart the survivors are bitwise equal to a batch launched on the
//! healthy subset alone. [`solve_batch_recovering`] then routes every
//! detached lane through the scalar recovery ladder
//! ([`crate::recover::solve_recovering`]) individually.
//!
//! The drive is deliberately backend-agnostic: everything the integrator
//! needs from the model is the `rhs_batch`/`project_batch` pair, which is
//! the seam a SIMD or GPU propagator slots into later.

use crate::dopri::{
    Dopri5, SolverWorkspace, A21, A31, A32, A41, A42, A43, A51, A52, A53, A54, A61, A62, A63, A64,
    A65, B1, B3, B4, B5, B6, C2, C3, C4, C5, E1, E3, E4, E5, E6, E7, FAC_MAX, FAC_MIN, SAFETY,
};
use crate::error::OdeError;
use crate::options::OdeOptions;
use crate::problem::OdeSystem;
use crate::recover::{solve_recovering, Recovery};
use crate::solution::{SolveStats, Trajectory};

/// Step-size controller discipline for a batched solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchMode {
    /// Independent controllers: per-lane `t`, `h` and accept/reject,
    /// advancing in lockstep attempts. Per-lane results are bitwise
    /// identical to serial [`Dopri5::solve_into`] calls.
    #[default]
    PerLane,
    /// One shared controller: one accept/reject per attempt, error norm =
    /// max over lanes. Cheapest drive; results agree with serial solves to
    /// within the integration tolerance.
    Shared,
}

/// Work counters for one batched solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchStats {
    /// Number of lanes the batch was launched with.
    pub width: usize,
    /// Batched right-hand-side kernel invocations (each one evaluates every
    /// active lane). This is the batched analogue of the scalar
    /// `rhs_evals` counter — the cost of the *drive* — and the number the
    /// `batch_sweep_*` benchmark kernels report.
    pub batch_rhs_calls: usize,
    /// Lanes that detached from the batch (non-finite derivative, fault
    /// injection, or a per-lane controller failure).
    pub detached: usize,
    /// Shared-mode batch restarts triggered by lane detaches.
    pub restarts: usize,
}

/// Result of [`Dopri5::solve_batch_into`]: one [`Trajectory`] per healthy
/// lane, the detach reason per detached lane, and the drive counters.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-lane results, in input order. A detached lane carries the error
    /// that detached it; [`solve_batch_recovering`] re-solves those lanes
    /// through the scalar recovery ladder.
    pub lanes: Vec<Result<Trajectory, OdeError>>,
    /// Drive counters.
    pub stats: BatchStats,
}

/// Result of [`solve_batch_recovering`]: per-lane trajectory plus the
/// recovery-ladder rung that produced it.
#[derive(Debug)]
pub struct BatchSolution {
    /// Per-lane results in input order. Lanes that stayed in the batch
    /// report [`Recovery::None`]; detached lanes carry whatever rung the
    /// scalar ladder reached, or the ladder's error if it was exhausted.
    pub lanes: Vec<Result<(Trajectory, Recovery), OdeError>>,
    /// Drive counters of the underlying batched solve.
    pub stats: BatchStats,
}

/// Where a lane currently is in the lockstep drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LaneState {
    Running,
    Finished,
    Detached,
}

/// Reusable scratch for batched integrations: the seven `K × B` stage
/// buffers, the three state buffers, per-lane controller state and the
/// per-lane accepted-step arenas. Allocated once and reused across solves;
/// buffers are resized on demand when the dimension or width changes.
#[derive(Debug, Default)]
pub struct BatchWorkspace {
    k1: Vec<f64>,
    k2: Vec<f64>,
    k3: Vec<f64>,
    k4: Vec<f64>,
    k5: Vec<f64>,
    k6: Vec<f64>,
    k7: Vec<f64>,
    y: Vec<f64>,
    y_stage: Vec<f64>,
    y_new: Vec<f64>,
    /// Per-lane evaluation times handed to the batched kernels.
    stage_t: Vec<f64>,
    /// Attempt mask: lanes taking part in the current step attempt.
    step_mask: Vec<bool>,
    /// Accept mask: lanes whose current attempt was accepted.
    accept_mask: Vec<bool>,
    /// FSAL-refresh mask: accepted lanes whose projection moved the point.
    refresh_mask: Vec<bool>,
    lane_t: Vec<f64>,
    lane_h: Vec<f64>,
    lane_err: Vec<f64>,
    steps: Vec<usize>,
    state: Vec<LaneState>,
    errors: Vec<Option<OdeError>>,
    stats: Vec<SolveStats>,
    ts: Vec<Vec<f64>>,
    ys: Vec<Vec<f64>>,
    ds: Vec<Vec<f64>>,
}

impl BatchWorkspace {
    /// Creates an empty workspace; buffers are sized lazily on first use.
    #[must_use]
    pub fn new() -> Self {
        BatchWorkspace::default()
    }

    /// Clears all per-lane state and sizes every buffer for `width` lanes
    /// of dimension `n`.
    fn reset(&mut self, n: usize, width: usize) {
        for buf in [
            &mut self.k1,
            &mut self.k2,
            &mut self.k3,
            &mut self.k4,
            &mut self.k5,
            &mut self.k6,
            &mut self.k7,
            &mut self.y,
            &mut self.y_stage,
            &mut self.y_new,
        ] {
            buf.clear();
            buf.resize(n * width, 0.0);
        }
        self.stage_t.clear();
        self.stage_t.resize(width, 0.0);
        for mask in [
            &mut self.step_mask,
            &mut self.accept_mask,
            &mut self.refresh_mask,
        ] {
            mask.clear();
            mask.resize(width, false);
        }
        self.lane_t.clear();
        self.lane_t.resize(width, 0.0);
        self.lane_h.clear();
        self.lane_h.resize(width, 0.0);
        self.lane_err.clear();
        self.lane_err.resize(width, 0.0);
        self.steps.clear();
        self.steps.resize(width, 0);
        self.state.clear();
        self.state.resize(width, LaneState::Running);
        self.errors.clear();
        self.errors.resize(width, None);
        self.stats.clear();
        self.stats.resize(width, SolveStats::default());
        self.ts.resize_with(width, Vec::new);
        self.ys.resize_with(width, Vec::new);
        self.ds.resize_with(width, Vec::new);
        self.ts.truncate(width);
        self.ys.truncate(width);
        self.ds.truncate(width);
        for b in 0..width {
            self.ts[b].clear();
            self.ys[b].clear();
            self.ds[b].clear();
        }
    }

    fn detach(&mut self, b: usize, error: OdeError) {
        self.state[b] = LaneState::Detached;
        self.errors[b] = Some(error);
        self.step_mask[b] = false;
    }

    /// Appends the current `(t, y[:, b], k1[:, b])` to lane `b`'s arena.
    fn push_knot(&mut self, b: usize, t: f64, n: usize, width: usize) {
        self.ts[b].push(t);
        for i in 0..n {
            self.ys[b].push(self.y[i * width + b]);
            self.ds[b].push(self.k1[i * width + b]);
        }
    }

    /// Moves lane `b`'s arenas into a trajectory.
    fn take_trajectory(&mut self, b: usize, n: usize) -> Result<Trajectory, OdeError> {
        Trajectory::from_flat(
            n,
            std::mem::take(&mut self.ts[b]),
            std::mem::take(&mut self.ys[b]),
            std::mem::take(&mut self.ds[b]),
            self.stats[b],
        )
    }
}

/// `true` when every component of column `b` is finite.
fn column_finite(v: &[f64], n: usize, width: usize, b: usize) -> bool {
    (0..n).all(|i| v[i * width + b].is_finite())
}

/// Copies column `b` of `src` into column `b` of `dst`.
fn copy_column(src: &[f64], dst: &mut [f64], n: usize, width: usize, b: usize) {
    for i in 0..n {
        dst[i * width + b] = src[i * width + b];
    }
}

/// Scalar-identical column inequality test (the FSAL refresh guard): `!=`
/// per component, so a NaN column always counts as moved, exactly like the
/// scalar `ws.y_new != ws.y_stage`.
fn column_ne(a: &[f64], b_buf: &[f64], n: usize, width: usize, b: usize) -> bool {
    (0..n).any(|i| a[i * width + b] != b_buf[i * width + b])
}

impl Dopri5 {
    /// Integrates every lane of `y0s` from `t0` to `t1 >= t0` as one
    /// structure-of-arrays batch. See the [module docs](self) for the
    /// controller modes and detach semantics.
    ///
    /// # Errors
    ///
    /// Returns [`OdeError::InvalidArgument`] for a reversed or NaN range, a
    /// lane of the wrong dimension, or invalid options — the whole batch is
    /// rejected, mirroring the scalar validation. Numerical failures never
    /// fail the call: they detach the affected lane, which comes back as
    /// the `Err` entry of [`BatchOutcome::lanes`].
    pub fn solve_batch_into<S: OdeSystem>(
        &self,
        sys: &S,
        t0: f64,
        t1: f64,
        y0s: &[&[f64]],
        mode: BatchMode,
        ws: &mut BatchWorkspace,
    ) -> Result<BatchOutcome, OdeError> {
        self.options().validate()?;
        let n = sys.dim();
        for (b, y0) in y0s.iter().enumerate() {
            if y0.len() != n {
                return Err(OdeError::InvalidArgument(format!(
                    "lane {b} has dimension {}, system expects {n}",
                    y0.len()
                )));
            }
        }
        if !(t1 >= t0) {
            return Err(OdeError::InvalidArgument(format!(
                "integration range [{t0}, {t1}] is reversed or NaN"
            )));
        }
        if y0s.is_empty() {
            return Ok(BatchOutcome {
                lanes: Vec::new(),
                stats: BatchStats::default(),
            });
        }
        match mode {
            BatchMode::PerLane => self.batch_per_lane(sys, t0, t1, y0s, ws),
            BatchMode::Shared => self.batch_shared(sys, t0, t1, y0s, ws),
        }
    }

    /// Per-lane controllers in lockstep: every active lane performs one
    /// step attempt per iteration, with its own `t`, `h` and accept/reject
    /// decision, all batched through `rhs_batch`. Each lane's arithmetic
    /// replicates [`Dopri5::solve_into`] exactly.
    fn batch_per_lane<S: OdeSystem>(
        &self,
        sys: &S,
        t0: f64,
        t1: f64,
        y0s: &[&[f64]],
        ws: &mut BatchWorkspace,
    ) -> Result<BatchOutcome, OdeError> {
        let n = sys.dim();
        let w = y0s.len();
        ws.reset(n, w);
        let mut calls = 0usize;

        self.batch_init(sys, t0, y0s, ws, n, w, &mut calls);
        if t1 == t0 {
            return self.batch_finish(ws, n, w, calls, 0);
        }
        match self.options().h_init {
            Some(h) => {
                let h = h.min(self.options().h_max).min(t1 - t0);
                for b in 0..w {
                    ws.lane_h[b] = h;
                }
            }
            None => self.batch_initial_step(sys, t0, t1, ws, n, w, &mut calls),
        }

        loop {
            // Per-lane pre-step control: step budget and h_min underflow,
            // mirroring the scalar loop head.
            let mut any = false;
            for b in 0..w {
                ws.step_mask[b] = false;
                if ws.state[b] != LaneState::Running {
                    continue;
                }
                ws.steps[b] += 1;
                if ws.steps[b] > self.options().max_steps {
                    ws.detach(
                        b,
                        OdeError::MaxStepsExceeded {
                            steps: self.options().max_steps,
                            t: ws.lane_t[b],
                        },
                    );
                    continue;
                }
                let mut h = ws.lane_h[b].min(t1 - ws.lane_t[b]).min(self.options().h_max);
                if h < self.options().h_min {
                    if t1 - ws.lane_t[b] > self.options().h_min {
                        ws.detach(b, OdeError::StepSizeTooSmall { t: ws.lane_t[b], h });
                        continue;
                    }
                    h = t1 - ws.lane_t[b];
                }
                ws.lane_h[b] = h;
                ws.step_mask[b] = true;
                any = true;
            }
            if !any {
                break;
            }

            self.batch_stages(sys, ws, n, w, &mut calls);
            for b in 0..w {
                if !ws.step_mask[b] {
                    continue;
                }
                ws.stats[b].rhs_evals += 6;
                if !column_finite(&ws.k7, n, w, b) {
                    ws.detach(
                        b,
                        OdeError::NonFiniteDerivative {
                            t: ws.lane_t[b] + ws.lane_h[b],
                        },
                    );
                }
            }

            for b in 0..w {
                if ws.step_mask[b] {
                    ws.lane_err[b] = self.lane_error(ws, n, w, b);
                }
            }

            // Accept/reject per lane.
            let mut any_refresh = false;
            for b in 0..w {
                ws.accept_mask[b] = false;
                ws.refresh_mask[b] = false;
                if !ws.step_mask[b] {
                    continue;
                }
                if ws.lane_err[b] <= 1.0 || ws.lane_h[b] <= self.options().h_min {
                    ws.accept_mask[b] = true;
                    ws.stats[b].accepted += 1;
                    // Stash the pre-projection state (scalar: y_stage).
                    copy_column(&ws.y_new, &mut ws.y_stage, n, w, b);
                    ws.stage_t[b] = ws.lane_t[b] + ws.lane_h[b];
                } else {
                    ws.stats[b].rejected += 1;
                }
            }
            sys.project_batch(&ws.stage_t, &ws.accept_mask, &mut ws.y_new, w);
            for b in 0..w {
                if ws.accept_mask[b] && column_ne(&ws.y_new, &ws.y_stage, n, w, b) {
                    ws.refresh_mask[b] = true;
                    any_refresh = true;
                }
            }
            if any_refresh {
                sys.rhs_batch(&ws.stage_t, &ws.refresh_mask, &ws.y_new, &mut ws.k7, w);
                calls += 1;
                for b in 0..w {
                    if ws.refresh_mask[b] {
                        ws.stats[b].rhs_evals += 1;
                    }
                }
            }
            for b in 0..w {
                if ws.accept_mask[b] {
                    let t_new = ws.lane_t[b] + ws.lane_h[b];
                    ws.lane_t[b] = t_new;
                    copy_column(&ws.y_new, &mut ws.y, n, w, b);
                    copy_column(&ws.k7, &mut ws.k1, n, w, b);
                    ws.push_knot(b, t_new, n, w);
                    if t_new >= t1 {
                        ws.state[b] = LaneState::Finished;
                    }
                }
            }
            // Step-size update for every lane that attempted a step.
            for b in 0..w {
                if ws.step_mask[b] {
                    let fac = (SAFETY * ws.lane_err[b].powf(-0.2)).clamp(FAC_MIN, FAC_MAX);
                    ws.lane_h[b] *= fac;
                }
            }
        }
        self.batch_finish(ws, n, w, calls, 0)
    }

    /// Shared controller with restart-on-detach: integrate the active lane
    /// subset; whenever a lane's derivative or error estimate goes
    /// non-finite, drop it and restart the whole batch from `t0` so the
    /// survivors' step history is free of the bad lane's influence.
    fn batch_shared<S: OdeSystem>(
        &self,
        sys: &S,
        t0: f64,
        t1: f64,
        y0s: &[&[f64]],
        ws: &mut BatchWorkspace,
    ) -> Result<BatchOutcome, OdeError> {
        let w = y0s.len();
        let mut lanes: Vec<Option<Result<Trajectory, OdeError>>> = (0..w).map(|_| None).collect();
        let mut active: Vec<usize> = (0..w).collect();
        let mut calls = 0usize;
        let mut restarts = 0usize;
        while !active.is_empty() {
            let sub: Vec<&[f64]> = active.iter().map(|&slot| y0s[slot]).collect();
            match self.shared_attempt(sys, t0, t1, &sub, ws, &mut calls) {
                SharedRun::Done(trajectories) => {
                    for (&slot, trajectory) in active.iter().zip(trajectories) {
                        lanes[slot] = Some(Ok(trajectory));
                    }
                    break;
                }
                SharedRun::Detach { lane, error } => {
                    let slot = active.remove(lane);
                    lanes[slot] = Some(Err(error));
                    if !active.is_empty() {
                        restarts += 1;
                    }
                }
                SharedRun::Fail(error) => {
                    for &slot in &active {
                        lanes[slot] = Some(Err(error.clone()));
                    }
                    break;
                }
            }
        }
        let lanes: Vec<Result<Trajectory, OdeError>> = lanes
            .into_iter()
            .map(|lane| lane.unwrap_or_else(|| unreachable!("every lane is resolved")))
            .collect();
        let detached = lanes.iter().filter(|lane| lane.is_err()).count();
        Ok(BatchOutcome {
            lanes,
            stats: BatchStats {
                width: w,
                batch_rhs_calls: calls,
                detached,
                restarts,
            },
        })
    }

    /// One shared-controller run over the lane subset `y0s`. Returns the
    /// finished trajectories, the first lane that must detach, or a
    /// whole-batch controller failure.
    fn shared_attempt<S: OdeSystem>(
        &self,
        sys: &S,
        t0: f64,
        t1: f64,
        y0s: &[&[f64]],
        ws: &mut BatchWorkspace,
        calls: &mut usize,
    ) -> SharedRun {
        let n = sys.dim();
        let w = y0s.len();
        ws.reset(n, w);
        self.batch_init(sys, t0, y0s, ws, n, w, calls);
        for b in 0..w {
            if ws.state[b] == LaneState::Detached {
                let error = ws.errors[b].clone().unwrap_or_else(|| unreachable!());
                return SharedRun::Detach { lane: b, error };
            }
        }
        let take_all = |ws: &mut BatchWorkspace| -> SharedRun {
            let mut out = Vec::with_capacity(w);
            for b in 0..w {
                match ws.take_trajectory(b, n) {
                    Ok(trajectory) => out.push(trajectory),
                    Err(e) => return SharedRun::Fail(e),
                }
            }
            SharedRun::Done(out)
        };
        if t1 == t0 {
            return take_all(ws);
        }
        let mut h = match self.options().h_init {
            Some(h) => h.min(self.options().h_max).min(t1 - t0),
            None => {
                self.batch_initial_step(sys, t0, t1, ws, n, w, calls);
                // The shared controller starts at the most cautious lane's
                // automatic step. NaN-ignoring min, like the scalar chain.
                let mut h = f64::INFINITY;
                for b in 0..w {
                    h = h.min(ws.lane_h[b]);
                }
                h
            }
        };
        let mut t = t0;
        let mut steps = 0usize;
        while t < t1 {
            steps += 1;
            if steps > self.options().max_steps {
                return SharedRun::Fail(OdeError::MaxStepsExceeded {
                    steps: self.options().max_steps,
                    t,
                });
            }
            h = h.min(t1 - t).min(self.options().h_max);
            if h < self.options().h_min {
                if t1 - t > self.options().h_min {
                    return SharedRun::Fail(OdeError::StepSizeTooSmall { t, h });
                }
                h = t1 - t;
            }
            for b in 0..w {
                ws.lane_t[b] = t;
                ws.lane_h[b] = h;
                ws.step_mask[b] = true;
            }
            self.batch_stages(sys, ws, n, w, calls);
            for b in 0..w {
                ws.stats[b].rhs_evals += 6;
                if !column_finite(&ws.k7, n, w, b) {
                    return SharedRun::Detach {
                        lane: b,
                        error: OdeError::NonFiniteDerivative { t: t + h },
                    };
                }
            }
            // Shared error norm: max over the per-lane scaled RMS norms. A
            // non-finite per-lane norm detaches that lane (its stages are
            // poisoned even though k7 came back finite).
            let mut err = 0.0_f64;
            for b in 0..w {
                let lane_err = self.lane_error(ws, n, w, b);
                if !lane_err.is_finite() {
                    return SharedRun::Detach {
                        lane: b,
                        error: OdeError::NonFiniteDerivative { t: t + h },
                    };
                }
                err = err.max(lane_err);
            }
            if err <= 1.0 || h <= self.options().h_min {
                let t_new = t + h;
                for b in 0..w {
                    ws.stats[b].accepted += 1;
                    copy_column(&ws.y_new, &mut ws.y_stage, n, w, b);
                    ws.stage_t[b] = t_new;
                    ws.accept_mask[b] = true;
                }
                sys.project_batch(&ws.stage_t, &ws.accept_mask, &mut ws.y_new, w);
                let mut any_refresh = false;
                for b in 0..w {
                    ws.refresh_mask[b] = column_ne(&ws.y_new, &ws.y_stage, n, w, b);
                    any_refresh |= ws.refresh_mask[b];
                }
                if any_refresh {
                    sys.rhs_batch(&ws.stage_t, &ws.refresh_mask, &ws.y_new, &mut ws.k7, w);
                    *calls += 1;
                    for b in 0..w {
                        if ws.refresh_mask[b] {
                            ws.stats[b].rhs_evals += 1;
                        }
                    }
                }
                t = t_new;
                for b in 0..w {
                    copy_column(&ws.y_new, &mut ws.y, n, w, b);
                    copy_column(&ws.k7, &mut ws.k1, n, w, b);
                    ws.push_knot(b, t, n, w);
                }
            } else {
                for b in 0..w {
                    ws.stats[b].rejected += 1;
                }
            }
            let fac = (SAFETY * err.powf(-0.2)).clamp(FAC_MIN, FAC_MAX);
            h *= fac;
        }
        take_all(ws)
    }

    /// Common batch initialisation: seed the state columns, project,
    /// evaluate `k1`, detach lanes whose derivative is already non-finite,
    /// and record the initial knot for the healthy ones.
    #[allow(clippy::too_many_arguments)]
    fn batch_init<S: OdeSystem>(
        &self,
        sys: &S,
        t0: f64,
        y0s: &[&[f64]],
        ws: &mut BatchWorkspace,
        n: usize,
        w: usize,
        calls: &mut usize,
    ) {
        for (b, y0) in y0s.iter().enumerate() {
            for i in 0..n {
                ws.y[i * w + b] = y0[i];
            }
            ws.stage_t[b] = t0;
            ws.step_mask[b] = true;
        }
        sys.project_batch(&ws.stage_t, &ws.step_mask, &mut ws.y, w);
        sys.rhs_batch(&ws.stage_t, &ws.step_mask, &ws.y, &mut ws.k1, w);
        *calls += 1;
        for b in 0..w {
            ws.stats[b].rhs_evals += 1;
            ws.lane_t[b] = t0;
            if column_finite(&ws.k1, n, w, b) {
                ws.push_knot(b, t0, n, w);
            } else {
                ws.detach(b, OdeError::NonFiniteDerivative { t: t0 });
            }
        }
    }

    /// Batched Hairer initial-step selection: every running lane runs the
    /// scalar algorithm's arithmetic on its own column, with the Euler
    /// probe evaluated as one batched call. Results land in `ws.lane_h`.
    #[allow(clippy::too_many_arguments)]
    fn batch_initial_step<S: OdeSystem>(
        &self,
        sys: &S,
        t0: f64,
        t1: f64,
        ws: &mut BatchWorkspace,
        n: usize,
        w: usize,
        calls: &mut usize,
    ) {
        let rtol = self.options().rtol;
        let atol = self.options().atol;
        // Scaled RMS of column `b` of `v` with the scalar accumulation
        // order (scale_i = atol + rtol * |y0_i|).
        let rms_col = |v: &[f64], y: &[f64], b: usize| -> f64 {
            let mut s = 0.0_f64;
            for i in 0..n {
                let scale = atol + rtol * y[i * w + b].abs();
                let q = v[i * w + b] / scale;
                s += q * q;
            }
            (s / n as f64).sqrt()
        };
        for b in 0..w {
            ws.step_mask[b] = ws.state[b] == LaneState::Running;
            if !ws.step_mask[b] {
                continue;
            }
            let d0 = rms_col(&ws.y, &ws.y, b);
            let d1 = rms_col(&ws.k1, &ws.y, b);
            let h0 = if d0 < 1e-5 || d1 < 1e-5 {
                1e-6
            } else {
                0.01 * d0 / d1
            };
            // Stash h0 and d1 in the controller scratch until the probe
            // comes back.
            ws.lane_h[b] = h0;
            ws.lane_err[b] = d1;
            for i in 0..n {
                ws.y_stage[i * w + b] = ws.y[i * w + b] + h0 * ws.k1[i * w + b];
            }
            ws.stage_t[b] = t0 + h0;
        }
        sys.rhs_batch(&ws.stage_t, &ws.step_mask, &ws.y_stage, &mut ws.k2, w);
        *calls += 1;
        for b in 0..w {
            if !ws.step_mask[b] {
                continue;
            }
            ws.stats[b].rhs_evals += 1;
            let h0 = ws.lane_h[b];
            let d1 = ws.lane_err[b];
            let mut s = 0.0_f64;
            for i in 0..n {
                let scale = atol + rtol * ws.y[i * w + b].abs();
                let q = (ws.k2[i * w + b] - ws.k1[i * w + b]) / scale;
                s += q * q;
            }
            let d2 = (s / n as f64).sqrt() / h0;
            let max_d = d1.max(d2);
            let h1 = if max_d <= 1e-15 {
                (h0 * 1e-3).max(1e-6)
            } else {
                (0.01 / max_d).powf(0.2)
            };
            ws.lane_h[b] = (100.0 * h0)
                .min(h1)
                .min(t1 - t0)
                .min(self.options().h_max)
                .max(self.options().h_min);
        }
    }

    /// The six stage evaluations plus the FSAL stage of one attempt for
    /// every lane with `step_mask` set, at per-lane `t`/`h`. Exactly the
    /// scalar stage arithmetic per column.
    fn batch_stages<S: OdeSystem>(
        &self,
        sys: &S,
        ws: &mut BatchWorkspace,
        n: usize,
        w: usize,
        calls: &mut usize,
    ) {
        macro_rules! stage {
            ($c:expr, $dst:expr, $expr:expr) => {{
                for i in 0..n {
                    let r = i * w;
                    for b in 0..w {
                        if !ws.step_mask[b] {
                            continue;
                        }
                        let h = ws.lane_h[b];
                        ws.y_stage[r + b] = ws.y[r + b] + h * $expr(ws, r + b);
                    }
                }
                for b in 0..w {
                    if ws.step_mask[b] {
                        ws.stage_t[b] = ws.lane_t[b] + $c * ws.lane_h[b];
                    }
                }
                sys.rhs_batch(&ws.stage_t, &ws.step_mask, &ws.y_stage, $dst, w);
                *calls += 1;
            }};
        }
        // Stage 2. Written out (not via the macro) because the scalar code
        // computes `y + h * A21 * k1` — left-associated, `(h * A21) * k1` —
        // and bitwise equivalence requires the same rounding.
        for i in 0..n {
            let r = i * w;
            for b in 0..w {
                if !ws.step_mask[b] {
                    continue;
                }
                ws.y_stage[r + b] = ws.y[r + b] + ws.lane_h[b] * A21 * ws.k1[r + b];
            }
        }
        for b in 0..w {
            if ws.step_mask[b] {
                ws.stage_t[b] = ws.lane_t[b] + C2 * ws.lane_h[b];
            }
        }
        sys.rhs_batch(&ws.stage_t, &ws.step_mask, &ws.y_stage, &mut ws.k2, w);
        *calls += 1;
        // Stage 3.
        stage!(C3, &mut ws.k3, |ws: &BatchWorkspace, j: usize| A31 * ws.k1[j]
            + A32 * ws.k2[j]);
        // Stage 4.
        stage!(C4, &mut ws.k4, |ws: &BatchWorkspace, j: usize| A41 * ws.k1[j]
            + A42 * ws.k2[j]
            + A43 * ws.k3[j]);
        // Stage 5.
        stage!(C5, &mut ws.k5, |ws: &BatchWorkspace, j: usize| A51 * ws.k1[j]
            + A52 * ws.k2[j]
            + A53 * ws.k3[j]
            + A54 * ws.k4[j]);
        // Stage 6 (c = 1).
        stage!(1.0, &mut ws.k6, |ws: &BatchWorkspace, j: usize| A61 * ws.k1[j]
            + A62 * ws.k2[j]
            + A63 * ws.k3[j]
            + A64 * ws.k4[j]
            + A65 * ws.k5[j]);
        // 5th-order solution (also stage 7 location).
        for i in 0..n {
            let r = i * w;
            for b in 0..w {
                if !ws.step_mask[b] {
                    continue;
                }
                ws.y_new[r + b] = ws.y[r + b]
                    + ws.lane_h[b]
                        * (B1 * ws.k1[r + b]
                            + B3 * ws.k3[r + b]
                            + B4 * ws.k4[r + b]
                            + B5 * ws.k5[r + b]
                            + B6 * ws.k6[r + b]);
            }
        }
        for b in 0..w {
            if ws.step_mask[b] {
                ws.stage_t[b] = ws.lane_t[b] + ws.lane_h[b];
            }
        }
        sys.rhs_batch(&ws.stage_t, &ws.step_mask, &ws.y_new, &mut ws.k7, w);
        *calls += 1;
    }

    /// Scaled RMS error estimate of lane `b`'s current attempt, with the
    /// scalar accumulation order.
    fn lane_error(&self, ws: &BatchWorkspace, n: usize, w: usize, b: usize) -> f64 {
        let h = ws.lane_h[b];
        let mut err_sq = 0.0_f64;
        for i in 0..n {
            let j = i * w + b;
            let err_i = h
                * (E1 * ws.k1[j]
                    + E3 * ws.k3[j]
                    + E4 * ws.k4[j]
                    + E5 * ws.k5[j]
                    + E6 * ws.k6[j]
                    + E7 * ws.k7[j]);
            let scale =
                self.options().atol + self.options().rtol * ws.y[j].abs().max(ws.y_new[j].abs());
            let q = err_i / scale;
            err_sq += q * q;
        }
        (err_sq / n as f64).sqrt()
    }

    /// Collects per-lane trajectories/errors into the outcome.
    fn batch_finish(
        &self,
        ws: &mut BatchWorkspace,
        n: usize,
        w: usize,
        calls: usize,
        restarts: usize,
    ) -> Result<BatchOutcome, OdeError> {
        let mut lanes = Vec::with_capacity(w);
        let mut detached = 0usize;
        for b in 0..w {
            if ws.state[b] == LaneState::Detached {
                detached += 1;
                let error = ws.errors[b].clone().unwrap_or_else(|| unreachable!());
                lanes.push(Err(error));
            } else {
                lanes.push(ws.take_trajectory(b, n));
            }
        }
        Ok(BatchOutcome {
            lanes,
            stats: BatchStats {
                width: w,
                batch_rhs_calls: calls,
                detached,
                restarts,
            },
        })
    }
}

/// Outcome of one shared-controller run.
enum SharedRun {
    Done(Vec<Trajectory>),
    Detach { lane: usize, error: OdeError },
    Fail(OdeError),
}

/// Integrates every lane through the batched drive, then routes detached
/// lanes through the scalar recovery ladder
/// ([`crate::recover::solve_recovering`]) individually — so a faulty lane
/// degrades exactly as a scalar solve would, while its siblings keep their
/// batch results.
///
/// # Errors
///
/// Returns [`OdeError::InvalidArgument`] for invalid options, a reversed
/// range or a mis-sized lane. Per-lane numerical failures surface as the
/// `Err` entries of [`BatchSolution::lanes`] (the scalar ladder's primary
/// error, matching what a serial [`solve_recovering`] call would report).
#[allow(clippy::too_many_arguments)]
pub fn solve_batch_recovering<S: OdeSystem>(
    sys: &S,
    t0: f64,
    t1: f64,
    y0s: &[&[f64]],
    options: &OdeOptions,
    mode: BatchMode,
    ws: &mut BatchWorkspace,
    scalar_ws: &mut SolverWorkspace,
) -> Result<BatchSolution, OdeError> {
    let outcome = Dopri5::new(*options).solve_batch_into(sys, t0, t1, y0s, mode, ws)?;
    let mut lanes = Vec::with_capacity(outcome.lanes.len());
    for (b, lane) in outcome.lanes.into_iter().enumerate() {
        match lane {
            Ok(trajectory) => lanes.push(Ok((trajectory, Recovery::None))),
            // The detach reason is advisory; the ladder re-runs the scalar
            // primary itself, so its verdict (and error, on exhaustion) is
            // exactly the serial one.
            Err(_) => lanes.push(solve_recovering(sys, t0, t1, y0s[b], options, scalar_ws)),
        }
    }
    Ok(BatchSolution {
        lanes,
        stats: outcome.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{FnSystem, ProjectedFnSystem};

    fn decay() -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
        FnSystem::new(2, |_t, y: &[f64], dy: &mut [f64]| {
            dy[0] = -y[0];
            dy[1] = -2.0 * y[1] + 0.1 * y[0];
        })
    }

    fn oscillator() -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
        FnSystem::new(2, |_t, y: &[f64], dy: &mut [f64]| {
            dy[0] = y[1];
            dy[1] = -y[0];
        })
    }

    /// A projected system exercising the FSAL-refresh path: the projection
    /// renormalizes onto the simplex, so accepted points move.
    #[allow(clippy::type_complexity)]
    fn projected() -> ProjectedFnSystem<impl Fn(f64, &[f64], &mut [f64]), impl Fn(f64, &mut [f64])>
    {
        ProjectedFnSystem::new(
            3,
            |_t, y: &[f64], dy: &mut [f64]| {
                dy[0] = -0.7 * y[0] + 0.2 * y[1];
                dy[1] = 0.7 * y[0] - 0.5 * y[1];
                dy[2] = 0.3 * y[1] - 0.1 * y[2];
            },
            |_t, y: &mut [f64]| {
                let s: f64 = y.iter().sum();
                if s > 0.0 {
                    for v in y.iter_mut() {
                        *v /= s;
                    }
                }
            },
        )
    }

    /// Wrapper that keeps the scalar path clean but poisons one lane's
    /// column in the batched kernel with NaN — the shape fault injection
    /// takes when it fires inside a batch.
    struct PoisonBatch<S> {
        inner: S,
        poison: usize,
    }

    impl<S: OdeSystem> OdeSystem for PoisonBatch<S> {
        fn dim(&self) -> usize {
            self.inner.dim()
        }

        fn rhs(&self, t: f64, y: &[f64], dy: &mut [f64]) {
            self.inner.rhs(t, y, dy);
        }

        fn project(&self, t: f64, y: &mut [f64]) {
            self.inner.project(t, y);
        }

        fn rhs_batch(&self, ts: &[f64], active: &[bool], y: &[f64], dy: &mut [f64], width: usize) {
            self.inner.rhs_batch(ts, active, y, dy, width);
            if self.poison < width && active[self.poison] {
                for i in 0..self.dim() {
                    dy[i * width + self.poison] = f64::NAN;
                }
            }
        }
    }

    fn solver() -> Dopri5 {
        Dopri5::new(OdeOptions::default())
    }

    const Y0S: [[f64; 2]; 3] = [[1.0, 0.5], [0.3, -0.2], [2.0, 1.0]];

    fn lanes3() -> Vec<&'static [f64]> {
        Y0S.iter().map(|y0| y0.as_slice()).collect()
    }

    #[test]
    fn per_lane_batch_is_bitwise_identical_to_serial() {
        let sys = decay();
        let mut ws = BatchWorkspace::new();
        let out = solver()
            .solve_batch_into(&sys, 0.0, 3.0, &lanes3(), BatchMode::PerLane, &mut ws)
            .unwrap();
        assert_eq!(out.stats.width, 3);
        assert_eq!(out.stats.detached, 0);
        for (lane, y0) in out.lanes.iter().zip(Y0S.iter()) {
            let serial = solver().solve(&sys, 0.0, 3.0, y0).unwrap();
            // Trajectory equality is exact: same knots, same Hermite data,
            // same SolveStats.
            assert_eq!(lane.as_ref().unwrap(), &serial);
        }
    }

    #[test]
    fn per_lane_projection_refresh_matches_serial() {
        let sys = projected();
        let y0s: [[f64; 3]; 2] = [[0.9, 0.05, 0.05], [0.2, 0.5, 0.3]];
        let refs: Vec<&[f64]> = y0s.iter().map(|y0| y0.as_slice()).collect();
        let mut ws = BatchWorkspace::new();
        let out = solver()
            .solve_batch_into(&sys, 0.0, 5.0, &refs, BatchMode::PerLane, &mut ws)
            .unwrap();
        for (lane, y0) in out.lanes.iter().zip(y0s.iter()) {
            let serial = solver().solve(&sys, 0.0, 5.0, y0).unwrap();
            assert_eq!(lane.as_ref().unwrap(), &serial);
        }
    }

    #[test]
    fn width_one_shared_batch_is_bitwise_identical_to_serial() {
        let sys = oscillator();
        let y0 = [1.0, 0.0];
        let mut ws = BatchWorkspace::new();
        let out = solver()
            .solve_batch_into(&sys, 0.0, 6.0, &[&y0], BatchMode::Shared, &mut ws)
            .unwrap();
        let serial = solver().solve(&sys, 0.0, 6.0, &y0).unwrap();
        assert_eq!(out.lanes[0].as_ref().unwrap(), &serial);
    }

    #[test]
    fn shared_batch_agrees_with_serial_within_tolerance() {
        let sys = oscillator();
        let mut ws = BatchWorkspace::new();
        let out = solver()
            .solve_batch_into(&sys, 0.0, 6.0, &lanes3(), BatchMode::Shared, &mut ws)
            .unwrap();
        for (lane, y0) in out.lanes.iter().zip(Y0S.iter()) {
            let batched = lane.as_ref().unwrap();
            let serial = solver().solve(&sys, 0.0, 6.0, y0).unwrap();
            for k in 0..=60 {
                let t = 0.1 * k as f64;
                let a = batched.eval(t);
                let b = serial.eval(t);
                for (x, y) in a.iter().zip(b.iter()) {
                    // Sampled between knots, the dominant term is the two
                    // interpolants' O(h^4) Hermite error (the knot grids
                    // differ), not the controllers' rtol.
                    assert!((x - y).abs() <= 1e-7, "t={t}: {x} vs {y}");
                }
            }
        }
        // The whole sweep rode one controller: the drive cost is one
        // solve's worth of batched calls, far below three serial solves.
        let serial_evals = solver().solve(&sys, 0.0, 6.0, &Y0S[0]).unwrap().stats().rhs_evals;
        assert!(out.stats.batch_rhs_calls <= 2 * serial_evals);
    }

    #[test]
    fn zero_length_interval_returns_initial_knot_per_lane() {
        let sys = decay();
        let mut ws = BatchWorkspace::new();
        for mode in [BatchMode::PerLane, BatchMode::Shared] {
            let out = solver()
                .solve_batch_into(&sys, 1.5, 1.5, &lanes3(), mode, &mut ws)
                .unwrap();
            for (lane, y0) in out.lanes.iter().zip(Y0S.iter()) {
                let tr = lane.as_ref().unwrap();
                assert_eq!(tr.t_start(), 1.5);
                assert_eq!(tr.t_end(), 1.5);
                assert_eq!(tr.eval(1.5), y0.to_vec());
            }
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let sys = decay();
        let mut ws = BatchWorkspace::new();
        let out = solver()
            .solve_batch_into(&sys, 0.0, 1.0, &[], BatchMode::PerLane, &mut ws)
            .unwrap();
        assert!(out.lanes.is_empty());
        assert_eq!(out.stats.batch_rhs_calls, 0);
    }

    #[test]
    fn invalid_arguments_reject_the_whole_batch() {
        let sys = decay();
        let mut ws = BatchWorkspace::new();
        let bad_dim = [1.0, 2.0, 3.0];
        let good = [1.0, 2.0];
        for (t0, t1, y0s) in [
            (1.0, 0.0, vec![good.as_slice()]),
            (0.0, f64::NAN, vec![good.as_slice()]),
            (0.0, 1.0, vec![good.as_slice(), bad_dim.as_slice()]),
        ] {
            for mode in [BatchMode::PerLane, BatchMode::Shared] {
                let err = solver()
                    .solve_batch_into(&sys, t0, t1, &y0s, mode, &mut ws)
                    .unwrap_err();
                assert!(matches!(err, OdeError::InvalidArgument(_)), "{err:?}");
            }
        }
    }

    #[test]
    fn per_lane_poisoned_lane_detaches_without_touching_siblings() {
        let sys = PoisonBatch {
            inner: decay(),
            poison: 1,
        };
        let mut ws = BatchWorkspace::new();
        let out = solver()
            .solve_batch_into(&sys, 0.0, 3.0, &lanes3(), BatchMode::PerLane, &mut ws)
            .unwrap();
        assert_eq!(out.stats.detached, 1);
        assert!(matches!(
            out.lanes[1],
            Err(OdeError::NonFiniteDerivative { .. })
        ));
        for b in [0usize, 2] {
            let serial = solver().solve(&sys.inner, 0.0, 3.0, &Y0S[b]).unwrap();
            assert_eq!(out.lanes[b].as_ref().unwrap(), &serial);
        }
    }

    /// Wrapper that poisons the column whose state matches a signature
    /// bitwise — which only happens at `t0`, where the state *is* the
    /// initial condition. Unlike a column index, the signature tracks the
    /// lane across shared-mode restarts (survivors never match it).
    struct PoisonSignature<S> {
        inner: S,
        sig: [f64; 2],
    }

    impl<S: OdeSystem> OdeSystem for PoisonSignature<S> {
        fn dim(&self) -> usize {
            self.inner.dim()
        }

        fn rhs(&self, t: f64, y: &[f64], dy: &mut [f64]) {
            self.inner.rhs(t, y, dy);
        }

        fn rhs_batch(&self, ts: &[f64], active: &[bool], y: &[f64], dy: &mut [f64], width: usize) {
            self.inner.rhs_batch(ts, active, y, dy, width);
            for b in 0..width {
                if active[b] && y[b] == self.sig[0] && y[width + b] == self.sig[1] {
                    for i in 0..self.dim() {
                        dy[i * width + b] = f64::NAN;
                    }
                }
            }
        }
    }

    #[test]
    fn shared_poisoned_lane_triggers_restart_without_it() {
        let sys = PoisonSignature {
            inner: oscillator(),
            sig: Y0S[1],
        };
        let mut ws = BatchWorkspace::new();
        let out = solver()
            .solve_batch_into(&sys, 0.0, 4.0, &lanes3(), BatchMode::Shared, &mut ws)
            .unwrap();
        assert_eq!(out.stats.detached, 1);
        assert_eq!(out.stats.restarts, 1);
        assert!(out.lanes[1].is_err());
        // Survivors are bitwise equal to a fresh shared batch launched on
        // the healthy subset alone: the restart purged the bad lane's
        // influence on the controller history.
        let healthy: Vec<&[f64]> = vec![&Y0S[0], &Y0S[2]];
        let mut ws2 = BatchWorkspace::new();
        let clean = solver()
            .solve_batch_into(&sys.inner, 0.0, 4.0, &healthy, BatchMode::Shared, &mut ws2)
            .unwrap();
        assert_eq!(out.lanes[0].as_ref().unwrap(), clean.lanes[0].as_ref().unwrap());
        assert_eq!(out.lanes[2].as_ref().unwrap(), clean.lanes[1].as_ref().unwrap());
    }

    #[test]
    fn recovering_batch_routes_detached_lane_through_scalar_ladder() {
        let sys = PoisonBatch {
            inner: decay(),
            poison: 0,
        };
        let options = OdeOptions::default();
        let mut ws = BatchWorkspace::new();
        let mut scalar_ws = SolverWorkspace::new();
        let sol = solve_batch_recovering(
            &sys,
            0.0,
            3.0,
            &lanes3(),
            &options,
            BatchMode::PerLane,
            &mut ws,
            &mut scalar_ws,
        )
        .unwrap();
        assert_eq!(sol.stats.detached, 1);
        // The poisoned lane's scalar rhs is clean, so the ladder's primary
        // rung succeeds: the lane comes back bitwise equal to a serial
        // solve, marked un-recovered (primary rung).
        let (tr, recovery) = sol.lanes[0].as_ref().unwrap();
        assert_eq!(*recovery, Recovery::None);
        let serial = solver().solve(&sys.inner, 0.0, 3.0, &Y0S[0]).unwrap();
        assert_eq!(tr, &serial);
        // Healthy lanes kept their batch results.
        for b in [1usize, 2] {
            let (tr, recovery) = sol.lanes[b].as_ref().unwrap();
            assert_eq!(*recovery, Recovery::None);
            let serial = solver().solve(&sys.inner, 0.0, 3.0, &Y0S[b]).unwrap();
            assert_eq!(tr, &serial);
        }
    }

    #[test]
    fn workspace_reuse_across_widths_is_clean() {
        let sys = decay();
        let mut ws = BatchWorkspace::new();
        let wide = solver()
            .solve_batch_into(&sys, 0.0, 2.0, &lanes3(), BatchMode::PerLane, &mut ws)
            .unwrap();
        let narrow = solver()
            .solve_batch_into(&sys, 0.0, 2.0, &[&Y0S[1]], BatchMode::PerLane, &mut ws)
            .unwrap();
        assert_eq!(
            narrow.lanes[0].as_ref().unwrap(),
            wide.lanes[1].as_ref().unwrap()
        );
    }

    #[test]
    fn h_init_is_honored_per_lane() {
        let sys = decay();
        let options = OdeOptions {
            h_init: Some(0.05),
            ..OdeOptions::default()
        };
        let mut ws = BatchWorkspace::new();
        let out = Dopri5::new(options)
            .solve_batch_into(&sys, 0.0, 1.0, &lanes3(), BatchMode::PerLane, &mut ws)
            .unwrap();
        for (lane, y0) in out.lanes.iter().zip(Y0S.iter()) {
            let serial = Dopri5::new(options).solve(&sys, 0.0, 1.0, y0).unwrap();
            assert_eq!(lane.as_ref().unwrap(), &serial);
        }
    }
}
