//! Initial-value ODE solvers for the `mfcsl` mean-field model checker.
//!
//! Everything the paper delegates to Wolfram Mathematica is implemented
//! here:
//!
//! * the mean-field occupancy ODE `dm̄/dt = m̄·Q(m̄)` (Eq. 1 of the paper);
//! * forward Kolmogorov transients of modified local chains (Eq. 5);
//! * the combined forward/backward propagation of time-dependent
//!   reachability matrices (Eqs. 6 and 12).
//!
//! # Solvers
//!
//! * [`dopri::Dopri5`] — adaptive Dormand–Prince 5(4) with PI step-size
//!   control and cubic-Hermite dense output; the production solver;
//! * [`fixed`] — fixed-step Euler, Heun and classic RK4, used for
//!   convergence testing and as ablation baselines;
//! * [`stiff::ImplicitTrapezoid`] — an A-stable implicit method with Newton
//!   iteration, the fallback for stiff rate regimes.
//!
//! [`recover::solve_recovering`] chains them into a **recovery ladder**
//! (plain Dopri5 → relaxed controller → implicit trapezoid) that the
//! checking pipeline uses for every trajectory solve, and [`fault`]
//! provides a deterministic, seeded fault-injection wrapper for chaos
//! testing that ladder.
//!
//! # Events
//!
//! [`events::EventLocator`] finds times where a scalar function of the state
//! crosses zero, by monitoring sign changes over accepted steps and refining
//! with Brent's method on the dense output. The model checker uses this to
//! find satisfaction-set discontinuity points and `cSat` boundaries.
//!
//! # Example
//!
//! ```
//! use mfcsl_ode::dopri::Dopri5;
//! use mfcsl_ode::problem::FnSystem;
//! use mfcsl_ode::OdeOptions;
//!
//! # fn main() -> Result<(), mfcsl_ode::OdeError> {
//! // dy/dt = -y, y(0) = 1.
//! let sys = FnSystem::new(1, |_t, y: &[f64], dy: &mut [f64]| dy[0] = -y[0]);
//! let sol = Dopri5::new(OdeOptions::default()).solve(&sys, 0.0, 2.0, &[1.0])?;
//! let y1 = sol.eval(1.0)[0];
//! assert!((y1 - (-1.0_f64).exp()).abs() < 1e-7);
//! # Ok(())
//! # }
//! ```

// `!(x > 0.0)`-style guards are used deliberately throughout: unlike
// `x <= 0.0`, they classify NaN as invalid input instead of letting it
// through, which is exactly the intent of the validation sites.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod batch;
pub mod dopri;
pub mod error;
pub mod events;
pub mod fault;
pub mod fixed;
pub mod options;
pub mod problem;
pub mod recover;
pub mod solution;
pub mod stiff;

pub use batch::{solve_batch_recovering, BatchMode, BatchOutcome, BatchSolution, BatchStats, BatchWorkspace};
pub use dopri::SolverWorkspace;
pub use error::OdeError;
pub use fault::{FaultMode, FaultPlan, FaultySystem};
pub use options::OdeOptions;
pub use problem::{FnSystem, OdeSystem};
pub use recover::{solve_recovering, Recovery};
pub use solution::{SolveStats, Trajectory};
