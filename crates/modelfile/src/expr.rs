//! The rate-expression language of model files.
//!
//! Rates in a `.mf` model file are arithmetic expressions over parameters
//! and occupancy fractions:
//!
//! ```text
//! k1 * m[s3] / max(m[s1], 1e-6)
//! ```
//!
//! Grammar:
//!
//! ```text
//! expr  := term (('+' | '-') term)*
//! term  := unary (('*' | '/') unary)*
//! unary := '-' unary | atom
//! atom  := number | 'm' '[' ident ']' | ident '(' expr {',' expr} ')'
//!        | ident | '(' expr ')'
//! ```
//!
//! Built-in functions: `min`, `max`, `pow` (binary); `exp`, `ln`, `sqrt`,
//! `abs` (unary). Parameters are resolved at compile time against the
//! file's `param` definitions; `m[state]` references are resolved against
//! the declared states.

use std::collections::BTreeMap;

use mfcsl_core::Occupancy;

/// A parse/compile error with a byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExprError {
    /// Byte offset in the expression text.
    pub position: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ExprError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ExprError {}

/// Parsed expression tree (names unresolved).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A numeric literal.
    Number(f64),
    /// A parameter reference.
    Var(String),
    /// An occupancy fraction `m[state]`.
    Fraction(String),
    /// Negation.
    Neg(Box<Expr>),
    /// Binary arithmetic.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// A built-in function call.
    Call {
        /// Function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

/// A compiled expression: parameters folded to constants, state references
/// resolved to indices — ready for allocation-free evaluation inside rate
/// closures.
///
/// (No `PartialEq`: built-in functions are stored as function pointers,
/// whose comparison is not meaningful.)
#[derive(Debug, Clone)]
pub enum CompiledExpr {
    /// A constant.
    Const(f64),
    /// The occupancy fraction of a state index.
    Fraction(usize),
    /// Negation.
    Neg(Box<CompiledExpr>),
    /// Binary arithmetic.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<CompiledExpr>,
        /// Right operand.
        rhs: Box<CompiledExpr>,
    },
    /// Unary built-in.
    Unary1(fn(f64) -> f64, Box<CompiledExpr>),
    /// Binary built-in.
    Unary2(fn(f64, f64) -> f64, Box<CompiledExpr>, Box<CompiledExpr>),
}

impl Expr {
    /// Parses an expression from text.
    ///
    /// # Errors
    ///
    /// Returns [`ExprError`] with the failing byte position.
    ///
    /// # Example
    ///
    /// ```
    /// use mfcsl_modelfile::expr::Expr;
    ///
    /// let e = Expr::parse("k1 * m[s3] / max(m[s1], 1e-6)")?;
    /// assert!(matches!(e, Expr::Binary { .. }));
    /// # Ok::<(), mfcsl_modelfile::expr::ExprError>(())
    /// ```
    pub fn parse(input: &str) -> Result<Self, ExprError> {
        let mut p = ExprParser { input, pos: 0 };
        let e = p.expr()?;
        p.skip_ws();
        if p.pos < input.len() {
            return Err(p.error("unexpected trailing input"));
        }
        Ok(e)
    }

    /// Resolves parameters and state names, producing an evaluable form.
    ///
    /// # Errors
    ///
    /// Returns [`ExprError`] (position 0) for unknown names or wrong
    /// function arity.
    pub fn compile(
        &self,
        params: &BTreeMap<String, f64>,
        state_index: &BTreeMap<String, usize>,
    ) -> Result<CompiledExpr, ExprError> {
        let fail = |message: String| ExprError {
            position: 0,
            message,
        };
        Ok(match self {
            Expr::Number(v) => CompiledExpr::Const(*v),
            Expr::Var(name) => CompiledExpr::Const(
                *params
                    .get(name)
                    .ok_or_else(|| fail(format!("unknown parameter `{name}`")))?,
            ),
            Expr::Fraction(state) => CompiledExpr::Fraction(
                *state_index
                    .get(state)
                    .ok_or_else(|| fail(format!("unknown state `{state}` in m[...]")))?,
            ),
            Expr::Neg(inner) => CompiledExpr::Neg(Box::new(inner.compile(params, state_index)?)),
            Expr::Binary { op, lhs, rhs } => CompiledExpr::Binary {
                op: *op,
                lhs: Box::new(lhs.compile(params, state_index)?),
                rhs: Box::new(rhs.compile(params, state_index)?),
            },
            Expr::Call { name, args } => {
                let unary: Option<fn(f64) -> f64> = match name.as_str() {
                    "exp" => Some(f64::exp),
                    "ln" => Some(f64::ln),
                    "sqrt" => Some(f64::sqrt),
                    "abs" => Some(f64::abs),
                    _ => None,
                };
                let binary: Option<fn(f64, f64) -> f64> = match name.as_str() {
                    "min" => Some(f64::min),
                    "max" => Some(f64::max),
                    "pow" => Some(f64::powf),
                    _ => None,
                };
                if let Some(f) = unary {
                    if args.len() != 1 {
                        return Err(fail(format!("`{name}` takes exactly 1 argument")));
                    }
                    CompiledExpr::Unary1(f, Box::new(args[0].compile(params, state_index)?))
                } else if let Some(f) = binary {
                    if args.len() != 2 {
                        return Err(fail(format!("`{name}` takes exactly 2 arguments")));
                    }
                    CompiledExpr::Unary2(
                        f,
                        Box::new(args[0].compile(params, state_index)?),
                        Box::new(args[1].compile(params, state_index)?),
                    )
                } else {
                    return Err(fail(format!("unknown function `{name}`")));
                }
            }
        })
    }
}

impl CompiledExpr {
    /// Evaluates the expression at an occupancy vector.
    #[must_use]
    pub fn eval(&self, m: &Occupancy) -> f64 {
        match self {
            CompiledExpr::Const(v) => *v,
            CompiledExpr::Fraction(i) => m[*i],
            CompiledExpr::Neg(inner) => -inner.eval(m),
            CompiledExpr::Binary { op, lhs, rhs } => {
                let a = lhs.eval(m);
                let b = rhs.eval(m);
                match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b,
                }
            }
            CompiledExpr::Unary1(f, a) => f(a.eval(m)),
            CompiledExpr::Unary2(f, a, b) => f(a.eval(m), b.eval(m)),
        }
    }

    /// `true` if the expression references no occupancy fraction (it is a
    /// constant rate).
    #[must_use]
    pub fn is_constant(&self) -> bool {
        match self {
            CompiledExpr::Const(_) => true,
            CompiledExpr::Fraction(_) => false,
            CompiledExpr::Neg(inner) => inner.is_constant(),
            CompiledExpr::Binary { lhs, rhs, .. } => lhs.is_constant() && rhs.is_constant(),
            CompiledExpr::Unary1(_, a) => a.is_constant(),
            CompiledExpr::Unary2(_, a, b) => a.is_constant() && b.is_constant(),
        }
    }
}

struct ExprParser<'a> {
    input: &'a str,
    pos: usize,
}

impl ExprParser<'_> {
    fn error(&self, message: impl Into<String>) -> ExprError {
        ExprError {
            position: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input.as_bytes()[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.input.as_bytes().get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), ExprError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", c as char)))
        }
    }

    fn expr(&mut self) -> Result<Expr, ExprError> {
        let mut lhs = self.term()?;
        loop {
            match self.peek() {
                Some(b'+') => {
                    self.pos += 1;
                    let rhs = self.term()?;
                    lhs = Expr::Binary {
                        op: BinOp::Add,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    };
                }
                Some(b'-') => {
                    self.pos += 1;
                    let rhs = self.term()?;
                    lhs = Expr::Binary {
                        op: BinOp::Sub,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    };
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn term(&mut self) -> Result<Expr, ExprError> {
        let mut lhs = self.unary()?;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.pos += 1;
                    let rhs = self.unary()?;
                    lhs = Expr::Binary {
                        op: BinOp::Mul,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    };
                }
                Some(b'/') => {
                    self.pos += 1;
                    let rhs = self.unary()?;
                    lhs = Expr::Binary {
                        op: BinOp::Div,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    };
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn unary(&mut self) -> Result<Expr, ExprError> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Expr, ExprError> {
        match self.peek() {
            Some(b'(') => {
                self.eat(b'(')?;
                let e = self.expr()?;
                self.eat(b')')?;
                Ok(e)
            }
            Some(c) if c.is_ascii_digit() || c == b'.' => self.number(),
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                let name = self.ident()?;
                if name == "m" && self.peek() == Some(b'[') {
                    self.eat(b'[')?;
                    let state = self.ident()?;
                    self.eat(b']')?;
                    return Ok(Expr::Fraction(state));
                }
                if self.peek() == Some(b'(') {
                    self.eat(b'(')?;
                    let mut args = vec![self.expr()?];
                    while self.peek() == Some(b',') {
                        self.pos += 1;
                        args.push(self.expr()?);
                    }
                    self.eat(b')')?;
                    return Ok(Expr::Call { name, args });
                }
                Ok(Expr::Var(name))
            }
            _ => Err(self.error("expected a number, name, m[...], or `(`")),
        }
    }

    fn ident(&mut self) -> Result<String, ExprError> {
        self.skip_ws();
        let start = self.pos;
        let bytes = self.input.as_bytes();
        if self.pos >= bytes.len()
            || !(bytes[self.pos].is_ascii_alphabetic() || bytes[self.pos] == b'_')
        {
            return Err(self.error("expected an identifier"));
        }
        while self.pos < bytes.len()
            && (bytes[self.pos].is_ascii_alphanumeric() || bytes[self.pos] == b'_')
        {
            self.pos += 1;
        }
        Ok(self.input[start..self.pos].to_string())
    }

    fn number(&mut self) -> Result<Expr, ExprError> {
        self.skip_ws();
        let start = self.pos;
        let bytes = self.input.as_bytes();
        while self.pos < bytes.len()
            && (bytes[self.pos].is_ascii_digit()
                || bytes[self.pos] == b'.'
                || bytes[self.pos] == b'e'
                || bytes[self.pos] == b'E'
                || ((bytes[self.pos] == b'+' || bytes[self.pos] == b'-')
                    && self.pos > start
                    && (bytes[self.pos - 1] == b'e' || bytes[self.pos - 1] == b'E')))
        {
            self.pos += 1;
        }
        self.input[start..self.pos]
            .parse::<f64>()
            .map(Expr::Number)
            .map_err(|e| self.error(format!("bad number: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(text: &str) -> CompiledExpr {
        let params: BTreeMap<String, f64> =
            [("k1".to_string(), 0.9), ("k2".to_string(), 0.1)].into();
        let states: BTreeMap<String, usize> = [
            ("s1".to_string(), 0),
            ("s2".to_string(), 1),
            ("s3".to_string(), 2),
        ]
        .into();
        Expr::parse(text)
            .unwrap()
            .compile(&params, &states)
            .unwrap()
    }

    fn m() -> Occupancy {
        Occupancy::new(vec![0.8, 0.15, 0.05]).unwrap()
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(compile("1 + 2 * 3").eval(&m()), 7.0);
        assert_eq!(compile("(1 + 2) * 3").eval(&m()), 9.0);
        assert_eq!(compile("-2 * 3").eval(&m()), -6.0);
        assert_eq!(compile("10 / 4").eval(&m()), 2.5);
        assert_eq!(compile("1 - 2 - 3").eval(&m()), -4.0);
    }

    #[test]
    fn fractions_and_params() {
        assert_eq!(compile("m[s1]").eval(&m()), 0.8);
        assert_eq!(compile("k1").eval(&m()), 0.9);
        let v = compile("k1 * m[s3] / max(m[s1], 1e-6)").eval(&m());
        assert!((v - 0.9 * 0.05 / 0.8).abs() < 1e-15);
    }

    #[test]
    fn functions() {
        assert_eq!(compile("min(2, 3)").eval(&m()), 2.0);
        assert_eq!(compile("max(2, 3)").eval(&m()), 3.0);
        assert_eq!(compile("pow(2, 10)").eval(&m()), 1024.0);
        assert!((compile("exp(1)").eval(&m()) - std::f64::consts::E).abs() < 1e-15);
        assert!((compile("ln(exp(2))").eval(&m()) - 2.0).abs() < 1e-15);
        assert_eq!(compile("sqrt(9)").eval(&m()), 3.0);
        assert_eq!(compile("abs(-4)").eval(&m()), 4.0);
    }

    #[test]
    fn constantness() {
        assert!(compile("k1 * 2 + exp(1)").is_constant());
        assert!(!compile("k1 * m[s2]").is_constant());
    }

    #[test]
    fn scientific_notation() {
        assert_eq!(compile("1e-6").eval(&m()), 1e-6);
        assert_eq!(compile("2.5E2").eval(&m()), 250.0);
    }

    #[test]
    fn parse_errors() {
        assert!(Expr::parse("").is_err());
        assert!(Expr::parse("1 +").is_err());
        assert!(Expr::parse("m[").is_err());
        assert!(Expr::parse("max(1,").is_err());
        assert!(Expr::parse("1 2").is_err());
        assert!(Expr::parse("foo(1) bar").is_err());
    }

    #[test]
    fn compile_errors() {
        let params = BTreeMap::new();
        let states = BTreeMap::new();
        assert!(Expr::parse("zz")
            .unwrap()
            .compile(&params, &states)
            .is_err());
        assert!(Expr::parse("m[zz]")
            .unwrap()
            .compile(&params, &states)
            .is_err());
        assert!(Expr::parse("frobnicate(1)")
            .unwrap()
            .compile(&params, &states)
            .is_err());
        assert!(Expr::parse("max(1)")
            .unwrap()
            .compile(&params, &states)
            .is_err());
        assert!(Expr::parse("exp(1, 2)")
            .unwrap()
            .compile(&params, &states)
            .is_err());
    }

    #[test]
    fn a_name_called_m_is_still_a_var_without_bracket() {
        let params: BTreeMap<String, f64> = [("m".to_string(), 7.0)].into();
        let states = BTreeMap::new();
        let e = Expr::parse("m * 2")
            .unwrap()
            .compile(&params, &states)
            .unwrap();
        assert_eq!(e.eval(&Occupancy::new(vec![1.0]).unwrap()), 14.0);
    }
}

#[cfg(test)]
mod fuzz_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The expression parser never panics on arbitrary input.
        #[test]
        fn prop_parser_total(input in "\\PC{0,40}") {
            let _ = Expr::parse(&input);
        }
    }
}
