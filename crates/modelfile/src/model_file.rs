//! The `.mf` model-file format.
//!
//! A plain-text, line-oriented definition of a mean-field local model:
//!
//! ```text
//! # the paper's virus model, Table II Setting 1
//! state s1 : not_infected
//! state s2 : infected inactive
//! state s3 : infected active
//!
//! param k1 = 0.9
//! param k2 = 0.1
//! param k3 = 0.01
//! param k4 = 0.3
//! param k5 = 0.3
//!
//! rate s1 -> s2 : k1 * m[s3] / max(m[s1], 1e-6)
//! rate s2 -> s1 : k2
//! rate s2 -> s3 : k3
//! rate s3 -> s2 : k4
//! rate s3 -> s1 : k5
//! ```
//!
//! `#` starts a comment; blank lines are ignored. Declaration order:
//! states and params may interleave, but every state and parameter must be
//! declared before the first `rate` line that uses it — a rate referencing
//! an undeclared (or not-yet-declared) symbol is a parse error carrying
//! the rate line's 1-based number.

use std::collections::BTreeMap;

use mfcsl_core::{CoreError, LocalModel, Occupancy};

use crate::expr::Expr;

/// A parse error carrying the line number (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelFileError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ModelFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ModelFileError {}

/// A parsed model file, ready to instantiate.
#[derive(Debug)]
pub struct ModelFile {
    states: Vec<(String, Vec<String>)>,
    params: BTreeMap<String, f64>,
    rates: Vec<(String, String, Expr)>,
}

impl ModelFile {
    /// Parses model-file text.
    ///
    /// Every `rate` line is validated as it is read: its endpoint states
    /// must already be declared, and its expression must compile against
    /// the states and parameters declared so far, so undeclared symbols
    /// and use-before-declaration are reported with the rate line's
    /// 1-based number.
    ///
    /// # Errors
    ///
    /// Returns [`ModelFileError`] with the offending line.
    pub fn parse(text: &str) -> Result<Self, ModelFileError> {
        let mut states: Vec<(String, Vec<String>)> = Vec::new();
        let mut state_index: BTreeMap<String, usize> = BTreeMap::new();
        let mut params = BTreeMap::new();
        let mut rates: Vec<(String, String, Expr)> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let fail = |message: String| ModelFileError {
                line: line_no,
                message,
            };
            let line = match raw.find('#') {
                Some(p) => &raw[..p],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            let (keyword, rest) = line.split_once(char::is_whitespace).ok_or_else(|| {
                fail(format!("expected `state`, `param` or `rate`, got `{line}`"))
            })?;
            match keyword {
                "state" => {
                    // state <name> [: label label ...]
                    let (name, labels) = match rest.split_once(':') {
                        Some((name, labels)) => (
                            name.trim().to_string(),
                            labels.split_whitespace().map(str::to_string).collect(),
                        ),
                        None => (rest.trim().to_string(), Vec::new()),
                    };
                    if name.is_empty() || !is_ident(&name) {
                        return Err(fail(format!("invalid state name `{name}`")));
                    }
                    if state_index.contains_key(&name) {
                        return Err(fail(format!("duplicate state `{name}`")));
                    }
                    state_index.insert(name.clone(), states.len());
                    states.push((name, labels));
                }
                "param" => {
                    // param <name> = <number-or-const-expr>
                    let (name, value_text) = rest
                        .split_once('=')
                        .ok_or_else(|| fail("expected `param <name> = <value>`".into()))?;
                    let name = name.trim().to_string();
                    if !is_ident(&name) {
                        return Err(fail(format!("invalid parameter name `{name}`")));
                    }
                    if params.contains_key(&name) {
                        return Err(fail(format!("duplicate parameter `{name}`")));
                    }
                    // Allow constant expressions over earlier params.
                    let expr = Expr::parse(value_text.trim())
                        .map_err(|e| fail(format!("bad value: {e}")))?;
                    let compiled = expr
                        .compile(&params, &BTreeMap::new())
                        .map_err(|e| fail(format!("bad value: {e}")))?;
                    // Constant by construction (no states are in scope).
                    let probe = Occupancy::new(vec![1.0]).expect("valid");
                    params.insert(name, compiled.eval(&probe));
                }
                "rate" => {
                    // rate <from> -> <to> : <expr>
                    let (arrow_part, expr_text) = rest
                        .split_once(':')
                        .ok_or_else(|| fail("expected `rate <a> -> <b> : <expr>`".into()))?;
                    let (from, to) = arrow_part
                        .split_once("->")
                        .ok_or_else(|| fail("expected `<from> -> <to>`".into()))?;
                    let (from, to) = (from.trim().to_string(), to.trim().to_string());
                    for endpoint in [&from, &to] {
                        if !state_index.contains_key(endpoint.as_str()) {
                            return Err(fail(format!(
                                "rate references undeclared state `{endpoint}` \
                                 (states must be declared before the rates that use them)"
                            )));
                        }
                    }
                    if from == to {
                        return Err(fail(format!("rate {from} -> {to} is a self-loop")));
                    }
                    let expr = Expr::parse(expr_text.trim())
                        .map_err(|e| fail(format!("bad rate expression: {e}")))?;
                    // Validation compile against the symbols declared so
                    // far: undeclared parameters/states — including ones
                    // declared only further down the file — fail here,
                    // with this line's number.
                    expr.compile(&params, &state_index)
                        .map_err(|e| fail(format!("bad rate expression: {e}")))?;
                    rates.push((from, to, expr));
                }
                other => {
                    return Err(fail(format!(
                        "unknown keyword `{other}` (expected `state`, `param` or `rate`)"
                    )))
                }
            }
        }
        if states.is_empty() {
            return Err(ModelFileError {
                line: text.lines().count().max(1),
                message: "model declares no states".into(),
            });
        }
        Ok(ModelFile {
            states,
            params,
            rates,
        })
    }

    /// Reads and parses a model file from disk.
    ///
    /// # Errors
    ///
    /// I/O errors are mapped to a line-0 [`ModelFileError`].
    pub fn load(path: &std::path::Path) -> Result<Self, ModelFileError> {
        let text = std::fs::read_to_string(path).map_err(|e| ModelFileError {
            line: 0,
            message: format!("cannot read {}: {e}", path.display()),
        })?;
        ModelFile::parse(&text)
    }

    /// State names in declaration order.
    #[must_use]
    pub fn state_names(&self) -> Vec<String> {
        self.states.iter().map(|(n, _)| n.clone()).collect()
    }

    /// The parameter table.
    #[must_use]
    pub fn params(&self) -> &BTreeMap<String, f64> {
        &self.params
    }

    /// Instantiates the [`LocalModel`] with the file's parameter values.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] for invalid model structure.
    pub fn instantiate(&self) -> Result<LocalModel, CoreError> {
        self.instantiate_with(&BTreeMap::new())
    }

    /// Instantiates the [`LocalModel`] with some parameters overridden —
    /// the per-request re-parameterization behind the serving layer's
    /// `(model, params, tolerances)` session keys.
    ///
    /// Overrides replace the *final* values of the parameter table: a
    /// parameter that was defined as an expression over earlier parameters
    /// keeps its folded value unless overridden itself.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] for an override naming no
    /// declared parameter or carrying a non-finite value, and [`CoreError`]
    /// for invalid model structure.
    pub fn instantiate_with(
        &self,
        overrides: &BTreeMap<String, f64>,
    ) -> Result<LocalModel, CoreError> {
        let mut params = self.params.clone();
        for (name, value) in overrides {
            if !params.contains_key(name) {
                return Err(CoreError::InvalidArgument(format!(
                    "unknown parameter override `{name}`"
                )));
            }
            if !value.is_finite() {
                return Err(CoreError::InvalidArgument(format!(
                    "parameter override `{name}` must be finite, got {value}"
                )));
            }
            params.insert(name.clone(), *value);
        }
        let state_index: BTreeMap<String, usize> = self
            .states
            .iter()
            .enumerate()
            .map(|(i, (n, _))| (n.clone(), i))
            .collect();
        let mut builder = LocalModel::builder();
        for (name, labels) in &self.states {
            builder = builder.state(name.clone(), labels.iter().cloned());
        }
        for (from, to, expr) in &self.rates {
            let compiled = expr
                .compile(&params, &state_index)
                .map_err(|e| CoreError::InvalidModel(format!("rate {from} -> {to}: {e}")))?;
            builder = builder.transition(from.clone(), to.clone(), move |m: &Occupancy| {
                compiled.eval(m)
            })?;
        }
        builder.build()
    }
}

fn is_ident(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    const VIRUS: &str = "\
# the paper's virus model
state s1 : not_infected
state s2 : infected inactive
state s3 : infected active

param k1 = 0.9
param k2 = 0.1
param k3 = 0.01
param k4 = 0.3
param k5 = 0.3

rate s1 -> s2 : k1 * m[s3] / max(m[s1], 1e-6)
rate s2 -> s1 : k2
rate s2 -> s3 : k3
rate s3 -> s2 : k4
rate s3 -> s1 : k5
";

    #[test]
    fn parses_and_instantiates_the_virus_model() {
        let file = ModelFile::parse(VIRUS).unwrap();
        assert_eq!(file.state_names(), vec!["s1", "s2", "s3"]);
        assert_eq!(file.params().len(), 5);
        let model = file.instantiate().unwrap();
        assert_eq!(model.n_states(), 3);
        let m = Occupancy::new(vec![0.8, 0.15, 0.05]).unwrap();
        let q = model.generator_at(&m).unwrap();
        assert!((q[(0, 1)] - 0.9 * 0.05 / 0.8).abs() < 1e-12);
        assert_eq!(q[(1, 0)], 0.1);
        assert!(model.labeling().has(2, "active"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let file = ModelFile::parse(
            "state a : x # trailing comment\n\n# full comment\nstate b : y\nrate a -> b : 1\n",
        )
        .unwrap();
        assert_eq!(file.state_names().len(), 2);
        file.instantiate().unwrap();
    }

    #[test]
    fn params_can_reference_earlier_params() {
        let file = ModelFile::parse(
            "state a : x\nstate b : y\nparam base = 2\nparam double = base * 2\nrate a -> b : double\n",
        )
        .unwrap();
        assert_eq!(file.params()["double"], 4.0);
    }

    #[test]
    fn states_without_labels() {
        let file = ModelFile::parse("state a\nstate b\nrate a -> b : 1\n").unwrap();
        let model = file.instantiate().unwrap();
        assert!(model.labeling().alphabet().is_empty());
    }

    #[test]
    fn error_lines_are_reported() {
        let err = ModelFile::parse("state a\nbogus line here\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = ModelFile::parse("state a\nstate a\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = ModelFile::parse("state a\nparam x 1\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = ModelFile::parse("state a\nrate a : 1\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = ModelFile::parse("state a\nstate b\nrate a -> b : 1 +\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(ModelFile::parse("param x = 1\n").is_err());
        let err = ModelFile::parse("state 1abc\n").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn duplicate_names_report_their_line() {
        let err = ModelFile::parse("state a\nparam k = 1\nparam k = 2\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("duplicate parameter `k`"), "{err}");
        let err = ModelFile::parse("state a\nstate b\nstate a\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("duplicate state `a`"), "{err}");
    }

    #[test]
    fn undeclared_rate_symbols_report_their_line() {
        // Unknown endpoint state.
        let err = ModelFile::parse("state a\nrate a -> ghost : 1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("undeclared state `ghost`"), "{err}");
        // Unknown parameter inside the expression.
        let err = ModelFile::parse("state a\nstate b\nrate a -> b : kk\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("unknown parameter `kk`"), "{err}");
        // Unknown state inside m[...].
        let err = ModelFile::parse("state a\nstate b\nrate a -> b : m[zz]\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("unknown state `zz`"), "{err}");
    }

    #[test]
    fn use_before_declaration_reports_the_rate_line() {
        // The endpoint is declared, but only *after* the rate line.
        let err = ModelFile::parse("state a\nrate a -> b : 1\nstate b\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("undeclared state `b`"), "{err}");
        // Same for a parameter used before its `param` line.
        let err =
            ModelFile::parse("state a\nstate b\nrate a -> b : late\nparam late = 1\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("unknown parameter `late`"), "{err}");
        // Same for an occupancy reference to a later state.
        let err = ModelFile::parse("state a\nstate b\nrate a -> b : m[c]\nstate c\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("unknown state `c`"), "{err}");
    }

    #[test]
    fn self_loops_rejected_at_parse_time() {
        let err = ModelFile::parse("state a\nrate a -> a : 1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("self-loop"), "{err}");
    }

    #[test]
    fn instantiate_with_overrides() {
        let file = ModelFile::parse(VIRUS).unwrap();
        let overrides: BTreeMap<String, f64> = [("k2".to_string(), 0.5)].into();
        let model = file.instantiate_with(&overrides).unwrap();
        let m = Occupancy::new(vec![0.8, 0.15, 0.05]).unwrap();
        let q = model.generator_at(&m).unwrap();
        assert_eq!(q[(1, 0)], 0.5);
        // The file's own table is untouched.
        assert_eq!(file.params()["k2"], 0.1);
        // Unknown and non-finite overrides are rejected.
        let bogus: BTreeMap<String, f64> = [("zz".to_string(), 1.0)].into();
        assert!(file.instantiate_with(&bogus).is_err());
        let nan: BTreeMap<String, f64> = [("k2".to_string(), f64::NAN)].into();
        assert!(file.instantiate_with(&nan).is_err());
    }
}
