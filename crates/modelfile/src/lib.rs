//! The `.mf` model-file format, shared by every front end (the `mfcsl`
//! CLI and the `mfcsld` serving daemon).
//!
//! * [`expr`] — the arithmetic rate-expression language of model files;
//! * [`model_file`] — the `.mf` format itself (states, params, rates),
//!   with parse errors carrying 1-based line numbers and instantiation
//!   with per-request parameter overrides.

// `!(x > 0.0)`-style guards are used deliberately: unlike `x <= 0.0`,
// they classify NaN as invalid input instead of letting it through.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod expr;
pub mod model_file;

pub use expr::{Expr, ExprError};
pub use model_file::{ModelFile, ModelFileError};
