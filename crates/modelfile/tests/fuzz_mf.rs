//! Fuzz smoke over the `.mf` parser: deterministic byte-level mutations of
//! a committed seed corpus (`fuzz/corpus/mf/`), asserting that every input
//! — however mangled — produces either a parsed model or a structured
//! error, never a panic. The iteration budget is bounded so the smoke runs
//! inside the normal test suite; `MFCSL_FUZZ_ITERS` raises it for longer
//! soak runs (verify.sh runs a small fixed budget).

use std::path::PathBuf;

use mfcsl_modelfile::ModelFile;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../fuzz/corpus/mf")
}

fn load_corpus() -> Vec<(String, Vec<u8>)> {
    let mut seeds: Vec<_> = std::fs::read_dir(corpus_dir())
        .expect("fuzz/corpus/mf must exist")
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "mf"))
        .map(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            (name, std::fs::read(e.path()).expect("readable seed"))
        })
        .collect();
    seeds.sort_by(|a, b| a.0.cmp(&b.0));
    assert!(!seeds.is_empty(), "seed corpus must not be empty");
    seeds
}

/// The same xorshift64 generator the SMC replication seeder uses: cheap,
/// deterministic, and good enough to pick mutation sites.
struct XorShift64(u64);

impl XorShift64 {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }
}

fn iterations() -> usize {
    std::env::var("MFCSL_FUZZ_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// Interesting bytes to splice in: structural tokens, arithmetic, digits,
/// whitespace, and high bytes that break UTF-8 runs.
const INTERESTING: &[u8] = b"->:[]()*/+.,eE09 \t\n#m\"\\\xff\xc3\x00";

fn mutate(seed: &[u8], rng: &mut XorShift64) -> Vec<u8> {
    let mut bytes = seed.to_vec();
    for _ in 0..=rng.below(8) {
        match rng.below(4) {
            0 if !bytes.is_empty() => {
                // Flip one byte.
                let at = rng.below(bytes.len());
                bytes[at] = INTERESTING[rng.below(INTERESTING.len())];
            }
            1 => {
                // Insert one interesting byte.
                let at = rng.below(bytes.len() + 1);
                bytes.insert(at, INTERESTING[rng.below(INTERESTING.len())]);
            }
            2 if !bytes.is_empty() => {
                // Truncate at a random point.
                bytes.truncate(rng.below(bytes.len() + 1));
            }
            _ if bytes.len() >= 2 => {
                // Splice a random slice over a random site (duplication /
                // reordering — how real corruption looks).
                let from = rng.below(bytes.len());
                let len = rng.below(bytes.len() - from) + 1;
                let slice = bytes[from..from + len].to_vec();
                let at = rng.below(bytes.len());
                bytes.splice(at..at, slice);
            }
            _ => {}
        }
    }
    bytes
}

#[test]
fn parser_survives_mutated_corpus_with_structured_errors() {
    let seeds = load_corpus();

    // The pristine seeds themselves must already behave: the valid ones
    // parse, the degenerate ones fail with a printable error.
    for (name, bytes) in &seeds {
        let text = String::from_utf8_lossy(bytes);
        if let Err(e) = ModelFile::parse(&text) {
            assert!(!e.to_string().is_empty(), "{name}: error must render");
        }
    }

    let mut rng = XorShift64(0x5eed_f00d_0000_0001);
    let mut parsed = 0usize;
    for i in 0..iterations() {
        let (name, seed) = &seeds[i % seeds.len()];
        let bytes = mutate(seed, &mut rng);
        let text = String::from_utf8_lossy(&bytes).into_owned();
        match ModelFile::parse(&text) {
            Ok(file) => {
                parsed += 1;
                // A file that parses must also instantiate or decline
                // cleanly (bad rates surface at instantiation).
                if let Err(e) = file.instantiate() {
                    assert!(
                        !e.to_string().is_empty(),
                        "{name} mutant {i}: instantiate error must render"
                    );
                }
            }
            Err(e) => assert!(
                !e.to_string().is_empty(),
                "{name} mutant {i}: parse error must render"
            ),
        }
    }
    // Sanity on the mutator itself: with light mutations over valid seeds a
    // decent share must still parse, or the smoke only exercises the first
    // error return.
    assert!(parsed > 0, "mutator never produced a parseable model");
}
