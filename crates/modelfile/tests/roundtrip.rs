//! Round-trip tests: the shipped `.mf` mirrors of the programmatic
//! models must agree with `crates/models` exactly — same labels, same
//! generator entries (bitwise) at sample occupancies — so a daemon
//! serving the model files is checking the same model as code built
//! against `mfcsl-models`.

use std::collections::BTreeMap;
use std::path::PathBuf;

use mfcsl_core::{LocalModel, Occupancy};
use mfcsl_modelfile::model_file::ModelFile;

fn load(name: &str) -> ModelFile {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../modelfiles")
        .join(name);
    ModelFile::load(&path).expect("shipped model file parses")
}

/// Asserts both models assign identical label sets to every state and
/// produce bitwise-identical generator matrices at each occupancy.
fn assert_same_model(parsed: &LocalModel, programmatic: &LocalModel, occupancies: &[Vec<f64>]) {
    assert_eq!(parsed.n_states(), programmatic.n_states());
    let n = parsed.n_states();
    let alphabet: std::collections::BTreeSet<String> = parsed
        .labeling()
        .alphabet()
        .into_iter()
        .chain(programmatic.labeling().alphabet())
        .collect();
    for i in 0..n {
        for label in &alphabet {
            assert_eq!(
                parsed.labeling().has(i, label),
                programmatic.labeling().has(i, label),
                "label `{label}` disagrees on state {i}"
            );
        }
    }
    for m0 in occupancies {
        let m = Occupancy::new(m0.clone()).expect("valid sample occupancy");
        let q_parsed = parsed.generator_at(&m).expect("parsed generator");
        let q_prog = programmatic.generator_at(&m).expect("programmatic generator");
        for i in 0..n {
            for j in 0..n {
                let (a, b) = (q_parsed[(i, j)], q_prog[(i, j)]);
                assert!(
                    a.to_bits() == b.to_bits(),
                    "generator entry ({i},{j}) at m0={m0:?}: parsed {a:e} vs programmatic {b:e}"
                );
            }
        }
    }
}

#[test]
fn gossip_mf_matches_programmatic_model() {
    let file = load("gossip.mf");
    let parsed = file.instantiate().expect("gossip.mf instantiates");
    let programmatic = mfcsl_models::gossip::model(mfcsl_models::gossip::default_params()).unwrap();
    assert_same_model(
        &parsed,
        &programmatic,
        &[
            vec![0.95, 0.05, 0.0],
            vec![0.6, 0.3, 0.1],
            vec![1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0],
        ],
    );
}

#[test]
fn gossip_mf_matches_with_forget_override() {
    // The file's `forget` parameter re-creates the forgetting variant.
    let file = load("gossip.mf");
    let overrides: BTreeMap<String, f64> = [("forget".to_string(), 0.2)].into();
    let parsed = file.instantiate_with(&overrides).expect("override instantiates");
    let programmatic = mfcsl_models::gossip::model(mfcsl_models::gossip::Params {
        push: 1.0,
        pull: 1.0,
        stifle: 0.5,
        forget: 0.2,
    })
    .unwrap();
    assert_same_model(&parsed, &programmatic, &[vec![0.6, 0.3, 0.1]]);
}

#[test]
fn supermarket_mf_matches_programmatic_model() {
    let file = load("supermarket.mf");
    let parsed = file.instantiate().expect("supermarket.mf instantiates");
    let programmatic = mfcsl_models::supermarket::model(mfcsl_models::supermarket::Params {
        lambda: 0.7,
        mu: 1.0,
        d: 2,
        cap: 6,
    })
    .unwrap();
    // Every component stays above the 1e-9 vanishing-mass threshold, so
    // the file's max(m_i, 1e-9) guard and the programmatic branch agree
    // bitwise.
    assert_same_model(
        &parsed,
        &programmatic,
        &[
            vec![0.3, 0.25, 0.2, 0.1, 0.08, 0.05, 0.02],
            vec![0.5, 0.2, 0.1, 0.08, 0.06, 0.04, 0.02],
            vec![
                1.0 / 7.0,
                1.0 / 7.0,
                1.0 / 7.0,
                1.0 / 7.0,
                1.0 / 7.0,
                1.0 / 7.0,
                1.0 - 6.0 / 7.0,
            ],
        ],
    );
}

#[test]
fn queueing_mf_matches_programmatic_model() {
    let file = load("queueing.mf");
    let parsed = file.instantiate().expect("queueing.mf instantiates");
    let programmatic = mfcsl_models::queueing::model(mfcsl_models::queueing::default_params()).unwrap();
    assert_same_model(
        &parsed,
        &programmatic,
        &[
            vec![0.4, 0.2, 0.1, 0.08, 0.07, 0.06, 0.05, 0.03, 0.01],
            vec![0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0],
            {
                let mut uniform = vec![1.0 / 9.0; 9];
                uniform[8] = 1.0 - 8.0 / 9.0;
                uniform
            },
        ],
    );
}

#[test]
fn queueing_mf_matches_with_retry_override() {
    let file = load("queueing.mf");
    let overrides: BTreeMap<String, f64> = [("retry".to_string(), 2.0)].into();
    let parsed = file.instantiate_with(&overrides).expect("override instantiates");
    let programmatic = mfcsl_models::queueing::model(mfcsl_models::queueing::Params {
        retry: 2.0,
        ..mfcsl_models::queueing::default_params()
    })
    .unwrap();
    assert_same_model(
        &parsed,
        &programmatic,
        &[vec![0.4, 0.2, 0.1, 0.08, 0.07, 0.06, 0.05, 0.03, 0.01]],
    );
}

#[test]
fn gossip_mf_batched_drift_is_bitwise_identical_to_programmatic_serial() {
    // A model-file-compiled drift rides the same K×B batched kernel as a
    // programmatic one: solving a sweep of initial occupancies as one
    // per-lane batch of the parsed model must reproduce, bit for bit, the
    // serial solves of the programmatic model.
    use mfcsl_core::meanfield;
    use mfcsl_ode::{BatchMode, OdeOptions, Recovery};

    let parsed = load("gossip.mf").instantiate().expect("gossip.mf instantiates");
    let programmatic = mfcsl_models::gossip::model(mfcsl_models::gossip::default_params()).unwrap();
    let m0s: Vec<Occupancy> = [
        vec![0.95, 0.04, 0.01],
        vec![0.6, 0.3, 0.1],
        vec![1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0],
    ]
    .into_iter()
    .map(|m| Occupancy::new(m).expect("valid sample occupancy"))
    .collect();
    let opts = OdeOptions::default();
    let theta = 2.0;

    let sweep = meanfield::solve_batch(&parsed, &m0s, theta, &opts, BatchMode::PerLane)
        .expect("batched sweep of the parsed model solves");
    assert_eq!(sweep.stats.width, m0s.len());
    assert_eq!(sweep.stats.detached, 0);
    for (lane, (m0, result)) in m0s.iter().zip(&sweep.lanes).enumerate() {
        let (batched, recovery) = result.as_ref().expect("lane solves");
        assert_eq!(*recovery, Recovery::None);
        let serial = meanfield::solve(&programmatic, m0, theta, &opts).expect("serial solves");
        let (cb, cs) = (batched.trajectory().curve(), serial.trajectory().curve());
        assert_eq!(cs.knots(), cb.knots(), "lane {lane}: knot times differ");
        for k in 0..cs.knots().len() {
            for (a, b) in cs.value_at(k).iter().zip(cb.value_at(k)) {
                assert!(
                    a.to_bits() == b.to_bits(),
                    "lane {lane} knot {k}: parsed-batched {b:e} vs programmatic-serial {a:e}"
                );
            }
        }
    }
}

#[test]
fn supermarket_mf_matches_with_lambda_override() {
    let file = load("supermarket.mf");
    let overrides: BTreeMap<String, f64> = [("lambda".to_string(), 0.9)].into();
    let parsed = file.instantiate_with(&overrides).expect("override instantiates");
    let programmatic = mfcsl_models::supermarket::model(mfcsl_models::supermarket::Params {
        lambda: 0.9,
        mu: 1.0,
        d: 2,
        cap: 6,
    })
    .unwrap();
    assert_same_model(&parsed, &programmatic, &[vec![0.3, 0.25, 0.2, 0.1, 0.08, 0.05, 0.02]]);
}
