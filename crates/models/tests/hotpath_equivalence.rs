//! Equivalence properties for the hot-path kernels, swept across all four
//! Table II parameter settings (`virus::table2_settings`).
//!
//! Two classes of claims, with two different strengths:
//!
//! * **bitwise** — optimizations that only changed memory layout (shared
//!   solver workspaces, arena trajectory storage) must reproduce the
//!   reference solve bit for bit: same knots, same values, same
//!   derivatives, same step statistics;
//! * **within 1e-9** — the steady-regime fast path replaces a matrix-ODE
//!   integration by one uniformization (Eq. 14/15), which is a different
//!   numerical method, so agreement is required to 1e-9 — well below the
//!   solver tolerance but not exact.

use mfcsl_core::meanfield;
use mfcsl_core::Occupancy;
use mfcsl_ctmc::inhomogeneous::{
    flat_to_matrix, propagate_window_from, transition_matrix, ConstantTail, FnGenerator,
};
use mfcsl_math::Matrix;
use mfcsl_models::virus;
use mfcsl_ode::{OdeOptions, SolverWorkspace};
use proptest::prelude::*;

/// A random interior point of the 3-state simplex. Entries are bounded
/// away from the boundary so the smart-virus rate cap never engages and
/// the stiff Setting-2 rates stay integrable at test speed.
fn occupancy_strategy() -> impl Strategy<Value = Occupancy> {
    (0.15f64..1.0, 0.15f64..1.0, 0.15f64..1.0).prop_map(|(a, b, c)| {
        let s = a + b + c;
        Occupancy::new(vec![a / s, b / s, c / s]).expect("normalized simplex point")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Solving through a caller-owned, repeatedly reused workspace is the
    /// pure memory-layout change: every setting must give bitwise
    /// identical trajectories and identical step counts.
    #[test]
    fn workspace_reuse_is_bitwise_identical(
        m0 in occupancy_strategy(),
        theta in 0.5f64..2.5,
    ) {
        let opts = OdeOptions::default();
        let mut ws = SolverWorkspace::new();
        for (name, params, law) in virus::table2_settings() {
            let model = virus::model(params, law).expect("valid params");
            let fresh = meanfield::solve(&model, &m0, theta, &opts).expect("solves");
            let reused =
                meanfield::solve_with(&model, &m0, theta, &opts, &mut ws).expect("solves");
            let (a, b) = (fresh.trajectory(), reused.trajectory());
            prop_assert_eq!(a.stats(), b.stats(), "step statistics differ on {}", name);
            let (ca, cb) = (a.curve(), b.curve());
            prop_assert_eq!(ca.knots(), cb.knots(), "knot times differ on {}", name);
            for k in 0..ca.knots().len() {
                let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                prop_assert_eq!(
                    bits(ca.value_at(k)),
                    bits(cb.value_at(k)),
                    "knot {} values differ on {}", k, name
                );
                prop_assert_eq!(
                    bits(ca.derivative_at(k)),
                    bits(cb.derivative_at(k)),
                    "knot {} derivatives differ on {}", k, name
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Where the steady-regime hand-off replaces the window matrix ODE by
    /// a uniformization of the frozen generator, the window value must
    /// match the matrix ODE's answer to 1e-9 at every time in the settled
    /// regime.
    ///
    /// The generator follows a simplex path that settles exactly at
    /// `t* = 2` (a linear occupancy blend, frozen from then on), mimicking
    /// a mean-field trajectory entering its stationary regime.
    #[test]
    fn steady_uniformization_matches_matrix_ode(
        m_start in occupancy_strategy(),
        m_end in occupancy_strategy(),
        duration in 0.2f64..0.6,
    ) {
        // Everything runs two orders tighter than the 1e-9 claim: the
        // hand-off knot keeps the head integration's own end value, so at
        // default tolerances the comparison would measure the matrix ODE's
        // truncation error rather than the uniformization's.
        let opts = OdeOptions::default().with_tolerances(1e-11, 1e-13);
        for (name, params, law) in virus::table2_settings() {
            let model = virus::model(params, law).expect("valid params");
            let n = model.n_states();
            let gen = FnGenerator::new(n, |t: f64, q: &mut Matrix| {
                let a = (t / 2.0).min(1.0);
                let blend: Vec<f64> = m_start
                    .as_slice()
                    .iter()
                    .zip(m_end.as_slice())
                    .map(|(x, y)| x + (y - x) * a)
                    .collect();
                let m = Occupancy::new(blend).expect("simplex is convex");
                let qm = model.generator_at(&m).expect("generator");
                for i in 0..n {
                    for j in 0..n {
                        q[(i, j)] = qm[(i, j)];
                    }
                }
            });
            let tail = ConstantTail { t_star: 2.0, eps: 1e-13 };
            let init = transition_matrix(&gen, 0.0, duration, &opts).expect("initial window");
            let fast = propagate_window_from(&gen, &init, 0.0, 6.0, duration, &opts, Some(&tail))
                .expect("propagates");
            // The matrix-ODE reference: a direct Eq. 5 solve over
            // [t, t + T]. For t >= t* the generator is frozen, so one
            // reference serves the whole settled regime.
            let reference = transition_matrix(&gen, 2.0, duration, &opts).expect("reference");
            // The settled end of the trajectory is the raw uniformization
            // output W = e^{QT}: this is the value that replaced the
            // matrix ODE, and it must agree to 1e-9.
            let w = flat_to_matrix(n, &fast.eval(6.0));
            for r in 0..n {
                for c in 0..n {
                    let diff = (w[(r, c)] - reference[(r, c)]).abs();
                    prop_assert!(
                        diff < 1e-9,
                        "{}: uniformized window({}, {}) differs from the matrix ODE by {}",
                        name, r, c, diff
                    );
                }
            }
            // Across the hand-off blend the curve interpolates between the
            // head integration's own end value and W, so the agreement
            // there is bounded by the window equation's conditioning (its
            // error modes grow like differences of generator eigenvalues —
            // the very reason the uniformized tail is preferable), not by
            // the uniformization error. A coarse bound catches gross
            // hand-off mistakes without re-measuring the ODE's drift.
            // (On stiff Setting 2 the head's end value alone is ~1e-5 off
            // at rtol 1e-11 — eigenvalue spreads near 60 amplify injected
            // error by e^{60 (t - t_err)} — hence the coarse bound.)
            for i in 0..=8 {
                let t = 2.0 + 4.0 * f64::from(i) / 8.0;
                let w = flat_to_matrix(n, &fast.eval(t));
                for r in 0..n {
                    for c in 0..n {
                        let diff = (w[(r, c)] - reference[(r, c)]).abs();
                        prop_assert!(
                            diff < 1e-3,
                            "{}: window({}, {}) at t = {} is {} away from the settled value",
                            name, r, c, t, diff
                        );
                    }
                }
            }
        }
    }
}
