//! Batch-vs-serial equivalence for the SoA solving lane
//! ([`mfcsl_ode::batch`]), swept across all four Table II parameter
//! settings and the bounded-queue model at batch widths 1, 2, and 12.
//!
//! Two claims with two strengths, matching the two controller modes:
//!
//! * **per-lane controllers — bitwise**: every lane runs its own
//!   accept/reject stream with arithmetic identical to the scalar solver,
//!   so each lane must reproduce its serial solve bit for bit — same
//!   knots, same values, same derivatives, same step statistics;
//! * **shared controller — ≤ 1e-12**: one accept/reject decision (error
//!   norm = max over lanes) drives the whole batch, so lanes take the
//!   union of everyone's steps and the trajectories are numerically, not
//!   bitwise, equal. Run two orders tighter than the claim (rtol 1e-12,
//!   atol 1e-14) and compared at the endpoint — a knot of both solves, so
//!   the comparison measures the controllers' divergence, not dense-output
//!   interpolation error.

use mfcsl_core::meanfield;
use mfcsl_core::{LocalModel, Occupancy};
use mfcsl_models::{queueing, virus};
use mfcsl_ode::{BatchMode, OdeOptions, Recovery};
use proptest::prelude::*;

const WIDTHS: [usize; 3] = [1, 2, 12];

/// Interior points of the 3-state simplex, bounded away from the boundary
/// so the smart-virus rate cap never engages and the stiff Setting-2 rates
/// stay integrable at test speed (same bounds as `hotpath_equivalence`).
fn virus_occupancies() -> impl Strategy<Value = Vec<Occupancy>> {
    proptest::collection::vec((0.15f64..1.0, 0.15f64..1.0, 0.15f64..1.0), 12).prop_map(|raw| {
        raw.into_iter()
            .map(|(a, b, c)| {
                let s = a + b + c;
                Occupancy::new(vec![a / s, b / s, c / s]).expect("normalized simplex point")
            })
            .collect()
    })
}

/// Interior points of the 9-state simplex of the default bounded-queue
/// model (cap = 8).
fn queue_occupancies() -> impl Strategy<Value = Vec<Occupancy>> {
    proptest::collection::vec(proptest::collection::vec(0.05f64..1.0, 9), 12).prop_map(|raw| {
        raw.into_iter()
            .map(|mass| {
                let s: f64 = mass.iter().sum();
                Occupancy::new(mass.iter().map(|x| x / s).collect())
                    .expect("normalized simplex point")
            })
            .collect()
    })
}

/// Every Table II virus setting plus the bounded queue.
fn all_models() -> Vec<(&'static str, LocalModel)> {
    let mut models: Vec<(&'static str, LocalModel)> = virus::table2_settings()
        .into_iter()
        .map(|(name, params, law)| (name, virus::model(params, law).expect("valid params")))
        .collect();
    models.push((
        "queueing",
        queueing::model(queueing::default_params()).expect("valid params"),
    ));
    models
}

/// Asserts two trajectories are bitwise identical: statistics, knot times,
/// knot values, knot derivatives.
fn assert_bitwise(
    name: &str,
    width: usize,
    lane: usize,
    serial: &mfcsl_ode::Trajectory,
    batched: &mfcsl_ode::Trajectory,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        serial.stats(),
        batched.stats(),
        "{} width {} lane {}: step statistics differ",
        name,
        width,
        lane
    );
    let (cs, cb) = (serial.curve(), batched.curve());
    prop_assert_eq!(
        cs.knots(),
        cb.knots(),
        "{} width {} lane {}: knot times differ",
        name,
        width,
        lane
    );
    let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    for k in 0..cs.knots().len() {
        prop_assert_eq!(
            bits(cs.value_at(k)),
            bits(cb.value_at(k)),
            "{} width {} lane {}: knot {} values differ",
            name,
            width,
            lane,
            k
        );
        prop_assert_eq!(
            bits(cs.derivative_at(k)),
            bits(cb.derivative_at(k)),
            "{} width {} lane {}: knot {} derivatives differ",
            name,
            width,
            lane,
            k
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Per-lane controllers are the pure memory-layout change: every lane
    /// of the batch must reproduce its serial solve bit for bit on every
    /// setting, at every width, with no lane detaching.
    #[test]
    fn per_lane_batch_is_bitwise_identical_to_serial(
        virus_m0s in virus_occupancies(),
        queue_m0s in queue_occupancies(),
        theta in 0.5f64..2.5,
    ) {
        let opts = OdeOptions::default();
        for (name, model) in all_models() {
            let m0s: &[Occupancy] =
                if name == "queueing" { &queue_m0s } else { &virus_m0s };
            for width in WIDTHS {
                let lanes = &m0s[..width];
                let sweep =
                    meanfield::solve_batch(&model, lanes, theta, &opts, BatchMode::PerLane)
                        .expect("solves");
                prop_assert_eq!(sweep.stats.width, width);
                prop_assert_eq!(
                    sweep.stats.detached, 0,
                    "{} width {}: healthy lanes must not detach", name, width
                );
                for (lane, (m0, result)) in lanes.iter().zip(&sweep.lanes).enumerate() {
                    let (batched, recovery) = result.as_ref().expect("lane solves");
                    prop_assert_eq!(
                        *recovery, Recovery::None,
                        "{} width {} lane {}: batched lane must not need the ladder",
                        name, width, lane
                    );
                    let serial = meanfield::solve(&model, m0, theta, &opts).expect("solves");
                    assert_bitwise(
                        name, width, lane,
                        serial.trajectory(), batched.trajectory(),
                    )?;
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The shared controller steps every lane with one accept/reject
    /// stream, so lanes diverge from their serial solves at the level of
    /// the integration error. At rtol 1e-12 / atol 1e-14 both solves sit
    /// within ~1e-13 of the true flow, so their endpoint occupancies must
    /// agree to 1e-12 on every setting at every width.
    #[test]
    fn shared_batch_matches_serial_to_1e12(
        virus_m0s in virus_occupancies(),
        queue_m0s in queue_occupancies(),
        theta in 0.5f64..2.0,
    ) {
        let opts = OdeOptions::default().with_tolerances(1e-12, 1e-14);
        for (name, model) in all_models() {
            let m0s: &[Occupancy] =
                if name == "queueing" { &queue_m0s } else { &virus_m0s };
            for width in WIDTHS {
                let lanes = &m0s[..width];
                let sweep =
                    meanfield::solve_batch(&model, lanes, theta, &opts, BatchMode::Shared)
                        .expect("solves");
                prop_assert_eq!(
                    sweep.stats.detached, 0,
                    "{} width {}: healthy lanes must not detach", name, width
                );
                for (lane, (m0, result)) in lanes.iter().zip(&sweep.lanes).enumerate() {
                    let (batched, _) = result.as_ref().expect("lane solves");
                    let serial = meanfield::solve(&model, m0, theta, &opts).expect("solves");
                    let a = batched.occupancy_at(theta);
                    let b = serial.occupancy_at(theta);
                    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
                        prop_assert!(
                            (x - y).abs() <= 1e-12,
                            "{} width {} lane {} state {}: shared batch {} vs serial {} \
                             differ by {:e}",
                            name, width, lane, i, x, y, (x - y).abs()
                        );
                    }
                }
            }
        }
    }
}
