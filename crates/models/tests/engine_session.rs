//! Integration tests of the memoizing analysis engine against the shipped
//! models: the single-solve acceptance property over the paper's virus
//! example, and randomized bitwise-equivalence between cached and uncached
//! checking.

use mfcsl_core::mfcsl::{parse_formula, CheckSession, Checker, MfFormula};
use mfcsl_core::Occupancy;
use mfcsl_csl::parse_path_formula;
use mfcsl_models::{sis, virus};

/// A 3-operator MF-CSL conjunction over the paper's virus model performs
/// exactly one mean-field ODE solve: the horizon is the maximum over all
/// nested until windows up front, and every operator shares the
/// trajectory.
#[test]
fn virus_conjunction_is_one_mean_field_solve() {
    let model = virus::model(virus::setting_1(), virus::InfectionLaw::SmartVirus).unwrap();
    let m0 = virus::example_occupancy().unwrap();
    let psi = parse_formula(
        "E{<0.5}[ infected ] \
         & EP{<0.99}[ not_infected U[0,3] infected ] \
         & EP{>0}[ tt U[0,1] active ]",
    )
    .unwrap();
    let session = CheckSession::new(&model);
    session.check(&psi, &m0).unwrap();
    let stats = session.stats();
    assert_eq!(
        stats.trajectory_solves, 1,
        "expected exactly one mean-field solve, stats: {stats:?}"
    );
    assert_eq!(stats.trajectory_extensions, 0, "stats: {stats:?}");
    assert_eq!(stats.solves.len(), 1);
    // Solved to the largest until window (3) in one go.
    assert!(stats.solves[0].t_to >= 3.0, "stats: {stats:?}");
    // And the verdict agrees with the uncached checker.
    assert_eq!(
        session.check(&psi, &m0).unwrap(),
        Checker::new(&model).check(&psi, &m0).unwrap()
    );
}

/// Checking the three operators as *separate* formulas through one session
/// still costs a single solve (batch horizon is taken up front).
#[test]
fn virus_formula_batch_is_one_mean_field_solve() {
    let model = virus::model(virus::setting_1(), virus::InfectionLaw::SmartVirus).unwrap();
    let m0 = virus::example_occupancy().unwrap();
    let psis: Vec<MfFormula> = [
        "E{<0.5}[ infected ]",
        "EP{<0.99}[ not_infected U[0,3] infected ]",
        "EP{>0}[ tt U[0,1] active ]",
    ]
    .iter()
    .map(|f| parse_formula(f).unwrap())
    .collect();
    let session = CheckSession::new(&model);
    session.check_all(&psis, &m0).unwrap();
    let stats = session.stats();
    assert_eq!(stats.trajectory_solves, 1, "stats: {stats:?}");
    assert_eq!(stats.trajectory_extensions, 0, "stats: {stats:?}");
}

/// ES operators share the cached stationary regime across formulas.
#[test]
fn sis_steady_operators_share_the_regime() {
    let model = sis::model(2.0, 1.0).unwrap();
    let m0 = Occupancy::new(vec![0.9, 0.1]).unwrap();
    let session = CheckSession::new(&model);
    let psis: Vec<MfFormula> = [
        "ES{>0.45}[ infected ]",
        "ES{<0.55}[ infected ]",
        "ES{>0.45}[ healthy ]",
    ]
    .iter()
    .map(|f| parse_formula(f).unwrap())
    .collect();
    for v in session.check_all(&psis, &m0).unwrap() {
        assert!(v.holds());
    }
    let stats = session.stats();
    assert_eq!(stats.regime_solves, 1, "stats: {stats:?}");
    assert_eq!(stats.regime_reuses, 2, "stats: {stats:?}");
}

mod prop {
    use super::*;
    use mfcsl_core::LocalModel;
    use proptest::prelude::*;

    /// The random models of the equivalence property.
    fn build_model(which: usize) -> LocalModel {
        match which {
            0 => sis::model(2.0, 1.0).unwrap(),
            _ => virus::model(virus::setting_1_swapped(), virus::InfectionLaw::SmartVirus)
                .unwrap(),
        }
    }

    fn build_m0(which: usize, infected: f64) -> Occupancy {
        match which {
            0 => Occupancy::new(vec![1.0 - infected, infected]).unwrap(),
            _ => {
                Occupancy::new(vec![1.0 - infected, 0.75 * infected, 0.25 * infected]).unwrap()
            }
        }
    }

    /// A random MF-CSL formula over the model's shared `infected` label.
    fn build_formula(which: usize, op: usize, p: f64, window: f64) -> MfFormula {
        let text = match op {
            0 => format!("E{{<{p}}}[ infected ]"),
            1 => format!("E{{>={p}}}[ !infected ]"),
            2 => format!("EP{{<{p}}}[ !infected U[0,{window}] infected ]"),
            3 => format!("EP{{>{p}}}[ tt U[0,{window}] infected ]"),
            4 => format!(
                "E{{<{p}}}[ infected ] & EP{{>{}}}[ tt U[0,{window}] infected ]",
                1.0 - p
            ),
            // ES only for SIS (its endemic point is known stable from any
            // interior occupancy).
            _ if which == 0 => format!("ES{{>{p}}}[ infected ]"),
            _ => format!("E{{>{p}}}[ infected ]"),
        };
        parse_formula(&text).unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Engine-cached verdicts are bitwise-identical to a fresh
        /// uncached checker: a cold session solves to the same horizon
        /// and runs the same (shared) implementation, and a warm session
        /// replays memoized artifacts unchanged.
        #[test]
        fn prop_session_verdicts_bitwise_match_uncached(
            which in 0usize..2,
            infected in 0.05f64..0.9,
            p in 0.05f64..0.95,
            window in 0.5f64..4.0,
            op in 0usize..6,
        ) {
            let model = build_model(which);
            let m0 = build_m0(which, infected);
            let psi = build_formula(which, op, p, window);
            let uncached = Checker::new(&model).check(&psi, &m0).unwrap();
            let session = CheckSession::new(&model);
            let cold = session.check(&psi, &m0).unwrap();
            prop_assert_eq!(cold, uncached);
            // Fully cached replay: trajectory, regime, sets, and curves
            // all come from the session's caches.
            let warm = session.check(&psi, &m0).unwrap();
            prop_assert_eq!(warm, uncached);
        }

        /// Parallel batch checking is bitwise-identical to the serial
        /// session at every thread count: the pool only changes *where*
        /// each per-formula task runs, never what it computes.
        #[test]
        fn prop_parallel_batch_bitwise_matches_serial(
            which in 0usize..2,
            // Stay inside the swapped virus model's domain (see the curve
            // property below for the `m1 → 0` divergence).
            infected in 0.05f64..0.6,
            p in 0.05f64..0.95,
            window in 0.5f64..4.0,
        ) {
            let model = build_model(which);
            let m0 = build_m0(which, infected);
            let psis: Vec<MfFormula> =
                (0..6).map(|op| build_formula(which, op, p, window)).collect();
            let serial = CheckSession::new(&model).check_all(&psis, &m0).unwrap();
            for threads in [1usize, 2, 8] {
                let pool = std::sync::Arc::new(mfcsl_pool::ThreadPool::new(threads));
                let session = CheckSession::new(&model).with_pool(pool);
                let got = session.check_all(&psis, &m0).unwrap();
                prop_assert_eq!(&got, &serial, "threads = {}", threads);
            }
        }

        /// Parallel CSat sweeps produce interval sets whose endpoints are
        /// bitwise-identical to the serial sweep at every thread count.
        #[test]
        fn prop_parallel_csat_sweep_bitwise_matches_serial(
            which in 0usize..2,
            p in 0.1f64..0.9,
            // Bounded like the curve property: the swapped virus model
            // leaves its domain for long horizons from high infection.
            theta in 2.0f64..5.0,
        ) {
            let model = build_model(which);
            let psi = build_formula(which, 0, p, 1.0);
            let m0s: Vec<Occupancy> =
                (1..6).map(|i| build_m0(which, 0.1 * f64::from(i))).collect();
            let serial = CheckSession::new(&model).csat_sweep(&psi, &m0s, theta).unwrap();
            for threads in [1usize, 2, 8] {
                let pool = std::sync::Arc::new(mfcsl_pool::ThreadPool::new(threads));
                let session = CheckSession::new(&model).with_pool(pool);
                let got = session.csat_sweep(&psi, &m0s, theta).unwrap();
                prop_assert_eq!(got.len(), serial.len());
                for (a, b) in serial.iter().zip(&got) {
                    prop_assert_eq!(a.intervals().len(), b.intervals().len(),
                        "threads = {}", threads);
                    for (ia, ib) in a.intervals().iter().zip(b.intervals()) {
                        prop_assert_eq!(ia.lo().value.to_bits(), ib.lo().value.to_bits(),
                            "threads = {}", threads);
                        prop_assert_eq!(ia.hi().value.to_bits(), ib.hi().value.to_bits(),
                            "threads = {}", threads);
                    }
                }
            }
        }

        /// Probability curves drawn from a pool-attached session after a
        /// parallel batch are bitwise-identical, sample for sample, to the
        /// serial session's curves.
        #[test]
        fn prop_parallel_prob_curves_bitwise_match_serial(
            which in 0usize..2,
            // High initial infection over long horizons drives the swapped
            // virus model's `k1·m3/m1` rate to infinity as `m1 → 0` (a
            // model-domain limit, not a checker bug); stay inside it.
            infected in 0.05f64..0.6,
            window in 0.5f64..4.0,
            theta in 0.5f64..4.0,
        ) {
            let model = build_model(which);
            let m0 = build_m0(which, infected);
            let path =
                parse_path_formula(&format!("!infected U[0,{window}] infected")).unwrap();
            // Both sessions run the same call sequence (batch, then curve)
            // so their trajectories take the same solve-then-extend path;
            // only the batch's scheduling differs.
            let psis = vec![
                parse_formula(&format!(
                    "EP{{<0.99}}[ !infected U[0,{window}] infected ]"
                )).unwrap(),
                parse_formula("E{<0.5}[ infected ]").unwrap(),
            ];
            let serial_session = CheckSession::new(&model);
            serial_session.check_all(&psis, &m0).unwrap();
            let serial = serial_session.path_prob_curve(&path, &m0, theta).unwrap();
            for threads in [1usize, 2, 8] {
                let pool = std::sync::Arc::new(mfcsl_pool::ThreadPool::new(threads));
                let session = CheckSession::new(&model).with_pool(pool);
                session.check_all(&psis, &m0).unwrap();
                let curve = session.path_prob_curve(&path, &m0, theta).unwrap();
                for i in 0..=20 {
                    let t = theta * f64::from(i) / 20.0;
                    let reference = serial.probs_at(t);
                    let got = curve.probs_at(t);
                    for s in 0..reference.len() {
                        prop_assert_eq!(reference[s].to_bits(), got[s].to_bits(),
                            "threads = {} t = {} state = {}", threads, t, s);
                    }
                }
            }
        }

        /// Engine-cached probability curves are bitwise-identical to the
        /// fresh uncached checker's curves, sample for sample.
        #[test]
        fn prop_session_prob_curves_bitwise_match_uncached(
            which in 0usize..2,
            infected in 0.05f64..0.9,
            window in 0.5f64..4.0,
            theta in 0.5f64..5.0,
        ) {
            let model = build_model(which);
            let m0 = build_m0(which, infected);
            let path =
                parse_path_formula(&format!("!infected U[0,{window}] infected")).unwrap();
            let uncached = Checker::new(&model).ep_curve(&path, &m0, theta).unwrap();
            let session = CheckSession::new(&model);
            let cold = session.path_prob_curve(&path, &m0, theta).unwrap();
            let warm = session.path_prob_curve(&path, &m0, theta).unwrap();
            for i in 0..=20 {
                let t = theta * f64::from(i) / 20.0;
                let reference = uncached.prob_curve().probs_at(t);
                let c = cold.probs_at(t);
                let w = warm.probs_at(t);
                for s in 0..reference.len() {
                    prop_assert_eq!(reference[s].to_bits(), c[s].to_bits(),
                        "cold curve differs at t = {} state {}", t, s);
                    prop_assert_eq!(c[s].to_bits(), w[s].to_bits(),
                        "warm curve differs at t = {} state {}", t, s);
                }
            }
        }
    }
}
