//! The large-`K` acceptance check of the sparse lane: a `K = 1024`
//! bounded-queue model must go through steady-state and time-bounded
//! until checking end-to-end while the peak heap growth of each kernel
//! stays below ONE dense `K × K` matrix (8·K² bytes = 8 MiB) — i.e. the
//! hot path allocates `O(nnz)` working memory and never materializes a
//! dense generator, propagator, or transient.
//!
//! The test binary installs [`mfcsl_math::alloc_counter`] as its global
//! allocator and brackets each kernel; a single `#[test]` holds both
//! brackets so no concurrent test pollutes the process-global counter.

use mfcsl_core::{meanfield, Occupancy};
use mfcsl_csl::until::until_probabilities_sparse;
use mfcsl_csl::{TimeInterval, Tolerances};
use mfcsl_ctmc::sparse::SparseCtmc;
use mfcsl_ctmc::steady::steady_state_sparse;
use mfcsl_math::alloc_counter;
use mfcsl_models::queueing;
use mfcsl_ode::OdeOptions;

#[global_allocator]
static GLOBAL: alloc_counter::CountingAlloc = alloc_counter::CountingAlloc;

const K: usize = 1024;
/// One dense `K × K` f64 matrix — the memory the dense lane would need
/// for a single resident generator or transient, and the bound every
/// sparse kernel must stay under.
const DENSE_MATRIX_BYTES: u64 = (8 * K * K) as u64;

#[test]
fn k1024_checks_complete_below_one_dense_matrix() {
    assert!(alloc_counter::installed());
    let params = queueing::Params {
        cap: K - 1,
        ..queueing::default_params()
    };
    let model = queueing::model(params).expect("valid params");
    let m0 = Occupancy::unit(K, 0).expect("valid occupancy");
    // Trajectory production happens before the checking kernels and is
    // deliberately outside the brackets; a short horizon keeps its knot
    // storage (O(steps · K)) modest.
    let sol = meanfield::solve(&model, &m0, 1.0, &OdeOptions::default()).expect("solves");

    // Kernel 1: stationary distribution at the frozen t = 1 occupancy via
    // CSC assembly + bordered GMRES.
    let frozen_m = sol.occupancy_at(1.0);
    let base = alloc_counter::begin();
    let (from, to) = model.sparsity();
    let mut rates = vec![0.0; from.len()];
    model.write_rates_at(&frozen_m, &mut rates);
    let triplets: Vec<(usize, usize, f64)> = from
        .iter()
        .zip(to)
        .zip(&rates)
        .map(|((&f, &t), &r)| (f, t, r))
        .collect();
    let chain = SparseCtmc::from_triplets(K, &triplets).expect("valid chain");
    assert!(
        (chain.memory_bytes() as u64) < DENSE_MATRIX_BYTES / 64,
        "CSC storage should be orders of magnitude below dense"
    );
    let pi = steady_state_sparse(&chain).expect("converges");
    let steady_peak = alloc_counter::delta(base).peak_bytes;
    assert_eq!(pi.len(), K);
    assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    assert!(
        steady_peak < DENSE_MATRIX_BYTES,
        "steady-state kernel peaked at {steady_peak} bytes >= one dense matrix \
         ({DENSE_MATRIX_BYTES})"
    );

    // Kernel 2: the time-bounded until through the vector-path backward
    // solve — EP[ tt U[0,0.8] congested ] over the checked trajectory.
    let tv = sol.local_tv_model().expect("valid model");
    let sat2 = tv.sat_ap("congested").expect("labeled");
    let base = alloc_counter::begin();
    let interval = TimeInterval::new(0.0, 0.8).expect("valid interval");
    let p = until_probabilities_sparse(&tv, &vec![true; K], &sat2, interval, &Tolerances::default())
        .expect("solves")
        .expect("sparse lane engages at K = 1024");
    let until_peak = alloc_counter::delta(base).peak_bytes;
    assert_eq!(p.len(), K);
    assert!(p.iter().all(|&x| (0.0..=1.0 + 1e-9).contains(&x)));
    assert!(
        until_peak < DENSE_MATRIX_BYTES,
        "until kernel peaked at {until_peak} bytes >= one dense matrix \
         ({DENSE_MATRIX_BYTES})"
    );
}
