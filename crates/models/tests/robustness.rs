//! Robustness properties of the checking pipeline over the paper's
//! Table II settings: hostile numerical inputs are structured errors, never
//! panics, and with no fault injected the recovery-ladder engine answers
//! bitwise identically to the plain uncached checker.

use mfcsl_core::mfcsl::{parse_formula, CheckSession, Checker, MfFormula};
use mfcsl_core::{CoreError, LocalModel, Occupancy};
use mfcsl_csl::Tolerances;
use mfcsl_models::virus;
use mfcsl_ode::{
    solve_batch_recovering, BatchMode, BatchWorkspace, OdeOptions, OdeSystem, Recovery,
    SolverWorkspace, Trajectory,
};
use proptest::prelude::*;

fn setting(index: usize) -> LocalModel {
    let (_, params, law) = virus::table2_settings()[index % 4];
    virus::model(params, law).unwrap()
}

fn m0(infected: f64) -> Occupancy {
    Occupancy::new(vec![1.0 - infected, 0.75 * infected, 0.25 * infected]).unwrap()
}

/// Tolerances that are invalid by construction: non-positive or NaN rtol /
/// atol. (`+inf` is excluded — it is absurd but formally positive, so the
/// solver accepts every step instead of failing.)
const HOSTILE_TOLERANCES: [f64; 4] = [f64::NAN, 0.0, -1e-9, f64::NEG_INFINITY];

/// Horizons outside the checker's documented domain.
const HOSTILE_HORIZONS: [f64; 4] = [f64::NAN, -1.0, f64::INFINITY, f64::NEG_INFINITY];

fn formulas(window: f64) -> Vec<MfFormula> {
    [
        "E{<0.5}[ infected ]".to_string(),
        format!("EP{{>0}}[ tt U[0,{window}] infected ]"),
        format!("EP{{<0.99}}[ not_infected U[0,{window}] infected ]"),
    ]
    .iter()
    .map(|f| parse_formula(f).unwrap())
    .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A hostile rtol/atol pair — NaN, zero, negative — is rejected as a
    /// structured [`CoreError`] on every Table II setting. The recovery
    /// ladder must not retry it (an invalid argument stays invalid at any
    /// tolerance), and nothing may panic.
    #[test]
    fn prop_hostile_tolerances_are_structured_errors(
        which in 0usize..4,
        bad_rtol in 0usize..4,
        bad_atol in 0usize..4,
        poison_rtol in proptest::bool::ANY,
        infected in 0.05f64..0.6,
        window in 0.5f64..4.0,
    ) {
        let model = setting(which);
        let mut tol = Tolerances::default();
        let (rtol, atol) = if poison_rtol {
            (HOSTILE_TOLERANCES[bad_rtol], tol.ode.atol)
        } else {
            (tol.ode.rtol, HOSTILE_TOLERANCES[bad_atol])
        };
        // A small step budget keeps even a pathological-but-running solve
        // from grinding; the error must come from validation anyway.
        tol.ode = tol.ode.with_tolerances(rtol, atol).with_max_steps(2_000);
        let session = CheckSession::from_checker(Checker::with_tolerances(&model, tol));
        let m0 = m0(infected);
        for psi in formulas(window) {
            match session.check(&psi, &m0) {
                Err(CoreError::InvalidArgument(_) | CoreError::Ode(_) | CoreError::Csl(_)) => {}
                other => {
                    return Err(TestCaseError(format!(
                        "hostile tolerances must be a structured error, got {other:?}"
                    )));
                }
            }
        }
    }

    /// A hostile evaluation horizon — NaN, negative, infinite — is rejected
    /// as a structured [`CoreError`] on every Table II setting, through
    /// both the session and the plain checker.
    #[test]
    fn prop_hostile_horizons_are_structured_errors(
        which in 0usize..4,
        bad in 0usize..4,
        infected in 0.05f64..0.6,
    ) {
        let model = setting(which);
        let theta = HOSTILE_HORIZONS[bad];
        let psi = parse_formula("E{<0.5}[ infected ]").unwrap();
        let m0 = m0(infected);
        let session = CheckSession::new(&model);
        match session.csat(&psi, &m0, theta) {
            Err(CoreError::InvalidArgument(_) | CoreError::Csl(_)) => {}
            other => {
                return Err(TestCaseError(format!(
                    "hostile horizon {theta} must be a structured error, got {other:?}"
                )));
            }
        }
        match Checker::with_tolerances(&model, Tolerances::default())
            .csat(&psi, &m0, theta)
        {
            Err(CoreError::InvalidArgument(_) | CoreError::Csl(_)) => {}
            other => {
                return Err(TestCaseError(format!(
                    "hostile horizon {theta} must be a structured error, got {other:?}"
                )));
            }
        }
    }

    /// With no fault plan installed the recovery-ladder engine is the
    /// healthy engine: verdicts through the session match the plain
    /// uncached checker (up to the session-only refinement record), and
    /// the ladder's counters stay at zero — rung 1 runs the exact same
    /// Dormand-Prince solve as before the ladder existed.
    #[test]
    fn prop_no_fault_ladder_is_bitwise_invisible(
        which in 0usize..4,
        infected in 0.05f64..0.6,
        p in 0.05f64..0.95,
        window in 0.5f64..4.0,
    ) {
        let model = setting(which);
        let m0 = m0(infected);
        let psis: Vec<MfFormula> = [
            format!("E{{<{p}}}[ infected ]"),
            format!("EP{{<{p}}}[ not_infected U[0,{window}] infected ]"),
            format!("EP{{>0}}[ tt U[0,{window}] infected ]"),
        ]
        .iter()
        .map(|f| parse_formula(f).unwrap())
        .collect();
        let plain = Checker::new(&model);
        let session = CheckSession::new(&model);
        let cached = session.check_all(&psis, &m0).unwrap();
        for (psi, cached) in psis.iter().zip(&cached) {
            let reference = plain.check(psi, &m0).unwrap();
            prop_assert_eq!(cached.holds(), reference.holds(), "{}", psi);
            prop_assert_eq!(cached.is_marginal(), reference.is_marginal(), "{}", psi);
        }
        let stats = session.stats();
        prop_assert_eq!(stats.recoveries, 0);
        prop_assert_eq!(stats.stiff_fallbacks, 0);
    }
}

/// The mean-field drift of a Table II setting with a poisoned *batched*
/// kernel: the scalar `rhs` is clean, but `rhs_batch` writes NaN into one
/// lane's column once that lane's time passes `after`. This models a fault
/// that only the batched drive sees — exactly the situation where a lane
/// must detach and fall back to the scalar recovery ladder without
/// perturbing its siblings. `after = +inf` never fires, giving the clean
/// reference drive over the identical arithmetic.
///
/// The poisoned lane is identified by its initial occupancy, not a column
/// index: a shared-mode restart repacks the surviving lanes, so the column
/// that used to be the poisoned lane's neighbour would inherit its index.
/// At every drive launch (all active lanes evaluated at `t0 = 0`) the
/// wrapper rescans for the column whose state matches `sig` bitwise and
/// poisons only that one — after a restart excludes the lane, no survivor
/// matches and the fault is gone for good.
struct PoisonedLane<'a> {
    model: &'a LocalModel,
    sig: Vec<f64>,
    after: f64,
    column: std::cell::Cell<Option<usize>>,
}

impl OdeSystem for PoisonedLane<'_> {
    fn dim(&self) -> usize {
        self.model.n_states()
    }

    fn rhs(&self, _t: f64, y: &[f64], dy: &mut [f64]) {
        let n = self.dim();
        let mut m = y.to_vec();
        // Hostile states signal the solver through a non-finite derivative,
        // never a panic — same contract as the production mean-field drift.
        if mfcsl_math::simplex::renormalize(&mut m).is_err() {
            dy.fill(f64::NAN);
            return;
        }
        match self.model.generator_at(&Occupancy::new_unchecked(m)) {
            Ok(q) => {
                for j in 0..n {
                    dy[j] = (0..n).map(|i| y[i] * q[(i, j)]).sum();
                }
            }
            Err(_) => dy.fill(f64::NAN),
        }
    }

    fn project(&self, _t: f64, y: &mut [f64]) {
        let _ = mfcsl_math::simplex::renormalize(y);
    }

    fn rhs_batch(&self, ts: &[f64], active: &[bool], y: &[f64], dy: &mut [f64], width: usize) {
        let n = self.dim();
        // A drive launch (fresh batch or shared-mode restart) evaluates
        // every active lane at t0 = 0 with its initial state: rescan for
        // the poisoned lane's column there.
        if (0..width).all(|b| !active[b] || ts[b] == 0.0) {
            self.column.set((0..width).find(|&b| {
                active[b] && (0..n).all(|i| y[i * width + b].to_bits() == self.sig[i].to_bits())
            }));
        }
        let mut col = vec![0.0; n];
        let mut dcol = vec![0.0; n];
        for b in 0..width {
            if !active[b] {
                continue;
            }
            for i in 0..n {
                col[i] = y[i * width + b];
            }
            self.rhs(ts[b], &col, &mut dcol);
            if Some(b) == self.column.get() && ts[b] >= self.after {
                dcol[0] = f64::NAN;
            }
            for i in 0..n {
                dy[i * width + b] = dcol[i];
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Batch × recovery-ladder interaction: a NaN-injected lane detaches
    /// from the per-lane batched drive and recovers through the scalar
    /// ladder (whose clean scalar path reproduces the healthy solve), while
    /// its siblings' curves stay bitwise unchanged. In shared mode the
    /// drive restarts without the poisoned lane and still answers every
    /// lane.
    #[test]
    fn prop_poisoned_lane_detaches_and_recovers_without_perturbing_siblings(
        which in 0usize..4,
        infected in (0.05f64..0.6, 0.05f64..0.6, 0.05f64..0.6),
        horizon in 1.0f64..3.0,
    ) {
        let model = setting(which);
        let m0s = [m0(infected.0), m0(infected.1), m0(infected.2)];
        let y0s: Vec<&[f64]> = m0s.iter().map(Occupancy::as_slice).collect();
        let opts = OdeOptions::default();
        let sig = m0s[1].as_slice().to_vec();
        let clean_sys = PoisonedLane {
            model: &model,
            sig: sig.clone(),
            after: f64::INFINITY,
            column: Default::default(),
        };
        let bad_sys = PoisonedLane {
            model: &model,
            sig,
            after: 0.3 * horizon,
            column: Default::default(),
        };

        let solve = |sys: &PoisonedLane<'_>, mode| {
            let mut ws = BatchWorkspace::new();
            let mut scalar_ws = SolverWorkspace::new();
            solve_batch_recovering(sys, 0.0, horizon, &y0s, &opts, mode, &mut ws, &mut scalar_ws)
        };
        let clean = solve(&clean_sys, BatchMode::PerLane).expect("clean batch solves");
        prop_assert_eq!(clean.stats.detached, 0);

        let bad = solve(&bad_sys, BatchMode::PerLane).expect("poisoned batch solves");
        prop_assert_eq!(bad.stats.detached, 1, "exactly the poisoned lane detaches");
        prop_assert_eq!(bad.stats.restarts, 0, "per-lane mode never restarts the drive");

        let bits = |t: &Trajectory| -> Vec<u64> {
            let c = t.curve();
            (0..c.knots().len())
                .flat_map(|k| {
                    c.knots()[k..=k].iter().map(|x| x.to_bits())
                        .chain(c.value_at(k).iter().map(|x| x.to_bits()))
                        .chain(c.derivative_at(k).iter().map(|x| x.to_bits()))
                        .collect::<Vec<_>>()
                })
                .collect()
        };
        for (lane, (c, b)) in clean.lanes.iter().zip(&bad.lanes).enumerate() {
            let (clean_traj, clean_rec) = c.as_ref().expect("clean lane solves");
            prop_assert_eq!(*clean_rec, Recovery::None);
            let (bad_traj, _) = b.as_ref().expect("every lane still answers");
            // The poisoned lane's ladder re-ran the clean scalar path, and
            // per-lane siblings never saw the fault: all three curves must
            // be bitwise identical to the clean batch's.
            prop_assert_eq!(
                bits(clean_traj),
                bits(bad_traj),
                "lane {} curve changed under a sibling's fault", lane
            );
        }

        // Shared mode: the drive restarts from t0 without the poisoned
        // lane (its siblings re-ride one controller), and the poisoned
        // lane itself still answers through the scalar ladder.
        let shared = solve(&bad_sys, BatchMode::Shared).expect("shared batch solves");
        prop_assert_eq!(shared.stats.detached, 1);
        prop_assert!(shared.stats.restarts >= 1, "shared mode restarts without the lane");
        for (lane, result) in shared.lanes.iter().enumerate() {
            let (traj, _) = result.as_ref().expect("every lane still answers");
            let end = traj.eval(horizon);
            prop_assert!(
                end.iter().all(|x| x.is_finite()),
                "lane {} must end finite in shared mode", lane
            );
        }
    }
}
