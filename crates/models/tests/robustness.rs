//! Robustness properties of the checking pipeline over the paper's
//! Table II settings: hostile numerical inputs are structured errors, never
//! panics, and with no fault injected the recovery-ladder engine answers
//! bitwise identically to the plain uncached checker.

use mfcsl_core::mfcsl::{parse_formula, CheckSession, Checker, MfFormula};
use mfcsl_core::{CoreError, LocalModel, Occupancy};
use mfcsl_csl::Tolerances;
use mfcsl_models::virus;
use proptest::prelude::*;

fn setting(index: usize) -> LocalModel {
    let (_, params, law) = virus::table2_settings()[index % 4];
    virus::model(params, law).unwrap()
}

fn m0(infected: f64) -> Occupancy {
    Occupancy::new(vec![1.0 - infected, 0.75 * infected, 0.25 * infected]).unwrap()
}

/// Tolerances that are invalid by construction: non-positive or NaN rtol /
/// atol. (`+inf` is excluded — it is absurd but formally positive, so the
/// solver accepts every step instead of failing.)
const HOSTILE_TOLERANCES: [f64; 4] = [f64::NAN, 0.0, -1e-9, f64::NEG_INFINITY];

/// Horizons outside the checker's documented domain.
const HOSTILE_HORIZONS: [f64; 4] = [f64::NAN, -1.0, f64::INFINITY, f64::NEG_INFINITY];

fn formulas(window: f64) -> Vec<MfFormula> {
    [
        "E{<0.5}[ infected ]".to_string(),
        format!("EP{{>0}}[ tt U[0,{window}] infected ]"),
        format!("EP{{<0.99}}[ not_infected U[0,{window}] infected ]"),
    ]
    .iter()
    .map(|f| parse_formula(f).unwrap())
    .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A hostile rtol/atol pair — NaN, zero, negative — is rejected as a
    /// structured [`CoreError`] on every Table II setting. The recovery
    /// ladder must not retry it (an invalid argument stays invalid at any
    /// tolerance), and nothing may panic.
    #[test]
    fn prop_hostile_tolerances_are_structured_errors(
        which in 0usize..4,
        bad_rtol in 0usize..4,
        bad_atol in 0usize..4,
        poison_rtol in proptest::bool::ANY,
        infected in 0.05f64..0.6,
        window in 0.5f64..4.0,
    ) {
        let model = setting(which);
        let mut tol = Tolerances::default();
        let (rtol, atol) = if poison_rtol {
            (HOSTILE_TOLERANCES[bad_rtol], tol.ode.atol)
        } else {
            (tol.ode.rtol, HOSTILE_TOLERANCES[bad_atol])
        };
        // A small step budget keeps even a pathological-but-running solve
        // from grinding; the error must come from validation anyway.
        tol.ode = tol.ode.with_tolerances(rtol, atol).with_max_steps(2_000);
        let session = CheckSession::from_checker(Checker::with_tolerances(&model, tol));
        let m0 = m0(infected);
        for psi in formulas(window) {
            match session.check(&psi, &m0) {
                Err(CoreError::InvalidArgument(_) | CoreError::Ode(_) | CoreError::Csl(_)) => {}
                other => {
                    return Err(TestCaseError(format!(
                        "hostile tolerances must be a structured error, got {other:?}"
                    )));
                }
            }
        }
    }

    /// A hostile evaluation horizon — NaN, negative, infinite — is rejected
    /// as a structured [`CoreError`] on every Table II setting, through
    /// both the session and the plain checker.
    #[test]
    fn prop_hostile_horizons_are_structured_errors(
        which in 0usize..4,
        bad in 0usize..4,
        infected in 0.05f64..0.6,
    ) {
        let model = setting(which);
        let theta = HOSTILE_HORIZONS[bad];
        let psi = parse_formula("E{<0.5}[ infected ]").unwrap();
        let m0 = m0(infected);
        let session = CheckSession::new(&model);
        match session.csat(&psi, &m0, theta) {
            Err(CoreError::InvalidArgument(_) | CoreError::Csl(_)) => {}
            other => {
                return Err(TestCaseError(format!(
                    "hostile horizon {theta} must be a structured error, got {other:?}"
                )));
            }
        }
        match Checker::with_tolerances(&model, Tolerances::default())
            .csat(&psi, &m0, theta)
        {
            Err(CoreError::InvalidArgument(_) | CoreError::Csl(_)) => {}
            other => {
                return Err(TestCaseError(format!(
                    "hostile horizon {theta} must be a structured error, got {other:?}"
                )));
            }
        }
    }

    /// With no fault plan installed the recovery-ladder engine is the
    /// healthy engine: verdicts through the session match the plain
    /// uncached checker (up to the session-only refinement record), and
    /// the ladder's counters stay at zero — rung 1 runs the exact same
    /// Dormand-Prince solve as before the ladder existed.
    #[test]
    fn prop_no_fault_ladder_is_bitwise_invisible(
        which in 0usize..4,
        infected in 0.05f64..0.6,
        p in 0.05f64..0.95,
        window in 0.5f64..4.0,
    ) {
        let model = setting(which);
        let m0 = m0(infected);
        let psis: Vec<MfFormula> = [
            format!("E{{<{p}}}[ infected ]"),
            format!("EP{{<{p}}}[ not_infected U[0,{window}] infected ]"),
            format!("EP{{>0}}[ tt U[0,{window}] infected ]"),
        ]
        .iter()
        .map(|f| parse_formula(f).unwrap())
        .collect();
        let plain = Checker::new(&model);
        let session = CheckSession::new(&model);
        let cached = session.check_all(&psis, &m0).unwrap();
        for (psi, cached) in psis.iter().zip(&cached) {
            let reference = plain.check(psi, &m0).unwrap();
            prop_assert_eq!(cached.holds(), reference.holds(), "{}", psi);
            prop_assert_eq!(cached.is_marginal(), reference.is_marginal(), "{}", psi);
        }
        let stats = session.stats();
        prop_assert_eq!(stats.recoveries, 0);
        prop_assert_eq!(stats.stiff_fallbacks, 0);
    }
}
