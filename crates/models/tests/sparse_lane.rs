//! Sparse-lane equivalence properties: the CSC/iterative kernels must
//! reproduce the dense reference answers wherever both lanes can run.
//!
//! Three claims, swept by proptest:
//!
//! * **Table II, steady state** — on each of the four Table II settings
//!   frozen at a random interior occupancy, the matrix-free GMRES solve of
//!   the bordered stationary system agrees with the dense LU steady state
//!   to 1e-12;
//! * **Table II, transient** — the CSC uniformization
//!   ([`SparseCtmc::transient_distribution`]) agrees with the dense
//!   uniformization to 1e-12 on the same frozen chains;
//! * **queueing at small `K`** — at `K` just past the density threshold
//!   (where [`steady_state_sparse`] takes the iterative branch for real),
//!   sparse steady state and transient agree with explicit dense
//!   references to 1e-12, and the lazily restricted satisfaction sets of
//!   the checked trajectory equal eager full-space labeling exactly.

use mfcsl_core::{meanfield, LocalModel, Occupancy};
use mfcsl_ctmc::sparse::SparseCtmc;
use mfcsl_ctmc::steady::{steady_state, steady_state_sparse};
use mfcsl_ctmc::transient::transient_distribution;
use mfcsl_ctmc::Ctmc;
use mfcsl_math::gmres::gmres;
use mfcsl_math::lu::LuDecomposition;
use mfcsl_math::Matrix;
use mfcsl_models::{queueing, virus};
use mfcsl_ode::OdeOptions;
use proptest::prelude::*;

/// Builds the sparse twin of `model` frozen at occupancy `m`, through the
/// same sparsity-pattern + `write_rates_at` plumbing the checking lane
/// uses.
fn sparse_chain_of(model: &LocalModel, m: &Occupancy) -> SparseCtmc {
    let (from, to) = model.sparsity();
    let mut rates = vec![0.0; from.len()];
    model.write_rates_at(m, &mut rates);
    let triplets: Vec<(usize, usize, f64)> = from
        .iter()
        .zip(to)
        .zip(&rates)
        .map(|((&f, &t), &r)| (f, t, r))
        .collect();
    SparseCtmc::from_triplets(model.n_states(), &triplets).expect("valid frozen chain")
}

/// Builds the dense twin of `model` frozen at occupancy `m`.
fn dense_chain_of(model: &LocalModel, m: &Occupancy) -> Ctmc {
    let q = model.generator_at(m).expect("valid generator");
    Ctmc::from_parts(model.state_names().to_vec(), q, model.labeling().clone())
        .expect("valid frozen chain")
}

/// Solves the bordered stationary system of `chain` with matrix-free
/// GMRES — the same operator the large-`K` lane applies, callable at any
/// size.
fn stationary_via_gmres(chain: &SparseCtmc) -> Vec<f64> {
    let n = chain.n_states();
    let rates = chain.rates_csc();
    let exit = chain.exit_rates();
    let apply = |x: &[f64], y: &mut [f64]| {
        for j in 0..n {
            y[j] = rates.gather(x, j) - exit[j] * x[j];
        }
        y[n - 1] = x.iter().sum();
    };
    let mut b = vec![0.0; n];
    b[n - 1] = 1.0;
    let x0 = vec![1.0 / n as f64; n];
    let (mut pi, stats) =
        gmres(apply, &b, &x0, n.min(60), 2000, 1e-15).expect("gmres runs");
    assert!(
        stats.converged || stats.residual <= 1e-12,
        "gmres stalled at residual {}",
        stats.residual
    );
    for v in &mut pi {
        *v = v.max(0.0);
    }
    let total: f64 = pi.iter().sum();
    for v in &mut pi {
        *v /= total;
    }
    pi
}

/// Dense bordered-LU stationary reference, independent of the `steady`
/// module's routing.
fn stationary_via_dense_lu(q: &Matrix) -> Vec<f64> {
    let n = q.rows();
    let mut system = Matrix::zeros(n, n);
    for j in 0..n - 1 {
        for i in 0..n {
            system[(j, i)] = q[(i, j)];
        }
    }
    for i in 0..n {
        system[(n - 1, i)] = 1.0;
    }
    let mut rhs = vec![0.0; n];
    rhs[n - 1] = 1.0;
    LuDecomposition::new(&system)
        .expect("factors")
        .solve(&rhs)
        .expect("solves")
}

/// A random interior point of the 3-state simplex (same bounds as the
/// hot-path equivalence suite: away from the smart-virus rate cap).
fn occupancy3_strategy() -> impl Strategy<Value = Occupancy> {
    (0.15f64..1.0, 0.15f64..1.0, 0.15f64..1.0).prop_map(|(a, b, c)| {
        let s = a + b + c;
        Occupancy::new(vec![a / s, b / s, c / s]).expect("normalized simplex point")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Matrix-free GMRES on the bordered system vs dense LU steady state,
    /// across all four Table II settings.
    #[test]
    fn table2_sparse_steady_matches_dense(m in occupancy3_strategy()) {
        for (name, params, law) in virus::table2_settings() {
            let model = virus::model(params, law).expect("valid params");
            let sparse = sparse_chain_of(&model, &m);
            let dense = dense_chain_of(&model, &m);
            let via_gmres = stationary_via_gmres(&sparse);
            let via_lu = steady_state(&dense).expect("dense steady state");
            for (i, (a, b)) in via_gmres.iter().zip(&via_lu).enumerate() {
                prop_assert!(
                    (a - b).abs() <= 1e-12,
                    "{name} state {i}: gmres {a} vs lu {b}"
                );
            }
        }
    }

    /// CSC uniformization vs dense uniformization on the frozen Table II
    /// chains.
    #[test]
    fn table2_sparse_transient_matches_dense(
        m in occupancy3_strategy(),
        t in 0.3f64..2.0,
    ) {
        for (name, params, law) in virus::table2_settings() {
            let model = virus::model(params, law).expect("valid params");
            let sparse = sparse_chain_of(&model, &m);
            let dense = dense_chain_of(&model, &m);
            let pi_sparse = sparse
                .transient_distribution(m.as_slice(), t, 1e-14)
                .expect("sparse transient");
            let pi_dense = transient_distribution(&dense, m.as_slice(), t, 1e-14)
                .expect("dense transient");
            for (i, (a, b)) in pi_sparse.iter().zip(&pi_dense).enumerate() {
                prop_assert!(
                    (a - b).abs() <= 1e-12,
                    "{name} t={t} state {i}: sparse {a} vs dense {b}"
                );
            }
        }
    }
}

/// A truncated-geometric occupancy over `k` states with ratio `rho`.
fn geometric_occupancy(k: usize, rho: f64) -> Occupancy {
    let mut m: Vec<f64> = (0..k).map(|i| rho.powi(i as i32)).collect();
    let total: f64 = m.iter().sum();
    for v in &mut m {
        *v /= total;
    }
    let correction: f64 = 1.0 - m.iter().sum::<f64>();
    m[0] += correction;
    Occupancy::new(m).expect("normalized occupancy")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Queueing chains just past the density threshold: the public
    /// `steady_state_sparse` (which takes the GMRES/power branch at these
    /// sizes) and the CSC transient must match explicit dense references.
    #[test]
    fn queueing_sparse_matches_dense_at_small_k(
        cap in 63usize..120,
        rho in 0.3f64..0.9,
        t in 0.2f64..1.0,
    ) {
        let params = queueing::Params { cap, ..queueing::default_params() };
        let model = queueing::model(params).expect("valid params");
        let m = geometric_occupancy(cap + 1, rho);
        let sparse = sparse_chain_of(&model, &m);

        let pi_sparse = steady_state_sparse(&sparse).expect("sparse steady state");
        let q = model.generator_at(&m).expect("valid generator");
        let pi_dense = stationary_via_dense_lu(&q);
        for (i, (a, b)) in pi_sparse.iter().zip(&pi_dense).enumerate() {
            prop_assert!(
                (a - b).abs() <= 1e-12,
                "steady state {i}: sparse {a} vs dense {b}"
            );
        }

        let dense = dense_chain_of(&model, &m);
        let pt_sparse = sparse
            .transient_distribution(m.as_slice(), t, 1e-14)
            .expect("sparse transient");
        let pt_dense = transient_distribution(&dense, m.as_slice(), t, 1e-14)
            .expect("dense transient");
        for (i, (a, b)) in pt_sparse.iter().zip(&pt_dense).enumerate() {
            prop_assert!(
                (a - b).abs() <= 1e-12,
                "transient t={t} state {i}: sparse {a} vs dense {b}"
            );
        }
    }
}

/// The on-the-fly satisfaction sets of a checked trajectory (restricted
/// to the reachable closure) must equal eager full-space labeling on the
/// queueing model — its birth–death topology makes every state reachable
/// from the `q0` start, so the lazy and eager vectors coincide exactly.
#[test]
fn queueing_lazy_sat_sets_equal_eager_labeling() {
    let params = queueing::Params {
        cap: 80,
        ..queueing::default_params()
    };
    let model = queueing::model(params).expect("valid params");
    let k = params.cap + 1;
    let m0 = Occupancy::unit(k, 0).expect("valid occupancy");
    let sol = meanfield::solve(&model, &m0, 0.5, &OdeOptions::default()).expect("solves");
    let tv = sol.local_tv_model().expect("valid model");
    assert_eq!(
        tv.reachable().map(<[usize]>::len),
        Some(k),
        "every queue length is reachable from q0"
    );
    for ap in model.labeling().alphabet() {
        let lazy = tv.sat_ap(&ap).expect("known proposition");
        let eager: Vec<bool> = (0..k).map(|s| model.labeling().has(s, &ap)).collect();
        assert_eq!(lazy, eager, "satisfaction set for `{ap}` diverges");
    }
}
