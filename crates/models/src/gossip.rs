//! A push–pull gossip / rumor-spreading protocol (in the spirit of the
//! paper's reference \[4\], Bakhshi et al.).
//!
//! Nodes are `ignorant`, `spreading`, or `stifled`:
//!
//! * an ignorant node learns the rumor by *push* from spreaders (rate
//!   `push·m_spreading`) or by *pull* when it contacts a spreader (rate
//!   `pull·m_spreading`) — combined into one effective infection rate;
//! * a spreader that contacts another informed node (spreader or stifler)
//!   loses interest: rate `stifle·(m_spreading + m_stifled)`;
//! * a stifler forgets and becomes ignorant again at rate `forget`
//!   (set it to 0 for the classic absorbing variant).

use mfcsl_core::{CoreError, LocalModel, Occupancy};
use serde::{Deserialize, Serialize};

/// State index of the ignorant state.
pub const IGNORANT: usize = 0;
/// State index of the spreading state.
pub const SPREADING: usize = 1;
/// State index of the stifled state.
pub const STIFLED: usize = 2;

/// Protocol rate constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Push contact rate of a spreader toward a random node.
    pub push: f64,
    /// Pull contact rate of an ignorant node toward a random node.
    pub pull: f64,
    /// Rate at which spreader–informed contacts stifle the spreader.
    pub stifle: f64,
    /// Rate at which stiflers forget the rumor.
    pub forget: f64,
}

/// A standard parameterization: symmetric push–pull with moderate
/// stifling and no forgetting.
#[must_use]
pub fn default_params() -> Params {
    Params {
        push: 1.0,
        pull: 1.0,
        stifle: 0.5,
        forget: 0.0,
    }
}

/// Builds the gossip local model. Labels: `ignorant`, `spreading`,
/// `stifled`, plus `informed` on both informed states.
///
/// # Errors
///
/// Returns [`CoreError::InvalidModel`] for negative or non-finite rates.
///
/// # Example
///
/// ```
/// use mfcsl_models::gossip;
///
/// let model = gossip::model(gossip::default_params())?;
/// assert_eq!(model.n_states(), 3);
/// # Ok::<(), mfcsl_core::CoreError>(())
/// ```
pub fn model(params: Params) -> Result<LocalModel, CoreError> {
    for (name, v) in [
        ("push", params.push),
        ("pull", params.pull),
        ("stifle", params.stifle),
        ("forget", params.forget),
    ] {
        if !v.is_finite() || v < 0.0 {
            return Err(CoreError::InvalidModel(format!(
                "rate {name} must be finite and non-negative, got {v}"
            )));
        }
    }
    let learn = params.push + params.pull;
    let stifle = params.stifle;
    let mut builder = LocalModel::builder()
        .state("ignorant", ["ignorant"])
        .state("spreading", ["informed", "spreading"])
        .state("stifled", ["informed", "stifled"])
        .transition("ignorant", "spreading", move |m: &Occupancy| {
            learn * m[SPREADING]
        })?
        .transition("spreading", "stifled", move |m: &Occupancy| {
            stifle * (m[SPREADING] + m[STIFLED])
        })?;
    if params.forget > 0.0 {
        builder = builder.constant_transition("stifled", "ignorant", params.forget)?;
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfcsl_core::meanfield;
    use mfcsl_ode::OdeOptions;

    #[test]
    fn rumor_spreads_then_stifles() {
        let model = model(default_params()).unwrap();
        let m0 = Occupancy::new(vec![0.95, 0.05, 0.0]).unwrap();
        let sol = meanfield::solve(&model, &m0, 50.0, &OdeOptions::default()).unwrap();
        // The rumor reaches a substantial fraction...
        let informed_peak = (0..=500)
            .map(|i| {
                let m = sol.occupancy_at(i as f64 * 0.1);
                m[SPREADING] + m[STIFLED]
            })
            .fold(0.0, f64::max);
        assert!(
            informed_peak > 0.5,
            "peak informed fraction {informed_peak}"
        );
        // ...and spreading dies out eventually (stiflers absorb).
        let end = sol.occupancy_at(50.0);
        assert!(
            end[SPREADING] < 1e-3,
            "spreaders at end: {}",
            end[SPREADING]
        );
    }

    #[test]
    fn classic_result_some_ignorants_remain() {
        // A hallmark of rumor models with stifling: the rumor never
        // reaches everyone.
        let model = model(default_params()).unwrap();
        let m0 = Occupancy::new(vec![0.95, 0.05, 0.0]).unwrap();
        let sol = meanfield::solve(&model, &m0, 100.0, &OdeOptions::default()).unwrap();
        let end = sol.occupancy_at(100.0);
        assert!(end[IGNORANT] > 1e-3, "ignorants at end: {}", end[IGNORANT]);
    }

    #[test]
    fn forgetting_recycles_nodes() {
        let mut p = default_params();
        p.forget = 0.2;
        let model = model(p).unwrap();
        let m0 = Occupancy::new(vec![0.95, 0.05, 0.0]).unwrap();
        let sol = meanfield::solve(&model, &m0, 100.0, &OdeOptions::default()).unwrap();
        let end = sol.occupancy_at(100.0);
        // With forgetting, stiflers cannot absorb all mass.
        assert!(end[STIFLED] < 0.999);
    }

    #[test]
    fn validation() {
        let mut p = default_params();
        p.push = -1.0;
        assert!(model(p).is_err());
        p = default_params();
        p.forget = f64::NAN;
        assert!(model(p).is_err());
    }
}
