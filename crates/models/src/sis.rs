//! The SIS (susceptible–infected–susceptible) epidemic.
//!
//! Two states with infection rate `β·m_I` and recovery rate `γ`. Its
//! mean-field ODE is the logistic equation — analytically solvable — which
//! makes SIS the canonical oracle model of the test suite.

use mfcsl_core::{CoreError, LocalModel, Occupancy};

/// State index of the susceptible state.
pub const SUSCEPTIBLE: usize = 0;
/// State index of the infected state.
pub const INFECTED: usize = 1;

/// Builds the SIS local model with infection rate `β·m_I` and recovery
/// rate `γ`. Labels: `susceptible`/`healthy` and `infected`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidModel`] for negative or non-finite rates.
///
/// # Example
///
/// ```
/// use mfcsl_models::sis;
///
/// let model = sis::model(2.0, 1.0)?;
/// assert_eq!(model.n_states(), 2);
/// # Ok::<(), mfcsl_core::CoreError>(())
/// ```
pub fn model(beta: f64, gamma: f64) -> Result<LocalModel, CoreError> {
    if !beta.is_finite() || beta < 0.0 || !gamma.is_finite() || gamma < 0.0 {
        return Err(CoreError::InvalidModel(format!(
            "rates must be finite and non-negative, got beta = {beta}, gamma = {gamma}"
        )));
    }
    LocalModel::builder()
        .state("susceptible", ["susceptible", "healthy"])
        .state("infected", ["infected"])
        .transition("susceptible", "infected", move |m: &Occupancy| {
            beta * m[INFECTED]
        })?
        .constant_transition("infected", "susceptible", gamma)?
        .build()
}

/// Analytic mean-field infected fraction at time `t` for the supercritical
/// case `β > γ` (logistic solution of `di/dt = βi(1-i) - γi`).
///
/// # Panics
///
/// Panics if `β ≤ γ` or `i0 ∉ (0, 1]`.
#[must_use]
pub fn analytic_infected_fraction(beta: f64, gamma: f64, i0: f64, t: f64) -> f64 {
    assert!(beta > gamma, "closed form given for the supercritical case");
    assert!(i0 > 0.0 && i0 <= 1.0, "initial fraction must be in (0, 1]");
    let i_star = 1.0 - gamma / beta;
    let r = beta - gamma;
    i_star / (1.0 + (i_star / i0 - 1.0) * (-r * t).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfcsl_core::meanfield;
    use mfcsl_ode::OdeOptions;

    #[test]
    fn numeric_matches_analytic() {
        let model = model(2.0, 1.0).unwrap();
        let m0 = Occupancy::new(vec![0.9, 0.1]).unwrap();
        let sol = meanfield::solve(
            &model,
            &m0,
            8.0,
            &OdeOptions::default().with_tolerances(1e-11, 1e-13),
        )
        .unwrap();
        for &t in &[0.3, 1.0, 4.0, 8.0] {
            let exact = analytic_infected_fraction(2.0, 1.0, 0.1, t);
            let got = sol.occupancy_at(t)[INFECTED];
            assert!((got - exact).abs() < 1e-8, "t = {t}");
        }
    }

    #[test]
    fn parameter_validation() {
        assert!(model(-1.0, 1.0).is_err());
        assert!(model(1.0, f64::INFINITY).is_err());
        assert!(model(0.0, 0.0).is_ok());
    }

    #[test]
    #[should_panic(expected = "supercritical")]
    fn analytic_guard() {
        let _ = analytic_infected_fraction(1.0, 2.0, 0.1, 1.0);
    }
}
