//! A zoo of mean-field models for the `mfcsl` workspace.
//!
//! Every model is a [`mfcsl_core::LocalModel`] constructor plus canonical
//! parameter sets:
//!
//! * [`virus`] — the reproduced paper's running example (Fig. 2, Table II):
//!   computer-virus spread with not-infected / inactive / active states and
//!   two infection laws;
//! * [`sis`] / [`sir`] — the textbook epidemic models, used throughout the
//!   test suite because their mean-field ODEs are analytically solvable;
//! * [`gossip`] — a push–pull rumor-spreading protocol in the spirit of the
//!   paper's reference \[4\];
//! * [`botnet`] — a peer-to-peer botnet lifecycle model following the shape
//!   of the paper's references \[6\] and \[15\];
//! * [`seiqr`] — a five-state malware model with latency and quarantine,
//!   exercising the checkers on larger local state spaces;
//! * [`supermarket`] — the power-of-`d`-choices load-balancing model, the
//!   classic mean-field system with provably distinct fixed-point structure
//!   (exercises larger local state spaces);
//! * [`queueing`] — a bounded local queue with retry pressure whose
//!   capacity knob scales `K` from tens to thousands over a fixed
//!   birth–death topology: the large-`K` workload of the sparse checking
//!   lane.

#![warn(missing_docs)]

pub mod botnet;
pub mod gossip;
pub mod queueing;
pub mod seiqr;
pub mod sir;
pub mod sis;
pub mod supermarket;
pub mod virus;
