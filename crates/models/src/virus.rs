//! The paper's running example: computer-virus spread (Fig. 2, Example 1).
//!
//! Three local states: `s1` not infected, `s2` infected & inactive, `s3`
//! infected & active, with atomic propositions `not_infected`, `infected`,
//! `inactive`, `active`. Rates `k2..k5` are constants; the infection rate
//! `k1*` depends on the overall state through one of two laws (Sec. II-A):
//!
//! * [`InfectionLaw::SmartVirus`] — `k1* = k1·m3/m1`: all attacks of the
//!   active spreaders are aimed at not-yet-infected machines (the paper's
//!   default; makes the *overall* ODE linear — Eq. 21);
//! * [`InfectionLaw::Epidemic`] — `k1* = k1·m3`: classical proportional
//!   mixing.

use mfcsl_core::{CoreError, LocalModel, Occupancy};
use serde::{Deserialize, Serialize};

/// State index of `s1` (not infected).
pub const NOT_INFECTED: usize = 0;
/// State index of `s2` (infected, inactive).
pub const INACTIVE: usize = 1;
/// State index of `s3` (infected, active).
pub const ACTIVE: usize = 2;

/// The five rate constants of Fig. 2 / Table II.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Attack rate `k1` of one active infected computer.
    pub k1: f64,
    /// Recovery rate `k2` of an inactive infected computer.
    pub k2: f64,
    /// Activation rate `k3` (inactive → active).
    pub k3: f64,
    /// Deactivation rate `k4` (active → inactive).
    pub k4: f64,
    /// Recovery rate `k5` of an active infected computer.
    pub k5: f64,
}

/// Table II, Setting 1.
#[must_use]
pub fn setting_1() -> Params {
    Params {
        k1: 0.9,
        k2: 0.1,
        k3: 0.01,
        k4: 0.3,
        k5: 0.3,
    }
}

/// Table II, Setting 2.
#[must_use]
pub fn setting_2() -> Params {
    Params {
        k1: 5.0,
        k2: 0.02,
        k3: 0.01,
        k4: 0.5,
        k5: 0.5,
    }
}

/// Setting 1 with `k2` and `k3` exchanged.
///
/// With Table II as printed the `(m2, m3)` subsystem of Eq. 21 has a
/// strictly negative spectrum, so the infection *decays* and the expected
/// probability of Figure 3 cannot cross its 0.3 bound from below; swapping
/// the two small constants produces the growing epidemic the figure shows.
/// The benches run both variants and EXPERIMENTS.md reports which one
/// reproduces each published number.
#[must_use]
pub fn setting_1_swapped() -> Params {
    Params {
        k1: 0.9,
        k2: 0.01,
        k3: 0.1,
        k4: 0.3,
        k5: 0.3,
    }
}

/// How the infection rate `k1*` depends on the overall state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InfectionLaw {
    /// `k1* = k1 · m3 / m1` — attacks target not-infected machines only.
    SmartVirus,
    /// `k1* = k1 · m3` — proportional (epidemiological) mixing.
    Epidemic,
}

/// Builds the virus local model.
///
/// # Errors
///
/// Returns [`CoreError::InvalidModel`] for negative or non-finite rate
/// constants.
///
/// # Example
///
/// ```
/// use mfcsl_models::virus;
/// use mfcsl_core::Occupancy;
///
/// # fn main() -> Result<(), mfcsl_core::CoreError> {
/// let model = virus::model(virus::setting_1(), virus::InfectionLaw::SmartVirus)?;
/// let m = Occupancy::new(vec![0.8, 0.15, 0.05])?;
/// let q = model.generator_at(&m)?;
/// assert!((q[(0, 1)] - 0.9 * 0.05 / 0.8).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn model(params: Params, law: InfectionLaw) -> Result<LocalModel, CoreError> {
    for (name, v) in [
        ("k1", params.k1),
        ("k2", params.k2),
        ("k3", params.k3),
        ("k4", params.k4),
        ("k5", params.k5),
    ] {
        if !v.is_finite() || v < 0.0 {
            return Err(CoreError::InvalidModel(format!(
                "rate {name} must be finite and non-negative, got {v}"
            )));
        }
    }
    let k1 = params.k1;
    let infection = move |m: &Occupancy| match law {
        InfectionLaw::SmartVirus => {
            // Guard the m1 → 0 corner: as m1 → 0 the per-machine rate
            // diverges (every remaining machine is attacked by everyone).
            // The floor keeps the generator finite and the ratio cap keeps
            // the local Kolmogorov equations non-stiff once the model has
            // left its validity domain (the overall ODE is exactly linear
            // for this law either way).
            k1 * (m[ACTIVE] / m[NOT_INFECTED].max(1e-6)).min(1e3)
        }
        InfectionLaw::Epidemic => k1 * m[ACTIVE],
    };
    LocalModel::builder()
        .state("s1", ["not_infected"])
        .state("s2", ["infected", "inactive"])
        .state("s3", ["infected", "active"])
        .transition("s1", "s2", infection)?
        .constant_transition("s2", "s1", params.k2)?
        .constant_transition("s2", "s3", params.k3)?
        .constant_transition("s3", "s2", params.k4)?
        .constant_transition("s3", "s1", params.k5)?
        .build()
}

/// The occupancy vector of the paper's first worked example
/// (`m̄ = (0.8, 0.15, 0.05)`).
///
/// # Errors
///
/// Never fails in practice (the constants form a distribution).
pub fn example_occupancy() -> Result<Occupancy, CoreError> {
    Occupancy::new(vec![0.8, 0.15, 0.05])
}

/// The four parameter/law combinations the Table II experiments exercise:
/// both printed Setting-1 variants and Setting 2 under the smart-virus
/// attack law, plus Setting 2 under proportional (epidemic) mixing.
///
/// The equivalence property tests sweep every hot-path kernel across this
/// whole family, so an optimization that is only correct for one rate
/// regime (slow Setting 1, stiff Setting 2) cannot slip through.
#[must_use]
pub fn table2_settings() -> [(&'static str, Params, InfectionLaw); 4] {
    [
        ("setting_1", setting_1(), InfectionLaw::SmartVirus),
        ("setting_1_swapped", setting_1_swapped(), InfectionLaw::SmartVirus),
        ("setting_2", setting_2(), InfectionLaw::SmartVirus),
        ("setting_2_epidemic", setting_2(), InfectionLaw::Epidemic),
    ]
}

/// The occupancy vector of the paper's second worked example
/// (`m̄ = (0.85, 0.1, 0.05)`).
///
/// # Errors
///
/// Never fails in practice (the constants form a distribution).
pub fn example_occupancy_2() -> Result<Occupancy, CoreError> {
    Occupancy::new(vec![0.85, 0.1, 0.05])
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfcsl_core::meanfield;
    use mfcsl_ode::OdeOptions;

    #[test]
    fn smart_virus_drift_matches_eq21() {
        let p = setting_1();
        let m = example_occupancy().unwrap();
        let model = model(p, InfectionLaw::SmartVirus).unwrap();
        let d = model.drift(&m).unwrap();
        // Eq. 21 of the paper.
        let expected = [
            -p.k1 * m[2] + p.k2 * m[1] + p.k5 * m[2],
            (p.k1 + p.k4) * m[2] - (p.k2 + p.k3) * m[1],
            p.k3 * m[1] - (p.k4 + p.k5) * m[2],
        ];
        for (a, b) in d.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn epidemic_law_differs() {
        let p = setting_1();
        let m = example_occupancy().unwrap();
        let smart = model(p, InfectionLaw::SmartVirus).unwrap();
        let epi = model(p, InfectionLaw::Epidemic).unwrap();
        let qs = smart.generator_at(&m).unwrap();
        let qe = epi.generator_at(&m).unwrap();
        assert!((qs[(0, 1)] - p.k1 * m[2] / m[0]).abs() < 1e-14);
        assert!((qe[(0, 1)] - p.k1 * m[2]).abs() < 1e-14);
        assert!(qs[(0, 1)] > qe[(0, 1)]);
    }

    #[test]
    fn setting_1_infection_decays_swapped_grows() {
        let m0 = example_occupancy().unwrap();
        let horizon = 20.0;
        let infected_end = |p: Params| {
            let model = model(p, InfectionLaw::SmartVirus).unwrap();
            let sol = meanfield::solve(&model, &m0, horizon, &OdeOptions::default()).unwrap();
            let m = sol.occupancy_at(horizon);
            m[1] + m[2]
        };
        let printed = infected_end(setting_1());
        let swapped = infected_end(setting_1_swapped());
        assert!(
            printed < 0.2,
            "printed Setting 1 should decay, got infected fraction {printed}"
        );
        assert!(
            swapped > 0.4,
            "swapped Setting 1 should grow, got infected fraction {swapped}"
        );
    }

    #[test]
    fn corner_occupancy_is_safe() {
        // m1 = 0: the smart-virus guard must keep rates finite.
        let p = setting_2();
        let model = model(p, InfectionLaw::SmartVirus).unwrap();
        let corner = Occupancy::new(vec![0.0, 0.5, 0.5]).unwrap();
        let q = model.generator_at(&corner).unwrap();
        assert!(q.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn invalid_params_rejected() {
        let mut p = setting_1();
        p.k2 = -1.0;
        assert!(model(p, InfectionLaw::SmartVirus).is_err());
        p = setting_1();
        p.k1 = f64::NAN;
        assert!(model(p, InfectionLaw::Epidemic).is_err());
    }

    #[test]
    fn labels_match_the_paper() {
        let model = model(setting_1(), InfectionLaw::SmartVirus).unwrap();
        let l = model.labeling();
        assert!(l.has(NOT_INFECTED, "not_infected"));
        assert!(l.has(INACTIVE, "infected") && l.has(INACTIVE, "inactive"));
        assert!(l.has(ACTIVE, "infected") && l.has(ACTIVE, "active"));
        assert_eq!(l.states_with("infected"), vec![INACTIVE, ACTIVE]);
    }
}
