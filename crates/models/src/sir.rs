//! The SIR (susceptible–infected–recovered) epidemic.
//!
//! Three states with one-way immunity: infection at rate `β·m_I`, recovery
//! at rate `γ` into an absorbing recovered state. The mean-field flow has a
//! continuum of disease-free fixed points `(s, 0, r)` — a useful stress
//! test for the fixed-point search and for steady-state operator guards.

use mfcsl_core::{CoreError, LocalModel, Occupancy};

/// State index of the susceptible state.
pub const SUSCEPTIBLE: usize = 0;
/// State index of the infected state.
pub const INFECTED: usize = 1;
/// State index of the recovered state.
pub const RECOVERED: usize = 2;

/// Builds the SIR local model. Labels: `susceptible`, `infected`,
/// `recovered` (plus `healthy` on both non-infected states).
///
/// # Errors
///
/// Returns [`CoreError::InvalidModel`] for negative or non-finite rates.
pub fn model(beta: f64, gamma: f64) -> Result<LocalModel, CoreError> {
    if !beta.is_finite() || beta < 0.0 || !gamma.is_finite() || gamma < 0.0 {
        return Err(CoreError::InvalidModel(format!(
            "rates must be finite and non-negative, got beta = {beta}, gamma = {gamma}"
        )));
    }
    LocalModel::builder()
        .state("susceptible", ["susceptible", "healthy"])
        .state("infected", ["infected"])
        .state("recovered", ["recovered", "healthy"])
        .transition("susceptible", "infected", move |m: &Occupancy| {
            beta * m[INFECTED]
        })?
        .constant_transition("infected", "recovered", gamma)?
        .build()
}

/// The final epidemic size: solves the classic transcendental relation
/// `r_∞ = 1 - s₀·exp(-R₀ (r_∞ - r₀))` by bisection, with `R₀ = β/γ`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidArgument`] for `γ = 0` or an occupancy of
/// the wrong dimension.
pub fn final_size(beta: f64, gamma: f64, m0: &Occupancy) -> Result<f64, CoreError> {
    if m0.len() != 3 {
        return Err(CoreError::InvalidArgument(format!(
            "SIR occupancy has 3 entries, got {}",
            m0.len()
        )));
    }
    if gamma <= 0.0 {
        return Err(CoreError::InvalidArgument(
            "final size needs a positive recovery rate".into(),
        ));
    }
    let r0_ratio = beta / gamma;
    let s0 = m0[SUSCEPTIBLE];
    let r0 = m0[RECOVERED];
    let f = |r_inf: f64| r_inf - (1.0 - s0 * (-r0_ratio * (r_inf - r0)).exp());
    // r_inf lies in [r0 + i0, 1]; bracket and bisect.
    let lo = r0 + m0[INFECTED];
    mfcsl_math_bisect(f, lo.min(1.0 - 1e-12), 1.0)
}

fn mfcsl_math_bisect<F: Fn(f64) -> f64>(f: F, lo: f64, hi: f64) -> Result<f64, CoreError> {
    let (mut a, mut b) = (lo, hi);
    let (fa, fb) = (f(a), f(b));
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        // Degenerate epidemic (no infection): the final size is the start.
        return Ok(lo);
    }
    for _ in 0..200 {
        let mid = 0.5 * (a + b);
        let fm = f(mid);
        if fm == 0.0 || b - a < 1e-14 {
            return Ok(mid);
        }
        if fm.signum() == fa.signum() {
            a = mid;
        } else {
            b = mid;
        }
    }
    Ok(0.5 * (a + b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfcsl_core::meanfield;
    use mfcsl_ode::OdeOptions;

    #[test]
    fn epidemic_burns_out_to_final_size() {
        let (beta, gamma) = (3.0, 1.0);
        let model = model(beta, gamma).unwrap();
        let m0 = Occupancy::new(vec![0.99, 0.01, 0.0]).unwrap();
        let sol = meanfield::solve(
            &model,
            &m0,
            80.0,
            &OdeOptions::default().with_tolerances(1e-11, 1e-13),
        )
        .unwrap();
        let end = sol.occupancy_at(80.0);
        assert!(end[INFECTED] < 1e-6, "infection should burn out");
        let predicted = final_size(beta, gamma, &m0).unwrap();
        assert!(
            (end[RECOVERED] - predicted).abs() < 1e-4,
            "recovered {} vs final-size relation {predicted}",
            end[RECOVERED]
        );
    }

    #[test]
    fn subcritical_epidemic_stays_small() {
        let model = model(0.5, 1.0).unwrap();
        let m0 = Occupancy::new(vec![0.9, 0.1, 0.0]).unwrap();
        let sol = meanfield::solve(&model, &m0, 60.0, &OdeOptions::default()).unwrap();
        let end = sol.occupancy_at(60.0);
        assert!(end[RECOVERED] < 0.25, "total infections stay bounded");
    }

    #[test]
    fn validation() {
        assert!(model(-1.0, 1.0).is_err());
        assert!(final_size(1.0, 0.0, &Occupancy::new(vec![0.9, 0.1, 0.0]).unwrap()).is_err());
        assert!(final_size(1.0, 1.0, &Occupancy::new(vec![0.5, 0.5]).unwrap()).is_err());
    }
}
