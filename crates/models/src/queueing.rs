//! A bounded local queue with retry pressure — the large-`K` workhorse of
//! the sparse checking lane.
//!
//! `N` identical single-server queues each hold at most `cap` jobs; the
//! local state of a queue is its length, so `K = cap + 1` and `K` scales
//! from tens to thousands by turning one knob. Fresh jobs arrive at each
//! queue at rate `λ`; a job that lands on a *full* queue is not lost but
//! re-dispatched to a uniformly random queue, so the effective per-queue
//! arrival rate is inflated by the fraction of full queues:
//!
//! ```text
//! λ_eff(m) = λ · (1 + retry · m_full)
//! ```
//!
//! with `m_full` clamped to `[0, 1]`. This couples every queue to the
//! population through a single occupancy component — a genuinely
//! mean-field interaction (the generator depends on `m`), yet sparse: the
//! transition topology is the `2·cap`-edge birth–death chain regardless of
//! `K`, which is exactly the regime the sparse solvers (CSC
//! uniformization, GMRES steady state, vector-path until) are built for.
//! Service completes at constant rate `μ` from every nonempty queue.
//!
//! At the mean-field fixed point the chain is a constant-rate birth–death
//! process, so the stationary occupancy is geometric with the
//! self-consistent ratio `ρ_eff = λ_eff(m̃)/μ` — an analytic handle the
//! tests pin the solvers against.

use mfcsl_core::{CoreError, LocalModel, Occupancy};
use serde::{Deserialize, Serialize};

/// Model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Fresh-job arrival rate `λ` per queue.
    pub lambda: f64,
    /// Service rate `μ`.
    pub mu: f64,
    /// Retry pressure: blocked jobs multiply arrivals by
    /// `1 + retry · m_full`. Zero decouples the queues entirely.
    pub retry: f64,
    /// Maximum queue length (local state space is `0..=cap`, `K = cap + 1`).
    pub cap: usize,
}

/// The canonical parameter set mirrored by `modelfiles/queueing.mf`
/// (`λ = 0.8`, `μ = 1.0`, `retry = 0.5`, `cap = 8`).
#[must_use]
pub fn default_params() -> Params {
    Params {
        lambda: 0.8,
        mu: 1.0,
        retry: 0.5,
        cap: 8,
    }
}

/// Builds the bounded-queue local model. State `i` is named `q{i}` and
/// labeled `len_i`, plus `empty` (`i = 0`), `busy` (`i ≥ 1`), `full`
/// (`i = cap`), `light` (`4i ≤ cap`) and `congested` (`4i ≥ 3·cap`).
///
/// # Errors
///
/// Returns [`CoreError::InvalidModel`] for non-finite/negative rates or
/// `cap = 0`.
///
/// # Example
///
/// ```
/// use mfcsl_models::queueing;
///
/// let model = queueing::model(queueing::Params {
///     lambda: 0.8,
///     mu: 1.0,
///     retry: 0.5,
///     cap: 8,
/// })?;
/// assert_eq!(model.n_states(), 9);
/// // The topology stays a birth–death chain at any capacity.
/// let (from, to) = model.sparsity();
/// assert_eq!(from.len(), 16);
/// assert_eq!(to.len(), 16);
/// # Ok::<(), mfcsl_core::CoreError>(())
/// ```
pub fn model(params: Params) -> Result<LocalModel, CoreError> {
    if !params.lambda.is_finite() || params.lambda < 0.0 {
        return Err(CoreError::InvalidModel(format!(
            "lambda must be finite and non-negative, got {}",
            params.lambda
        )));
    }
    if !params.mu.is_finite() || params.mu < 0.0 {
        return Err(CoreError::InvalidModel(format!(
            "mu must be finite and non-negative, got {}",
            params.mu
        )));
    }
    if !params.retry.is_finite() || params.retry < 0.0 {
        return Err(CoreError::InvalidModel(format!(
            "retry must be finite and non-negative, got {}",
            params.retry
        )));
    }
    if params.cap == 0 {
        return Err(CoreError::InvalidModel(
            "cap must be at least 1 (otherwise the model has a single state)".into(),
        ));
    }
    let cap = params.cap;
    let k = cap + 1;
    let mut builder = LocalModel::builder();
    for i in 0..k {
        let mut labels = vec![format!("len_{i}")];
        if i == 0 {
            labels.push("empty".into());
        } else {
            labels.push("busy".into());
        }
        if i == cap {
            labels.push("full".into());
        }
        if 4 * i <= cap {
            labels.push("light".into());
        }
        if 4 * i >= 3 * cap {
            labels.push("congested".into());
        }
        builder = builder.state(format!("q{i}"), labels);
    }
    let lambda = params.lambda;
    let retry = params.retry;
    for i in 0..cap {
        // Arrival i -> i+1 at rate λ(1 + retry·m_full). The clamp spelled
        // as max-then-min matches the `.mf` twin's `min(max(·, 0), 1)`
        // bitwise.
        builder = builder.transition(
            format!("q{i}"),
            format!("q{}", i + 1),
            #[allow(clippy::manual_clamp)]
            move |m: &Occupancy| {
                let full = m[cap].max(0.0).min(1.0);
                lambda * (1.0 + retry * full)
            },
        )?;
    }
    for i in 1..k {
        builder = builder.constant_transition(format!("q{i}"), format!("q{}", i - 1), params.mu)?;
    }
    builder.build()
}

/// Solves the fixed-point self-consistency equation for the fraction of
/// full queues `m̃_full` by bisection: with `ρ(x) = λ(1 + retry·x)/μ`, the
/// truncated-geometric stationary law gives
/// `full(x) = ρ(x)^cap · (1 − ρ(x)) / (1 − ρ(x)^{cap+1})`, and `m̃_full`
/// is the unique fixed point of `full` on `[0, 1]`.
///
/// Returns `None` for degenerate parameters (`μ = 0`).
#[must_use]
pub fn analytic_full_fraction(params: &Params) -> Option<f64> {
    if params.mu <= 0.0 || params.cap == 0 {
        return None;
    }
    let full_given = |x: f64| -> f64 {
        let rho = params.lambda * (1.0 + params.retry * x) / params.mu;
        let c = params.cap as i32;
        if (rho - 1.0).abs() < 1e-12 {
            return 1.0 / (params.cap as f64 + 1.0);
        }
        rho.powi(c) * (1.0 - rho) / (1.0 - rho.powi(c + 1))
    };
    // g(x) = full(x) − x is positive at 0 (when λ > 0) and negative at 1
    // for stable parameters; bisect.
    let g = |x: f64| full_given(x) - x;
    let (mut lo, mut hi) = (0.0_f64, 1.0_f64);
    if g(lo) < 0.0 {
        return Some(0.0);
    }
    if g(hi) > 0.0 {
        return Some(1.0);
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if g(mid) > 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfcsl_core::meanfield;
    use mfcsl_ode::OdeOptions;

    #[test]
    fn validation() {
        let ok = default_params();
        assert!(model(ok).is_ok());
        assert!(model(Params { cap: 0, ..ok }).is_err());
        assert!(model(Params { lambda: -1.0, ..ok }).is_err());
        assert!(model(Params { mu: f64::NAN, ..ok }).is_err());
        assert!(model(Params {
            retry: f64::INFINITY,
            ..ok
        })
        .is_err());
    }

    #[test]
    fn labels() {
        let m = model(default_params()).unwrap();
        assert!(m.labeling().has(0, "empty"));
        assert!(m.labeling().has(0, "light"));
        assert!(m.labeling().has(2, "light"));
        assert!(!m.labeling().has(3, "light"));
        assert!(m.labeling().has(6, "congested"));
        assert!(!m.labeling().has(5, "congested"));
        assert!(m.labeling().has(8, "full"));
        assert_eq!(m.labeling().states_with("busy").len(), 8);
    }

    #[test]
    fn topology_is_birth_death_at_any_capacity() {
        for cap in [4usize, 64, 512] {
            let m = model(Params {
                cap,
                ..default_params()
            })
            .unwrap();
            assert_eq!(m.n_states(), cap + 1);
            let (from, to) = m.sparsity();
            assert_eq!(from.len(), 2 * cap, "cap={cap}");
            for (&f, &t) in from.iter().zip(to) {
                assert_eq!(f.abs_diff(t), 1, "non-adjacent edge {f}->{t}");
            }
        }
    }

    #[test]
    fn fixed_point_is_self_consistent_geometric() {
        let params = default_params();
        let model = model(params).unwrap();
        let k = params.cap + 1;
        let m0 = Occupancy::unit(k, 0).unwrap();
        let sol = meanfield::solve(&model, &m0, 600.0, &OdeOptions::default()).unwrap();
        let m = sol.occupancy_at(600.0);
        // Successive ratios settle to the self-consistent ρ_eff.
        let rho = params.lambda * (1.0 + params.retry * m[params.cap]) / params.mu;
        for i in 0..params.cap {
            let ratio = m[i + 1] / m[i];
            assert!(
                (ratio - rho).abs() < 1e-6,
                "geometric ratio at {i}: {ratio} vs {rho}"
            );
        }
        // And the full fraction matches the bisection solution.
        let full = analytic_full_fraction(&params).unwrap();
        assert!(
            (m[params.cap] - full).abs() < 1e-6,
            "full fraction {} vs analytic {full}",
            m[params.cap]
        );
    }

    #[test]
    fn retry_pressure_increases_congestion() {
        let base = analytic_full_fraction(&Params {
            retry: 0.0,
            ..default_params()
        })
        .unwrap();
        let pressured = analytic_full_fraction(&default_params()).unwrap();
        assert!(pressured > base, "{pressured} vs {base}");
    }
}
