//! The supermarket (power-of-`d`-choices) load-balancing model.
//!
//! `N` queues serve at rate `μ`; tasks arrive at total rate `Nλ` and each
//! task samples `d` queues uniformly, joining the shortest (ties broken
//! uniformly). The local state of a queue is its length, capped at `cap`
//! (arrivals to a full shortest queue are dropped).
//!
//! With tail occupancies `s_i = Σ_{j ≥ i} m_j`, a task lands in a queue of
//! current length `i` with probability `s_i^d − s_{i+1}^d`, so the
//! *per-queue* arrival rate in state `i` is `λ(s_i^d − s_{i+1}^d)/m_i` — a
//! ratio-form occupancy-dependent rate like the paper's smart-virus law.
//! This is the classic mean-field system with the doubly-exponential
//! queue-tail fixed point (Mitzenmacher / Vvedenskaya-Dobrushin-Karpelevich),
//! included to exercise larger local state spaces (`K = cap + 1`).

use mfcsl_core::{CoreError, LocalModel, Occupancy};
use serde::{Deserialize, Serialize};

/// Model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Per-queue arrival rate `λ` (stability requires `λ < μ`).
    pub lambda: f64,
    /// Service rate `μ`.
    pub mu: f64,
    /// Number of choices `d ≥ 1`.
    pub d: u32,
    /// Maximum queue length (local state space is `0..=cap`).
    pub cap: usize,
}

/// Builds the supermarket local model. State `i` is labeled `len_i`, plus
/// `empty` (`i = 0`), `busy` (`i ≥ 1`) and `full` (`i = cap`).
///
/// # Errors
///
/// Returns [`CoreError::InvalidModel`] for non-finite/negative rates,
/// `d = 0`, or `cap = 0`.
///
/// # Example
///
/// ```
/// use mfcsl_models::supermarket;
///
/// let model = supermarket::model(supermarket::Params {
///     lambda: 0.7,
///     mu: 1.0,
///     d: 2,
///     cap: 6,
/// })?;
/// assert_eq!(model.n_states(), 7);
/// # Ok::<(), mfcsl_core::CoreError>(())
/// ```
pub fn model(params: Params) -> Result<LocalModel, CoreError> {
    if !params.lambda.is_finite() || params.lambda < 0.0 {
        return Err(CoreError::InvalidModel(format!(
            "lambda must be finite and non-negative, got {}",
            params.lambda
        )));
    }
    if !params.mu.is_finite() || params.mu < 0.0 {
        return Err(CoreError::InvalidModel(format!(
            "mu must be finite and non-negative, got {}",
            params.mu
        )));
    }
    if params.d == 0 {
        return Err(CoreError::InvalidModel("d must be at least 1".into()));
    }
    if params.cap == 0 {
        return Err(CoreError::InvalidModel(
            "cap must be at least 1 (otherwise the model has a single state)".into(),
        ));
    }
    let k = params.cap + 1;
    let mut builder = LocalModel::builder();
    for i in 0..k {
        let mut labels = vec![format!("len_{i}")];
        if i == 0 {
            labels.push("empty".into());
        } else {
            labels.push("busy".into());
        }
        if i == params.cap {
            labels.push("full".into());
        }
        builder = builder.state(format!("q{i}"), labels);
    }
    let d = params.d as f64;
    let lambda = params.lambda;
    for i in 0..params.cap {
        // Arrival i -> i+1 at rate λ(s_i^d - s_{i+1}^d)/m_i.
        let idx = i;
        builder = builder.transition(
            format!("q{i}"),
            format!("q{}", i + 1),
            move |m: &Occupancy| {
                let tail = |from: usize| -> f64 {
                    (from..m.len()).map(|j| m[j]).sum::<f64>().clamp(0.0, 1.0)
                };
                let s_i = tail(idx);
                let s_next = tail(idx + 1);
                let mass = m[idx];
                if mass > 1e-9 {
                    lambda * (s_i.powf(d) - s_next.powf(d)) / mass
                } else {
                    // m_i → 0: the landing probability also vanishes (it is
                    // at most d·m_i·s_i^{d-1}); use the limit d·λ·s_i^{d-1}.
                    lambda * d * s_i.powf(d - 1.0)
                }
            },
        )?;
    }
    for i in 1..k {
        builder = builder.constant_transition(format!("q{i}"), format!("q{}", i - 1), params.mu)?;
    }
    builder.build()
}

/// The infinite-capacity fixed-point tail occupancy
/// `s_i = ρ^{(dⁱ − 1)/(d − 1)}` (for `d ≥ 2`; `ρⁱ` for `d = 1`).
#[must_use]
pub fn analytic_tail(rho: f64, d: u32, i: usize) -> f64 {
    if d == 1 {
        rho.powi(i as i32)
    } else {
        let exponent = ((d as f64).powi(i as i32) - 1.0) / (d as f64 - 1.0);
        rho.powf(exponent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfcsl_core::fixedpoint::{self, FixedPointOptions};
    use mfcsl_core::meanfield;
    use mfcsl_ode::OdeOptions;

    fn settle(params: Params) -> Occupancy {
        let model = model(params).unwrap();
        let k = params.cap + 1;
        let m0 = Occupancy::unit(k, 0).unwrap();
        let fp = fixedpoint::from_initial(&model, &m0, 400.0, &FixedPointOptions::default());
        match fp {
            Ok(fp) => fp.occupancy,
            Err(_) => {
                // Fall back to a long integration if Newton is finicky on
                // the simplex boundary.
                let sol = meanfield::solve(&model, &m0, 2000.0, &OdeOptions::default()).unwrap();
                sol.occupancy_at(2000.0)
            }
        }
    }

    #[test]
    fn d1_fixed_point_is_geometric() {
        // d = 1 is an M/M/1-like queue: m_i ∝ ρ^i (truncated).
        let rho = 0.5;
        let params = Params {
            lambda: rho,
            mu: 1.0,
            d: 1,
            cap: 10,
        };
        let m = settle(params);
        for i in 0..=8 {
            let ratio = m[i + 1] / m[i];
            assert!(
                (ratio - rho).abs() < 1e-4,
                "geometric ratio at {i}: {ratio}"
            );
        }
    }

    #[test]
    fn d2_tail_is_doubly_exponential() {
        let rho = 0.7;
        let params = Params {
            lambda: rho,
            mu: 1.0,
            d: 2,
            cap: 12,
        };
        let m = settle(params);
        let tail = |i: usize| -> f64 { (i..m.len()).map(|j| m[j]).sum() };
        for i in 1..=3 {
            let expected = analytic_tail(rho, 2, i);
            let got = tail(i);
            assert!(
                (got - expected).abs() < 5e-3,
                "tail s_{i}: {got} vs analytic {expected}"
            );
        }
        // Two choices beat one choice dramatically at depth 3:
        // ρ^7 ≪ ρ^3.
        assert!(tail(3) < analytic_tail(rho, 1, 3) / 3.0);
    }

    #[test]
    fn mass_is_conserved_along_trajectory() {
        let params = Params {
            lambda: 0.9,
            mu: 1.0,
            d: 2,
            cap: 8,
        };
        let model = model(params).unwrap();
        let m0 = Occupancy::unit(9, 0).unwrap();
        let sol = meanfield::solve(&model, &m0, 30.0, &OdeOptions::default()).unwrap();
        for &t in &[0.0, 3.0, 11.0, 30.0] {
            let m = sol.occupancy_at(t);
            assert!((m.as_slice().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn validation() {
        let ok = Params {
            lambda: 0.5,
            mu: 1.0,
            d: 2,
            cap: 4,
        };
        assert!(model(ok).is_ok());
        assert!(model(Params { d: 0, ..ok }).is_err());
        assert!(model(Params { cap: 0, ..ok }).is_err());
        assert!(model(Params { lambda: -1.0, ..ok }).is_err());
        assert!(model(Params { mu: f64::NAN, ..ok }).is_err());
    }

    #[test]
    fn labels() {
        let m = model(Params {
            lambda: 0.5,
            mu: 1.0,
            d: 2,
            cap: 3,
        })
        .unwrap();
        assert!(m.labeling().has(0, "empty"));
        assert!(m.labeling().has(3, "full"));
        assert_eq!(m.labeling().states_with("busy"), vec![1, 2, 3]);
    }
}
