//! A peer-to-peer botnet lifecycle model, following the shape of the
//! paper's references \[6\] (Kolesnichenko et al.) and \[15\] (van Ruitenbeek
//! & Sanders).
//!
//! Five states capture a machine's journey through a P2P botnet:
//!
//! ```text
//! clean ──infect──▶ infected_dormant ──activate──▶ working_bot
//!   ▲                    │  ▲                        │   │
//!   └──────clean_d───────┘  └───────rest─────────────┘   └─propagate (drives infection)
//!   ▲                                                    │
//!   └────────────────────clean_w────────────────────────┘
//! ```
//!
//! Infection pressure comes from working bots (`infect·m_working`), like
//! the active spreaders of the paper's virus example, but with separate
//! disinfection rates for dormant and working machines.

use mfcsl_core::{CoreError, LocalModel, Occupancy};
use serde::{Deserialize, Serialize};

/// State index of a clean machine.
pub const CLEAN: usize = 0;
/// State index of a dormant infected machine.
pub const DORMANT: usize = 1;
/// State index of an actively working bot.
pub const WORKING: usize = 2;

/// Botnet rate constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Infection rate coefficient (scaled by the working-bot fraction).
    pub infect: f64,
    /// Dormant → working activation rate.
    pub activate: f64,
    /// Working → dormant rest rate.
    pub rest: f64,
    /// Disinfection rate of dormant machines.
    pub clean_dormant: f64,
    /// Disinfection rate of working bots (easier to detect).
    pub clean_working: f64,
}

/// A parameterization with a persistent botnet (supercritical spread).
#[must_use]
pub fn aggressive() -> Params {
    Params {
        infect: 4.0,
        activate: 0.5,
        rest: 0.4,
        clean_dormant: 0.05,
        clean_working: 0.4,
    }
}

/// A parameterization where disinfection wins (botnet dies out).
#[must_use]
pub fn defended() -> Params {
    Params {
        infect: 0.5,
        activate: 0.2,
        rest: 0.5,
        clean_dormant: 0.3,
        clean_working: 0.8,
    }
}

/// Builds the botnet local model. Labels: `clean`, `infected`, `dormant`,
/// `working`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidModel`] for negative or non-finite rates.
pub fn model(params: Params) -> Result<LocalModel, CoreError> {
    for (name, v) in [
        ("infect", params.infect),
        ("activate", params.activate),
        ("rest", params.rest),
        ("clean_dormant", params.clean_dormant),
        ("clean_working", params.clean_working),
    ] {
        if !v.is_finite() || v < 0.0 {
            return Err(CoreError::InvalidModel(format!(
                "rate {name} must be finite and non-negative, got {v}"
            )));
        }
    }
    let infect = params.infect;
    LocalModel::builder()
        .state("clean", ["clean"])
        .state("dormant", ["infected", "dormant"])
        .state("working", ["infected", "working"])
        .transition("clean", "dormant", move |m: &Occupancy| infect * m[WORKING])?
        .constant_transition("dormant", "working", params.activate)?
        .constant_transition("working", "dormant", params.rest)?
        .constant_transition("dormant", "clean", params.clean_dormant)?
        .constant_transition("working", "clean", params.clean_working)?
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfcsl_core::fixedpoint::{self, FixedPointOptions, Stability};
    use mfcsl_core::meanfield;
    use mfcsl_ode::OdeOptions;

    #[test]
    fn aggressive_botnet_persists() {
        let model = model(aggressive()).unwrap();
        let m0 = Occupancy::new(vec![0.98, 0.01, 0.01]).unwrap();
        let fp =
            fixedpoint::from_initial(&model, &m0, 300.0, &FixedPointOptions::default()).unwrap();
        let infected = fp.occupancy[DORMANT] + fp.occupancy[WORKING];
        assert!(infected > 0.3, "endemic infected fraction {infected}");
        assert_eq!(fp.stability, Stability::Stable);
    }

    #[test]
    fn defended_network_clears() {
        let model = model(defended()).unwrap();
        let m0 = Occupancy::new(vec![0.5, 0.25, 0.25]).unwrap();
        let sol = meanfield::solve(&model, &m0, 100.0, &OdeOptions::default()).unwrap();
        let end = sol.occupancy_at(100.0);
        assert!(end[CLEAN] > 0.999, "clean fraction at end {}", end[CLEAN]);
    }

    #[test]
    fn labels() {
        let model = model(aggressive()).unwrap();
        assert_eq!(
            model.labeling().states_with("infected"),
            vec![DORMANT, WORKING]
        );
        assert!(model.labeling().has(CLEAN, "clean"));
    }

    #[test]
    fn validation() {
        let mut p = aggressive();
        p.infect = -0.1;
        assert!(model(p).is_err());
    }
}
