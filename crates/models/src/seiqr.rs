//! A five-state malware/epidemic model with latency and quarantine
//! (SEIQR), in the spirit of the staged infection models of the paper's
//! reference \[15\] (van Ruitenbeek & Sanders).
//!
//! ```text
//! susceptible ──expose──▶ exposed ──activate──▶ infectious
//!      ▲                     │                     │    │
//!      │                 quarantine            quarantine│
//!      │                     ▼                     ▼    │
//!      │                 quarantined ──release──▶ recovered
//!      └─────────────────────────────waning──────────┘
//! ```
//!
//! Exposure pressure is proportional to the infectious fraction. With five
//! local states this model exercises the checker on larger matrices (the
//! nested machinery runs on 6×6 extended chains) and shows a transient
//! epidemic peak followed by recovery — a shape the `cSat` machinery turns
//! into interior satisfaction windows.

use mfcsl_core::{CoreError, LocalModel, Occupancy};
use serde::{Deserialize, Serialize};

/// State index of the susceptible state.
pub const SUSCEPTIBLE: usize = 0;
/// State index of the exposed (latent) state.
pub const EXPOSED: usize = 1;
/// State index of the infectious state.
pub const INFECTIOUS: usize = 2;
/// State index of the quarantined state.
pub const QUARANTINED: usize = 3;
/// State index of the recovered state.
pub const RECOVERED: usize = 4;

/// SEIQR rate constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// Exposure coefficient (scaled by the infectious fraction).
    pub beta: f64,
    /// Latency-to-infectious activation rate.
    pub sigma: f64,
    /// Recovery rate of infectious machines.
    pub gamma: f64,
    /// Quarantine detection rate (applies to exposed and infectious).
    pub kappa: f64,
    /// Release rate from quarantine into recovered.
    pub release: f64,
    /// Waning-immunity rate (recovered → susceptible; 0 for permanent).
    pub waning: f64,
}

/// An outbreak-with-response parameterization: fast spread, moderate
/// quarantine, slow waning.
#[must_use]
pub fn outbreak() -> Params {
    Params {
        beta: 3.0,
        sigma: 1.0,
        gamma: 0.5,
        kappa: 0.4,
        release: 0.3,
        waning: 0.05,
    }
}

/// Builds the SEIQR local model. Labels: one per state name plus
/// `infected` on exposed/infectious/quarantined and `healthy` on
/// susceptible/recovered.
///
/// # Errors
///
/// Returns [`CoreError::InvalidModel`] for negative or non-finite rates.
///
/// # Example
///
/// ```
/// use mfcsl_models::seiqr;
///
/// let model = seiqr::model(seiqr::outbreak())?;
/// assert_eq!(model.n_states(), 5);
/// # Ok::<(), mfcsl_core::CoreError>(())
/// ```
pub fn model(params: Params) -> Result<LocalModel, CoreError> {
    for (name, v) in [
        ("beta", params.beta),
        ("sigma", params.sigma),
        ("gamma", params.gamma),
        ("kappa", params.kappa),
        ("release", params.release),
        ("waning", params.waning),
    ] {
        if !v.is_finite() || v < 0.0 {
            return Err(CoreError::InvalidModel(format!(
                "rate {name} must be finite and non-negative, got {v}"
            )));
        }
    }
    let beta = params.beta;
    let mut builder = LocalModel::builder()
        .state("susceptible", ["susceptible", "healthy"])
        .state("exposed", ["exposed", "infected"])
        .state("infectious", ["infectious", "infected"])
        .state("quarantined", ["quarantined", "infected"])
        .state("recovered", ["recovered", "healthy"])
        .transition("susceptible", "exposed", move |m: &Occupancy| {
            beta * m[INFECTIOUS]
        })?
        .constant_transition("exposed", "infectious", params.sigma)?
        .constant_transition("infectious", "recovered", params.gamma)?
        .constant_transition("exposed", "quarantined", params.kappa)?
        .constant_transition("infectious", "quarantined", params.kappa)?
        .constant_transition("quarantined", "recovered", params.release)?;
    if params.waning > 0.0 {
        builder = builder.constant_transition("recovered", "susceptible", params.waning)?;
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfcsl_core::fixedpoint::{self, FixedPointOptions, Stability};
    use mfcsl_core::meanfield;
    use mfcsl_core::mfcsl::{parse_formula, Checker};
    use mfcsl_csl::Tolerances;
    use mfcsl_ode::OdeOptions;

    fn m0() -> Occupancy {
        Occupancy::new(vec![0.97, 0.02, 0.01, 0.0, 0.0]).unwrap()
    }

    #[test]
    fn epidemic_peaks_and_settles() {
        let model = model(outbreak()).unwrap();
        let sol = meanfield::solve(&model, &m0(), 100.0, &OdeOptions::default()).unwrap();
        let infectious = |t: f64| sol.occupancy_at(t)[INFECTIOUS];
        let peak = (0..=1000)
            .map(|i| infectious(i as f64 * 0.1))
            .fold(0.0_f64, f64::max);
        assert!(peak > 0.1, "the outbreak should take off (peak {peak})");
        // With waning immunity there is an endemic equilibrium.
        let fp =
            fixedpoint::from_initial(&model, &m0(), 400.0, &FixedPointOptions::default()).unwrap();
        assert_eq!(fp.stability, Stability::Stable);
        assert!(fp.occupancy[INFECTIOUS] > 0.0);
    }

    #[test]
    fn permanent_immunity_burns_out() {
        let mut p = outbreak();
        p.waning = 0.0;
        let model = model(p).unwrap();
        let sol = meanfield::solve(&model, &m0(), 200.0, &OdeOptions::default()).unwrap();
        let end = sol.occupancy_at(200.0);
        assert!(end[INFECTIOUS] < 1e-6);
        assert!(end[EXPOSED] < 1e-6);
        assert!(end[RECOVERED] > 0.5, "most machines pass through infection");
    }

    #[test]
    fn mfcsl_queries_on_five_states() {
        let model = model(outbreak()).unwrap();
        let checker = Checker::with_tolerances(&model, Tolerances::fast());
        // The infectious fraction starts at 1%:
        assert!(checker
            .check(&parse_formula("E{<0.05}[ infectious ]").unwrap(), &m0())
            .unwrap()
            .holds());
        // ...and the danger window where it exceeds 10% is an interior
        // interval (the epidemic rises, peaks, then the response wins).
        let cs = checker
            .csat(
                &parse_formula("E{>0.1}[ infectious ]").unwrap(),
                &m0(),
                40.0,
            )
            .unwrap();
        assert_eq!(cs.intervals().len(), 1, "{cs}");
        let iv = cs.intervals()[0];
        assert!(iv.lo().value > 0.0, "window starts after onset: {cs}");
        assert!(
            iv.hi().value < 40.0,
            "window closes before the horizon: {cs}"
        );
        // Nested formula on the 5-state model: exercised without error.
        let nested =
            parse_formula("E{>0.05}[ P{>0.5}[ infected U[0,10] P{>0.9}[ tt U[0,2] recovered ] ] ]")
                .unwrap();
        let _ = checker.check(&nested, &m0()).unwrap();
    }

    #[test]
    fn quarantine_reduces_the_peak() {
        let with = model(outbreak()).unwrap();
        let without = model(Params {
            kappa: 0.0,
            ..outbreak()
        })
        .unwrap();
        let peak = |m: &LocalModel| {
            let sol = meanfield::solve(m, &m0(), 60.0, &OdeOptions::default()).unwrap();
            (0..=600)
                .map(|i| sol.occupancy_at(i as f64 * 0.1)[INFECTIOUS])
                .fold(0.0_f64, f64::max)
        };
        assert!(peak(&with) < peak(&without));
    }

    #[test]
    fn validation() {
        let mut p = outbreak();
        p.beta = -1.0;
        assert!(model(p).is_err());
        p = outbreak();
        p.waning = f64::NAN;
        assert!(model(p).is_err());
    }
}
