//! The time-varying local model checked by the inhomogeneous algorithms.
//!
//! Def. 1 of the paper: a local model is a labeled CTMC whose generator
//! depends on the overall system state. Once an initial occupancy vector is
//! fixed, the mean-field ODE pins down `m̄(t)` and hence a *time-varying*
//! generator `Q(t) = Q(m̄(t))`. [`LocalTvModel`] packages that generator
//! with the labeling and, optionally, the stationary regime (the fixed
//! point `m̃` and the chain frozen at it) needed by the steady-state
//! operator (Sec. IV-D).

use mfcsl_ctmc::inhomogeneous::TimeVaryingGenerator;
use mfcsl_ctmc::{Ctmc, Labeling};
use mfcsl_math::Matrix;

use crate::CslError;

/// Stationary regime of the local model: the fixed-point occupancy `m̃` and
/// the time-homogeneous chain `Q(m̃)` frozen at it.
#[derive(Debug, Clone)]
pub struct StationaryRegime {
    /// The stationary occupancy vector `m̃` (solves `m̃·Q(m̃) = 0`).
    pub distribution: Vec<f64>,
    /// The local chain with rates frozen at `m̃`.
    pub frozen: Ctmc,
    /// Time from which the mean-field trajectory has numerically settled
    /// onto `m̃` (so `Q(t)` is constant from here on), when known. Enables
    /// the steady-regime uniformization fast path of the until algorithms.
    pub settle_time: Option<f64>,
}

/// A time-inhomogeneous labeled local model.
///
/// # Example
///
/// ```
/// use mfcsl_csl::LocalTvModel;
/// use mfcsl_ctmc::inhomogeneous::FnGenerator;
/// use mfcsl_ctmc::Labeling;
/// use mfcsl_math::Matrix;
///
/// # fn main() -> Result<(), mfcsl_csl::CslError> {
/// let gen = FnGenerator::new(2, |t: f64, q: &mut Matrix| {
///     let r = 1.0 + t;
///     q[(0, 0)] = -r; q[(0, 1)] = r;
///     q[(1, 0)] = 0.0; q[(1, 1)] = 0.0;
/// });
/// let mut labels = Labeling::new(2);
/// labels.add(0, "healthy");
/// labels.add(1, "infected");
/// let model = LocalTvModel::new(gen, labels, vec!["healthy".into(), "infected".into()])?;
/// assert_eq!(model.n_states(), 2);
/// assert!(model.frozen_at(0.0)?.generator()[(0, 1)] == 1.0);
/// # Ok(())
/// # }
/// ```
pub struct LocalTvModel<G> {
    gen: G,
    labeling: Labeling,
    names: Vec<String>,
    stationary: Option<StationaryRegime>,
    steady_from: Option<f64>,
    /// When set, the sorted forward-reachable closure of the checked
    /// trajectory's initial support: satisfaction sets are evaluated
    /// on-the-fly over these states only (everything outside is
    /// unreachable and reads as unlabeled).
    reachable: Option<Vec<usize>>,
}

impl<G: TimeVaryingGenerator> LocalTvModel<G> {
    /// Creates a model from a generator, labeling and state names.
    ///
    /// # Errors
    ///
    /// Returns [`CslError::InvalidArgument`] if the shapes disagree or the
    /// model is empty.
    pub fn new(gen: G, labeling: Labeling, names: Vec<String>) -> Result<Self, CslError> {
        let n = gen.n_states();
        if n == 0 {
            return Err(CslError::InvalidArgument(
                "model must have at least one state".into(),
            ));
        }
        if labeling.n_states() != n || names.len() != n {
            return Err(CslError::InvalidArgument(format!(
                "shape mismatch: generator has {n} states, labeling {}, names {}",
                labeling.n_states(),
                names.len()
            )));
        }
        Ok(LocalTvModel {
            gen,
            labeling,
            names,
            stationary: None,
            steady_from: None,
            reachable: None,
        })
    }

    /// Restricts satisfaction-set construction to `reachable` — the
    /// forward-reachable closure of the checked trajectory's initial
    /// support under the transition topology. [`LocalTvModel::sat_ap`]
    /// then evaluates the labeling lazily over these states only, instead
    /// of labeling the full state space; states outside the closure can
    /// never carry probability mass, so every verdict over the closure is
    /// unchanged. Out-of-range and duplicate entries are ignored.
    #[must_use]
    pub fn with_reachable(mut self, reachable: Vec<usize>) -> Self {
        let n = self.n_states();
        let mut r: Vec<usize> = reachable.into_iter().filter(|&s| s < n).collect();
        r.sort_unstable();
        r.dedup();
        self.reachable = Some(r);
        self
    }

    /// The restricted state set satisfaction evaluation runs over, when
    /// one was attached.
    #[must_use]
    pub fn reachable(&self) -> Option<&[usize]> {
        self.reachable.as_deref()
    }

    /// Declares that the generator is constant in time from `t` on (the
    /// mean-field trajectory has settled). The until algorithms use this to
    /// replace the tail of the window propagation with one uniformization;
    /// callers must only set it when `Q(t')` really no longer varies for
    /// `t' ≥ t` within the checking tolerances.
    #[must_use]
    pub fn with_steady_from(mut self, t: f64) -> Self {
        self.steady_from = Some(t);
        self
    }

    /// The time from which the generator is constant, if known — either
    /// declared via [`LocalTvModel::with_steady_from`] or carried by the
    /// attached stationary regime.
    #[must_use]
    pub fn steady_from(&self) -> Option<f64> {
        self.steady_from
            .or_else(|| self.stationary.as_ref().and_then(|r| r.settle_time))
    }

    /// Attaches the stationary regime (enables the `S` operator).
    ///
    /// # Errors
    ///
    /// Returns [`CslError::InvalidArgument`] on shape mismatch.
    pub fn with_stationary(mut self, regime: StationaryRegime) -> Result<Self, CslError> {
        if regime.distribution.len() != self.n_states()
            || regime.frozen.n_states() != self.n_states()
        {
            return Err(CslError::InvalidArgument(format!(
                "stationary regime has {} states, model has {}",
                regime.distribution.len(),
                self.n_states()
            )));
        }
        self.stationary = Some(regime);
        Ok(self)
    }

    /// Number of local states.
    #[must_use]
    pub fn n_states(&self) -> usize {
        self.gen.n_states()
    }

    /// The time-varying generator.
    #[must_use]
    pub fn generator(&self) -> &G {
        &self.gen
    }

    /// The labeling function.
    #[must_use]
    pub fn labeling(&self) -> &Labeling {
        &self.labeling
    }

    /// State names.
    #[must_use]
    pub fn state_names(&self) -> &[String] {
        &self.names
    }

    /// The stationary regime, if attached.
    #[must_use]
    pub fn stationary(&self) -> Option<&StationaryRegime> {
        self.stationary.as_ref()
    }

    /// Looks up a state index by name.
    #[must_use]
    pub fn state_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// The time-homogeneous chain with rates frozen at time `t` — used to
    /// cross-validate the inhomogeneous algorithms and for display.
    ///
    /// # Errors
    ///
    /// Propagates generator validation errors.
    pub fn frozen_at(&self, t: f64) -> Result<Ctmc, CslError> {
        let n = self.n_states();
        let mut q = Matrix::zeros(n, n);
        self.gen.write_generator(t, &mut q);
        Ok(Ctmc::from_parts(
            self.names.clone(),
            q,
            self.labeling.clone(),
        )?)
    }

    /// States carrying an atomic proposition; errors on propositions that
    /// occur nowhere in the model's alphabet (almost always a typo).
    ///
    /// # Errors
    ///
    /// Returns [`CslError::UnknownAtomicProposition`].
    pub fn sat_ap(&self, ap: &str) -> Result<Vec<bool>, CslError> {
        if !self.labeling.alphabet().contains(ap) {
            return Err(CslError::UnknownAtomicProposition(ap.to_string()));
        }
        match &self.reachable {
            // On-the-fly construction: query the labeling only for states
            // the checked trajectory can actually occupy. With the closure
            // equal to the full space this produces the identical vector.
            Some(reachable) => {
                let mut sat = vec![false; self.n_states()];
                for &s in reachable {
                    sat[s] = self.labeling.has(s, ap);
                }
                Ok(sat)
            }
            None => Ok((0..self.n_states())
                .map(|s| self.labeling.has(s, ap))
                .collect()),
        }
    }
}

impl<G> std::fmt::Debug for LocalTvModel<G> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalTvModel")
            .field("names", &self.names)
            .field("has_stationary", &self.stationary.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfcsl_ctmc::inhomogeneous::FnGenerator;

    fn model() -> LocalTvModel<FnGenerator<impl Fn(f64, &mut Matrix)>> {
        let gen = FnGenerator::new(2, |t: f64, q: &mut Matrix| {
            let r = 1.0 + t;
            q[(0, 0)] = -r;
            q[(0, 1)] = r;
            q[(1, 0)] = 0.5;
            q[(1, 1)] = -0.5;
        });
        let mut labels = Labeling::new(2);
        labels.add(0, "up");
        labels.add(1, "down");
        LocalTvModel::new(gen, labels, vec!["up".into(), "down".into()]).unwrap()
    }

    #[test]
    fn accessors_and_frozen() {
        let m = model();
        assert_eq!(m.n_states(), 2);
        assert_eq!(m.state_index("down"), Some(1));
        assert_eq!(m.state_index("zzz"), None);
        let frozen = m.frozen_at(3.0).unwrap();
        assert_eq!(frozen.generator()[(0, 1)], 4.0);
        assert!(m.stationary().is_none());
    }

    #[test]
    fn sat_ap_and_unknown_ap() {
        let m = model();
        assert_eq!(m.sat_ap("up").unwrap(), vec![true, false]);
        assert!(matches!(
            m.sat_ap("ghost"),
            Err(CslError::UnknownAtomicProposition(_))
        ));
    }

    #[test]
    fn reachable_restriction_gates_sat_sets() {
        // Full closure: identical to the eager vector.
        let full = model().with_reachable(vec![0, 1]);
        assert_eq!(full.reachable(), Some(&[0, 1][..]));
        assert_eq!(full.sat_ap("up").unwrap(), vec![true, false]);
        // Restricted closure: states outside read as unlabeled.
        let restricted = model().with_reachable(vec![1]);
        assert_eq!(restricted.sat_ap("up").unwrap(), vec![false, false]);
        assert_eq!(restricted.sat_ap("down").unwrap(), vec![false, true]);
        // Out-of-range and duplicate seeds are dropped.
        let cleaned = model().with_reachable(vec![7, 0, 0]);
        assert_eq!(cleaned.reachable(), Some(&[0][..]));
    }

    #[test]
    fn shape_validation() {
        let gen = FnGenerator::new(2, |_t: f64, _q: &mut Matrix| {});
        let labels = Labeling::new(3);
        assert!(LocalTvModel::new(gen, labels, vec!["a".into(), "b".into()]).is_err());
        let gen0 = FnGenerator::new(0, |_t: f64, _q: &mut Matrix| {});
        assert!(LocalTvModel::new(gen0, Labeling::new(0), vec![]).is_err());
    }

    #[test]
    fn stationary_regime_validation() {
        let m = model();
        let frozen = m.frozen_at(0.0).unwrap();
        let good = StationaryRegime {
            distribution: vec![0.5, 0.5],
            frozen: frozen.clone(),
            settle_time: None,
        };
        assert!(model().with_stationary(good).is_ok());
        let bad = StationaryRegime {
            distribution: vec![1.0],
            frozen,
            settle_time: None,
        };
        assert!(model().with_stationary(bad).is_err());
    }
}
