//! Error type for CSL model checking.

use std::fmt;

use mfcsl_ctmc::CtmcError;
use mfcsl_math::MathError;
use mfcsl_ode::OdeError;

/// Error returned by the CSL checkers.
#[derive(Debug, Clone, PartialEq)]
pub enum CslError {
    /// A formula references an atomic proposition the model never uses.
    /// (Not an error per se — such propositions are simply false — but the
    /// parser-to-checker pipeline flags them since they almost always
    /// indicate a typo.)
    UnknownAtomicProposition(String),
    /// The formula text could not be parsed.
    Parse {
        /// Byte offset of the error in the input.
        position: usize,
        /// What went wrong.
        message: String,
    },
    /// The formula is outside the fragment the algorithms support.
    Unsupported(String),
    /// The steady-state operator was used without a stationary distribution.
    NoStationaryDistribution,
    /// An argument was outside its documented domain.
    InvalidArgument(String),
    /// An underlying CTMC routine failed.
    Ctmc(CtmcError),
    /// An underlying ODE integration failed.
    Ode(OdeError),
    /// An underlying numerical routine failed.
    Math(MathError),
}

impl fmt::Display for CslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CslError::UnknownAtomicProposition(ap) => {
                write!(f, "atomic proposition `{ap}` does not occur in the model")
            }
            CslError::Parse { position, message } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            CslError::Unsupported(msg) => write!(f, "unsupported formula: {msg}"),
            CslError::NoStationaryDistribution => write!(
                f,
                "steady-state operator requires a stationary distribution; the model was \
                 built without one"
            ),
            CslError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            CslError::Ctmc(e) => write!(f, "ctmc error: {e}"),
            CslError::Ode(e) => write!(f, "ode error: {e}"),
            CslError::Math(e) => write!(f, "numerical error: {e}"),
        }
    }
}

impl std::error::Error for CslError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CslError::Ctmc(e) => Some(e),
            CslError::Ode(e) => Some(e),
            CslError::Math(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CtmcError> for CslError {
    fn from(e: CtmcError) -> Self {
        CslError::Ctmc(e)
    }
}

impl From<OdeError> for CslError {
    fn from(e: OdeError) -> Self {
        CslError::Ode(e)
    }
}

impl From<MathError> for CslError {
    fn from(e: MathError) -> Self {
        CslError::Math(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = CslError::Parse {
            position: 3,
            message: "expected `]`".into(),
        };
        assert!(e.to_string().contains("byte 3"));
        let e: CslError = CtmcError::UnknownState("x".into()).into();
        assert!(std::error::Error::source(&e).is_some());
        let e: CslError = OdeError::NewtonFailed { t: 0.0 }.into();
        assert!(e.to_string().contains("ode"));
        let e: CslError = MathError::Singular.into();
        assert!(e.to_string().contains("singular"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CslError>();
    }
}
