//! State-space-doubling reachability — the construction of Bortolussi &
//! Hillston \[14\], kept as an ablation baseline.
//!
//! The paper argues (Sec. IV-C) that its single fresh goal state `s*` is
//! cheaper than doubling the state space "and considering all goal states
//! separately, which increases the computational complexity and does not
//! add any extra information". To back that claim with measurements, this
//! module implements the doubled construction: every original state `s`
//! gets a shadow `s + n` that collects probability arriving in `s` while it
//! is a goal state. The matrix ODEs then run on `(2n)²` entries instead of
//! `(n+1)²`.
//!
//! Results must agree exactly with [`crate::nested`]; the equivalence is a
//! test invariant and the runtime difference is measured in
//! `benches/ablation_goal_state.rs`.

use mfcsl_ctmc::inhomogeneous::{transition_matrix, TimeVaryingGenerator};
use mfcsl_math::Matrix;

use crate::nested::PiecewiseSets;
use crate::{CslError, Tolerances};

/// The `2n`-state doubled chain: states `0..n` are the originals, `n..2n`
/// their goal shadows. Transitions into a `Γ₂(t)` state `j` are redirected
/// to the shadow `j + n`; non-live states and all shadows are absorbing.
pub struct DoubledGenerator<'a, G> {
    inner: &'a G,
    sets: &'a PiecewiseSets,
}

impl<'a, G: TimeVaryingGenerator> DoubledGenerator<'a, G> {
    /// Wraps the original generator with the piecewise sets.
    ///
    /// # Errors
    ///
    /// Returns [`CslError::InvalidArgument`] on a state-count mismatch.
    pub fn new(inner: &'a G, sets: &'a PiecewiseSets) -> Result<Self, CslError> {
        if inner.n_states() != sets.n_states() {
            return Err(CslError::InvalidArgument(format!(
                "generator has {} states, sets have {}",
                inner.n_states(),
                sets.n_states()
            )));
        }
        Ok(DoubledGenerator { inner, sets })
    }
}

impl<G: TimeVaryingGenerator> TimeVaryingGenerator for DoubledGenerator<'_, G> {
    fn n_states(&self) -> usize {
        2 * self.inner.n_states()
    }

    fn write_generator(&self, t: f64, q: &mut Matrix) {
        let n = self.inner.n_states();
        let mut base = Matrix::zeros(n, n);
        self.inner.write_generator(t, &mut base);
        let g1 = self.sets.gamma1().set_at(t);
        let g2 = self.sets.gamma2().set_at(t);
        for i in 0..2 * n {
            for j in 0..2 * n {
                q[(i, j)] = 0.0;
            }
        }
        for s in 0..n {
            let live = g1[s] && !g2[s];
            if !live {
                continue;
            }
            let mut row_sum = 0.0;
            for j in 0..n {
                if j == s {
                    continue;
                }
                let rate = base[(s, j)];
                if rate <= 0.0 {
                    continue;
                }
                if g2[j] {
                    q[(s, n + j)] += rate;
                } else {
                    q[(s, j)] += rate;
                }
                row_sum += rate;
            }
            q[(s, s)] = -row_sum;
        }
        // Shadow rows stay zero (absorbing).
    }
}

/// Carry-over matrix for the doubled construction: live→live mass stays,
/// live→goal mass moves to the state's own shadow, shadows persist.
fn zeta_doubled(sets: &PiecewiseSets, boundary: f64) -> Matrix {
    let n = sets.n_states();
    let g1_before = sets.gamma1().set_before(boundary);
    let g2_before = sets.gamma2().set_before(boundary);
    let g1_after = sets.gamma1().set_at(boundary);
    let g2_after = sets.gamma2().set_at(boundary);
    let mut z = Matrix::zeros(2 * n, 2 * n);
    for s in 0..n {
        // Shadows always persist.
        z[(n + s, n + s)] = 1.0;
        let was_live = g1_before[s] && !g2_before[s];
        if !was_live {
            continue;
        }
        if g2_after[s] {
            z[(s, n + s)] = 1.0;
        } else if g1_after[s] {
            z[(s, s)] = 1.0;
        }
    }
    z
}

/// Computes the same reachability probability as
/// [`crate::nested::reach_probability`] with the doubled state space.
///
/// # Errors
///
/// Returns [`CslError::InvalidArgument`] if the window exceeds the sets'
/// domain, and propagates ODE failures.
pub fn reach_probability_doubled<G: TimeVaryingGenerator>(
    gen: &G,
    sets: &PiecewiseSets,
    t_prime: f64,
    big_t: f64,
    tol: &Tolerances,
) -> Result<Vec<f64>, CslError> {
    if !(big_t >= 0.0) || !big_t.is_finite() {
        return Err(CslError::InvalidArgument(format!(
            "reachability horizon must be finite and non-negative, got {big_t}"
        )));
    }
    if t_prime < sets.t_lo() - 1e-12 || t_prime + big_t > sets.t_hi() + 1e-12 {
        return Err(CslError::InvalidArgument(format!(
            "window [{t_prime}, {}] exceeds the sets' domain [{}, {}]",
            t_prime + big_t,
            sets.t_lo(),
            sets.t_hi()
        )));
    }
    tol.validate()?;
    let n = gen.n_states();
    let doubled = DoubledGenerator::new(gen, sets)?;
    let t_end = t_prime + big_t;
    let mut upsilon = Matrix::identity(2 * n);
    let mut cursor = t_prime;
    // Boundaries at the exact right edge still apply ζ (right-continuous
    // goal sets; see the same rule in `nested::upsilon_product`).
    for &b in &sets.boundaries() {
        if b <= t_prime || b > t_end {
            continue;
        }
        let piece = transition_matrix(&doubled, cursor, b - cursor, &tol.ode)?;
        upsilon = upsilon.matmul(&piece)?.matmul(&zeta_doubled(sets, b))?;
        cursor = b;
    }
    let piece = transition_matrix(&doubled, cursor, t_end - cursor, &tol.ode)?;
    upsilon = upsilon.matmul(&piece)?;
    let g2 = sets.gamma2().set_at(t_prime);
    Ok((0..n)
        .map(|s| {
            if g2[s] {
                1.0
            } else {
                let mass: f64 = (0..n).map(|j| upsilon[(s, n + j)]).sum();
                mass.clamp(0.0, 1.0)
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nested::{reach_probability, PiecewiseStateSet};
    use mfcsl_ctmc::inhomogeneous::{ConstGenerator, FnGenerator};
    use mfcsl_ctmc::CtmcBuilder;

    fn tol() -> Tolerances {
        let mut t = Tolerances::default();
        t.ode = t.ode.with_tolerances(1e-11, 1e-13);
        t
    }

    fn chain4() -> mfcsl_ctmc::Ctmc {
        CtmcBuilder::new()
            .state("a", ["a"])
            .state("b", ["b"])
            .state("c", ["c"])
            .state("d", ["d"])
            .transition("a", "b", 0.7)
            .unwrap()
            .transition("b", "c", 0.9)
            .unwrap()
            .transition("b", "a", 0.2)
            .unwrap()
            .transition("c", "d", 0.4)
            .unwrap()
            .transition("c", "b", 0.1)
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn doubling_agrees_with_goal_state_constant_sets() {
        let ctmc = chain4();
        let gen = ConstGenerator::new(&ctmc);
        let sets = PiecewiseSets::new(
            PiecewiseStateSet::constant(0.0, 5.0, vec![true, true, true, false]).unwrap(),
            PiecewiseStateSet::constant(0.0, 5.0, vec![false, false, false, true]).unwrap(),
        )
        .unwrap();
        let single = reach_probability(&gen, &sets, 0.0, 3.0, &tol()).unwrap();
        let doubled = reach_probability_doubled(&gen, &sets, 0.0, 3.0, &tol()).unwrap();
        for (a, b) in single.iter().zip(&doubled) {
            assert!((a - b).abs() < 1e-8, "{single:?} vs {doubled:?}");
        }
    }

    #[test]
    fn doubling_agrees_with_goal_state_time_varying_sets() {
        let gen = FnGenerator::new(3, |t: f64, q: &mut Matrix| {
            let r = 0.4 + 0.2 * (t * 0.9).cos();
            *q = Matrix::zeros(3, 3);
            q[(0, 1)] = r;
            q[(0, 0)] = -r;
            q[(1, 2)] = 0.5;
            q[(1, 0)] = 0.1;
            q[(1, 1)] = -0.6;
        });
        let g1 = PiecewiseStateSet::new(
            0.0,
            6.0,
            vec![1.5, 3.5],
            vec![
                vec![true, true, false],
                vec![true, false, false],
                vec![true, true, false],
            ],
        )
        .unwrap();
        let g2 = PiecewiseStateSet::new(
            0.0,
            6.0,
            vec![2.5],
            vec![vec![false, false, true], vec![false, true, true]],
        )
        .unwrap();
        let sets = PiecewiseSets::new(g1, g2).unwrap();
        for &(t_prime, big_t) in &[(0.0, 4.0), (1.0, 2.0), (2.0, 3.0)] {
            let single = reach_probability(&gen, &sets, t_prime, big_t, &tol()).unwrap();
            let doubled = reach_probability_doubled(&gen, &sets, t_prime, big_t, &tol()).unwrap();
            for (s, (a, b)) in single.iter().zip(&doubled).enumerate() {
                assert!(
                    (a - b).abs() < 1e-7,
                    "state {s}, window ({t_prime}, {big_t}): {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn doubled_validation() {
        let ctmc = chain4();
        let gen = ConstGenerator::new(&ctmc);
        let small = PiecewiseSets::new(
            PiecewiseStateSet::constant(0.0, 2.0, vec![true]).unwrap(),
            PiecewiseStateSet::constant(0.0, 2.0, vec![false]).unwrap(),
        )
        .unwrap();
        assert!(DoubledGenerator::new(&gen, &small).is_err());
        let sets = PiecewiseSets::new(
            PiecewiseStateSet::constant(0.0, 2.0, vec![true, true, true, false]).unwrap(),
            PiecewiseStateSet::constant(0.0, 2.0, vec![false, false, false, true]).unwrap(),
        )
        .unwrap();
        assert!(reach_probability_doubled(&gen, &sets, 0.0, 5.0, &tol()).is_err());
        assert!(reach_probability_doubled(&gen, &sets, 0.0, -1.0, &tol()).is_err());
    }
}
