//! Numerical tolerances for the checkers.

use mfcsl_ode::OdeOptions;
use serde::{Deserialize, Serialize};

use crate::CslError;

/// Tolerance bundle threaded through every checking algorithm.
///
/// All quantities handled by the checkers are probabilities in `[0, 1]` and
/// times in model time units, so these defaults are meaningful across
/// models: threshold crossings are located to `1e-9` time units, transient
/// distributions to `1e-12` probability mass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tolerances {
    /// Options for every ODE integration (Kolmogorov equations, mean-field
    /// trajectory).
    pub ode: OdeOptions,
    /// Absolute time tolerance for located threshold crossings and
    /// satisfaction-set discontinuity points.
    pub root_tol: f64,
    /// Number of grid intervals used when scanning a probability curve for
    /// threshold crossings over an evaluation window. Crossings closer
    /// together than `window / scan_points` may be missed.
    pub scan_points: usize,
    /// Truncation error for uniformization (homogeneous transients).
    pub transient_eps: f64,
    /// Probability margin below which a verdict is flagged as *marginal*:
    /// the computed value is within numerical noise of the bound.
    pub margin: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            ode: OdeOptions::default(),
            root_tol: 1e-9,
            scan_points: 400,
            transient_eps: 1e-12,
            margin: 1e-6,
        }
    }
}

impl Tolerances {
    /// Returns a copy with looser, faster settings (for sweeps and benches).
    #[must_use]
    pub fn fast() -> Self {
        Tolerances {
            ode: OdeOptions::default().with_tolerances(1e-6, 1e-9),
            root_tol: 1e-6,
            scan_points: 150,
            transient_eps: 1e-9,
            margin: 1e-4,
        }
    }

    /// Validates the combination.
    ///
    /// # Errors
    ///
    /// Returns [`CslError::InvalidArgument`] for non-positive tolerances or
    /// a zero scan grid.
    pub fn validate(&self) -> Result<(), CslError> {
        self.ode
            .validate()
            .map_err(|e| CslError::InvalidArgument(e.to_string()))?;
        if !(self.root_tol > 0.0) {
            return Err(CslError::InvalidArgument(format!(
                "root_tol must be positive, got {}",
                self.root_tol
            )));
        }
        if self.scan_points == 0 {
            return Err(CslError::InvalidArgument(
                "scan_points must be at least 1".into(),
            ));
        }
        if !(self.transient_eps > 0.0 && self.transient_eps < 1.0) {
            return Err(CslError::InvalidArgument(format!(
                "transient_eps must be in (0, 1), got {}",
                self.transient_eps
            )));
        }
        if !(self.margin >= 0.0) {
            return Err(CslError::InvalidArgument(format!(
                "margin must be non-negative, got {}",
                self.margin
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_fast_are_valid() {
        Tolerances::default().validate().unwrap();
        Tolerances::fast().validate().unwrap();
    }

    #[test]
    fn invalid_combinations_rejected() {
        let cases = [
            Tolerances {
                root_tol: 0.0,
                ..Tolerances::default()
            },
            Tolerances {
                scan_points: 0,
                ..Tolerances::default()
            },
            Tolerances {
                transient_eps: 1.0,
                ..Tolerances::default()
            },
            Tolerances {
                margin: -1.0,
                ..Tolerances::default()
            },
        ];
        for t in cases {
            assert!(t.validate().is_err(), "{t:?}");
        }
    }
}
