//! CSL model checking on homogeneous and time-inhomogeneous CTMCs.
//!
//! This crate implements the local level of the paper's two-layer checking
//! pipeline (Sec. IV): Continuous Stochastic Logic evaluated on the
//! time-inhomogeneous CTMC `𝓜ˡ` that a mean-field trajectory induces on a
//! random individual object, plus the classic algorithms for
//! time-homogeneous chains (Baier et al. \[18\]) used both for the frozen
//! (steady-state) chain and as a cross-validation oracle when rates are
//! constant.
//!
//! Module map, keyed to the paper:
//!
//! * [`syntax`] / [`parser`] — CSL state and path formulas (Def. 3);
//! * [`homogeneous`] — the classic checker (Sec. IV-A, Eq. 3);
//! * [`model`] — the time-varying local model (generator + labels +
//!   optional stationary distribution);
//! * [`until`] — single interval until on the inhomogeneous chain
//!   (Sec. IV-B, Eqs. 4–7), including the time-dependent evaluator driven
//!   by the combined Kolmogorov equation;
//! * [`nested`] — time-varying-set reachability with the fresh goal state
//!   `s*` and carry-over matrices `ζ(T_i)` (Sec. IV-C, Eqs. 8–13 and the
//!   appendix algorithm);
//! * [`doubling`] — the state-space-doubling formulation of Bortolussi &
//!   Hillston \[14\], kept as an ablation baseline for the paper's claim that
//!   the single-goal-state construction is cheaper;
//! * [`next`] — the interval Next operator (omitted in the paper's main
//!   text, algorithm per its reference \[19\]);
//! * [`checker`] — recursive satisfaction-set development (Sec. IV-E),
//!   producing both fixed-time sets and piecewise-constant time-dependent
//!   sets with located discontinuity points;
//! * [`cache`] — hash-consed formula interning plus memoized satisfaction
//!   sets and probability curves, shared across the formulas of one
//!   analysis session by the engine in `mfcsl-core`.

// `!(x > 0.0)`-style guards are used deliberately throughout: unlike
// `x <= 0.0`, they classify NaN as invalid input instead of letting it
// through, which is exactly the intent of the validation sites.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod cache;
pub mod checker;
pub mod doubling;
pub mod error;
pub mod homogeneous;
pub mod model;
pub mod nested;
pub mod next;
pub mod parser;
pub mod syntax;
pub mod tolerances;
pub mod until;

pub use cache::{CacheStats, PathKeyExport, SatCache, SatCacheExport, StateKeyExport};
pub use checker::CurveExport;
pub use error::CslError;
pub use model::LocalTvModel;
pub use parser::{parse_path_formula, parse_state_formula};
pub use syntax::{Comparison, PathFormula, StateFormula, TimeInterval};
pub use tolerances::Tolerances;
