//! Hash-consed formulas and memoized satisfaction sets.
//!
//! Checking a batch of MF-CSL formulas over one mean-field trajectory
//! re-derives the same CSL subformulas again and again: `E` and `EP`
//! operators share atomic propositions, until operands, and often whole
//! `P`-subformulas. [`SatCache`] interns every state and path formula it
//! sees into structural ids (so syntactically identical subtrees get the
//! same id regardless of where they appear) and memoizes the expensive
//! products of the checker — [`PiecewiseStateSet`]s and [`ProbCurve`]s —
//! keyed by `(formula id, evaluation horizon θ)`.
//!
//! # Validity
//!
//! A cache is only meaningful for a fixed local model trajectory and fixed
//! tolerances: entries are *not* invalidated automatically. The analysis
//! engine in `mfcsl-core` owns one cache per `(initial occupancy,
//! tolerances)` pair and relies on trajectory *extension* keeping the
//! already-solved prefix bitwise identical, so entries computed against a
//! shorter trajectory stay exact after the horizon grows (every entry only
//! ever examined times within its own solve horizon).
//!
//! # Concurrency
//!
//! The cache is `Send + Sync`: the tables are sharded reader–writer maps
//! ([`ShardedMap`]) handing out `Arc`s, the counters are atomics. Pool
//! tasks of one checking session therefore share a single cache. Two
//! tasks may race to compute the same entry — both compute, last write
//! wins — which is harmless *because* every cached artifact is a
//! deterministic, bitwise-reproducible function of `(formula, θ)` over
//! the fixed trajectory: the winner stores exactly the bytes the loser
//! would have.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mfcsl_pool::shard::ShardedMap;

use crate::checker::ProbCurve;
use crate::nested::PiecewiseStateSet;
use crate::syntax::{Comparison, PathFormula, StateFormula};

/// Interned id of a state formula (structurally shared).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StateId(u32);

/// Interned id of a path formula (structurally shared).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PathId(u32);

/// Structural key of a state formula with children resolved to ids and
/// probability bounds keyed by their bit patterns (`f64::to_bits`), so two
/// bounds compare equal exactly when the checker would treat them
/// identically.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum StateKey {
    True,
    Ap(String),
    Not(StateId),
    And(StateId, StateId),
    Or(StateId, StateId),
    Steady {
        cmp: Comparison,
        p_bits: u64,
        inner: StateId,
    },
    Prob {
        cmp: Comparison,
        p_bits: u64,
        path: PathId,
    },
}

/// Structural key of a path formula.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum PathKey {
    Next {
        lo_bits: u64,
        hi_bits: u64,
        inner: StateId,
    },
    Until {
        lo_bits: u64,
        hi_bits: u64,
        lhs: StateId,
        rhs: StateId,
    },
}

/// The serializable form of a [`StateKey`]: children are referred to by
/// their dense interned index. Exports are *prefix-closed*: every child
/// index is strictly smaller than the entry's own index (state children)
/// or within the companion table (path children), which is what lets an
/// importer re-intern in table order.
#[derive(Debug, Clone, PartialEq)]
pub enum StateKeyExport {
    /// The `tt` formula.
    True,
    /// An atomic proposition.
    Ap(String),
    /// Negation of the state formula at the given index.
    Not(u32),
    /// Conjunction of two state formulas.
    And(u32, u32),
    /// Disjunction of two state formulas.
    Or(u32, u32),
    /// A steady-state bound over an inner state formula.
    Steady {
        /// The comparison operator.
        cmp: Comparison,
        /// The probability bound's bit pattern.
        p_bits: u64,
        /// Index of the inner state formula.
        inner: u32,
    },
    /// A probability bound over a path formula.
    Prob {
        /// The comparison operator.
        cmp: Comparison,
        /// The probability bound's bit pattern.
        p_bits: u64,
        /// Index of the path formula.
        path: u32,
    },
}

/// The serializable form of a [`PathKey`]; see [`StateKeyExport`].
#[derive(Debug, Clone, PartialEq)]
pub enum PathKeyExport {
    /// An interval next over a state formula.
    Next {
        /// Interval lower bound bit pattern.
        lo_bits: u64,
        /// Interval upper bound bit pattern.
        hi_bits: u64,
        /// Index of the inner state formula.
        inner: u32,
    },
    /// An interval until over two state formulas.
    Until {
        /// Interval lower bound bit pattern.
        lo_bits: u64,
        /// Interval upper bound bit pattern.
        hi_bits: u64,
        /// Index of the invariant operand.
        lhs: u32,
        /// Index of the goal operand.
        rhs: u32,
    },
}

/// A serializable snapshot of a [`SatCache`]: the interner tables indexed
/// densely by id, plus the memoized sets and curves keyed by `(id, θ
/// bits)`. Produced by [`SatCache::export`], consumed by
/// [`SatCache::from_export`]; the round trip preserves interned ids and
/// every memoized artifact bitwise, so a restored cache serves the exact
/// hits the original would have.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SatCacheExport {
    /// State-formula keys, indexed by interned id.
    pub state_keys: Vec<StateKeyExport>,
    /// Path-formula keys, indexed by interned id.
    pub path_keys: Vec<PathKeyExport>,
    /// Memoized satisfaction sets as `(state id, θ bits, set)`, sorted by
    /// key for deterministic serialized bytes.
    pub sets: Vec<(u32, u64, PiecewiseStateSet)>,
    /// Memoized probability curves as `(path id, θ bits, curve)`, sorted
    /// by key.
    pub curves: Vec<(u32, u64, crate::checker::CurveExport)>,
}

/// Counters and sizes of a [`SatCache`], as reported by
/// [`SatCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Satisfaction-set lookups that found a memoized entry.
    pub set_hits: u64,
    /// Satisfaction-set lookups that had to compute.
    pub set_misses: u64,
    /// Probability-curve lookups that found a memoized entry.
    pub curve_hits: u64,
    /// Probability-curve lookups that had to compute.
    pub curve_misses: u64,
    /// Distinct state formulas interned.
    pub interned_state_formulas: usize,
    /// Distinct path formulas interned.
    pub interned_path_formulas: usize,
    /// Memoized satisfaction sets currently stored.
    pub cached_sets: usize,
    /// Memoized probability curves currently stored.
    pub cached_curves: usize,
}

/// Hash-consing interner plus memo tables for satisfaction sets and
/// probability curves, shared across the tasks of a checking session. See
/// the [module documentation](self) for validity and concurrency rules.
#[derive(Debug, Default)]
pub struct SatCache {
    state_keys: ShardedMap<StateKey, StateId>,
    path_keys: ShardedMap<PathKey, PathId>,
    sets: ShardedMap<(StateId, u64), Arc<PiecewiseStateSet>>,
    curves: ShardedMap<(PathId, u64), Arc<ProbCurve>>,
    next_state_id: AtomicU64,
    next_path_id: AtomicU64,
    set_hits: AtomicU64,
    set_misses: AtomicU64,
    curve_hits: AtomicU64,
    curve_misses: AtomicU64,
}

impl SatCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        SatCache::default()
    }

    /// Interns a state formula, returning its structural id. Identical
    /// subtrees — anywhere, in any formula, from any thread — map to the
    /// same id.
    pub fn intern_state(&self, phi: &StateFormula) -> StateId {
        let key = match phi {
            StateFormula::True => StateKey::True,
            StateFormula::Ap(ap) => StateKey::Ap(ap.clone()),
            StateFormula::Not(inner) => StateKey::Not(self.intern_state(inner)),
            StateFormula::And(a, b) => StateKey::And(self.intern_state(a), self.intern_state(b)),
            StateFormula::Or(a, b) => StateKey::Or(self.intern_state(a), self.intern_state(b)),
            StateFormula::Steady { cmp, p, inner } => StateKey::Steady {
                cmp: *cmp,
                p_bits: p.to_bits(),
                inner: self.intern_state(inner),
            },
            StateFormula::Prob { cmp, p, path } => StateKey::Prob {
                cmp: *cmp,
                p_bits: p.to_bits(),
                path: self.intern_path(path),
            },
        };
        self.state_keys.get_or_insert_with(key, || {
            StateId(self.next_state_id.fetch_add(1, Ordering::Relaxed) as u32)
        })
    }

    /// Interns a path formula, returning its structural id.
    pub fn intern_path(&self, path: &PathFormula) -> PathId {
        let key = match path {
            PathFormula::Next { interval, inner } => PathKey::Next {
                lo_bits: interval.lo().to_bits(),
                hi_bits: interval.hi().to_bits(),
                inner: self.intern_state(inner),
            },
            PathFormula::Until { interval, lhs, rhs } => PathKey::Until {
                lo_bits: interval.lo().to_bits(),
                hi_bits: interval.hi().to_bits(),
                lhs: self.intern_state(lhs),
                rhs: self.intern_state(rhs),
            },
        };
        self.path_keys.get_or_insert_with(key, || {
            PathId(self.next_path_id.fetch_add(1, Ordering::Relaxed) as u32)
        })
    }

    /// Looks up a memoized satisfaction set for `(id, θ)`, counting the
    /// outcome as a hit or miss.
    pub(crate) fn lookup_set(&self, id: StateId, theta: f64) -> Option<Arc<PiecewiseStateSet>> {
        let found = self.sets.get(&(id, theta.to_bits()));
        match &found {
            Some(_) => self.set_hits.fetch_add(1, Ordering::Relaxed),
            None => self.set_misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Memoizes a satisfaction set for `(id, θ)`.
    pub(crate) fn store_set(&self, id: StateId, theta: f64, set: Arc<PiecewiseStateSet>) {
        self.sets.insert((id, theta.to_bits()), set);
    }

    /// Looks up a memoized probability curve for `(id, θ)`, counting the
    /// outcome.
    pub(crate) fn lookup_curve(&self, id: PathId, theta: f64) -> Option<Arc<ProbCurve>> {
        let found = self.curves.get(&(id, theta.to_bits()));
        match &found {
            Some(_) => self.curve_hits.fetch_add(1, Ordering::Relaxed),
            None => self.curve_misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Memoizes a probability curve for `(id, θ)`.
    pub(crate) fn store_curve(&self, id: PathId, theta: f64, curve: Arc<ProbCurve>) {
        self.curves.insert((id, theta.to_bits()), curve);
    }

    /// A snapshot of the hit/miss counters and table sizes.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            set_hits: self.set_hits.load(Ordering::Relaxed),
            set_misses: self.set_misses.load(Ordering::Relaxed),
            curve_hits: self.curve_hits.load(Ordering::Relaxed),
            curve_misses: self.curve_misses.load(Ordering::Relaxed),
            interned_state_formulas: self.state_keys.len(),
            interned_path_formulas: self.path_keys.len(),
            cached_sets: self.sets.len(),
            cached_curves: self.curves.len(),
        }
    }

    /// Drops every memoized set and curve (the interner is kept; ids remain
    /// stable). Use when the underlying trajectory is replaced rather than
    /// extended.
    pub fn invalidate(&self) {
        self.sets.clear();
        self.curves.clear();
    }

    /// Snapshots the cache into its serializable form: dense id-indexed
    /// interner tables plus the memo tables, everything bitwise.
    ///
    /// Interning always assigns children before parents, so the tables are
    /// prefix-closed by construction. If a racing intern lands mid-export
    /// (snapshots are taken on idle sessions, but the cache is shared), the
    /// largest mutually consistent prefix of both tables is kept and memo
    /// entries referring past it are dropped — a smaller-but-sound export,
    /// never a dangling reference.
    #[must_use]
    pub fn export(&self) -> SatCacheExport {
        let mut states: Vec<(u32, StateKeyExport)> = Vec::with_capacity(self.state_keys.len());
        self.state_keys.for_each(|key, id| {
            let exported = match key {
                StateKey::True => StateKeyExport::True,
                StateKey::Ap(ap) => StateKeyExport::Ap(ap.clone()),
                StateKey::Not(a) => StateKeyExport::Not(a.0),
                StateKey::And(a, b) => StateKeyExport::And(a.0, b.0),
                StateKey::Or(a, b) => StateKeyExport::Or(a.0, b.0),
                StateKey::Steady { cmp, p_bits, inner } => StateKeyExport::Steady {
                    cmp: *cmp,
                    p_bits: *p_bits,
                    inner: inner.0,
                },
                StateKey::Prob { cmp, p_bits, path } => StateKeyExport::Prob {
                    cmp: *cmp,
                    p_bits: *p_bits,
                    path: path.0,
                },
            };
            states.push((id.0, exported));
        });
        let mut paths: Vec<(u32, PathKeyExport)> = Vec::with_capacity(self.path_keys.len());
        self.path_keys.for_each(|key, id| {
            let exported = match key {
                PathKey::Next {
                    lo_bits,
                    hi_bits,
                    inner,
                } => PathKeyExport::Next {
                    lo_bits: *lo_bits,
                    hi_bits: *hi_bits,
                    inner: inner.0,
                },
                PathKey::Until {
                    lo_bits,
                    hi_bits,
                    lhs,
                    rhs,
                } => PathKeyExport::Until {
                    lo_bits: *lo_bits,
                    hi_bits: *hi_bits,
                    lhs: lhs.0,
                    rhs: rhs.0,
                },
            };
            paths.push((id.0, exported));
        });
        states.sort_by_key(|(id, _)| *id);
        paths.sort_by_key(|(id, _)| *id);
        // Contiguous prefixes (a gap means a racing intern mid-walk).
        let mut n_states = states
            .iter()
            .enumerate()
            .take_while(|(i, (id, _))| *id as usize == *i)
            .count();
        let mut n_paths = paths
            .iter()
            .enumerate()
            .take_while(|(i, (id, _))| *id as usize == *i)
            .count();
        // Shrink to the largest mutually closed prefix pair: state keys may
        // reference path ids and vice versa.
        loop {
            let state_ok = |key: &StateKeyExport, i: usize, np: u32| match key {
                StateKeyExport::True | StateKeyExport::Ap(_) => true,
                StateKeyExport::Not(a) => (*a as usize) < i,
                StateKeyExport::And(a, b) | StateKeyExport::Or(a, b) => {
                    (*a as usize) < i && (*b as usize) < i
                }
                StateKeyExport::Steady { inner, .. } => (*inner as usize) < i,
                StateKeyExport::Prob { path, .. } => *path < np,
            };
            let path_ok = |key: &PathKeyExport, ns: u32| match key {
                PathKeyExport::Next { inner, .. } => *inner < ns,
                PathKeyExport::Until { lhs, rhs, .. } => *lhs < ns && *rhs < ns,
            };
            let bad_state = states[..n_states]
                .iter()
                .enumerate()
                .position(|(i, (_, key))| !state_ok(key, i, n_paths as u32));
            if let Some(i) = bad_state {
                n_states = i;
                continue;
            }
            let bad_path = paths[..n_paths]
                .iter()
                .position(|(_, key)| !path_ok(key, n_states as u32));
            if let Some(i) = bad_path {
                n_paths = i;
                continue;
            }
            break;
        }
        states.truncate(n_states);
        paths.truncate(n_paths);

        let mut sets: Vec<(u32, u64, PiecewiseStateSet)> = Vec::new();
        self.sets.for_each(|(id, theta_bits), set| {
            if (id.0 as usize) < n_states {
                sets.push((id.0, *theta_bits, (**set).clone()));
            }
        });
        sets.sort_by_key(|(id, theta_bits, _)| (*id, *theta_bits));
        let mut curves: Vec<(u32, u64, crate::checker::CurveExport)> = Vec::new();
        self.curves.for_each(|(id, theta_bits), curve| {
            if (id.0 as usize) < n_paths {
                curves.push((id.0, *theta_bits, curve.export()));
            }
        });
        curves.sort_by_key(|(id, theta_bits, _)| (*id, *theta_bits));

        SatCacheExport {
            state_keys: states.into_iter().map(|(_, key)| key).collect(),
            path_keys: paths.into_iter().map(|(_, key)| key).collect(),
            sets,
            curves,
        }
    }

    /// Rebuilds a cache from an export: keys are re-interned at their
    /// original ids (so future structural interning of the same formulas
    /// finds the memoized entries), memoized sets are installed as-is, and
    /// curves are revalidated through [`crate::checker::ProbCurve::from_export`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::CslError::InvalidArgument`] on out-of-range child
    /// references or structurally incoherent curve data — a corrupt export
    /// yields no cache rather than a panicking one.
    pub fn from_export(export: &SatCacheExport) -> Result<SatCache, crate::CslError> {
        use crate::CslError;
        let ns = export.state_keys.len();
        let np = export.path_keys.len();
        let state_ref = |child: u32, i: usize| {
            if (child as usize) < i {
                Ok(StateId(child))
            } else {
                Err(CslError::InvalidArgument(format!(
                    "cache export: state key {i} references child {child}"
                )))
            }
        };
        let cache = SatCache::new();
        for (i, key) in export.state_keys.iter().enumerate() {
            let key = match key {
                StateKeyExport::True => StateKey::True,
                StateKeyExport::Ap(ap) => StateKey::Ap(ap.clone()),
                StateKeyExport::Not(a) => StateKey::Not(state_ref(*a, i)?),
                StateKeyExport::And(a, b) => StateKey::And(state_ref(*a, i)?, state_ref(*b, i)?),
                StateKeyExport::Or(a, b) => StateKey::Or(state_ref(*a, i)?, state_ref(*b, i)?),
                StateKeyExport::Steady { cmp, p_bits, inner } => StateKey::Steady {
                    cmp: *cmp,
                    p_bits: *p_bits,
                    inner: state_ref(*inner, i)?,
                },
                StateKeyExport::Prob { cmp, p_bits, path } => {
                    if (*path as usize) >= np {
                        return Err(CslError::InvalidArgument(format!(
                            "cache export: state key {i} references path {path}, \
                             table has {np}"
                        )));
                    }
                    StateKey::Prob {
                        cmp: *cmp,
                        p_bits: *p_bits,
                        path: PathId(*path),
                    }
                }
            };
            cache.state_keys.insert(key, StateId(i as u32));
        }
        for (i, key) in export.path_keys.iter().enumerate() {
            let check = |child: u32| {
                if (child as usize) < ns {
                    Ok(StateId(child))
                } else {
                    Err(CslError::InvalidArgument(format!(
                        "cache export: path key {i} references state {child}, \
                         table has {ns}"
                    )))
                }
            };
            let key = match key {
                PathKeyExport::Next {
                    lo_bits,
                    hi_bits,
                    inner,
                } => PathKey::Next {
                    lo_bits: *lo_bits,
                    hi_bits: *hi_bits,
                    inner: check(*inner)?,
                },
                PathKeyExport::Until {
                    lo_bits,
                    hi_bits,
                    lhs,
                    rhs,
                } => PathKey::Until {
                    lo_bits: *lo_bits,
                    hi_bits: *hi_bits,
                    lhs: check(*lhs)?,
                    rhs: check(*rhs)?,
                },
            };
            cache.path_keys.insert(key, PathId(i as u32));
        }
        cache.next_state_id.store(ns as u64, Ordering::Relaxed);
        cache.next_path_id.store(np as u64, Ordering::Relaxed);
        for (id, theta_bits, set) in &export.sets {
            if (*id as usize) >= ns {
                return Err(CslError::InvalidArgument(format!(
                    "cache export: memoized set references state id {id}"
                )));
            }
            cache
                .sets
                .insert((StateId(*id), *theta_bits), Arc::new(set.clone()));
        }
        for (id, theta_bits, curve) in &export.curves {
            if (*id as usize) >= np {
                return Err(CslError::InvalidArgument(format!(
                    "cache export: memoized curve references path id {id}"
                )));
            }
            let rebuilt =
                crate::checker::ProbCurve::from_export(f64::from_bits(*theta_bits), curve.clone())?;
            cache
                .curves
                .insert((PathId(*id), *theta_bits), Arc::new(rebuilt));
        }
        Ok(cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_path_formula, parse_state_formula};

    #[test]
    fn structural_sharing_across_formulas() {
        let cache = SatCache::new();
        let a = parse_state_formula("P{<0.5}[ healthy U[0,1] infected ]").unwrap();
        let b = parse_state_formula("!P{<0.5}[ healthy U[0,1] infected ]").unwrap();
        let ia = cache.intern_state(&a);
        let ib = cache.intern_state(&b);
        assert_ne!(ia, ib);
        // The shared P-subformula interned once; `b` adds only the Not node.
        if let StateFormula::Not(inner) = &b {
            assert_eq!(cache.intern_state(inner), ia);
        } else {
            panic!("expected Not");
        }
        let stats = cache.stats();
        // tt-free formula tree: healthy, infected, until-path, P, Not.
        assert_eq!(stats.interned_state_formulas, 4);
        assert_eq!(stats.interned_path_formulas, 1);
    }

    #[test]
    fn interning_is_idempotent() {
        let cache = SatCache::new();
        let phi = parse_state_formula("a & (b | !a)").unwrap();
        let first = cache.intern_state(&phi);
        let second = cache.intern_state(&phi);
        assert_eq!(first, second);
        let n = cache.stats().interned_state_formulas;
        let _ = cache.intern_state(&phi);
        assert_eq!(cache.stats().interned_state_formulas, n);
    }

    #[test]
    fn probability_bounds_key_by_bits() {
        let cache = SatCache::new();
        let a = parse_state_formula("P{<0.5}[ tt U[0,1] x ]").unwrap();
        let b = parse_state_formula("P{<0.25}[ tt U[0,1] x ]").unwrap();
        assert_ne!(cache.intern_state(&a), cache.intern_state(&b));
        // Same bound, same interval — shared path id.
        let pa = parse_path_formula("tt U[0,1] x").unwrap();
        let pb = parse_path_formula("tt U[0,2] x").unwrap();
        assert_ne!(cache.intern_path(&pa), cache.intern_path(&pb));
        // `a` and `b` share one until path; `pb` adds the second.
        assert_eq!(cache.stats().interned_path_formulas, 2);
    }

    #[test]
    fn memo_tables_count_hits_and_misses() {
        let cache = SatCache::new();
        let phi = parse_state_formula("tt").unwrap();
        let id = cache.intern_state(&phi);
        assert!(cache.lookup_set(id, 1.0).is_none());
        let set = Arc::new(PiecewiseStateSet::constant(0.0, 1.0, vec![true]).unwrap());
        cache.store_set(id, 1.0, set);
        assert!(cache.lookup_set(id, 1.0).is_some());
        // A different horizon is a different key.
        assert!(cache.lookup_set(id, 2.0).is_none());
        let stats = cache.stats();
        assert_eq!(stats.set_hits, 1);
        assert_eq!(stats.set_misses, 2);
        assert_eq!(stats.cached_sets, 1);
        cache.invalidate();
        assert_eq!(cache.stats().cached_sets, 0);
        // Interner survives invalidation.
        assert_eq!(cache.intern_state(&phi), id);
    }

    #[test]
    fn export_import_round_trip_preserves_ids_and_memos() {
        let cache = SatCache::new();
        let phi = parse_state_formula("!P{<0.5}[ healthy U[0,1] infected ]").unwrap();
        let psi = parse_state_formula("S{>0.1}[ infected ]").unwrap();
        let sid = cache.intern_state(&phi);
        let _ = cache.intern_state(&psi);
        let path = parse_path_formula("healthy U[0,1] infected").unwrap();
        let pid = cache.intern_path(&path);
        let set = Arc::new(
            PiecewiseStateSet::new(
                0.0,
                2.0,
                vec![1.0],
                vec![vec![true, false], vec![false, true]],
            )
            .unwrap(),
        );
        cache.store_set(sid, 2.0, Arc::clone(&set));
        let curve = Arc::new(
            crate::checker::ProbCurve::from_export(
                1.0,
                crate::checker::CurveExport::Point(vec![0.25, 0.75]),
            )
            .unwrap(),
        );
        cache.store_curve(pid, 1.0, Arc::clone(&curve));

        let export = cache.export();
        let restored = SatCache::from_export(&export).unwrap();

        // Structural re-interning lands on the exact ids the memos use...
        assert_eq!(restored.intern_state(&phi), sid);
        assert_eq!(restored.intern_path(&path), pid);
        // ...so the memoized artifacts are found, bitwise intact.
        let got = restored.lookup_set(sid, 2.0).expect("set survives");
        assert_eq!(*got, *set);
        let got = restored.lookup_curve(pid, 1.0).expect("curve survives");
        let (a, b) = (got.probs_at(0.5), curve.probs_at(0.5));
        assert_eq!(
            a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        // A second export round-trips to the same value.
        assert_eq!(restored.export(), export);
        // Fresh interns allocate past the imported tables, never colliding.
        let fresh = parse_state_formula("neverseen").unwrap();
        let fid = restored.intern_state(&fresh);
        assert!(fid.0 as usize >= export.state_keys.len());
    }

    #[test]
    fn import_rejects_out_of_bounds_references() {
        let mut export = SatCacheExport::default();
        export.state_keys.push(StateKeyExport::Not(5));
        assert!(SatCache::from_export(&export).is_err());
        let mut export = SatCacheExport::default();
        export.path_keys.push(PathKeyExport::Next {
            lo_bits: 0,
            hi_bits: 0,
            inner: 3,
        });
        assert!(SatCache::from_export(&export).is_err());
    }

    #[test]
    fn cache_is_send_and_sync() {
        fn assert_sync<T: Send + Sync>() {}
        assert_sync::<SatCache>();
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let cache = SatCache::new();
        let pool = mfcsl_pool::ThreadPool::new(8);
        let phis: Vec<StateFormula> = (0..4)
            .map(|i| parse_state_formula(&format!("P{{<0.5}}[ a{i} U[0,1] b ]")).unwrap())
            .collect();
        let mut ids = vec![None; 64];
        pool.scope(|s| {
            for (i, slot) in ids.iter_mut().enumerate() {
                let cache = &cache;
                let phi = &phis[i % 4];
                s.spawn(move || *slot = Some(cache.intern_state(phi)));
            }
        });
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.unwrap(), ids[i % 4].unwrap());
        }
        // 4 Prob nodes + 4 a_i + shared b = 9 state formulas, 4 paths.
        assert_eq!(cache.stats().interned_state_formulas, 9);
        assert_eq!(cache.stats().interned_path_formulas, 4);
    }
}
