//! Hash-consed formulas and memoized satisfaction sets.
//!
//! Checking a batch of MF-CSL formulas over one mean-field trajectory
//! re-derives the same CSL subformulas again and again: `E` and `EP`
//! operators share atomic propositions, until operands, and often whole
//! `P`-subformulas. [`SatCache`] interns every state and path formula it
//! sees into structural ids (so syntactically identical subtrees get the
//! same id regardless of where they appear) and memoizes the expensive
//! products of the checker — [`PiecewiseStateSet`]s and [`ProbCurve`]s —
//! keyed by `(formula id, evaluation horizon θ)`.
//!
//! # Validity
//!
//! A cache is only meaningful for a fixed local model trajectory and fixed
//! tolerances: entries are *not* invalidated automatically. The analysis
//! engine in `mfcsl-core` owns one cache per `(initial occupancy,
//! tolerances)` pair and relies on trajectory *extension* keeping the
//! already-solved prefix bitwise identical, so entries computed against a
//! shorter trajectory stay exact after the horizon grows (every entry only
//! ever examined times within its own solve horizon).
//!
//! # Concurrency
//!
//! The cache is `Send + Sync`: the tables are sharded reader–writer maps
//! ([`ShardedMap`]) handing out `Arc`s, the counters are atomics. Pool
//! tasks of one checking session therefore share a single cache. Two
//! tasks may race to compute the same entry — both compute, last write
//! wins — which is harmless *because* every cached artifact is a
//! deterministic, bitwise-reproducible function of `(formula, θ)` over
//! the fixed trajectory: the winner stores exactly the bytes the loser
//! would have.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mfcsl_pool::shard::ShardedMap;

use crate::checker::ProbCurve;
use crate::nested::PiecewiseStateSet;
use crate::syntax::{Comparison, PathFormula, StateFormula};

/// Interned id of a state formula (structurally shared).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StateId(u32);

/// Interned id of a path formula (structurally shared).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PathId(u32);

/// Structural key of a state formula with children resolved to ids and
/// probability bounds keyed by their bit patterns (`f64::to_bits`), so two
/// bounds compare equal exactly when the checker would treat them
/// identically.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum StateKey {
    True,
    Ap(String),
    Not(StateId),
    And(StateId, StateId),
    Or(StateId, StateId),
    Steady {
        cmp: Comparison,
        p_bits: u64,
        inner: StateId,
    },
    Prob {
        cmp: Comparison,
        p_bits: u64,
        path: PathId,
    },
}

/// Structural key of a path formula.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum PathKey {
    Next {
        lo_bits: u64,
        hi_bits: u64,
        inner: StateId,
    },
    Until {
        lo_bits: u64,
        hi_bits: u64,
        lhs: StateId,
        rhs: StateId,
    },
}

/// Counters and sizes of a [`SatCache`], as reported by
/// [`SatCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Satisfaction-set lookups that found a memoized entry.
    pub set_hits: u64,
    /// Satisfaction-set lookups that had to compute.
    pub set_misses: u64,
    /// Probability-curve lookups that found a memoized entry.
    pub curve_hits: u64,
    /// Probability-curve lookups that had to compute.
    pub curve_misses: u64,
    /// Distinct state formulas interned.
    pub interned_state_formulas: usize,
    /// Distinct path formulas interned.
    pub interned_path_formulas: usize,
    /// Memoized satisfaction sets currently stored.
    pub cached_sets: usize,
    /// Memoized probability curves currently stored.
    pub cached_curves: usize,
}

/// Hash-consing interner plus memo tables for satisfaction sets and
/// probability curves, shared across the tasks of a checking session. See
/// the [module documentation](self) for validity and concurrency rules.
#[derive(Debug, Default)]
pub struct SatCache {
    state_keys: ShardedMap<StateKey, StateId>,
    path_keys: ShardedMap<PathKey, PathId>,
    sets: ShardedMap<(StateId, u64), Arc<PiecewiseStateSet>>,
    curves: ShardedMap<(PathId, u64), Arc<ProbCurve>>,
    next_state_id: AtomicU64,
    next_path_id: AtomicU64,
    set_hits: AtomicU64,
    set_misses: AtomicU64,
    curve_hits: AtomicU64,
    curve_misses: AtomicU64,
}

impl SatCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        SatCache::default()
    }

    /// Interns a state formula, returning its structural id. Identical
    /// subtrees — anywhere, in any formula, from any thread — map to the
    /// same id.
    pub fn intern_state(&self, phi: &StateFormula) -> StateId {
        let key = match phi {
            StateFormula::True => StateKey::True,
            StateFormula::Ap(ap) => StateKey::Ap(ap.clone()),
            StateFormula::Not(inner) => StateKey::Not(self.intern_state(inner)),
            StateFormula::And(a, b) => StateKey::And(self.intern_state(a), self.intern_state(b)),
            StateFormula::Or(a, b) => StateKey::Or(self.intern_state(a), self.intern_state(b)),
            StateFormula::Steady { cmp, p, inner } => StateKey::Steady {
                cmp: *cmp,
                p_bits: p.to_bits(),
                inner: self.intern_state(inner),
            },
            StateFormula::Prob { cmp, p, path } => StateKey::Prob {
                cmp: *cmp,
                p_bits: p.to_bits(),
                path: self.intern_path(path),
            },
        };
        self.state_keys.get_or_insert_with(key, || {
            StateId(self.next_state_id.fetch_add(1, Ordering::Relaxed) as u32)
        })
    }

    /// Interns a path formula, returning its structural id.
    pub fn intern_path(&self, path: &PathFormula) -> PathId {
        let key = match path {
            PathFormula::Next { interval, inner } => PathKey::Next {
                lo_bits: interval.lo().to_bits(),
                hi_bits: interval.hi().to_bits(),
                inner: self.intern_state(inner),
            },
            PathFormula::Until { interval, lhs, rhs } => PathKey::Until {
                lo_bits: interval.lo().to_bits(),
                hi_bits: interval.hi().to_bits(),
                lhs: self.intern_state(lhs),
                rhs: self.intern_state(rhs),
            },
        };
        self.path_keys.get_or_insert_with(key, || {
            PathId(self.next_path_id.fetch_add(1, Ordering::Relaxed) as u32)
        })
    }

    /// Looks up a memoized satisfaction set for `(id, θ)`, counting the
    /// outcome as a hit or miss.
    pub(crate) fn lookup_set(&self, id: StateId, theta: f64) -> Option<Arc<PiecewiseStateSet>> {
        let found = self.sets.get(&(id, theta.to_bits()));
        match &found {
            Some(_) => self.set_hits.fetch_add(1, Ordering::Relaxed),
            None => self.set_misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Memoizes a satisfaction set for `(id, θ)`.
    pub(crate) fn store_set(&self, id: StateId, theta: f64, set: Arc<PiecewiseStateSet>) {
        self.sets.insert((id, theta.to_bits()), set);
    }

    /// Looks up a memoized probability curve for `(id, θ)`, counting the
    /// outcome.
    pub(crate) fn lookup_curve(&self, id: PathId, theta: f64) -> Option<Arc<ProbCurve>> {
        let found = self.curves.get(&(id, theta.to_bits()));
        match &found {
            Some(_) => self.curve_hits.fetch_add(1, Ordering::Relaxed),
            None => self.curve_misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Memoizes a probability curve for `(id, θ)`.
    pub(crate) fn store_curve(&self, id: PathId, theta: f64, curve: Arc<ProbCurve>) {
        self.curves.insert((id, theta.to_bits()), curve);
    }

    /// A snapshot of the hit/miss counters and table sizes.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            set_hits: self.set_hits.load(Ordering::Relaxed),
            set_misses: self.set_misses.load(Ordering::Relaxed),
            curve_hits: self.curve_hits.load(Ordering::Relaxed),
            curve_misses: self.curve_misses.load(Ordering::Relaxed),
            interned_state_formulas: self.state_keys.len(),
            interned_path_formulas: self.path_keys.len(),
            cached_sets: self.sets.len(),
            cached_curves: self.curves.len(),
        }
    }

    /// Drops every memoized set and curve (the interner is kept; ids remain
    /// stable). Use when the underlying trajectory is replaced rather than
    /// extended.
    pub fn invalidate(&self) {
        self.sets.clear();
        self.curves.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_path_formula, parse_state_formula};

    #[test]
    fn structural_sharing_across_formulas() {
        let cache = SatCache::new();
        let a = parse_state_formula("P{<0.5}[ healthy U[0,1] infected ]").unwrap();
        let b = parse_state_formula("!P{<0.5}[ healthy U[0,1] infected ]").unwrap();
        let ia = cache.intern_state(&a);
        let ib = cache.intern_state(&b);
        assert_ne!(ia, ib);
        // The shared P-subformula interned once; `b` adds only the Not node.
        if let StateFormula::Not(inner) = &b {
            assert_eq!(cache.intern_state(inner), ia);
        } else {
            panic!("expected Not");
        }
        let stats = cache.stats();
        // tt-free formula tree: healthy, infected, until-path, P, Not.
        assert_eq!(stats.interned_state_formulas, 4);
        assert_eq!(stats.interned_path_formulas, 1);
    }

    #[test]
    fn interning_is_idempotent() {
        let cache = SatCache::new();
        let phi = parse_state_formula("a & (b | !a)").unwrap();
        let first = cache.intern_state(&phi);
        let second = cache.intern_state(&phi);
        assert_eq!(first, second);
        let n = cache.stats().interned_state_formulas;
        let _ = cache.intern_state(&phi);
        assert_eq!(cache.stats().interned_state_formulas, n);
    }

    #[test]
    fn probability_bounds_key_by_bits() {
        let cache = SatCache::new();
        let a = parse_state_formula("P{<0.5}[ tt U[0,1] x ]").unwrap();
        let b = parse_state_formula("P{<0.25}[ tt U[0,1] x ]").unwrap();
        assert_ne!(cache.intern_state(&a), cache.intern_state(&b));
        // Same bound, same interval — shared path id.
        let pa = parse_path_formula("tt U[0,1] x").unwrap();
        let pb = parse_path_formula("tt U[0,2] x").unwrap();
        assert_ne!(cache.intern_path(&pa), cache.intern_path(&pb));
        // `a` and `b` share one until path; `pb` adds the second.
        assert_eq!(cache.stats().interned_path_formulas, 2);
    }

    #[test]
    fn memo_tables_count_hits_and_misses() {
        let cache = SatCache::new();
        let phi = parse_state_formula("tt").unwrap();
        let id = cache.intern_state(&phi);
        assert!(cache.lookup_set(id, 1.0).is_none());
        let set = Arc::new(PiecewiseStateSet::constant(0.0, 1.0, vec![true]).unwrap());
        cache.store_set(id, 1.0, set);
        assert!(cache.lookup_set(id, 1.0).is_some());
        // A different horizon is a different key.
        assert!(cache.lookup_set(id, 2.0).is_none());
        let stats = cache.stats();
        assert_eq!(stats.set_hits, 1);
        assert_eq!(stats.set_misses, 2);
        assert_eq!(stats.cached_sets, 1);
        cache.invalidate();
        assert_eq!(cache.stats().cached_sets, 0);
        // Interner survives invalidation.
        assert_eq!(cache.intern_state(&phi), id);
    }

    #[test]
    fn cache_is_send_and_sync() {
        fn assert_sync<T: Send + Sync>() {}
        assert_sync::<SatCache>();
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let cache = SatCache::new();
        let pool = mfcsl_pool::ThreadPool::new(8);
        let phis: Vec<StateFormula> = (0..4)
            .map(|i| parse_state_formula(&format!("P{{<0.5}}[ a{i} U[0,1] b ]")).unwrap())
            .collect();
        let mut ids = vec![None; 64];
        pool.scope(|s| {
            for (i, slot) in ids.iter_mut().enumerate() {
                let cache = &cache;
                let phi = &phis[i % 4];
                s.spawn(move || *slot = Some(cache.intern_state(phi)));
            }
        });
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.unwrap(), ids[i % 4].unwrap());
        }
        // 4 Prob nodes + 4 a_i + shared b = 9 state formulas, 4 paths.
        assert_eq!(cache.stats().interned_state_formulas, 9);
        assert_eq!(cache.stats().interned_path_formulas, 4);
    }
}
