//! Classic CSL model checking on time-homogeneous CTMCs.
//!
//! Implements the standard algorithms of Baier, Haverkort, Hermanns &
//! Katoen \[18\] that Sec. IV-A of the paper recalls: satisfaction sets are
//! developed recursively over the parse tree; the interval until
//! `Φ₁ U^[t₁,t₂] Φ₂` is the two-phase reachability product of Eq. 3 on the
//! modified chains `𝓜[¬Φ₁]` and `𝓜[¬Φ₁∨Φ₂]`; the steady-state operator is
//! resolved through BSCC analysis.
//!
//! This checker is both a deliverable in its own right (it checks the local
//! model frozen at an occupancy vector) and the oracle used by the test
//! suite to validate the inhomogeneous algorithms on constant-rate chains.

use mfcsl_ctmc::absorb::{complement_states, make_absorbing};
use mfcsl_ctmc::steady::steady_state_from;
use mfcsl_ctmc::transient::transient_matrix;
use mfcsl_ctmc::Ctmc;

use crate::syntax::{PathFormula, StateFormula, TimeInterval};
use crate::{CslError, Tolerances};

/// Computes the satisfaction set of `phi` as a boolean vector over states.
///
/// # Errors
///
/// Returns [`CslError::UnknownAtomicProposition`] for propositions absent
/// from the model alphabet, and propagates numerical errors.
///
/// # Example
///
/// ```
/// use mfcsl_csl::homogeneous::sat;
/// use mfcsl_csl::{parse_state_formula, Tolerances};
/// use mfcsl_ctmc::CtmcBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let c = CtmcBuilder::new()
///     .state("up", ["working"])
///     .state("down", ["failed"])
///     .transition("up", "down", 0.1)?
///     .transition("down", "up", 2.0)?
///     .build()?;
/// // "repair within 1 time unit is more than 80% likely"
/// let phi = parse_state_formula("P{>0.8}[ failed U[0,1] working ]")?;
/// let s = sat(&c, &phi, &Tolerances::default())?;
/// assert!(s[1]); // from `down`, repair at rate 2 beats 80% within t=1
/// # Ok(())
/// # }
/// ```
pub fn sat(ctmc: &Ctmc, phi: &StateFormula, tol: &Tolerances) -> Result<Vec<bool>, CslError> {
    tol.validate()?;
    sat_rec(ctmc, phi, tol)
}

fn sat_rec(ctmc: &Ctmc, phi: &StateFormula, tol: &Tolerances) -> Result<Vec<bool>, CslError> {
    let n = ctmc.n_states();
    match phi {
        StateFormula::True => Ok(vec![true; n]),
        StateFormula::Ap(ap) => {
            if !ctmc.labeling().alphabet().contains(ap) {
                return Err(CslError::UnknownAtomicProposition(ap.clone()));
            }
            Ok((0..n).map(|s| ctmc.labeling().has(s, ap)).collect())
        }
        StateFormula::Not(inner) => {
            let mut s = sat_rec(ctmc, inner, tol)?;
            for b in &mut s {
                *b = !*b;
            }
            Ok(s)
        }
        StateFormula::And(a, b) => {
            let sa = sat_rec(ctmc, a, tol)?;
            let sb = sat_rec(ctmc, b, tol)?;
            Ok(sa.iter().zip(&sb).map(|(x, y)| *x && *y).collect())
        }
        StateFormula::Or(a, b) => {
            let sa = sat_rec(ctmc, a, tol)?;
            let sb = sat_rec(ctmc, b, tol)?;
            Ok(sa.iter().zip(&sb).map(|(x, y)| *x || *y).collect())
        }
        StateFormula::Steady { cmp, p, inner } => {
            let sat_inner = sat_rec(ctmc, inner, tol)?;
            let probs = steady_probabilities(ctmc, &sat_inner)?;
            Ok(probs.iter().map(|&v| cmp.holds(v, *p)).collect())
        }
        StateFormula::Prob { cmp, p, path } => {
            let probs = path_probabilities(ctmc, path, tol)?;
            Ok(probs.iter().map(|&v| cmp.holds(v, *p)).collect())
        }
    }
}

/// Probability of the path formula holding from each state.
///
/// # Errors
///
/// See [`sat`].
pub fn path_probabilities(
    ctmc: &Ctmc,
    path: &PathFormula,
    tol: &Tolerances,
) -> Result<Vec<f64>, CslError> {
    match path {
        PathFormula::Until { interval, lhs, rhs } => {
            let sat1 = sat_rec(ctmc, lhs, tol)?;
            let sat2 = sat_rec(ctmc, rhs, tol)?;
            until_probabilities(ctmc, &sat1, &sat2, *interval, tol)
        }
        PathFormula::Next { interval, inner } => {
            let sat_inner = sat_rec(ctmc, inner, tol)?;
            next_probabilities(ctmc, &sat_inner, *interval)
        }
    }
}

/// The interval until of Eq. 3: for every start state `s`,
/// `Prob(s, Φ₁ U^[t₁,t₂] Φ₂)` given the satisfaction vectors of `Φ₁`/`Φ₂`.
///
/// # Errors
///
/// Returns [`CslError::InvalidArgument`] on shape mismatch and propagates
/// transient-analysis failures.
pub fn until_probabilities(
    ctmc: &Ctmc,
    sat1: &[bool],
    sat2: &[bool],
    interval: TimeInterval,
    tol: &Tolerances,
) -> Result<Vec<f64>, CslError> {
    let n = ctmc.n_states();
    if sat1.len() != n || sat2.len() != n {
        return Err(CslError::InvalidArgument(format!(
            "satisfaction vectors have lengths {}/{}, model has {n} states",
            sat1.len(),
            sat2.len()
        )));
    }
    let states1: Vec<usize> = (0..n).filter(|&s| sat1[s]).collect();
    let states2: Vec<usize> = (0..n).filter(|&s| sat2[s]).collect();
    // 𝓜[¬Φ₁ ∨ Φ₂]: absorb everything outside Φ₁ plus the goal states.
    let not1_or_2: Vec<usize> = (0..n).filter(|&s| !sat1[s] || sat2[s]).collect();
    let chain_b = make_absorbing(ctmc, &not1_or_2)?;
    let pi_b = transient_matrix(&chain_b, interval.hi() - interval.lo(), tol.transient_eps)?;

    if interval.starts_at_zero() {
        // Single-phase: Prob(s) = Σ_{s₂ ⊨ Φ₂} π^B_{s,s₂}(t₂).
        return Ok((0..n)
            .map(|s| states2.iter().map(|&s2| pi_b[(s, s2)]).sum())
            .collect());
    }
    // Two-phase: 𝓜[¬Φ₁] for [0, t₁], then 𝓜[¬Φ₁∨Φ₂] for [t₁, t₂].
    let not1 = complement_states(n, &states1);
    let chain_a = make_absorbing(ctmc, &not1)?;
    let pi_a = transient_matrix(&chain_a, interval.lo(), tol.transient_eps)?;
    Ok((0..n)
        .map(|s| {
            states1
                .iter()
                .map(|&s1| {
                    let inner: f64 = states2.iter().map(|&s2| pi_b[(s1, s2)]).sum();
                    pi_a[(s, s1)] * inner
                })
                .sum()
        })
        .collect())
}

/// The interval next: `Prob(s, X^[t₁,t₂] Φ) =
/// (e^{-E(s)t₁} − e^{-E(s)t₂}) · Σ_{s' ⊨ Φ} q(s,s')/E(s)`.
///
/// # Errors
///
/// Returns [`CslError::InvalidArgument`] on shape mismatch.
pub fn next_probabilities(
    ctmc: &Ctmc,
    sat_inner: &[bool],
    interval: TimeInterval,
) -> Result<Vec<f64>, CslError> {
    let n = ctmc.n_states();
    if sat_inner.len() != n {
        return Err(CslError::InvalidArgument(format!(
            "satisfaction vector has length {}, model has {n} states",
            sat_inner.len()
        )));
    }
    let q = ctmc.generator();
    Ok((0..n)
        .map(|s| {
            let exit = ctmc.exit_rate(s);
            if exit <= 0.0 {
                return 0.0;
            }
            let jump_prob: f64 = (0..n)
                .filter(|&j| j != s && sat_inner[j])
                .map(|j| q[(s, j)] / exit)
                .sum();
            let window = (-exit * interval.lo()).exp() - (-exit * interval.hi()).exp();
            window * jump_prob
        })
        .collect())
}

/// Long-run probability of sitting in a `Φ`-state, per start state:
/// `π^𝓜(s, Sat(Φ))` of Def. 4.
///
/// Handles reducible chains through BSCC absorption analysis.
///
/// # Errors
///
/// Returns [`CslError::InvalidArgument`] on shape mismatch and propagates
/// linear-algebra failures.
pub fn steady_probabilities(ctmc: &Ctmc, sat_inner: &[bool]) -> Result<Vec<f64>, CslError> {
    let n = ctmc.n_states();
    if sat_inner.len() != n {
        return Err(CslError::InvalidArgument(format!(
            "satisfaction vector has length {}, model has {n} states",
            sat_inner.len()
        )));
    }
    let mut out = vec![0.0; n];
    for s in 0..n {
        let mut delta = vec![0.0; n];
        delta[s] = 1.0;
        let pi = steady_state_from(ctmc, &delta)?;
        out[s] = (0..n).filter(|&j| sat_inner[j]).map(|j| pi[j]).sum();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_state_formula;
    use crate::syntax::Comparison;
    use mfcsl_ctmc::CtmcBuilder;

    /// The paper's virus local model frozen at an occupancy vector: a
    /// 3-state chain (not_infected, inactive, active).
    fn virus_frozen(k1_star: f64) -> Ctmc {
        CtmcBuilder::new()
            .state("s1", ["not_infected"])
            .state("s2", ["infected", "inactive"])
            .state("s3", ["infected", "active"])
            .transition("s1", "s2", k1_star)
            .unwrap()
            .transition("s2", "s1", 0.1)
            .unwrap()
            .transition("s2", "s3", 0.01)
            .unwrap()
            .transition("s3", "s2", 0.3)
            .unwrap()
            .transition("s3", "s1", 0.3)
            .unwrap()
            .build()
            .unwrap()
    }

    fn tol() -> Tolerances {
        Tolerances::default()
    }

    #[test]
    fn boolean_layers() {
        let c = virus_frozen(0.05);
        let phi = parse_state_formula("infected & !active").unwrap();
        assert_eq!(sat(&c, &phi, &tol()).unwrap(), vec![false, true, false]);
        let phi = parse_state_formula("not_infected | active").unwrap();
        assert_eq!(sat(&c, &phi, &tol()).unwrap(), vec![true, false, true]);
        assert_eq!(sat(&c, &StateFormula::True, &tol()).unwrap(), vec![true; 3]);
    }

    #[test]
    fn unknown_ap_is_reported() {
        let c = virus_frozen(0.05);
        let phi = parse_state_formula("infceted").unwrap(); // typo
        assert!(matches!(
            sat(&c, &phi, &tol()),
            Err(CslError::UnknownAtomicProposition(_))
        ));
    }

    #[test]
    fn until_zero_lower_bound_single_jump() {
        // From s1 with rate k1*, reaching `infected` within [0, 1] is
        // 1 - e^{-k1*} because infected states are absorbing in M[¬Φ₁∨Φ₂].
        let k = 0.05625;
        let c = virus_frozen(k);
        let sat1 = vec![true, false, false]; // not_infected
        let sat2 = vec![false, true, true]; // infected
        let p = until_probabilities(
            &c,
            &sat1,
            &sat2,
            TimeInterval::bounded_by(1.0).unwrap(),
            &tol(),
        )
        .unwrap();
        assert!((p[0] - (1.0 - (-k).exp())).abs() < 1e-10);
        // Infected states satisfy Φ₂ immediately.
        assert_eq!(p[1], 1.0);
        assert_eq!(p[2], 1.0);
    }

    #[test]
    fn until_with_positive_lower_bound() {
        // a -> b at rate r; formula a U[t1,t2] b. The path must still be in
        // a at... it may reach b before t1? No: Φ₁ = a only; if it jumps to
        // b before t1, it is absorbed in M[¬a] at b which does not satisfy
        // Φ₁ at time t1, so the mass is excluded. Hence
        // Prob = e^{-r t1} (1 - e^{-r (t2-t1)}).
        let c = CtmcBuilder::new()
            .state("a", ["a"])
            .state("b", ["b"])
            .transition("a", "b", 0.8)
            .unwrap()
            .build()
            .unwrap();
        let p = until_probabilities(
            &c,
            &[true, false],
            &[false, true],
            TimeInterval::new(0.5, 2.0).unwrap(),
            &tol(),
        )
        .unwrap();
        let r: f64 = 0.8;
        let exact = (-r * 0.5).exp() * (1.0 - (-r * 1.5).exp());
        assert!((p[0] - exact).abs() < 1e-10, "{p:?} vs {exact}");
        // From b: at t1 the state b does not satisfy Φ₁ ⇒ probability 0
        // under Eq. 3.
        assert_eq!(p[1], 0.0);
    }

    #[test]
    fn until_point_interval() {
        // [t, t]: must be in a Φ₂ ∧ (reached via Φ₁) state exactly at t.
        let c = CtmcBuilder::new()
            .state("a", ["a"])
            .state("b", ["b"])
            .transition("a", "b", 1.0)
            .unwrap()
            .transition("b", "a", 1.0)
            .unwrap()
            .build()
            .unwrap();
        let p = until_probabilities(
            &c,
            &[true, true],
            &[false, true],
            TimeInterval::new(1.0, 1.0).unwrap(),
            &tol(),
        )
        .unwrap();
        // Φ₁ = tt so phase A is the raw chain; phase B is instantaneous.
        let expected = mfcsl_ctmc::transient::transient_matrix(&c, 1.0, 1e-13).unwrap()[(0, 1)];
        assert!((p[0] - expected).abs() < 1e-10);
    }

    #[test]
    fn prob_operator_thresholds() {
        let c = virus_frozen(0.05625);
        // Prob(s1, ¬inf U[0,1] inf) = 1 - e^{-k₁*} ≈ 0.0547 < 0.3 ⇒ holds
        // at s1. Under standard CSL semantics, states already satisfying
        // Φ₂ (s2, s3 are infected) satisfy the until with probability 1,
        // so the strict `< 0.3` bound fails there. (The paper's worked
        // example instead reports 0 for s2/s3 — see EXPERIMENTS.md.)
        let phi = parse_state_formula("P{<0.3}[ not_infected U[0,1] infected ]").unwrap();
        let s = sat(&c, &phi, &tol()).unwrap();
        assert_eq!(s, vec![true, false, false]);
        let probs = path_probabilities(
            &c,
            &parse_state_formula("P{<0.3}[ not_infected U[0,1] infected ]")
                .map(|f| match f {
                    StateFormula::Prob { path, .. } => *path,
                    _ => unreachable!(),
                })
                .unwrap(),
            &tol(),
        )
        .unwrap();
        assert!((probs[0] - (1.0 - (-0.05625_f64).exp())).abs() < 1e-10);
        assert_eq!(probs[1], 1.0);
        assert_eq!(probs[2], 1.0);
    }

    #[test]
    fn next_operator() {
        let c = virus_frozen(0.5);
        // From s3 (exit rate 0.6), next state is s2 w.p. 0.5, s1 w.p. 0.5.
        let p = next_probabilities(
            &c,
            &[false, true, false],
            TimeInterval::bounded_by(10.0).unwrap(),
        )
        .unwrap();
        let window = 1.0 - (-0.6_f64 * 10.0).exp();
        assert!((p[2] - 0.5 * window).abs() < 1e-12);
        // Interval [t1, t2] scales by the exponential window.
        let p = next_probabilities(
            &c,
            &[false, true, false],
            TimeInterval::new(1.0, 2.0).unwrap(),
        )
        .unwrap();
        let window = (-0.6_f64).exp() - (-1.2_f64).exp();
        assert!((p[2] - 0.5 * window).abs() < 1e-12);
    }

    #[test]
    fn next_on_absorbing_state_is_zero() {
        let c = CtmcBuilder::new()
            .state("a", ["a"])
            .state("b", ["b"])
            .transition("a", "b", 1.0)
            .unwrap()
            .build()
            .unwrap();
        let p =
            next_probabilities(&c, &[true, true], TimeInterval::bounded_by(5.0).unwrap()).unwrap();
        assert_eq!(p[1], 0.0);
    }

    #[test]
    fn steady_operator_irreducible() {
        let c = virus_frozen(0.05);
        // Irreducible: same long-run probability from every state.
        let probs = steady_probabilities(&c, &[false, true, true]).unwrap();
        assert!((probs[0] - probs[1]).abs() < 1e-12);
        assert!((probs[1] - probs[2]).abs() < 1e-12);
        let phi =
            StateFormula::steady(Comparison::Gt, 0.99, StateFormula::ap("infected").not()).unwrap();
        // With tiny infection rate the chain is mostly not infected... check
        // consistency against the explicit steady state.
        let pi = mfcsl_ctmc::steady::steady_state(&c).unwrap();
        let expect = pi[0] > 0.99;
        let s = sat(&c, &phi, &tol()).unwrap();
        assert_eq!(s, vec![expect; 3]);
    }

    #[test]
    fn steady_operator_reducible_depends_on_state() {
        // t -> a (absorbing), t -> b (absorbing).
        let c = CtmcBuilder::new()
            .state("t", ["t"])
            .state("a", ["goal"])
            .state("b", ["other"])
            .transition("t", "a", 3.0)
            .unwrap()
            .transition("t", "b", 1.0)
            .unwrap()
            .build()
            .unwrap();
        let probs = steady_probabilities(&c, &[false, true, false]).unwrap();
        assert!((probs[0] - 0.75).abs() < 1e-12);
        assert_eq!(probs[1], 1.0);
        assert_eq!(probs[2], 0.0);
    }

    #[test]
    fn shape_validation() {
        let c = virus_frozen(0.05);
        assert!(until_probabilities(
            &c,
            &[true],
            &[true, false, false],
            TimeInterval::bounded_by(1.0).unwrap(),
            &tol()
        )
        .is_err());
        assert!(next_probabilities(&c, &[true], TimeInterval::bounded_by(1.0).unwrap()).is_err());
        assert!(steady_probabilities(&c, &[true]).is_err());
    }

    #[test]
    fn nested_formula_on_homogeneous_chain() {
        // Nesting is unproblematic in the homogeneous case: inner sat sets
        // are time-independent.
        let c = virus_frozen(2.0);
        let phi =
            parse_state_formula("P{>0.5}[ tt U[0,2] P{>0.9}[ infected U[0,5] not_infected ] ]")
                .unwrap();
        // Just verify it evaluates without error and yields a boolean per
        // state; detailed values are covered by the simpler tests.
        let s = sat(&c, &phi, &tol()).unwrap();
        assert_eq!(s.len(), 3);
    }
}
