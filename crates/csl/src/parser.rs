//! A text syntax for CSL formulas.
//!
//! ```text
//! state    := or
//! or       := and ('|' and)*
//! and      := unary ('&' unary)*
//! unary    := '!' unary | primary
//! primary  := 'tt' | 'ff' | ident | '(' state ')'
//!           | 'P' '{' cmp number '}' '[' path ']'
//!           | 'S' '{' cmp number '}' '[' state ']'
//! path     := 'X' interval state | state 'U' interval state
//! interval := '[' number ',' number ']'
//! cmp      := '<=' | '<' | '>=' | '>'
//! ```
//!
//! Example: `P{>0.9}[ infected U[0,15] P{>0.8}[ tt U[0,0.5] infected ] ]`.

use crate::syntax::{check_probability_bound, Comparison, PathFormula, StateFormula, TimeInterval};
use crate::CslError;

/// Parses a CSL state formula.
///
/// # Errors
///
/// Returns [`CslError::Parse`] with a byte position on malformed input and
/// [`CslError::InvalidArgument`] for out-of-range probability bounds or
/// time intervals.
///
/// # Example
///
/// ```
/// use mfcsl_csl::parse_state_formula;
///
/// let phi = parse_state_formula("P{<0.3}[ not_infected U[0,1] infected ]")?;
/// assert!(phi.is_time_dependent());
/// # Ok::<(), mfcsl_csl::CslError>(())
/// ```
pub fn parse_state_formula(input: &str) -> Result<StateFormula, CslError> {
    let mut p = Parser::new(input);
    let phi = p.state_formula()?;
    p.expect_end()?;
    Ok(phi)
}

/// Parses a CSL path formula (the argument of a `P` operator).
///
/// # Errors
///
/// See [`parse_state_formula`].
///
/// # Example
///
/// ```
/// use mfcsl_csl::parse_path_formula;
///
/// let phi = parse_path_formula("not_infected U[0,1] infected")?;
/// assert_eq!(phi.time_horizon(), 1.0);
/// # Ok::<(), mfcsl_csl::CslError>(())
/// ```
pub fn parse_path_formula(input: &str) -> Result<PathFormula, CslError> {
    let mut p = Parser::new(input);
    let phi = p.path_formula()?;
    p.expect_end()?;
    Ok(phi)
}

pub(crate) struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    pub(crate) fn new(input: &'a str) -> Self {
        Parser { input, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> CslError {
        CslError::Parse {
            position: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input.as_bytes()[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.input.as_bytes().get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), CslError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", expected as char)))
        }
    }

    fn try_eat(&mut self, expected: u8) -> bool {
        if self.peek() == Some(expected) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    pub(crate) fn expect_end(&mut self) -> Result<(), CslError> {
        if self.peek().is_some() {
            Err(self.error("unexpected trailing input"))
        } else {
            Ok(())
        }
    }

    fn ident(&mut self) -> Result<String, CslError> {
        self.skip_ws();
        let start = self.pos;
        let bytes = self.input.as_bytes();
        if self.pos >= bytes.len()
            || !(bytes[self.pos].is_ascii_alphabetic() || bytes[self.pos] == b'_')
        {
            return Err(self.error("expected an identifier"));
        }
        while self.pos < bytes.len()
            && (bytes[self.pos].is_ascii_alphanumeric() || bytes[self.pos] == b'_')
        {
            self.pos += 1;
        }
        Ok(self.input[start..self.pos].to_string())
    }

    pub(crate) fn number(&mut self) -> Result<f64, CslError> {
        self.skip_ws();
        let start = self.pos;
        let bytes = self.input.as_bytes();
        while self.pos < bytes.len()
            && (bytes[self.pos].is_ascii_digit()
                || bytes[self.pos] == b'.'
                || bytes[self.pos] == b'e'
                || bytes[self.pos] == b'E'
                || ((bytes[self.pos] == b'+' || bytes[self.pos] == b'-')
                    && self.pos > start
                    && (bytes[self.pos - 1] == b'e' || bytes[self.pos - 1] == b'E')))
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.error("expected a number"));
        }
        self.input[start..self.pos]
            .parse::<f64>()
            .map_err(|e| self.error(format!("bad number: {e}")))
    }

    pub(crate) fn comparison(&mut self) -> Result<Comparison, CslError> {
        self.skip_ws();
        let bytes = self.input.as_bytes();
        let rest = &bytes[self.pos..];
        let (cmp, len) = match rest {
            [b'<', b'=', ..] => (Comparison::Le, 2),
            [b'>', b'=', ..] => (Comparison::Ge, 2),
            [b'<', ..] => (Comparison::Lt, 1),
            [b'>', ..] => (Comparison::Gt, 1),
            _ => return Err(self.error("expected a comparison (<=, <, >, >=)")),
        };
        self.pos += len;
        Ok(cmp)
    }

    pub(crate) fn interval(&mut self) -> Result<TimeInterval, CslError> {
        self.eat(b'[')?;
        let lo = self.number()?;
        self.eat(b',')?;
        let hi = self.number()?;
        self.eat(b']')?;
        TimeInterval::new(lo, hi)
    }

    fn bound(&mut self) -> Result<(Comparison, f64), CslError> {
        self.eat(b'{')?;
        let cmp = self.comparison()?;
        let p = self.number()?;
        check_probability_bound(p)?;
        self.eat(b'}')?;
        Ok((cmp, p))
    }

    pub(crate) fn state_formula(&mut self) -> Result<StateFormula, CslError> {
        let mut lhs = self.and_expr()?;
        while self.try_eat(b'|') {
            let rhs = self.and_expr()?;
            lhs = lhs.or(rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<StateFormula, CslError> {
        let mut lhs = self.unary()?;
        while self.try_eat(b'&') {
            let rhs = self.unary()?;
            lhs = lhs.and(rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<StateFormula, CslError> {
        if self.try_eat(b'!') {
            return Ok(self.unary()?.not());
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<StateFormula, CslError> {
        match self.peek() {
            Some(b'(') => {
                self.eat(b'(')?;
                let inner = self.state_formula()?;
                self.eat(b')')?;
                Ok(inner)
            }
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                let saved = self.pos;
                let name = self.ident()?;
                match name.as_str() {
                    "tt" => Ok(StateFormula::True),
                    "ff" => Ok(StateFormula::True.not()),
                    "P" if self.peek() == Some(b'{') => {
                        let (cmp, p) = self.bound()?;
                        self.eat(b'[')?;
                        let path = self.path_formula()?;
                        self.eat(b']')?;
                        StateFormula::prob(cmp, p, path)
                    }
                    "S" if self.peek() == Some(b'{') => {
                        let (cmp, p) = self.bound()?;
                        self.eat(b'[')?;
                        let inner = self.state_formula()?;
                        self.eat(b']')?;
                        StateFormula::steady(cmp, p, inner)
                    }
                    // `U` and `X` are keywords of the path grammar; a state
                    // formula cannot start with them.
                    "U" | "X" => {
                        self.pos = saved;
                        Err(self.error(format!("`{name}` is a reserved path keyword")))
                    }
                    _ => Ok(StateFormula::Ap(name)),
                }
            }
            _ => Err(self.error("expected a state formula")),
        }
    }

    pub(crate) fn path_formula(&mut self) -> Result<PathFormula, CslError> {
        // `X` interval state — lookahead: ident `X` followed by `[`.
        self.skip_ws();
        let saved = self.pos;
        if self.peek().is_some_and(|c| c == b'X') {
            if let Ok(name) = self.ident() {
                if name == "X" && self.peek() == Some(b'[') {
                    let interval = self.interval()?;
                    let inner = self.state_formula()?;
                    return Ok(PathFormula::next(interval, inner));
                }
            }
            self.pos = saved;
        }
        let lhs = self.state_formula()?;
        self.skip_ws();
        let kw = self.ident().map_err(|_| self.error("expected `U`"))?;
        if kw != "U" {
            return Err(self.error(format!("expected `U`, found `{kw}`")));
        }
        let interval = self.interval()?;
        let rhs = self.state_formula()?;
        Ok(PathFormula::until(lhs, interval, rhs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_atoms_and_boolean_structure() {
        assert_eq!(parse_state_formula("tt").unwrap(), StateFormula::True);
        assert_eq!(parse_state_formula("ff").unwrap(), StateFormula::True.not());
        assert_eq!(
            parse_state_formula("infected").unwrap(),
            StateFormula::ap("infected")
        );
        let phi = parse_state_formula("!a & (b | c)").unwrap();
        assert_eq!(
            phi,
            StateFormula::ap("a")
                .not()
                .and(StateFormula::ap("b").or(StateFormula::ap("c")))
        );
    }

    #[test]
    fn precedence_and_binds_tighter_than_or() {
        let phi = parse_state_formula("a | b & c").unwrap();
        assert_eq!(
            phi,
            StateFormula::ap("a").or(StateFormula::ap("b").and(StateFormula::ap("c")))
        );
    }

    #[test]
    fn parses_until_with_interval() {
        let phi = parse_state_formula("P{<0.3}[ not_infected U[0,1] infected ]").unwrap();
        let expected = StateFormula::prob(
            Comparison::Lt,
            0.3,
            PathFormula::until(
                StateFormula::ap("not_infected"),
                TimeInterval::bounded_by(1.0).unwrap(),
                StateFormula::ap("infected"),
            ),
        )
        .unwrap();
        assert_eq!(phi, expected);
    }

    #[test]
    fn parses_the_papers_nested_formula() {
        let phi =
            parse_state_formula("P{>0.9}[ infected U[0,15] P{>0.8}[ tt U[0,0.5] infected ] ]")
                .unwrap();
        assert_eq!(phi.prob_nesting_depth(), 2);
        assert_eq!(phi.time_horizon(), 15.5);
    }

    #[test]
    fn parses_next() {
        let phi = parse_path_formula("X[0.5,2] goal").unwrap();
        assert_eq!(
            phi,
            PathFormula::next(
                TimeInterval::new(0.5, 2.0).unwrap(),
                StateFormula::ap("goal")
            )
        );
        // An AP that merely starts with X still parses as an AP.
        let phi = parse_path_formula("Xray U[0,1] done").unwrap();
        assert!(matches!(phi, PathFormula::Until { .. }));
    }

    #[test]
    fn parses_steady_state() {
        let phi = parse_state_formula("S{>=0.9}[ up ]").unwrap();
        assert_eq!(
            phi,
            StateFormula::steady(Comparison::Ge, 0.9, StateFormula::ap("up")).unwrap()
        );
    }

    #[test]
    fn comparison_variants() {
        for (text, cmp) in [
            ("<=", Comparison::Le),
            ("<", Comparison::Lt),
            (">", Comparison::Gt),
            (">=", Comparison::Ge),
        ] {
            let phi = parse_state_formula(&format!("P{{{text}0.5}}[ tt U[0,1] g ]")).unwrap();
            let until = PathFormula::until(
                StateFormula::True,
                TimeInterval::new(0.0, 1.0).unwrap(),
                StateFormula::ap("g"),
            );
            assert_eq!(phi, StateFormula::prob(cmp, 0.5, until).unwrap());
        }
    }

    #[test]
    fn p_and_s_as_plain_identifiers() {
        // Without a following `{`, P and S are ordinary propositions.
        assert_eq!(parse_state_formula("P").unwrap(), StateFormula::ap("P"));
        assert_eq!(
            parse_state_formula("S & P").unwrap(),
            StateFormula::ap("S").and(StateFormula::ap("P"))
        );
    }

    #[test]
    fn error_positions_and_messages() {
        let err = parse_state_formula("P{<0.3}[ a U[0,1] ").unwrap_err();
        assert!(matches!(err, CslError::Parse { .. }));
        let err = parse_state_formula("a &").unwrap_err();
        assert!(matches!(err, CslError::Parse { .. }));
        let err = parse_state_formula("a b").unwrap_err();
        assert!(err.to_string().contains("trailing"));
        let err = parse_state_formula("P{<1.5}[ tt U[0,1] g ]").unwrap_err();
        assert!(matches!(err, CslError::InvalidArgument(_)));
        let err = parse_state_formula("P{<0.5}[ tt U[3,1] g ]").unwrap_err();
        assert!(matches!(err, CslError::InvalidArgument(_)));
    }

    #[test]
    fn scientific_notation_numbers() {
        let phi = parse_state_formula("P{<1e-3}[ tt U[0,1.5e1] g ]").unwrap();
        let until = PathFormula::until(
            StateFormula::True,
            TimeInterval::new(0.0, 15.0).unwrap(),
            StateFormula::ap("g"),
        );
        assert_eq!(
            phi,
            StateFormula::prob(Comparison::Lt, 1e-3, until).unwrap()
        );
    }

    #[test]
    fn display_parse_round_trip() {
        let texts = [
            "P{<0.3}[ not_infected U[0,1] infected ]",
            "S{>=0.9}[ up & !down ]",
            "P{>0.9}[ infected U[0,15] P{>0.8}[ tt U[0,0.5] infected ] ]",
            "(a | b) & !c",
        ];
        for text in texts {
            let phi = parse_state_formula(text).unwrap();
            let again = parse_state_formula(&phi.to_string()).unwrap();
            assert_eq!(phi, again, "round trip failed for `{text}`");
        }
    }

    #[test]
    fn reserved_keywords_rejected_as_formula_start() {
        assert!(parse_state_formula("U").is_err());
        assert!(parse_state_formula("X").is_err());
    }
}

#[cfg(test)]
mod fuzz_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The parser never panics: any input yields Ok or a positioned Err.
        #[test]
        fn prop_parser_total(input in "\\PC{0,60}") {
            let _ = parse_state_formula(&input);
            let _ = parse_path_formula(&input);
        }

        /// Structured-ish inputs built from grammar fragments also never
        /// panic and, when they parse, round-trip through Display.
        #[test]
        fn prop_fragment_soup(
            parts in proptest::collection::vec(
                prop_oneof![
                    Just("P{>0.5}[".to_string()),
                    Just("S{<=0.1}[".to_string()),
                    Just("tt".to_string()),
                    Just("ap_x".to_string()),
                    Just("U[0,1]".to_string()),
                    Just("X[0,2]".to_string()),
                    Just("]".to_string()),
                    Just("&".to_string()),
                    Just("|".to_string()),
                    Just("!".to_string()),
                    Just("(".to_string()),
                    Just(")".to_string()),
                ],
                0..10,
            ),
        ) {
            let input = parts.join(" ");
            if let Ok(phi) = parse_state_formula(&input) {
                let again = parse_state_formula(&phi.to_string()).unwrap();
                prop_assert_eq!(phi, again);
            }
        }
    }
}
