//! CSL abstract syntax (Def. 3 of the paper).
//!
//! State formulas:
//! `Φ ::= tt | lap | ¬Φ | Φ∧Φ | S⋈p(Φ) | P⋈p(φ)`
//! and path formulas `φ ::= X^I Φ | Φ₁ U^I Φ₂`. Disjunction is provided as
//! a first-class variant for readability; semantically it is the usual
//! De Morgan abbreviation.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::CslError;

/// A comparison operator `⋈ ∈ {≤, <, >, ≥}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Comparison {
    /// `≤`
    Le,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `≥`
    Ge,
}

impl Comparison {
    /// Evaluates `value ⋈ bound`.
    ///
    /// # Example
    ///
    /// ```
    /// use mfcsl_csl::Comparison;
    ///
    /// assert!(Comparison::Lt.holds(0.072, 0.3));
    /// assert!(!Comparison::Ge.holds(0.2, 0.3));
    /// ```
    #[must_use]
    pub fn holds(self, value: f64, bound: f64) -> bool {
        match self {
            Comparison::Le => value <= bound,
            Comparison::Lt => value < bound,
            Comparison::Gt => value > bound,
            Comparison::Ge => value >= bound,
        }
    }

    /// Whether the comparison includes the bound itself (affects the
    /// open/closed-ness of satisfaction-interval endpoints).
    #[must_use]
    pub fn includes_bound(self) -> bool {
        matches!(self, Comparison::Le | Comparison::Ge)
    }

    /// The comparison satisfied on the *other* side of the bound
    /// (`¬(v ⋈ b)` is `v ⋈' b`).
    #[must_use]
    pub fn negated(self) -> Comparison {
        match self {
            Comparison::Le => Comparison::Gt,
            Comparison::Lt => Comparison::Ge,
            Comparison::Gt => Comparison::Le,
            Comparison::Ge => Comparison::Lt,
        }
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Comparison::Le => "<=",
            Comparison::Lt => "<",
            Comparison::Gt => ">",
            Comparison::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A closed time interval `[lo, hi] ⊆ ℝ≥0` attached to a path operator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeInterval {
    lo: f64,
    hi: f64,
}

impl TimeInterval {
    /// Creates the interval `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`CslError::InvalidArgument`] unless `0 ≤ lo ≤ hi < ∞`.
    pub fn new(lo: f64, hi: f64) -> Result<Self, CslError> {
        if !(lo >= 0.0) || !(hi >= lo) || !hi.is_finite() {
            return Err(CslError::InvalidArgument(format!(
                "time interval [{lo}, {hi}] must satisfy 0 <= lo <= hi < inf \
                 (the algorithms are for time-bounded properties)"
            )));
        }
        Ok(TimeInterval { lo, hi })
    }

    /// The interval `[0, hi]`.
    ///
    /// # Errors
    ///
    /// See [`TimeInterval::new`].
    pub fn bounded_by(hi: f64) -> Result<Self, CslError> {
        TimeInterval::new(0.0, hi)
    }

    /// Lower bound.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// `true` if the lower bound is zero.
    #[must_use]
    pub fn starts_at_zero(&self) -> bool {
        self.lo == 0.0
    }
}

impl fmt::Display for TimeInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{}]", self.lo, self.hi)
    }
}

/// A CSL state formula.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StateFormula {
    /// `tt` — true in every state.
    True,
    /// An atomic proposition `lap ∈ LAP`.
    Ap(String),
    /// Negation.
    Not(Box<StateFormula>),
    /// Conjunction.
    And(Box<StateFormula>, Box<StateFormula>),
    /// Disjunction (sugar, first-class for readability).
    Or(Box<StateFormula>, Box<StateFormula>),
    /// Steady-state operator `S⋈p(Φ)`.
    Steady {
        /// The comparison `⋈`.
        cmp: Comparison,
        /// The probability bound `p ∈ [0, 1]`.
        p: f64,
        /// The inner state formula.
        inner: Box<StateFormula>,
    },
    /// Probabilistic path operator `P⋈p(φ)`.
    Prob {
        /// The comparison `⋈`.
        cmp: Comparison,
        /// The probability bound `p ∈ [0, 1]`.
        p: f64,
        /// The path formula.
        path: Box<PathFormula>,
    },
}

/// A CSL path formula.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PathFormula {
    /// Interval next `X^I Φ`.
    Next {
        /// The time interval `I`.
        interval: TimeInterval,
        /// The post-condition.
        inner: StateFormula,
    },
    /// Interval until `Φ₁ U^I Φ₂`.
    Until {
        /// The time interval `I`.
        interval: TimeInterval,
        /// The invariant side `Φ₁`.
        lhs: StateFormula,
        /// The goal side `Φ₂`.
        rhs: StateFormula,
    },
}

impl StateFormula {
    /// Atomic proposition shorthand.
    #[must_use]
    pub fn ap(name: impl Into<String>) -> Self {
        StateFormula::Ap(name.into())
    }

    /// Negation shorthand. (Named after the logic operator on purpose;
    /// this is a consuming formula constructor, not `std::ops::Not`.)
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn not(self) -> Self {
        StateFormula::Not(Box::new(self))
    }

    /// Conjunction shorthand.
    #[must_use]
    pub fn and(self, rhs: StateFormula) -> Self {
        StateFormula::And(Box::new(self), Box::new(rhs))
    }

    /// Disjunction shorthand.
    #[must_use]
    pub fn or(self, rhs: StateFormula) -> Self {
        StateFormula::Or(Box::new(self), Box::new(rhs))
    }

    /// `P⋈p(φ)` shorthand.
    ///
    /// # Errors
    ///
    /// Returns [`CslError::InvalidArgument`] for `p ∉ [0, 1]`.
    pub fn prob(cmp: Comparison, p: f64, path: PathFormula) -> Result<Self, CslError> {
        check_probability_bound(p)?;
        Ok(StateFormula::Prob {
            cmp,
            p,
            path: Box::new(path),
        })
    }

    /// `S⋈p(Φ)` shorthand.
    ///
    /// # Errors
    ///
    /// Returns [`CslError::InvalidArgument`] for `p ∉ [0, 1]`.
    pub fn steady(cmp: Comparison, p: f64, inner: StateFormula) -> Result<Self, CslError> {
        check_probability_bound(p)?;
        Ok(StateFormula::Steady {
            cmp,
            p,
            inner: Box::new(inner),
        })
    }

    /// All atomic propositions appearing in the formula.
    #[must_use]
    pub fn atomic_propositions(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_aps(&mut out);
        out
    }

    fn collect_aps(&self, out: &mut BTreeSet<String>) {
        match self {
            StateFormula::True => {}
            StateFormula::Ap(ap) => {
                out.insert(ap.clone());
            }
            StateFormula::Not(inner) => inner.collect_aps(out),
            StateFormula::And(a, b) | StateFormula::Or(a, b) => {
                a.collect_aps(out);
                b.collect_aps(out);
            }
            StateFormula::Steady { inner, .. } => inner.collect_aps(out),
            StateFormula::Prob { path, .. } => match path.as_ref() {
                PathFormula::Next { inner, .. } => inner.collect_aps(out),
                PathFormula::Until { lhs, rhs, .. } => {
                    lhs.collect_aps(out);
                    rhs.collect_aps(out);
                }
            },
        }
    }

    /// `true` if the formula's truth value in a state can vary with the
    /// evaluation time (i.e. it contains a `P` operator; `S` is constant in
    /// time per Eq. 15 of the paper).
    #[must_use]
    pub fn is_time_dependent(&self) -> bool {
        match self {
            StateFormula::True | StateFormula::Ap(_) => false,
            StateFormula::Not(inner) => inner.is_time_dependent(),
            StateFormula::And(a, b) | StateFormula::Or(a, b) => {
                a.is_time_dependent() || b.is_time_dependent()
            }
            // A steady-state value is constant in time (Eq. 15).
            StateFormula::Steady { .. } => false,
            StateFormula::Prob { .. } => true,
        }
    }

    /// Nesting depth of probabilistic path operators (the paper notes the
    /// number of satisfaction-set discontinuity points is bounded by this).
    #[must_use]
    pub fn prob_nesting_depth(&self) -> usize {
        match self {
            StateFormula::True | StateFormula::Ap(_) => 0,
            StateFormula::Not(inner) => inner.prob_nesting_depth(),
            StateFormula::And(a, b) | StateFormula::Or(a, b) => {
                a.prob_nesting_depth().max(b.prob_nesting_depth())
            }
            StateFormula::Steady { inner, .. } => inner.prob_nesting_depth(),
            StateFormula::Prob { path, .. } => {
                1 + match path.as_ref() {
                    PathFormula::Next { inner, .. } => inner.prob_nesting_depth(),
                    PathFormula::Until { lhs, rhs, .. } => {
                        lhs.prob_nesting_depth().max(rhs.prob_nesting_depth())
                    }
                }
            }
        }
    }

    /// The furthest time the formula looks into the future when evaluated
    /// at a point in time (sum of nested interval upper bounds). The
    /// checker needs trajectories up to `θ + horizon`.
    #[must_use]
    pub fn time_horizon(&self) -> f64 {
        match self {
            StateFormula::True | StateFormula::Ap(_) => 0.0,
            StateFormula::Not(inner) | StateFormula::Steady { inner, .. } => inner.time_horizon(),
            StateFormula::And(a, b) | StateFormula::Or(a, b) => {
                a.time_horizon().max(b.time_horizon())
            }
            StateFormula::Prob { path, .. } => path.time_horizon(),
        }
    }
}

impl PathFormula {
    /// Interval until shorthand.
    #[must_use]
    pub fn until(lhs: StateFormula, interval: TimeInterval, rhs: StateFormula) -> Self {
        PathFormula::Until { interval, lhs, rhs }
    }

    /// Interval next shorthand.
    #[must_use]
    pub fn next(interval: TimeInterval, inner: StateFormula) -> Self {
        PathFormula::Next { interval, inner }
    }

    /// The furthest look-ahead of the path formula.
    #[must_use]
    pub fn time_horizon(&self) -> f64 {
        match self {
            PathFormula::Next { interval, inner } => interval.hi() + inner.time_horizon(),
            PathFormula::Until { interval, lhs, rhs } => {
                interval.hi() + lhs.time_horizon().max(rhs.time_horizon())
            }
        }
    }

    /// All atomic propositions in the path formula.
    #[must_use]
    pub fn atomic_propositions(&self) -> BTreeSet<String> {
        match self {
            PathFormula::Next { inner, .. } => inner.atomic_propositions(),
            PathFormula::Until { lhs, rhs, .. } => {
                let mut out = lhs.atomic_propositions();
                out.extend(rhs.atomic_propositions());
                out
            }
        }
    }
}

pub(crate) fn check_probability_bound(p: f64) -> Result<(), CslError> {
    if (0.0..=1.0).contains(&p) {
        Ok(())
    } else {
        Err(CslError::InvalidArgument(format!(
            "probability bound must be in [0, 1], got {p}"
        )))
    }
}

impl fmt::Display for StateFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateFormula::True => write!(f, "tt"),
            StateFormula::Ap(ap) => write!(f, "{ap}"),
            StateFormula::Not(inner) => write!(f, "!({inner})"),
            StateFormula::And(a, b) => write!(f, "({a} & {b})"),
            StateFormula::Or(a, b) => write!(f, "({a} | {b})"),
            StateFormula::Steady { cmp, p, inner } => write!(f, "S{{{cmp}{p}}}[ {inner} ]"),
            StateFormula::Prob { cmp, p, path } => write!(f, "P{{{cmp}{p}}}[ {path} ]"),
        }
    }
}

impl fmt::Display for PathFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathFormula::Next { interval, inner } => write!(f, "X{interval} {inner}"),
            PathFormula::Until { interval, lhs, rhs } => write!(f, "{lhs} U{interval} {rhs}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_semantics() {
        assert!(Comparison::Le.holds(0.3, 0.3));
        assert!(!Comparison::Lt.holds(0.3, 0.3));
        assert!(Comparison::Ge.holds(0.3, 0.3));
        assert!(!Comparison::Gt.holds(0.3, 0.3));
        assert!(Comparison::Le.includes_bound());
        assert!(!Comparison::Gt.includes_bound());
    }

    #[test]
    fn comparison_negation_partitions_the_line() {
        for cmp in [
            Comparison::Le,
            Comparison::Lt,
            Comparison::Gt,
            Comparison::Ge,
        ] {
            for v in [0.1, 0.3, 0.5] {
                assert_ne!(cmp.holds(v, 0.3), cmp.negated().holds(v, 0.3));
            }
        }
    }

    #[test]
    fn interval_validation() {
        assert!(TimeInterval::new(0.0, 5.0).is_ok());
        assert!(TimeInterval::new(2.0, 2.0).is_ok());
        assert!(TimeInterval::new(-1.0, 5.0).is_err());
        assert!(TimeInterval::new(3.0, 2.0).is_err());
        assert!(TimeInterval::new(0.0, f64::INFINITY).is_err());
        assert!(TimeInterval::bounded_by(1.0).unwrap().starts_at_zero());
    }

    #[test]
    fn probability_bounds_checked() {
        let u = PathFormula::until(
            StateFormula::True,
            TimeInterval::bounded_by(1.0).unwrap(),
            StateFormula::ap("goal"),
        );
        assert!(StateFormula::prob(Comparison::Gt, 1.5, u.clone()).is_err());
        assert!(StateFormula::prob(Comparison::Gt, 0.5, u).is_ok());
        assert!(StateFormula::steady(Comparison::Lt, -0.1, StateFormula::True).is_err());
    }

    #[test]
    fn ap_collection_and_time_dependence() {
        let phi = StateFormula::prob(
            Comparison::Gt,
            0.9,
            PathFormula::until(
                StateFormula::ap("infected"),
                TimeInterval::bounded_by(15.0).unwrap(),
                StateFormula::prob(
                    Comparison::Gt,
                    0.8,
                    PathFormula::until(
                        StateFormula::True,
                        TimeInterval::bounded_by(0.5).unwrap(),
                        StateFormula::ap("infected"),
                    ),
                )
                .unwrap(),
            ),
        )
        .unwrap();
        assert_eq!(
            phi.atomic_propositions().into_iter().collect::<Vec<_>>(),
            vec!["infected".to_string()]
        );
        assert!(phi.is_time_dependent());
        assert_eq!(phi.prob_nesting_depth(), 2);
        assert_eq!(phi.time_horizon(), 15.5);
        assert!(!StateFormula::ap("x")
            .and(StateFormula::True)
            .is_time_dependent());
        let s = StateFormula::steady(Comparison::Lt, 0.1, StateFormula::ap("x")).unwrap();
        assert!(!s.is_time_dependent());
    }

    #[test]
    fn display_round_trip_shape() {
        let phi = StateFormula::prob(
            Comparison::Lt,
            0.3,
            PathFormula::until(
                StateFormula::ap("not_infected"),
                TimeInterval::bounded_by(1.0).unwrap(),
                StateFormula::ap("infected"),
            ),
        )
        .unwrap();
        let s = phi.to_string();
        assert!(s.contains("P{<0.3}"));
        assert!(s.contains("U[0,1]"));
        let x = StateFormula::ap("a").or(StateFormula::ap("b").not());
        assert_eq!(x.to_string(), "(a | !(b))");
    }

    #[test]
    fn next_horizon() {
        let n = PathFormula::next(
            TimeInterval::new(0.5, 2.0).unwrap(),
            StateFormula::ap("goal"),
        );
        assert_eq!(n.time_horizon(), 2.0);
        assert_eq!(n.atomic_propositions().len(), 1);
    }
}
