//! The interval Next operator on the time-inhomogeneous local model.
//!
//! The paper omits Next from its main discussion (Sec. IV-A notes such
//! properties are rare in practice and defers to its reference \[19\]); it is
//! included here for completeness. For a start state `s` at evaluation time
//! `t`, with time-independent inner satisfaction set `A`:
//!
//! `Prob(s, X^[a,b] A, t) = ∫_{t+a}^{t+b} Σ_{j∈A} q_{sj}(τ) · e^{-∫_t^τ E_s(u) du} dτ`,
//!
//! i.e. the first jump lands in `A` and happens inside the window. The
//! integral is computed per state by a 2-dimensional ODE (survival
//! probability and accumulated success mass), split at `t+a` where the
//! integrand switches on.

use mfcsl_ctmc::inhomogeneous::TimeVaryingGenerator;
use mfcsl_math::Matrix;
use mfcsl_ode::problem::FnSystem;
use mfcsl_ode::recover::solve_recovering;
use mfcsl_ode::SolverWorkspace;

use crate::model::LocalTvModel;
use crate::syntax::TimeInterval;
use crate::{CslError, Tolerances};

/// Computes `Prob(s, X^I A, t)` for every start state `s` at evaluation
/// time `t`, given the (time-independent) satisfaction vector of the inner
/// formula.
///
/// # Errors
///
/// Returns [`CslError::InvalidArgument`] on shape mismatch or negative `t`
/// and propagates ODE failures.
pub fn next_probabilities<G: TimeVaryingGenerator>(
    model: &LocalTvModel<G>,
    sat_inner: &[bool],
    interval: TimeInterval,
    t: f64,
    tol: &Tolerances,
) -> Result<Vec<f64>, CslError> {
    let n = model.n_states();
    if sat_inner.len() != n {
        return Err(CslError::InvalidArgument(format!(
            "satisfaction vector has length {}, model has {n} states",
            sat_inner.len()
        )));
    }
    if !(t >= 0.0) || !t.is_finite() {
        return Err(CslError::InvalidArgument(format!(
            "evaluation time must be finite and non-negative, got {t}"
        )));
    }
    tol.validate()?;
    let gen = model.generator();
    let mut out = vec![0.0; n];
    for (s, out_s) in out.iter_mut().enumerate() {
        // State: y[0] = survival in s since t, y[1] = accumulated success.
        let in_window = move |tau: f64| tau >= t + interval.lo();
        let sys = FnSystem::new(2, move |tau: f64, y: &[f64], dy: &mut [f64]| {
            let mut q = Matrix::zeros(n, n);
            gen.write_generator(tau, &mut q);
            let exit = -q[(s, s)];
            dy[0] = -exit * y[0];
            dy[1] = if in_window(tau) {
                let into_goal: f64 = (0..n)
                    .filter(|&j| j != s && sat_inner[j])
                    .map(|j| q[(s, j)])
                    .sum();
                into_goal * y[0]
            } else {
                0.0
            };
        });
        // Split at t + a to keep the integrand smooth per segment.
        let mut ws = SolverWorkspace::new();
        let mid = solve_recovering(&sys, t, t + interval.lo(), &[1.0, 0.0], &tol.ode, &mut ws)?.0;
        let final_leg = solve_recovering(
            &sys,
            t + interval.lo(),
            t + interval.hi(),
            &mid.final_state(),
            &tol.ode,
            &mut ws,
        )?
        .0;
        *out_s = final_leg.final_state()[1].clamp(0.0, 1.0);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::homogeneous;
    use mfcsl_ctmc::inhomogeneous::{ConstGenerator, FnGenerator};
    use mfcsl_ctmc::{CtmcBuilder, Labeling};

    fn tol() -> Tolerances {
        let mut t = Tolerances::default();
        t.ode = t.ode.with_tolerances(1e-11, 1e-13);
        t
    }

    #[test]
    fn constant_rates_match_homogeneous_next() {
        let ctmc = CtmcBuilder::new()
            .state("a", ["a"])
            .state("b", ["b"])
            .state("c", ["c"])
            .transition("a", "b", 0.7)
            .unwrap()
            .transition("a", "c", 0.3)
            .unwrap()
            .transition("b", "a", 1.0)
            .unwrap()
            .build()
            .unwrap();
        let model = LocalTvModel::new(
            ConstGenerator::new(&ctmc),
            ctmc.labeling().clone(),
            ctmc.state_names().to_vec(),
        )
        .unwrap();
        let sat = [false, true, false];
        for interval in [
            TimeInterval::bounded_by(2.0).unwrap(),
            TimeInterval::new(0.5, 1.5).unwrap(),
        ] {
            let inhom = next_probabilities(&model, &sat, interval, 0.0, &tol()).unwrap();
            let hom = homogeneous::next_probabilities(&ctmc, &sat, interval).unwrap();
            for (a, b) in inhom.iter().zip(&hom) {
                assert!((a - b).abs() < 1e-8, "{inhom:?} vs {hom:?}");
            }
            // Time invariance for constant rates.
            let later = next_probabilities(&model, &sat, interval, 3.0, &tol()).unwrap();
            for (a, b) in inhom.iter().zip(&later) {
                assert!((a - b).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn analytic_time_varying_next() {
        // Single transition 0 -> 1 with rate r(τ) = τ. X^[0,b] from state 0
        // at time t: jump lands in state 1 with certainty, so
        // Prob = 1 - exp(-((t+b)² - t²)/2).
        let gen = FnGenerator::new(2, |tau: f64, q: &mut Matrix| {
            *q = Matrix::zeros(2, 2);
            q[(0, 0)] = -tau;
            q[(0, 1)] = tau;
        });
        let mut labels = Labeling::new(2);
        labels.add(0, "src");
        labels.add(1, "dst");
        let model = LocalTvModel::new(gen, labels, vec!["src".into(), "dst".into()]).unwrap();
        let b = 1.2;
        for &t in &[0.0, 0.8, 2.0] {
            let p = next_probabilities(
                &model,
                &[false, true],
                TimeInterval::bounded_by(b).unwrap(),
                t,
                &tol(),
            )
            .unwrap();
            let exact = 1.0 - (-(((t + b) * (t + b)) - t * t) / 2.0_f64).exp();
            assert!((p[0] - exact).abs() < 1e-8, "t = {t}: {} vs {exact}", p[0]);
            // Absorbing state: no next step at all.
            assert_eq!(p[1], 0.0);
        }
    }

    #[test]
    fn validation() {
        let gen = FnGenerator::new(2, |_tau: f64, q: &mut Matrix| {
            *q = Matrix::zeros(2, 2);
        });
        let model = LocalTvModel::new(gen, Labeling::new(2), vec!["a".into(), "b".into()]).unwrap();
        let iv = TimeInterval::bounded_by(1.0).unwrap();
        assert!(next_probabilities(&model, &[true], iv, 0.0, &tol()).is_err());
        assert!(next_probabilities(&model, &[true, true], iv, -1.0, &tol()).is_err());
    }
}
