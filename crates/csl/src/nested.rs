//! Time-varying-set reachability (Sec. IV-C of the paper).
//!
//! Nested until formulas make the inner satisfaction sets *time-dependent*:
//! `Γ₁(t)`, `Γ₂(t)` are piecewise-constant with finitely many
//! *discontinuity points* `T₁ < … < T_k`. The reachability probability
//! `π^{[¬Γ₁∨Γ₂]}(t', t'+T)` is computed on an extended chain with a single
//! fresh goal state `s*` (the paper's improvement over the state-space
//! doubling of \[14\], see [`crate::doubling`]):
//!
//! * within each inter-discontinuity interval, transitions into `Γ₂` states
//!   are redirected to `s*` and everything outside `Γ₁` is absorbing;
//! * at each discontinuity the carry-over matrix `ζ(T_i)` keeps probability
//!   mass in states that stay in `Γ₁`, moves mass to `s*` in states that
//!   turn into `Γ₂` states, and drops the rest (Eq. 9);
//! * starting in a `Γ₂` state counts as immediate success (Eq. 10);
//! * the time-dependent variant `Υ(t, t+T)` for `t ∈ [t', θ]` follows the
//!   appendix algorithm: propagate the combined Kolmogorov ODE (Eq. 12)
//!   between breakpoints (points where `t` *or* `t+T` crosses some `T_i`)
//!   and re-assemble the product at each breakpoint.

use mfcsl_ctmc::inhomogeneous::{
    flat_to_matrix, propagate_window, transition_matrix, TimeVaryingGenerator,
};
use mfcsl_math::Matrix;
use mfcsl_ode::Trajectory;

use crate::{CslError, Tolerances};

/// A piecewise-constant time-dependent set of states over a time domain.
///
/// The set is right-continuous: at a boundary `b` the *new* set applies.
///
/// # Example
///
/// ```
/// use mfcsl_csl::nested::PiecewiseStateSet;
///
/// # fn main() -> Result<(), mfcsl_csl::CslError> {
/// // {s2, s3} on [0, 10.443), {s1, s2, s3} on [10.443, 15].
/// let s = PiecewiseStateSet::new(
///     0.0,
///     15.0,
///     vec![10.443],
///     vec![vec![false, true, true], vec![true, true, true]],
/// )?;
/// assert!(!s.set_at(5.0)[0]);
/// assert!(s.set_at(12.0)[0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseStateSet {
    t_lo: f64,
    t_hi: f64,
    boundaries: Vec<f64>,
    sets: Vec<Vec<bool>>,
}

impl PiecewiseStateSet {
    /// Builds a piecewise set.
    ///
    /// # Errors
    ///
    /// Returns [`CslError::InvalidArgument`] if the domain is empty, the
    /// boundaries are not strictly increasing inside `(t_lo, t_hi)`, the
    /// number of sets is not `boundaries + 1`, or the sets differ in size.
    pub fn new(
        t_lo: f64,
        t_hi: f64,
        boundaries: Vec<f64>,
        sets: Vec<Vec<bool>>,
    ) -> Result<Self, CslError> {
        if !(t_hi >= t_lo) || !t_lo.is_finite() || !t_hi.is_finite() {
            return Err(CslError::InvalidArgument(format!(
                "invalid domain [{t_lo}, {t_hi}]"
            )));
        }
        if sets.len() != boundaries.len() + 1 {
            return Err(CslError::InvalidArgument(format!(
                "{} boundaries require {} sets, got {}",
                boundaries.len(),
                boundaries.len() + 1,
                sets.len()
            )));
        }
        if boundaries.windows(2).any(|w| !(w[0] < w[1]))
            || boundaries.iter().any(|&b| !(b > t_lo) || !(b < t_hi))
        {
            return Err(CslError::InvalidArgument(
                "boundaries must be strictly increasing and interior to the domain".into(),
            ));
        }
        let n = sets[0].len();
        if n == 0 || sets.iter().any(|s| s.len() != n) {
            return Err(CslError::InvalidArgument(
                "all sets must be nonempty and of equal size".into(),
            ));
        }
        Ok(PiecewiseStateSet {
            t_lo,
            t_hi,
            boundaries,
            sets,
        })
    }

    /// A set constant over the whole domain.
    ///
    /// # Errors
    ///
    /// See [`PiecewiseStateSet::new`].
    pub fn constant(t_lo: f64, t_hi: f64, set: Vec<bool>) -> Result<Self, CslError> {
        PiecewiseStateSet::new(t_lo, t_hi, Vec::new(), vec![set])
    }

    /// Number of states.
    #[must_use]
    pub fn n_states(&self) -> usize {
        self.sets[0].len()
    }

    /// Domain start.
    #[must_use]
    pub fn t_lo(&self) -> f64 {
        self.t_lo
    }

    /// Domain end.
    #[must_use]
    pub fn t_hi(&self) -> f64 {
        self.t_hi
    }

    /// The interior discontinuity points.
    #[must_use]
    pub fn boundaries(&self) -> &[f64] {
        &self.boundaries
    }

    /// The per-segment membership vectors (`boundaries().len() + 1` of
    /// them, in time order). Together with [`PiecewiseStateSet::t_lo`],
    /// [`PiecewiseStateSet::t_hi`] and [`PiecewiseStateSet::boundaries`]
    /// this is the full constructor input, so a set can be serialized and
    /// rebuilt bitwise through [`PiecewiseStateSet::new`].
    #[must_use]
    pub fn segment_sets(&self) -> &[Vec<bool>] {
        &self.sets
    }

    /// Index of the segment containing `t` (right-continuous; clamped to
    /// the domain).
    #[must_use]
    pub fn segment_index(&self, t: f64) -> usize {
        self.boundaries.partition_point(|&b| b <= t)
    }

    /// The set in force at time `t`.
    #[must_use]
    pub fn set_at(&self, t: f64) -> &[bool] {
        &self.sets[self.segment_index(t)]
    }

    /// The set in force *just before* time `t` (the left limit).
    #[must_use]
    pub fn set_before(&self, t: f64) -> &[bool] {
        let idx = self.boundaries.partition_point(|&b| b < t);
        &self.sets[idx]
    }

    /// `true` if the set never changes.
    #[must_use]
    pub fn is_constant(&self) -> bool {
        self.boundaries.is_empty()
    }

    /// Pointwise combination of two sets over the merged boundary grid.
    ///
    /// # Errors
    ///
    /// Returns [`CslError::InvalidArgument`] if domains or state counts
    /// differ.
    pub fn combine<F: Fn(bool, bool) -> bool>(
        &self,
        other: &PiecewiseStateSet,
        f: F,
    ) -> Result<PiecewiseStateSet, CslError> {
        if self.t_lo != other.t_lo || self.t_hi != other.t_hi {
            return Err(CslError::InvalidArgument(format!(
                "domains differ: [{}, {}] vs [{}, {}]",
                self.t_lo, self.t_hi, other.t_lo, other.t_hi
            )));
        }
        if self.n_states() != other.n_states() {
            return Err(CslError::InvalidArgument(format!(
                "state counts differ: {} vs {}",
                self.n_states(),
                other.n_states()
            )));
        }
        let mut boundaries: Vec<f64> = self
            .boundaries
            .iter()
            .chain(&other.boundaries)
            .copied()
            .collect();
        boundaries.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        boundaries.dedup();
        let mut sets = Vec::with_capacity(boundaries.len() + 1);
        // Representative time for each segment.
        for i in 0..=boundaries.len() {
            let rep = if i == 0 { self.t_lo } else { boundaries[i - 1] };
            let a = self.set_at(rep);
            let b = other.set_at(rep);
            sets.push(a.iter().zip(b).map(|(&x, &y)| f(x, y)).collect());
        }
        let merged = PiecewiseStateSet::new(self.t_lo, self.t_hi, boundaries, sets)?;
        Ok(merged.simplified())
    }

    /// Pointwise complement.
    #[must_use]
    pub fn complemented(&self) -> PiecewiseStateSet {
        PiecewiseStateSet {
            t_lo: self.t_lo,
            t_hi: self.t_hi,
            boundaries: self.boundaries.clone(),
            sets: self
                .sets
                .iter()
                .map(|s| s.iter().map(|&b| !b).collect())
                .collect(),
        }
    }

    /// Drops boundaries across which the set does not actually change.
    #[must_use]
    pub fn simplified(&self) -> PiecewiseStateSet {
        let mut boundaries = Vec::new();
        let mut sets = vec![self.sets[0].clone()];
        for (i, &b) in self.boundaries.iter().enumerate() {
            if self.sets[i + 1] != *sets.last().expect("nonempty") {
                boundaries.push(b);
                sets.push(self.sets[i + 1].clone());
            }
        }
        PiecewiseStateSet {
            t_lo: self.t_lo,
            t_hi: self.t_hi,
            boundaries,
            sets,
        }
    }
}

/// The pair `(Γ₁(t), Γ₂(t))` on a shared boundary grid.
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseSets {
    gamma1: PiecewiseStateSet,
    gamma2: PiecewiseStateSet,
}

impl PiecewiseSets {
    /// Combines two piecewise sets (domains and state counts must agree).
    ///
    /// # Errors
    ///
    /// See [`PiecewiseStateSet::combine`].
    pub fn new(gamma1: PiecewiseStateSet, gamma2: PiecewiseStateSet) -> Result<Self, CslError> {
        if gamma1.t_lo != gamma2.t_lo
            || gamma1.t_hi != gamma2.t_hi
            || gamma1.n_states() != gamma2.n_states()
        {
            return Err(CslError::InvalidArgument(
                "gamma1 and gamma2 must share domain and state count".into(),
            ));
        }
        Ok(PiecewiseSets { gamma1, gamma2 })
    }

    /// Number of (original) states.
    #[must_use]
    pub fn n_states(&self) -> usize {
        self.gamma1.n_states()
    }

    /// Domain start.
    #[must_use]
    pub fn t_lo(&self) -> f64 {
        self.gamma1.t_lo
    }

    /// Domain end.
    #[must_use]
    pub fn t_hi(&self) -> f64 {
        self.gamma1.t_hi
    }

    /// The invariant-side set `Γ₁`.
    #[must_use]
    pub fn gamma1(&self) -> &PiecewiseStateSet {
        &self.gamma1
    }

    /// The goal-side set `Γ₂`.
    #[must_use]
    pub fn gamma2(&self) -> &PiecewiseStateSet {
        &self.gamma2
    }

    /// All discontinuity points of either set, merged and sorted.
    #[must_use]
    pub fn boundaries(&self) -> Vec<f64> {
        let mut out: Vec<f64> = self
            .gamma1
            .boundaries
            .iter()
            .chain(&self.gamma2.boundaries)
            .copied()
            .collect();
        out.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        out.dedup();
        out
    }
}

/// The `(n+1)`-state extended chain of Sec. IV-C: original states plus the
/// fresh goal state `s* = n`. Transitions into `Γ₂(t)` states are redirected
/// to `s*`; states outside `Γ₁(t)\Γ₂(t)` are absorbing; `s*` is absorbing.
pub struct ExtendedGenerator<'a, G> {
    inner: &'a G,
    sets: &'a PiecewiseSets,
    /// Reusable `n×n` buffer for the inner generator — `write_generator`
    /// sits on the Kolmogorov hot path (7+ evaluations per solver step), so
    /// the base matrix is allocated once per wrapper, not per call.
    base: std::cell::RefCell<Matrix>,
}

impl<'a, G: TimeVaryingGenerator> ExtendedGenerator<'a, G> {
    /// Wraps the original generator with the piecewise sets.
    ///
    /// # Errors
    ///
    /// Returns [`CslError::InvalidArgument`] on a state-count mismatch.
    pub fn new(inner: &'a G, sets: &'a PiecewiseSets) -> Result<Self, CslError> {
        if inner.n_states() != sets.n_states() {
            return Err(CslError::InvalidArgument(format!(
                "generator has {} states, sets have {}",
                inner.n_states(),
                sets.n_states()
            )));
        }
        let n = inner.n_states();
        Ok(ExtendedGenerator {
            inner,
            sets,
            base: std::cell::RefCell::new(Matrix::zeros(n, n)),
        })
    }
}

impl<G: TimeVaryingGenerator> TimeVaryingGenerator for ExtendedGenerator<'_, G> {
    fn n_states(&self) -> usize {
        self.inner.n_states() + 1
    }

    fn write_generator(&self, t: f64, q: &mut Matrix) {
        let n = self.inner.n_states();
        let mut base = self.base.borrow_mut();
        self.inner.write_generator(t, &mut base);
        let base = &*base;
        let g1 = self.sets.gamma1.set_at(t);
        let g2 = self.sets.gamma2.set_at(t);
        for i in 0..=n {
            for j in 0..=n {
                q[(i, j)] = 0.0;
            }
        }
        for s in 0..n {
            let live = g1[s] && !g2[s];
            if !live {
                continue; // absorbing row
            }
            let mut row_sum = 0.0;
            for j in 0..n {
                if j == s {
                    continue;
                }
                let rate = base[(s, j)];
                if rate <= 0.0 {
                    continue;
                }
                if g2[j] {
                    q[(s, n)] += rate;
                } else {
                    q[(s, j)] += rate;
                }
                row_sum += rate;
            }
            q[(s, s)] = -row_sum;
        }
        // s* row stays zero (absorbing).
    }
}

/// Builds the carry-over matrix `ζ(T_i)` for a discontinuity of the sets:
/// mass in a state that remains live carries over; mass in a state that
/// becomes a goal state moves to `s*`; everything else is dropped.
fn zeta_matrix(sets: &PiecewiseSets, boundary: f64) -> Matrix {
    let n = sets.n_states();
    let g1_before = sets.gamma1.set_before(boundary);
    let g2_before = sets.gamma2.set_before(boundary);
    let g1_after = sets.gamma1.set_at(boundary);
    let g2_after = sets.gamma2.set_at(boundary);
    let mut z = Matrix::zeros(n + 1, n + 1);
    z[(n, n)] = 1.0;
    for s in 0..n {
        let was_live = g1_before[s] && !g2_before[s];
        if !was_live {
            continue;
        }
        if g2_after[s] {
            z[(s, n)] = 1.0;
        } else if g1_after[s] {
            z[(s, s)] = 1.0;
        }
        // otherwise the mass is lost (row stays zero).
    }
    z
}

/// Computes the full `Υ(t', t'+T)` product of Eq. 9 on the extended chain.
fn upsilon_product<G: TimeVaryingGenerator>(
    gen: &G,
    sets: &PiecewiseSets,
    t_prime: f64,
    big_t: f64,
    tol: &Tolerances,
) -> Result<Matrix, CslError> {
    let ext = ExtendedGenerator::new(gen, sets)?;
    let t_end = t_prime + big_t;
    let mut upsilon = Matrix::identity(gen.n_states() + 1);
    let mut cursor = t_prime;
    // A boundary exactly at the window's right edge still applies its ζ:
    // the goal set is right-continuous, so a witness at exactly t' + T is
    // judged against the *new* set (mass in a live state that turns into a
    // goal state at that instant succeeds).
    for &b in &sets.boundaries() {
        if b <= t_prime || b > t_end {
            continue;
        }
        let piece = transition_matrix(&ext, cursor, b - cursor, &tol.ode)?;
        upsilon = upsilon.matmul(&piece)?.matmul(&zeta_matrix(sets, b))?;
        cursor = b;
    }
    let piece = transition_matrix(&ext, cursor, t_end - cursor, &tol.ode)?;
    Ok(upsilon.matmul(&piece)?)
}

/// Computes `π^{[¬Γ₁∨Γ₂]}_{s,s*}(t', t'+T)` per start state (Eq. 10):
/// the probability of reaching a `Γ₂` state within `T` while staying in
/// `Γ₁`, with time-varying sets.
///
/// # Errors
///
/// Returns [`CslError::InvalidArgument`] if `[t', t'+T]` is not contained
/// in the sets' domain, and propagates ODE failures.
pub fn reach_probability<G: TimeVaryingGenerator>(
    gen: &G,
    sets: &PiecewiseSets,
    t_prime: f64,
    big_t: f64,
    tol: &Tolerances,
) -> Result<Vec<f64>, CslError> {
    check_window(sets, t_prime, big_t)?;
    tol.validate()?;
    let n = gen.n_states();
    let upsilon = upsilon_product(gen, sets, t_prime, big_t, tol)?;
    let g2 = sets.gamma2.set_at(t_prime);
    Ok((0..n)
        .map(|s| {
            let base = upsilon[(s, n)];
            if g2[s] {
                1.0
            } else {
                base.clamp(0.0, 1.0)
            }
        })
        .collect())
}

/// Time-dependent reachability `t ↦ π^{[¬Γ₁∨Γ₂]}_{s,s*}(t, t+T)` over
/// `t ∈ [t', θ]` (appendix algorithm).
#[derive(Debug)]
pub struct ReachEvaluator {
    n: usize,
    big_t: f64,
    /// Start time of each segment (breakpoints of the appendix algorithm).
    segment_starts: Vec<f64>,
    /// Dense `Υ(t, t+T)` per segment (flattened `(n+1)²` trajectories).
    segments: Vec<Trajectory>,
    /// Goal indicator data.
    gamma2: PiecewiseStateSet,
    t_lo: f64,
    t_hi: f64,
}

impl ReachEvaluator {
    /// Per-state reach probabilities at evaluation time `t` (clamped to
    /// the evaluator's `[t', θ]` range).
    #[must_use]
    pub fn probs_at(&self, t: f64) -> Vec<f64> {
        let t = t.clamp(self.t_lo, self.t_hi);
        // Right-continuous segment lookup.
        let idx = match self.segment_starts.partition_point(|&s| s <= t) {
            0 => 0,
            p => p - 1,
        };
        let m = flat_to_matrix(self.n + 1, &self.segments[idx].eval(t));
        let g2 = self.gamma2.set_at(t);
        (0..self.n)
            .map(|s| {
                if g2[s] {
                    1.0
                } else {
                    m[(s, self.n)].clamp(0.0, 1.0)
                }
            })
            .collect()
    }

    /// Probability for one state at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[must_use]
    pub fn prob_state_at(&self, s: usize, t: f64) -> f64 {
        assert!(s < self.n, "state index {s} out of range");
        self.probs_at(t)[s]
    }

    /// The breakpoints at which `Υ` was re-assembled.
    #[must_use]
    pub fn breakpoints(&self) -> &[f64] {
        &self.segment_starts
    }

    /// The reachability window length `T`.
    #[must_use]
    pub fn horizon(&self) -> f64 {
        self.big_t
    }

    /// Decomposes the evaluator into its constructor data, for snapshot
    /// serialization: `(n, T, segment_starts, segments, gamma2, t_lo,
    /// t_hi)`.
    #[must_use]
    pub(crate) fn export_parts(
        &self,
    ) -> (usize, f64, Vec<f64>, Vec<Trajectory>, PiecewiseStateSet, f64, f64) {
        (
            self.n,
            self.big_t,
            self.segment_starts.clone(),
            self.segments.clone(),
            self.gamma2.clone(),
            self.t_lo,
            self.t_hi,
        )
    }

    /// Rebuilds an evaluator from exported parts, validating the structural
    /// coherence a corrupt snapshot could violate.
    pub(crate) fn from_parts(
        n: usize,
        big_t: f64,
        segment_starts: Vec<f64>,
        segments: Vec<Trajectory>,
        gamma2: PiecewiseStateSet,
        t_lo: f64,
        t_hi: f64,
    ) -> Result<ReachEvaluator, CslError> {
        if n == 0 || gamma2.n_states() != n {
            return Err(CslError::InvalidArgument(format!(
                "reach evaluator parts disagree: n = {n}, goal set has {} states",
                gamma2.n_states()
            )));
        }
        if segments.is_empty() || segments.len() != segment_starts.len() {
            return Err(CslError::InvalidArgument(format!(
                "reach evaluator needs one trajectory per segment start \
                 ({} starts, {} trajectories)",
                segment_starts.len(),
                segments.len()
            )));
        }
        let flat = (n + 1) * (n + 1);
        if segments.iter().any(|s| s.dim() != flat) {
            return Err(CslError::InvalidArgument(format!(
                "reach segment trajectories must have dimension {flat}"
            )));
        }
        if !(big_t >= 0.0) || !big_t.is_finite() || !(t_hi >= t_lo) || !t_lo.is_finite() {
            return Err(CslError::InvalidArgument(format!(
                "invalid reach evaluator window T = {big_t}, range [{t_lo}, {t_hi}]"
            )));
        }
        if segment_starts.iter().any(|s| !s.is_finite())
            || segment_starts.windows(2).any(|w| w[0] >= w[1])
        {
            return Err(CslError::InvalidArgument(
                "reach segment starts must be finite and strictly increasing".into(),
            ));
        }
        Ok(ReachEvaluator {
            n,
            big_t,
            segment_starts,
            segments,
            gamma2,
            t_lo,
            t_hi,
        })
    }
}

/// Builds the time-dependent reach evaluator per the appendix algorithm:
/// between breakpoints (where `t` or `t+T` crosses a set discontinuity)
/// `Υ(t, t+T)` evolves by the combined Kolmogorov ODE (Eq. 12); at each
/// breakpoint it is re-assembled from the Eq. 9 product.
///
/// # Errors
///
/// Returns [`CslError::InvalidArgument`] if `[t', θ+T]` exceeds the sets'
/// domain, and propagates ODE failures.
pub fn reach_evaluator<G: TimeVaryingGenerator>(
    gen: &G,
    sets: &PiecewiseSets,
    t_prime: f64,
    theta: f64,
    big_t: f64,
    tol: &Tolerances,
) -> Result<ReachEvaluator, CslError> {
    if !(theta >= t_prime) {
        return Err(CslError::InvalidArgument(format!(
            "evaluation range [{t_prime}, {theta}] is reversed"
        )));
    }
    check_window(sets, t_prime, big_t)?;
    check_window(sets, theta, big_t)?;
    tol.validate()?;
    let ext = ExtendedGenerator::new(gen, sets)?;
    // Breakpoints: where t or t+T hits a discontinuity of the sets.
    let mut breaks: Vec<f64> = Vec::new();
    for &b in &sets.boundaries() {
        for candidate in [b, b - big_t] {
            if candidate > t_prime + tol.root_tol && candidate < theta - tol.root_tol {
                breaks.push(candidate);
            }
        }
    }
    breaks.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    breaks.dedup_by(|a, b| (*a - *b).abs() <= tol.root_tol);

    let mut segment_starts = vec![t_prime];
    segment_starts.extend(breaks.iter().copied());
    let mut segments = Vec::with_capacity(segment_starts.len());
    for (i, &start) in segment_starts.iter().enumerate() {
        let end = segment_starts.get(i + 1).copied().unwrap_or(theta);
        let init = upsilon_product(gen, sets, start, big_t, tol)?;
        let traj = propagate_window(&ext, &init, start, end.max(start), big_t, &tol.ode)?;
        segments.push(traj);
    }
    Ok(ReachEvaluator {
        n: gen.n_states(),
        big_t,
        segment_starts,
        segments,
        gamma2: sets.gamma2.clone(),
        t_lo: t_prime,
        t_hi: theta,
    })
}

fn check_window(sets: &PiecewiseSets, t_prime: f64, big_t: f64) -> Result<(), CslError> {
    if !(big_t >= 0.0) || !big_t.is_finite() {
        return Err(CslError::InvalidArgument(format!(
            "reachability horizon must be finite and non-negative, got {big_t}"
        )));
    }
    if t_prime < sets.t_lo() - 1e-12 || t_prime + big_t > sets.t_hi() + 1e-12 {
        return Err(CslError::InvalidArgument(format!(
            "window [{t_prime}, {}] exceeds the sets' domain [{}, {}]",
            t_prime + big_t,
            sets.t_lo(),
            sets.t_hi()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LocalTvModel;
    use crate::syntax::TimeInterval;
    use crate::until;
    use mfcsl_ctmc::inhomogeneous::{ConstGenerator, FnGenerator};
    use mfcsl_ctmc::CtmcBuilder;

    fn tol() -> Tolerances {
        let mut t = Tolerances::default();
        t.ode = t.ode.with_tolerances(1e-11, 1e-13);
        t
    }

    fn chain3() -> mfcsl_ctmc::Ctmc {
        CtmcBuilder::new()
            .state("s1", ["healthy"])
            .state("s2", ["sick"])
            .state("s3", ["dead"])
            .transition("s1", "s2", 0.6)
            .unwrap()
            .transition("s2", "s1", 0.3)
            .unwrap()
            .transition("s2", "s3", 0.5)
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn piecewise_set_lookup_is_right_continuous() {
        let s = PiecewiseStateSet::new(
            0.0,
            10.0,
            vec![3.0, 7.0],
            vec![vec![true, false], vec![false, false], vec![true, true]],
        )
        .unwrap();
        assert_eq!(s.set_at(0.0), &[true, false]);
        assert_eq!(s.set_at(3.0), &[false, false]);
        assert_eq!(s.set_before(3.0), &[true, false]);
        assert_eq!(s.set_at(7.0), &[true, true]);
        assert_eq!(s.set_at(99.0), &[true, true]);
        assert_eq!(s.segment_index(2.9), 0);
        assert_eq!(s.segment_index(3.0), 1);
    }

    #[test]
    fn piecewise_set_validation() {
        assert!(PiecewiseStateSet::new(0.0, 1.0, vec![], vec![]).is_err());
        assert!(PiecewiseStateSet::new(1.0, 0.0, vec![], vec![vec![true]]).is_err());
        assert!(
            PiecewiseStateSet::new(0.0, 1.0, vec![2.0], vec![vec![true], vec![false]]).is_err()
        );
        assert!(
            PiecewiseStateSet::new(0.0, 1.0, vec![0.5], vec![vec![true], vec![false, true]])
                .is_err()
        );
        assert!(PiecewiseStateSet::new(
            0.0,
            1.0,
            vec![0.5, 0.5],
            vec![vec![true], vec![false], vec![true]]
        )
        .is_err());
    }

    #[test]
    fn combine_and_simplify() {
        let a = PiecewiseStateSet::new(
            0.0,
            10.0,
            vec![4.0],
            vec![vec![true, false], vec![false, false]],
        )
        .unwrap();
        let b = PiecewiseStateSet::new(
            0.0,
            10.0,
            vec![6.0],
            vec![vec![true, true], vec![true, false]],
        )
        .unwrap();
        let and = a.combine(&b, |x, y| x && y).unwrap();
        assert_eq!(and.set_at(0.0), &[true, false]);
        assert_eq!(and.set_at(5.0), &[false, false]);
        assert_eq!(and.set_at(7.0), &[false, false]);
        // The 6.0 boundary is dropped because nothing changes across it.
        assert_eq!(and.boundaries(), &[4.0]);
        let comp = a.complemented();
        assert_eq!(comp.set_at(0.0), &[false, true]);
    }

    #[test]
    fn constant_sets_match_single_until() {
        // With constant sets the nested machinery must agree with the
        // single-until machinery (Γ₁ = Φ₁, Γ₂ = Φ₂, interval [0, T]).
        let ctmc = chain3();
        let gen = ConstGenerator::new(&ctmc);
        let sat1 = vec![true, true, false];
        let sat2 = vec![false, false, true];
        let sets = PiecewiseSets::new(
            PiecewiseStateSet::constant(0.0, 5.0, sat1.clone()).unwrap(),
            PiecewiseStateSet::constant(0.0, 5.0, sat2.clone()).unwrap(),
        )
        .unwrap();
        let nested = reach_probability(&gen, &sets, 0.0, 2.0, &tol()).unwrap();
        let model = LocalTvModel::new(
            ConstGenerator::new(&ctmc),
            ctmc.labeling().clone(),
            ctmc.state_names().to_vec(),
        )
        .unwrap();
        let single = until::until_probabilities(
            &model,
            &sat1,
            &sat2,
            TimeInterval::bounded_by(2.0).unwrap(),
            &tol(),
        )
        .unwrap();
        for (a, b) in nested.iter().zip(&single) {
            assert!((a - b).abs() < 1e-7, "{nested:?} vs {single:?}");
        }
    }

    #[test]
    fn goal_set_switching_on_gains_probability() {
        // Γ₂ empty on [0, 1), {s2} on [1, 3]: reaching the goal within 2
        // time units from s1 requires being in s2 at some point after t=1.
        let ctmc = chain3();
        let gen = ConstGenerator::new(&ctmc);
        let g1 = PiecewiseStateSet::constant(0.0, 5.0, vec![true, true, false]).unwrap();
        let g2 = PiecewiseStateSet::new(
            0.0,
            5.0,
            vec![1.0],
            vec![vec![false, false, false], vec![false, true, false]],
        )
        .unwrap();
        let sets = PiecewiseSets::new(g1, g2).unwrap();
        let p = reach_probability(&gen, &sets, 0.0, 2.0, &tol()).unwrap();
        // Reference: mass in s2 at t=1 (staying in {s1,s2}) is converted to
        // the goal by ζ, plus paths that move into s2 during [1, 2].
        // Cross-check against a hand-constructed two-phase computation:
        // phase 1 on [0,1]: chain with s3 absorbing; at t=1 mass in s2 goes
        // to goal; phase 2 on [1,2]: from s1, reach s2 (absorbing) while
        // avoiding s3.
        let masked = until::MaskedGenerator::new(&gen, vec![false, false, true]).unwrap();
        let phase1 =
            mfcsl_ctmc::inhomogeneous::transition_matrix(&masked, 0.0, 1.0, &tol().ode).unwrap();
        // Phase 2: s2 and s3 absorbing, measure arrival at s2.
        let masked2 = until::MaskedGenerator::new(&gen, vec![false, true, true]).unwrap();
        let phase2 =
            mfcsl_ctmc::inhomogeneous::transition_matrix(&masked2, 1.0, 1.0, &tol().ode).unwrap();
        let expected = phase1[(0, 1)] + phase1[(0, 0)] * phase2[(0, 1)];
        assert!(
            (p[0] - expected).abs() < 1e-7,
            "got {}, expected {expected}",
            p[0]
        );
        // s3 is never live and never a goal.
        assert_eq!(p[2], 0.0);
    }

    #[test]
    fn losing_invariant_drops_mass() {
        // Γ₁ = {s1, s2} on [0, 1), {s1} on [1, ∞): mass sitting in s2 at
        // t=1 is lost. Γ₂ = {s3} throughout. With the one-way chain
        // s1→s2→s3 this forces paths to avoid being in s2 at time 1.
        let ctmc = CtmcBuilder::new()
            .state("s1", ["a"])
            .state("s2", ["b"])
            .state("s3", ["c"])
            .transition("s1", "s2", 1.0)
            .unwrap()
            .transition("s2", "s3", 1.0)
            .unwrap()
            .build()
            .unwrap();
        let gen = ConstGenerator::new(&ctmc);
        let g1 = PiecewiseStateSet::new(
            0.0,
            5.0,
            vec![1.0],
            vec![vec![true, true, false], vec![true, false, false]],
        )
        .unwrap();
        let g2 = PiecewiseStateSet::constant(0.0, 5.0, vec![false, false, true]).unwrap();
        let sets = PiecewiseSets::new(g1, g2).unwrap();
        let p = reach_probability(&gen, &sets, 0.0, 2.0, &tol()).unwrap();
        // From s1: reach s3 by time 2 via s2, but s2 must be traversed
        // entirely within [0,1) (enter and leave before 1) or entered after
        // t=1... after t=1, s2 is not in Γ₁, so transitions into s2 lead to
        // an absorbing non-goal state — wait, transitions into ¬Γ₁ states
        // still occur (into s2) and are then stuck. So the only successful
        // paths jump s1→s2→s3 with both jumps before... the second jump may
        // happen any time while the path is in s2 — but after t=1 the mass
        // in s2 was dropped at the boundary. Successful paths must complete
        // s2→s3 before t=1, or be in s1 at t=1 and then s1→s2→s3 in [1,2]
        // — no: after t=1, s2 ∉ Γ₁, so entering s2 is entering an absorbing
        // non-goal state. Hence: P = P(s1→s2→s3 both jumps < 1).
        // With unit rates: P(two Exp(1) jumps sum < 1) = 1 - e^{-1}(1+1) =
        // 1 - 2e^{-1} ≈ 0.2642.
        let expected = 1.0 - 2.0 * (-1.0_f64).exp();
        assert!(
            (p[0] - expected).abs() < 1e-7,
            "got {}, expected {expected}",
            p[0]
        );
    }

    #[test]
    fn evaluator_matches_fresh_products() {
        // Time-dependent evaluator vs fresh Eq. 9 products at many times.
        let ctmc = chain3();
        let gen = ConstGenerator::new(&ctmc);
        let g1 = PiecewiseStateSet::new(
            0.0,
            10.0,
            vec![2.0, 5.0],
            vec![
                vec![true, true, false],
                vec![true, false, false],
                vec![true, true, false],
            ],
        )
        .unwrap();
        let g2 = PiecewiseStateSet::new(
            0.0,
            10.0,
            vec![4.0],
            vec![vec![false, false, true], vec![false, true, true]],
        )
        .unwrap();
        let sets = PiecewiseSets::new(g1, g2).unwrap();
        let big_t = 1.5;
        let ev = reach_evaluator(&gen, &sets, 0.0, 8.0, big_t, &tol()).unwrap();
        for &t in &[0.0, 0.4, 1.1, 2.3, 3.9, 4.6, 5.5, 7.9] {
            let via_ev = ev.probs_at(t);
            let fresh = reach_probability(&gen, &sets, t, big_t, &tol()).unwrap();
            for (s, (a, b)) in via_ev.iter().zip(&fresh).enumerate() {
                assert!(
                    (a - b).abs() < 1e-6,
                    "state {s} at t = {t}: evaluator {a} vs fresh {b}"
                );
            }
        }
    }

    #[test]
    fn time_varying_generator_and_sets_together() {
        // Rates vary with time AND sets switch: compare evaluator against
        // fresh products.
        let gen = FnGenerator::new(3, |t: f64, q: &mut Matrix| {
            let r = 0.5 + 0.4 * (0.7 * t).sin();
            *q = Matrix::zeros(3, 3);
            q[(0, 1)] = r;
            q[(0, 0)] = -r;
            q[(1, 0)] = 0.2;
            q[(1, 2)] = 0.6;
            q[(1, 1)] = -0.8;
        });
        let g1 = PiecewiseStateSet::new(
            0.0,
            8.0,
            vec![3.0],
            vec![vec![true, true, false], vec![true, false, false]],
        )
        .unwrap();
        let g2 = PiecewiseStateSet::constant(0.0, 8.0, vec![false, false, true]).unwrap();
        let sets = PiecewiseSets::new(g1, g2).unwrap();
        let ev = reach_evaluator(&gen, &sets, 0.0, 6.0, 1.0, &tol()).unwrap();
        for &t in &[0.3, 1.9, 2.5, 3.2, 4.8] {
            let fresh = reach_probability(&gen, &sets, t, 1.0, &tol()).unwrap();
            let via = ev.probs_at(t);
            for (a, b) in via.iter().zip(&fresh) {
                assert!((a - b).abs() < 1e-6, "t = {t}: {via:?} vs {fresh:?}");
            }
        }
    }

    #[test]
    fn starting_in_goal_is_immediate_success() {
        let ctmc = chain3();
        let gen = ConstGenerator::new(&ctmc);
        let sets = PiecewiseSets::new(
            PiecewiseStateSet::constant(0.0, 5.0, vec![true, true, false]).unwrap(),
            PiecewiseStateSet::constant(0.0, 5.0, vec![false, true, false]).unwrap(),
        )
        .unwrap();
        let p = reach_probability(&gen, &sets, 0.0, 0.0, &tol()).unwrap();
        assert_eq!(p, vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn window_validation() {
        let ctmc = chain3();
        let gen = ConstGenerator::new(&ctmc);
        let sets = PiecewiseSets::new(
            PiecewiseStateSet::constant(0.0, 2.0, vec![true, true, false]).unwrap(),
            PiecewiseStateSet::constant(0.0, 2.0, vec![false, false, true]).unwrap(),
        )
        .unwrap();
        assert!(reach_probability(&gen, &sets, 0.0, 3.0, &tol()).is_err());
        assert!(reach_probability(&gen, &sets, -1.0, 1.0, &tol()).is_err());
        assert!(reach_probability(&gen, &sets, 0.0, -1.0, &tol()).is_err());
        assert!(reach_evaluator(&gen, &sets, 1.0, 0.5, 0.5, &tol()).is_err());
        // Mismatched state counts.
        let small = PiecewiseSets::new(
            PiecewiseStateSet::constant(0.0, 2.0, vec![true]).unwrap(),
            PiecewiseStateSet::constant(0.0, 2.0, vec![false]).unwrap(),
        )
        .unwrap();
        assert!(ExtendedGenerator::new(&gen, &small).is_err());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(10))]

        /// Randomized cross-validation of the three nested-reachability
        /// computations: the appendix-algorithm evaluator, fresh Eq. 9
        /// products, and the state-space doubling of \[14\] must agree for
        /// random boundaries and random set patterns.
        #[test]
        fn prop_nested_constructions_agree(
            b1 in 0.5_f64..2.0,
            gap in 0.5_f64..2.0,
            pattern in 0u16..512,
            eval_t in 0.0_f64..3.0,
        ) {
            use proptest::prelude::prop_assert;
            let ctmc = chain3();
            let gen = ConstGenerator::new(&ctmc);
            let b2 = b1 + gap;
            let bit = |k: u32| pattern >> k & 1 == 1;
            // Three segments of (γ1, γ2) over [0, 8]; force γ1 ⊉ ∅ to keep
            // the scenario nontrivial and make s3 never-live (γ2 only).
            let g1 = PiecewiseStateSet::new(
                0.0,
                8.0,
                vec![b1, b2],
                vec![
                    vec![true, bit(0), false],
                    vec![bit(1), bit(2), false],
                    vec![bit(3), true, false],
                ],
            )
            .unwrap();
            let g2 = PiecewiseStateSet::new(
                0.0,
                8.0,
                vec![b1, b2],
                vec![
                    vec![false, bit(4), bit(5)],
                    vec![false, bit(6), true],
                    vec![bit(7), bit(8), true],
                ],
            )
            .unwrap();
            let sets = PiecewiseSets::new(g1, g2).unwrap();
            let big_t = 1.2;
            let ev = reach_evaluator(&gen, &sets, 0.0, 3.0, big_t, &tol()).unwrap();
            // Keep the evaluation point away from set boundaries, where the
            // right-continuous indicator makes the value genuinely jump.
            let near_boundary = [b1, b2, b1 - big_t, b2 - big_t]
                .iter()
                .any(|&b| (eval_t - b).abs() < 1e-3);
            if near_boundary {
                return Ok(());
            }
            let via_ev = ev.probs_at(eval_t);
            let fresh = reach_probability(&gen, &sets, eval_t, big_t, &tol()).unwrap();
            let doubled = crate::doubling::reach_probability_doubled(
                &gen, &sets, eval_t, big_t, &tol(),
            )
            .unwrap();
            for s in 0..3 {
                prop_assert!(
                    (via_ev[s] - fresh[s]).abs() < 1e-5,
                    "evaluator vs fresh at state {}: {} vs {}",
                    s,
                    via_ev[s],
                    fresh[s]
                );
                prop_assert!(
                    (fresh[s] - doubled[s]).abs() < 1e-6,
                    "fresh vs doubled at state {}: {} vs {}",
                    s,
                    fresh[s],
                    doubled[s]
                );
                prop_assert!((0.0..=1.0 + 1e-9).contains(&via_ev[s]));
            }
        }
    }
}
