//! Recursive satisfaction-set development on the time-inhomogeneous local
//! model (Sec. IV-E of the paper).
//!
//! The checker walks the parse tree of a CSL formula and produces, for a
//! given evaluation window `[0, θ]`, the *time-dependent satisfaction set*
//! as a piecewise-constant [`PiecewiseStateSet`]: boundaries are the
//! discontinuity points where some state enters or leaves the set, located
//! by scanning the relevant probability curves for threshold crossings and
//! polishing with Brent's method (Eqs. 16–19).
//!
//! Probability curves come from three engines:
//! * single until with time-independent operands — [`crate::until`]
//!   (Eqs. 4–7);
//! * nested until (time-dependent operands) — [`crate::nested`]
//!   (Sec. IV-C);
//! * interval next — [`crate::next`], sampled on the scan grid.

use std::sync::Arc;

use mfcsl_ctmc::inhomogeneous::TimeVaryingGenerator;
use mfcsl_math::roots::brent;
use mfcsl_ode::Trajectory;

use crate::cache::SatCache;
use crate::model::LocalTvModel;
use crate::nested::{PiecewiseSets, PiecewiseStateSet, ReachEvaluator};
use crate::syntax::{Comparison, PathFormula, StateFormula};
use crate::until::UntilEvaluator;
use crate::{homogeneous, nested, next, until, CslError, Tolerances};

/// A per-state probability curve `t ↦ Prob(s, φ, m̄, t)` over `[0, θ]`.
#[derive(Debug)]
pub struct ProbCurve {
    n: usize,
    theta: f64,
    imp: CurveImpl,
}

#[derive(Debug)]
enum CurveImpl {
    Until(UntilEvaluator),
    Nested(ReachEvaluator),
    Sampled { ts: Vec<f64>, values: Vec<Vec<f64>> },
    /// A θ = 0 point evaluation from the sparse vector lane: the curve
    /// degenerates to a single per-state vector at time 0.
    Point(Vec<f64>),
}

/// The serializable structural content of a [`ProbCurve`], used by warm-
/// state snapshots. Every numeric field round-trips bitwise, and
/// [`ProbCurve::from_export`] rebuilds a curve whose `probs_at` is bitwise
/// identical to the exported one's.
#[derive(Debug, Clone, PartialEq)]
pub enum CurveExport {
    /// A single-until curve (Eq. 6/7 window-propagated matrices).
    Until {
        /// Number of states.
        n: usize,
        /// Lower time bound `t₁` of the until interval.
        t1: f64,
        /// Satisfaction vector of the invariant operand.
        sat1: Vec<bool>,
        /// Satisfaction vector of the goal operand.
        sat2: Vec<bool>,
        /// Phase-A matrix trajectory (`None` when `t₁ = 0`).
        phase_a: Option<Trajectory>,
        /// Phase-B matrix trajectory.
        phase_b: Trajectory,
    },
    /// A nested-until curve (appendix time-varying-set algorithm).
    Nested {
        /// Number of states.
        n: usize,
        /// Reachability window length `T`.
        big_t: f64,
        /// Segment start times.
        segment_starts: Vec<f64>,
        /// Per-segment `Υ` trajectories (`(n+1)²`-dimensional).
        segments: Vec<Trajectory>,
        /// The goal indicator set.
        gamma2: PiecewiseStateSet,
        /// Evaluation range start.
        t_lo: f64,
        /// Evaluation range end.
        t_hi: f64,
    },
    /// A grid-sampled curve (interval next).
    Sampled {
        /// Sample times.
        ts: Vec<f64>,
        /// Per-state sample values (`values[s]` parallels `ts`).
        values: Vec<Vec<f64>>,
    },
    /// A θ = 0 point evaluation.
    Point(Vec<f64>),
}

impl ProbCurve {
    /// Number of states.
    #[must_use]
    pub fn n_states(&self) -> usize {
        self.n
    }

    /// End of the evaluation window.
    #[must_use]
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Per-state probabilities at evaluation time `t` (clamped to
    /// `[0, θ]`).
    #[must_use]
    pub fn probs_at(&self, t: f64) -> Vec<f64> {
        let t = t.clamp(0.0, self.theta);
        match &self.imp {
            CurveImpl::Until(ev) => ev.probs_at(t),
            CurveImpl::Nested(ev) => ev.probs_at(t),
            CurveImpl::Sampled { ts, values } => (0..self.n)
                .map(|s| {
                    mfcsl_math::interp::linear(ts, &values[s], t)
                        .expect("sampled curve is well-formed")
                })
                .collect(),
            CurveImpl::Point(p) => p.clone(),
        }
    }

    /// Probability for one state at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[must_use]
    pub fn prob_state_at(&self, s: usize, t: f64) -> f64 {
        assert!(s < self.n, "state index {s} out of range");
        self.probs_at(t)[s]
    }

    /// Decomposes the curve into its serializable structural content, for
    /// warm-state snapshots.
    #[must_use]
    pub fn export(&self) -> CurveExport {
        match &self.imp {
            CurveImpl::Until(ev) => {
                let (n, t1, sat1, sat2, phase_a, phase_b) = ev.export_parts();
                CurveExport::Until {
                    n,
                    t1,
                    sat1,
                    sat2,
                    phase_a,
                    phase_b,
                }
            }
            CurveImpl::Nested(ev) => {
                let (n, big_t, segment_starts, segments, gamma2, t_lo, t_hi) = ev.export_parts();
                CurveExport::Nested {
                    n,
                    big_t,
                    segment_starts,
                    segments,
                    gamma2,
                    t_lo,
                    t_hi,
                }
            }
            CurveImpl::Sampled { ts, values } => CurveExport::Sampled {
                ts: ts.clone(),
                values: values.clone(),
            },
            CurveImpl::Point(p) => CurveExport::Point(p.clone()),
        }
    }

    /// Rebuilds a curve from exported content for evaluation window
    /// `[0, θ]`, validating structural coherence (a corrupt snapshot must
    /// fail here, not panic in `probs_at`). The rebuilt curve evaluates
    /// bitwise identically to the exported one.
    ///
    /// # Errors
    ///
    /// Returns [`CslError::InvalidArgument`] on any shape or bounds
    /// mismatch.
    pub fn from_export(theta: f64, export: CurveExport) -> Result<ProbCurve, CslError> {
        if !(theta >= 0.0) || !theta.is_finite() {
            return Err(CslError::InvalidArgument(format!(
                "curve horizon must be finite and non-negative, got {theta}"
            )));
        }
        let (n, imp) = match export {
            CurveExport::Until {
                n,
                t1,
                sat1,
                sat2,
                phase_a,
                phase_b,
            } => (
                n,
                CurveImpl::Until(UntilEvaluator::from_parts(
                    n, t1, sat1, sat2, phase_a, phase_b,
                )?),
            ),
            CurveExport::Nested {
                n,
                big_t,
                segment_starts,
                segments,
                gamma2,
                t_lo,
                t_hi,
            } => (
                n,
                CurveImpl::Nested(ReachEvaluator::from_parts(
                    n,
                    big_t,
                    segment_starts,
                    segments,
                    gamma2,
                    t_lo,
                    t_hi,
                )?),
            ),
            CurveExport::Sampled { ts, values } => {
                let n = values.len();
                if n == 0
                    || ts.len() < 2
                    || values.iter().any(|v| v.len() != ts.len())
                    || ts.iter().any(|t| !t.is_finite())
                    || ts.windows(2).any(|w| w[0] >= w[1])
                {
                    return Err(CslError::InvalidArgument(
                        "sampled curve needs >= 2 strictly increasing finite sample \
                         times and matching per-state value rows"
                            .into(),
                    ));
                }
                (n, CurveImpl::Sampled { ts, values })
            }
            CurveExport::Point(p) => {
                if p.is_empty() {
                    return Err(CslError::InvalidArgument(
                        "point curve needs at least one state".into(),
                    ));
                }
                (p.len(), CurveImpl::Point(p))
            }
        };
        Ok(ProbCurve { n, theta, imp })
    }
}

/// CSL checker for a time-inhomogeneous local model.
///
/// # Example
///
/// ```
/// use mfcsl_csl::checker::InhomogeneousChecker;
/// use mfcsl_csl::{parse_state_formula, LocalTvModel};
/// use mfcsl_ctmc::inhomogeneous::FnGenerator;
/// use mfcsl_ctmc::Labeling;
/// use mfcsl_math::Matrix;
///
/// # fn main() -> Result<(), mfcsl_csl::CslError> {
/// // One-way infection with rate growing in time.
/// let gen = FnGenerator::new(2, |t: f64, q: &mut Matrix| {
///     *q = Matrix::zeros(2, 2);
///     q[(0, 0)] = -(0.1 + 0.2 * t);
///     q[(0, 1)] = 0.1 + 0.2 * t;
/// });
/// let mut labels = Labeling::new(2);
/// labels.add(0, "healthy");
/// labels.add(1, "infected");
/// let model = LocalTvModel::new(gen, labels, vec!["s1".into(), "s2".into()])?;
/// let checker = InhomogeneousChecker::new(&model);
/// let phi = parse_state_formula("P{<0.5}[ healthy U[0,1] infected ]")?;
/// // Early on the infection probability from s1 is small; s2 is already
/// // infected, so the until holds there with probability 1 and `< 0.5`
/// // fails.
/// assert_eq!(checker.sat(&phi)?, vec![true, false]);
/// // ...but the satisfaction set eventually loses s1 as the rate grows.
/// let pw = checker.sat_over_time(&phi, 10.0)?;
/// assert!(!pw.set_at(10.0)[0]);
/// assert_eq!(pw.boundaries().len(), 1);
/// # Ok(())
/// # }
/// ```
pub struct InhomogeneousChecker<'a, G> {
    model: &'a LocalTvModel<G>,
    tol: Tolerances,
}

impl<'a, G: TimeVaryingGenerator> InhomogeneousChecker<'a, G> {
    /// Creates a checker with default tolerances.
    #[must_use]
    pub fn new(model: &'a LocalTvModel<G>) -> Self {
        InhomogeneousChecker {
            model,
            tol: Tolerances::default(),
        }
    }

    /// Creates a checker with explicit tolerances.
    #[must_use]
    pub fn with_tolerances(model: &'a LocalTvModel<G>, tol: Tolerances) -> Self {
        InhomogeneousChecker { model, tol }
    }

    /// The tolerances in use.
    #[must_use]
    pub fn tolerances(&self) -> &Tolerances {
        &self.tol
    }

    /// The underlying model.
    #[must_use]
    pub fn model(&self) -> &'a LocalTvModel<G> {
        self.model
    }

    /// Satisfaction set at evaluation time 0 (Eqs. 16–17).
    ///
    /// # Errors
    ///
    /// Propagates every lower-layer error; see [`CslError`].
    pub fn sat(&self, phi: &StateFormula) -> Result<Vec<bool>, CslError> {
        let pw = self.sat_over_time(phi, 0.0)?;
        Ok(pw.set_at(0.0).to_vec())
    }

    /// Time-dependent satisfaction set over `[0, θ]` (Eqs. 18–19):
    /// piecewise-constant with located discontinuity points.
    ///
    /// # Errors
    ///
    /// Returns [`CslError::InvalidArgument`] for negative `θ`,
    /// [`CslError::Unsupported`] for formulas outside the implemented
    /// fragment (a nested until with `t₁ > 0`, or a Next with a
    /// time-dependent operand), and propagates numerical failures.
    pub fn sat_over_time(
        &self,
        phi: &StateFormula,
        theta: f64,
    ) -> Result<PiecewiseStateSet, CslError> {
        Ok(Arc::unwrap_or_clone(self.sat_over_time_rc(None, phi, theta)?))
    }

    /// [`InhomogeneousChecker::sat`] memoized through a [`SatCache`].
    ///
    /// Produces bitwise-identical results to the uncached method: hits
    /// return the stored set, misses run the exact same computation the
    /// uncached path runs (sharing one implementation) before storing it.
    ///
    /// # Errors
    ///
    /// See [`InhomogeneousChecker::sat_over_time`].
    pub fn sat_cached(&self, cache: &SatCache, phi: &StateFormula) -> Result<Vec<bool>, CslError> {
        let pw = self.sat_over_time_cached(cache, phi, 0.0)?;
        Ok(pw.set_at(0.0).to_vec())
    }

    /// [`InhomogeneousChecker::sat_over_time`] memoized through a
    /// [`SatCache`]; see [`InhomogeneousChecker::sat_cached`].
    ///
    /// # Errors
    ///
    /// See [`InhomogeneousChecker::sat_over_time`].
    pub fn sat_over_time_cached(
        &self,
        cache: &SatCache,
        phi: &StateFormula,
        theta: f64,
    ) -> Result<Arc<PiecewiseStateSet>, CslError> {
        self.sat_over_time_rc(Some(cache), phi, theta)
    }

    fn sat_over_time_rc(
        &self,
        cache: Option<&SatCache>,
        phi: &StateFormula,
        theta: f64,
    ) -> Result<Arc<PiecewiseStateSet>, CslError> {
        if !(theta >= 0.0) || !theta.is_finite() {
            return Err(CslError::InvalidArgument(format!(
                "evaluation horizon must be finite and non-negative, got {theta}"
            )));
        }
        self.tol.validate()?;
        self.sot(cache, phi, theta)
    }

    /// `Prob(s, φ, m̄)` per state at evaluation time 0 (Eq. 4).
    ///
    /// # Errors
    ///
    /// See [`InhomogeneousChecker::sat_over_time`].
    pub fn path_probabilities(&self, path: &PathFormula) -> Result<Vec<f64>, CslError> {
        Ok(self.path_prob_curve_rc(None, path, 0.0)?.probs_at(0.0))
    }

    /// [`InhomogeneousChecker::path_probabilities`] memoized through a
    /// [`SatCache`]; see [`InhomogeneousChecker::sat_cached`].
    ///
    /// # Errors
    ///
    /// See [`InhomogeneousChecker::sat_over_time`].
    pub fn path_probabilities_cached(
        &self,
        cache: &SatCache,
        path: &PathFormula,
    ) -> Result<Vec<f64>, CslError> {
        Ok(self
            .path_prob_curve_rc(Some(cache), path, 0.0)?
            .probs_at(0.0))
    }

    /// The probability curve `t ↦ Prob(s, φ, m̄, t)` over `[0, θ]` (Eq. 7 /
    /// Eq. 13). This is what the MF-CSL `EP` operator integrates against
    /// the occupancy trajectory.
    ///
    /// # Errors
    ///
    /// See [`InhomogeneousChecker::sat_over_time`].
    pub fn path_prob_curve(&self, path: &PathFormula, theta: f64) -> Result<ProbCurve, CslError> {
        let rc = self.path_prob_curve_rc(None, path, theta)?;
        Ok(Arc::try_unwrap(rc).expect("uncached curve is uniquely owned"))
    }

    /// [`InhomogeneousChecker::path_prob_curve`] memoized through a
    /// [`SatCache`]; see [`InhomogeneousChecker::sat_cached`].
    ///
    /// # Errors
    ///
    /// See [`InhomogeneousChecker::sat_over_time`].
    pub fn path_prob_curve_cached(
        &self,
        cache: &SatCache,
        path: &PathFormula,
        theta: f64,
    ) -> Result<Arc<ProbCurve>, CslError> {
        self.path_prob_curve_rc(Some(cache), path, theta)
    }

    fn path_prob_curve_rc(
        &self,
        cache: Option<&SatCache>,
        path: &PathFormula,
        theta: f64,
    ) -> Result<Arc<ProbCurve>, CslError> {
        if !(theta >= 0.0) || !theta.is_finite() {
            return Err(CslError::InvalidArgument(format!(
                "evaluation horizon must be finite and non-negative, got {theta}"
            )));
        }
        self.tol.validate()?;
        if let Some(cache) = cache {
            let id = cache.intern_path(path);
            if let Some(hit) = cache.lookup_curve(id, theta) {
                return Ok(hit);
            }
            let curve = Arc::new(self.build_prob_curve(Some(cache), path, theta)?);
            cache.store_curve(id, theta, Arc::clone(&curve));
            Ok(curve)
        } else {
            Ok(Arc::new(self.build_prob_curve(None, path, theta)?))
        }
    }

    /// The single implementation behind both the cached and uncached
    /// probability-curve paths.
    fn build_prob_curve(
        &self,
        cache: Option<&SatCache>,
        path: &PathFormula,
        theta: f64,
    ) -> Result<ProbCurve, CslError> {
        let n = self.model.n_states();
        match path {
            PathFormula::Until { interval, lhs, rhs } => {
                let look_ahead = theta + interval.hi();
                let lhs_pw = self.sot(cache, lhs, look_ahead)?;
                let rhs_pw = self.sot(cache, rhs, look_ahead)?;
                if lhs_pw.is_constant() && rhs_pw.is_constant() {
                    // Large-K sparse lane: a point evaluation (θ = 0) with
                    // constant operand sets needs no probability *curve*,
                    // only the vector at time 0 — two K-dim payload solves
                    // instead of two K² matrix ODEs. Engages only when the
                    // generator exposes a sparsity pattern above the
                    // density threshold, so small models are untouched.
                    if theta == 0.0 {
                        if let Some(p) = until::until_probabilities_sparse(
                            self.model,
                            lhs_pw.set_at(0.0),
                            rhs_pw.set_at(0.0),
                            *interval,
                            &self.tol,
                        )? {
                            return Ok(ProbCurve {
                                n,
                                theta,
                                imp: CurveImpl::Point(p),
                            });
                        }
                    }
                    let ev = until::until_evaluator(
                        self.model,
                        lhs_pw.set_at(0.0),
                        rhs_pw.set_at(0.0),
                        *interval,
                        theta,
                        &self.tol,
                    )?;
                    Ok(ProbCurve {
                        n,
                        theta,
                        imp: CurveImpl::Until(ev),
                    })
                } else {
                    if !interval.starts_at_zero() {
                        return Err(CslError::Unsupported(format!(
                            "nested until with a positive lower time bound ({}) — the \
                             time-varying-set algorithm of Sec. IV-C covers intervals [0, T]",
                            interval.lo()
                        )));
                    }
                    let sets =
                        PiecewiseSets::new(Arc::unwrap_or_clone(lhs_pw), Arc::unwrap_or_clone(rhs_pw))?;
                    let ev = nested::reach_evaluator(
                        self.model.generator(),
                        &sets,
                        0.0,
                        theta,
                        interval.hi(),
                        &self.tol,
                    )?;
                    Ok(ProbCurve {
                        n,
                        theta,
                        imp: CurveImpl::Nested(ev),
                    })
                }
            }
            PathFormula::Next { interval, inner } => {
                let inner_pw = self.sot(cache, inner, theta + interval.hi())?;
                if !inner_pw.is_constant() {
                    return Err(CslError::Unsupported(
                        "the Next operator with a time-dependent operand".into(),
                    ));
                }
                let sat_inner = inner_pw.set_at(0.0).to_vec();
                let points = if theta == 0.0 {
                    1
                } else {
                    self.tol.scan_points + 1
                };
                let ts: Vec<f64> = if points == 1 {
                    vec![0.0]
                } else {
                    mfcsl_math::vec_ops::linspace(0.0, theta, points)
                };
                let mut values = vec![Vec::with_capacity(ts.len()); n];
                for &t in &ts {
                    let p =
                        next::next_probabilities(self.model, &sat_inner, *interval, t, &self.tol)?;
                    for (s, v) in p.into_iter().enumerate() {
                        values[s].push(v);
                    }
                }
                // A single sample cannot be interpolated; duplicate it.
                let (ts, values) = if ts.len() == 1 {
                    (
                        vec![0.0, 1.0],
                        values
                            .into_iter()
                            .map(|v| vec![v[0], v[0]])
                            .collect::<Vec<_>>(),
                    )
                } else {
                    (ts, values)
                };
                Ok(ProbCurve {
                    n,
                    theta,
                    imp: CurveImpl::Sampled { ts, values },
                })
            }
        }
    }

    /// The memo layer around [`InhomogeneousChecker::sot_node`]: with a
    /// cache, intern-lookup-compute-store; without one, just compute.
    fn sot(
        &self,
        cache: Option<&SatCache>,
        phi: &StateFormula,
        theta: f64,
    ) -> Result<Arc<PiecewiseStateSet>, CslError> {
        if let Some(cache) = cache {
            let id = cache.intern_state(phi);
            if let Some(hit) = cache.lookup_set(id, theta) {
                return Ok(hit);
            }
            let set = Arc::new(self.sot_node(Some(cache), phi, theta)?);
            cache.store_set(id, theta, Arc::clone(&set));
            Ok(set)
        } else {
            Ok(Arc::new(self.sot_node(None, phi, theta)?))
        }
    }

    fn sot_node(
        &self,
        cache: Option<&SatCache>,
        phi: &StateFormula,
        theta: f64,
    ) -> Result<PiecewiseStateSet, CslError> {
        let n = self.model.n_states();
        match phi {
            StateFormula::True => Ok(PiecewiseStateSet::constant(0.0, theta, vec![true; n])?),
            StateFormula::Ap(ap) => {
                let set = self.model.sat_ap(ap)?;
                Ok(PiecewiseStateSet::constant(0.0, theta, set)?)
            }
            StateFormula::Not(inner) => Ok(self.sot(cache, inner, theta)?.complemented()),
            StateFormula::And(a, b) => {
                let sa = self.sot(cache, a, theta)?;
                let sb = self.sot(cache, b, theta)?;
                sa.combine(&sb, |x, y| x && y)
            }
            StateFormula::Or(a, b) => {
                let sa = self.sot(cache, a, theta)?;
                let sb = self.sot(cache, b, theta)?;
                sa.combine(&sb, |x, y| x || y)
            }
            StateFormula::Steady { cmp, p, inner } => {
                let regime = self
                    .model
                    .stationary()
                    .ok_or(CslError::NoStationaryDistribution)?;
                let sat_inner = homogeneous::sat(&regime.frozen, inner, &self.tol)?;
                // Eq. 14: the long-run probability is Σ_{s_j ∈ Sat} m̃_j,
                // identical for every start state, constant in time (Eq. 15).
                let value: f64 = regime
                    .distribution
                    .iter()
                    .zip(&sat_inner)
                    .filter(|(_, &in_sat)| in_sat)
                    .map(|(&m, _)| m)
                    .sum();
                let holds = cmp.holds(value, *p);
                Ok(PiecewiseStateSet::constant(0.0, theta, vec![holds; n])?)
            }
            StateFormula::Prob { cmp, p, path } => {
                let curve = self.path_prob_curve_rc(cache, path, theta)?;
                self.threshold_set(&curve, *cmp, *p, theta)
            }
        }
    }

    /// Converts a probability curve and a threshold into a piecewise
    /// satisfaction set: crossings are scanned on a grid and refined with
    /// Brent's method.
    fn threshold_set(
        &self,
        curve: &ProbCurve,
        cmp: Comparison,
        p: f64,
        theta: f64,
    ) -> Result<PiecewiseStateSet, CslError> {
        let n = curve.n_states();
        if theta == 0.0 {
            let set: Vec<bool> = curve
                .probs_at(0.0)
                .into_iter()
                .map(|v| cmp.holds(v, p))
                .collect();
            return PiecewiseStateSet::constant(0.0, theta, set);
        }
        let grid = mfcsl_math::vec_ops::linspace(0.0, theta, self.tol.scan_points + 1);
        // Sample all states at once per time point.
        let samples: Vec<Vec<f64>> = grid.iter().map(|&t| curve.probs_at(t)).collect();
        let mut boundaries: Vec<f64> = Vec::new();
        for s in 0..n {
            for (w, pair) in samples.windows(2).enumerate() {
                let f0 = pair[0][s] - p;
                let f1 = pair[1][s] - p;
                if f0 == 0.0 || f0.signum() != f1.signum() {
                    if f0 == 0.0 && f1 == 0.0 {
                        continue;
                    }
                    let root = if f0 == 0.0 {
                        grid[w]
                    } else if f1 == 0.0 {
                        grid[w + 1]
                    } else {
                        brent(
                            |t| curve.prob_state_at(s, t) - p,
                            grid[w],
                            grid[w + 1],
                            self.tol.root_tol,
                        )?
                    };
                    if root > self.tol.root_tol && root < theta - self.tol.root_tol {
                        boundaries.push(root);
                    }
                }
            }
        }
        boundaries.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        boundaries.dedup_by(|a, b| (*a - *b).abs() <= 2.0 * self.tol.root_tol);
        // Membership per segment, evaluated at the midpoint.
        let mut sets = Vec::with_capacity(boundaries.len() + 1);
        let mut edges = vec![0.0];
        edges.extend(boundaries.iter().copied());
        edges.push(theta);
        for w in 0..edges.len() - 1 {
            let mid = 0.5 * (edges[w] + edges[w + 1]);
            let set: Vec<bool> = curve
                .probs_at(mid)
                .into_iter()
                .map(|v| cmp.holds(v, p))
                .collect();
            sets.push(set);
        }
        Ok(PiecewiseStateSet::new(0.0, theta, boundaries, sets)?.simplified())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::StationaryRegime;
    use crate::parser::{parse_path_formula, parse_state_formula};
    use mfcsl_ctmc::inhomogeneous::{ConstGenerator, FnGenerator};
    use mfcsl_ctmc::{CtmcBuilder, Labeling};
    use mfcsl_math::Matrix;

    fn tol() -> Tolerances {
        let mut t = Tolerances::default();
        t.ode = t.ode.with_tolerances(1e-10, 1e-13);
        t
    }

    fn const_model() -> (LocalTvModel<ConstGenerator>, mfcsl_ctmc::Ctmc) {
        let ctmc = CtmcBuilder::new()
            .state("s1", ["not_infected"])
            .state("s2", ["infected", "inactive"])
            .state("s3", ["infected", "active"])
            .transition("s1", "s2", 0.4)
            .unwrap()
            .transition("s2", "s1", 0.1)
            .unwrap()
            .transition("s2", "s3", 0.3)
            .unwrap()
            .transition("s3", "s2", 0.3)
            .unwrap()
            .transition("s3", "s1", 0.2)
            .unwrap()
            .build()
            .unwrap();
        let model = LocalTvModel::new(
            ConstGenerator::new(&ctmc),
            ctmc.labeling().clone(),
            ctmc.state_names().to_vec(),
        )
        .unwrap();
        (model, ctmc)
    }

    /// One-way infection with linearly growing rate; fully analytic.
    fn growing_model() -> LocalTvModel<FnGenerator<impl Fn(f64, &mut Matrix)>> {
        let gen = FnGenerator::new(2, |t: f64, q: &mut Matrix| {
            *q = Matrix::zeros(2, 2);
            let r = 0.1 + 0.2 * t;
            q[(0, 0)] = -r;
            q[(0, 1)] = r;
        });
        let mut labels = Labeling::new(2);
        labels.add(0, "healthy");
        labels.add(1, "infected");
        LocalTvModel::new(gen, labels, vec!["s1".into(), "s2".into()]).unwrap()
    }

    #[test]
    fn agrees_with_homogeneous_checker_on_constant_rates() {
        let (model, ctmc) = const_model();
        let checker = InhomogeneousChecker::with_tolerances(&model, tol());
        let formulas = [
            "not_infected",
            "infected & !active",
            "P{<0.3}[ not_infected U[0,1] infected ]",
            "P{>0.5}[ tt U[0,3] active ]",
            "P{>0.1}[ infected U[0.5,2] not_infected ]",
            "!P{>0.9}[ tt U[0,1] infected ] | active",
        ];
        for text in formulas {
            let phi = parse_state_formula(text).unwrap();
            let inhom = checker.sat(&phi).unwrap();
            let hom = homogeneous::sat(&ctmc, &phi, &tol()).unwrap();
            assert_eq!(inhom, hom, "formula `{text}`");
        }
    }

    #[test]
    fn analytic_threshold_crossing() {
        // Prob(s1, healthy U[0,1] infected, t) = 1 - exp(-(0.1 + 0.2t + 0.1))
        // = 1 - exp(-(0.2 + 0.2 t))  [∫_t^{t+1}(0.1+0.2u)du = 0.1+0.2t+0.1].
        // Crossing 0.5: 0.2 + 0.2t = ln 2 → t = (ln 2 - 0.2)/0.2 ≈ 1.4657.
        let model = growing_model();
        let checker = InhomogeneousChecker::with_tolerances(&model, tol());
        let phi = parse_state_formula("P{<0.5}[ healthy U[0,1] infected ]").unwrap();
        let pw = checker.sat_over_time(&phi, 10.0).unwrap();
        assert_eq!(pw.boundaries().len(), 1);
        let expected = (2.0_f64.ln() - 0.2) / 0.2;
        assert!(
            (pw.boundaries()[0] - expected).abs() < 1e-6,
            "crossing at {} vs {expected}",
            pw.boundaries()[0]
        );
        assert!(pw.set_at(0.0)[0]);
        assert!(!pw.set_at(5.0)[0]);
        // State s2 satisfies `infected` immediately, so the until holds
        // with probability 1 there (standard CSL semantics) and the strict
        // `< 0.5` bound fails at all times.
        assert!(!pw.set_at(0.0)[1] && !pw.set_at(5.0)[1]);
    }

    #[test]
    fn nested_until_goes_through_time_varying_sets() {
        // Inner formula's satisfaction set changes with time -> the outer
        // until takes the nested path. Cross-check the probability at t=0
        // against a fresh nested reach computation.
        let model = growing_model();
        let checker = InhomogeneousChecker::with_tolerances(&model, tol());
        let phi =
            parse_state_formula("P{>0.3}[ tt U[0,4] P{>0.5}[ healthy U[0,1] infected ] ]").unwrap();
        let s = checker.sat(&phi).unwrap();
        assert_eq!(s.len(), 2);
        // The inner satisfaction set is {s2} early and gains s1 when
        // 1 - exp(-(0.2 + 0.2t)) crosses 0.5 at t = (ln2 - 0.2)/0.2 ≈
        // 2.466, which lies inside the outer window [0, 4]; the outer
        // until must therefore take the nested time-varying-set path.
        let path = parse_path_formula("tt U[0,4] P{>0.5}[ healthy U[0,1] infected ]").unwrap();
        let probs = checker.path_probabilities(&path).unwrap();
        assert_eq!(probs.len(), 2);
        assert!(probs.iter().all(|&v| (0.0..=1.0 + 1e-9).contains(&v)));
        // From s1 every path succeeds: either it jumps into s2 ∈ Γ before
        // 2.466, or it is still in s1 when s1 itself joins the goal set.
        assert!(probs[0] > 0.999, "{probs:?}");
        assert!(probs[1] > 0.999, "{probs:?}");
        // With a shorter window that ends before the inner crossing the
        // probability from s1 is strictly the jump probability
        // 1 - exp(-0.6) ≈ 0.451.
        let short = parse_path_formula("tt U[0,2] P{>0.5}[ healthy U[0,1] infected ]").unwrap();
        let probs_short = checker.path_probabilities(&short).unwrap();
        assert!(
            (probs_short[0] - (1.0 - (-0.6_f64).exp())).abs() < 1e-6,
            "{probs_short:?}"
        );
    }

    #[test]
    fn steady_operator_uses_stationary_regime() {
        let (model, ctmc) = const_model();
        let stationary = mfcsl_ctmc::steady::steady_state(&ctmc).unwrap();
        let model = model
            .with_stationary(StationaryRegime {
                distribution: stationary.clone(),
                frozen: ctmc.clone(),
                settle_time: None,
            })
            .unwrap();
        let checker = InhomogeneousChecker::with_tolerances(&model, tol());
        let p_infected = stationary[1] + stationary[2];
        let phi = parse_state_formula("S{>0.5}[ infected ]").unwrap();
        let expect = p_infected > 0.5;
        assert_eq!(checker.sat(&phi).unwrap(), vec![expect; 3]);
        // Without a regime the operator errors.
        let (bare, _) = const_model();
        let checker = InhomogeneousChecker::with_tolerances(&bare, tol());
        assert!(matches!(
            checker.sat(&phi),
            Err(CslError::NoStationaryDistribution)
        ));
    }

    #[test]
    fn next_operator_curves() {
        let model = growing_model();
        let checker = InhomogeneousChecker::with_tolerances(&model, tol());
        let path = parse_path_formula("X[0,1] infected").unwrap();
        let curve = checker.path_prob_curve(&path, 3.0).unwrap();
        // Analytic: 1 - exp(-(0.2 + 0.2t)).
        for &t in &[0.0, 1.0, 2.7] {
            let exact = 1.0 - f64::exp(-(0.2 + 0.2 * t));
            let got = curve.prob_state_at(0, t);
            assert!((got - exact).abs() < 1e-4, "t = {t}: {got} vs {exact}");
        }
        let phi = parse_state_formula("P{>0.5}[ X[0,1] infected ]").unwrap();
        let pw = checker.sat_over_time(&phi, 5.0).unwrap();
        assert_eq!(pw.boundaries().len(), 1);
        let expected = (2.0_f64.ln() - 0.2) / 0.2;
        assert!((pw.boundaries()[0] - expected).abs() < 1e-3);
    }

    #[test]
    fn unsupported_fragments_are_reported() {
        let model = growing_model();
        let checker = InhomogeneousChecker::with_tolerances(&model, tol());
        // Nested until with positive lower bound.
        let phi =
            parse_state_formula("P{>0.3}[ tt U[1,2] P{>0.5}[ healthy U[0,1] infected ] ]").unwrap();
        assert!(matches!(
            checker.sat_over_time(&phi, 3.0),
            Err(CslError::Unsupported(_))
        ));
        // Next with time-dependent operand.
        let phi =
            parse_state_formula("P{>0.3}[ X[0,1] P{>0.5}[ healthy U[0,1] infected ] ]").unwrap();
        assert!(matches!(
            checker.sat_over_time(&phi, 3.0),
            Err(CslError::Unsupported(_))
        ));
    }

    #[test]
    fn boolean_structure_over_time() {
        let model = growing_model();
        let checker = InhomogeneousChecker::with_tolerances(&model, tol());
        let a = parse_state_formula("P{<0.5}[ healthy U[0,1] infected ]").unwrap();
        let not_a = parse_state_formula("!P{<0.5}[ healthy U[0,1] infected ]").unwrap();
        let pa = checker.sat_over_time(&a, 6.0).unwrap();
        let pna = checker.sat_over_time(&not_a, 6.0).unwrap();
        for &t in &[0.0, 1.0, 2.0, 5.0] {
            for s in 0..2 {
                assert_ne!(pa.set_at(t)[s], pna.set_at(t)[s]);
            }
        }
        // AND of a formula with itself is itself.
        let both = parse_state_formula(
            "P{<0.5}[ healthy U[0,1] infected ] & P{<0.5}[ healthy U[0,1] infected ]",
        )
        .unwrap();
        let pb = checker.sat_over_time(&both, 6.0).unwrap();
        for &t in &[0.0, 2.0, 6.0] {
            assert_eq!(pa.set_at(t), pb.set_at(t));
        }
    }

    #[test]
    fn validation_of_horizon() {
        let model = growing_model();
        let checker = InhomogeneousChecker::with_tolerances(&model, tol());
        let phi = parse_state_formula("healthy").unwrap();
        assert!(checker.sat_over_time(&phi, -1.0).is_err());
        assert!(checker.sat_over_time(&phi, f64::NAN).is_err());
    }

    #[test]
    fn curve_accessors() {
        let model = growing_model();
        let checker = InhomogeneousChecker::with_tolerances(&model, tol());
        let path = parse_path_formula("healthy U[0,1] infected").unwrap();
        let curve = checker.path_prob_curve(&path, 2.0).unwrap();
        assert_eq!(curve.n_states(), 2);
        assert_eq!(curve.theta(), 2.0);
        // Clamping.
        let early = curve.probs_at(-5.0);
        let zero = curve.probs_at(0.0);
        assert_eq!(early, zero);
    }
}
