//! Single interval until on the time-inhomogeneous local model
//! (Sec. IV-B of the paper).
//!
//! The until probability is the two-phase reachability product of Eq. 4,
//! with each phase a forward Kolmogorov transient (Eq. 5) on a modified
//! chain. To evaluate the formula at *later* times `t ∈ [0, θ]` without
//! re-solving from scratch, the probability matrices are propagated with
//! the combined forward/backward equation (Eq. 6), exactly as the paper
//! prescribes; Eq. 7 then assembles the per-state probabilities.

use std::cell::{Cell, RefCell};

use mfcsl_ctmc::inhomogeneous::{
    flat_to_matrix, propagate_window_from, transition_matrix, ConstantTail, TimeVaryingGenerator,
};
use mfcsl_ctmc::propagator::{choose_backend, Backend};
use mfcsl_math::Matrix;
use mfcsl_ode::{solve_recovering, OdeOptions, OdeSystem, SolverWorkspace, Trajectory};

use crate::model::LocalTvModel;
use crate::syntax::TimeInterval;
use crate::{CslError, Tolerances};

/// A time-varying generator with a set of states forced absorbing — the
/// `𝓜[Φ]` construction lifted to time-varying chains.
pub struct MaskedGenerator<'a, G> {
    inner: &'a G,
    absorbing: Vec<bool>,
}

impl<'a, G: TimeVaryingGenerator> MaskedGenerator<'a, G> {
    /// Wraps `inner`, making every state with `absorbing[s] == true`
    /// absorbing.
    ///
    /// # Errors
    ///
    /// Returns [`CslError::InvalidArgument`] on shape mismatch.
    pub fn new(inner: &'a G, absorbing: Vec<bool>) -> Result<Self, CslError> {
        if absorbing.len() != inner.n_states() {
            return Err(CslError::InvalidArgument(format!(
                "absorbing mask has length {}, generator has {} states",
                absorbing.len(),
                inner.n_states()
            )));
        }
        Ok(MaskedGenerator { inner, absorbing })
    }
}

impl<G: TimeVaryingGenerator> TimeVaryingGenerator for MaskedGenerator<'_, G> {
    fn n_states(&self) -> usize {
        self.inner.n_states()
    }

    fn write_generator(&self, t: f64, q: &mut Matrix) {
        self.inner.write_generator(t, q);
        let n = self.n_states();
        for (s, &absorb) in self.absorbing.iter().enumerate() {
            if absorb {
                for j in 0..n {
                    q[(s, j)] = 0.0;
                }
            }
        }
    }

    fn sparsity(&self) -> Option<(&[usize], &[usize])> {
        self.inner.sparsity()
    }

    fn write_rates(&self, t: f64, rates: &mut [f64]) {
        self.inner.write_rates(t, rates);
        if let Some((from, _)) = self.inner.sparsity() {
            // Masking zeroes entire source rows; in rate-pattern form that
            // is every pattern slot whose source state is absorbing.
            for (r, &f) in rates.iter_mut().zip(from) {
                if self.absorbing[f] {
                    *r = 0.0;
                }
            }
        }
    }
}

/// The backward-Kolmogorov payload system of the sparse until lane.
///
/// For a payload vector `v`, `g(t') = Π(t', anchor)·v` satisfies the
/// backward equation `dg/dt' = -Q(t')·g`. Substituting `s = anchor - t'`
/// gives the forward-in-`s` system `dh/ds = Q(anchor - s)·h` integrated
/// here, with `h(0) = v` and `h(anchor - t') = g(t')`. Row `i` of `Q·h` is
/// `Σ_j r_ij·(h_j - h_i)` over the off-diagonal pattern, so the right-hand
/// side streams through the `(from, to)` triplets — `O(K + nnz)` per
/// evaluation, no matrix of any kind.
struct BackwardPayloadSystem<'a, G> {
    gen: &'a G,
    n: usize,
    from: &'a [usize],
    to: &'a [usize],
    /// Rates are evaluated at `anchor - s`.
    anchor: f64,
    /// Rate buffer memoized by the exact bit pattern of the queried time
    /// (Dopri5 stage times repeat; see `QSlot` in the ctmc layer).
    rates: RefCell<Vec<f64>>,
    memo: Cell<Option<u64>>,
}

impl<G: TimeVaryingGenerator> OdeSystem for BackwardPayloadSystem<'_, G> {
    fn dim(&self) -> usize {
        self.n
    }

    fn rhs(&self, s: f64, y: &[f64], dy: &mut [f64]) {
        let t = self.anchor - s;
        let mut rates = self.rates.borrow_mut();
        if self.memo.get() != Some(t.to_bits()) {
            self.gen.write_rates(t, &mut rates);
            self.memo.set(Some(t.to_bits()));
        }
        dy.fill(0.0);
        for ((&f, &to), &r) in self.from.iter().zip(self.to).zip(rates.iter()) {
            dy[f] += r * (y[to] - y[f]);
        }
    }
}

/// Integrates `h(span) = Π(anchor - span, anchor)·v0` through the payload
/// system above.
fn backward_payload<G: TimeVaryingGenerator>(
    gen: &G,
    anchor: f64,
    span: f64,
    v0: &[f64],
    options: &OdeOptions,
) -> Result<Vec<f64>, CslError> {
    if span == 0.0 {
        return Ok(v0.to_vec());
    }
    let (from, to) = gen
        .sparsity()
        .ok_or_else(|| CslError::InvalidArgument("generator lost its sparsity pattern".into()))?;
    let sys = BackwardPayloadSystem {
        gen,
        n: v0.len(),
        from,
        to,
        anchor,
        rates: RefCell::new(vec![0.0; from.len()]),
        memo: Cell::new(None),
    };
    let mut ws = SolverWorkspace::new();
    let (traj, _) = solve_recovering(&sys, 0.0, span, v0, options, &mut ws)?;
    Ok(traj.final_state())
}

/// Large-`K` fast path for Eq. 4 at evaluation time 0: instead of the two
/// `K × K` transition-matrix ODEs of [`until_probabilities`], two
/// `K`-dimensional backward-Kolmogorov payload solves — phase B transports
/// the goal indicator `1_{Φ₂}` over `[t₁, t₂]` on `𝓜[¬Φ₁ ∨ Φ₂]`, phase A
/// transports the `Φ₁`-filtered result over `[0, t₁]` on `𝓜[¬Φ₁]`. Peak
/// memory is `O(K + nnz)` per right-hand side.
///
/// Returns `Ok(None)` when the generator exposes no sparsity pattern or
/// the chain sits below the density threshold — callers fall back to the
/// matrix path, which additionally supports evaluation at `t > 0`.
///
/// # Errors
///
/// Returns [`CslError::InvalidArgument`] on shape mismatches and
/// propagates ODE failures.
pub fn until_probabilities_sparse<G: TimeVaryingGenerator>(
    model: &LocalTvModel<G>,
    sat1: &[bool],
    sat2: &[bool],
    interval: TimeInterval,
    tol: &Tolerances,
) -> Result<Option<Vec<f64>>, CslError> {
    let n = model.n_states();
    let gen = model.generator();
    let Some((pattern_from, _)) = gen.sparsity() else {
        return Ok(None);
    };
    if choose_backend(n, pattern_from.len()) != Backend::Sparse {
        return Ok(None);
    }
    if sat1.len() != n || sat2.len() != n {
        return Err(CslError::InvalidArgument(format!(
            "satisfaction vectors have lengths {}/{}, model has {n} states",
            sat1.len(),
            sat2.len()
        )));
    }
    tol.validate()?;
    let t1 = interval.lo();
    let t2 = interval.hi();

    // Phase B on 𝓜[¬Φ₁ ∨ Φ₂]: goal mass from each intermediate state.
    let absorb_b: Vec<bool> = (0..n).map(|s| !sat1[s] || sat2[s]).collect();
    let masked_b = MaskedGenerator::new(gen, absorb_b)?;
    let h0: Vec<f64> = sat2.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
    let goal_from = backward_payload(&masked_b, t2, t2 - t1, &h0, &tol.ode)?;
    if interval.starts_at_zero() {
        return Ok(Some(goal_from));
    }

    // Phase A on 𝓜[¬Φ₁], transporting the Φ₁-filtered goal mass to time 0.
    let absorb_a: Vec<bool> = sat1.iter().map(|&b| !b).collect();
    let masked_a = MaskedGenerator::new(gen, absorb_a)?;
    let w: Vec<f64> = goal_from
        .iter()
        .zip(sat1)
        .map(|(&v, &s1)| if s1 { v } else { 0.0 })
        .collect();
    Ok(Some(backward_payload(&masked_a, t1, t1, &w, &tol.ode)?))
}

/// Computes `Prob(s, Φ₁ U^[t₁,t₂] Φ₂, m̄)` for every start state `s` at
/// evaluation time 0 (Eq. 4), given the (time-independent) satisfaction
/// vectors of `Φ₁` and `Φ₂`.
///
/// # Errors
///
/// Returns [`CslError::InvalidArgument`] on shape mismatches and propagates
/// ODE failures.
pub fn until_probabilities<G: TimeVaryingGenerator>(
    model: &LocalTvModel<G>,
    sat1: &[bool],
    sat2: &[bool],
    interval: TimeInterval,
    tol: &Tolerances,
) -> Result<Vec<f64>, CslError> {
    let ev = until_evaluator(model, sat1, sat2, interval, 0.0, tol)?;
    Ok(ev.probs_at(0.0))
}

/// The time-dependent until probabilities
/// `t ↦ Prob(s, Φ₁ U^[t₁,t₂] Φ₂, m̄, t)` over `t ∈ [0, θ]` (Eq. 7), backed
/// by the window-propagated probability matrices of Eq. 6.
#[derive(Debug)]
pub struct UntilEvaluator {
    n: usize,
    t1: f64,
    sat1: Vec<bool>,
    sat2: Vec<bool>,
    /// `Π^{𝓜[¬Φ₁]}(t, t+t₁)` flattened, over `t ∈ [0, θ]`; `None` if `t₁ = 0`.
    phase_a: Option<Trajectory>,
    /// `Π^{𝓜[¬Φ₁∨Φ₂]}(u, u+(t₂-t₁))` flattened, over `u ∈ [t₁, θ+t₁]`.
    phase_b: Trajectory,
}

impl UntilEvaluator {
    /// Per-state probabilities at evaluation time `t` (clamped to `[0, θ]`).
    #[must_use]
    pub fn probs_at(&self, t: f64) -> Vec<f64> {
        let b = flat_to_matrix(self.n, &self.phase_b.eval(t + self.t1));
        // Goal mass from each intermediate state s₁.
        let goal_from: Vec<f64> = (0..self.n)
            .map(|s1| {
                (0..self.n)
                    .filter(|&s2| self.sat2[s2])
                    .map(|s2| b[(s1, s2)])
                    .sum()
            })
            .collect();
        match &self.phase_a {
            None => goal_from,
            Some(ta) => {
                let a = flat_to_matrix(self.n, &ta.eval(t));
                (0..self.n)
                    .map(|s| {
                        (0..self.n)
                            .filter(|&s1| self.sat1[s1])
                            .map(|s1| a[(s, s1)] * goal_from[s1])
                            .sum()
                    })
                    .collect()
            }
        }
    }

    /// Probability for a single start state at evaluation time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[must_use]
    pub fn prob_state_at(&self, s: usize, t: f64) -> f64 {
        assert!(s < self.n, "state index {s} out of range");
        self.probs_at(t)[s]
    }

    /// Number of states.
    #[must_use]
    pub fn n_states(&self) -> usize {
        self.n
    }

    /// Decomposes the evaluator into its constructor data, for snapshot
    /// serialization: `(n, t₁, sat1, sat2, phase_a, phase_b)`.
    #[must_use]
    pub(crate) fn export_parts(
        &self,
    ) -> (usize, f64, Vec<bool>, Vec<bool>, Option<Trajectory>, Trajectory) {
        (
            self.n,
            self.t1,
            self.sat1.clone(),
            self.sat2.clone(),
            self.phase_a.clone(),
            self.phase_b.clone(),
        )
    }

    /// Rebuilds an evaluator from exported parts, validating the structural
    /// coherence a corrupt snapshot could violate.
    pub(crate) fn from_parts(
        n: usize,
        t1: f64,
        sat1: Vec<bool>,
        sat2: Vec<bool>,
        phase_a: Option<Trajectory>,
        phase_b: Trajectory,
    ) -> Result<UntilEvaluator, CslError> {
        if n == 0 || sat1.len() != n || sat2.len() != n {
            return Err(CslError::InvalidArgument(format!(
                "until evaluator parts disagree: n = {n}, satisfaction \
                 vectors have lengths {}/{}",
                sat1.len(),
                sat2.len()
            )));
        }
        if !(t1 >= 0.0) || !t1.is_finite() {
            return Err(CslError::InvalidArgument(format!(
                "until evaluator lower bound must be finite and non-negative, got {t1}"
            )));
        }
        let flat = n * n;
        if phase_b.dim() != flat || phase_a.as_ref().is_some_and(|a| a.dim() != flat) {
            return Err(CslError::InvalidArgument(format!(
                "until phase trajectories must have dimension {flat}"
            )));
        }
        Ok(UntilEvaluator {
            n,
            t1,
            sat1,
            sat2,
            phase_a,
            phase_b,
        })
    }
}

/// Builds the time-dependent until evaluator over the window `[0, θ]`.
///
/// # Errors
///
/// Returns [`CslError::InvalidArgument`] on shape mismatches or negative
/// `θ`, and propagates ODE failures.
pub fn until_evaluator<G: TimeVaryingGenerator>(
    model: &LocalTvModel<G>,
    sat1: &[bool],
    sat2: &[bool],
    interval: TimeInterval,
    theta: f64,
    tol: &Tolerances,
) -> Result<UntilEvaluator, CslError> {
    let n = model.n_states();
    if sat1.len() != n || sat2.len() != n {
        return Err(CslError::InvalidArgument(format!(
            "satisfaction vectors have lengths {}/{}, model has {n} states",
            sat1.len(),
            sat2.len()
        )));
    }
    if !(theta >= 0.0) || !theta.is_finite() {
        return Err(CslError::InvalidArgument(format!(
            "evaluation horizon must be finite and non-negative, got {theta}"
        )));
    }
    tol.validate()?;
    let gen = model.generator();
    let t1 = interval.lo();
    let duration_b = interval.hi() - interval.lo();
    // Steady-regime hand-off: once the mean-field trajectory has settled,
    // the (masked) generator is constant and the sliding window matrix no
    // longer changes — the propagation tail collapses to one uniformization.
    // The masks here are time-independent, so the window invariant
    // `Π'(t, t+T) = e^{QT}` required by the fast path holds for both phases.
    let tail = model.steady_from().map(|t_star| ConstantTail {
        t_star,
        eps: mfcsl_ctmc::transient::DEFAULT_EPSILON,
    });

    // Phase B on 𝓜[¬Φ₁ ∨ Φ₂].
    let absorb_b: Vec<bool> = (0..n).map(|s| !sat1[s] || sat2[s]).collect();
    let masked_b = MaskedGenerator::new(gen, absorb_b)?;
    let init_b = transition_matrix(&masked_b, t1, duration_b, &tol.ode)?;
    let phase_b = propagate_window_from(
        &masked_b,
        &init_b,
        t1,
        theta + t1,
        duration_b,
        &tol.ode,
        tail.as_ref(),
    )?;

    // Phase A on 𝓜[¬Φ₁], only needed for t₁ > 0.
    let phase_a = if interval.starts_at_zero() {
        None
    } else {
        let absorb_a: Vec<bool> = sat1.iter().map(|&b| !b).collect();
        let masked_a = MaskedGenerator::new(gen, absorb_a)?;
        let init_a = transition_matrix(&masked_a, 0.0, t1, &tol.ode)?;
        Some(propagate_window_from(
            &masked_a,
            &init_a,
            0.0,
            theta,
            t1,
            &tol.ode,
            tail.as_ref(),
        )?)
    };

    Ok(UntilEvaluator {
        n,
        t1,
        sat1: sat1.to_vec(),
        sat2: sat2.to_vec(),
        phase_a,
        phase_b,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::homogeneous;
    use mfcsl_ctmc::inhomogeneous::{ConstGenerator, FnGenerator};
    use mfcsl_ctmc::{CtmcBuilder, Labeling};

    fn tol() -> Tolerances {
        let mut t = Tolerances::default();
        t.ode = t.ode.with_tolerances(1e-11, 1e-13);
        t
    }

    fn const_model() -> (LocalTvModel<ConstGenerator>, mfcsl_ctmc::Ctmc) {
        let ctmc = CtmcBuilder::new()
            .state("s1", ["not_infected"])
            .state("s2", ["infected", "inactive"])
            .state("s3", ["infected", "active"])
            .transition("s1", "s2", 0.4)
            .unwrap()
            .transition("s2", "s1", 0.1)
            .unwrap()
            .transition("s2", "s3", 0.3)
            .unwrap()
            .transition("s3", "s2", 0.3)
            .unwrap()
            .transition("s3", "s1", 0.2)
            .unwrap()
            .build()
            .unwrap();
        let model = LocalTvModel::new(
            ConstGenerator::new(&ctmc),
            ctmc.labeling().clone(),
            ctmc.state_names().to_vec(),
        )
        .unwrap();
        (model, ctmc)
    }

    #[test]
    fn constant_rates_match_homogeneous_checker() {
        let (model, ctmc) = const_model();
        let sat1 = [true, false, false];
        let sat2 = [false, true, true];
        for interval in [
            TimeInterval::bounded_by(1.0).unwrap(),
            TimeInterval::new(0.5, 2.0).unwrap(),
            TimeInterval::new(1.0, 1.0).unwrap(),
        ] {
            let inhom = until_probabilities(&model, &sat1, &sat2, interval, &tol()).unwrap();
            let hom =
                homogeneous::until_probabilities(&ctmc, &sat1, &sat2, interval, &tol()).unwrap();
            for (a, b) in inhom.iter().zip(&hom) {
                assert!((a - b).abs() < 1e-7, "{interval}: {inhom:?} vs {hom:?}");
            }
        }
    }

    #[test]
    fn constant_rates_time_invariance() {
        // For a homogeneous chain the until probability must not depend on
        // the evaluation time t.
        let (model, _) = const_model();
        let sat1 = [true, false, false];
        let sat2 = [false, true, true];
        let ev = until_evaluator(
            &model,
            &sat1,
            &sat2,
            TimeInterval::new(0.3, 1.7).unwrap(),
            5.0,
            &tol(),
        )
        .unwrap();
        let p0 = ev.probs_at(0.0);
        for &t in &[1.0, 2.5, 5.0] {
            let pt = ev.probs_at(t);
            for (a, b) in p0.iter().zip(&pt) {
                assert!((a - b).abs() < 1e-7, "t = {t}");
            }
        }
    }

    #[test]
    fn analytic_time_varying_until() {
        // One-way chain healthy -> infected with rate r(t) = t.
        // Prob(s0, tt U[0,T] infected, t) = 1 - exp(-((t+T)² - t²)/2).
        let gen = FnGenerator::new(2, |t: f64, q: &mut Matrix| {
            q[(0, 0)] = -t;
            q[(0, 1)] = t;
            q[(1, 0)] = 0.0;
            q[(1, 1)] = 0.0;
        });
        let mut labels = Labeling::new(2);
        labels.add(0, "healthy");
        labels.add(1, "infected");
        let model =
            LocalTvModel::new(gen, labels, vec!["healthy".into(), "infected".into()]).unwrap();
        let big_t = 1.0;
        let ev = until_evaluator(
            &model,
            &[true, true],
            &[false, true],
            TimeInterval::bounded_by(big_t).unwrap(),
            3.0,
            &tol(),
        )
        .unwrap();
        for &t in &[0.0, 0.7, 1.5, 3.0] {
            let exact = 1.0 - (-(((t + big_t) * (t + big_t)) - t * t) / 2.0_f64).exp();
            let got = ev.prob_state_at(0, t);
            assert!((got - exact).abs() < 1e-7, "t = {t}: {got} vs {exact}");
            assert!((ev.prob_state_at(1, t) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn two_phase_time_varying_until() {
        // Same chain, interval [t1, t2] with t1 > 0: the path must still be
        // healthy at t + t1 and jump within [t + t1, t + t2].
        // Prob = exp(-((t+t1)²-t²)/2) · (1 - exp(-((t+t2)²-(t+t1)²)/2)).
        let gen = FnGenerator::new(2, |t: f64, q: &mut Matrix| {
            q[(0, 0)] = -t;
            q[(0, 1)] = t;
            q[(1, 0)] = 0.0;
            q[(1, 1)] = 0.0;
        });
        let mut labels = Labeling::new(2);
        labels.add(0, "healthy");
        labels.add(1, "infected");
        let model =
            LocalTvModel::new(gen, labels, vec!["healthy".into(), "infected".into()]).unwrap();
        let (t1, t2) = (0.5, 1.5);
        let ev = until_evaluator(
            &model,
            &[true, false],
            &[false, true],
            TimeInterval::new(t1, t2).unwrap(),
            2.0,
            &tol(),
        )
        .unwrap();
        for &t in &[0.0, 0.8, 2.0] {
            let survive = (-(((t + t1) * (t + t1)) - t * t) / 2.0_f64).exp();
            let jump = 1.0 - (-(((t + t2) * (t + t2)) - (t + t1) * (t + t1)) / 2.0_f64).exp();
            let exact = survive * jump;
            let got = ev.prob_state_at(0, t);
            assert!((got - exact).abs() < 1e-7, "t = {t}: {got} vs {exact}");
        }
    }

    #[test]
    fn steady_from_fast_path_matches_full_integration() {
        // A model whose generator is exactly constant from t = 2 on. With
        // `with_steady_from(2.0)` the evaluator swaps the settled stretch of
        // both window propagations for one uniformization each; the until
        // probabilities must agree with the fully integrated evaluator to
        // the fast path's equivalence budget.
        let gen = || {
            FnGenerator::new(2, |t: f64, q: &mut Matrix| {
                let s = (2.0 - t).max(0.0);
                let r = 0.6 + s * s;
                q[(0, 0)] = -r;
                q[(0, 1)] = r;
                q[(1, 0)] = 0.5;
                q[(1, 1)] = -0.5;
            })
        };
        let labels = || {
            let mut l = Labeling::new(2);
            l.add(0, "healthy");
            l.add(1, "infected");
            l
        };
        let names = || vec!["healthy".to_string(), "infected".to_string()];
        let slow = LocalTvModel::new(gen(), labels(), names()).unwrap();
        let fast = LocalTvModel::new(gen(), labels(), names())
            .unwrap()
            .with_steady_from(2.0);
        assert_eq!(fast.steady_from(), Some(2.0));
        let sat1 = [true, false];
        let sat2 = [false, true];
        let interval = TimeInterval::new(0.4, 1.3).unwrap();
        let theta = 10.0;
        let ev_slow = until_evaluator(&slow, &sat1, &sat2, interval, theta, &tol()).unwrap();
        let ev_fast = until_evaluator(&fast, &sat1, &sat2, interval, theta, &tol()).unwrap();
        for i in 0..=20 {
            let t = theta * f64::from(i) / 20.0;
            let a = ev_slow.probs_at(t);
            let b = ev_fast.probs_at(t);
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-9, "t = {t}: {x} vs {y}");
            }
        }
    }

    /// A sparsity-aware time-varying birth–death generator over `n`
    /// states, used to exercise the vector-path until lane.
    struct SparseTvGen {
        n: usize,
        from: Vec<usize>,
        to: Vec<usize>,
    }

    impl SparseTvGen {
        fn new(n: usize) -> Self {
            let mut from = Vec::new();
            let mut to = Vec::new();
            for i in 0..n - 1 {
                from.push(i);
                to.push(i + 1);
                from.push(i + 1);
                to.push(i);
            }
            SparseTvGen { n, from, to }
        }

        fn rate(&self, k: usize, t: f64) -> f64 {
            // Up transitions decay towards 1.0, down transitions constant.
            if self.to[k] > self.from[k] {
                1.0 + 0.8 / (1.0 + t)
            } else {
                1.6
            }
        }
    }

    impl TimeVaryingGenerator for SparseTvGen {
        fn n_states(&self) -> usize {
            self.n
        }

        fn write_generator(&self, t: f64, q: &mut Matrix) {
            q.as_mut_slice().fill(0.0);
            for k in 0..self.from.len() {
                let r = self.rate(k, t);
                q[(self.from[k], self.to[k])] += r;
                q[(self.from[k], self.from[k])] -= r;
            }
        }

        fn sparsity(&self) -> Option<(&[usize], &[usize])> {
            Some((&self.from, &self.to))
        }

        fn write_rates(&self, t: f64, rates: &mut [f64]) {
            for (k, slot) in rates.iter_mut().enumerate() {
                *slot = self.rate(k, t);
            }
        }
    }

    fn sparse_model(n: usize) -> LocalTvModel<SparseTvGen> {
        let mut labels = Labeling::new(n);
        for s in 0..n {
            if s < n / 4 {
                labels.add(s, "low");
            }
            labels.add(s, "any");
        }
        let names = (0..n).map(|s| format!("s{s}")).collect();
        LocalTvModel::new(SparseTvGen::new(n), labels, names).unwrap()
    }

    #[test]
    fn vector_path_matches_matrix_path() {
        // 100 states is above the density threshold, so the sparse lane
        // engages; its two K-dim payload solves must agree with the K²
        // matrix ODEs of the reference path.
        let n = 100;
        let model = sparse_model(n);
        let sat1: Vec<bool> = (0..n).map(|s| s < 3 * n / 4).collect();
        let sat2: Vec<bool> = (0..n).map(|s| s >= n / 2 && s < 3 * n / 4).collect();
        let mut tols = Tolerances::default();
        tols.ode = tols.ode.with_tolerances(1e-9, 1e-11);
        for interval in [
            TimeInterval::bounded_by(0.8).unwrap(),
            TimeInterval::new(0.3, 1.1).unwrap(),
        ] {
            let fast = until_probabilities_sparse(&model, &sat1, &sat2, interval, &tols)
                .unwrap()
                .expect("above threshold: sparse lane must engage");
            let slow = until_probabilities(&model, &sat1, &sat2, interval, &tols).unwrap();
            for (s, (a, b)) in fast.iter().zip(&slow).enumerate() {
                assert!((a - b).abs() < 1e-6, "{interval}, state {s}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn vector_path_declines_below_threshold_and_without_pattern() {
        // 10 states: pattern available but dense is cheaper.
        let model = sparse_model(10);
        let sat1 = vec![true; 10];
        let sat2: Vec<bool> = (0..10).map(|s| s >= 5).collect();
        let r = until_probabilities_sparse(
            &model,
            &sat1,
            &sat2,
            TimeInterval::bounded_by(1.0).unwrap(),
            &tol(),
        )
        .unwrap();
        assert!(r.is_none());
        // No pattern at all (ConstGenerator): decline regardless of size.
        let (model, _) = const_model();
        let r = until_probabilities_sparse(
            &model,
            &[true, true, true],
            &[false, true, true],
            TimeInterval::bounded_by(1.0).unwrap(),
            &tol(),
        )
        .unwrap();
        assert!(r.is_none());
    }

    #[test]
    fn masked_write_rates_zeroes_absorbing_sources() {
        let gen = SparseTvGen::new(8);
        let masked = MaskedGenerator::new(
            &gen,
            vec![false, true, false, false, false, false, false, false],
        )
        .unwrap();
        let (from, _) = masked.sparsity().unwrap();
        let mut rates = vec![0.0; from.len()];
        masked.write_rates(0.7, &mut rates);
        for (k, &f) in from.iter().enumerate() {
            if f == 1 {
                assert_eq!(rates[k], 0.0);
            } else {
                assert!(rates[k] > 0.0);
            }
        }
        // The masked dense generator agrees with the masked rate pattern.
        let q = masked.generator_at(0.7);
        for (k, (&f, &t)) in from.iter().zip(masked.sparsity().unwrap().1).enumerate() {
            assert_eq!(q[(f, t)], rates[k]);
        }
    }

    #[test]
    fn masked_generator_zeroes_rows() {
        let (model, _) = const_model();
        let masked = MaskedGenerator::new(model.generator(), vec![false, true, false]).unwrap();
        let q = masked.generator_at(0.0);
        for j in 0..3 {
            assert_eq!(q[(1, j)], 0.0);
        }
        assert!(q[(0, 1)] > 0.0);
    }

    #[test]
    fn validation_errors() {
        let (model, _) = const_model();
        assert!(MaskedGenerator::new(model.generator(), vec![true]).is_err());
        assert!(until_probabilities(
            &model,
            &[true],
            &[true, false, false],
            TimeInterval::bounded_by(1.0).unwrap(),
            &tol()
        )
        .is_err());
        assert!(until_evaluator(
            &model,
            &[true, false, false],
            &[false, true, true],
            TimeInterval::bounded_by(1.0).unwrap(),
            -1.0,
            &tol()
        )
        .is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn prob_state_at_checks_index() {
        let (model, _) = const_model();
        let ev = until_evaluator(
            &model,
            &[true, false, false],
            &[false, true, true],
            TimeInterval::bounded_by(1.0).unwrap(),
            0.0,
            &tol(),
        )
        .unwrap();
        let _ = ev.prob_state_at(7, 0.0);
    }
}
