//! Sparse iterative linear solvers: restarted GMRES and power iteration.
//!
//! The dense steady-state path factors a `K × K` system with LU — `O(K³)`
//! time and `O(K²)` memory, both unaffordable for population models with
//! thousands of local states. The sparse lane replaces it with matrix-free
//! Krylov iteration: the solvers only ever call an `apply(x, y)` operator
//! (`y ← A·x`), so the caller can keep `A` in CSC form, compose it from a
//! generator plus a normalization row, or never materialize it at all.
//!
//! * [`gmres`] — restarted GMRES(m) with modified Gram–Schmidt
//!   orthogonalization and Givens-rotation least squares. The rotation
//!   update keeps the residual norm available at every inner step for
//!   free, so the stopping test costs nothing. Memory is `O(m·n)` for the
//!   Krylov basis — independent of `n²`.
//! * [`stationary_power`] — power iteration on a stochastic step
//!   `x ← x·P`, the unconditionally robust fallback for stationary
//!   distributions when a Krylov solve stagnates (e.g. restarted GMRES on
//!   an ill-conditioned bordered system). Converges at the rate of the
//!   subdominant eigenvalue, each step `O(nnz)`.
//!
//! Both report an [`IterativeStats`] so callers can distinguish "converged"
//! from "hit the budget" and act on it (fall back, tighten, or fail).

// Panic-audited: the sparse lane runs inside long-lived daemon sessions,
// so solver paths must return errors, never panic (enforced by the verify
// script's clippy audit).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use crate::error::MathError;

/// Outcome of an iterative solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterativeStats {
    /// Matrix–vector products performed.
    pub iterations: usize,
    /// Final residual estimate (GMRES: `‖b − Ax‖`; power iteration: the
    /// last max-norm update size).
    pub residual: f64,
    /// Whether the tolerance was met within the iteration budget.
    pub converged: bool,
}

fn norm2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Solves `A·x = b` with restarted GMRES(m).
///
/// `apply(x, y)` must write `A·x` into `y` (both of length `n`). The
/// returned solution is the best iterate found; check
/// [`IterativeStats::converged`] before trusting it. Convergence means
/// `‖b − Ax‖ ≤ tol·max(‖b‖, 1)`.
///
/// # Errors
///
/// Returns [`MathError::InvalidArgument`] for shape mismatches, a zero
/// restart length, or a non-positive tolerance, and
/// [`MathError::NoConvergence`] if the iteration produces non-finite
/// values (a sign the operator itself is broken).
pub fn gmres<A: FnMut(&[f64], &mut [f64])>(
    mut apply: A,
    b: &[f64],
    x0: &[f64],
    restart: usize,
    max_iter: usize,
    tol: f64,
) -> Result<(Vec<f64>, IterativeStats), MathError> {
    let n = b.len();
    if x0.len() != n {
        return Err(MathError::InvalidArgument(format!(
            "initial guess has length {}, rhs has {n}",
            x0.len()
        )));
    }
    if restart == 0 || max_iter == 0 {
        return Err(MathError::InvalidArgument(
            "restart length and iteration budget must be positive".into(),
        ));
    }
    if !(tol > 0.0) || !tol.is_finite() {
        return Err(MathError::InvalidArgument(format!(
            "tolerance must be positive and finite, got {tol}"
        )));
    }
    let m = restart.min(n).min(max_iter);
    let target = tol * norm2(b).max(1.0);

    let mut x = x0.to_vec();
    let mut iterations = 0usize;
    let mut residual = f64::INFINITY;
    let mut scratch = vec![0.0; n];

    // Krylov basis and the Hessenberg factorization state, reused across
    // restarts.
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(m + 1);
    let mut h_cols: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut cs = vec![0.0; m];
    let mut sn = vec![0.0; m];
    let mut g = vec![0.0; m + 1];

    'outer: while iterations < max_iter {
        // r = b − A·x.
        apply(&x, &mut scratch);
        let mut r: Vec<f64> = b.iter().zip(&scratch).map(|(bi, yi)| bi - yi).collect();
        let beta = norm2(&r);
        if !beta.is_finite() {
            return Err(MathError::NoConvergence {
                iterations,
                context: "GMRES residual is not finite".into(),
            });
        }
        residual = beta;
        if beta <= target {
            break;
        }
        for v in &mut r {
            *v /= beta;
        }
        basis.clear();
        basis.push(r);
        h_cols.clear();
        g.iter_mut().for_each(|v| *v = 0.0);
        g[0] = beta;

        let mut inner = 0usize;
        while inner < m && iterations < max_iter {
            let j = inner;
            apply(&basis[j], &mut scratch);
            iterations += 1;
            // Modified Gram–Schmidt against the basis so far.
            let mut h = vec![0.0; j + 2];
            for (i, vi) in basis.iter().enumerate() {
                let dot: f64 = vi.iter().zip(&scratch).map(|(a, b)| a * b).sum();
                h[i] = dot;
                for (w, &v) in scratch.iter_mut().zip(vi.iter()) {
                    *w -= dot * v;
                }
            }
            let hnext = norm2(&scratch);
            h[j + 1] = hnext;
            // Apply the accumulated Givens rotations to the new column.
            for i in 0..j {
                let (c, s) = (cs[i], sn[i]);
                let t = c * h[i] + s * h[i + 1];
                h[i + 1] = -s * h[i] + c * h[i + 1];
                h[i] = t;
            }
            // New rotation zeroing h[j+1].
            let denom = (h[j] * h[j] + h[j + 1] * h[j + 1]).sqrt();
            let (c, s) = if denom == 0.0 { (1.0, 0.0) } else { (h[j] / denom, h[j + 1] / denom) };
            cs[j] = c;
            sn[j] = s;
            h[j] = c * h[j] + s * h[j + 1];
            h[j + 1] = 0.0;
            let t = c * g[j] + s * g[j + 1];
            g[j + 1] = -s * g[j] + c * g[j + 1];
            g[j] = t;
            h_cols.push(h);
            residual = g[j + 1].abs();
            if !residual.is_finite() {
                return Err(MathError::NoConvergence {
                    iterations,
                    context: "GMRES iterate is not finite".into(),
                });
            }
            inner += 1;
            let happy = hnext <= f64::EPSILON * target.max(1.0);
            if residual <= target || happy {
                update_solution(&mut x, &basis, &h_cols, &g, inner);
                if residual <= target {
                    break 'outer;
                }
                // Happy breakdown without convergence: the Krylov space is
                // exhausted; restarting cannot improve the iterate.
                break 'outer;
            }
            if hnext > 0.0 && inner < m {
                let mut next = std::mem::take(&mut scratch);
                for v in &mut next {
                    *v /= hnext;
                }
                basis.push(next);
                scratch = vec![0.0; n];
            }
        }
        update_solution(&mut x, &basis, &h_cols, &g, h_cols.len());
    }
    let converged = residual <= target;
    Ok((
        x,
        IterativeStats {
            iterations,
            residual,
            converged,
        },
    ))
}

/// Back-substitutes the Givens-reduced least-squares system and adds the
/// Krylov correction `V·y` to `x`.
fn update_solution(x: &mut [f64], basis: &[Vec<f64>], h_cols: &[Vec<f64>], g: &[f64], k: usize) {
    if k == 0 {
        return;
    }
    let mut y = vec![0.0; k];
    for i in (0..k).rev() {
        let mut acc = g[i];
        for (j, yj) in y.iter().enumerate().take(k).skip(i + 1) {
            acc -= h_cols[j][i] * yj;
        }
        let d = h_cols[i][i];
        y[i] = if d != 0.0 { acc / d } else { 0.0 };
    }
    for (j, yj) in y.iter().enumerate() {
        for (xi, &vi) in x.iter_mut().zip(&basis[j]) {
            *xi += yj * vi;
        }
    }
}

/// Power iteration for the stationary distribution of a stochastic step.
///
/// `step(x, y)` must write `x·P` into `y` for a (sub)stochastic matrix `P`
/// — typically a uniformized chain `P = I + Q/Λ`. Starting from `x0` (or
/// uniform), iterates with L1 renormalization until the max-norm update
/// falls below `tol` or the budget runs out.
///
/// # Errors
///
/// Returns [`MathError::InvalidArgument`] for an empty system, a bad
/// initial guess, or a non-positive tolerance.
pub fn stationary_power<S: FnMut(&[f64], &mut [f64])>(
    mut step: S,
    n: usize,
    x0: Option<&[f64]>,
    tol: f64,
    max_iter: usize,
) -> Result<(Vec<f64>, IterativeStats), MathError> {
    if n == 0 {
        return Err(MathError::InvalidArgument(
            "system must have at least one state".into(),
        ));
    }
    if !(tol > 0.0) || !tol.is_finite() {
        return Err(MathError::InvalidArgument(format!(
            "tolerance must be positive and finite, got {tol}"
        )));
    }
    let mut x = match x0 {
        Some(v) => {
            if v.len() != n {
                return Err(MathError::InvalidArgument(format!(
                    "initial guess has length {}, expected {n}",
                    v.len()
                )));
            }
            v.to_vec()
        }
        None => vec![1.0 / n as f64; n],
    };
    let mut next = vec![0.0; n];
    let mut iterations = 0usize;
    let mut residual = f64::INFINITY;
    while iterations < max_iter {
        step(&x, &mut next);
        iterations += 1;
        let mass: f64 = next.iter().sum();
        if mass > 0.0 {
            for v in &mut next {
                *v /= mass;
            }
        }
        residual = x
            .iter()
            .zip(&next)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0_f64, f64::max);
        std::mem::swap(&mut x, &mut next);
        if residual <= tol {
            break;
        }
    }
    let converged = residual <= tol;
    Ok((
        x,
        IterativeStats {
            iterations,
            residual,
            converged,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::LuDecomposition;
    use crate::matrix::Matrix;
    use crate::sparse::CscMatrix;

    #[test]
    fn gmres_matches_lu_on_dense_system() {
        let a = Matrix::from_rows(&[
            &[4.0, 1.0, 0.0, 0.0],
            &[1.0, 4.0, 1.0, 0.0],
            &[0.0, 1.0, 4.0, 1.0],
            &[0.5, 0.0, 1.0, 4.0],
        ])
        .unwrap();
        let b = [1.0, -2.0, 0.5, 3.0];
        let exact = LuDecomposition::new(&a).unwrap().solve(&b).unwrap();
        let (x, stats) = gmres(
            |v, y| {
                // y = A v: each output is a row of A dotted with v.
                for (j, o) in y.iter_mut().enumerate() {
                    *o = a.row(j).iter().zip(v).map(|(aij, vi)| aij * vi).sum();
                }
            },
            &b,
            &[0.0; 4],
            4,
            100,
            1e-14,
        )
        .unwrap();
        assert!(stats.converged, "{stats:?}");
        for (g, e) in x.iter().zip(&exact) {
            assert!((g - e).abs() < 1e-12, "{x:?} vs {exact:?}");
        }
    }

    #[test]
    fn gmres_on_sparse_operator() {
        // A diagonally dominant sparse system: tridiagonal, n = 200.
        let n = 200;
        let mut tri = Vec::new();
        for i in 0..n {
            tri.push((i, i, 4.0));
            if i + 1 < n {
                tri.push((i, i + 1, 1.0));
                tri.push((i + 1, i, 1.2));
            }
        }
        let a = CscMatrix::from_triplets(n, n, &tri).unwrap();
        // y = A x: gather over the columns of Aᵀ.
        let at = a.transpose();
        let b: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 3.0).collect();
        let (x, stats) =
            gmres(|v, y| at.vecmat(v, y), &b, &vec![0.0; n], 50, 2000, 1e-13).unwrap();
        assert!(stats.converged, "{stats:?}");
        // Check the residual directly.
        let mut ax = vec![0.0; n];
        at.vecmat(&x, &mut ax);
        let rnorm = b
            .iter()
            .zip(&ax)
            .map(|(bi, yi)| (bi - yi) * (bi - yi))
            .sum::<f64>()
            .sqrt();
        assert!(rnorm < 1e-10, "residual {rnorm}");
    }

    #[test]
    fn gmres_reports_non_convergence() {
        // One iteration on a system that needs more: not converged.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 1.0]]).unwrap();
        let (_, stats) = gmres(
            |v, y| {
                y[0] = a[(0, 0)] * v[0] + a[(0, 1)] * v[1];
                y[1] = a[(1, 0)] * v[0] + a[(1, 1)] * v[1];
            },
            &[1.0, 1.0],
            &[0.0, 0.0],
            1,
            1,
            1e-14,
        )
        .unwrap();
        assert!(!stats.converged);
        assert_eq!(stats.iterations, 1);
    }

    #[test]
    fn gmres_validation() {
        let id = |v: &[f64], y: &mut [f64]| y.copy_from_slice(v);
        assert!(gmres(id, &[1.0], &[1.0, 2.0], 1, 10, 1e-10).is_err());
        assert!(gmres(id, &[1.0], &[0.0], 0, 10, 1e-10).is_err());
        assert!(gmres(id, &[1.0], &[0.0], 1, 10, -1.0).is_err());
        assert!(gmres(id, &[1.0], &[0.0], 1, 10, f64::NAN).is_err());
    }

    #[test]
    fn power_iteration_finds_two_state_stationary() {
        // P for the chain a->b rate 2, b->a rate 1, uniformized at 3:
        // stationary distribution (1/3, 2/3).
        let p = [[1.0 - 2.0 / 3.0, 2.0 / 3.0], [1.0 / 3.0, 1.0 - 1.0 / 3.0]];
        let (pi, stats) = stationary_power(
            |x, y| {
                y[0] = x[0] * p[0][0] + x[1] * p[1][0];
                y[1] = x[0] * p[0][1] + x[1] * p[1][1];
            },
            2,
            None,
            1e-14,
            10_000,
        )
        .unwrap();
        assert!(stats.converged);
        assert!((pi[0] - 1.0 / 3.0).abs() < 1e-10);
        assert!((pi[1] - 2.0 / 3.0).abs() < 1e-10);
    }

    #[test]
    fn power_iteration_validation() {
        let id = |x: &[f64], y: &mut [f64]| y.copy_from_slice(x);
        assert!(stationary_power(id, 0, None, 1e-10, 10).is_err());
        assert!(stationary_power(id, 2, Some(&[1.0]), 1e-10, 10).is_err());
        assert!(stationary_power(id, 1, None, 0.0, 10).is_err());
    }
}
