//! Interpolation utilities.
//!
//! Dense ODE output is represented as piecewise cubic Hermite data: at each
//! accepted step the solver records the state and its derivative, which pins
//! down a C¹ cubic on every step interval. The model checker evaluates
//! occupancy trajectories `m̄(t)` at the arbitrary times requested by the
//! Kolmogorov integrations through this representation.

use serde::{Deserialize, Serialize};

use crate::MathError;

/// Evaluates the cubic Hermite interpolant on `[t0, t1]` with endpoint
/// values `y0, y1` and endpoint derivatives `d0, d1`, at parameter `t`.
///
/// # Example
///
/// ```
/// use mfcsl_math::interp::hermite;
///
/// // Interpolating f(t) = t^2 on [0, 1] (derivatives 0 and 2) is exact.
/// let y = hermite(0.0, 1.0, 0.0, 1.0, 0.0, 2.0, 0.5);
/// assert!((y - 0.25).abs() < 1e-15);
/// ```
#[must_use]
#[allow(clippy::many_single_char_names)]
pub fn hermite(t0: f64, t1: f64, y0: f64, y1: f64, d0: f64, d1: f64, t: f64) -> f64 {
    let h = t1 - t0;
    if h == 0.0 {
        return y0;
    }
    let s = (t - t0) / h;
    let s2 = s * s;
    let s3 = s2 * s;
    let h00 = 2.0 * s3 - 3.0 * s2 + 1.0;
    let h10 = s3 - 2.0 * s2 + s;
    let h01 = -2.0 * s3 + 3.0 * s2;
    let h11 = s3 - s2;
    h00 * y0 + h10 * h * d0 + h01 * y1 + h11 * h * d1
}

/// Evaluates the derivative of the cubic Hermite interpolant at `t`.
#[must_use]
#[allow(clippy::many_single_char_names)]
pub fn hermite_derivative(t0: f64, t1: f64, y0: f64, y1: f64, d0: f64, d1: f64, t: f64) -> f64 {
    let h = t1 - t0;
    if h == 0.0 {
        return d0;
    }
    let s = (t - t0) / h;
    let s2 = s * s;
    let dh00 = (6.0 * s2 - 6.0 * s) / h;
    let dh10 = 3.0 * s2 - 4.0 * s + 1.0;
    let dh01 = (-6.0 * s2 + 6.0 * s) / h;
    let dh11 = 3.0 * s2 - 2.0 * s;
    dh00 * y0 + dh10 * d0 + dh01 * y1 + dh11 * d1
}

/// Piecewise-linear interpolation on sorted knots.
///
/// # Errors
///
/// Returns [`MathError::DimensionMismatch`] if `xs` and `ys` differ in
/// length and [`MathError::InvalidArgument`] if fewer than two knots are
/// given or the knots are not strictly increasing. Queries outside the knot
/// range clamp to the boundary values.
pub fn linear(xs: &[f64], ys: &[f64], x: f64) -> Result<f64, MathError> {
    if xs.len() != ys.len() {
        return Err(MathError::DimensionMismatch {
            expected: format!("len {}", xs.len()),
            found: format!("len {}", ys.len()),
        });
    }
    if xs.len() < 2 {
        return Err(MathError::InvalidArgument(
            "linear interpolation needs at least two knots".into(),
        ));
    }
    if xs.windows(2).any(|w| w[0] >= w[1]) {
        return Err(MathError::InvalidArgument(
            "knots must be strictly increasing".into(),
        ));
    }
    if x <= xs[0] {
        return Ok(ys[0]);
    }
    if x >= xs[xs.len() - 1] {
        return Ok(ys[ys.len() - 1]);
    }
    let i = match xs.partition_point(|&k| k <= x) {
        0 => 0,
        p => p - 1,
    };
    let w = (x - xs[i]) / (xs[i + 1] - xs[i]);
    Ok(ys[i] * (1.0 - w) + ys[i + 1] * w)
}

/// A vector-valued piecewise cubic Hermite curve (the dense-output format of
/// the ODE solvers): knot times with values and derivatives per component.
///
/// Knot data is stored in two flat knot-major arenas (`ys[k*dim..(k+1)*dim]`
/// is the state at `knots()[k]`), so appending an accepted solver step is one
/// `extend_from_slice` per arena instead of a boxed `Vec` clone, and
/// evaluation walks contiguous memory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HermiteCurve {
    dim: usize,
    ts: Vec<f64>,
    /// Flat knot-major state values: `ys[k*dim..(k+1)*dim]` is the state at
    /// `ts[k]`.
    ys: Vec<f64>,
    /// Flat knot-major state derivatives, same layout as `ys`.
    ds: Vec<f64>,
}

impl HermiteCurve {
    /// Builds a curve from knot times, values and derivatives.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidArgument`] if the knots are not strictly
    /// increasing or fewer than one knot is supplied, and
    /// [`MathError::DimensionMismatch`] if the arrays disagree in length or
    /// the state vectors disagree in dimension.
    pub fn new(ts: Vec<f64>, ys: Vec<Vec<f64>>, ds: Vec<Vec<f64>>) -> Result<Self, MathError> {
        if ts.is_empty() {
            return Err(MathError::InvalidArgument(
                "curve needs at least one knot".into(),
            ));
        }
        if ts.len() != ys.len() || ts.len() != ds.len() {
            return Err(MathError::DimensionMismatch {
                expected: format!("{} knots", ts.len()),
                found: format!("{} values / {} derivatives", ys.len(), ds.len()),
            });
        }
        let dim = ys[0].len();
        for (y, d) in ys.iter().zip(&ds) {
            if y.len() != dim || d.len() != dim {
                return Err(MathError::DimensionMismatch {
                    expected: format!("state dim {dim}"),
                    found: format!("state dim {} / {}", y.len(), d.len()),
                });
            }
        }
        let mut ys_flat = Vec::with_capacity(ts.len() * dim);
        let mut ds_flat = Vec::with_capacity(ts.len() * dim);
        for (y, d) in ys.iter().zip(&ds) {
            ys_flat.extend_from_slice(y);
            ds_flat.extend_from_slice(d);
        }
        Self::from_flat(dim, ts, ys_flat, ds_flat)
    }

    /// Builds a curve directly from flat knot-major arenas, the storage the
    /// solver workspace accumulates accepted steps into.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidArgument`] if no knot is supplied or the
    /// knots are not strictly increasing, and
    /// [`MathError::DimensionMismatch`] if an arena length is not
    /// `ts.len() * dim`.
    pub fn from_flat(
        dim: usize,
        ts: Vec<f64>,
        ys: Vec<f64>,
        ds: Vec<f64>,
    ) -> Result<Self, MathError> {
        if ts.is_empty() {
            return Err(MathError::InvalidArgument(
                "curve needs at least one knot".into(),
            ));
        }
        if ys.len() != ts.len() * dim || ds.len() != ts.len() * dim {
            return Err(MathError::DimensionMismatch {
                expected: format!("{} knots of dim {dim}", ts.len()),
                found: format!("{} values / {} derivatives", ys.len(), ds.len()),
            });
        }
        if ts.windows(2).any(|w| w[0] >= w[1]) {
            return Err(MathError::InvalidArgument(
                "knot times must be strictly increasing".into(),
            ));
        }
        Ok(HermiteCurve { dim, ts, ys, ds })
    }

    /// State dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// First knot time.
    #[must_use]
    pub fn t_start(&self) -> f64 {
        self.ts[0]
    }

    /// Last knot time.
    #[must_use]
    pub fn t_end(&self) -> f64 {
        *self.ts.last().expect("nonempty")
    }

    /// Knot times.
    #[must_use]
    pub fn knots(&self) -> &[f64] {
        &self.ts
    }

    /// The state vector at knot `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[must_use]
    pub fn value_at(&self, k: usize) -> &[f64] {
        &self.ys[k * self.dim..(k + 1) * self.dim]
    }

    /// The state derivative at knot `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[must_use]
    pub fn derivative_at(&self, k: usize) -> &[f64] {
        &self.ds[k * self.dim..(k + 1) * self.dim]
    }

    /// Appends `tail` to this curve, producing one curve over the union of
    /// the two time ranges.
    ///
    /// The tail must start exactly (bitwise) at this curve's last knot and
    /// agree there in dimension; the duplicated junction knot is taken from
    /// `self`, so the knot data on `[t_start, t_end]` of the original curve
    /// is preserved bitwise — evaluations on the old range are unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] if the state dimensions
    /// differ and [`MathError::InvalidArgument`] if the tail does not start
    /// at this curve's end time.
    pub fn concat(mut self, tail: &HermiteCurve) -> Result<Self, MathError> {
        if tail.dim() != self.dim() {
            return Err(MathError::DimensionMismatch {
                expected: format!("state dim {}", self.dim()),
                found: format!("state dim {}", tail.dim()),
            });
        }
        if tail.t_start() != self.t_end() {
            return Err(MathError::InvalidArgument(format!(
                "cannot concatenate: tail starts at {} but curve ends at {}",
                tail.t_start(),
                self.t_end()
            )));
        }
        self.ts.extend_from_slice(&tail.ts[1..]);
        self.ys.extend_from_slice(&tail.ys[tail.dim..]);
        self.ds.extend_from_slice(&tail.ds[tail.dim..]);
        Ok(self)
    }

    /// Evaluates the curve at `t`, clamping outside `[t_start, t_end]`.
    #[must_use]
    pub fn eval(&self, t: f64) -> Vec<f64> {
        let mut out = vec![0.0; self.dim()];
        self.eval_into(t, &mut out);
        out
    }

    /// Evaluates the curve at `t` into a caller-provided buffer.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.dim()`.
    pub fn eval_into(&self, t: f64, out: &mut [f64]) {
        assert_eq!(out.len(), self.dim(), "output buffer has wrong dimension");
        if t <= self.ts[0] {
            out.copy_from_slice(self.value_at(0));
            return;
        }
        let last = self.ts.len() - 1;
        if t >= self.ts[last] {
            out.copy_from_slice(self.value_at(last));
            return;
        }
        let i = match self.ts.partition_point(|&k| k <= t) {
            0 => 0,
            p => p - 1,
        };
        let (y0, y1) = (self.value_at(i), self.value_at(i + 1));
        let (d0, d1) = (self.derivative_at(i), self.derivative_at(i + 1));
        for (c, out_c) in out.iter_mut().enumerate() {
            *out_c = hermite(self.ts[i], self.ts[i + 1], y0[c], y1[c], d0[c], d1[c], t);
        }
    }

    /// Evaluates the time derivative of the curve at `t` (clamped to the
    /// boundary derivative outside the knot range).
    #[must_use]
    pub fn eval_derivative(&self, t: f64) -> Vec<f64> {
        if t <= self.ts[0] {
            return self.derivative_at(0).to_vec();
        }
        let last = self.ts.len() - 1;
        if t >= self.ts[last] {
            return self.derivative_at(last).to_vec();
        }
        let i = match self.ts.partition_point(|&k| k <= t) {
            0 => 0,
            p => p - 1,
        };
        let (y0, y1) = (self.value_at(i), self.value_at(i + 1));
        let (d0, d1) = (self.derivative_at(i), self.derivative_at(i + 1));
        (0..self.dim())
            .map(|c| hermite_derivative(self.ts[i], self.ts[i + 1], y0[c], y1[c], d0[c], d1[c], t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn hermite_reproduces_cubics_exactly() {
        // f(t) = t^3 - 2t + 1 on [1, 3].
        let f = |t: f64| t.powi(3) - 2.0 * t + 1.0;
        let df = |t: f64| 3.0 * t * t - 2.0;
        for &t in &[1.0, 1.5, 2.0, 2.7, 3.0] {
            let y = hermite(1.0, 3.0, f(1.0), f(3.0), df(1.0), df(3.0), t);
            assert!((y - f(t)).abs() < 1e-12, "t={t}");
            let d = hermite_derivative(1.0, 3.0, f(1.0), f(3.0), df(1.0), df(3.0), t);
            assert!((d - df(t)).abs() < 1e-11, "t={t}");
        }
    }

    #[test]
    fn hermite_degenerate_interval() {
        assert_eq!(hermite(1.0, 1.0, 5.0, 7.0, 0.0, 0.0, 1.0), 5.0);
        assert_eq!(hermite_derivative(1.0, 1.0, 5.0, 7.0, 3.0, 9.0, 1.0), 3.0);
    }

    #[test]
    fn linear_interp_basics() {
        let xs = [0.0, 1.0, 3.0];
        let ys = [0.0, 2.0, 2.0];
        assert_eq!(linear(&xs, &ys, 0.5).unwrap(), 1.0);
        assert_eq!(linear(&xs, &ys, 2.0).unwrap(), 2.0);
        // Clamping.
        assert_eq!(linear(&xs, &ys, -1.0).unwrap(), 0.0);
        assert_eq!(linear(&xs, &ys, 9.0).unwrap(), 2.0);
    }

    #[test]
    fn linear_interp_validates() {
        assert!(linear(&[0.0, 1.0], &[0.0], 0.5).is_err());
        assert!(linear(&[0.0], &[0.0], 0.5).is_err());
        assert!(linear(&[0.0, 0.0], &[0.0, 1.0], 0.5).is_err());
    }

    #[test]
    fn curve_validates_inputs() {
        assert!(HermiteCurve::new(vec![], vec![], vec![]).is_err());
        assert!(HermiteCurve::new(vec![0.0, 1.0], vec![vec![0.0]], vec![vec![0.0]]).is_err());
        assert!(HermiteCurve::new(
            vec![0.0, 0.0],
            vec![vec![0.0], vec![1.0]],
            vec![vec![0.0], vec![0.0]]
        )
        .is_err());
        assert!(HermiteCurve::new(
            vec![0.0, 1.0],
            vec![vec![0.0], vec![1.0, 2.0]],
            vec![vec![0.0], vec![0.0]]
        )
        .is_err());
    }

    #[test]
    fn curve_eval_and_clamp() {
        // y(t) = (t^2, -t) on knots 0, 1, 2.
        let ts = vec![0.0, 1.0, 2.0];
        let ys = vec![vec![0.0, 0.0], vec![1.0, -1.0], vec![4.0, -2.0]];
        let ds = vec![vec![0.0, -1.0], vec![2.0, -1.0], vec![4.0, -1.0]];
        let c = HermiteCurve::new(ts, ys, ds).unwrap();
        assert_eq!(c.dim(), 2);
        assert_eq!(c.t_start(), 0.0);
        assert_eq!(c.t_end(), 2.0);
        let y = c.eval(1.5);
        assert!((y[0] - 2.25).abs() < 1e-12);
        assert!((y[1] + 1.5).abs() < 1e-12);
        let d = c.eval_derivative(1.5);
        assert!((d[0] - 3.0).abs() < 1e-12);
        assert!((d[1] + 1.0).abs() < 1e-12);
        // Clamped evaluation.
        assert_eq!(c.eval(-1.0), vec![0.0, 0.0]);
        assert_eq!(c.eval(5.0), vec![4.0, -2.0]);
        assert_eq!(c.eval_derivative(-1.0), vec![0.0, -1.0]);
    }

    #[test]
    fn curve_concat_extends_range_and_preserves_prefix() {
        let a = HermiteCurve::new(
            vec![0.0, 1.0],
            vec![vec![0.0], vec![1.0]],
            vec![vec![0.0], vec![2.0]],
        )
        .unwrap();
        let b = HermiteCurve::new(
            vec![1.0, 2.0],
            vec![vec![1.0], vec![4.0]],
            vec![vec![2.0], vec![4.0]],
        )
        .unwrap();
        let prefix_sample = a.eval(0.5);
        let joined = a.clone().concat(&b).unwrap();
        assert_eq!(joined.t_start(), 0.0);
        assert_eq!(joined.t_end(), 2.0);
        assert_eq!(joined.knots(), &[0.0, 1.0, 2.0]);
        // The old range is untouched, bitwise.
        assert_eq!(joined.eval(0.5), prefix_sample);
        assert_eq!(joined.eval(1.0), vec![1.0]);
        assert!((joined.eval(1.5)[0] - 2.25).abs() < 1e-12);
    }

    #[test]
    fn curve_concat_validates() {
        let a = HermiteCurve::new(vec![0.0], vec![vec![0.0]], vec![vec![0.0]]).unwrap();
        let gap = HermiteCurve::new(vec![2.0], vec![vec![0.0]], vec![vec![0.0]]).unwrap();
        assert!(a.clone().concat(&gap).is_err());
        let wrong_dim =
            HermiteCurve::new(vec![0.0], vec![vec![0.0, 1.0]], vec![vec![0.0, 0.0]]).unwrap();
        assert!(a.concat(&wrong_dim).is_err());
    }

    #[test]
    fn from_flat_matches_nested_and_validates() {
        let nested = HermiteCurve::new(
            vec![0.0, 1.0, 2.0],
            vec![vec![0.0, 0.0], vec![1.0, -1.0], vec![4.0, -2.0]],
            vec![vec![0.0, -1.0], vec![2.0, -1.0], vec![4.0, -1.0]],
        )
        .unwrap();
        let flat = HermiteCurve::from_flat(
            2,
            vec![0.0, 1.0, 2.0],
            vec![0.0, 0.0, 1.0, -1.0, 4.0, -2.0],
            vec![0.0, -1.0, 2.0, -1.0, 4.0, -1.0],
        )
        .unwrap();
        assert_eq!(nested, flat);
        assert_eq!(flat.value_at(1), &[1.0, -1.0]);
        assert_eq!(flat.derivative_at(2), &[4.0, -1.0]);
        // Arena length must be knots * dim.
        assert!(HermiteCurve::from_flat(2, vec![0.0, 1.0], vec![0.0; 3], vec![0.0; 4]).is_err());
        // Empty and non-increasing knots are rejected.
        assert!(HermiteCurve::from_flat(2, vec![], vec![], vec![]).is_err());
        assert!(
            HermiteCurve::from_flat(1, vec![1.0, 1.0], vec![0.0; 2], vec![0.0; 2]).is_err()
        );
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn eval_into_checks_buffer() {
        let c = HermiteCurve::new(vec![0.0], vec![vec![1.0, 2.0]], vec![vec![0.0, 0.0]]).unwrap();
        let mut buf = [0.0];
        c.eval_into(0.0, &mut buf);
    }

    proptest! {
        /// The Hermite interpolant matches the endpoints exactly.
        #[test]
        fn prop_hermite_endpoint_exact(
            y0 in -10.0_f64..10.0,
            y1 in -10.0_f64..10.0,
            d0 in -10.0_f64..10.0,
            d1 in -10.0_f64..10.0,
        ) {
            let a = hermite(2.0, 5.0, y0, y1, d0, d1, 2.0);
            let b = hermite(2.0, 5.0, y0, y1, d0, d1, 5.0);
            prop_assert!((a - y0).abs() < 1e-12);
            prop_assert!((b - y1).abs() < 1e-12);
        }
    }
}
