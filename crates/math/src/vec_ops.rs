//! Free functions on `&[f64]` vectors.
//!
//! The crate deliberately represents vectors as plain slices / `Vec<f64>` so
//! that the ODE solvers and model checkers can operate on borrowed state
//! buffers without wrapper types. The helpers here implement the handful of
//! BLAS-level-1 operations those algorithms need.

use crate::MathError;

/// Returns the dot product `x · y`.
///
/// # Errors
///
/// Returns [`MathError::DimensionMismatch`] if the slices have different
/// lengths.
///
/// # Example
///
/// ```
/// let d = mfcsl_math::vec_ops::dot(&[1.0, 2.0], &[3.0, 4.0])?;
/// assert_eq!(d, 11.0);
/// # Ok::<(), mfcsl_math::MathError>(())
/// ```
pub fn dot(x: &[f64], y: &[f64]) -> Result<f64, MathError> {
    check_same_len(x, y)?;
    Ok(x.iter().zip(y).map(|(a, b)| a * b).sum())
}

/// Computes `y ← y + alpha * x` in place.
///
/// # Errors
///
/// Returns [`MathError::DimensionMismatch`] if the slices have different
/// lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) -> Result<(), MathError> {
    check_same_len(x, y)?;
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
    Ok(())
}

/// Returns the Euclidean (L2) norm of `x`.
#[must_use]
pub fn norm2(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Returns the L1 norm of `x`.
#[must_use]
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// Returns the max (L∞) norm of `x`.
#[must_use]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// Returns the max-norm distance between `x` and `y`.
///
/// # Errors
///
/// Returns [`MathError::DimensionMismatch`] if the slices have different
/// lengths.
pub fn dist_inf(x: &[f64], y: &[f64]) -> Result<f64, MathError> {
    check_same_len(x, y)?;
    Ok(x.iter()
        .zip(y)
        .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs())))
}

/// Scales `x` in place by `alpha`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for v in x {
        *v *= alpha;
    }
}

/// Returns the sum of the entries of `x`.
#[must_use]
pub fn sum(x: &[f64]) -> f64 {
    x.iter().sum()
}

/// Returns a linearly spaced grid of `n` points covering `[a, b]` inclusive.
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Example
///
/// ```
/// let g = mfcsl_math::vec_ops::linspace(0.0, 1.0, 5);
/// assert_eq!(g, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
/// ```
#[must_use]
pub fn linspace(a: f64, b: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "linspace requires at least 2 points");
    let step = (b - a) / (n - 1) as f64;
    let mut out: Vec<f64> = (0..n).map(|i| a + step * i as f64).collect();
    // Make the final point exact so downstream interval logic can rely on it.
    out[n - 1] = b;
    out
}

fn check_same_len(x: &[f64], y: &[f64]) -> Result<(), MathError> {
    if x.len() == y.len() {
        Ok(())
    } else {
        Err(MathError::DimensionMismatch {
            expected: format!("len {}", x.len()),
            found: format!("len {}", y.len()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_axpy() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [4.0, 5.0, 6.0];
        assert_eq!(dot(&x, &y).unwrap(), 32.0);
        axpy(2.0, &x, &mut y).unwrap();
        assert_eq!(y, [6.0, 9.0, 12.0]);
    }

    #[test]
    fn mismatched_lengths_error() {
        assert!(dot(&[1.0], &[1.0, 2.0]).is_err());
        assert!(axpy(1.0, &[1.0], &mut [1.0, 2.0]).is_err());
        assert!(dist_inf(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn norms() {
        let x = [3.0, -4.0];
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(norm1(&x), 7.0);
        assert_eq!(norm_inf(&x), 4.0);
        assert_eq!(dist_inf(&x, &[3.0, 0.0]).unwrap(), 4.0);
    }

    #[test]
    fn linspace_endpoints_exact() {
        let g = linspace(0.0, 0.3, 4);
        assert_eq!(g.len(), 4);
        assert_eq!(g[0], 0.0);
        assert_eq!(g[3], 0.3);
        assert!((g[1] - 0.1).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn linspace_needs_two_points() {
        let _ = linspace(0.0, 1.0, 1);
    }

    #[test]
    fn scale_and_sum() {
        let mut x = [1.0, 2.0];
        scale(3.0, &mut x);
        assert_eq!(x, [3.0, 6.0]);
        assert_eq!(sum(&x), 9.0);
    }
}
