//! LU decomposition with partial pivoting.
//!
//! Used throughout the workspace to solve the small dense linear systems
//! arising in steady-state analysis (`πQ = 0`), Newton steps for mean-field
//! fixed points, and the Padé solves inside the matrix exponential.

use crate::{MathError, Matrix};

/// An LU decomposition `P A = L U` with partial (row) pivoting.
///
/// # Example
///
/// ```
/// use mfcsl_math::{lu::LuDecomposition, Matrix};
///
/// # fn main() -> Result<(), mfcsl_math::MathError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]])?;
/// let lu = LuDecomposition::new(&a)?;
/// let x = lu.solve(&[3.0, 5.0])?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    /// Combined L (strictly lower, unit diagonal implied) and U (upper).
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation, for the determinant.
    perm_sign: f64,
}

impl LuDecomposition {
    /// Relative pivot threshold below which the matrix is declared singular.
    const SINGULARITY_RTOL: f64 = 1e-13;

    /// Factors `a` as `P A = L U`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::NotSquare`] for rectangular input and
    /// [`MathError::Singular`] if a pivot is smaller than
    /// `1e-13 · max|A|` (with an absolute floor of `f64::MIN_POSITIVE`).
    pub fn new(a: &Matrix) -> Result<Self, MathError> {
        Self::from_matrix(a.clone())
    }

    /// Factors `a` as `P A = L U`, consuming `a` and factoring in place —
    /// no scratch copy, which matters when the system matrix is large and
    /// was already built specifically for this solve.
    ///
    /// # Errors
    ///
    /// As [`LuDecomposition::new`].
    pub fn from_matrix(a: Matrix) -> Result<Self, MathError> {
        a.check_square()?;
        let n = a.rows();
        let mut lu = a;
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;
        let scale = lu.norm_max().max(f64::MIN_POSITIVE);
        let tol = scale * Self::SINGULARITY_RTOL;

        for k in 0..n {
            // Find the pivot row.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val <= tol {
                return Err(MathError::Singular);
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
            }
            // Eliminate below the pivot.
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let upd = factor * lu[(k, j)];
                    lu[(i, j)] -= upd;
                }
            }
        }
        Ok(LuDecomposition {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Dimension of the factored matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] if `b.len() != self.dim()`.
    #[allow(clippy::needless_range_loop)] // substitution reads earlier entries of `x` while writing later ones
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, MathError> {
        let n = self.dim();
        if b.len() != n {
            return Err(MathError::DimensionMismatch {
                expected: format!("len {n}"),
                found: format!("len {}", b.len()),
            });
        }
        // Apply permutation: y = P b.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        // Forward substitution with unit-diagonal L.
        for i in 1..n {
            let mut s = x[i];
            for j in 0..i {
                s -= self.lu[(i, j)] * x[j];
            }
            x[i] = s;
        }
        // Backward substitution with U.
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.lu[(i, j)] * x[j];
            }
            x[i] = s / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] if `b.rows() != self.dim()`.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix, MathError> {
        let n = self.dim();
        if b.rows() != n {
            return Err(MathError::DimensionMismatch {
                expected: format!("{n} rows"),
                found: format!("{} rows", b.rows()),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve(&col)?;
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// Returns `A⁻¹`.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`LuDecomposition::solve_matrix`]; the
    /// factorization itself already guarantees non-singularity.
    pub fn inverse(&self) -> Result<Matrix, MathError> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Returns `det(A)`.
    #[must_use]
    pub fn det(&self) -> f64 {
        let n = self.dim();
        let mut d = self.perm_sign;
        for i in 0..n {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Crude ∞-norm condition estimate `‖A‖∞ · ‖A⁻¹‖∞` (forms the explicit
    /// inverse; fine for the small matrices this crate targets).
    ///
    /// # Errors
    ///
    /// Propagates errors from [`LuDecomposition::inverse`].
    pub fn cond_inf(&self, a: &Matrix) -> Result<f64, MathError> {
        Ok(a.norm_inf() * self.inverse()?.norm_inf())
    }
}

/// Convenience wrapper: solves `A x = b` in one call.
///
/// # Errors
///
/// See [`LuDecomposition::new`] and [`LuDecomposition::solve`].
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, MathError> {
    LuDecomposition::new(a)?.solve(b)
}

/// Convenience wrapper: returns `A⁻¹` in one call.
///
/// # Errors
///
/// See [`LuDecomposition::new`].
pub fn inverse(a: &Matrix) -> Result<Matrix, MathError> {
    LuDecomposition::new(a)?.inverse()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn solves_known_system() {
        let a =
            Matrix::from_rows(&[&[3.0, 2.0, -1.0], &[2.0, -2.0, 4.0], &[-1.0, 0.5, -1.0]]).unwrap();
        let x = solve(&a, &[1.0, -2.0, 0.0]).unwrap();
        let expected = [1.0, -2.0, -2.0];
        for (xi, ei) in x.iter().zip(&expected) {
            assert!((xi - ei).abs() < 1e-12, "{x:?}");
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert_eq!(LuDecomposition::new(&a).unwrap_err(), MathError::Singular);
    }

    #[test]
    fn rectangular_is_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(MathError::NotSquare { .. })
        ));
    }

    #[test]
    fn determinant_with_permutation_sign() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        assert!((lu.det() + 1.0).abs() < 1e-14);
        let b = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]).unwrap();
        assert!((LuDecomposition::new(&b).unwrap().det() - 6.0).abs() < 1e-14);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]).unwrap();
        let inv = inverse(&a).unwrap();
        let prod = a.matmul(&inv).unwrap();
        let err = prod.sub_matrix(&Matrix::identity(2)).unwrap().norm_max();
        assert!(err < 1e-13);
    }

    #[test]
    fn cond_of_identity_is_one() {
        let i = Matrix::identity(4);
        let lu = LuDecomposition::new(&i).unwrap();
        assert!((lu.cond_inf(&i).unwrap() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn solve_checks_rhs_length() {
        let lu = LuDecomposition::new(&Matrix::identity(2)).unwrap();
        assert!(lu.solve(&[1.0]).is_err());
        assert!(lu.solve_matrix(&Matrix::zeros(3, 1)).is_err());
    }

    proptest! {
        /// Random diagonally-dominant systems are solved to high accuracy.
        #[test]
        fn prop_solves_diagonally_dominant(
            entries in proptest::collection::vec(-1.0_f64..1.0, 16),
            rhs in proptest::collection::vec(-10.0_f64..10.0, 4),
        ) {
            let n = 4;
            let mut a = Matrix::from_vec(n, n, entries).unwrap();
            // Make strongly diagonally dominant => well-conditioned.
            for i in 0..n {
                a[(i, i)] = 10.0 + a[(i, i)].abs();
            }
            let x = solve(&a, &rhs).unwrap();
            let back = a.mul_vec(&x).unwrap();
            for (bi, ri) in back.iter().zip(&rhs) {
                prop_assert!((bi - ri).abs() < 1e-9);
            }
        }

        /// det(AB) = det(A)det(B) for random well-conditioned matrices.
        #[test]
        fn prop_det_multiplicative(
            e1 in proptest::collection::vec(-1.0_f64..1.0, 9),
            e2 in proptest::collection::vec(-1.0_f64..1.0, 9),
        ) {
            let n = 3;
            let mut a = Matrix::from_vec(n, n, e1).unwrap();
            let mut b = Matrix::from_vec(n, n, e2).unwrap();
            for i in 0..n {
                a[(i, i)] += 5.0;
                b[(i, i)] += 5.0;
            }
            let da = LuDecomposition::new(&a).unwrap().det();
            let db = LuDecomposition::new(&b).unwrap().det();
            let dab = LuDecomposition::new(&a.matmul(&b).unwrap()).unwrap().det();
            prop_assert!((dab - da * db).abs() <= 1e-8 * dab.abs().max(1.0));
        }
    }
}
