//! Eigenvalues of small dense real matrices.
//!
//! Two independent algorithms are provided and cross-validated against each
//! other in the test suite:
//!
//! * [`eigenvalues`] — the production path: reduction to upper Hessenberg
//!   form by stabilized elementary similarity transformations, followed by
//!   the Francis double-shift QR iteration (the classic EISPACK `hqr`
//!   scheme);
//! * [`eigenvalues_char_poly`] — characteristic polynomial via the
//!   Faddeev–LeVerrier recurrence, solved with the Durand–Kerner
//!   (Weierstrass) simultaneous root iteration. Simpler, adequate for very
//!   small matrices, and a useful independent oracle.
//!
//! The mean-field layer uses eigenvalues to classify the stability of fixed
//! points of the occupancy ODE (Sec. II-B of the paper: the stationary point
//! `m̃·Q(m̃) = 0` approximates steady state only when the fluid limit is
//! well-behaved; a negative spectral abscissa of the Jacobian certifies
//! local asymptotic stability).

use crate::{Complex, MathError, Matrix};

/// Maximum Francis QR iterations per eigenvalue before giving up.
const MAX_QR_ITERS: usize = 60;

/// Computes all eigenvalues of a square matrix via Hessenberg reduction and
/// Francis double-shift QR iteration.
///
/// Eigenvalues are returned in no particular order; complex eigenvalues come
/// in conjugate pairs.
///
/// # Errors
///
/// Returns [`MathError::NotSquare`] for rectangular input,
/// [`MathError::InvalidArgument`] for non-finite entries, and
/// [`MathError::NoConvergence`] if the QR iteration stalls (essentially
/// unreachable for the small, well-scaled matrices this crate targets).
///
/// # Example
///
/// ```
/// use mfcsl_math::{eigen::eigenvalues, Matrix};
///
/// # fn main() -> Result<(), mfcsl_math::MathError> {
/// let a = Matrix::from_rows(&[&[0.0, -1.0], &[1.0, 0.0]])?;
/// let mut eig = eigenvalues(&a)?;
/// eig.sort_by(|a, b| a.im.partial_cmp(&b.im).unwrap());
/// assert!((eig[0].im + 1.0).abs() < 1e-12);
/// assert!((eig[1].im - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn eigenvalues(a: &Matrix) -> Result<Vec<Complex>, MathError> {
    a.check_square()?;
    a.check_finite()?;
    let n = a.rows();
    if n == 0 {
        return Ok(Vec::new());
    }
    if n == 1 {
        return Ok(vec![Complex::from_real(a[(0, 0)])]);
    }
    let h = hessenberg(a);
    hqr(h)
}

/// Returns the spectral abscissa `max Re(λ)` over all eigenvalues.
///
/// # Errors
///
/// See [`eigenvalues`]. Additionally returns
/// [`MathError::InvalidArgument`] for the empty matrix, whose spectrum is
/// empty.
pub fn spectral_abscissa(a: &Matrix) -> Result<f64, MathError> {
    let eig = eigenvalues(a)?;
    eig.iter()
        .map(|z| z.re)
        .fold(None, |m: Option<f64>, v| Some(m.map_or(v, |m| m.max(v))))
        .ok_or_else(|| MathError::InvalidArgument("empty matrix has no spectrum".into()))
}

/// Reduces `a` to upper Hessenberg form by stabilized elementary similarity
/// transformations (pivoted Gaussian elimination), zeroing the entries below
/// the first subdiagonal.
///
/// The result has the same eigenvalues as `a`.
#[must_use]
pub fn hessenberg(a: &Matrix) -> Matrix {
    let n = a.rows();
    let mut h = a.clone();
    for m in 1..n.saturating_sub(1) {
        // Find the pivot in column m-1, rows m..n.
        let mut x = 0.0_f64;
        let mut pivot = m;
        for j in m..n {
            if h[(j, m - 1)].abs() > x.abs() {
                x = h[(j, m - 1)];
                pivot = j;
            }
        }
        if pivot != m {
            // Similarity swap: rows then columns.
            for j in 0..n {
                let tmp = h[(pivot, j)];
                h[(pivot, j)] = h[(m, j)];
                h[(m, j)] = tmp;
            }
            for i in 0..n {
                let tmp = h[(i, pivot)];
                h[(i, pivot)] = h[(i, m)];
                h[(i, m)] = tmp;
            }
        }
        if x != 0.0 {
            for i in (m + 1)..n {
                let mut y = h[(i, m - 1)];
                if y != 0.0 {
                    y /= x;
                    h[(i, m - 1)] = y;
                    for j in m..n {
                        let upd = y * h[(m, j)];
                        h[(i, j)] -= upd;
                    }
                    for j in 0..n {
                        let upd = y * h[(j, i)];
                        h[(j, m)] += upd;
                    }
                }
            }
        }
    }
    // The elimination leaves multipliers below the subdiagonal; zero them so
    // downstream code sees a genuine Hessenberg matrix.
    for i in 2..n {
        for j in 0..(i - 1) {
            h[(i, j)] = 0.0;
        }
    }
    h
}

/// `SIGN(a, b)`: magnitude of `a`, sign of `b` (FORTRAN convention).
fn sign(a: f64, b: f64) -> f64 {
    if b >= 0.0 {
        a.abs()
    } else {
        -a.abs()
    }
}

/// Francis double-shift QR iteration on an upper Hessenberg matrix
/// (EISPACK `hqr`, adapted to 0-based indexing, eigenvalues only).
#[allow(clippy::too_many_lines)]
fn hqr(mut a: Matrix) -> Result<Vec<Complex>, MathError> {
    let n = a.rows();
    let mut wri = vec![Complex::ZERO; n];
    let mut anorm = 0.0;
    for i in 0..n {
        for j in i.saturating_sub(1)..n {
            anorm += a[(i, j)].abs();
        }
    }
    if anorm == 0.0 {
        return Ok(wri); // the zero matrix
    }
    let mut nn = n as isize - 1;
    let mut t = 0.0_f64;
    'outer: while nn >= 0 {
        let mut its = 0usize;
        loop {
            // Look for a single small subdiagonal element.
            let mut l = nn;
            while l >= 1 {
                let lu = l as usize;
                let mut s = a[(lu - 1, lu - 1)].abs() + a[(lu, lu)].abs();
                if s == 0.0 {
                    s = anorm;
                }
                if a[(lu, lu - 1)].abs() <= f64::EPSILON * s {
                    a[(lu, lu - 1)] = 0.0;
                    break;
                }
                l -= 1;
            }
            let nnu = nn as usize;
            let mut x = a[(nnu, nnu)];
            if l == nn {
                // One real root found.
                wri[nnu] = Complex::from_real(x + t);
                nn -= 1;
                continue 'outer;
            }
            let mut y = a[(nnu - 1, nnu - 1)];
            let mut w = a[(nnu, nnu - 1)] * a[(nnu - 1, nnu)];
            if l == nn - 1 {
                // A 2x2 block: two roots found.
                let p = 0.5 * (y - x);
                let q = p * p + w;
                let mut z = q.abs().sqrt();
                let x = x + t;
                if q >= 0.0 {
                    z = p + sign(z, p);
                    let r1 = x + z;
                    wri[nnu - 1] = Complex::from_real(r1);
                    wri[nnu] = Complex::from_real(if z != 0.0 { x - w / z } else { r1 });
                } else {
                    wri[nnu] = Complex::new(x + p, z);
                    wri[nnu - 1] = Complex::new(x + p, -z);
                }
                nn -= 2;
                continue 'outer;
            }
            // No root found yet; perform a double QR step.
            if its == MAX_QR_ITERS {
                return Err(MathError::NoConvergence {
                    iterations: its,
                    context: "francis qr iteration".into(),
                });
            }
            if its == 10 || its == 20 {
                // Exceptional shift to break symmetry-induced cycles.
                t += x;
                for i in 0..=nnu {
                    a[(i, i)] -= x;
                }
                let s = a[(nnu, nnu - 1)].abs() + a[(nnu - 1, nnu - 2)].abs();
                x = 0.75 * s;
                y = x;
                w = -0.4375 * s * s;
            }
            its += 1;
            // Find two consecutive small subdiagonal elements (start of bulge).
            let mut m = nn - 2;
            let mut p = 0.0_f64;
            let mut q = 0.0_f64;
            let mut r = 0.0_f64;
            while m >= l {
                let mu = m as usize;
                let z = a[(mu, mu)];
                let rr = x - z;
                let ss = y - z;
                p = (rr * ss - w) / a[(mu + 1, mu)] + a[(mu, mu + 1)];
                q = a[(mu + 1, mu + 1)] - z - rr - ss;
                r = a[(mu + 2, mu + 1)];
                let s = p.abs() + q.abs() + r.abs();
                p /= s;
                q /= s;
                r /= s;
                if m == l {
                    break;
                }
                let u = a[(mu, mu - 1)].abs() * (q.abs() + r.abs());
                let v = p.abs() * (a[(mu - 1, mu - 1)].abs() + z.abs() + a[(mu + 1, mu + 1)].abs());
                if u <= f64::EPSILON * v {
                    break;
                }
                m -= 1;
            }
            let mu = m as usize;
            for i in (mu + 2)..=nnu {
                a[(i, i - 2)] = 0.0;
            }
            for i in (mu + 3)..=nnu {
                a[(i, i - 3)] = 0.0;
            }
            // Double QR step on rows l..=nn and columns m..=nn.
            for k in mu..nnu {
                let mut scale = 0.0_f64;
                if k != mu {
                    p = a[(k, k - 1)];
                    q = a[(k + 1, k - 1)];
                    r = if k + 1 != nnu { a[(k + 2, k - 1)] } else { 0.0 };
                    scale = p.abs() + q.abs() + r.abs();
                    if scale != 0.0 {
                        p /= scale;
                        q /= scale;
                        r /= scale;
                    }
                }
                let s = sign((p * p + q * q + r * r).sqrt(), p);
                if s == 0.0 {
                    continue;
                }
                if k == mu {
                    if l != m {
                        a[(k, k - 1)] = -a[(k, k - 1)];
                    }
                } else {
                    a[(k, k - 1)] = -s * scale;
                }
                p += s;
                let hx = p / s;
                let hy = q / s;
                let hz = r / s;
                q /= p;
                r /= p;
                // Row modification.
                for j in k..=nnu {
                    let mut pp = a[(k, j)] + q * a[(k + 1, j)];
                    if k + 1 != nnu {
                        pp += r * a[(k + 2, j)];
                        a[(k + 2, j)] -= pp * hz;
                    }
                    a[(k + 1, j)] -= pp * hy;
                    a[(k, j)] -= pp * hx;
                }
                // Column modification.
                let mmin = nnu.min(k + 3);
                for i in (l as usize)..=mmin {
                    let mut pp = hx * a[(i, k)] + hy * a[(i, k + 1)];
                    if k + 1 != nnu {
                        pp += hz * a[(i, k + 2)];
                        a[(i, k + 2)] -= pp * r;
                    }
                    a[(i, k + 1)] -= pp * q;
                    a[(i, k)] -= pp;
                }
            }
        }
    }
    Ok(wri)
}

/// Computes the coefficients of the characteristic polynomial
/// `p(λ) = λⁿ + c₁λⁿ⁻¹ + … + cₙ` via the Faddeev–LeVerrier recurrence.
///
/// The returned vector is `[1, c₁, …, cₙ]` (monic, highest degree first).
///
/// # Errors
///
/// Returns [`MathError::NotSquare`] for rectangular input.
pub fn char_poly(a: &Matrix) -> Result<Vec<f64>, MathError> {
    a.check_square()?;
    let n = a.rows();
    let mut coeffs = vec![1.0];
    let mut m = Matrix::zeros(n, n);
    for k in 1..=n {
        // M_k = A (M_{k-1} + c_{k-1} I)
        let mut shifted = m.clone();
        let c_prev = *coeffs.last().expect("coeffs nonempty");
        for i in 0..n {
            shifted[(i, i)] += c_prev;
        }
        m = a.matmul(&shifted)?;
        let c_k = -m.trace()? / k as f64;
        coeffs.push(c_k);
    }
    Ok(coeffs)
}

/// Finds all complex roots of a monic real polynomial (coefficients highest
/// degree first, leading coefficient need not be exactly 1) using the
/// Durand–Kerner simultaneous iteration.
///
/// # Errors
///
/// Returns [`MathError::InvalidArgument`] if the polynomial has degree < 1
/// or a zero leading coefficient, and [`MathError::NoConvergence`] if the
/// iteration fails to settle.
pub fn poly_roots(coeffs: &[f64]) -> Result<Vec<Complex>, MathError> {
    if coeffs.len() < 2 {
        return Err(MathError::InvalidArgument(
            "polynomial must have degree at least 1".into(),
        ));
    }
    if coeffs[0] == 0.0 {
        return Err(MathError::InvalidArgument(
            "leading coefficient must be nonzero".into(),
        ));
    }
    let degree = coeffs.len() - 1;
    // Normalize to monic.
    let monic: Vec<f64> = coeffs.iter().map(|c| c / coeffs[0]).collect();
    // Cauchy bound on root magnitudes.
    let bound = 1.0 + monic[1..].iter().fold(0.0_f64, |m, c| m.max(c.abs()));
    // Initial guesses: non-real, non-symmetric spiral inside the bound.
    let seed = Complex::new(0.4, 0.9);
    let mut roots: Vec<Complex> = Vec::with_capacity(degree);
    let mut z = Complex::new(bound * 0.5, bound * 0.3);
    for _ in 0..degree {
        z = z * seed + Complex::new(0.1, 0.07);
        roots.push(z);
    }
    let eval = |z: Complex| -> Complex {
        let mut acc = Complex::ZERO;
        for &c in &monic {
            acc = acc * z + Complex::from_real(c);
        }
        acc
    };
    let tol = 1e-13 * bound.max(1.0);
    for _iter in 0..500 {
        let mut max_step = 0.0_f64;
        for i in 0..degree {
            let zi = roots[i];
            let mut denom = Complex::ONE;
            for (j, &zj) in roots.iter().enumerate() {
                if j != i {
                    denom = denom * (zi - zj);
                }
            }
            if denom.abs() == 0.0 {
                // Perturb coincident guesses.
                roots[i] = zi + Complex::new(1e-6 * bound, 1e-6 * bound);
                max_step = f64::INFINITY;
                continue;
            }
            let step = eval(zi) / denom;
            roots[i] = zi - step;
            max_step = max_step.max(step.abs());
        }
        if max_step < tol {
            // Snap conjugate-pair asymmetry: tiny imaginary parts are noise.
            for root in &mut roots {
                if root.im.abs() < tol * 10.0 {
                    root.im = 0.0;
                }
            }
            return Ok(roots);
        }
    }
    Err(MathError::NoConvergence {
        iterations: 500,
        context: "durand-kerner root iteration".into(),
    })
}

/// Computes eigenvalues through the characteristic polynomial
/// (Faddeev–LeVerrier + Durand–Kerner). An independent oracle for
/// [`eigenvalues`]; prefer the QR path for anything beyond ~10 states.
///
/// # Errors
///
/// See [`char_poly`] and [`poly_roots`].
pub fn eigenvalues_char_poly(a: &Matrix) -> Result<Vec<Complex>, MathError> {
    let n = a.rows();
    if n == 0 {
        return Ok(Vec::new());
    }
    poly_roots(&char_poly(a)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sorted_by_re_im(mut v: Vec<Complex>) -> Vec<Complex> {
        v.sort_by(|a, b| {
            a.re.partial_cmp(&b.re)
                .unwrap()
                .then(a.im.partial_cmp(&b.im).unwrap())
        });
        v
    }

    fn assert_spectra_close(a: Vec<Complex>, b: Vec<Complex>, tol: f64) {
        // Greedy nearest-neighbour matching: sorting is unstable for
        // conjugate pairs whose real parts differ only in the last ulp.
        assert_eq!(a.len(), b.len());
        let mut remaining = b;
        for x in &a {
            let (idx, dist) = remaining
                .iter()
                .enumerate()
                .map(|(i, y)| (i, (*x - *y).abs()))
                .min_by(|(_, d1), (_, d2)| d1.partial_cmp(d2).unwrap())
                .expect("nonempty");
            assert!(dist < tol, "no match for {x} within {tol} (closest {dist})");
            remaining.swap_remove(idx);
        }
    }

    #[test]
    fn diagonal_matrix() {
        let a = Matrix::from_diag(&[3.0, -1.0, 7.0]);
        let eig = sorted_by_re_im(eigenvalues(&a).unwrap());
        assert!((eig[0].re + 1.0).abs() < 1e-12);
        assert!((eig[1].re - 3.0).abs() < 1e-12);
        assert!((eig[2].re - 7.0).abs() < 1e-12);
        for e in &eig {
            assert_eq!(e.im, 0.0);
        }
    }

    #[test]
    fn complex_pair_of_rotation() {
        let a = Matrix::from_rows(&[&[0.0, -2.0], &[2.0, 0.0]]).unwrap();
        let eig = sorted_by_re_im(eigenvalues(&a).unwrap());
        assert!((eig[0].im + 2.0).abs() < 1e-12);
        assert!((eig[1].im - 2.0).abs() < 1e-12);
        assert!(eig[0].re.abs() < 1e-12);
    }

    #[test]
    fn known_3x3() {
        // Companion matrix of (λ-1)(λ-2)(λ-3) = λ³ - 6λ² + 11λ - 6.
        let a =
            Matrix::from_rows(&[&[6.0, -11.0, 6.0], &[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]).unwrap();
        let eig = sorted_by_re_im(eigenvalues(&a).unwrap());
        for (e, expected) in eig.iter().zip(&[1.0, 2.0, 3.0]) {
            assert!((e.re - expected).abs() < 1e-9, "{eig:?}");
            assert!(e.im.abs() < 1e-9);
        }
    }

    #[test]
    fn repeated_eigenvalues() {
        // Jordan-like block: eigenvalue 2 with multiplicity 2.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 2.0]]).unwrap();
        let eig = eigenvalues(&a).unwrap();
        for e in eig {
            assert!((e.re - 2.0).abs() < 1e-8);
            assert!(e.im.abs() < 1e-8);
        }
    }

    #[test]
    fn zero_and_identity() {
        let eig = eigenvalues(&Matrix::zeros(3, 3)).unwrap();
        for e in eig {
            assert_eq!(e, Complex::ZERO);
        }
        let eig = eigenvalues(&Matrix::identity(5)).unwrap();
        for e in eig {
            assert!((e.re - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_and_single() {
        assert!(eigenvalues(&Matrix::zeros(0, 0)).unwrap().is_empty());
        let a = Matrix::from_rows(&[&[42.0]]).unwrap();
        assert_eq!(eigenvalues(&a).unwrap(), vec![Complex::from_real(42.0)]);
    }

    #[test]
    fn generator_matrix_spectrum() {
        // CTMC generators always have eigenvalue 0 and the rest with
        // nonpositive real part (Gershgorin).
        let q =
            Matrix::from_rows(&[&[-2.0, 1.5, 0.5], &[0.3, -0.8, 0.5], &[0.0, 2.0, -2.0]]).unwrap();
        let eig = eigenvalues(&q).unwrap();
        let max_re = eig.iter().map(|z| z.re).fold(f64::NEG_INFINITY, f64::max);
        assert!((max_re - 0.0).abs() < 1e-10);
        assert!((spectral_abscissa(&q).unwrap()).abs() < 1e-10);
    }

    #[test]
    fn char_poly_of_known_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        // λ² - 5λ - 2
        let c = char_poly(&a).unwrap();
        assert_eq!(c.len(), 3);
        assert!((c[0] - 1.0).abs() < 1e-14);
        assert!((c[1] + 5.0).abs() < 1e-12);
        assert!((c[2] + 2.0).abs() < 1e-12);
    }

    #[test]
    fn poly_roots_quadratic() {
        // (x-1)(x+3) = x² + 2x - 3
        let roots = sorted_by_re_im(poly_roots(&[1.0, 2.0, -3.0]).unwrap());
        assert!((roots[0].re + 3.0).abs() < 1e-10);
        assert!((roots[1].re - 1.0).abs() < 1e-10);
    }

    #[test]
    fn poly_roots_complex() {
        // x² + 1
        let roots = sorted_by_re_im(poly_roots(&[1.0, 0.0, 1.0]).unwrap());
        assert!((roots[0].im + 1.0).abs() < 1e-10);
        assert!((roots[1].im - 1.0).abs() < 1e-10);
    }

    #[test]
    fn poly_roots_validates_input() {
        assert!(poly_roots(&[1.0]).is_err());
        assert!(poly_roots(&[0.0, 1.0, 2.0]).is_err());
    }

    #[test]
    fn qr_and_char_poly_agree_on_fixed_example() {
        let a = Matrix::from_rows(&[
            &[0.5, -1.2, 0.3, 0.0],
            &[2.0, 0.1, -0.7, 1.1],
            &[0.0, 0.9, -1.5, 0.2],
            &[0.4, 0.0, 0.6, -0.3],
        ])
        .unwrap();
        let qr = eigenvalues(&a).unwrap();
        let dk = eigenvalues_char_poly(&a).unwrap();
        assert_spectra_close(qr, dk, 1e-7);
    }

    #[test]
    fn rejects_rectangular() {
        assert!(eigenvalues(&Matrix::zeros(2, 3)).is_err());
        assert!(char_poly(&Matrix::zeros(2, 3)).is_err());
    }

    proptest! {
        /// The two eigenvalue algorithms agree on random 4x4 matrices, and
        /// the spectrum sum matches the trace.
        #[test]
        fn prop_qr_matches_char_poly(entries in proptest::collection::vec(-3.0_f64..3.0, 16)) {
            let a = Matrix::from_vec(4, 4, entries).unwrap();
            let qr = eigenvalues(&a).unwrap();
            let dk = eigenvalues_char_poly(&a).unwrap();
            assert_spectra_close(qr.clone(), dk, 1e-5);
            let sum_re: f64 = qr.iter().map(|z| z.re).sum();
            let sum_im: f64 = qr.iter().map(|z| z.im).sum();
            prop_assert!((sum_re - a.trace().unwrap()).abs() < 1e-8);
            prop_assert!(sum_im.abs() < 1e-8);
        }

        /// Eigenvalues of a similarity transform are unchanged:
        /// spectrum(P A P^-1) = spectrum(A) using a shear P.
        #[test]
        fn prop_similarity_invariant(
            entries in proptest::collection::vec(-2.0_f64..2.0, 9),
            shear in -2.0_f64..2.0,
        ) {
            let a = Matrix::from_vec(3, 3, entries).unwrap();
            let mut p = Matrix::identity(3);
            p[(0, 1)] = shear;
            let mut pinv = Matrix::identity(3);
            pinv[(0, 1)] = -shear;
            let b = p.matmul(&a).unwrap().matmul(&pinv).unwrap();
            let ea = eigenvalues(&a).unwrap();
            let eb = eigenvalues(&b).unwrap();
            assert_spectra_close(ea, eb, 1e-6 * (1.0 + shear.abs()).powi(2));
        }
    }
}
