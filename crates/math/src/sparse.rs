//! Compressed-sparse-column matrices — the shared storage of the sparse
//! checking lane.
//!
//! Population models with hundreds-to-thousands of local states have
//! generators with `O(K)` transitions, so dense `K × K` storage wastes
//! quadratic memory and the dense kernels waste quadratic time. All sparse
//! code in the workspace (the CSR chain of `mfcsl-ctmc`, the uniformization
//! gather kernels, the iterative steady-state solvers) shares this one CSC
//! type.
//!
//! The column-major layout is deliberate: the hot operation everywhere is
//! the *gather* `out[j] = Σ_i v[i]·A[i][j]` (a row vector times the
//! matrix), and storing columns contiguously with rows in ascending order
//! fixes the floating-point summation order once and for all. Serial and
//! column-blocked parallel code then produce bitwise-identical results —
//! the same reproducibility discipline the dense kernels follow.

// Panic-audited: the sparse lane runs inside long-lived daemon sessions,
// so construction and access paths must return errors, never panic
// (enforced by the verify script's clippy audit).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use crate::error::MathError;
use crate::matrix::Matrix;

/// A sparse matrix in compressed-sparse-column form.
///
/// For column `j`, the stored entries are `(row_idx[k], values[k])` for
/// `k ∈ col_ptr[j]..col_ptr[j+1]`, with rows in strictly ascending order
/// (duplicates are accumulated at construction).
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    n_rows: usize,
    n_cols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Builds a CSC matrix from `(row, col, value)` triplets. Duplicate
    /// positions accumulate; explicit zeros are kept (callers that want
    /// them dropped should filter first). Values must be finite.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidArgument`] for zero dimensions,
    /// out-of-range indices, or non-finite values.
    pub fn from_triplets(
        n_rows: usize,
        n_cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Self, MathError> {
        if n_rows == 0 || n_cols == 0 {
            return Err(MathError::InvalidArgument(
                "matrix dimensions must be positive".into(),
            ));
        }
        for &(r, c, v) in triplets {
            if r >= n_rows || c >= n_cols {
                return Err(MathError::InvalidArgument(format!(
                    "entry ({r}, {c}) out of range for a {n_rows}x{n_cols} matrix"
                )));
            }
            if !v.is_finite() {
                return Err(MathError::InvalidArgument(format!(
                    "value {v} at ({r}, {c}) must be finite"
                )));
            }
        }
        // Counting sort by column, then by row within each column; a second
        // pass merges duplicates so every (row, col) appears once.
        let mut counts = vec![0usize; n_cols + 1];
        for &(_, c, _) in triplets {
            counts[c + 1] += 1;
        }
        for j in 0..n_cols {
            counts[j + 1] += counts[j];
        }
        let mut order: Vec<usize> = vec![0; triplets.len()];
        let mut cursor = counts.clone();
        for (k, &(_, c, _)) in triplets.iter().enumerate() {
            order[cursor[c]] = k;
            cursor[c] += 1;
        }
        let mut col_ptr = vec![0usize; n_cols + 1];
        let mut row_idx = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        for j in 0..n_cols {
            let slice = &mut order[counts[j]..counts[j + 1]];
            slice.sort_unstable_by_key(|&k| triplets[k].0);
            for &k in slice.iter() {
                let (r, _, v) = triplets[k];
                if values.len() > col_ptr[j] && row_idx.last() == Some(&r) {
                    if let Some(lv) = values.last_mut() {
                        *lv += v;
                    }
                    continue;
                }
                row_idx.push(r);
                values.push(v);
            }
            col_ptr[j + 1] = row_idx.len();
        }
        Ok(CscMatrix {
            n_rows,
            n_cols,
            col_ptr,
            row_idx,
            values,
        })
    }

    /// Converts a dense matrix, keeping entries with `|a_ij| > drop_tol`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidArgument`] for an empty matrix or
    /// non-finite entries.
    pub fn from_dense(a: &Matrix, drop_tol: f64) -> Result<Self, MathError> {
        let (n_rows, n_cols) = (a.rows(), a.cols());
        let mut triplets = Vec::new();
        for i in 0..n_rows {
            for j in 0..n_cols {
                let v = a[(i, j)];
                if v.abs() > drop_tol {
                    triplets.push((i, j, v));
                }
            }
        }
        CscMatrix::from_triplets(n_rows, n_cols, &triplets)
    }

    /// Number of rows.
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[must_use]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The column-pointer array (length `n_cols + 1`).
    #[must_use]
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// The row indices of the stored entries, column-major, ascending
    /// within each column.
    #[must_use]
    pub fn row_idx(&self) -> &[usize] {
        &self.row_idx
    }

    /// The stored values, aligned with [`CscMatrix::row_idx`].
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the stored values (the pattern is fixed) — used to
    /// rescale rates in place, e.g. pre-dividing by a uniformization rate.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// The entries of column `j` as `(rows, values)` slices.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[must_use]
    pub fn col(&self, j: usize) -> (&[usize], &[f64]) {
        let (lo, hi) = (self.col_ptr[j], self.col_ptr[j + 1]);
        (&self.row_idx[lo..hi], &self.values[lo..hi])
    }

    /// The gather `Σ_i v[i]·A[i][j]` over column `j`, in ascending-row
    /// order — the reproducible summation the sparse kernels are built on.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `v` is shorter than the row count.
    #[must_use]
    pub fn gather(&self, v: &[f64], j: usize) -> f64 {
        debug_assert!(v.len() >= self.n_rows);
        let (rows, vals) = self.col(j);
        let mut acc = 0.0;
        for (&i, &a) in rows.iter().zip(vals) {
            // SAFETY: `from_triplets` validates every row index against
            // `n_rows` and the pattern is immutable afterwards, so
            // `i < n_rows <= v.len()`. Skipping the bounds check matters:
            // this is the innermost loop of every sparse kernel.
            acc += unsafe { *v.get_unchecked(i) } * a;
        }
        acc
    }

    /// The row-vector product `out ← v·A` (`out[j] = Σ_i v[i]·A[i][j]`),
    /// one gather per column.
    ///
    /// # Panics
    ///
    /// Panics if the shapes disagree.
    pub fn vecmat(&self, v: &[f64], out: &mut [f64]) {
        assert_eq!(v.len(), self.n_rows, "vector/matrix shape mismatch");
        assert_eq!(out.len(), self.n_cols, "output length mismatch");
        for (j, o) in out.iter_mut().enumerate() {
            *o = self.gather(v, j);
        }
    }

    /// The transpose (a CSC matrix of the transposed pattern). `Aᵀ` in CSC
    /// is exactly `A` in CSR, so this is how row-major access is obtained.
    #[must_use]
    pub fn transpose(&self) -> CscMatrix {
        let mut counts = vec![0usize; self.n_rows + 1];
        for &i in &self.row_idx {
            counts[i + 1] += 1;
        }
        for i in 0..self.n_rows {
            counts[i + 1] += counts[i];
        }
        let col_ptr = counts.clone();
        let mut row_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut cursor = counts;
        // Walking columns in ascending order fills each transposed column
        // with ascending row indices.
        for j in 0..self.n_cols {
            for k in self.col_ptr[j]..self.col_ptr[j + 1] {
                let i = self.row_idx[k];
                let slot = cursor[i];
                row_idx[slot] = j;
                values[slot] = self.values[k];
                cursor[i] += 1;
            }
        }
        CscMatrix {
            n_rows: self.n_cols,
            n_cols: self.n_rows,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Materializes the dense equivalent (test/debug helper; allocates
    /// `n_rows × n_cols`).
    #[must_use]
    pub fn to_dense(&self) -> Matrix {
        let mut a = Matrix::zeros(self.n_rows, self.n_cols);
        for j in 0..self.n_cols {
            let (rows, vals) = self.col(j);
            for (&i, &v) in rows.iter().zip(vals) {
                a[(i, j)] += v;
            }
        }
        a
    }

    /// Resident heap footprint of the matrix in bytes — what the sparse
    /// lane reports against the dense `8·n²` it avoided.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.col_ptr.len() * std::mem::size_of::<usize>()
            + self.row_idx.len() * std::mem::size_of::<usize>()
            + self.values.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_sorts_and_accumulates() {
        let a = CscMatrix::from_triplets(
            3,
            3,
            &[(2, 0, 1.0), (0, 0, 2.0), (0, 0, 0.5), (1, 2, 3.0)],
        )
        .unwrap();
        assert_eq!(a.nnz(), 3);
        let (rows, vals) = a.col(0);
        assert_eq!(rows, &[0, 2]);
        assert_eq!(vals, &[2.5, 1.0]);
        assert_eq!(a.col(1).0, &[] as &[usize]);
        assert_eq!(a.to_dense()[(1, 2)], 3.0);
    }

    #[test]
    fn validation() {
        assert!(CscMatrix::from_triplets(0, 1, &[]).is_err());
        assert!(CscMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]).is_err());
        assert!(CscMatrix::from_triplets(2, 2, &[(0, 2, 1.0)]).is_err());
        assert!(CscMatrix::from_triplets(2, 2, &[(0, 0, f64::NAN)]).is_err());
    }

    #[test]
    fn vecmat_matches_dense() {
        let d = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 3.0, 0.0], &[4.0, 0.0, 5.0]])
            .unwrap();
        let s = CscMatrix::from_dense(&d, 0.0).unwrap();
        assert_eq!(s.nnz(), 5);
        let v = [1.0, 2.0, 3.0];
        let mut out = [0.0; 3];
        s.vecmat(&v, &mut out);
        for j in 0..3 {
            let want: f64 = (0..3).map(|i| v[i] * d[(i, j)]).sum();
            assert!((out[j] - want).abs() < 1e-15);
        }
    }

    #[test]
    fn transpose_round_trip() {
        let d = Matrix::from_rows(&[&[0.0, 1.0], &[2.0, 0.0], &[3.0, 4.0]]).unwrap();
        let s = CscMatrix::from_dense(&d, 0.0).unwrap();
        let t = s.transpose();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.n_cols(), 3);
        let back = t.transpose();
        assert_eq!(back, s);
        let td = t.to_dense();
        for i in 0..3 {
            for j in 0..2 {
                assert_eq!(td[(j, i)], d[(i, j)]);
            }
        }
    }

    #[test]
    fn memory_is_linear_in_nnz() {
        let tri: Vec<_> = (0..999).map(|i| (i, i + 1, 1.0)).collect();
        let s = CscMatrix::from_triplets(1000, 1000, &tri).unwrap();
        assert!(s.memory_bytes() < 64 * 1024);
    }
}
