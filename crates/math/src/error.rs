//! Error type shared by the numerical routines in this crate.

use std::fmt;

/// Error returned by the numerical routines in `mfcsl-math`.
///
/// # Example
///
/// ```
/// use mfcsl_math::matrix::Matrix;
/// use mfcsl_math::MathError;
///
/// let err = Matrix::from_rows(&[&[1.0], &[2.0, 3.0]]).unwrap_err();
/// assert!(matches!(err, MathError::DimensionMismatch { .. }));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum MathError {
    /// Two operands (or an operand and an expectation) disagree on shape.
    DimensionMismatch {
        /// Shape the operation expected, e.g. `"2x2"` or `"len 3"`.
        expected: String,
        /// Shape that was actually supplied.
        found: String,
    },
    /// A square matrix was required but a rectangular one was supplied.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// The matrix is singular (or numerically singular) to working precision.
    Singular,
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence {
        /// Number of iterations that were performed.
        iterations: usize,
        /// Human-readable description of what failed to converge.
        context: String,
    },
    /// A root-finding bracket `[a, b]` does not actually bracket a sign change.
    InvalidBracket {
        /// Left end of the bracket.
        a: f64,
        /// Right end of the bracket.
        b: f64,
    },
    /// An argument was outside its documented domain.
    InvalidArgument(String),
}

impl fmt::Display for MathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MathError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            MathError::NotSquare { rows, cols } => {
                write!(f, "matrix is not square: {rows}x{cols}")
            }
            MathError::Singular => write!(f, "matrix is singular to working precision"),
            MathError::NoConvergence {
                iterations,
                context,
            } => write!(f, "no convergence after {iterations} iterations: {context}"),
            MathError::InvalidBracket { a, b } => {
                write!(f, "interval [{a}, {b}] does not bracket a root")
            }
            MathError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for MathError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            MathError::DimensionMismatch {
                expected: "2x2".into(),
                found: "3x2".into(),
            },
            MathError::NotSquare { rows: 2, cols: 3 },
            MathError::Singular,
            MathError::NoConvergence {
                iterations: 10,
                context: "qr iteration".into(),
            },
            MathError::InvalidBracket { a: 0.0, b: 1.0 },
            MathError::InvalidArgument("p must be in [0,1]".into()),
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MathError>();
    }
}
