//! Numerical quadrature.
//!
//! Used for integrating rate functions along mean-field trajectories (e.g.
//! the exponent `∫ k₁ m₃(τ)/m₁(τ) dτ` of a survival probability, which the
//! test suite uses as an independent check of the Kolmogorov integration).

use crate::MathError;

/// Trapezoid rule over tabulated samples `(xs[i], ys[i])`.
///
/// # Errors
///
/// Returns [`MathError::DimensionMismatch`] if the arrays differ in length
/// and [`MathError::InvalidArgument`] for fewer than two samples or
/// non-increasing abscissae.
pub fn trapezoid(xs: &[f64], ys: &[f64]) -> Result<f64, MathError> {
    if xs.len() != ys.len() {
        return Err(MathError::DimensionMismatch {
            expected: format!("len {}", xs.len()),
            found: format!("len {}", ys.len()),
        });
    }
    if xs.len() < 2 {
        return Err(MathError::InvalidArgument(
            "trapezoid rule needs at least two samples".into(),
        ));
    }
    if xs.windows(2).any(|w| w[0] >= w[1]) {
        return Err(MathError::InvalidArgument(
            "abscissae must be strictly increasing".into(),
        ));
    }
    let mut acc = 0.0;
    for i in 0..xs.len() - 1 {
        acc += 0.5 * (ys[i] + ys[i + 1]) * (xs[i + 1] - xs[i]);
    }
    Ok(acc)
}

/// Adaptive Simpson quadrature of `f` over `[a, b]` to absolute tolerance
/// `tol`.
///
/// # Errors
///
/// Returns [`MathError::InvalidArgument`] if `a > b` or `tol <= 0`.
///
/// # Example
///
/// ```
/// let v = mfcsl_math::quad::adaptive_simpson(|x: f64| x.exp(), 0.0, 1.0, 1e-12)?;
/// assert!((v - (1.0_f64.exp() - 1.0)).abs() < 1e-10);
/// # Ok::<(), mfcsl_math::MathError>(())
/// ```
pub fn adaptive_simpson<F: Fn(f64) -> f64>(
    f: F,
    a: f64,
    b: f64,
    tol: f64,
) -> Result<f64, MathError> {
    if a > b {
        return Err(MathError::InvalidArgument(format!(
            "interval [{a}, {b}] is reversed"
        )));
    }
    if !(tol > 0.0) {
        return Err(MathError::InvalidArgument(format!(
            "tolerance must be positive, got {tol}"
        )));
    }
    if a == b {
        return Ok(0.0);
    }
    let fa = f(a);
    let fb = f(b);
    let m = 0.5 * (a + b);
    let fm = f(m);
    let whole = simpson_rule(a, b, fa, fm, fb);
    Ok(simpson_recurse(&f, a, b, fa, fm, fb, whole, tol, 50))
}

fn simpson_rule(a: f64, b: f64, fa: f64, fm: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fm + fb)
}

#[allow(clippy::too_many_arguments)]
fn simpson_recurse<F: Fn(f64) -> f64>(
    f: &F,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: usize,
) -> f64 {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = simpson_rule(a, m, fa, flm, fm);
    let right = simpson_rule(m, b, fm, frm, fb);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * tol {
        // Richardson extrapolation term improves the estimate one order.
        left + right + delta / 15.0
    } else {
        simpson_recurse(f, a, m, fa, flm, fm, left, 0.5 * tol, depth - 1)
            + simpson_recurse(f, m, b, fm, frm, fb, right, 0.5 * tol, depth - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn trapezoid_exact_for_linear() {
        let xs = [0.0, 0.5, 2.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        let v = trapezoid(&xs, &ys).unwrap();
        assert!((v - (3.0 * 2.0 * 2.0 / 2.0 + 2.0)).abs() < 1e-14);
    }

    #[test]
    fn trapezoid_validates() {
        assert!(trapezoid(&[0.0, 1.0], &[1.0]).is_err());
        assert!(trapezoid(&[0.0], &[1.0]).is_err());
        assert!(trapezoid(&[1.0, 1.0], &[1.0, 1.0]).is_err());
    }

    #[test]
    fn simpson_integrates_exponential() {
        let v = adaptive_simpson(f64::exp, 0.0, 2.0, 1e-12).unwrap();
        assert!((v - (2.0_f64.exp() - 1.0)).abs() < 1e-10);
    }

    #[test]
    fn simpson_handles_oscillation() {
        let v =
            adaptive_simpson(|x: f64| (10.0 * x).sin(), 0.0, std::f64::consts::PI, 1e-11).unwrap();
        let exact = (1.0 - (10.0 * std::f64::consts::PI).cos()) / 10.0;
        assert!((v - exact).abs() < 1e-9);
    }

    #[test]
    fn simpson_degenerate_and_invalid() {
        assert_eq!(adaptive_simpson(|_| 1.0, 1.0, 1.0, 1e-9).unwrap(), 0.0);
        assert!(adaptive_simpson(|_| 1.0, 1.0, 0.0, 1e-9).is_err());
        assert!(adaptive_simpson(|_| 1.0, 0.0, 1.0, 0.0).is_err());
    }

    proptest! {
        /// Adaptive Simpson integrates random cubics exactly (Simpson is
        /// exact for cubics, so any tolerance is met).
        #[test]
        fn prop_simpson_exact_for_cubics(
            c0 in -3.0_f64..3.0,
            c1 in -3.0_f64..3.0,
            c2 in -3.0_f64..3.0,
            c3 in -3.0_f64..3.0,
        ) {
            let f = |x: f64| c0 + c1 * x + c2 * x * x + c3 * x * x * x;
            let v = adaptive_simpson(f, -1.0, 2.0, 1e-10).unwrap();
            let antider = |x: f64| c0 * x + c1 * x * x / 2.0 + c2 * x.powi(3) / 3.0 + c3 * x.powi(4) / 4.0;
            let exact = antider(2.0) - antider(-1.0);
            prop_assert!((v - exact).abs() < 1e-9);
        }
    }
}
