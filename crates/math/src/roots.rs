//! Scalar root finding.
//!
//! The model checker reduces many questions to locating where a continuous
//! function of time crosses a threshold: satisfaction-set discontinuity
//! points `T_i` (Sec. IV-C of the paper), the boundaries of conditional
//! satisfaction sets `cSat(Ψ, m̄, θ)` (Sec. V-B), and probability-threshold
//! crossings in Figure 3. These are found by bracketing scans over a grid
//! followed by Brent refinement.

use crate::MathError;

/// Maximum iterations for the iterative root finders.
const MAX_ITERS: usize = 200;

/// Finds a root of `f` in `[a, b]` by bisection.
///
/// # Errors
///
/// Returns [`MathError::InvalidBracket`] if `f(a)` and `f(b)` have the same
/// strict sign, and [`MathError::InvalidArgument`] if `a >= b` or `tol <= 0`.
///
/// # Example
///
/// ```
/// let root = mfcsl_math::roots::bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12)?;
/// assert!((root - 2.0_f64.sqrt()).abs() < 1e-10);
/// # Ok::<(), mfcsl_math::MathError>(())
/// ```
pub fn bisect<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64, tol: f64) -> Result<f64, MathError> {
    check_bracket_args(a, b, tol)?;
    let mut lo = a;
    let mut hi = b;
    let mut flo = f(lo);
    let fhi = f(hi);
    if flo == 0.0 {
        return Ok(lo);
    }
    if fhi == 0.0 {
        return Ok(hi);
    }
    if flo.signum() == fhi.signum() {
        return Err(MathError::InvalidBracket { a, b });
    }
    for _ in 0..MAX_ITERS {
        let mid = 0.5 * (lo + hi);
        if hi - lo < tol {
            return Ok(mid);
        }
        let fmid = f(mid);
        if fmid == 0.0 {
            return Ok(mid);
        }
        if fmid.signum() == flo.signum() {
            lo = mid;
            flo = fmid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// Finds a root of `f` in `[a, b]` with Brent's method (inverse quadratic
/// interpolation guarded by bisection).
///
/// # Errors
///
/// Returns [`MathError::InvalidBracket`] if the interval does not bracket a
/// sign change, [`MathError::InvalidArgument`] for a degenerate interval or
/// non-positive tolerance, and [`MathError::NoConvergence`] if the iteration
/// budget is exhausted (not observed in practice).
pub fn brent<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64, tol: f64) -> Result<f64, MathError> {
    check_bracket_args(a, b, tol)?;
    let mut xa = a;
    let mut xb = b;
    let mut fa = f(xa);
    let mut fb = f(xb);
    if fa == 0.0 {
        return Ok(xa);
    }
    if fb == 0.0 {
        return Ok(xb);
    }
    if fa.signum() == fb.signum() {
        return Err(MathError::InvalidBracket { a, b });
    }
    let mut xc = xa;
    let mut fc = fa;
    let mut d = xb - xa;
    let mut e = d;
    for _ in 0..MAX_ITERS {
        if fb.abs() > fc.abs() {
            // Ensure b is the best estimate.
            xa = xb;
            xb = xc;
            xc = xa;
            fa = fb;
            fb = fc;
            fc = fa;
        }
        let tol1 = 2.0 * f64::EPSILON * xb.abs() + 0.5 * tol;
        let xm = 0.5 * (xc - xb);
        if xm.abs() <= tol1 || fb == 0.0 {
            return Ok(xb);
        }
        if e.abs() >= tol1 && fa.abs() > fb.abs() {
            // Attempt inverse quadratic interpolation.
            let s = fb / fa;
            let (mut p, mut q);
            if xa == xc {
                p = 2.0 * xm * s;
                q = 1.0 - s;
            } else {
                let qq = fa / fc;
                let r = fb / fc;
                p = s * (2.0 * xm * qq * (qq - r) - (xb - xa) * (r - 1.0));
                q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
            }
            if p > 0.0 {
                q = -q;
            }
            p = p.abs();
            let min1 = 3.0 * xm * q - (tol1 * q).abs();
            let min2 = (e * q).abs();
            if 2.0 * p < min1.min(min2) {
                e = d;
                d = p / q;
            } else {
                d = xm;
                e = d;
            }
        } else {
            d = xm;
            e = d;
        }
        xa = xb;
        fa = fb;
        if d.abs() > tol1 {
            xb += d;
        } else {
            xb += tol1.copysign(xm);
        }
        fb = f(xb);
        if fb.signum() == fc.signum() {
            xc = xa;
            fc = fa;
            d = xb - xa;
            e = d;
        }
    }
    Err(MathError::NoConvergence {
        iterations: MAX_ITERS,
        context: "brent root finding".into(),
    })
}

/// Scans `f` on a uniform grid of `n` intervals over `[a, b]` and returns
/// every root found, refined with Brent's method.
///
/// Grid points where `f` is exactly zero are reported once; sign changes
/// between adjacent grid points are refined to `tol`. Roots that the grid is
/// too coarse to see (an even number of crossings inside one cell) are
/// missed — choose `n` based on the known smoothness of `f`.
///
/// # Errors
///
/// Returns [`MathError::InvalidArgument`] for `n == 0`, a degenerate
/// interval, or non-positive tolerance.
pub fn scan_roots<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    b: f64,
    n: usize,
    tol: f64,
) -> Result<Vec<f64>, MathError> {
    if n == 0 {
        return Err(MathError::InvalidArgument(
            "scan grid must have at least one interval".into(),
        ));
    }
    check_bracket_args(a, b, tol)?;
    let grid = crate::vec_ops::linspace(a, b, n + 1);
    let values: Vec<f64> = grid.iter().map(|&x| f(x)).collect();
    let mut roots = Vec::new();
    for i in 0..n {
        let (x0, x1) = (grid[i], grid[i + 1]);
        let (f0, f1) = (values[i], values[i + 1]);
        if f0 == 0.0 {
            push_if_new(&mut roots, x0, tol);
            continue;
        }
        if i == n - 1 && f1 == 0.0 {
            push_if_new(&mut roots, x1, tol);
            continue;
        }
        if f0.signum() != f1.signum() && f1 != 0.0 {
            let r = brent(&mut f, x0, x1, tol)?;
            push_if_new(&mut roots, r, tol);
        }
    }
    Ok(roots)
}

fn push_if_new(roots: &mut Vec<f64>, x: f64, tol: f64) {
    if roots
        .last()
        .is_none_or(|&last| (x - last).abs() > 2.0 * tol)
    {
        roots.push(x);
    }
}

fn check_bracket_args(a: f64, b: f64, tol: f64) -> Result<(), MathError> {
    if !(a < b) {
        return Err(MathError::InvalidArgument(format!(
            "interval [{a}, {b}] is empty or reversed"
        )));
    }
    if !(tol > 0.0) {
        return Err(MathError::InvalidArgument(format!(
            "tolerance must be positive, got {tol}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn brent_finds_sqrt2_fast() {
        let mut calls = 0;
        let r = brent(
            |x| {
                calls += 1;
                x * x - 2.0
            },
            0.0,
            2.0,
            1e-14,
        )
        .unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert!(calls < 20, "brent used {calls} evaluations");
    }

    #[test]
    fn endpoints_that_are_roots() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-9).unwrap(), 0.0);
        assert_eq!(brent(|x| x - 1.0, 0.0, 1.0, 1e-9).unwrap(), 1.0);
    }

    #[test]
    fn invalid_brackets_are_rejected() {
        assert!(matches!(
            bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-9),
            Err(MathError::InvalidBracket { .. })
        ));
        assert!(matches!(
            brent(|x| x * x + 1.0, -1.0, 1.0, 1e-9),
            Err(MathError::InvalidBracket { .. })
        ));
    }

    #[test]
    fn degenerate_args_are_rejected() {
        assert!(bisect(|x| x, 1.0, 1.0, 1e-9).is_err());
        assert!(bisect(|x| x, 0.0, 1.0, 0.0).is_err());
        assert!(brent(|x| x, 2.0, 1.0, 1e-9).is_err());
        assert!(scan_roots(|x| x, 0.0, 1.0, 0, 1e-9).is_err());
    }

    #[test]
    fn scan_finds_multiple_roots() {
        // sin has roots at k*pi.
        let roots = scan_roots(f64::sin, 0.5, 10.0, 200, 1e-12).unwrap();
        let expected = [
            std::f64::consts::PI,
            2.0 * std::f64::consts::PI,
            3.0 * std::f64::consts::PI,
        ];
        assert_eq!(roots.len(), 3, "{roots:?}");
        for (r, e) in roots.iter().zip(&expected) {
            assert!((r - e).abs() < 1e-10);
        }
    }

    #[test]
    fn scan_reports_grid_point_roots_once() {
        // Root exactly at an interior grid point (x = 0.5 with n=2 on [0,1]).
        let roots = scan_roots(|x| x - 0.5, 0.0, 1.0, 2, 1e-12).unwrap();
        assert_eq!(roots.len(), 1);
        assert!((roots[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn scan_handles_no_roots() {
        let roots = scan_roots(|x| x * x + 1.0, -5.0, 5.0, 100, 1e-10).unwrap();
        assert!(roots.is_empty());
    }

    proptest! {
        /// Brent recovers a planted root of a cubic with random offset.
        #[test]
        fn prop_brent_recovers_planted_root(root in -5.0_f64..5.0) {
            let f = |x: f64| (x - root) * ((x - root).powi(2) + 1.0);
            let r = brent(f, root - 7.0, root + 9.0, 1e-13).unwrap();
            prop_assert!((r - root).abs() < 1e-8);
        }

        /// Bisection and Brent agree on monotone functions.
        #[test]
        fn prop_bisect_brent_agree(shift in -0.9_f64..0.9) {
            let f = |x: f64| x.tanh() - shift;
            let rb = bisect(f, -5.0, 5.0, 1e-12).unwrap();
            let rr = brent(f, -5.0, 5.0, 1e-12).unwrap();
            prop_assert!((rb - rr).abs() < 1e-9);
        }
    }
}
