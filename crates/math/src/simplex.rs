//! Utilities for points on the probability simplex.
//!
//! Occupancy vectors of a mean-field model live on
//! `Δ^K = { m ∈ [0,1]^K : Σ m_j = 1 }`. Numerical integration drifts
//! slightly off the simplex; these helpers validate, renormalize and sample
//! simplex points.

use rand::Rng;

use crate::MathError;

/// Default tolerance used by [`check_distribution`] for the sum-to-one test.
pub const DEFAULT_SUM_TOL: f64 = 1e-9;

/// Checks that `m` is a probability distribution: entries in `[0, 1]` up to
/// `tol` and summing to 1 up to `tol`.
///
/// # Errors
///
/// Returns [`MathError::InvalidArgument`] describing the first violated
/// constraint.
pub fn check_distribution(m: &[f64], tol: f64) -> Result<(), MathError> {
    if m.is_empty() {
        return Err(MathError::InvalidArgument(
            "distribution must have at least one entry".into(),
        ));
    }
    for (i, &v) in m.iter().enumerate() {
        if !v.is_finite() {
            return Err(MathError::InvalidArgument(format!(
                "entry {i} is not finite: {v}"
            )));
        }
        if v < -tol || v > 1.0 + tol {
            return Err(MathError::InvalidArgument(format!(
                "entry {i} is outside [0, 1]: {v}"
            )));
        }
    }
    let sum: f64 = m.iter().sum();
    if (sum - 1.0).abs() > tol {
        return Err(MathError::InvalidArgument(format!(
            "entries sum to {sum}, expected 1"
        )));
    }
    Ok(())
}

/// Clamps negative round-off to zero and renormalizes `m` to sum exactly
/// to 1 in place.
///
/// This is the cheap "projection" used after every accepted ODE step; it is
/// exact when the drift is pure round-off.
///
/// # Errors
///
/// Returns [`MathError::InvalidArgument`] if the clamped vector sums to
/// zero (nothing to normalize).
pub fn renormalize(m: &mut [f64]) -> Result<(), MathError> {
    for v in m.iter_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
    let sum: f64 = m.iter().sum();
    if sum <= 0.0 || !sum.is_finite() {
        return Err(MathError::InvalidArgument(format!(
            "cannot renormalize vector with sum {sum}"
        )));
    }
    for v in m.iter_mut() {
        *v /= sum;
    }
    Ok(())
}

/// Euclidean projection of an arbitrary vector onto the probability simplex
/// (Held–Wolfe–Crowder / sorting algorithm).
///
/// # Errors
///
/// Returns [`MathError::InvalidArgument`] for empty or non-finite input.
pub fn project(m: &[f64]) -> Result<Vec<f64>, MathError> {
    if m.is_empty() {
        return Err(MathError::InvalidArgument(
            "cannot project an empty vector".into(),
        ));
    }
    if m.iter().any(|v| !v.is_finite()) {
        return Err(MathError::InvalidArgument(
            "cannot project a non-finite vector".into(),
        ));
    }
    let mut sorted = m.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
    let mut cumsum = 0.0;
    let mut rho = 0;
    let mut theta = 0.0;
    for (i, &v) in sorted.iter().enumerate() {
        cumsum += v;
        let candidate = (cumsum - 1.0) / (i as f64 + 1.0);
        if v - candidate > 0.0 {
            rho = i;
            theta = candidate;
        }
    }
    let _ = rho;
    Ok(m.iter().map(|&v| (v - theta).max(0.0)).collect())
}

/// Samples a uniformly distributed point on the `k`-simplex via normalized
/// exponentials (equivalently, a flat Dirichlet).
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, k: usize) -> Vec<f64> {
    assert!(k > 0, "simplex dimension must be positive");
    let mut v: Vec<f64> = (0..k)
        .map(|_| {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            -u.ln()
        })
        .collect();
    let sum: f64 = v.iter().sum();
    for x in &mut v {
        *x /= sum;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn check_accepts_valid_distributions() {
        assert!(check_distribution(&[1.0], DEFAULT_SUM_TOL).is_ok());
        assert!(check_distribution(&[0.5, 0.4, 0.1], DEFAULT_SUM_TOL).is_ok());
        assert!(check_distribution(&[0.5, 0.5 + 1e-12], DEFAULT_SUM_TOL).is_ok());
    }

    #[test]
    fn check_rejects_invalid() {
        assert!(check_distribution(&[], DEFAULT_SUM_TOL).is_err());
        assert!(check_distribution(&[0.6, 0.6], DEFAULT_SUM_TOL).is_err());
        assert!(check_distribution(&[-0.1, 1.1], DEFAULT_SUM_TOL).is_err());
        assert!(check_distribution(&[f64::NAN, 1.0], DEFAULT_SUM_TOL).is_err());
    }

    #[test]
    fn renormalize_fixes_roundoff() {
        let mut m = [0.5, 0.3, 0.2 + 1e-13];
        renormalize(&mut m).unwrap();
        assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-15);
        let mut neg = [-1e-15, 0.4, 0.6];
        renormalize(&mut neg).unwrap();
        assert_eq!(neg[0], 0.0);
    }

    #[test]
    fn renormalize_rejects_zero_vector() {
        let mut z = [0.0, 0.0];
        assert!(renormalize(&mut z).is_err());
        let mut nan = [f64::NAN, 1.0];
        assert!(renormalize(&mut nan).is_err());
    }

    #[test]
    fn project_identity_on_simplex_points() {
        let m = [0.2, 0.5, 0.3];
        let p = project(&m).unwrap();
        for (a, b) in m.iter().zip(&p) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn project_handles_exterior_points() {
        let p = project(&[2.0, -1.0]).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(p[1], 0.0);
        assert!((p[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn project_validates() {
        assert!(project(&[]).is_err());
        assert!(project(&[f64::INFINITY]).is_err());
    }

    #[test]
    fn sampling_yields_valid_points() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let m = sample_uniform(&mut rng, 4);
            check_distribution(&m, DEFAULT_SUM_TOL).unwrap();
        }
    }

    proptest! {
        /// Projection output is always on the simplex and is idempotent.
        #[test]
        fn prop_projection_lands_on_simplex(v in proptest::collection::vec(-5.0_f64..5.0, 1..8)) {
            let p = project(&v).unwrap();
            check_distribution(&p, 1e-9).unwrap();
            let pp = project(&p).unwrap();
            for (a, b) in p.iter().zip(&pp) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
    }
}
