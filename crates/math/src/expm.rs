//! Matrix exponential via scaling-and-squaring with Padé approximants.
//!
//! `expm(Q·t)` gives the transient probability matrix of a time-homogeneous
//! CTMC, which the workspace uses both directly (classic CSL model checking)
//! and as an independent cross-check of uniformization and of the Kolmogorov
//! ODE integration.

use crate::lu::LuDecomposition;
use crate::{MathError, Matrix};

/// Padé order used by [`expm`]. A diagonal `[6/6]` approximant evaluated at
/// `‖A‖∞ ≤ 0.5` has truncation error far below `f64` precision.
const PADE_ORDER: usize = 6;

/// Norm threshold after scaling; `‖A / 2^s‖∞ ≤ 0.5`.
const SCALE_TARGET: f64 = 0.5;

/// Computes the matrix exponential `e^A`.
///
/// Uses scaling-and-squaring: `A` is divided by `2^s` until its ∞-norm is at
/// most 0.5, a diagonal Padé `[6/6]` approximant is evaluated, and the result
/// is squared `s` times.
///
/// # Errors
///
/// Returns [`MathError::NotSquare`] for rectangular input,
/// [`MathError::InvalidArgument`] for non-finite entries, and
/// [`MathError::Singular`] in the (practically unreachable for scaled input)
/// case that the Padé denominator is singular.
///
/// # Example
///
/// ```
/// use mfcsl_math::{expm::expm, Matrix};
///
/// # fn main() -> Result<(), mfcsl_math::MathError> {
/// // exp of the zero matrix is the identity.
/// let e = expm(&Matrix::zeros(3, 3))?;
/// assert_eq!(e, Matrix::identity(3));
/// # Ok(())
/// # }
/// ```
pub fn expm(a: &Matrix) -> Result<Matrix, MathError> {
    a.check_square()?;
    a.check_finite()?;
    let norm = a.norm_inf();
    // Number of squarings needed to bring the norm under the target.
    let s = if norm <= SCALE_TARGET {
        0
    } else {
        (norm / SCALE_TARGET).log2().ceil() as u32
    };
    let scaled = a.scaled(0.5_f64.powi(s as i32));
    let mut result = pade(&scaled)?;
    for _ in 0..s {
        result = result.matmul(&result)?;
    }
    Ok(result)
}

/// Computes `e^{A t}` (convenience for CTMC transients `Π(t) = e^{Qt}`).
///
/// # Errors
///
/// See [`expm`].
pub fn expm_scaled(a: &Matrix, t: f64) -> Result<Matrix, MathError> {
    expm(&a.scaled(t))
}

/// Diagonal Padé `[m/m]` approximant of `e^A` for small-norm `A`.
fn pade(a: &Matrix) -> Result<Matrix, MathError> {
    let n = a.rows();
    let m = PADE_ORDER;
    // Coefficients c_j of the numerator polynomial; the denominator uses the
    // same coefficients with alternating signs (A -> -A).
    let mut c = vec![0.0; m + 1];
    c[0] = 1.0;
    for j in 0..m {
        c[j + 1] = c[j] * ((m - j) as f64) / (((2 * m - j) * (j + 1)) as f64);
    }
    let mut num = Matrix::identity(n).scaled(c[0]);
    let mut den = num.clone();
    let mut power = Matrix::identity(n);
    for (j, &cj) in c.iter().enumerate().skip(1) {
        power = power.matmul(a)?;
        num = num.add_matrix(&power.scaled(cj))?;
        let sign = if j % 2 == 0 { 1.0 } else { -1.0 };
        den = den.add_matrix(&power.scaled(sign * cj))?;
    }
    LuDecomposition::new(&den)?.solve_matrix(&num)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn max_diff(a: &Matrix, b: &Matrix) -> f64 {
        a.sub_matrix(b).unwrap().norm_max()
    }

    #[test]
    fn exp_of_zero_is_identity() {
        assert_eq!(expm(&Matrix::zeros(4, 4)).unwrap(), Matrix::identity(4));
    }

    #[test]
    fn exp_of_diagonal() {
        let a = Matrix::from_diag(&[1.0, -2.0, 0.5]);
        let e = expm(&a).unwrap();
        let expected = Matrix::from_diag(&[1.0_f64.exp(), (-2.0_f64).exp(), 0.5_f64.exp()]);
        assert!(max_diff(&e, &expected) < 1e-13);
    }

    #[test]
    fn exp_of_nilpotent() {
        // A = [[0,1],[0,0]] => e^A = I + A exactly.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]).unwrap();
        let e = expm(&a).unwrap();
        let expected = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]).unwrap();
        assert!(max_diff(&e, &expected) < 1e-14);
    }

    #[test]
    fn exp_of_rotation_generator() {
        // A = [[0,-t],[t,0]] => e^A = rotation by angle t.
        let t = 1.3;
        let a = Matrix::from_rows(&[&[0.0, -t], &[t, 0.0]]).unwrap();
        let e = expm(&a).unwrap();
        let expected = Matrix::from_rows(&[&[t.cos(), -t.sin()], &[t.sin(), t.cos()]]).unwrap();
        assert!(max_diff(&e, &expected) < 1e-13);
    }

    #[test]
    fn large_norm_triggers_scaling() {
        // Diagonal with a large entry: verifies the squaring phase.
        let a = Matrix::from_diag(&[-50.0, 3.0]);
        let e = expm(&a).unwrap();
        assert!((e[(0, 0)] - (-50.0_f64).exp()).abs() < 1e-16);
        assert!((e[(1, 1)] - 3.0_f64.exp()).abs() < 1e-10 * 3.0_f64.exp());
    }

    #[test]
    fn generator_rows_stay_stochastic() {
        // A CTMC generator: rows sum to zero => e^{Qt} rows sum to one.
        let q =
            Matrix::from_rows(&[&[-2.0, 1.5, 0.5], &[0.3, -0.8, 0.5], &[0.0, 2.0, -2.0]]).unwrap();
        let p = expm_scaled(&q, 0.7).unwrap();
        for i in 0..3 {
            let row_sum: f64 = p.row(i).iter().sum();
            assert!((row_sum - 1.0).abs() < 1e-12);
            for &v in p.row(i) {
                assert!(v >= -1e-13, "negative probability {v}");
            }
        }
    }

    #[test]
    fn rejects_rectangular_and_nan() {
        assert!(expm(&Matrix::zeros(2, 3)).is_err());
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = f64::NAN;
        assert!(expm(&a).is_err());
    }

    proptest! {
        /// Semigroup property e^{A}e^{A} = e^{2A} for random matrices.
        #[test]
        fn prop_semigroup(entries in proptest::collection::vec(-2.0_f64..2.0, 9)) {
            let a = Matrix::from_vec(3, 3, entries).unwrap();
            let e1 = expm(&a).unwrap();
            let e2 = expm(&a.scaled(2.0)).unwrap();
            let sq = e1.matmul(&e1).unwrap();
            let scale = e2.norm_max().max(1.0);
            prop_assert!(max_diff(&sq, &e2) < 1e-9 * scale);
        }

        /// det(e^A) = e^{tr A}.
        #[test]
        fn prop_det_exp_trace(entries in proptest::collection::vec(-1.5_f64..1.5, 9)) {
            let a = Matrix::from_vec(3, 3, entries).unwrap();
            let e = expm(&a).unwrap();
            let det = crate::lu::LuDecomposition::new(&e).unwrap().det();
            let expected = a.trace().unwrap().exp();
            prop_assert!((det - expected).abs() < 1e-9 * expected.abs().max(1.0));
        }
    }
}
