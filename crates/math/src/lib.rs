//! Numerical foundations for the `mfcsl` mean-field model checker.
//!
//! This crate provides every piece of numerical machinery the higher layers
//! need, implemented from scratch on `std`:
//!
//! * [`matrix`] — small dense row-major matrices with the usual algebra;
//! * [`lu`] — LU decomposition with partial pivoting (solve, inverse,
//!   determinant);
//! * [`expm`] — the matrix exponential via scaling-and-squaring with Padé
//!   approximants, used for time-homogeneous CTMC transients;
//! * [`eigen`] — real-Schur eigenvalues (Hessenberg reduction + Francis
//!   double-shift QR), used to classify mean-field fixed points;
//! * [`roots`] — bracketing scans, bisection and Brent's method, used to
//!   locate threshold crossings and satisfaction-set discontinuity points;
//! * [`interp`] — cubic-Hermite and piecewise-linear interpolation, the
//!   backbone of dense ODE output;
//! * [`quad`] — trapezoid and adaptive-Simpson quadrature;
//! * [`simplex`] — utilities for occupancy vectors living on the probability
//!   simplex;
//! * [`intervals`] — sets of disjoint real intervals with exact open/closed
//!   endpoints, the representation of conditional satisfaction sets
//!   `cSat(Ψ, m̄, θ)`;
//! * [`complex`] — a minimal complex-number type for eigenvalues.
//!
//! # Example
//!
//! ```
//! use mfcsl_math::matrix::Matrix;
//! use mfcsl_math::lu::LuDecomposition;
//!
//! # fn main() -> Result<(), mfcsl_math::MathError> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[2.0, 3.0]])?;
//! let lu = LuDecomposition::new(&a)?;
//! let x = lu.solve(&[1.0, 1.0])?;
//! assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

// `!(x > 0.0)`-style guards are used deliberately throughout: unlike
// `x <= 0.0`, they classify NaN as invalid input instead of letting it
// through, which is exactly the intent of the validation sites.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod alloc_counter;
pub mod complex;
pub mod eigen;
pub mod error;
pub mod expm;
pub mod gmres;
pub mod interp;
pub mod intervals;
pub mod lu;
pub mod matrix;
pub mod quad;
pub mod roots;
pub mod simplex;
pub mod sparse;
pub mod vec_ops;

pub use complex::Complex;
pub use error::MathError;
pub use intervals::{Endpoint, Interval, IntervalSet};
pub use matrix::Matrix;
pub use sparse::CscMatrix;
