//! Dense row-major matrices.
//!
//! The matrices appearing in mean-field model checking are small (the local
//! state space `K` is typically below a few dozen states), so a simple dense
//! representation is both adequate and fast. [`Matrix`] stores `f64` entries
//! row-major in a single `Vec` and provides the algebra the rest of the
//! workspace needs.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

use crate::MathError;

/// A dense row-major matrix of `f64` entries.
///
/// # Example
///
/// ```
/// use mfcsl_math::Matrix;
///
/// # fn main() -> Result<(), mfcsl_math::MathError> {
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = Matrix::identity(2);
/// let c = (&a * &b)?;
/// assert_eq!(c, a);
/// assert_eq!(c[(1, 0)], 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, MathError> {
        if data.len() != rows * cols {
            return Err(MathError::DimensionMismatch {
                expected: format!("{} entries", rows * cols),
                found: format!("{} entries", data.len()),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of equal-length rows.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] if the rows have unequal
    /// lengths, or [`MathError::InvalidArgument`] if `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, MathError> {
        let nrows = rows.len();
        if nrows == 0 {
            return Err(MathError::InvalidArgument(
                "matrix must have at least one row".into(),
            ));
        }
        let ncols = rows[0].len();
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            if row.len() != ncols {
                return Err(MathError::DimensionMismatch {
                    expected: format!("row of len {ncols}"),
                    found: format!("row of len {}", row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Creates a diagonal matrix with `diag` on the main diagonal.
    #[must_use]
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    #[must_use]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows the row-major backing storage.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the row-major backing storage.
    #[must_use]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns its row-major backing storage.
    #[must_use]
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of range");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    #[must_use]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of range");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    #[must_use]
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column index {j} out of range");
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Returns the transpose.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Computes the matrix–vector product `A x`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, MathError> {
        if x.len() != self.cols {
            return Err(MathError::DimensionMismatch {
                expected: format!("len {}", self.cols),
                found: format!("len {}", x.len()),
            });
        }
        Ok((0..self.rows)
            .map(|i| self.row(i).iter().zip(x).map(|(a, b)| a * b).sum::<f64>())
            .collect())
    }

    /// Computes the vector–matrix product `xᵀ A` (a row vector).
    ///
    /// This is the natural orientation for probability distributions, which
    /// are row vectors in Markov-chain convention: `π(t+dt) ≈ π(t) (I + Q dt)`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] if `x.len() != self.rows()`.
    pub fn vec_mul(&self, x: &[f64]) -> Result<Vec<f64>, MathError> {
        if x.len() != self.rows {
            return Err(MathError::DimensionMismatch {
                expected: format!("len {}", self.rows),
                found: format!("len {}", x.len()),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for (j, out_j) in out.iter_mut().enumerate() {
                *out_j += xi * self[(i, j)];
            }
        }
        Ok(out)
    }

    /// Returns `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] if the inner dimensions do
    /// not agree.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, MathError> {
        if self.cols != rhs.rows {
            return Err(MathError::DimensionMismatch {
                expected: format!("{} rows", self.cols),
                found: format!("{} rows", rhs.rows),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(i);
                for (o, r) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * r;
                }
            }
        }
        Ok(out)
    }

    /// Returns `self + rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] if shapes differ.
    pub fn add_matrix(&self, rhs: &Matrix) -> Result<Matrix, MathError> {
        self.check_same_shape(rhs)?;
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Returns `self - rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] if shapes differ.
    pub fn sub_matrix(&self, rhs: &Matrix) -> Result<Matrix, MathError> {
        self.check_same_shape(rhs)?;
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Returns `alpha * self`.
    #[must_use]
    pub fn scaled(&self, alpha: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| alpha * v).collect(),
        }
    }

    /// Applies `f` entry-wise, returning a new matrix.
    #[must_use]
    pub fn map<F: Fn(f64) -> f64>(&self, f: F) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Returns the Frobenius norm.
    #[must_use]
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Returns the ∞-norm (maximum absolute row sum).
    #[must_use]
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|i| self.row(i).iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Returns the 1-norm (maximum absolute column sum).
    #[must_use]
    pub fn norm_1(&self) -> f64 {
        (0..self.cols)
            .map(|j| (0..self.rows).map(|i| self[(i, j)].abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Returns the largest absolute entry.
    #[must_use]
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Returns the trace of a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::NotSquare`] for rectangular matrices.
    pub fn trace(&self) -> Result<f64, MathError> {
        self.check_square()?;
        Ok((0..self.rows).map(|i| self[(i, i)]).sum())
    }

    /// Extracts a contiguous square submatrix with rows and columns taken
    /// from `indices` (in order, duplicates allowed).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    #[must_use]
    pub fn select(&self, indices: &[usize]) -> Matrix {
        let n = indices.len();
        let mut out = Matrix::zeros(n, n);
        for (a, &i) in indices.iter().enumerate() {
            for (b, &j) in indices.iter().enumerate() {
                out[(a, b)] = self[(i, j)];
            }
        }
        out
    }

    /// Checks that every entry is finite.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidArgument`] naming the first non-finite
    /// entry.
    pub fn check_finite(&self) -> Result<(), MathError> {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if !self[(i, j)].is_finite() {
                    return Err(MathError::InvalidArgument(format!(
                        "entry ({i}, {j}) is not finite: {}",
                        self[(i, j)]
                    )));
                }
            }
        }
        Ok(())
    }

    fn check_same_shape(&self, rhs: &Matrix) -> Result<(), MathError> {
        if self.rows == rhs.rows && self.cols == rhs.cols {
            Ok(())
        } else {
            Err(MathError::DimensionMismatch {
                expected: format!("{}x{}", self.rows, self.cols),
                found: format!("{}x{}", rhs.rows, rhs.cols),
            })
        }
    }

    pub(crate) fn check_square(&self) -> Result<(), MathError> {
        if self.is_square() {
            Ok(())
        } else {
            Err(MathError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            })
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Result<Matrix, MathError>;
    fn add(self, rhs: &Matrix) -> Self::Output {
        self.add_matrix(rhs)
    }
}

impl Sub for &Matrix {
    type Output = Result<Matrix, MathError>;
    fn sub(self, rhs: &Matrix) -> Self::Output {
        self.sub_matrix(rhs)
    }
}

impl Mul for &Matrix {
    type Output = Result<Matrix, MathError>;
    fn mul(self, rhs: &Matrix) -> Self::Output {
        self.matmul(rhs)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;
    fn neg(self) -> Matrix {
        self.scaled(-1.0)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:>12.6}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abcd() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap()
    }

    #[test]
    fn construction_and_indexing() {
        let m = abcd();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_validates_shape() {
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[&[1.0], &[2.0, 3.0]]).is_err());
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = abcd();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        let expected = Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap();
        assert_eq!(c, expected);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = abcd();
        let b = Matrix::zeros(3, 2);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn vec_products() {
        let a = abcd();
        assert_eq!(a.mul_vec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert_eq!(a.vec_mul(&[1.0, 1.0]).unwrap(), vec![4.0, 6.0]);
        assert!(a.mul_vec(&[1.0]).is_err());
        assert!(a.vec_mul(&[1.0, 1.0, 1.0]).is_err());
    }

    #[test]
    fn transpose_is_involutive() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn norms_match_definitions() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[-3.0, 4.0]]).unwrap();
        assert_eq!(a.norm_inf(), 7.0);
        assert_eq!(a.norm_1(), 6.0);
        assert_eq!(a.norm_max(), 4.0);
        assert!((a.norm_fro() - 30.0_f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn trace_and_diag() {
        let d = Matrix::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d.trace().unwrap(), 6.0);
        assert!(Matrix::zeros(2, 3).trace().is_err());
    }

    #[test]
    fn select_extracts_submatrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]).unwrap();
        let s = a.select(&[0, 2]);
        let expected = Matrix::from_rows(&[&[1.0, 3.0], &[7.0, 9.0]]).unwrap();
        assert_eq!(s, expected);
    }

    #[test]
    fn operators_delegate() {
        let a = abcd();
        let i = Matrix::identity(2);
        assert_eq!((&a + &i).unwrap()[(0, 0)], 2.0);
        assert_eq!((&a - &i).unwrap()[(1, 1)], 3.0);
        assert_eq!((&a * &i).unwrap(), a);
        assert_eq!((-&a)[(0, 0)], -1.0);
    }

    #[test]
    fn check_finite_flags_nan() {
        let mut a = abcd();
        assert!(a.check_finite().is_ok());
        a[(0, 1)] = f64::NAN;
        assert!(a.check_finite().is_err());
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!abcd().to_string().is_empty());
    }
}
