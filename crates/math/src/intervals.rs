//! Sets of disjoint real intervals with exact open/closed endpoints.
//!
//! The conditional satisfaction set of an MF-CSL formula,
//! `cSat(Ψ, m̄, θ) = { t ∈ [0, θ] | m̄(t) ⊨ Ψ }` (Eq. 20 of the paper), is a
//! finite union of intervals whose endpoints are threshold-crossing times.
//! Whether an endpoint belongs to the set depends on the comparison operator
//! (`≥ p` vs `> p`), so open/closed-ness is tracked exactly. The boolean
//! structure of MF-CSL (`¬`, `∧`) maps onto complement and intersection of
//! these sets (Sec. V-B).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::MathError;

/// A nonempty real interval with individually open or closed endpoints.
///
/// Invariant: `lo < hi`, or `lo == hi` with both endpoints closed (a single
/// point).
///
/// # Example
///
/// ```
/// use mfcsl_math::Interval;
///
/// # fn main() -> Result<(), mfcsl_math::MathError> {
/// let i = Interval::closed_open(0.0, 14.5412)?;
/// assert!(i.contains(0.0));
/// assert!(!i.contains(14.5412));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    lo: f64,
    hi: f64,
    lo_closed: bool,
    hi_closed: bool,
}

/// One endpoint of an [`Interval`]: a value plus whether it is included.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Endpoint {
    /// The coordinate of the endpoint.
    pub value: f64,
    /// Whether the endpoint itself belongs to the interval.
    pub closed: bool,
}

impl Interval {
    /// Creates an interval with explicit endpoint closedness.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidArgument`] if the endpoints are not
    /// finite, if `lo > hi`, or if `lo == hi` without both endpoints closed
    /// (which would denote the empty set — use [`IntervalSet::empty`]).
    pub fn new(lo: f64, hi: f64, lo_closed: bool, hi_closed: bool) -> Result<Self, MathError> {
        if !lo.is_finite() || !hi.is_finite() {
            return Err(MathError::InvalidArgument(format!(
                "interval endpoints must be finite, got [{lo}, {hi}]"
            )));
        }
        if lo > hi || (lo == hi && !(lo_closed && hi_closed)) {
            return Err(MathError::InvalidArgument(format!(
                "interval bounds are empty: {}{lo}, {hi}{}",
                if lo_closed { '[' } else { '(' },
                if hi_closed { ']' } else { ')' },
            )));
        }
        Ok(Interval {
            lo,
            hi,
            lo_closed,
            hi_closed,
        })
    }

    /// Creates the closed interval `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// See [`Interval::new`].
    pub fn closed(lo: f64, hi: f64) -> Result<Self, MathError> {
        Interval::new(lo, hi, true, true)
    }

    /// Creates the open interval `(lo, hi)`.
    ///
    /// # Errors
    ///
    /// See [`Interval::new`].
    pub fn open(lo: f64, hi: f64) -> Result<Self, MathError> {
        Interval::new(lo, hi, false, false)
    }

    /// Creates the half-open interval `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// See [`Interval::new`].
    pub fn closed_open(lo: f64, hi: f64) -> Result<Self, MathError> {
        Interval::new(lo, hi, true, false)
    }

    /// Creates the half-open interval `(lo, hi]`.
    ///
    /// # Errors
    ///
    /// See [`Interval::new`].
    pub fn open_closed(lo: f64, hi: f64) -> Result<Self, MathError> {
        Interval::new(lo, hi, false, true)
    }

    /// Creates the degenerate single-point interval `[x, x]`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidArgument`] if `x` is not finite.
    pub fn point(x: f64) -> Result<Self, MathError> {
        Interval::new(x, x, true, true)
    }

    /// Lower endpoint.
    #[must_use]
    pub fn lo(&self) -> Endpoint {
        Endpoint {
            value: self.lo,
            closed: self.lo_closed,
        }
    }

    /// Upper endpoint.
    #[must_use]
    pub fn hi(&self) -> Endpoint {
        Endpoint {
            value: self.hi,
            closed: self.hi_closed,
        }
    }

    /// Returns `true` if `t` belongs to the interval.
    #[must_use]
    pub fn contains(&self, t: f64) -> bool {
        let above = t > self.lo || (t == self.lo && self.lo_closed);
        let below = t < self.hi || (t == self.hi && self.hi_closed);
        above && below
    }

    /// Lebesgue measure (length) of the interval.
    #[must_use]
    pub fn measure(&self) -> f64 {
        self.hi - self.lo
    }

    /// Intersection of two intervals, or `None` if disjoint.
    #[must_use]
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        // Larger lower bound wins; on a tie the bound is closed only if both are.
        let (lo, lo_closed) = match self.lo.partial_cmp(&other.lo).expect("finite") {
            std::cmp::Ordering::Greater => (self.lo, self.lo_closed),
            std::cmp::Ordering::Less => (other.lo, other.lo_closed),
            std::cmp::Ordering::Equal => (self.lo, self.lo_closed && other.lo_closed),
        };
        let (hi, hi_closed) = match self.hi.partial_cmp(&other.hi).expect("finite") {
            std::cmp::Ordering::Less => (self.hi, self.hi_closed),
            std::cmp::Ordering::Greater => (other.hi, other.hi_closed),
            std::cmp::Ordering::Equal => (self.hi, self.hi_closed && other.hi_closed),
        };
        Interval::new(lo, hi, lo_closed, hi_closed).ok()
    }

    /// Returns `true` if the union of the two intervals is a single
    /// interval (they overlap or touch at a covered endpoint).
    #[must_use]
    pub fn touches(&self, other: &Interval) -> bool {
        let (a, b) = if self.lo <= other.lo {
            (self, other)
        } else {
            (other, self)
        };
        b.lo < a.hi || (b.lo == a.hi && (a.hi_closed || b.lo_closed))
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}, {}{}",
            if self.lo_closed { '[' } else { '(' },
            self.lo,
            self.hi,
            if self.hi_closed { ']' } else { ')' },
        )
    }
}

/// A finite union of disjoint intervals, kept sorted and maximally merged.
///
/// # Example
///
/// ```
/// use mfcsl_math::{Interval, IntervalSet};
///
/// # fn main() -> Result<(), mfcsl_math::MathError> {
/// let a = IntervalSet::from_intervals(vec![
///     Interval::closed(0.0, 1.0)?,
///     Interval::closed(0.5, 2.0)?,
/// ]);
/// assert_eq!(a.intervals().len(), 1); // merged into [0, 2]
/// let c = a.complement(0.0, 3.0)?;
/// assert!(c.contains(2.5));
/// assert!(!c.contains(2.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct IntervalSet {
    intervals: Vec<Interval>,
}

impl IntervalSet {
    /// The empty set.
    #[must_use]
    pub fn empty() -> Self {
        IntervalSet::default()
    }

    /// The set containing a single interval.
    #[must_use]
    pub fn from_interval(interval: Interval) -> Self {
        IntervalSet {
            intervals: vec![interval],
        }
    }

    /// Builds a set from arbitrary intervals, normalizing (sorting and
    /// merging) as needed.
    #[must_use]
    pub fn from_intervals(intervals: Vec<Interval>) -> Self {
        let mut sorted = intervals;
        sorted.sort_by(|a, b| {
            a.lo.partial_cmp(&b.lo)
                .expect("finite")
                // Closed lower bound starts "earlier" than open at same value.
                .then_with(|| b.lo_closed.cmp(&a.lo_closed))
        });
        let mut merged: Vec<Interval> = Vec::with_capacity(sorted.len());
        for iv in sorted {
            match merged.last_mut() {
                Some(last) if last.touches(&iv) => {
                    // Extend the upper bound if iv reaches further.
                    match iv.hi.partial_cmp(&last.hi).expect("finite") {
                        std::cmp::Ordering::Greater => {
                            last.hi = iv.hi;
                            last.hi_closed = iv.hi_closed;
                        }
                        std::cmp::Ordering::Equal => {
                            last.hi_closed = last.hi_closed || iv.hi_closed;
                        }
                        std::cmp::Ordering::Less => {}
                    }
                    // Lower bound can only become closed (same value, sorted).
                    if iv.lo == last.lo {
                        last.lo_closed = last.lo_closed || iv.lo_closed;
                    }
                }
                _ => merged.push(iv),
            }
        }
        IntervalSet { intervals: merged }
    }

    /// The normalized component intervals, in increasing order.
    #[must_use]
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Returns `true` if the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Returns `true` if `t` belongs to the set.
    #[must_use]
    pub fn contains(&self, t: f64) -> bool {
        self.intervals.iter().any(|iv| iv.contains(t))
    }

    /// Total Lebesgue measure of the set.
    #[must_use]
    pub fn measure(&self) -> f64 {
        self.intervals.iter().map(Interval::measure).sum()
    }

    /// Set union.
    #[must_use]
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        let mut all = self.intervals.clone();
        all.extend(other.intervals.iter().copied());
        IntervalSet::from_intervals(all)
    }

    /// Set intersection.
    #[must_use]
    pub fn intersect(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        for a in &self.intervals {
            for b in &other.intervals {
                if let Some(iv) = a.intersect(b) {
                    out.push(iv);
                }
            }
        }
        IntervalSet::from_intervals(out)
    }

    /// Complement within the closed universe `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidArgument`] if `lo > hi` or either bound
    /// is not finite.
    pub fn complement(&self, lo: f64, hi: f64) -> Result<IntervalSet, MathError> {
        if !lo.is_finite() || !hi.is_finite() || lo > hi {
            return Err(MathError::InvalidArgument(format!(
                "invalid complement universe [{lo}, {hi}]"
            )));
        }
        let universe = Interval::closed(lo, hi)?;
        // Clip the set to the universe first.
        let clipped = self.intersect(&IntervalSet::from_interval(universe));
        let mut out = Vec::new();
        let mut cursor = Endpoint {
            value: lo,
            closed: true,
        };
        for iv in &clipped.intervals {
            // Gap from cursor to the interval's lower endpoint.
            let gap_hi = Endpoint {
                value: iv.lo,
                closed: !iv.lo_closed,
            };
            if let Ok(gap) = Interval::new(cursor.value, gap_hi.value, cursor.closed, gap_hi.closed)
            {
                out.push(gap);
            }
            cursor = Endpoint {
                value: iv.hi,
                closed: !iv.hi_closed,
            };
        }
        if let Ok(tail) = Interval::new(cursor.value, hi, cursor.closed, true) {
            out.push(tail);
        }
        Ok(IntervalSet::from_intervals(out))
    }
}

impl FromIterator<Interval> for IntervalSet {
    fn from_iter<I: IntoIterator<Item = Interval>>(iter: I) -> Self {
        IntervalSet::from_intervals(iter.into_iter().collect())
    }
}

impl fmt::Display for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.intervals.is_empty() {
            return write!(f, "∅");
        }
        for (i, iv) in self.intervals.iter().enumerate() {
            if i > 0 {
                write!(f, " ∪ ")?;
            }
            write!(f, "{iv}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn interval_construction_and_contains() {
        let i = Interval::closed_open(0.0, 1.0).unwrap();
        assert!(i.contains(0.0));
        assert!(i.contains(0.999));
        assert!(!i.contains(1.0));
        assert!(!i.contains(-0.1));
        let p = Interval::point(2.0).unwrap();
        assert!(p.contains(2.0));
        assert_eq!(p.measure(), 0.0);
    }

    #[test]
    fn invalid_intervals_rejected() {
        assert!(Interval::closed(1.0, 0.0).is_err());
        assert!(Interval::open(1.0, 1.0).is_err());
        assert!(Interval::closed_open(1.0, 1.0).is_err());
        assert!(Interval::closed(f64::NAN, 1.0).is_err());
        assert!(Interval::closed(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn interval_intersection() {
        let a = Interval::closed(0.0, 2.0).unwrap();
        let b = Interval::open(1.0, 3.0).unwrap();
        let c = a.intersect(&b).unwrap();
        assert_eq!(c, Interval::open_closed(1.0, 2.0).unwrap());
        // Touching open/closed endpoints: [0,1) ∩ [1,2] = ∅.
        let d = Interval::closed_open(0.0, 1.0).unwrap();
        let e = Interval::closed(1.0, 2.0).unwrap();
        assert!(d.intersect(&e).is_none());
        // [0,1] ∩ [1,2] = {1}.
        let f = Interval::closed(0.0, 1.0).unwrap();
        assert_eq!(f.intersect(&e).unwrap(), Interval::point(1.0).unwrap());
    }

    #[test]
    fn touching_rules() {
        let ho = Interval::closed_open(0.0, 1.0).unwrap();
        let c = Interval::closed(1.0, 2.0).unwrap();
        let o = Interval::open(1.0, 2.0).unwrap();
        assert!(ho.touches(&c)); // [0,1) ∪ [1,2] is contiguous
        assert!(!ho.touches(&o)); // [0,1) ∪ (1,2] has a hole at 1
    }

    #[test]
    fn set_normalization_merges() {
        let s = IntervalSet::from_intervals(vec![
            Interval::closed(2.0, 3.0).unwrap(),
            Interval::closed_open(0.0, 1.0).unwrap(),
            Interval::closed(1.0, 2.5).unwrap(),
        ]);
        assert_eq!(s.intervals().len(), 1);
        assert_eq!(s.intervals()[0], Interval::closed(0.0, 3.0).unwrap());
    }

    #[test]
    fn set_normalization_keeps_holes() {
        let s = IntervalSet::from_intervals(vec![
            Interval::closed_open(0.0, 1.0).unwrap(),
            Interval::open(1.0, 2.0).unwrap(),
        ]);
        assert_eq!(s.intervals().len(), 2);
        assert!(!s.contains(1.0));
        assert!((s.measure() - 2.0).abs() < 1e-15);
    }

    #[test]
    fn union_and_intersection() {
        let a = IntervalSet::from_interval(Interval::closed(0.0, 2.0).unwrap());
        let b = IntervalSet::from_interval(Interval::closed(1.0, 3.0).unwrap());
        let u = a.union(&b);
        assert_eq!(u.intervals().len(), 1);
        assert_eq!(u.measure(), 3.0);
        let i = a.intersect(&b);
        assert_eq!(i.intervals()[0], Interval::closed(1.0, 2.0).unwrap());
    }

    #[test]
    fn complement_basics() {
        // Complement of [0, 14.5412) in [0, 20] is [14.5412, 20].
        let s = IntervalSet::from_interval(Interval::closed_open(0.0, 14.5412).unwrap());
        let c = s.complement(0.0, 20.0).unwrap();
        assert_eq!(c.intervals().len(), 1);
        assert_eq!(c.intervals()[0], Interval::closed(14.5412, 20.0).unwrap());
        // Complement of empty set is the universe.
        let all = IntervalSet::empty().complement(0.0, 1.0).unwrap();
        assert_eq!(all.intervals()[0], Interval::closed(0.0, 1.0).unwrap());
        // Complement of the universe is empty.
        assert!(all.complement(0.0, 1.0).unwrap().is_empty());
    }

    #[test]
    fn complement_produces_point_gaps() {
        // Complement of [0,1) ∪ (1,2] in [0,2] is the single point {1}.
        let s = IntervalSet::from_intervals(vec![
            Interval::closed_open(0.0, 1.0).unwrap(),
            Interval::open_closed(1.0, 2.0).unwrap(),
        ]);
        let c = s.complement(0.0, 2.0).unwrap();
        assert_eq!(c.intervals(), &[Interval::point(1.0).unwrap()]);
    }

    #[test]
    fn complement_invalid_universe() {
        assert!(IntervalSet::empty().complement(1.0, 0.0).is_err());
        assert!(IntervalSet::empty().complement(0.0, f64::NAN).is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(IntervalSet::empty().to_string(), "∅");
        let s = IntervalSet::from_intervals(vec![
            Interval::closed_open(0.0, 1.0).unwrap(),
            Interval::open(2.0, 3.0).unwrap(),
        ]);
        assert_eq!(s.to_string(), "[0, 1) ∪ (2, 3)");
    }

    fn arb_interval() -> impl Strategy<Value = Interval> {
        (
            -5.0_f64..5.0,
            0.01_f64..3.0,
            proptest::bool::ANY,
            proptest::bool::ANY,
        )
            .prop_map(|(lo, len, lc, hc)| Interval::new(lo, lo + len, lc, hc).unwrap())
    }

    fn arb_set() -> impl Strategy<Value = IntervalSet> {
        proptest::collection::vec(arb_interval(), 0..5).prop_map(IntervalSet::from_intervals)
    }

    proptest! {
        /// De Morgan: ¬(A ∪ B) = ¬A ∩ ¬B within a universe.
        #[test]
        fn prop_de_morgan(a in arb_set(), b in arb_set(), t in -10.0_f64..10.0) {
            let (lo, hi) = (-10.0, 10.0);
            let lhs = a.union(&b).complement(lo, hi).unwrap();
            let rhs = a.complement(lo, hi).unwrap().intersect(&b.complement(lo, hi).unwrap());
            prop_assert_eq!(lhs.contains(t), rhs.contains(t));
        }

        /// Double complement restores membership (within the universe).
        #[test]
        fn prop_double_complement(a in arb_set(), t in -10.0_f64..10.0) {
            let c2 = a.complement(-10.0, 10.0).unwrap().complement(-10.0, 10.0).unwrap();
            prop_assert_eq!(a.contains(t), c2.contains(t));
        }

        /// Union membership is pointwise disjunction; intersection is
        /// conjunction.
        #[test]
        fn prop_pointwise_semantics(a in arb_set(), b in arb_set(), t in -10.0_f64..10.0) {
            prop_assert_eq!(a.union(&b).contains(t), a.contains(t) || b.contains(t));
            prop_assert_eq!(a.intersect(&b).contains(t), a.contains(t) && b.contains(t));
        }

        /// Normalization is idempotent and components are disjoint and sorted.
        #[test]
        fn prop_normalized(a in arb_set()) {
            let again = IntervalSet::from_intervals(a.intervals().to_vec());
            prop_assert_eq!(a.clone(), again);
            for w in a.intervals().windows(2) {
                prop_assert!(w[0].hi().value <= w[1].lo().value);
                prop_assert!(!w[0].touches(&w[1]));
            }
        }
    }
}
