//! A minimal complex-number type.
//!
//! Only the operations required by the eigenvalue routines in
//! [`crate::eigen`] are provided; this is deliberately not a general-purpose
//! complex arithmetic library.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

/// A complex number with `f64` components.
///
/// # Example
///
/// ```
/// use mfcsl_math::Complex;
///
/// let z = Complex::new(3.0, 4.0);
/// assert_eq!(z.abs(), 5.0);
/// assert_eq!(z * Complex::I, Complex::new(-4.0, 3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The imaginary unit `i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };
    /// Complex zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// Complex one.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates a complex number from real and imaginary parts.
    #[must_use]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[must_use]
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Returns the modulus `|z|`, computed with `hypot` to avoid overflow.
    #[must_use]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Returns the complex conjugate.
    #[must_use]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Returns `true` if the imaginary part is smaller than `tol` in absolute
    /// value.
    #[must_use]
    pub fn is_real(self, tol: f64) -> bool {
        self.im.abs() <= tol
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    fn div(self, rhs: Complex) -> Complex {
        // Smith's algorithm: avoids overflow for large components.
        if rhs.re.abs() >= rhs.im.abs() {
            let r = rhs.im / rhs.re;
            let d = rhs.re + rhs.im * r;
            Complex::new((self.re + self.im * r) / d, (self.im - self.re * r) / d)
        } else {
            let r = rhs.re / rhs.im;
            let d = rhs.re * r + rhs.im;
            Complex::new((self.re * r + self.im) / d, (self.im * r - self.re) / d)
        }
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
    }

    #[test]
    fn division_roundtrips() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        let q = a / b;
        let back = q * b;
        assert!((back - a).abs() < 1e-14);
    }

    #[test]
    fn division_with_large_components_is_stable() {
        let a = Complex::new(1e300, 1e300);
        let b = Complex::new(2e300, 0.0);
        let q = a / b;
        assert!((q.re - 0.5).abs() < 1e-14);
        assert!((q.im - 0.5).abs() < 1e-14);
    }

    #[test]
    fn conj_and_abs() {
        let z = Complex::new(-3.0, 4.0);
        assert_eq!(z.conj(), Complex::new(-3.0, -4.0));
        assert_eq!(z.abs(), 5.0);
        assert!(Complex::from_real(2.0).is_real(0.0));
        assert!(!Complex::I.is_real(0.5));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }
}
