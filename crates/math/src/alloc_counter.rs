//! A counting wrapper around the system allocator for the perf-report
//! binaries.
//!
//! The hot-loop work of the checker is supposed to be allocation-free per
//! step (solver workspaces, generator memoization, arena trajectory
//! storage); the only way to *prove* that in a report is to count
//! allocations. [`CountingAlloc`] forwards to [`std::alloc::System`] and
//! maintains three relaxed atomics: total allocation count, live bytes,
//! and a peak-bytes high-water mark.
//!
//! The type carries no `#[global_allocator]` attribute itself — each
//! binary that wants the counters installs it explicitly:
//!
//! ```ignore
//! #[global_allocator]
//! static GLOBAL: mfcsl_math::alloc_counter::CountingAlloc =
//!     mfcsl_math::alloc_counter::CountingAlloc;
//! ```
//!
//! Without that declaration the counters simply stay at zero and
//! [`installed`] reports `false`, so library code can query them
//! unconditionally.
//!
//! Counter updates use `Relaxed` ordering: the counters are statistics,
//! not synchronization, and a benchmark section is bracketed by
//! [`begin`]/[`delta`] calls on one thread with the measured work in
//! between, so all updates of interest are sequenced-before the read.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);
static INSTALLED: AtomicU64 = AtomicU64::new(0);

/// System-allocator wrapper that counts allocations and tracks peak live
/// bytes. See the module docs for how to install it.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAlloc;

fn on_alloc(size: usize) {
    ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

fn on_dealloc(size: usize) {
    LIVE_BYTES.fetch_sub(size as u64, Ordering::Relaxed);
}

// SAFETY: delegates every allocation verbatim to `System` and only adds
// bookkeeping on the side, so the `GlobalAlloc` contract is `System`'s.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        INSTALLED.store(1, Ordering::Relaxed);
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        INSTALLED.store(1, Ordering::Relaxed);
        let ptr = unsafe { System.alloc_zeroed(layout) };
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        new_ptr
    }
}

/// Whether a [`CountingAlloc`] is actually serving allocations in this
/// process (i.e. some binary installed it as the global allocator).
#[must_use]
pub fn installed() -> bool {
    INSTALLED.load(Ordering::Relaxed) != 0
}

/// A counter snapshot taken by [`begin`] and consumed by [`delta`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    allocations: u64,
    live_bytes: u64,
}

/// Counter deltas over a measured section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocDelta {
    /// Number of allocations performed in the section.
    pub allocations: u64,
    /// Peak live bytes above the section's starting level.
    pub peak_bytes: u64,
}

/// Starts a measured section: resets the peak high-water mark to the
/// current live size and returns the baseline snapshot.
#[must_use]
pub fn begin() -> Snapshot {
    let live = LIVE_BYTES.load(Ordering::Relaxed);
    PEAK_BYTES.store(live, Ordering::Relaxed);
    Snapshot {
        allocations: ALLOCATIONS.load(Ordering::Relaxed),
        live_bytes: live,
    }
}

/// Ends a measured section: allocation count and peak-above-baseline since
/// the matching [`begin`].
#[must_use]
pub fn delta(base: Snapshot) -> AllocDelta {
    AllocDelta {
        allocations: ALLOCATIONS.load(Ordering::Relaxed).saturating_sub(base.allocations),
        peak_bytes: PEAK_BYTES.load(Ordering::Relaxed).saturating_sub(base.live_bytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not install the allocator, so the counters are
    // driven by hand; the begin/delta bracket arithmetic is exercised end
    // to end. Sections interleave with nothing (counter updates only come
    // from this test), so the deltas are exact.
    #[test]
    fn bookkeeping_brackets_are_consistent() {
        let base = begin();
        on_alloc(100);
        on_alloc(50);
        on_dealloc(50);
        let d = delta(base);
        assert_eq!(d.allocations, 2);
        assert_eq!(d.peak_bytes, 150);
        on_dealloc(100);
        // A fresh section starts from a clean peak.
        let base = begin();
        on_alloc(30);
        on_dealloc(30);
        let d = delta(base);
        assert_eq!(d.allocations, 1);
        assert_eq!(d.peak_bytes, 30);
    }
}
