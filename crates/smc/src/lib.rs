//! Statistical model checking of MF-CSL formulas at finite `N`.
//!
//! The mean-field verdict is exact only in the `N → ∞` limit (Theorem 1 of
//! the paper); this crate checks the same MF-CSL formulas on the *finite*
//! population by Monte-Carlo simulation and reports verdicts that carry
//! confidence intervals:
//!
//! * `E⋈p(Φ)` — the fraction of objects satisfying `Φ` in the discretized
//!   initial counts (deterministic at finite `N`, so the interval is a
//!   point);
//! * `ES⋈p(Φ)` — the satisfying fraction of the occupancy process at a
//!   long horizon, averaged over replications (Student-style normal
//!   interval via [`mfcsl_sim::estimator::mean_ci`]);
//! * `EP⋈p(φ)` — the probability that a *tagged object* (the random
//!   object of Def. 4, realized by [`mfcsl_sim::ssa::simulate_tagged`])
//!   takes a `φ`-path, estimated as a Wilson-score proportion.
//!
//! An [`SmcSession`] memoizes sampled path batches per initial occupancy —
//! the statistical analogue of the mean-field `CheckSession` — and
//! supports two stopping rules: fixed-sample, and Chow–Robbins-style
//! sequential stopping that grows the batch until every operator's
//! interval half-width drops below a target. Replication `i` always runs
//! under [`mfcsl_sim::estimator::replication_seed`]`(seed, i)`, so results
//! are bitwise identical at any thread count and any batch growth
//! schedule.

// `!(x > 0.0)`-style guards are used deliberately throughout: unlike
// `x <= 0.0`, they classify NaN as invalid input instead of letting it
// through, which is exactly the intent of the validation sites.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use mfcsl_core::mfcsl::MfFormula;
use mfcsl_core::{CoreError, LocalModel, Occupancy};
use mfcsl_csl::{Comparison, CslError, PathFormula, StateFormula};
use mfcsl_sim::estimator::{mean_ci, proportion_ci, replication_seed};
pub use mfcsl_sim::estimator::Estimate;
use mfcsl_sim::ssa::TaggedPath;
use mfcsl_sim::{lumped, paths, ssa, CountTrajectory};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How a session decides it has sampled enough replications.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Stopping {
    /// Run exactly [`SmcOptions::replications`] replications.
    Fixed,
    /// Chow–Robbins-style sequential stopping: start at
    /// [`SmcOptions::replications`], then grow the batch by `step` until
    /// every operator interval's half-width is at most
    /// `target_half_width`, or `max_replications` is reached.
    Sequential {
        /// Stop once every operator CI half-width is at most this.
        target_half_width: f64,
        /// How many replications each growth round adds.
        step: usize,
        /// Hard cap on the total number of replications.
        max_replications: usize,
    },
}

/// Configuration of a statistical checking session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmcOptions {
    /// Population size `N` of the simulated system.
    pub population: usize,
    /// Number of replications (initial batch size under
    /// [`Stopping::Sequential`]).
    pub replications: usize,
    /// z-score of the two-sided confidence intervals (1.96 ≈ 95%).
    pub z: f64,
    /// Base seed; replication `i` uses `replication_seed(seed, i)`.
    pub seed: u64,
    /// OS threads used to generate replications.
    pub threads: usize,
    /// Horizon at which `ES` reads the occupancy process as "steady".
    pub steady_horizon: f64,
    /// Stopping rule.
    pub stopping: Stopping,
}

impl SmcOptions {
    /// Defaults for population `N`: 200 replications, 95% intervals,
    /// seed 0, single-threaded, steady horizon 50, fixed-sample stopping.
    #[must_use]
    pub fn new(population: usize) -> Self {
        SmcOptions {
            population,
            replications: 200,
            z: 1.96,
            seed: 0,
            threads: 1,
            steady_horizon: 50.0,
            stopping: Stopping::Fixed,
        }
    }
}

/// One estimated `E`/`ES`/`EP` operator inside a checked formula.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorEstimate {
    /// The operator rendered in MF-CSL syntax, e.g. `EP{<0.3}[ … ]`.
    pub operator: String,
    /// The comparison of the bound.
    pub cmp: Comparison,
    /// The probability/fraction bound `p`.
    pub bound: f64,
    /// The Monte-Carlo estimate with its confidence interval.
    pub estimate: Estimate,
    /// `estimate.mean ⋈ bound`.
    pub holds: bool,
}

/// A statistical verdict: the truth value plus every operator estimate
/// that went into it.
#[derive(Debug, Clone, PartialEq)]
pub struct SmcVerdict {
    /// Truth value of the formula at the estimates' means.
    pub holds: bool,
    /// `true` if any operator's confidence interval contains its bound —
    /// the statistical analogue of the mean-field "marginal" flag.
    pub marginal: bool,
    /// Population size `N` the verdict was sampled at.
    pub population: usize,
    /// Replications behind the verdict.
    pub replications: usize,
    /// Estimates for each `E`/`ES`/`EP` operator, in syntax order.
    pub operators: Vec<OperatorEstimate>,
}

/// Counters of a session's sampling work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SmcStats {
    /// Total SSA replications simulated (including batch extensions).
    pub replications_run: u64,
    /// Checks served entirely from a memoized batch.
    pub batch_hits: u64,
    /// Checks that had to simulate (cold batch, longer horizon, or more
    /// replications).
    pub batch_misses: u64,
}

/// One sampled replication: the count trajectory plus the tagged object's
/// path.
struct Replication {
    traj: CountTrajectory,
    sojourns: Vec<(usize, f64, f64)>,
}

/// A memoized batch of replications for one initial occupancy.
struct Batch {
    t_end: f64,
    runs: Vec<Arc<Replication>>,
}

/// A statistical checking session over one model: memoizes sampled path
/// batches keyed by the initial occupancy (the `(model, params, N, seed)`
/// part of the key is fixed per session, mirroring the daemon's session
/// store).
pub struct SmcSession<'m> {
    model: &'m LocalModel,
    options: SmcOptions,
    batches: Mutex<HashMap<Vec<u64>, Batch>>,
    stats: Mutex<SmcStats>,
}

impl<'m> SmcSession<'m> {
    /// Creates a session.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] for a zero population,
    /// zero replications, a non-positive `z` or `steady_horizon`, or a
    /// degenerate sequential stopping rule.
    pub fn new(model: &'m LocalModel, options: SmcOptions) -> Result<Self, CoreError> {
        if options.population == 0 {
            return Err(CoreError::InvalidArgument(
                "population size must be positive".into(),
            ));
        }
        if options.replications < 2 {
            return Err(CoreError::InvalidArgument(
                "statistical checking needs at least two replications".into(),
            ));
        }
        if !(options.z > 0.0) || !options.z.is_finite() {
            return Err(CoreError::InvalidArgument(format!(
                "z-score must be positive and finite, got {}",
                options.z
            )));
        }
        if !(options.steady_horizon > 0.0) || !options.steady_horizon.is_finite() {
            return Err(CoreError::InvalidArgument(format!(
                "steady horizon must be positive and finite, got {}",
                options.steady_horizon
            )));
        }
        if let Stopping::Sequential {
            target_half_width,
            step,
            max_replications,
        } = options.stopping
        {
            if !(target_half_width > 0.0) || !target_half_width.is_finite() {
                return Err(CoreError::InvalidArgument(format!(
                    "target half-width must be positive and finite, got {target_half_width}"
                )));
            }
            if step == 0 || max_replications < options.replications {
                return Err(CoreError::InvalidArgument(
                    "sequential stopping needs a positive step and \
                     max_replications >= replications"
                        .into(),
                ));
            }
        }
        Ok(SmcSession {
            model,
            options,
            batches: Mutex::new(HashMap::new()),
            stats: Mutex::new(SmcStats::default()),
        })
    }

    /// The session's configuration.
    #[must_use]
    pub fn options(&self) -> &SmcOptions {
        &self.options
    }

    /// The model under check.
    #[must_use]
    pub fn model(&self) -> &'m LocalModel {
        self.model
    }

    /// Sampling counters so far.
    ///
    /// # Panics
    ///
    /// Panics if a previous caller panicked while holding the internal
    /// lock.
    #[must_use]
    pub fn stats(&self) -> SmcStats {
        *self.stats.lock().expect("smc stats lock poisoned")
    }

    /// Checks one formula. See [`SmcSession::check_all`].
    ///
    /// # Errors
    ///
    /// As for [`SmcSession::check_all`].
    pub fn check(&self, psi: &MfFormula, m0: &Occupancy) -> Result<SmcVerdict, CoreError> {
        Ok(self
            .check_all(std::slice::from_ref(psi), m0)?
            .pop()
            .expect("one verdict per formula"))
    }

    /// Checks a batch of formulas against one initial occupancy, sharing
    /// a single batch of sampled paths across the whole formula set.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Csl`] with [`CslError::Unsupported`] for
    /// formulas outside the statistical fragment (nested `S`/`P`
    /// operators), [`CslError::UnknownAtomicProposition`] for unknown
    /// labels, and propagates simulation failures.
    pub fn check_all(
        &self,
        psis: &[MfFormula],
        m0: &Occupancy,
    ) -> Result<Vec<SmcVerdict>, CoreError> {
        if m0.len() != self.model.n_states() {
            return Err(CoreError::InvalidArgument(format!(
                "occupancy has {} entries but the model has {} states",
                m0.len(),
                self.model.n_states()
            )));
        }
        // Validate every formula up front so unsupported fragments fail
        // before any sampling happens.
        for psi in psis {
            validate(self.model, psi)?;
        }
        let t_end = psis
            .iter()
            .map(|psi| self.horizon_of(psi))
            .fold(0.0_f64, f64::max)
            .max(1e-6);
        let mut n = self.options.replications;
        loop {
            let runs = self.ensure_batch(m0, t_end, n)?;
            let verdicts = psis
                .iter()
                .map(|psi| self.evaluate(psi, m0, &runs))
                .collect::<Result<Vec<_>, _>>()?;
            match self.options.stopping {
                Stopping::Fixed => return Ok(verdicts),
                Stopping::Sequential {
                    target_half_width,
                    step,
                    max_replications,
                } => {
                    let widest = verdicts
                        .iter()
                        .flat_map(|v| &v.operators)
                        .map(|o| o.estimate.half_width())
                        .fold(0.0_f64, f64::max);
                    if widest <= target_half_width || n >= max_replications {
                        return Ok(verdicts);
                    }
                    n = (n + step).min(max_replications);
                }
            }
        }
    }

    /// The simulation horizon a formula needs: its CSL look-ahead, plus
    /// the steady horizon if it contains `ES`.
    fn horizon_of(&self, psi: &MfFormula) -> f64 {
        let mut h = psi.time_horizon();
        if contains_es(psi) {
            h = h.max(self.options.steady_horizon);
        }
        h
    }

    /// Returns at least `n` replications simulated to at least `t_end`
    /// for `m0`, reusing the memoized batch when possible. Extending a
    /// batch keeps indices 0..old intact (same per-index seeds), so the
    /// result is identical to sampling `n` replications from scratch.
    fn ensure_batch(
        &self,
        m0: &Occupancy,
        t_end: f64,
        n: usize,
    ) -> Result<Vec<Arc<Replication>>, CoreError> {
        let key: Vec<u64> = m0.as_slice().iter().map(|v| v.to_bits()).collect();
        let mut batches = self.batches.lock().expect("smc batch lock poisoned");
        if let Some(batch) = batches.get(&key) {
            if batch.t_end >= t_end && batch.runs.len() >= n {
                self.stats.lock().expect("smc stats lock poisoned").batch_hits += 1;
                return Ok(batch.runs[..n].to_vec());
            }
        }
        self.stats.lock().expect("smc stats lock poisoned").batch_misses += 1;
        let entry = batches.entry(key).or_insert(Batch {
            t_end,
            runs: Vec::new(),
        });
        if entry.t_end < t_end {
            // A longer horizon invalidates the sampled paths: regenerate
            // from scratch (same seeds, longer runs).
            entry.runs.clear();
            entry.t_end = t_end;
        }
        let have = entry.runs.len();
        if have < n {
            let fresh = self.generate(m0, have, n - have, entry.t_end)?;
            entry.runs.extend(fresh);
            self.stats
                .lock()
                .expect("smc stats lock poisoned")
                .replications_run += (n - have) as u64;
        }
        Ok(entry.runs[..n].to_vec())
    }

    /// Simulates replications `start .. start + count` in parallel. Each
    /// replication is a pure function of its global index, so sharding is
    /// invisible in the results.
    fn generate(
        &self,
        m0: &Occupancy,
        start: usize,
        count: usize,
        t_end: f64,
    ) -> Result<Vec<Arc<Replication>>, CoreError> {
        let n = self.options.population;
        let counts0 = ssa::counts_from_occupancy(m0, n)?;
        let threads = self.options.threads.max(1);
        let mut out: Vec<Option<Result<Arc<Replication>, CoreError>>> =
            (0..count).map(|_| None).collect();
        let chunk = count.div_ceil(threads).max(1);
        let model = self.model;
        let seed = self.options.seed;
        std::thread::scope(|scope| {
            for (worker, slice) in out.chunks_mut(chunk).enumerate() {
                let counts0 = &counts0;
                scope.spawn(move || {
                    for (offset, slot) in slice.iter_mut().enumerate() {
                        let index = (start + worker * chunk + offset) as u64;
                        *slot = Some(run_one(model, counts0, n, t_end, replication_seed(seed, index)));
                    }
                });
            }
        });
        out.into_iter()
            .map(|o| o.expect("worker filled slot"))
            .collect()
    }

    /// Evaluates one formula against a batch of runs.
    fn evaluate(
        &self,
        psi: &MfFormula,
        m0: &Occupancy,
        runs: &[Arc<Replication>],
    ) -> Result<SmcVerdict, CoreError> {
        let mut operators = Vec::new();
        let holds = self.eval_node(psi, m0, runs, &mut operators)?;
        let marginal = operators
            .iter()
            .any(|o: &OperatorEstimate| o.estimate.contains(o.bound));
        Ok(SmcVerdict {
            holds,
            marginal,
            population: self.options.population,
            replications: runs.len(),
            operators,
        })
    }

    fn eval_node(
        &self,
        psi: &MfFormula,
        m0: &Occupancy,
        runs: &[Arc<Replication>],
        out: &mut Vec<OperatorEstimate>,
    ) -> Result<bool, CoreError> {
        match psi {
            MfFormula::True => Ok(true),
            MfFormula::Not(inner) => Ok(!self.eval_node(inner, m0, runs, out)?),
            MfFormula::And(a, b) => {
                let ha = self.eval_node(a, m0, runs, out)?;
                let hb = self.eval_node(b, m0, runs, out)?;
                Ok(ha && hb)
            }
            MfFormula::Or(a, b) => {
                let ha = self.eval_node(a, m0, runs, out)?;
                let hb = self.eval_node(b, m0, runs, out)?;
                Ok(ha || hb)
            }
            MfFormula::Expect { cmp, p, inner } => {
                // At finite N the initial fraction is determined by the
                // discretized counts — a point estimate.
                let sat = sat_states(self.model, inner)?;
                let counts = ssa::counts_from_occupancy(m0, self.options.population)?;
                let hits: usize = sat
                    .iter()
                    .zip(&counts)
                    .filter(|(s, _)| **s)
                    .map(|(_, c)| *c)
                    .sum();
                let mean = hits as f64 / self.options.population as f64;
                let est = Estimate {
                    mean,
                    lo: mean,
                    hi: mean,
                    n: runs.len(),
                };
                Ok(push_op(out, psi, *cmp, *p, est))
            }
            MfFormula::ExpectSteady { cmp, p, inner } => {
                let sat = sat_states(self.model, inner)?;
                let samples: Vec<f64> = runs
                    .iter()
                    .map(|r| r.traj.occupancy_at(self.options.steady_horizon).mass_of(&sat))
                    .collect();
                let est = mean_ci(&samples, self.options.z)?;
                Ok(push_op(out, psi, *cmp, *p, est))
            }
            MfFormula::ExpectPath { cmp, p, path } => {
                let mut successes = 0usize;
                match path {
                    PathFormula::Next { interval, inner } => {
                        let sat = sat_states(self.model, inner)?;
                        for r in runs {
                            if paths::next_holds(&r.sojourns, &sat, interval.lo(), interval.hi())? {
                                successes += 1;
                            }
                        }
                    }
                    PathFormula::Until { interval, lhs, rhs } => {
                        let sat1 = sat_states(self.model, lhs)?;
                        let sat2 = sat_states(self.model, rhs)?;
                        for r in runs {
                            if paths::until_holds(
                                &r.sojourns,
                                &sat1,
                                &sat2,
                                interval.lo(),
                                interval.hi(),
                            )? {
                                successes += 1;
                            }
                        }
                    }
                }
                let est = proportion_ci(successes, runs.len(), self.options.z)?;
                Ok(push_op(out, psi, *cmp, *p, est))
            }
        }
    }
}

/// Simulates one replication: discretize the initial occupancy, tag a
/// uniformly random object, and run the SSA to `t_end`.
fn run_one(
    model: &LocalModel,
    counts0: &[usize],
    n: usize,
    t_end: f64,
    seed: u64,
) -> Result<Arc<Replication>, CoreError> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Pick the tagged object uniformly among the N objects, then map its
    // index to a local state through the cumulative counts.
    let target = rng.gen_range(0..n);
    let mut acc = 0usize;
    let mut tagged_state = counts0.len() - 1;
    for (s, &c) in counts0.iter().enumerate() {
        acc += c;
        if target < acc {
            tagged_state = s;
            break;
        }
    }
    let (traj, tagged): (CountTrajectory, TaggedPath) =
        ssa::simulate_tagged(model, counts0.to_vec(), tagged_state, t_end, &mut rng)?;
    let sojourns: Vec<(usize, f64, f64)> = tagged.sojourns().collect();
    Ok(Arc::new(Replication { traj, sojourns }))
}

fn push_op(
    out: &mut Vec<OperatorEstimate>,
    psi: &MfFormula,
    cmp: Comparison,
    bound: f64,
    estimate: Estimate,
) -> bool {
    let holds = cmp.holds(estimate.mean, bound);
    out.push(OperatorEstimate {
        operator: psi.to_string(),
        cmp,
        bound,
        estimate,
        holds,
    });
    holds
}

/// `true` if the formula contains an `ES` operator anywhere.
fn contains_es(psi: &MfFormula) -> bool {
    match psi {
        MfFormula::True | MfFormula::Expect { .. } | MfFormula::ExpectPath { .. } => false,
        MfFormula::ExpectSteady { .. } => true,
        MfFormula::Not(inner) => contains_es(inner),
        MfFormula::And(a, b) | MfFormula::Or(a, b) => contains_es(a) || contains_es(b),
    }
}

/// Validates a formula against the statistical fragment without sampling.
fn validate(model: &LocalModel, psi: &MfFormula) -> Result<(), CoreError> {
    match psi {
        MfFormula::True => Ok(()),
        MfFormula::Not(inner) => validate(model, inner),
        MfFormula::And(a, b) | MfFormula::Or(a, b) => {
            validate(model, a)?;
            validate(model, b)
        }
        MfFormula::Expect { inner, .. } | MfFormula::ExpectSteady { inner, .. } => {
            sat_states(model, inner).map(|_| ())
        }
        MfFormula::ExpectPath { path, .. } => match path {
            PathFormula::Next { inner, .. } => sat_states(model, inner).map(|_| ()),
            PathFormula::Until { lhs, rhs, .. } => {
                sat_states(model, lhs)?;
                sat_states(model, rhs).map(|_| ())
            }
        },
    }
}

/// The satisfaction mask of a label-determined CSL state formula — the
/// fragment the statistical lane supports (`tt`, atomic propositions, and
/// boolean combinations; nested `S`/`P` would need per-time-point
/// sub-sampling).
///
/// # Errors
///
/// Returns [`CslError::UnknownAtomicProposition`] for a label the model
/// never uses and [`CslError::Unsupported`] for nested `S`/`P` operators
/// (both wrapped in [`CoreError::Csl`]).
pub fn sat_states(model: &LocalModel, phi: &StateFormula) -> Result<Vec<bool>, CoreError> {
    let k = model.n_states();
    match phi {
        StateFormula::True => Ok(vec![true; k]),
        StateFormula::Ap(name) => {
            let lab = model.labeling();
            if !lab.alphabet().contains(name) {
                return Err(CslError::UnknownAtomicProposition(name.clone()).into());
            }
            Ok((0..k).map(|i| lab.has(i, name)).collect())
        }
        StateFormula::Not(inner) => {
            let mut sat = sat_states(model, inner)?;
            for v in &mut sat {
                *v = !*v;
            }
            Ok(sat)
        }
        StateFormula::And(a, b) => {
            let sa = sat_states(model, a)?;
            let sb = sat_states(model, b)?;
            Ok(sa.iter().zip(&sb).map(|(x, y)| *x && *y).collect())
        }
        StateFormula::Or(a, b) => {
            let sa = sat_states(model, a)?;
            let sb = sat_states(model, b)?;
            Ok(sa.iter().zip(&sb).map(|(x, y)| *x || *y).collect())
        }
        StateFormula::Steady { .. } | StateFormula::Prob { .. } => Err(CslError::Unsupported(
            "statistical checking evaluates label-determined state formulas only; \
             nested S/P operators are not supported"
                .into(),
        )
        .into()),
    }
}

/// The exact expected fraction of objects satisfying `phi` at time `t` in
/// the finite-`N` system, via the lumped overall CTMC — the ground truth
/// the statistical estimates are validated against at small `N`.
///
/// # Errors
///
/// Propagates formula-fragment errors from [`sat_states`] and state-space
/// construction failures from [`lumped::build_sparse`] (the lumped chain
/// has `C(N+K-1, K-1)` states; `max_states` caps the build).
pub fn exact_expected_fraction(
    model: &LocalModel,
    n: usize,
    m0: &Occupancy,
    phi: &StateFormula,
    t: f64,
    max_states: usize,
) -> Result<f64, CoreError> {
    let sat = sat_states(model, phi)?;
    let counts0 = ssa::counts_from_occupancy(m0, n)?;
    let chain = lumped::build_sparse(model, n, max_states)?;
    let occ = chain.expected_occupancy(&counts0, t, 1e-10)?;
    Ok(occ
        .iter()
        .zip(&sat)
        .filter(|(_, s)| **s)
        .map(|(v, _)| *v)
        .sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfcsl_csl::TimeInterval;

    fn sis() -> LocalModel {
        LocalModel::builder()
            .state("susceptible", ["healthy"])
            .state("infected", ["infected"])
            .transition("susceptible", "infected", |m: &Occupancy| 2.0 * m[1])
            .unwrap()
            .constant_transition("infected", "susceptible", 1.0)
            .unwrap()
            .build()
            .unwrap()
    }

    fn m0() -> Occupancy {
        Occupancy::new(vec![0.9, 0.1]).unwrap()
    }

    fn ep_until(cmp: Comparison, p: f64, t: f64) -> MfFormula {
        MfFormula::expect_path(
            cmp,
            p,
            PathFormula::Until {
                interval: TimeInterval::new(0.0, t).unwrap(),
                lhs: StateFormula::Ap("healthy".into()),
                rhs: StateFormula::Ap("infected".into()),
            },
        )
        .unwrap()
    }

    #[test]
    fn options_are_validated() {
        let model = sis();
        let mut o = SmcOptions::new(0);
        assert!(SmcSession::new(&model, o).is_err());
        o = SmcOptions::new(100);
        o.replications = 1;
        assert!(SmcSession::new(&model, o).is_err());
        o = SmcOptions::new(100);
        o.z = f64::NAN;
        assert!(SmcSession::new(&model, o).is_err());
        o = SmcOptions::new(100);
        o.stopping = Stopping::Sequential {
            target_half_width: 0.0,
            step: 50,
            max_replications: 400,
        };
        assert!(SmcSession::new(&model, o).is_err());
        o = SmcOptions::new(100);
        o.stopping = Stopping::Sequential {
            target_half_width: 0.05,
            step: 0,
            max_replications: 400,
        };
        assert!(SmcSession::new(&model, o).is_err());
        assert!(SmcSession::new(&model, SmcOptions::new(100)).is_ok());
    }

    #[test]
    fn expect_is_the_discretized_initial_fraction() {
        let model = sis();
        let session = SmcSession::new(&model, SmcOptions::new(100)).unwrap();
        let psi = MfFormula::expect(Comparison::Gt, 0.5, StateFormula::Ap("healthy".into())).unwrap();
        let v = session.check(&psi, &m0()).unwrap();
        assert!(v.holds);
        assert_eq!(v.operators.len(), 1);
        let op = &v.operators[0];
        assert!((op.estimate.mean - 0.9).abs() < 1e-12);
        assert_eq!(op.estimate.half_width(), 0.0);
        assert!(!v.marginal);
    }

    #[test]
    fn ep_estimate_carries_a_wilson_interval() {
        let model = sis();
        let mut o = SmcOptions::new(100);
        o.replications = 80;
        o.threads = 2;
        let session = SmcSession::new(&model, o).unwrap();
        let v = session.check(&ep_until(Comparison::Gt, 0.2, 2.0), &m0()).unwrap();
        let op = &v.operators[0];
        assert_eq!(op.estimate.n, 80);
        assert!(op.estimate.lo <= op.estimate.mean && op.estimate.mean <= op.estimate.hi);
        assert!(op.estimate.half_width() > 0.0);
        assert_eq!(v.population, 100);
    }

    #[test]
    fn results_are_thread_count_invariant_and_memoized() {
        let model = sis();
        let psi = ep_until(Comparison::Gt, 0.2, 2.0);
        let mut o = SmcOptions::new(100);
        o.replications = 60;
        o.threads = 1;
        let s1 = SmcSession::new(&model, o).unwrap();
        let v1 = s1.check(&psi, &m0()).unwrap();
        o.threads = 8;
        let s8 = SmcSession::new(&model, o).unwrap();
        let v8 = s8.check(&psi, &m0()).unwrap();
        assert_eq!(v1, v8);
        // Second check on the same session is served from the batch.
        let again = s8.check(&psi, &m0()).unwrap();
        assert_eq!(v8, again);
        let stats = s8.stats();
        assert_eq!(stats.replications_run, 60);
        assert_eq!(stats.batch_hits, 1);
        assert_eq!(stats.batch_misses, 1);
    }

    #[test]
    fn sequential_stopping_grows_until_target() {
        let model = sis();
        let psi = ep_until(Comparison::Gt, 0.2, 2.0);
        let mut o = SmcOptions::new(100);
        o.replications = 20;
        o.stopping = Stopping::Sequential {
            target_half_width: 0.08,
            step: 40,
            max_replications: 2000,
        };
        let session = SmcSession::new(&model, o).unwrap();
        let v = session.check(&psi, &m0()).unwrap();
        assert!(v.replications > 20, "{}", v.replications);
        let op = &v.operators[0];
        assert!(op.estimate.half_width() <= 0.08, "{:?}", op.estimate);
        // Growing the batch matches a from-scratch fixed run of the same
        // size: replication i's seed does not depend on history.
        let mut fixed = SmcOptions::new(100);
        fixed.replications = v.replications;
        let fresh = SmcSession::new(&model, fixed).unwrap();
        let v2 = fresh.check(&psi, &m0()).unwrap();
        assert_eq!(v.operators, v2.operators);
    }

    #[test]
    fn unsupported_fragments_and_unknown_aps_are_structured_errors() {
        let model = sis();
        let session = SmcSession::new(&model, SmcOptions::new(50)).unwrap();
        let nested = MfFormula::expect(
            Comparison::Gt,
            0.5,
            StateFormula::Steady {
                cmp: Comparison::Gt,
                p: 0.5,
                inner: Box::new(StateFormula::True),
            },
        )
        .unwrap();
        match session.check(&nested, &m0()) {
            Err(CoreError::Csl(CslError::Unsupported(_))) => {}
            other => panic!("expected Unsupported, got {other:?}"),
        }
        let typo = MfFormula::expect(Comparison::Gt, 0.5, StateFormula::Ap("healty".into())).unwrap();
        match session.check(&typo, &m0()) {
            Err(CoreError::Csl(CslError::UnknownAtomicProposition(ap))) => {
                assert_eq!(ap, "healty");
            }
            other => panic!("expected UnknownAtomicProposition, got {other:?}"),
        }
        // Validation happens before sampling.
        assert_eq!(session.stats().replications_run, 0);
    }

    #[test]
    fn es_estimate_approaches_the_stationary_fraction() {
        // SIS with infection 2·m[1] and recovery 1 has a stable fixed
        // point at m[1] = 1/2.
        let model = sis();
        let mut o = SmcOptions::new(400);
        o.replications = 60;
        o.threads = 4;
        o.steady_horizon = 30.0;
        let session = SmcSession::new(&model, o).unwrap();
        let psi = MfFormula::expect_steady(Comparison::Gt, 0.25, StateFormula::Ap("infected".into()))
            .unwrap();
        let v = session.check(&psi, &m0()).unwrap();
        let op = &v.operators[0];
        assert!(
            (op.estimate.mean - 0.5).abs() < 0.1,
            "steady estimate {:?}",
            op.estimate
        );
        assert!(v.holds);
    }

    #[test]
    fn exact_fraction_matches_meanfield_limit_direction() {
        // At N = 40 the lumped chain is exact; the helper must reproduce
        // the initial condition at t = 0.
        let model = sis();
        let f0 = exact_expected_fraction(
            &model,
            40,
            &m0(),
            &StateFormula::Ap("infected".into()),
            0.0,
            100_000,
        )
        .unwrap();
        assert!((f0 - 0.1).abs() < 1e-9, "{f0}");
    }
}
