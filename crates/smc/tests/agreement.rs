//! SMC-vs-exact agreement: the statistical estimates must cover the
//! lumped exact CTMC at small `N` and converge to the mean-field curve as
//! `N` grows (Armbruster's convergence argument).

use mfcsl_core::mfcsl::MfFormula;
use mfcsl_core::{meanfield, Occupancy};
use mfcsl_csl::{Comparison, StateFormula};
use mfcsl_models::virus;
use mfcsl_ode::OdeOptions;
use mfcsl_smc::{exact_expected_fraction, SmcOptions, SmcSession};

const HORIZON: f64 = 1.0;

fn infected() -> StateFormula {
    StateFormula::Ap("infected".into())
}

/// The session's `ES` estimate of the infected fraction at time `t`
/// (`steady_horizon` doubles as the read-out time).
fn estimate_at_time(
    model: &mfcsl_core::LocalModel,
    m0: &Occupancy,
    mut options: SmcOptions,
    t: f64,
) -> mfcsl_sim::estimator::Estimate {
    options.steady_horizon = t;
    let session = SmcSession::new(model, options).unwrap();
    let psi = MfFormula::expect_steady(Comparison::Gt, 0.5, infected()).unwrap();
    let v = session.check(&psi, m0).unwrap();
    v.operators[0].estimate
}

#[test]
fn smc_99pct_ci_covers_lumped_exact_at_n50_for_all_table2_settings() {
    let m0 = virus::example_occupancy().unwrap();
    for (name, params, law) in virus::table2_settings() {
        let model = virus::model(params, law).unwrap();
        let exact =
            exact_expected_fraction(&model, 50, &m0, &infected(), HORIZON, 200_000).unwrap();
        let mut o = SmcOptions::new(50);
        o.replications = 400;
        o.z = 2.5758; // 99% two-sided
        o.seed = 2013;
        o.threads = 4;
        let est = estimate_at_time(&model, &m0, o, HORIZON);
        assert!(
            est.contains(exact),
            "{name}: exact {exact} outside 99% CI {est:?}"
        );
    }
}

#[test]
fn widening_population_approaches_the_meanfield_curve() {
    // The growing-epidemic variant over a longer window has a visible
    // O(1/N) finite-size gap, so the convergence ordering is not lost in
    // Monte-Carlo noise.
    let model = virus::model(virus::setting_1_swapped(), virus::InfectionLaw::SmartVirus).unwrap();
    let m0 = virus::example_occupancy().unwrap();
    let t = 5.0;
    let traj = meanfield::solve(&model, &m0, t, &OdeOptions::default()).unwrap();
    let sat = mfcsl_smc::sat_states(&model, &infected()).unwrap();
    let mf = traj.occupancy_at(t).mass_of(&sat);

    let mut errors = Vec::new();
    for population in [100, 1_000, 10_000] {
        let mut o = SmcOptions::new(population);
        o.replications = 60;
        o.seed = 7;
        o.threads = 4;
        let est = estimate_at_time(&model, &m0, o, t);
        errors.push((est.mean - mf).abs());
    }
    assert!(
        errors[0] > errors[1] && errors[1] > errors[2],
        "|estimate - meanfield| must shrink with N: {errors:?} (meanfield {mf})"
    );
    // At N = 10^4 the finite-size gap is already small in absolute terms.
    assert!(errors[2] < 5e-3, "{errors:?}");
}
