//! Formula-driven chain transformations.
//!
//! CSL until checking works on *modified* chains `𝓜[Φ]` in which all states
//! satisfying `Φ` are made absorbing (Sec. IV-A of the paper, following
//! Baier et al.): the probability of a time-bounded until is then a product
//! of two transient reachability problems (Eq. 3 / Eq. 4).

use crate::{Ctmc, CtmcError};

/// Returns a copy of `ctmc` in which every state in `absorbing` has all its
/// outgoing transitions removed.
///
/// Labels and names are preserved. Duplicate indices are allowed.
///
/// # Errors
///
/// Returns [`CtmcError::StateIndexOutOfRange`] for invalid indices.
///
/// # Example
///
/// ```
/// use mfcsl_ctmc::{absorb::make_absorbing, CtmcBuilder};
///
/// # fn main() -> Result<(), mfcsl_ctmc::CtmcError> {
/// let c = CtmcBuilder::new()
///     .state("a", ["a"]).state("b", ["b"])
///     .transition("a", "b", 1.0)?
///     .transition("b", "a", 1.0)?
///     .build()?;
/// let m = make_absorbing(&c, &[1])?;
/// assert!(m.is_absorbing(1));
/// assert!(!m.is_absorbing(0));
/// # Ok(())
/// # }
/// ```
pub fn make_absorbing(ctmc: &Ctmc, absorbing: &[usize]) -> Result<Ctmc, CtmcError> {
    let n = ctmc.n_states();
    for &s in absorbing {
        if s >= n {
            return Err(CtmcError::StateIndexOutOfRange {
                index: s,
                n_states: n,
            });
        }
    }
    let mut q = ctmc.generator().clone();
    for &s in absorbing {
        for j in 0..n {
            q[(s, j)] = 0.0;
        }
    }
    Ctmc::from_parts(ctmc.state_names().to_vec(), q, ctmc.labeling().clone())
}

/// Returns the states satisfying the *complement* of the given set — a
/// convenience for the `𝓜[¬Φ₁]` constructions where the checker holds
/// `Sat(Φ₁)` and needs the states to absorb.
#[must_use]
pub fn complement_states(n_states: usize, states: &[usize]) -> Vec<usize> {
    (0..n_states).filter(|s| !states.contains(s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transient::transient_distribution;
    use crate::CtmcBuilder;

    fn cycle3() -> Ctmc {
        CtmcBuilder::new()
            .state("a", ["a"])
            .state("b", ["b"])
            .state("c", ["c"])
            .transition("a", "b", 1.0)
            .unwrap()
            .transition("b", "c", 1.0)
            .unwrap()
            .transition("c", "a", 1.0)
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn absorbing_rows_are_zeroed() {
        let c = cycle3();
        let m = make_absorbing(&c, &[1, 2]).unwrap();
        assert!(!m.is_absorbing(0));
        assert!(m.is_absorbing(1));
        assert!(m.is_absorbing(2));
        // Labels preserved.
        assert!(m.labeling().has(1, "b"));
        assert_eq!(m.state_names(), c.state_names());
    }

    #[test]
    fn duplicates_and_empty_are_fine() {
        let c = cycle3();
        let m = make_absorbing(&c, &[1, 1, 1]).unwrap();
        assert!(m.is_absorbing(1));
        let unchanged = make_absorbing(&c, &[]).unwrap();
        assert_eq!(unchanged.generator(), c.generator());
    }

    #[test]
    fn out_of_range_rejected() {
        let c = cycle3();
        assert!(matches!(
            make_absorbing(&c, &[5]),
            Err(CtmcError::StateIndexOutOfRange { .. })
        ));
    }

    #[test]
    fn reachability_on_modified_chain() {
        // On the cycle with b absorbing, reaching b from a by time t is
        // 1 - e^{-t} (single exponential hop).
        let c = cycle3();
        let m = make_absorbing(&c, &[1]).unwrap();
        let pi = transient_distribution(&m, &[1.0, 0.0, 0.0], 2.0, 1e-13).unwrap();
        assert!((pi[1] - (1.0 - (-2.0_f64).exp())).abs() < 1e-10);
        assert_eq!(pi[2], 0.0);
    }

    #[test]
    fn complement_states_works() {
        assert_eq!(complement_states(4, &[1, 3]), vec![0, 2]);
        assert_eq!(complement_states(2, &[]), vec![0, 1]);
        assert!(complement_states(2, &[0, 1]).is_empty());
    }
}
