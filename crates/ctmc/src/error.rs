//! Error type for the CTMC substrate.

use std::fmt;

use mfcsl_math::MathError;
use mfcsl_ode::OdeError;

/// Error returned by the CTMC routines.
#[derive(Debug, Clone, PartialEq)]
pub enum CtmcError {
    /// A state name was used that does not exist in the chain.
    UnknownState(String),
    /// A state index was out of range.
    StateIndexOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of states in the chain.
        n_states: usize,
    },
    /// The generator matrix violates a CTMC invariant.
    InvalidGenerator(String),
    /// A supplied distribution is not a probability vector of the right size.
    InvalidDistribution(String),
    /// An argument was outside its documented domain.
    InvalidArgument(String),
    /// An underlying numerical routine failed.
    Math(MathError),
    /// An underlying ODE integration failed.
    Ode(OdeError),
}

impl fmt::Display for CtmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtmcError::UnknownState(name) => write!(f, "unknown state `{name}`"),
            CtmcError::StateIndexOutOfRange { index, n_states } => {
                write!(f, "state index {index} out of range for {n_states} states")
            }
            CtmcError::InvalidGenerator(msg) => write!(f, "invalid generator: {msg}"),
            CtmcError::InvalidDistribution(msg) => write!(f, "invalid distribution: {msg}"),
            CtmcError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            CtmcError::Math(e) => write!(f, "numerical error: {e}"),
            CtmcError::Ode(e) => write!(f, "ode error: {e}"),
        }
    }
}

impl std::error::Error for CtmcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CtmcError::Math(e) => Some(e),
            CtmcError::Ode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MathError> for CtmcError {
    fn from(e: MathError) -> Self {
        CtmcError::Math(e)
    }
}

impl From<OdeError> for CtmcError {
    fn from(e: OdeError) -> Self {
        CtmcError::Ode(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        assert!(CtmcError::UnknownState("x".into())
            .to_string()
            .contains("x"));
        let e: CtmcError = MathError::Singular.into();
        assert!(std::error::Error::source(&e).is_some());
        let e: CtmcError = OdeError::InvalidArgument("bad".into()).into();
        assert!(e.to_string().contains("bad"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CtmcError>();
    }
}
