//! Time-inhomogeneous CTMCs and the Kolmogorov equations.
//!
//! Along a mean-field trajectory the local model's generator varies with
//! time: `Q(t) = Q(m̄(t))`. This module provides the generator abstraction
//! and the three integrations the paper's algorithms are built on:
//!
//! * [`forward_distribution`] — `dπ/dt = π(t)·Q(t)` for a distribution;
//! * [`transition_matrix`] — the forward Kolmogorov equation for the full
//!   probability matrix `Π'(t', t'+T)` (Eq. 5 of the paper);
//! * [`propagate_window`] — the combined forward/backward equation
//!   `dΠ'(t, t+T)/dt = -Q(t)·Π' + Π'·Q(t+T)` (Eq. 6, also used for `Υ` in
//!   Eq. 12), which slides a fixed-duration window through time.

use std::cell::RefCell;

use mfcsl_math::Matrix;
use mfcsl_ode::recover::solve_recovering;
use mfcsl_ode::{OdeOptions, SolverWorkspace, Trajectory};

use crate::{Ctmc, CtmcError};

/// A time-varying infinitesimal generator `Q(t)`.
///
/// Implementations must produce a valid generator at every queried time:
/// non-negative off-diagonal entries with the diagonal equal to minus the
/// row sum. (The integrators do not re-validate per evaluation; the checker
/// layer validates at construction.)
pub trait TimeVaryingGenerator {
    /// Number of states.
    fn n_states(&self) -> usize;

    /// Writes `Q(t)` (including the diagonal) into `q`.
    ///
    /// Implementations may assume `q` is `n_states × n_states`.
    fn write_generator(&self, t: f64, q: &mut Matrix);

    /// Convenience: materializes `Q(t)` into a fresh matrix.
    fn generator_at(&self, t: f64) -> Matrix {
        let n = self.n_states();
        let mut q = Matrix::zeros(n, n);
        self.write_generator(t, &mut q);
        q
    }

    /// The fixed off-diagonal transition topology of `Q(t)`, when the
    /// generator knows it: parallel `(from, to)` index slices, constant in
    /// time (only the rates vary). `None` — the default — means the
    /// topology is unknown or dense, and callers must fall back to
    /// [`write_generator`](TimeVaryingGenerator::write_generator).
    ///
    /// A generator reporting `Some` promises that every off-diagonal entry
    /// of `Q(t)` outside the pattern is zero at *every* `t`, and must also
    /// implement [`write_rates`](TimeVaryingGenerator::write_rates).
    fn sparsity(&self) -> Option<(&[usize], &[usize])> {
        None
    }

    /// Writes the off-diagonal rates at `t` into `rates`, in the order of
    /// the [`sparsity`](TimeVaryingGenerator::sparsity) pattern. Only
    /// meaningful when `sparsity()` returns `Some`; the default is a no-op.
    ///
    /// Implementations may assume `rates.len()` equals the pattern length,
    /// and must fully overwrite `rates` with finite, non-negative values
    /// (clamping invalid evaluations to zero, like the dense writers do).
    fn write_rates(&self, _t: f64, _rates: &mut [f64]) {}
}

/// A [`TimeVaryingGenerator`] built from a closure.
pub struct FnGenerator<F> {
    n: usize,
    f: F,
}

impl<F: Fn(f64, &mut Matrix)> FnGenerator<F> {
    /// Wraps the closure `f(t, q)` writing the generator at time `t`.
    pub fn new(n: usize, f: F) -> Self {
        FnGenerator { n, f }
    }
}

impl<F: Fn(f64, &mut Matrix)> TimeVaryingGenerator for FnGenerator<F> {
    fn n_states(&self) -> usize {
        self.n
    }

    fn write_generator(&self, t: f64, q: &mut Matrix) {
        (self.f)(t, q);
    }
}

impl<F> std::fmt::Debug for FnGenerator<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnGenerator").field("n", &self.n).finish()
    }
}

/// A constant generator — the time-homogeneous special case, used to
/// cross-validate the inhomogeneous algorithms against uniformization.
#[derive(Debug, Clone)]
pub struct ConstGenerator {
    q: Matrix,
}

impl ConstGenerator {
    /// Wraps the generator of a time-homogeneous chain.
    #[must_use]
    pub fn new(ctmc: &Ctmc) -> Self {
        ConstGenerator {
            q: ctmc.generator().clone(),
        }
    }

    /// Wraps an explicit generator matrix.
    #[must_use]
    pub fn from_matrix(q: Matrix) -> Self {
        ConstGenerator { q }
    }
}

impl TimeVaryingGenerator for ConstGenerator {
    fn n_states(&self) -> usize {
        self.q.rows()
    }

    fn write_generator(&self, _t: f64, q: &mut Matrix) {
        q.as_mut_slice().copy_from_slice(self.q.as_slice());
    }
}

/// One memoized generator evaluation: `Q(t)` — and its transpose, so the
/// matrix right-hand sides can gather columns of `Q` from contiguous rows of
/// `Qᵀ` — cached by the exact bit pattern of `t`.
///
/// Dopri5 stage times repeat: stages 6 and 7 both sit at `t + h`, and the
/// FSAL refresh plus the next step's first stage re-query the accepted time,
/// so caching by stage time removes roughly a third of all generator
/// evaluations without changing a single produced value (the generator is a
/// pure function of `t`). The matrices are allocated once per solve instead
/// of once per right-hand-side evaluation.
struct QSlot {
    t_bits: Option<u64>,
    q: Matrix,
    qt: Matrix,
}

impl QSlot {
    fn new(n: usize) -> Self {
        QSlot {
            t_bits: None,
            q: Matrix::zeros(n, n),
            qt: Matrix::zeros(n, n),
        }
    }

    /// Refreshes the cached generator if `t` differs bitwise from the
    /// memoized stage time.
    fn refresh<G: TimeVaryingGenerator>(&mut self, gen: &G, t: f64) {
        if self.t_bits == Some(t.to_bits()) {
            return;
        }
        gen.write_generator(t, &mut self.q);
        let n = self.q.rows();
        for i in 0..n {
            for j in 0..n {
                self.qt[(j, i)] = self.q[(i, j)];
            }
        }
        self.t_bits = Some(t.to_bits());
    }
}

/// Allocation-free system for `dπ/dt = π(t)·Q(t)`.
struct ForwardSystem<'a, G> {
    gen: &'a G,
    n: usize,
    slot: RefCell<QSlot>,
}

impl<G: TimeVaryingGenerator> mfcsl_ode::OdeSystem for ForwardSystem<'_, G> {
    fn dim(&self) -> usize {
        self.n
    }

    fn rhs(&self, t: f64, y: &[f64], dy: &mut [f64]) {
        let mut slot = self.slot.borrow_mut();
        slot.refresh(self.gen, t);
        let q = &slot.q;
        // dπ = π·Q with `Matrix::vec_mul`'s accumulation order, so the
        // trajectory is bitwise identical to the allocating path.
        dy.fill(0.0);
        for (i, &xi) in y.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for (j, dy_j) in dy.iter_mut().enumerate() {
                *dy_j += xi * q[(i, j)];
            }
        }
    }
}

/// Allocation-free system for the forward Kolmogorov matrix equation
/// `dΠ/dT = Π·Q(t_start + T)` on the flattened `n²` state.
struct MatrixForwardSystem<'a, G> {
    gen: &'a G,
    n: usize,
    t_start: f64,
    slot: RefCell<QSlot>,
}

impl<G: TimeVaryingGenerator> mfcsl_ode::OdeSystem for MatrixForwardSystem<'_, G> {
    fn dim(&self) -> usize {
        self.n * self.n
    }

    fn rhs(&self, big_t: f64, y: &[f64], dy: &mut [f64]) {
        let n = self.n;
        let mut slot = self.slot.borrow_mut();
        slot.refresh(self.gen, self.t_start + big_t);
        // (ΠQ)_{ij} = Σ_k Π_{ik} Q_{kj}: column j of Q is row j of Qᵀ, so
        // both factors stream contiguously; the summation order (ascending
        // k) is unchanged, keeping results bitwise identical.
        let qt = slot.qt.as_slice();
        for i in 0..n {
            let y_row = &y[i * n..(i + 1) * n];
            let dy_row = &mut dy[i * n..(i + 1) * n];
            for (j, dy_ij) in dy_row.iter_mut().enumerate() {
                let q_col = &qt[j * n..(j + 1) * n];
                let mut acc = 0.0;
                for (y_ik, q_kj) in y_row.iter().zip(q_col) {
                    acc += y_ik * q_kj;
                }
                *dy_ij = acc;
            }
        }
    }
}

/// Allocation-free system for the combined window equation (Eq. 6):
/// `dΠ'(t, t+T)/dt = -Q(t)·Π' + Π'·Q(t+T)`, with separately memoized lead
/// and trail generator evaluations.
struct WindowSystem<'a, G> {
    gen: &'a G,
    n: usize,
    duration: f64,
    lead: RefCell<QSlot>,
    trail: RefCell<QSlot>,
}

impl<G: TimeVaryingGenerator> mfcsl_ode::OdeSystem for WindowSystem<'_, G> {
    fn dim(&self) -> usize {
        self.n * self.n
    }

    fn rhs(&self, t: f64, y: &[f64], dy: &mut [f64]) {
        let n = self.n;
        let mut lead = self.lead.borrow_mut();
        let mut trail = self.trail.borrow_mut();
        lead.refresh(self.gen, t);
        trail.refresh(self.gen, t + self.duration);
        let q_lead = lead.q.as_slice();
        let qt_trail = trail.qt.as_slice();
        for i in 0..n {
            let lead_row = &q_lead[i * n..(i + 1) * n];
            let y_row = &y[i * n..(i + 1) * n];
            let dy_row = &mut dy[i * n..(i + 1) * n];
            for (j, dy_ij) in dy_row.iter_mut().enumerate() {
                let trail_col = &qt_trail[j * n..(j + 1) * n];
                let mut acc = 0.0;
                for k in 0..n {
                    // -Q(t) Π + Π Q(t+T)
                    acc += -lead_row[k] * y[k * n + j] + y_row[k] * trail_col[k];
                }
                *dy_ij = acc;
            }
        }
    }
}

/// Solves `dπ/dt = π(t)·Q(t)` from `t0` to `t1` with initial distribution
/// `pi0`, returning the dense trajectory of the distribution.
///
/// # Errors
///
/// Returns [`CtmcError::InvalidDistribution`] for a bad `pi0`, and
/// propagates ODE failures.
pub fn forward_distribution<G: TimeVaryingGenerator>(
    gen: &G,
    pi0: &[f64],
    t0: f64,
    t1: f64,
    options: &OdeOptions,
) -> Result<Trajectory, CtmcError> {
    let n = gen.n_states();
    if pi0.len() != n {
        return Err(CtmcError::InvalidDistribution(format!(
            "distribution has length {}, expected {n}",
            pi0.len()
        )));
    }
    mfcsl_math::simplex::check_distribution(pi0, mfcsl_math::simplex::DEFAULT_SUM_TOL)
        .map_err(|e| CtmcError::InvalidDistribution(e.to_string()))?;
    let sys = ForwardSystem {
        gen,
        n,
        slot: RefCell::new(QSlot::new(n)),
    };
    let mut ws = SolverWorkspace::new();
    Ok(solve_recovering(&sys, t0, t1, pi0, options, &mut ws)?.0)
}

/// Solves the forward Kolmogorov equation (Eq. 5):
/// `dΠ'(t', t'+T)/dT = Π'(t', t'+T)·Q(t'+T)` with `Π'(t', t') = I`,
/// returning `Π'(t', t'+duration)`.
///
/// Row `s` column `s'` of the result is the probability of being in `s'` at
/// time `t' + duration` given state `s` at time `t'`.
///
/// # Errors
///
/// Returns [`CtmcError::InvalidArgument`] for a negative duration and
/// propagates ODE failures.
pub fn transition_matrix<G: TimeVaryingGenerator>(
    gen: &G,
    t_start: f64,
    duration: f64,
    options: &OdeOptions,
) -> Result<Matrix, CtmcError> {
    let traj = transition_matrix_trajectory(gen, t_start, duration, options)?;
    Ok(flat_to_matrix(gen.n_states(), &traj.final_state()))
}

/// Like [`transition_matrix`] but returns the whole dense trajectory of the
/// flattened `n²`-dimensional matrix ODE over `T ∈ [0, duration]` (evaluate
/// and reshape with [`flat_to_matrix`]).
///
/// # Errors
///
/// See [`transition_matrix`].
pub fn transition_matrix_trajectory<G: TimeVaryingGenerator>(
    gen: &G,
    t_start: f64,
    duration: f64,
    options: &OdeOptions,
) -> Result<Trajectory, CtmcError> {
    if !(duration >= 0.0) || !duration.is_finite() {
        return Err(CtmcError::InvalidArgument(format!(
            "duration must be finite and non-negative, got {duration}"
        )));
    }
    let n = gen.n_states();
    let sys = MatrixForwardSystem {
        gen,
        n,
        t_start,
        slot: RefCell::new(QSlot::new(n)),
    };
    let identity_flat = Matrix::identity(n).into_vec();
    let mut ws = SolverWorkspace::new();
    Ok(solve_recovering(&sys, 0.0, duration, &identity_flat, options, &mut ws)?.0)
}

/// Solves the combined forward/backward equation (Eq. 6 / Eq. 12):
///
/// `dΠ'(t, t+T)/dt = -Q_lead(t)·Π'(t, t+T) + Π'(t, t+T)·Q_trail(t+T)`
///
/// for `t ∈ [t_init, t_end]`, starting from the given `initial` matrix
/// `Π'(t_init, t_init+T)`. Both sides use the same generator in the
/// single-until case; the nested-until algorithm of Sec. IV-C feeds the
/// same modified generator too but restarts the integration at every
/// discontinuity point.
///
/// Returns the dense trajectory of the flattened matrix (reshape with
/// [`flat_to_matrix`]).
///
/// # Errors
///
/// Returns [`CtmcError::InvalidArgument`] for shape mismatches, a negative
/// window `duration`, or a reversed time range, and propagates ODE failures.
pub fn propagate_window<G: TimeVaryingGenerator>(
    gen: &G,
    initial: &Matrix,
    t_init: f64,
    t_end: f64,
    duration: f64,
    options: &OdeOptions,
) -> Result<Trajectory, CtmcError> {
    propagate_window_from(gen, initial, t_init, t_end, duration, options, None)
}

/// The steady-regime hand-off for [`propagate_window_from`]: from `t_star`
/// on, the generator is (numerically) constant in time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantTail {
    /// Earliest time from which `Q(t)` no longer varies.
    pub t_star: f64,
    /// Truncation error of the uniformization used for the tail value.
    pub eps: f64,
}

/// [`propagate_window`] with an optional steady-regime fast path.
///
/// When `tail` reports that `Q(t)` is constant for `t ≥ t_star`, the window
/// matrix is constant there too: `Π'(t, t+T) = e^{Q·T}` for every
/// `t ≥ t_star`, because the window only sees the settled generator. The
/// integration of Eq. 6 is therefore cut at `t_star` and the remaining
/// `[t_star, t_end]` range is covered by a single uniformization
/// (Eq. 14/15) of the frozen generator — one shared Poisson window instead
/// of thousands of Runge-Kutta stages.
///
/// The fast path is only valid when the propagated quantity *is* the
/// sliding-window transition matrix of `gen` itself (as in the single-until
/// algorithm, where `initial = Π'(t_init, t_init+T)`). Products of matrices
/// propagated through this equation — the nested-until `Υ` of Eq. 12 — do
/// not satisfy `Π'(t, t+T) = e^{QT}` and must pass `tail = None`.
///
/// # Errors
///
/// See [`propagate_window`]; additionally propagates uniformization
/// failures from a bad `tail.eps`.
pub fn propagate_window_from<G: TimeVaryingGenerator>(
    gen: &G,
    initial: &Matrix,
    t_init: f64,
    t_end: f64,
    duration: f64,
    options: &OdeOptions,
    tail: Option<&ConstantTail>,
) -> Result<Trajectory, CtmcError> {
    let n = gen.n_states();
    if initial.rows() != n || initial.cols() != n {
        return Err(CtmcError::InvalidArgument(format!(
            "initial matrix is {}x{}, expected {n}x{n}",
            initial.rows(),
            initial.cols()
        )));
    }
    if !(duration >= 0.0) || !(t_end >= t_init) {
        return Err(CtmcError::InvalidArgument(format!(
            "invalid window propagation: t ∈ [{t_init}, {t_end}], T = {duration}"
        )));
    }
    let sys = WindowSystem {
        gen,
        n,
        duration,
        lead: RefCell::new(QSlot::new(n)),
        trail: RefCell::new(QSlot::new(n)),
    };
    let cut = match tail {
        Some(tail) if tail.t_star.max(t_init) < t_end => tail.t_star.max(t_init),
        _ => {
            let mut ws = SolverWorkspace::new();
            return Ok(solve_recovering(&sys, t_init, t_end, initial.as_slice(), options, &mut ws)?.0);
        }
    };
    let tail = tail.expect("checked above");
    // Head: the genuinely time-varying stretch, integrated as usual.
    let mut ws = SolverWorkspace::new();
    let head = solve_recovering(&sys, t_init, cut, initial.as_slice(), options, &mut ws)?.0;
    // Tail: one uniformization of the frozen generator gives the constant
    // window value W = e^{Q(t_star)·T}. A sparsity-aware generator above
    // the density threshold skips the dense Q and Pᵀ materializations.
    let w = match gen.sparsity() {
        Some((from, to))
            if crate::propagator::choose_backend(n, from.len())
                == crate::propagator::Backend::Sparse =>
        {
            let mut rates = vec![0.0; from.len()];
            gen.write_rates(cut, &mut rates);
            let triplets: Vec<(usize, usize, f64)> = from
                .iter()
                .zip(to)
                .zip(&rates)
                .map(|((&f, &t), &r)| (f, t, r))
                .collect();
            let prop = crate::propagator::CscPropagator::from_triplets(n, &triplets)?;
            crate::transient::transient_matrix_for(None, &prop, duration, tail.eps)?
        }
        _ => {
            let mut q = Matrix::zeros(n, n);
            gen.write_generator(cut, &mut q);
            let prop = crate::propagator::DensePropagator::from_generator(&q);
            crate::transient::transient_matrix_for(None, &prop, duration, tail.eps)?
        }
    };
    // Append the constant segment as a two-knot Hermite piece anchored at
    // the head's actual final knot (flat value, zero slope). The head's
    // value at the hand-off differs from W only by the settle threshold and
    // the two methods' truncation errors.
    let t_cut = head.t_end();
    if !(t_cut < t_end) {
        return Ok(head);
    }
    let flat = mfcsl_ode::SolveStats::default();
    let mut ys = Vec::with_capacity(2 * n * n);
    ys.extend_from_slice(w.as_slice());
    ys.extend_from_slice(w.as_slice());
    let const_tail = Trajectory::from_flat(n * n, vec![t_cut, t_end], ys, vec![0.0; 2 * n * n], flat)?;
    Ok(head.extended_with(&const_tail)?)
}

/// Reshapes a flattened row-major `n²` vector into a matrix.
///
/// # Panics
///
/// Panics if `flat.len() != n * n`.
#[must_use]
pub fn flat_to_matrix(n: usize, flat: &[f64]) -> Matrix {
    assert_eq!(flat.len(), n * n, "flat vector has wrong length");
    Matrix::from_vec(n, n, flat.to_vec()).expect("length checked")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transient::transient_matrix;
    use crate::CtmcBuilder;

    fn chain3() -> Ctmc {
        CtmcBuilder::new()
            .state("a", ["a"])
            .state("b", ["b"])
            .state("c", ["c"])
            .transition("a", "b", 1.2)
            .unwrap()
            .transition("b", "a", 0.4)
            .unwrap()
            .transition("b", "c", 0.9)
            .unwrap()
            .transition("c", "b", 2.0)
            .unwrap()
            .build()
            .unwrap()
    }

    fn tight() -> OdeOptions {
        OdeOptions::default().with_tolerances(1e-11, 1e-13)
    }

    #[test]
    fn constant_generator_matches_uniformization() {
        let c = chain3();
        let gen = ConstGenerator::new(&c);
        let pi_ode = transition_matrix(&gen, 0.0, 1.5, &tight()).unwrap();
        let pi_unif = transient_matrix(&c, 1.5, 1e-13).unwrap();
        assert!(pi_ode.sub_matrix(&pi_unif).unwrap().norm_max() < 1e-8);
    }

    #[test]
    fn forward_distribution_matches_matrix_row() {
        let c = chain3();
        let gen = ConstGenerator::new(&c);
        let traj = forward_distribution(&gen, &[1.0, 0.0, 0.0], 0.0, 2.0, &tight()).unwrap();
        let pi = traj.final_state();
        let mat = transition_matrix(&gen, 0.0, 2.0, &tight()).unwrap();
        for j in 0..3 {
            assert!((pi[j] - mat[(0, j)]).abs() < 1e-8);
        }
    }

    #[test]
    fn genuinely_time_varying_generator() {
        // One-way chain with rate r(t) = t: survival in state 0 over [0, T]
        // is exp(-T²/2).
        let gen = FnGenerator::new(2, |t: f64, q: &mut Matrix| {
            q[(0, 0)] = -t;
            q[(0, 1)] = t;
            q[(1, 0)] = 0.0;
            q[(1, 1)] = 0.0;
        });
        let m = transition_matrix(&gen, 0.0, 2.0, &tight()).unwrap();
        let exact = (-2.0_f64).exp(); // e^{-T²/2} with T=2.
        assert!((m[(0, 0)] - exact).abs() < 1e-9, "{m}");
        assert!((m[(0, 1)] - (1.0 - exact)).abs() < 1e-9);
        // Starting time matters: from t' = 1 the exponent is ∫₁³ t dt = 4.
        let m = transition_matrix(&gen, 1.0, 2.0, &tight()).unwrap();
        assert!((m[(0, 0)] - (-4.0_f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn window_propagation_matches_direct_solves() {
        // Π(t, t+T) computed by sliding the window must match a fresh
        // forward solve from each t.
        let gen = FnGenerator::new(2, |t: f64, q: &mut Matrix| {
            let r = 0.5 + 0.3 * (t).sin();
            q[(0, 0)] = -r;
            q[(0, 1)] = r;
            q[(1, 0)] = 1.0;
            q[(1, 1)] = -1.0;
        });
        let duration = 0.8;
        let init = transition_matrix(&gen, 0.0, duration, &tight()).unwrap();
        let traj = propagate_window(&gen, &init, 0.0, 3.0, duration, &tight()).unwrap();
        for &t in &[0.5, 1.3, 2.7] {
            let via_window = flat_to_matrix(2, &traj.eval(t));
            let direct = transition_matrix(&gen, t, duration, &tight()).unwrap();
            let diff = via_window.sub_matrix(&direct).unwrap().norm_max();
            assert!(diff < 1e-7, "t = {t}, diff = {diff}");
        }
    }

    #[test]
    fn rows_remain_stochastic_along_window() {
        let c = chain3();
        let gen = ConstGenerator::new(&c);
        let init = transition_matrix(&gen, 0.0, 1.0, &tight()).unwrap();
        let traj = propagate_window(&gen, &init, 0.0, 5.0, 1.0, &tight()).unwrap();
        for &t in traj.knots() {
            let m = flat_to_matrix(3, &traj.eval(t));
            for i in 0..3 {
                let s: f64 = m.row(i).iter().sum();
                assert!((s - 1.0).abs() < 1e-7, "row sum {s} at t = {t}");
            }
        }
    }

    #[test]
    fn validates_arguments() {
        let c = chain3();
        let gen = ConstGenerator::new(&c);
        assert!(forward_distribution(&gen, &[1.0], 0.0, 1.0, &tight()).is_err());
        assert!(forward_distribution(&gen, &[0.6, 0.6, 0.0], 0.0, 1.0, &tight()).is_err());
        assert!(transition_matrix(&gen, 0.0, -1.0, &tight()).is_err());
        let bad_init = Matrix::identity(2);
        assert!(propagate_window(&gen, &bad_init, 0.0, 1.0, 1.0, &tight()).is_err());
        let good_init = Matrix::identity(3);
        assert!(propagate_window(&gen, &good_init, 1.0, 0.0, 1.0, &tight()).is_err());
        assert!(propagate_window(&gen, &good_init, 0.0, 1.0, -1.0, &tight()).is_err());
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn flat_to_matrix_checks_length() {
        let _ = flat_to_matrix(2, &[1.0, 2.0, 3.0]);
    }

    /// A generator that genuinely varies early and is *exactly* constant
    /// from `t = 2` on — the regime the steady-state fast path targets.
    fn settling_gen() -> FnGenerator<impl Fn(f64, &mut Matrix)> {
        FnGenerator::new(2, |t: f64, q: &mut Matrix| {
            let s = (2.0 - t).max(0.0);
            let r = 1.0 + s * s;
            q[(0, 0)] = -r;
            q[(0, 1)] = r;
            q[(1, 0)] = 0.7;
            q[(1, 1)] = -0.7;
        })
    }

    #[test]
    fn constant_tail_matches_full_integration() {
        let gen = settling_gen();
        let duration = 0.8;
        let init = transition_matrix(&gen, 0.0, duration, &tight()).unwrap();
        let full = propagate_window(&gen, &init, 0.0, 12.0, duration, &tight()).unwrap();
        let tail = ConstantTail {
            t_star: 2.0,
            eps: 1e-13,
        };
        let fast =
            propagate_window_from(&gen, &init, 0.0, 12.0, duration, &tight(), Some(&tail)).unwrap();
        for i in 0..=24 {
            let t = 12.0 * f64::from(i) / 24.0;
            // Reference: the window matrix integrated directly over
            // [t, t+T] — a short solve whose error stays near the
            // tolerance floor, unlike the 12-time-unit window propagation
            // whose accumulated drift is itself ~1e-9.
            let direct = transition_matrix(&gen, t, duration, &tight()).unwrap();
            let via_fast = flat_to_matrix(2, &fast.eval(t));
            let err_fast = via_fast.sub_matrix(&direct).unwrap().norm_max();
            assert!(err_fast < 1e-9, "t = {t}, fast vs direct = {err_fast}");
            // The long window propagation's own error modes grow like
            // e^{(λi-λj)(t-t*)} through the settled stretch (≈1e-7 by
            // t = 11 here) — the uniformized tail sidesteps exactly that —
            // so the full path is only compared before the growth
            // dominates.
            if t <= 6.0 {
                let a = full.eval(t);
                let b = fast.eval(t);
                for (x, y) in a.iter().zip(&b) {
                    assert!((x - y).abs() < 1e-7, "t = {t}: {x} vs {y}");
                }
            }
        }
        // The fast path must actually skip the settled stretch (10 time
        // units at h_max, ≳200 stage evaluations).
        assert!(
            fast.stats().rhs_evals + 200 <= full.stats().rhs_evals,
            "fast {} vs full {}",
            fast.stats().rhs_evals,
            full.stats().rhs_evals
        );
    }

    #[test]
    fn constant_tail_from_start_is_pure_uniformization() {
        // t_star at (or before) t_init: the whole range is one constant
        // segment, W = e^{QT} straight from uniformization.
        let c = chain3();
        let gen = ConstGenerator::new(&c);
        let duration = 1.1;
        let init = transition_matrix(&gen, 0.0, duration, &tight()).unwrap();
        let tail = ConstantTail {
            t_star: -1.0,
            eps: 1e-13,
        };
        let fast =
            propagate_window_from(&gen, &init, 0.0, 4.0, duration, &tight(), Some(&tail)).unwrap();
        let expect = transient_matrix(&c, duration, 1e-13).unwrap();
        for &t in &[0.0, 1.0, 2.5, 4.0] {
            let m = flat_to_matrix(3, &fast.eval(t));
            let diff = m.sub_matrix(&expect).unwrap().norm_max();
            assert!(diff < 1e-9, "t = {t}, diff = {diff}");
        }
    }

    #[test]
    fn constant_tail_outside_range_is_bitwise_noop() {
        // t_star beyond t_end: the ODE path runs unchanged, bitwise.
        let gen = settling_gen();
        let duration = 0.5;
        let init = transition_matrix(&gen, 0.0, duration, &tight()).unwrap();
        let plain = propagate_window(&gen, &init, 0.0, 1.5, duration, &tight()).unwrap();
        let tail = ConstantTail {
            t_star: 9.0,
            eps: 1e-13,
        };
        let gated =
            propagate_window_from(&gen, &init, 0.0, 1.5, duration, &tight(), Some(&tail)).unwrap();
        assert_eq!(plain.knots(), gated.knots());
        for &t in plain.knots() {
            let a = plain.eval(t);
            let b = gated.eval(t);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_bits(), y.to_bits(), "t = {t}");
            }
        }
    }

    #[test]
    fn zero_duration_window() {
        let c = chain3();
        let gen = ConstGenerator::new(&c);
        let m = transition_matrix(&gen, 0.3, 0.0, &tight()).unwrap();
        assert!(m.sub_matrix(&Matrix::identity(3)).unwrap().norm_max() < 1e-12);
    }
}
