//! Time-inhomogeneous CTMCs and the Kolmogorov equations.
//!
//! Along a mean-field trajectory the local model's generator varies with
//! time: `Q(t) = Q(m̄(t))`. This module provides the generator abstraction
//! and the three integrations the paper's algorithms are built on:
//!
//! * [`forward_distribution`] — `dπ/dt = π(t)·Q(t)` for a distribution;
//! * [`transition_matrix`] — the forward Kolmogorov equation for the full
//!   probability matrix `Π'(t', t'+T)` (Eq. 5 of the paper);
//! * [`propagate_window`] — the combined forward/backward equation
//!   `dΠ'(t, t+T)/dt = -Q(t)·Π' + Π'·Q(t+T)` (Eq. 6, also used for `Υ` in
//!   Eq. 12), which slides a fixed-duration window through time.

use mfcsl_math::Matrix;
use mfcsl_ode::dopri::Dopri5;
use mfcsl_ode::problem::FnSystem;
use mfcsl_ode::{OdeOptions, Trajectory};

use crate::{Ctmc, CtmcError};

/// A time-varying infinitesimal generator `Q(t)`.
///
/// Implementations must produce a valid generator at every queried time:
/// non-negative off-diagonal entries with the diagonal equal to minus the
/// row sum. (The integrators do not re-validate per evaluation; the checker
/// layer validates at construction.)
pub trait TimeVaryingGenerator {
    /// Number of states.
    fn n_states(&self) -> usize;

    /// Writes `Q(t)` (including the diagonal) into `q`.
    ///
    /// Implementations may assume `q` is `n_states × n_states`.
    fn write_generator(&self, t: f64, q: &mut Matrix);

    /// Convenience: materializes `Q(t)` into a fresh matrix.
    fn generator_at(&self, t: f64) -> Matrix {
        let n = self.n_states();
        let mut q = Matrix::zeros(n, n);
        self.write_generator(t, &mut q);
        q
    }
}

/// A [`TimeVaryingGenerator`] built from a closure.
pub struct FnGenerator<F> {
    n: usize,
    f: F,
}

impl<F: Fn(f64, &mut Matrix)> FnGenerator<F> {
    /// Wraps the closure `f(t, q)` writing the generator at time `t`.
    pub fn new(n: usize, f: F) -> Self {
        FnGenerator { n, f }
    }
}

impl<F: Fn(f64, &mut Matrix)> TimeVaryingGenerator for FnGenerator<F> {
    fn n_states(&self) -> usize {
        self.n
    }

    fn write_generator(&self, t: f64, q: &mut Matrix) {
        (self.f)(t, q);
    }
}

impl<F> std::fmt::Debug for FnGenerator<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnGenerator").field("n", &self.n).finish()
    }
}

/// A constant generator — the time-homogeneous special case, used to
/// cross-validate the inhomogeneous algorithms against uniformization.
#[derive(Debug, Clone)]
pub struct ConstGenerator {
    q: Matrix,
}

impl ConstGenerator {
    /// Wraps the generator of a time-homogeneous chain.
    #[must_use]
    pub fn new(ctmc: &Ctmc) -> Self {
        ConstGenerator {
            q: ctmc.generator().clone(),
        }
    }

    /// Wraps an explicit generator matrix.
    #[must_use]
    pub fn from_matrix(q: Matrix) -> Self {
        ConstGenerator { q }
    }
}

impl TimeVaryingGenerator for ConstGenerator {
    fn n_states(&self) -> usize {
        self.q.rows()
    }

    fn write_generator(&self, _t: f64, q: &mut Matrix) {
        q.as_mut_slice().copy_from_slice(self.q.as_slice());
    }
}

/// Solves `dπ/dt = π(t)·Q(t)` from `t0` to `t1` with initial distribution
/// `pi0`, returning the dense trajectory of the distribution.
///
/// # Errors
///
/// Returns [`CtmcError::InvalidDistribution`] for a bad `pi0`, and
/// propagates ODE failures.
pub fn forward_distribution<G: TimeVaryingGenerator>(
    gen: &G,
    pi0: &[f64],
    t0: f64,
    t1: f64,
    options: &OdeOptions,
) -> Result<Trajectory, CtmcError> {
    let n = gen.n_states();
    if pi0.len() != n {
        return Err(CtmcError::InvalidDistribution(format!(
            "distribution has length {}, expected {n}",
            pi0.len()
        )));
    }
    mfcsl_math::simplex::check_distribution(pi0, mfcsl_math::simplex::DEFAULT_SUM_TOL)
        .map_err(|e| CtmcError::InvalidDistribution(e.to_string()))?;
    let sys = FnSystem::new(n, move |t: f64, y: &[f64], dy: &mut [f64]| {
        let mut q = Matrix::zeros(n, n);
        gen.write_generator(t, &mut q);
        let out = q.vec_mul(y).expect("shape fixed");
        dy.copy_from_slice(&out);
    });
    Ok(Dopri5::new(*options).solve(&sys, t0, t1, pi0)?)
}

/// Solves the forward Kolmogorov equation (Eq. 5):
/// `dΠ'(t', t'+T)/dT = Π'(t', t'+T)·Q(t'+T)` with `Π'(t', t') = I`,
/// returning `Π'(t', t'+duration)`.
///
/// Row `s` column `s'` of the result is the probability of being in `s'` at
/// time `t' + duration` given state `s` at time `t'`.
///
/// # Errors
///
/// Returns [`CtmcError::InvalidArgument`] for a negative duration and
/// propagates ODE failures.
pub fn transition_matrix<G: TimeVaryingGenerator>(
    gen: &G,
    t_start: f64,
    duration: f64,
    options: &OdeOptions,
) -> Result<Matrix, CtmcError> {
    let traj = transition_matrix_trajectory(gen, t_start, duration, options)?;
    Ok(flat_to_matrix(gen.n_states(), &traj.final_state()))
}

/// Like [`transition_matrix`] but returns the whole dense trajectory of the
/// flattened `n²`-dimensional matrix ODE over `T ∈ [0, duration]` (evaluate
/// and reshape with [`flat_to_matrix`]).
///
/// # Errors
///
/// See [`transition_matrix`].
pub fn transition_matrix_trajectory<G: TimeVaryingGenerator>(
    gen: &G,
    t_start: f64,
    duration: f64,
    options: &OdeOptions,
) -> Result<Trajectory, CtmcError> {
    if !(duration >= 0.0) || !duration.is_finite() {
        return Err(CtmcError::InvalidArgument(format!(
            "duration must be finite and non-negative, got {duration}"
        )));
    }
    let n = gen.n_states();
    let sys = FnSystem::new(n * n, move |big_t: f64, y: &[f64], dy: &mut [f64]| {
        let mut q = Matrix::zeros(n, n);
        gen.write_generator(t_start + big_t, &mut q);
        // dΠ/dT = Π Q: (ΠQ)_{ij} = Σ_k Π_{ik} Q_{kj}.
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += y[i * n + k] * q[(k, j)];
                }
                dy[i * n + j] = acc;
            }
        }
    });
    let identity_flat = Matrix::identity(n).into_vec();
    Ok(Dopri5::new(*options).solve(&sys, 0.0, duration, &identity_flat)?)
}

/// Solves the combined forward/backward equation (Eq. 6 / Eq. 12):
///
/// `dΠ'(t, t+T)/dt = -Q_lead(t)·Π'(t, t+T) + Π'(t, t+T)·Q_trail(t+T)`
///
/// for `t ∈ [t_init, t_end]`, starting from the given `initial` matrix
/// `Π'(t_init, t_init+T)`. Both sides use the same generator in the
/// single-until case; the nested-until algorithm of Sec. IV-C feeds the
/// same modified generator too but restarts the integration at every
/// discontinuity point.
///
/// Returns the dense trajectory of the flattened matrix (reshape with
/// [`flat_to_matrix`]).
///
/// # Errors
///
/// Returns [`CtmcError::InvalidArgument`] for shape mismatches, a negative
/// window `duration`, or a reversed time range, and propagates ODE failures.
pub fn propagate_window<G: TimeVaryingGenerator>(
    gen: &G,
    initial: &Matrix,
    t_init: f64,
    t_end: f64,
    duration: f64,
    options: &OdeOptions,
) -> Result<Trajectory, CtmcError> {
    let n = gen.n_states();
    if initial.rows() != n || initial.cols() != n {
        return Err(CtmcError::InvalidArgument(format!(
            "initial matrix is {}x{}, expected {n}x{n}",
            initial.rows(),
            initial.cols()
        )));
    }
    if !(duration >= 0.0) || !(t_end >= t_init) {
        return Err(CtmcError::InvalidArgument(format!(
            "invalid window propagation: t ∈ [{t_init}, {t_end}], T = {duration}"
        )));
    }
    let sys = FnSystem::new(n * n, move |t: f64, y: &[f64], dy: &mut [f64]| {
        let mut q_lead = Matrix::zeros(n, n);
        let mut q_trail = Matrix::zeros(n, n);
        gen.write_generator(t, &mut q_lead);
        gen.write_generator(t + duration, &mut q_trail);
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    // -Q(t) Π + Π Q(t+T)
                    acc += -q_lead[(i, k)] * y[k * n + j] + y[i * n + k] * q_trail[(k, j)];
                }
                dy[i * n + j] = acc;
            }
        }
    });
    Ok(Dopri5::new(*options).solve(&sys, t_init, t_end, initial.as_slice())?)
}

/// Reshapes a flattened row-major `n²` vector into a matrix.
///
/// # Panics
///
/// Panics if `flat.len() != n * n`.
#[must_use]
pub fn flat_to_matrix(n: usize, flat: &[f64]) -> Matrix {
    assert_eq!(flat.len(), n * n, "flat vector has wrong length");
    Matrix::from_vec(n, n, flat.to_vec()).expect("length checked")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transient::transient_matrix;
    use crate::CtmcBuilder;

    fn chain3() -> Ctmc {
        CtmcBuilder::new()
            .state("a", ["a"])
            .state("b", ["b"])
            .state("c", ["c"])
            .transition("a", "b", 1.2)
            .unwrap()
            .transition("b", "a", 0.4)
            .unwrap()
            .transition("b", "c", 0.9)
            .unwrap()
            .transition("c", "b", 2.0)
            .unwrap()
            .build()
            .unwrap()
    }

    fn tight() -> OdeOptions {
        OdeOptions::default().with_tolerances(1e-11, 1e-13)
    }

    #[test]
    fn constant_generator_matches_uniformization() {
        let c = chain3();
        let gen = ConstGenerator::new(&c);
        let pi_ode = transition_matrix(&gen, 0.0, 1.5, &tight()).unwrap();
        let pi_unif = transient_matrix(&c, 1.5, 1e-13).unwrap();
        assert!(pi_ode.sub_matrix(&pi_unif).unwrap().norm_max() < 1e-8);
    }

    #[test]
    fn forward_distribution_matches_matrix_row() {
        let c = chain3();
        let gen = ConstGenerator::new(&c);
        let traj = forward_distribution(&gen, &[1.0, 0.0, 0.0], 0.0, 2.0, &tight()).unwrap();
        let pi = traj.final_state();
        let mat = transition_matrix(&gen, 0.0, 2.0, &tight()).unwrap();
        for j in 0..3 {
            assert!((pi[j] - mat[(0, j)]).abs() < 1e-8);
        }
    }

    #[test]
    fn genuinely_time_varying_generator() {
        // One-way chain with rate r(t) = t: survival in state 0 over [0, T]
        // is exp(-T²/2).
        let gen = FnGenerator::new(2, |t: f64, q: &mut Matrix| {
            q[(0, 0)] = -t;
            q[(0, 1)] = t;
            q[(1, 0)] = 0.0;
            q[(1, 1)] = 0.0;
        });
        let m = transition_matrix(&gen, 0.0, 2.0, &tight()).unwrap();
        let exact = (-2.0_f64).exp(); // e^{-T²/2} with T=2.
        assert!((m[(0, 0)] - exact).abs() < 1e-9, "{m}");
        assert!((m[(0, 1)] - (1.0 - exact)).abs() < 1e-9);
        // Starting time matters: from t' = 1 the exponent is ∫₁³ t dt = 4.
        let m = transition_matrix(&gen, 1.0, 2.0, &tight()).unwrap();
        assert!((m[(0, 0)] - (-4.0_f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn window_propagation_matches_direct_solves() {
        // Π(t, t+T) computed by sliding the window must match a fresh
        // forward solve from each t.
        let gen = FnGenerator::new(2, |t: f64, q: &mut Matrix| {
            let r = 0.5 + 0.3 * (t).sin();
            q[(0, 0)] = -r;
            q[(0, 1)] = r;
            q[(1, 0)] = 1.0;
            q[(1, 1)] = -1.0;
        });
        let duration = 0.8;
        let init = transition_matrix(&gen, 0.0, duration, &tight()).unwrap();
        let traj = propagate_window(&gen, &init, 0.0, 3.0, duration, &tight()).unwrap();
        for &t in &[0.5, 1.3, 2.7] {
            let via_window = flat_to_matrix(2, &traj.eval(t));
            let direct = transition_matrix(&gen, t, duration, &tight()).unwrap();
            let diff = via_window.sub_matrix(&direct).unwrap().norm_max();
            assert!(diff < 1e-7, "t = {t}, diff = {diff}");
        }
    }

    #[test]
    fn rows_remain_stochastic_along_window() {
        let c = chain3();
        let gen = ConstGenerator::new(&c);
        let init = transition_matrix(&gen, 0.0, 1.0, &tight()).unwrap();
        let traj = propagate_window(&gen, &init, 0.0, 5.0, 1.0, &tight()).unwrap();
        for &t in traj.knots() {
            let m = flat_to_matrix(3, &traj.eval(t));
            for i in 0..3 {
                let s: f64 = m.row(i).iter().sum();
                assert!((s - 1.0).abs() < 1e-7, "row sum {s} at t = {t}");
            }
        }
    }

    #[test]
    fn validates_arguments() {
        let c = chain3();
        let gen = ConstGenerator::new(&c);
        assert!(forward_distribution(&gen, &[1.0], 0.0, 1.0, &tight()).is_err());
        assert!(forward_distribution(&gen, &[0.6, 0.6, 0.0], 0.0, 1.0, &tight()).is_err());
        assert!(transition_matrix(&gen, 0.0, -1.0, &tight()).is_err());
        let bad_init = Matrix::identity(2);
        assert!(propagate_window(&gen, &bad_init, 0.0, 1.0, 1.0, &tight()).is_err());
        let good_init = Matrix::identity(3);
        assert!(propagate_window(&gen, &good_init, 1.0, 0.0, 1.0, &tight()).is_err());
        assert!(propagate_window(&gen, &good_init, 0.0, 1.0, -1.0, &tight()).is_err());
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn flat_to_matrix_checks_length() {
        let _ = flat_to_matrix(2, &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn zero_duration_window() {
        let c = chain3();
        let gen = ConstGenerator::new(&c);
        let m = transition_matrix(&gen, 0.3, 0.0, &tight()).unwrap();
        assert!(m.sub_matrix(&Matrix::identity(3)).unwrap().norm_max() < 1e-12);
    }
}
