//! The time-homogeneous CTMC type and its builder.

use mfcsl_math::Matrix;
use serde::{Deserialize, Serialize};

use crate::labels::Labeling;
use crate::CtmcError;

/// Tolerance for the "rows sum to zero" generator invariant.
const ROW_SUM_TOL: f64 = 1e-9;

/// A finite, time-homogeneous continuous-time Markov chain: named states, a
/// validated infinitesimal generator, and atomic-proposition labels.
///
/// Invariants (enforced at construction):
/// * off-diagonal entries of the generator are non-negative and finite;
/// * each diagonal entry equals minus the sum of its row's off-diagonal
///   entries (no self-loops, per Def. 1 of the paper).
///
/// # Example
///
/// ```
/// use mfcsl_ctmc::CtmcBuilder;
///
/// # fn main() -> Result<(), mfcsl_ctmc::CtmcError> {
/// let ctmc = CtmcBuilder::new()
///     .state("not_infected", ["not_infected"])
///     .state("inactive", ["infected", "inactive"])
///     .state("active", ["infected", "active"])
///     .transition("not_infected", "inactive", 0.05)?
///     .transition("inactive", "not_infected", 0.1)?
///     .transition("inactive", "active", 0.01)?
///     .transition("active", "inactive", 0.3)?
///     .transition("active", "not_infected", 0.3)?
///     .build()?;
/// assert_eq!(ctmc.n_states(), 3);
/// assert_eq!(ctmc.state_index("active"), Some(2));
/// assert!(ctmc.generator()[(0, 1)] > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ctmc {
    names: Vec<String>,
    generator: Matrix,
    labeling: Labeling,
}

impl Ctmc {
    /// Constructs a chain from parts, validating the generator.
    ///
    /// The diagonal of `generator` is ignored and recomputed as minus the
    /// off-diagonal row sum, so callers may pass either a full generator or
    /// just the rate part.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::InvalidGenerator`] for non-square or non-finite
    /// generators, negative off-diagonal rates, or shape mismatches with the
    /// names/labeling.
    pub fn from_parts(
        names: Vec<String>,
        mut generator: Matrix,
        labeling: Labeling,
    ) -> Result<Self, CtmcError> {
        let n = names.len();
        if n == 0 {
            return Err(CtmcError::InvalidGenerator(
                "chain must have at least one state".into(),
            ));
        }
        if generator.rows() != n || generator.cols() != n {
            return Err(CtmcError::InvalidGenerator(format!(
                "generator is {}x{}, expected {n}x{n}",
                generator.rows(),
                generator.cols()
            )));
        }
        if labeling.n_states() != n {
            return Err(CtmcError::InvalidGenerator(format!(
                "labeling covers {} states, expected {n}",
                labeling.n_states()
            )));
        }
        for i in 0..n {
            let mut row_sum = 0.0;
            for j in 0..n {
                let q = generator[(i, j)];
                if !q.is_finite() {
                    return Err(CtmcError::InvalidGenerator(format!(
                        "entry ({i}, {j}) is not finite: {q}"
                    )));
                }
                if i != j {
                    if q < 0.0 {
                        return Err(CtmcError::InvalidGenerator(format!(
                            "negative rate {q} at ({i}, {j})"
                        )));
                    }
                    row_sum += q;
                }
            }
            generator[(i, i)] = -row_sum;
        }
        Ok(Ctmc {
            names,
            generator,
            labeling,
        })
    }

    /// Number of states.
    #[must_use]
    pub fn n_states(&self) -> usize {
        self.names.len()
    }

    /// The infinitesimal generator `Q`.
    #[must_use]
    pub fn generator(&self) -> &Matrix {
        &self.generator
    }

    /// State names, indexed by state number.
    #[must_use]
    pub fn state_names(&self) -> &[String] {
        &self.names
    }

    /// The labeling function.
    #[must_use]
    pub fn labeling(&self) -> &Labeling {
        &self.labeling
    }

    /// Looks up a state index by name.
    #[must_use]
    pub fn state_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// The exit rate of state `s` (the negated diagonal entry).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[must_use]
    pub fn exit_rate(&self, s: usize) -> f64 {
        -self.generator[(s, s)]
    }

    /// The largest exit rate (the uniformization rate lower bound).
    #[must_use]
    pub fn max_exit_rate(&self) -> f64 {
        (0..self.n_states())
            .map(|s| self.exit_rate(s))
            .fold(0.0, f64::max)
    }

    /// Returns `true` if state `s` is absorbing (zero exit rate).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[must_use]
    pub fn is_absorbing(&self, s: usize) -> bool {
        self.exit_rate(s) <= ROW_SUM_TOL
    }

    /// The successor states of `s` (positive-rate transitions).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[must_use]
    pub fn successors(&self, s: usize) -> Vec<usize> {
        (0..self.n_states())
            .filter(|&j| j != s && self.generator[(s, j)] > 0.0)
            .collect()
    }

    /// Validates a probability distribution over the chain's states.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::InvalidDistribution`] on length or simplex
    /// violations.
    pub fn check_distribution(&self, pi: &[f64]) -> Result<(), CtmcError> {
        if pi.len() != self.n_states() {
            return Err(CtmcError::InvalidDistribution(format!(
                "distribution has length {}, expected {}",
                pi.len(),
                self.n_states()
            )));
        }
        mfcsl_math::simplex::check_distribution(pi, mfcsl_math::simplex::DEFAULT_SUM_TOL)
            .map_err(|e| CtmcError::InvalidDistribution(e.to_string()))
    }
}

/// Incremental builder for [`Ctmc`].
#[derive(Debug, Clone, Default)]
pub struct CtmcBuilder {
    names: Vec<String>,
    labels: Vec<Vec<String>>,
    transitions: Vec<(String, String, f64)>,
}

impl CtmcBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        CtmcBuilder::default()
    }

    /// Adds a state with the given atomic-proposition labels.
    #[must_use]
    pub fn state<I, L>(mut self, name: impl Into<String>, labels: I) -> Self
    where
        I: IntoIterator<Item = L>,
        L: Into<String>,
    {
        self.names.push(name.into());
        self.labels
            .push(labels.into_iter().map(Into::into).collect());
        self
    }

    /// Adds a transition `from → to` with the given rate.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::InvalidArgument`] for a non-finite or negative
    /// rate, or a self-loop (`from == to`; Def. 1 eliminates self-loops).
    /// Unknown state names are reported by [`CtmcBuilder::build`].
    pub fn transition(
        mut self,
        from: impl Into<String>,
        to: impl Into<String>,
        rate: f64,
    ) -> Result<Self, CtmcError> {
        let from = from.into();
        let to = to.into();
        if !rate.is_finite() || rate < 0.0 {
            return Err(CtmcError::InvalidArgument(format!(
                "rate for {from} -> {to} must be finite and non-negative, got {rate}"
            )));
        }
        if from == to {
            return Err(CtmcError::InvalidArgument(format!(
                "self-loop on `{from}` is not allowed"
            )));
        }
        self.transitions.push((from, to, rate));
        Ok(self)
    }

    /// Finalizes the chain.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::UnknownState`] for transitions naming undeclared
    /// states, [`CtmcError::InvalidArgument`] for duplicate state names, and
    /// generator validation errors from [`Ctmc::from_parts`].
    pub fn build(self) -> Result<Ctmc, CtmcError> {
        let n = self.names.len();
        for (i, name) in self.names.iter().enumerate() {
            if self.names[i + 1..].contains(name) {
                return Err(CtmcError::InvalidArgument(format!(
                    "duplicate state name `{name}`"
                )));
            }
        }
        let index = |name: &str| -> Result<usize, CtmcError> {
            self.names
                .iter()
                .position(|n| n == name)
                .ok_or_else(|| CtmcError::UnknownState(name.to_string()))
        };
        let mut generator = Matrix::zeros(n, n);
        for (from, to, rate) in &self.transitions {
            let i = index(from)?;
            let j = index(to)?;
            generator[(i, j)] += rate;
        }
        let mut labeling = Labeling::new(n);
        for (s, labels) in self.labels.iter().enumerate() {
            for l in labels {
                labeling.add(s, l.clone());
            }
        }
        Ctmc::from_parts(self.names, generator, labeling)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state() -> Ctmc {
        CtmcBuilder::new()
            .state("up", ["ok"])
            .state("down", ["failed"])
            .transition("up", "down", 0.5)
            .unwrap()
            .transition("down", "up", 2.0)
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_valid_generator() {
        let c = two_state();
        assert_eq!(c.n_states(), 2);
        assert_eq!(c.generator()[(0, 1)], 0.5);
        assert_eq!(c.generator()[(0, 0)], -0.5);
        assert_eq!(c.generator()[(1, 0)], 2.0);
        assert_eq!(c.exit_rate(1), 2.0);
        assert_eq!(c.max_exit_rate(), 2.0);
        assert!(!c.is_absorbing(0));
        assert_eq!(c.successors(0), vec![1]);
    }

    #[test]
    fn name_lookup() {
        let c = two_state();
        assert_eq!(c.state_index("down"), Some(1));
        assert_eq!(c.state_index("nope"), None);
        assert!(c.labeling().has(1, "failed"));
    }

    #[test]
    fn parallel_transitions_accumulate() {
        let c = CtmcBuilder::new()
            .state("a", Vec::<String>::new())
            .state("b", Vec::<String>::new())
            .transition("a", "b", 1.0)
            .unwrap()
            .transition("a", "b", 2.0)
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(c.generator()[(0, 1)], 3.0);
    }

    #[test]
    fn rejects_self_loops_and_bad_rates() {
        let b = CtmcBuilder::new().state("a", Vec::<String>::new());
        assert!(b.clone().transition("a", "a", 1.0).is_err());
        assert!(b.clone().transition("a", "b", -1.0).is_err());
        assert!(b.transition("a", "b", f64::NAN).is_err());
    }

    #[test]
    fn rejects_unknown_states_and_duplicates() {
        let err = CtmcBuilder::new()
            .state("a", Vec::<String>::new())
            .transition("a", "ghost", 1.0)
            .unwrap()
            .build()
            .unwrap_err();
        assert!(matches!(err, CtmcError::UnknownState(_)));
        let err = CtmcBuilder::new()
            .state("a", Vec::<String>::new())
            .state("a", Vec::<String>::new())
            .build()
            .unwrap_err();
        assert!(matches!(err, CtmcError::InvalidArgument(_)));
    }

    #[test]
    fn rejects_empty_chain() {
        assert!(CtmcBuilder::new().build().is_err());
    }

    #[test]
    fn from_parts_recomputes_diagonal() {
        let q = Matrix::from_rows(&[&[123.0, 1.0], &[2.0, 456.0]]).unwrap();
        let c = Ctmc::from_parts(vec!["a".into(), "b".into()], q, Labeling::new(2)).unwrap();
        assert_eq!(c.generator()[(0, 0)], -1.0);
        assert_eq!(c.generator()[(1, 1)], -2.0);
    }

    #[test]
    fn from_parts_validates_shapes() {
        let q = Matrix::zeros(2, 2);
        assert!(Ctmc::from_parts(vec!["a".into()], q.clone(), Labeling::new(1)).is_err());
        assert!(
            Ctmc::from_parts(vec!["a".into(), "b".into()], q.clone(), Labeling::new(3)).is_err()
        );
        let mut neg = Matrix::zeros(2, 2);
        neg[(0, 1)] = -1.0;
        assert!(Ctmc::from_parts(vec!["a".into(), "b".into()], neg, Labeling::new(2)).is_err());
    }

    #[test]
    fn distribution_validation() {
        let c = two_state();
        assert!(c.check_distribution(&[0.3, 0.7]).is_ok());
        assert!(c.check_distribution(&[0.3, 0.3]).is_err());
        assert!(c.check_distribution(&[1.0]).is_err());
    }
}
