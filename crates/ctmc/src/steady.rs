//! Steady-state analysis: SCC/BSCC decomposition and stationary
//! distributions for arbitrary (including reducible) chains.
//!
//! The CSL steady-state operator `S⋈p(Φ)` (Def. 3 of the paper, checked per
//! Sec. IV-D) needs long-run state probabilities. For an irreducible chain
//! these solve `πQ = 0, Σπ = 1`; for a reducible chain they are a mixture of
//! per-BSCC stationary distributions weighted by absorption probabilities
//! from the initial distribution.

use mfcsl_math::gmres::{gmres, stationary_power};
use mfcsl_math::lu::LuDecomposition;
use mfcsl_math::{CscMatrix, MathError, Matrix};

use crate::propagator::{choose_backend, Backend};
use crate::sparse::SparseCtmc;
use crate::{Ctmc, CtmcError};

/// Relative residual target for the iterative stationary solve — pushed to
/// the rounding floor so the sparse path agrees with the dense LU
/// reference to well below the 1e-12 comparison tolerance of the
/// cross-backend tests. A solve that stalls above this target but below
/// [`GMRES_ACCEPT`] is still accepted.
const GMRES_TOL: f64 = 1e-15;
/// Largest residual (relative to `max(‖b‖, 1)`) still accepted from a
/// stalled GMRES solve before falling back to power iteration.
const GMRES_ACCEPT: f64 = 1e-12;
/// Restart length for the stationary GMRES: long enough that the
/// birth–death-like chains of population models converge inside one or two
/// cycles, short enough that the Krylov basis stays `O(m·n)` small.
const GMRES_RESTART: usize = 60;
/// Total Arnoldi-step budget before falling back to power iteration.
const GMRES_MAX_ITER: usize = 2000;
/// Update tolerance and budget for the power-iteration fallback. Each
/// iteration is `O(nnz)`, so even the full budget is cheap.
const POWER_TOL: f64 = 1e-14;
const POWER_MAX_ITER: usize = 1_000_000;

/// Computes the strongly connected components of the chain's transition
/// graph with Tarjan's algorithm (iterative, no recursion).
///
/// Components are returned in reverse topological order of the condensation
/// (every edge between components goes from a later to an earlier entry in
/// the returned list).
#[must_use]
pub fn sccs(ctmc: &Ctmc) -> Vec<Vec<usize>> {
    let n = ctmc.n_states();
    let adj: Vec<Vec<usize>> = (0..n).map(|s| ctmc.successors(s)).collect();

    const UNDEF: usize = usize::MAX;
    let mut index = vec![UNDEF; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components: Vec<Vec<usize>> = Vec::new();

    // Explicit DFS stack: (node, next child position).
    let mut call_stack: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if index[start] != UNDEF {
            continue;
        }
        call_stack.push((start, 0));
        index[start] = next_index;
        lowlink[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;
        while let Some(&mut (v, ref mut child)) = call_stack.last_mut() {
            if *child < adj[v].len() {
                let w = adj[v][*child];
                *child += 1;
                if index[w] == UNDEF {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call_stack.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack nonempty");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    components.push(comp);
                }
            }
        }
    }
    components
}

/// Computes the bottom strongly connected components: SCCs with no
/// transition leaving them.
#[must_use]
pub fn bsccs(ctmc: &Ctmc) -> Vec<Vec<usize>> {
    let comps = sccs(ctmc);
    let n = ctmc.n_states();
    let mut comp_of = vec![0usize; n];
    for (ci, comp) in comps.iter().enumerate() {
        for &s in comp {
            comp_of[s] = ci;
        }
    }
    comps
        .iter()
        .enumerate()
        .filter(|(ci, comp)| {
            comp.iter()
                .all(|&s| ctmc.successors(s).iter().all(|&j| comp_of[j] == *ci))
        })
        .map(|(_, comp)| comp.clone())
        .collect()
}

/// Stationary distribution of the chain restricted to an irreducible closed
/// set of states `component`, returned over the *full* state space (zeros
/// outside the component).
///
/// # Errors
///
/// Returns [`CtmcError::InvalidArgument`] for an empty component, and
/// propagates singular-system errors (which indicate the component is not
/// actually closed and irreducible).
pub fn stationary_on_component(ctmc: &Ctmc, component: &[usize]) -> Result<Vec<f64>, CtmcError> {
    if component.is_empty() {
        return Err(CtmcError::InvalidArgument(
            "component must be nonempty".into(),
        ));
    }
    for &s in component {
        ctmc.labeling().check_state(s)?;
    }
    let k = component.len();
    let n = ctmc.n_states();
    let mut pi = vec![0.0; n];
    if k == 1 {
        pi[component[0]] = 1.0;
        return Ok(pi);
    }
    // Solve x Q_C = 0, Σx = 1 ⇔ Q_Cᵀ xᵀ = 0 with a normalization row.
    let q = ctmc.generator();
    let nnz = component
        .iter()
        .map(|&si| {
            component
                .iter()
                .filter(|&&sj| si != sj && q[(si, sj)] != 0.0)
                .count()
        })
        .sum::<usize>();
    let x = if choose_backend(k, nnz) == Backend::Sparse {
        // Iterative path: extract the component's off-diagonal rates as
        // triplets (local indices) and solve matrix-free — no dense k×k
        // system is ever built.
        let mut triplets = Vec::with_capacity(nnz);
        let mut exit = vec![0.0; k];
        for (li, &si) in component.iter().enumerate() {
            for (lj, &sj) in component.iter().enumerate() {
                if si == sj {
                    continue;
                }
                let r = q[(si, sj)];
                if r != 0.0 {
                    triplets.push((li, lj, r));
                    exit[li] += r;
                }
            }
        }
        let rates =
            CscMatrix::from_triplets(k, k, &triplets).map_err(CtmcError::from)?;
        stationary_sparse_core(&rates, &exit)?
    } else {
        // Dense path, bitwise identical to the historical LU solve but
        // built in place: write the transposed bordered system directly
        // (one allocation) instead of select + transpose + factor-copy.
        let mut system = Matrix::zeros(k, k);
        for (row, &sj) in component.iter().enumerate() {
            if row == k - 1 {
                break;
            }
            for (col, &si) in component.iter().enumerate() {
                system[(row, col)] = q[(si, sj)];
            }
        }
        for j in 0..k {
            system[(k - 1, j)] = 1.0;
        }
        let mut rhs = vec![0.0; k];
        rhs[k - 1] = 1.0;
        LuDecomposition::from_matrix(system)?.solve(&rhs)?
    };
    for (&s, &v) in component.iter().zip(&x) {
        pi[s] = v.max(0.0);
    }
    // Clean round-off.
    let total: f64 = pi.iter().sum();
    for v in &mut pi {
        *v /= total;
    }
    Ok(pi)
}

/// Stationary distribution of an **irreducible** sparse chain, computed
/// matrix-free: GMRES on the bordered balance system `πQ = 0, Σπ = 1`
/// with a power-iteration fallback on the uniformized chain. Peak memory
/// is `O(nnz + restart·n)` — no dense `n × n` matrix is ever allocated,
/// which is what makes `K` in the thousands tractable.
///
/// The caller is responsible for irreducibility (e.g. the bounded-queue
/// birth–death chains of population models); for a reducible chain the
/// result is meaningless and usually fails to converge.
///
/// # Errors
///
/// Returns [`CtmcError::Math`] with [`MathError::NoConvergence`] when both
/// the GMRES solve and the power-iteration fallback fail to converge.
pub fn steady_state_sparse(chain: &SparseCtmc) -> Result<Vec<f64>, CtmcError> {
    if chain.n_states() == 1 {
        return Ok(vec![1.0]);
    }
    stationary_sparse_core(chain.rates_csc(), chain.exit_rates())
}

/// Shared iterative core: `rates` holds the off-diagonal rates in CSC
/// order (column `j` = incoming transitions of `j`), `exit` their row
/// sums. Returns the stationary distribution over the local index space.
fn stationary_sparse_core(rates: &CscMatrix, exit: &[f64]) -> Result<Vec<f64>, CtmcError> {
    let n = exit.len();
    // Bordered operator: y = Qᵀx with the last balance equation replaced
    // by the normalization Σx. Column `j` of the CSC gathers the incoming
    // flow of state `j`; the diagonal of `Q` is `-exit[j]`.
    let apply = |x: &[f64], y: &mut [f64]| {
        for (j, slot) in y.iter_mut().enumerate() {
            *slot = rates.gather(x, j) - exit[j] * x[j];
        }
        y[n - 1] = x.iter().sum();
    };
    let mut b = vec![0.0; n];
    b[n - 1] = 1.0;
    let x0 = vec![1.0 / n as f64; n];
    let solution = match gmres(
        apply,
        &b,
        &x0,
        GMRES_RESTART.min(n),
        GMRES_MAX_ITER,
        GMRES_TOL,
    ) {
        Ok((x, stats)) if stats.converged || stats.residual <= GMRES_ACCEPT => Some(x),
        _ => None,
    };
    let mut pi = match solution {
        Some(x) => x,
        None => {
            // Fallback: power iteration on the uniformized step
            // `x ← x·(I + Q/Λ)` — unconditionally stable for any chain,
            // linear convergence at the spectral gap.
            let lambda = exit.iter().fold(0.0_f64, |m, &v| m.max(v));
            if lambda == 0.0 {
                // Frozen chain: every state is absorbing; with no further
                // structure the uniform distribution is stationary.
                return Ok(x0);
            }
            let unif = lambda * 1.02;
            let step = |v: &[f64], out: &mut [f64]| {
                for (j, slot) in out.iter_mut().enumerate() {
                    *slot = v[j] * (1.0 - exit[j] / unif) + rates.gather(v, j) / unif;
                }
            };
            let (x, stats) = stationary_power(step, n, Some(&x0), POWER_TOL, POWER_MAX_ITER)?;
            if !stats.converged {
                return Err(CtmcError::Math(MathError::NoConvergence {
                    iterations: stats.iterations,
                    context: "sparse stationary solve: GMRES and power iteration both failed"
                        .into(),
                }));
            }
            x
        }
    };
    for v in &mut pi {
        if !(*v > 0.0) {
            *v = 0.0;
        }
    }
    let total: f64 = pi.iter().sum();
    if !(total > 0.0) {
        return Err(CtmcError::Math(MathError::NoConvergence {
            iterations: 0,
            context: "sparse stationary solve produced a zero distribution".into(),
        }));
    }
    for v in &mut pi {
        *v /= total;
    }
    Ok(pi)
}

/// Stationary distribution of a chain with a **unique** BSCC (in particular
/// any irreducible chain), independent of the initial distribution.
///
/// # Errors
///
/// Returns [`CtmcError::InvalidArgument`] if the chain has multiple BSCCs
/// (use [`steady_state_from`] then), and propagates linear-solve errors.
pub fn steady_state(ctmc: &Ctmc) -> Result<Vec<f64>, CtmcError> {
    let bs = bsccs(ctmc);
    match bs.len() {
        1 => stationary_on_component(ctmc, &bs[0]),
        k => Err(CtmcError::InvalidArgument(format!(
            "chain has {k} bottom components; the steady state depends on the initial \
             distribution — use steady_state_from"
        ))),
    }
}

/// Long-run distribution starting from `pi0`: absorption probabilities into
/// each BSCC combined with the BSCCs' stationary distributions.
///
/// # Errors
///
/// Returns [`CtmcError::InvalidDistribution`] for a bad `pi0` and
/// propagates linear-solve errors.
pub fn steady_state_from(ctmc: &Ctmc, pi0: &[f64]) -> Result<Vec<f64>, CtmcError> {
    ctmc.check_distribution(pi0)?;
    let n = ctmc.n_states();
    let bs = bsccs(ctmc);
    let absorb = absorption_probabilities(ctmc, &bs)?;
    let mut out = vec![0.0; n];
    for (b, comp) in bs.iter().enumerate() {
        // Probability of ending in BSCC b from pi0.
        let weight: f64 = (0..n).map(|s| pi0[s] * absorb[(s, b)]).sum();
        if weight == 0.0 {
            continue;
        }
        let stat = stationary_on_component(ctmc, comp)?;
        for (o, &sv) in out.iter_mut().zip(&stat) {
            *o += weight * sv;
        }
    }
    Ok(out)
}

/// For every state `s` and BSCC index `b`, the probability that the chain
/// started in `s` is eventually absorbed into BSCC `b`. Returned as an
/// `n_states × n_bsccs` matrix.
///
/// # Errors
///
/// Propagates linear-solve errors (unreachable for well-formed chains).
pub fn absorption_probabilities(ctmc: &Ctmc, bs: &[Vec<usize>]) -> Result<Matrix, CtmcError> {
    let n = ctmc.n_states();
    let nb = bs.len();
    let mut in_bscc: Vec<Option<usize>> = vec![None; n];
    for (b, comp) in bs.iter().enumerate() {
        for &s in comp {
            in_bscc[s] = Some(b);
        }
    }
    let transient: Vec<usize> = (0..n).filter(|&s| in_bscc[s].is_none()).collect();
    let mut out = Matrix::zeros(n, nb);
    for (s, slot) in in_bscc.iter().enumerate() {
        if let Some(b) = slot {
            out[(s, *b)] = 1.0;
        }
    }
    if transient.is_empty() {
        return Ok(out);
    }
    // Embedded jump probabilities restricted to transient states:
    // x_s(b) = Σ_{j transient} P_sj x_j(b) + Σ_{j ∈ b} P_sj
    // ⇔ (I - P_TT) x(b) = P_T,b · 1.
    let q = ctmc.generator();
    let tn = transient.len();
    // Build `I - P_TT` in place: start from zeros, write the unit diagonal
    // row by row — one allocation, no identity scratch matrix, and the
    // factorization below consumes the system instead of copying it.
    let mut system = Matrix::zeros(tn, tn);
    let mut rhs = Matrix::zeros(tn, nb);
    for (row, &s) in transient.iter().enumerate() {
        system[(row, row)] = 1.0;
        let exit = ctmc.exit_rate(s);
        if exit == 0.0 {
            // An absorbing state outside any BSCC cannot exist (a singleton
            // absorbing state is its own BSCC), but guard anyway.
            continue;
        }
        for (col, &j) in transient.iter().enumerate() {
            if s != j {
                system[(row, col)] -= q[(s, j)] / exit;
            }
        }
        for (b, comp) in bs.iter().enumerate() {
            let p: f64 = comp.iter().map(|&j| q[(s, j)] / exit).sum();
            rhs[(row, b)] = p;
        }
    }
    let x = LuDecomposition::from_matrix(system)?.solve_matrix(&rhs)?;
    for (row, &s) in transient.iter().enumerate() {
        for b in 0..nb {
            out[(s, b)] = x[(row, b)].clamp(0.0, 1.0);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transient::transient_distribution;
    use crate::CtmcBuilder;

    fn birth_death() -> Ctmc {
        CtmcBuilder::new()
            .state("s0", ["low"])
            .state("s1", ["mid"])
            .state("s2", ["high"])
            .transition("s0", "s1", 2.0)
            .unwrap()
            .transition("s1", "s2", 2.0)
            .unwrap()
            .transition("s1", "s0", 1.0)
            .unwrap()
            .transition("s2", "s1", 1.0)
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn scc_of_irreducible_chain_is_whole_space() {
        let c = birth_death();
        let comps = sccs(&c);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0], vec![0, 1, 2]);
        assert_eq!(bsccs(&c).len(), 1);
    }

    #[test]
    fn scc_reverse_topological_order() {
        // a -> b -> c (chain), so SCCs come out c, b, a.
        let c = CtmcBuilder::new()
            .state("a", ["a"])
            .state("b", ["b"])
            .state("c", ["c"])
            .transition("a", "b", 1.0)
            .unwrap()
            .transition("b", "c", 1.0)
            .unwrap()
            .build()
            .unwrap();
        let comps = sccs(&c);
        assert_eq!(comps, vec![vec![2], vec![1], vec![0]]);
        assert_eq!(bsccs(&c), vec![vec![2]]);
    }

    #[test]
    fn steady_state_birth_death_detailed_balance() {
        // Birth rate 2, death rate 1: pi_i ∝ 2^i.
        let c = birth_death();
        let pi = steady_state(&c).unwrap();
        let z = 1.0 + 2.0 + 4.0;
        assert!((pi[0] - 1.0 / z).abs() < 1e-12);
        assert!((pi[1] - 2.0 / z).abs() < 1e-12);
        assert!((pi[2] - 4.0 / z).abs() < 1e-12);
    }

    #[test]
    fn steady_state_agrees_with_long_transient() {
        let c = birth_death();
        let pi = steady_state(&c).unwrap();
        let pt = transient_distribution(&c, &[1.0, 0.0, 0.0], 200.0, 1e-13).unwrap();
        for (a, b) in pi.iter().zip(&pt) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn multiple_bsccs_require_initial_distribution() {
        // t -> l (rate 1), t -> r (rate 3): BSCCs {l}, {r}.
        let c = CtmcBuilder::new()
            .state("t", ["t"])
            .state("l", ["l"])
            .state("r", ["r"])
            .transition("t", "l", 1.0)
            .unwrap()
            .transition("t", "r", 3.0)
            .unwrap()
            .build()
            .unwrap();
        assert!(steady_state(&c).is_err());
        let pi = steady_state_from(&c, &[1.0, 0.0, 0.0]).unwrap();
        assert!((pi[1] - 0.25).abs() < 1e-12);
        assert!((pi[2] - 0.75).abs() < 1e-12);
        // Starting inside a BSCC stays there.
        let pi = steady_state_from(&c, &[0.0, 1.0, 0.0]).unwrap();
        assert_eq!(pi[1], 1.0);
    }

    #[test]
    fn absorption_through_transient_chain() {
        // t0 -> t1 -> {goal | trap} with a loop back t1 -> t0.
        let c = CtmcBuilder::new()
            .state("t0", ["t"])
            .state("t1", ["t"])
            .state("goal", ["g"])
            .state("trap", ["x"])
            .transition("t0", "t1", 1.0)
            .unwrap()
            .transition("t1", "t0", 1.0)
            .unwrap()
            .transition("t1", "goal", 1.0)
            .unwrap()
            .transition("t1", "trap", 2.0)
            .unwrap()
            .build()
            .unwrap();
        let bs = bsccs(&c);
        assert_eq!(bs.len(), 2);
        let a = absorption_probabilities(&c, &bs).unwrap();
        // From t1 the jump chain goes goal w.p. 1/4, trap w.p. 1/2, back to
        // t0 w.p. 1/4 (which returns to t1 w.p. 1): absorbed at goal with
        // probability x = 1/4 + 1/4 x => x = 1/3.
        let goal_b = bs.iter().position(|b| b.contains(&2)).unwrap();
        assert!((a[(1, goal_b)] - 1.0 / 3.0).abs() < 1e-12, "{a}");
        assert!((a[(0, goal_b)] - 1.0 / 3.0).abs() < 1e-12);
        // Rows sum to one.
        for s in 0..4 {
            let sum: f64 = (0..bs.len()).map(|b| a[(s, b)]).sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn reducible_long_run_matches_transient() {
        let c = CtmcBuilder::new()
            .state("t", ["t"])
            .state("a", ["a"])
            .state("b", ["b"])
            .transition("t", "a", 1.0)
            .unwrap()
            .transition("a", "b", 2.0)
            .unwrap()
            .transition("b", "a", 2.0)
            .unwrap()
            .build()
            .unwrap();
        let long_run = steady_state_from(&c, &[1.0, 0.0, 0.0]).unwrap();
        let transient = transient_distribution(&c, &[1.0, 0.0, 0.0], 300.0, 1e-13).unwrap();
        for (x, y) in long_run.iter().zip(&transient) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    /// A birth–death chain over `n` states with state-dependent rates —
    /// irreducible and sparse, the shape of the bounded-queue models.
    fn birth_death_triplets(n: usize) -> Vec<(usize, usize, f64)> {
        let mut t = Vec::new();
        for i in 0..n - 1 {
            t.push((i, i + 1, 1.4 + 0.1 * (i % 3) as f64));
            t.push((i + 1, i, 2.0 + 0.2 * (i % 5) as f64));
        }
        t
    }

    #[test]
    fn sparse_stationary_matches_dense_reference() {
        // Large enough that stationary_on_component takes the iterative
        // branch; solve the same chain densely via the LU path by building
        // the bordered system directly.
        let n = 96;
        let triplets = birth_death_triplets(n);
        let chain = SparseCtmc::from_triplets(n, &triplets).unwrap();
        let pi = steady_state_sparse(&chain).unwrap();
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Dense reference: explicit bordered LU solve.
        let mut system = Matrix::zeros(n, n);
        for &(i, j, r) in &triplets {
            system[(j, i)] += r;
            system[(i, i)] -= r;
        }
        for j in 0..n {
            system[(n - 1, j)] = 1.0;
        }
        let mut rhs = vec![0.0; n];
        rhs[n - 1] = 1.0;
        let x = LuDecomposition::from_matrix(system).unwrap().solve(&rhs).unwrap();
        for (a, b) in pi.iter().zip(&x) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
        // And against the global-balance invariant directly.
        for j in 0..n {
            let inflow = chain.rates_csc().gather(&pi, j);
            let outflow = chain.exit_rate(j) * pi[j];
            assert!((inflow - outflow).abs() < 1e-11);
        }
    }

    #[test]
    fn sparse_stationary_single_state() {
        let chain = SparseCtmc::from_triplets(1, &[]).unwrap();
        assert_eq!(steady_state_sparse(&chain).unwrap(), vec![1.0]);
    }

    #[test]
    fn dense_component_path_is_bitwise_unchanged_below_threshold() {
        // Below 64 states choose_backend stays dense; the in-place build
        // must reproduce the historical select+transpose solve exactly.
        let c = birth_death();
        let pi = stationary_on_component(&c, &[0, 1, 2]).unwrap();
        let q_c = c.generator().select(&[0, 1, 2]);
        let mut system = q_c.transpose();
        for j in 0..3 {
            system[(2, j)] = 1.0;
        }
        let mut rhs = vec![0.0; 3];
        rhs[2] = 1.0;
        let x = LuDecomposition::new(&system).unwrap().solve(&rhs).unwrap();
        let total: f64 = x.iter().map(|v| v.max(0.0)).sum();
        for (a, &b) in pi.iter().zip(&x) {
            assert_eq!(a.to_bits(), (b.max(0.0) / total).to_bits());
        }
    }

    #[test]
    fn large_component_takes_iterative_branch() {
        // 80-state ring chain through the dense Ctmc front end: the
        // component is large and sparse, so the iterative branch runs, and
        // must agree with the detailed-balance solution.
        let n = 80;
        let mut builder = CtmcBuilder::new();
        let names: Vec<String> = (0..n).map(|i| format!("s{i}")).collect();
        for name in &names {
            builder = builder.state(name, [name.as_str()]);
        }
        // Up/down rates close enough that the stationary mass stays within
        // a few orders of magnitude — a wider spread would demand absolute
        // accuracy below the rounding floor on the tiny entries.
        for i in 0..n - 1 {
            builder = builder.transition(&names[i], &names[i + 1], 2.0).unwrap();
            builder = builder.transition(&names[i + 1], &names[i], 1.9).unwrap();
        }
        let c = builder.build().unwrap();
        let pi = steady_state(&c).unwrap();
        // Detailed balance: 1.9·pi_{i+1} = 2·pi_i.
        for i in 0..n - 1 {
            assert!(
                (1.9 * pi[i + 1] - 2.0 * pi[i]).abs() < 1e-8 * pi[i].max(pi[i + 1]),
                "i = {i}"
            );
        }
    }

    #[test]
    fn stationary_component_validation() {
        let c = birth_death();
        assert!(stationary_on_component(&c, &[]).is_err());
        assert!(stationary_on_component(&c, &[7]).is_err());
        // Singleton absorbing component.
        let c2 = CtmcBuilder::new()
            .state("a", ["a"])
            .state("b", ["b"])
            .transition("a", "b", 1.0)
            .unwrap()
            .build()
            .unwrap();
        let pi = stationary_on_component(&c2, &[1]).unwrap();
        assert_eq!(pi, vec![0.0, 1.0]);
    }
}
