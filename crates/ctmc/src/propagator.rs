//! A backend-agnostic uniformization propagator.
//!
//! Dense chains ([`crate::Ctmc`]) and CSR chains
//! ([`crate::sparse::SparseCtmc`]) both compute transient distributions the
//! same way: advance a row vector through uniformized steps `v ← v·P` with
//! `P = I + Q/Λ` and accumulate Poisson-weighted iterates. Only the step
//! kernel differs. [`Propagator`] abstracts that kernel so the windowed
//! driver ([`propagate_distribution`]) exists exactly once, and
//! [`choose_backend`] picks the cheaper representation for a given chain
//! size and transition count — the lumped overall chains of a mean-field
//! model with `N` objects have `C(N+K-1, K-1)` states but only `O(K²)`
//! transitions per state, where the sparse kernel wins by orders of
//! magnitude.
//!
//! # Column-blocked parallelism
//!
//! Every output element of a step is an independent dot product
//! `out[j] = Σ_i v[i]·P[i][j]`, so the step splits into contiguous column
//! blocks with no shared writes. Both backends therefore expose a *gather*
//! kernel ([`Propagator::step_columns`]): the dense backend stores `Pᵀ` so
//! a column of `P` is a contiguous row, and the sparse backend stores the
//! chain's transitions a second time in CSC order. The serial step is
//! defined as the gather over all columns, which makes the blocked
//! parallel step ([`propagate_distribution_on`]) **bitwise identical** to
//! the serial one at any thread count: each `out[j]` is produced by the
//! same machine instructions over the same operands in the same order, and
//! the blocks are disjoint `&mut` slices merged in a fixed order.

use mfcsl_math::{CscMatrix, Matrix};
use mfcsl_pool::ThreadPool;

use crate::sparse::SparseCtmc;
use crate::transient::PoissonWindow;
use crate::{Ctmc, CtmcError};

/// Below this state count a step is too cheap to be worth dispatching on
/// the pool.
const MIN_PARALLEL_STATES: usize = 256;

/// One uniformized-step kernel: everything [`propagate_distribution`] needs
/// to run transient analysis, independent of the matrix representation.
pub trait Propagator {
    /// Number of states.
    fn n_states(&self) -> usize;

    /// The uniformization rate `Λ` baked into the step kernel (`0` for a
    /// frozen chain with no transitions).
    fn unif_rate(&self) -> f64;

    /// The columns `start .. start + out.len()` of one uniformized step:
    /// `out[k] ← (v·P)[start + k]` with `P = I + Q/Λ`.
    ///
    /// This is the *only* arithmetic kernel of transient analysis — the
    /// serial [`step`](Propagator::step) and the blocked parallel step are
    /// both defined in terms of it, which is what keeps parallel results
    /// bitwise identical to serial ones.
    ///
    /// Implementations may assume `v.len() == n_states()` and
    /// `start + out.len() <= n_states()`, and must fully overwrite `out`.
    fn step_columns(&self, v: &[f64], start: usize, out: &mut [f64]);

    /// One full uniformized step `out ← v·P`.
    ///
    /// Implementations may assume both slices have length `n_states()` and
    /// must fully overwrite `out`.
    fn step(&self, v: &[f64], out: &mut [f64]) {
        self.step_columns(v, 0, out);
    }
}

/// Dense propagator: materializes `Pᵀ = (I + Q/Λ)ᵀ` once so every column
/// gather of a step reads a contiguous row.
#[derive(Debug, Clone)]
pub struct DensePropagator {
    /// The transpose of the uniformized matrix: `pt[(j, i)] = P[i][j]`.
    pt: Matrix,
    unif: f64,
}

impl DensePropagator {
    /// Builds the uniformized matrix of a dense chain. The uniformization
    /// rate gets a 2% headroom over the maximal exit rate, which improves
    /// the conditioning of `P`'s diagonal.
    #[must_use]
    pub fn new(ctmc: &Ctmc) -> Self {
        let rate = ctmc.max_exit_rate();
        if rate == 0.0 {
            return DensePropagator {
                pt: Matrix::identity(ctmc.n_states()),
                unif: 0.0,
            };
        }
        let unif = rate * 1.02;
        let n = ctmc.n_states();
        let mut p = ctmc.generator().scaled(1.0 / unif);
        for i in 0..n {
            p[(i, i)] += 1.0;
        }
        DensePropagator {
            pt: p.transpose(),
            unif,
        }
    }

    /// Builds the uniformized matrix straight from a generator matrix —
    /// used by the steady-regime fast path, where the constant generator
    /// `Q(m̃)` is written by a [`crate::inhomogeneous::TimeVaryingGenerator`]
    /// and never materialized as a [`Ctmc`]. The caller guarantees `q` is a
    /// valid generator (non-negative off-diagonals, rows summing to zero);
    /// rows of an absorbing (all-zero) chain yield the identity propagator.
    #[must_use]
    pub fn from_generator(q: &Matrix) -> Self {
        let n = q.rows();
        let rate = (0..n).map(|i| -q[(i, i)]).fold(0.0_f64, f64::max);
        if rate == 0.0 {
            return DensePropagator {
                pt: Matrix::identity(n),
                unif: 0.0,
            };
        }
        let unif = rate * 1.02;
        let mut p = q.scaled(1.0 / unif);
        for i in 0..n {
            p[(i, i)] += 1.0;
        }
        DensePropagator {
            pt: p.transpose(),
            unif,
        }
    }
}

impl Propagator for DensePropagator {
    fn n_states(&self) -> usize {
        self.pt.rows()
    }

    fn unif_rate(&self) -> f64 {
        self.unif
    }

    fn step_columns(&self, v: &[f64], start: usize, out: &mut [f64]) {
        for (k, o) in out.iter_mut().enumerate() {
            let col = self.pt.row(start + k);
            let mut acc = 0.0;
            for (vi, pij) in v.iter().zip(col) {
                acc += vi * pij;
            }
            *o = acc;
        }
    }
}

/// Shared gather kernel of a uniformized step over a CSC matrix `P` whose
/// off-diagonal entries are pre-divided by `Λ` and whose diagonal is held
/// separately: `out[k] = v[j]·diag[j] + Σ_{i→j} v[i]·p[i][j]` with
/// `j = start + k`, summed diagonal-first then by ascending source row — a
/// fixed order, independent of any blocking.
fn csc_step_columns(p: &CscMatrix, diag: &[f64], v: &[f64], start: usize, out: &mut [f64]) {
    debug_assert_eq!(v.len(), diag.len());
    for (k, o) in out.iter_mut().enumerate() {
        let j = start + k;
        let mut acc = v[j] * diag[j];
        let (rows, rates) = p.col(j);
        for (&i, &r) in rows.iter().zip(rates) {
            // SAFETY: `CscMatrix::from_triplets` validates every source
            // index against `n_rows`, and the trait contract guarantees
            // `v.len() == n_states()` — so `i < v.len()` always. The
            // explicit gather avoids a bounds check in the innermost loop
            // of transient analysis.
            acc += unsafe { *v.get_unchecked(i) } * r;
        }
        *o = acc;
    }
}

/// Sparse propagator: steps through the chain's rates in CSC order (scaled
/// once at construction) without ever materializing `P`.
#[derive(Debug, Clone)]
pub struct SparsePropagator<'a> {
    ctmc: &'a SparseCtmc,
    /// Off-diagonal entries of `P` in CSC order: the chain's rates
    /// pre-divided by `Λ`, so the gather kernel is pure multiply-add.
    p: CscMatrix,
    /// `P`'s diagonal, `1 - exit[j]/Λ`, precomputed once.
    diag: Vec<f64>,
    unif: f64,
}

impl<'a> SparsePropagator<'a> {
    /// Wraps a CSC chain with the same 2% uniformization headroom as the
    /// dense backend, so both produce identical Poisson windows.
    #[must_use]
    pub fn new(ctmc: &'a SparseCtmc) -> Self {
        let rate = ctmc.max_exit_rate();
        let unif = if rate == 0.0 { 0.0 } else { rate * 1.02 };
        let mut p = ctmc.rates_csc().clone();
        let mut diag = vec![1.0; ctmc.n_states()];
        if unif != 0.0 {
            for r in p.values_mut() {
                *r /= unif;
            }
            for (d, &e) in diag.iter_mut().zip(ctmc.exit_rates()) {
                *d = 1.0 - e / unif;
            }
        }
        SparsePropagator {
            ctmc,
            p,
            diag,
            unif,
        }
    }
}

impl Propagator for SparsePropagator<'_> {
    fn n_states(&self) -> usize {
        self.ctmc.n_states()
    }

    fn unif_rate(&self) -> f64 {
        self.unif
    }

    fn step_columns(&self, v: &[f64], start: usize, out: &mut [f64]) {
        if self.unif == 0.0 {
            out.copy_from_slice(&v[start..start + out.len()]);
            return;
        }
        csc_step_columns(&self.p, &self.diag, v, start, out);
    }
}

/// An owned CSC propagator built straight from generator triplets — the
/// sparse twin of [`DensePropagator::from_generator`], used by the
/// steady-regime tail path when a
/// [`crate::inhomogeneous::TimeVaryingGenerator`] exposes its sparsity
/// pattern. Never materializes a dense `Q` or `P`.
#[derive(Debug, Clone)]
pub struct CscPropagator {
    /// Off-diagonal entries of `P` in CSC order (rates pre-divided by `Λ`).
    p: CscMatrix,
    /// `P`'s diagonal, `1 - exit[j]/Λ`.
    diag: Vec<f64>,
    unif: f64,
}

impl CscPropagator {
    /// Builds the uniformized step kernel from off-diagonal `(from, to,
    /// rate)` triplets over `n` states. Non-positive and non-finite rates
    /// are dropped (mirroring the clamping the dense generator writers
    /// apply); duplicate pairs accumulate.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::InvalidGenerator`] for an empty state space or
    /// out-of-range indices.
    pub fn from_triplets(n: usize, triplets: &[(usize, usize, f64)]) -> Result<Self, CtmcError> {
        let kept: Vec<(usize, usize, f64)> = triplets
            .iter()
            .filter(|&&(from, to, rate)| from != to && rate.is_finite() && rate > 0.0)
            .copied()
            .collect();
        if n == 0 {
            return Err(CtmcError::InvalidGenerator(
                "chain must have at least one state".into(),
            ));
        }
        let mut exit = vec![0.0; n];
        for &(from, to, rate) in &kept {
            if from >= n || to >= n {
                return Err(CtmcError::InvalidGenerator(format!(
                    "transition ({from}, {to}) out of range for {n} states"
                )));
            }
            exit[from] += rate;
        }
        let mut p = CscMatrix::from_triplets(n, n, &kept)
            .map_err(|e| CtmcError::InvalidGenerator(e.to_string()))?;
        let rate = exit.iter().fold(0.0_f64, |m, &v| m.max(v));
        let unif = if rate == 0.0 { 0.0 } else { rate * 1.02 };
        let mut diag = vec![1.0; n];
        if unif != 0.0 {
            for r in p.values_mut() {
                *r /= unif;
            }
            for (d, &e) in diag.iter_mut().zip(&exit) {
                *d = 1.0 - e / unif;
            }
        }
        Ok(CscPropagator { p, diag, unif })
    }

    /// Bytes held by the step kernel (pattern + scaled rates + diagonal).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.p.memory_bytes() + self.diag.len() * std::mem::size_of::<f64>()
    }
}

impl Propagator for CscPropagator {
    fn n_states(&self) -> usize {
        self.diag.len()
    }

    fn unif_rate(&self) -> f64 {
        self.unif
    }

    fn step_columns(&self, v: &[f64], start: usize, out: &mut [f64]) {
        if self.unif == 0.0 {
            out.copy_from_slice(&v[start..start + out.len()]);
            return;
        }
        csc_step_columns(&self.p, &self.diag, v, start, out);
    }
}

/// Which step kernel [`choose_backend`] selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Materialize the full `n × n` uniformized matrix.
    Dense,
    /// Stream through CSC rate lists.
    Sparse,
}

/// Picks the cheaper uniformization backend for a chain with `n_states`
/// states and `n_transitions` stored (off-diagonal, nonzero) rates.
///
/// The dense step costs `n²` multiply-adds regardless of structure; the
/// sparse step costs `n + nnz` but with worse locality. The crossover in
/// practice sits near one quarter fill, and below ~64 states the dense
/// product is so cheap that sparsity bookkeeping never pays for itself.
#[must_use]
pub fn choose_backend(n_states: usize, n_transitions: usize) -> Backend {
    if n_states >= 64 && n_transitions * 4 < n_states * n_states {
        Backend::Sparse
    } else {
        Backend::Dense
    }
}

/// The shared windowed-uniformization driver, generic over how a step is
/// dispatched (serially or in column blocks on a pool).
fn drive_window<F>(
    n: usize,
    unif: f64,
    pi0: &[f64],
    t: f64,
    eps: f64,
    mut step: F,
) -> Result<Vec<f64>, CtmcError>
where
    F: FnMut(&[f64], &mut [f64]),
{
    if !(t >= 0.0) || !t.is_finite() {
        return Err(CtmcError::InvalidArgument(format!(
            "time must be finite and non-negative, got {t}"
        )));
    }
    if unif == 0.0 || t == 0.0 {
        // Frozen chain or zero horizon: the distribution is unchanged, but
        // still surface a bad eps instead of silently accepting it.
        PoissonWindow::new(0.0, eps)?;
        return Ok(pi0.to_vec());
    }
    let window = PoissonWindow::new(unif * t, eps)?;
    let mut v = pi0.to_vec();
    let mut scratch = vec![0.0; n];
    // Advance to the left edge of the window.
    for _ in 0..window.left {
        step(&v, &mut scratch);
        std::mem::swap(&mut v, &mut scratch);
    }
    let mut out = vec![0.0; n];
    for (i, &w) in window.weights.iter().enumerate() {
        for (o, &vi) in out.iter_mut().zip(&v) {
            *o += w * vi;
        }
        if i + 1 < window.weights.len() {
            step(&v, &mut scratch);
            std::mem::swap(&mut v, &mut scratch);
        }
    }
    // Renormalize the truncation loss.
    let mass: f64 = out.iter().sum();
    if mass > 0.0 {
        for o in &mut out {
            *o /= mass;
        }
    }
    Ok(out)
}

/// The windowed-uniformization driver:
/// `π(t) = Σ_k Poisson(Λt; k) · π₀ Pᵏ`, truncated to mass `≥ 1 − eps` and
/// renormalized against the truncation loss.
///
/// Validation of `pi0` is the caller's job (the dense and sparse front ends
/// each check against their own state space); this driver only checks the
/// time and truncation arguments.
///
/// # Errors
///
/// Returns [`CtmcError::InvalidArgument`] for a negative or non-finite `t`
/// or `eps` outside `(0, 1)`.
pub fn propagate_distribution<P: Propagator + ?Sized>(
    prop: &P,
    pi0: &[f64],
    t: f64,
    eps: f64,
) -> Result<Vec<f64>, CtmcError> {
    drive_window(prop.n_states(), prop.unif_rate(), pi0, t, eps, |v, out| {
        prop.step(v, out)
    })
}

/// [`propagate_distribution`] with each uniformized step split into
/// contiguous column blocks dispatched on `pool`.
///
/// Blocks are disjoint `&mut` sub-slices of the step output and every
/// block runs the same gather kernel ([`Propagator::step_columns`]) the
/// serial step is made of, so the result is **bitwise identical** to the
/// serial path at any thread count. With `pool = None` (or a one-lane
/// pool, or a chain too small to be worth splitting) this *is* the serial
/// path.
///
/// # Errors
///
/// As [`propagate_distribution`].
pub fn propagate_distribution_on<P: Propagator + Sync + ?Sized>(
    pool: Option<&ThreadPool>,
    prop: &P,
    pi0: &[f64],
    t: f64,
    eps: f64,
) -> Result<Vec<f64>, CtmcError> {
    let n = prop.n_states();
    match pool {
        Some(pool) if pool.threads() > 1 && n >= MIN_PARALLEL_STATES => {
            let block = column_block(n, pool.threads());
            drive_window(n, prop.unif_rate(), pi0, t, eps, |v, out| {
                pool.for_each_chunk(out, block, |start, chunk| {
                    prop.step_columns(v, start, chunk);
                });
            })
        }
        _ => propagate_distribution(prop, pi0, t, eps),
    }
}

/// Column-block size for a blocked step: a few blocks per lane so the
/// stealing deques can balance uneven sparsity, but never so small that
/// dispatch dominates the gather.
fn column_block(n: usize, threads: usize) -> usize {
    n.div_ceil(threads * 4).max(64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CtmcBuilder;

    fn two_state() -> Ctmc {
        CtmcBuilder::new()
            .state("a", ["a"])
            .state("b", ["b"])
            .transition("a", "b", 2.0)
            .unwrap()
            .transition("b", "a", 1.0)
            .unwrap()
            .build()
            .unwrap()
    }

    /// A random-ish sparse ring chain big enough to trigger blocking.
    fn big_ring(n: usize) -> SparseCtmc {
        let mut triplets = Vec::new();
        for i in 0..n {
            triplets.push((i, (i + 1) % n, 1.0 + (i % 7) as f64 * 0.3));
            triplets.push((i, (i + 3) % n, 0.2 + (i % 5) as f64 * 0.1));
        }
        SparseCtmc::from_triplets(n, &triplets).unwrap()
    }

    #[test]
    fn dense_and_sparse_backends_agree_bitwise() {
        // Same uniformization rate, same Poisson window, same arithmetic
        // order in the accumulation — the two kernels differ only in how
        // the product v·P is formed, which for this complete 2-state
        // generator touches the same rates.
        let dense = two_state();
        let sparse = SparseCtmc::from_triplets(2, &[(0, 1, 2.0), (1, 0, 1.0)]).unwrap();
        let dp = DensePropagator::new(&dense);
        let sp = SparsePropagator::new(&sparse);
        assert_eq!(dp.unif_rate(), sp.unif_rate());
        let pd = propagate_distribution(&dp, &[1.0, 0.0], 1.3, 1e-13).unwrap();
        let ps = propagate_distribution(&sp, &[1.0, 0.0], 1.3, 1e-13).unwrap();
        for (a, b) in pd.iter().zip(&ps) {
            assert!((a - b).abs() < 1e-12);
        }
        let exact = 1.0 / 3.0 + 2.0 / 3.0 * (-3.0_f64 * 1.3).exp();
        assert!((pd[0] - exact).abs() < 1e-10);
    }

    #[test]
    fn propagator_is_object_safe() {
        let dense = two_state();
        let sparse = SparseCtmc::from_triplets(2, &[(0, 1, 2.0), (1, 0, 1.0)]).unwrap();
        let dp = DensePropagator::new(&dense);
        let sp = SparsePropagator::new(&sparse);
        let boxed: Vec<Box<dyn Propagator + '_>> = vec![Box::new(dp), Box::new(sp)];
        for prop in &boxed {
            let pi = propagate_distribution(prop.as_ref(), &[0.5, 0.5], 0.7, 1e-12).unwrap();
            assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn frozen_chain_and_zero_time() {
        let frozen = CtmcBuilder::new().state("only", ["x"]).build().unwrap();
        let prop = DensePropagator::new(&frozen);
        assert_eq!(prop.unif_rate(), 0.0);
        let pi = propagate_distribution(&prop, &[1.0], 5.0, 1e-12).unwrap();
        assert_eq!(pi, vec![1.0]);
        let live = DensePropagator::new(&two_state());
        let pi = propagate_distribution(&live, &[0.4, 0.6], 0.0, 1e-12).unwrap();
        assert_eq!(pi, vec![0.4, 0.6]);
        // eps is still validated on the early-return paths.
        assert!(propagate_distribution(&live, &[0.4, 0.6], 0.0, 0.0).is_err());
    }

    #[test]
    fn validates_time() {
        let prop = DensePropagator::new(&two_state());
        assert!(propagate_distribution(&prop, &[1.0, 0.0], -1.0, 1e-12).is_err());
        assert!(propagate_distribution(&prop, &[1.0, 0.0], f64::NAN, 1e-12).is_err());
    }

    #[test]
    fn backend_heuristic() {
        // Small chains always go dense.
        assert_eq!(choose_backend(3, 6), Backend::Dense);
        assert_eq!(choose_backend(63, 10), Backend::Dense);
        // Large sparse chains go sparse.
        assert_eq!(choose_backend(1000, 6000), Backend::Sparse);
        // Large dense chains stay dense.
        assert_eq!(choose_backend(100, 9900), Backend::Dense);
    }

    #[test]
    fn blocked_sparse_step_is_bitwise_identical_to_serial() {
        let chain = big_ring(700);
        let prop = SparsePropagator::new(&chain);
        let mut pi0 = vec![0.0; 700];
        pi0[0] = 0.5;
        pi0[350] = 0.5;
        let serial = propagate_distribution(&prop, &pi0, 2.5, 1e-12).unwrap();
        for threads in [1, 2, 8] {
            let pool = ThreadPool::new(threads);
            let parallel =
                propagate_distribution_on(Some(&pool), &prop, &pi0, 2.5, 1e-12).unwrap();
            assert_eq!(serial.len(), parallel.len());
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads = {threads}");
            }
        }
    }

    #[test]
    fn blocked_dense_step_is_bitwise_identical_to_serial() {
        // A dense chain above the splitting threshold: complete-ish graph
        // on 300 states would be huge to build via the builder, so use a
        // banded generator through the sparse struct converted densely.
        let n = 300;
        let mut builder = CtmcBuilder::new();
        let names: Vec<String> = (0..n).map(|i| format!("s{i}")).collect();
        for name in &names {
            builder = builder.state(name, [name.as_str()]);
        }
        for i in 0..n {
            builder = builder
                .transition(&names[i], &names[(i + 1) % n], 1.0 + (i % 3) as f64)
                .unwrap();
        }
        let ctmc = builder.build().unwrap();
        let prop = DensePropagator::new(&ctmc);
        let mut pi0 = vec![0.0; n];
        pi0[7] = 1.0;
        let serial = propagate_distribution(&prop, &pi0, 1.7, 1e-12).unwrap();
        for threads in [2, 8] {
            let pool = ThreadPool::new(threads);
            let parallel =
                propagate_distribution_on(Some(&pool), &prop, &pi0, 1.7, 1e-12).unwrap();
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads = {threads}");
            }
        }
    }

    #[test]
    fn pooled_driver_on_small_chain_falls_back_to_serial() {
        let prop = DensePropagator::new(&two_state());
        let pool = ThreadPool::new(4);
        let a = propagate_distribution(&prop, &[1.0, 0.0], 1.0, 1e-12).unwrap();
        let b = propagate_distribution_on(Some(&pool), &prop, &[1.0, 0.0], 1.0, 1e-12).unwrap();
        assert_eq!(a, b);
        assert_eq!(pool.stats().total_tasks, 0);
    }
}
