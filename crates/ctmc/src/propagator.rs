//! A backend-agnostic uniformization propagator.
//!
//! Dense chains ([`crate::Ctmc`]) and CSR chains
//! ([`crate::sparse::SparseCtmc`]) both compute transient distributions the
//! same way: advance a row vector through uniformized steps `v ← v·P` with
//! `P = I + Q/Λ` and accumulate Poisson-weighted iterates. Only the step
//! kernel differs. [`Propagator`] abstracts that kernel so the windowed
//! driver ([`propagate_distribution`]) exists exactly once, and
//! [`choose_backend`] picks the cheaper representation for a given chain
//! size and transition count — the lumped overall chains of a mean-field
//! model with `N` objects have `C(N+K-1, K-1)` states but only `O(K²)`
//! transitions per state, where the sparse kernel wins by orders of
//! magnitude.

use mfcsl_math::Matrix;

use crate::sparse::SparseCtmc;
use crate::transient::PoissonWindow;
use crate::{Ctmc, CtmcError};

/// One uniformized-step kernel: everything [`propagate_distribution`] needs
/// to run transient analysis, independent of the matrix representation.
pub trait Propagator {
    /// Number of states.
    fn n_states(&self) -> usize;

    /// The uniformization rate `Λ` baked into the step kernel (`0` for a
    /// frozen chain with no transitions).
    fn unif_rate(&self) -> f64;

    /// One uniformized step `out ← v·P` with `P = I + Q/Λ`.
    ///
    /// Implementations may assume both slices have length `n_states()` and
    /// must fully overwrite `out`.
    fn step(&self, v: &[f64], out: &mut [f64]);
}

/// Dense propagator: materializes `P = I + Q/Λ` once and steps with a full
/// vector–matrix product.
#[derive(Debug, Clone)]
pub struct DensePropagator {
    p: Matrix,
    unif: f64,
}

impl DensePropagator {
    /// Builds the uniformized matrix of a dense chain. The uniformization
    /// rate gets a 2% headroom over the maximal exit rate, which improves
    /// the conditioning of `P`'s diagonal.
    #[must_use]
    pub fn new(ctmc: &Ctmc) -> Self {
        let rate = ctmc.max_exit_rate();
        if rate == 0.0 {
            return DensePropagator {
                p: Matrix::identity(ctmc.n_states()),
                unif: 0.0,
            };
        }
        let unif = rate * 1.02;
        let n = ctmc.n_states();
        let mut p = ctmc.generator().scaled(1.0 / unif);
        for i in 0..n {
            p[(i, i)] += 1.0;
        }
        DensePropagator { p, unif }
    }
}

impl Propagator for DensePropagator {
    fn n_states(&self) -> usize {
        self.p.rows()
    }

    fn unif_rate(&self) -> f64 {
        self.unif
    }

    fn step(&self, v: &[f64], out: &mut [f64]) {
        let result = self.p.vec_mul(v).expect("shape fixed at construction");
        out.copy_from_slice(&result);
    }
}

/// Sparse propagator: steps through the CSR rate lists without ever
/// materializing `P`.
#[derive(Debug, Clone)]
pub struct SparsePropagator<'a> {
    ctmc: &'a SparseCtmc,
    unif: f64,
}

impl<'a> SparsePropagator<'a> {
    /// Wraps a CSR chain with the same 2% uniformization headroom as the
    /// dense backend, so both produce identical Poisson windows.
    #[must_use]
    pub fn new(ctmc: &'a SparseCtmc) -> Self {
        let rate = ctmc.max_exit_rate();
        let unif = if rate == 0.0 { 0.0 } else { rate * 1.02 };
        SparsePropagator { ctmc, unif }
    }
}

impl Propagator for SparsePropagator<'_> {
    fn n_states(&self) -> usize {
        self.ctmc.n_states()
    }

    fn unif_rate(&self) -> f64 {
        self.unif
    }

    fn step(&self, v: &[f64], out: &mut [f64]) {
        self.ctmc.uniformized_step(self.unif, v, out);
    }
}

/// Which step kernel [`choose_backend`] selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Materialize the full `n × n` uniformized matrix.
    Dense,
    /// Stream through CSR rate lists.
    Sparse,
}

/// Picks the cheaper uniformization backend for a chain with `n_states`
/// states and `n_transitions` stored (off-diagonal, nonzero) rates.
///
/// The dense step costs `n²` multiply-adds regardless of structure; the
/// sparse step costs `n + nnz` but with worse locality and a scatter per
/// rate. The crossover in practice sits near one quarter fill, and below
/// ~64 states the dense product is so cheap that sparsity bookkeeping never
/// pays for itself.
#[must_use]
pub fn choose_backend(n_states: usize, n_transitions: usize) -> Backend {
    if n_states >= 64 && n_transitions * 4 < n_states * n_states {
        Backend::Sparse
    } else {
        Backend::Dense
    }
}

/// The shared windowed-uniformization driver:
/// `π(t) = Σ_k Poisson(Λt; k) · π₀ Pᵏ`, truncated to mass `≥ 1 − eps` and
/// renormalized against the truncation loss.
///
/// Validation of `pi0` is the caller's job (the dense and sparse front ends
/// each check against their own state space); this driver only checks the
/// time and truncation arguments.
///
/// # Errors
///
/// Returns [`CtmcError::InvalidArgument`] for a negative or non-finite `t`
/// or `eps` outside `(0, 1)`.
pub fn propagate_distribution<P: Propagator + ?Sized>(
    prop: &P,
    pi0: &[f64],
    t: f64,
    eps: f64,
) -> Result<Vec<f64>, CtmcError> {
    if !(t >= 0.0) || !t.is_finite() {
        return Err(CtmcError::InvalidArgument(format!(
            "time must be finite and non-negative, got {t}"
        )));
    }
    let unif = prop.unif_rate();
    if unif == 0.0 || t == 0.0 {
        // Frozen chain or zero horizon: the distribution is unchanged, but
        // still surface a bad eps instead of silently accepting it.
        PoissonWindow::new(0.0, eps)?;
        return Ok(pi0.to_vec());
    }
    let window = PoissonWindow::new(unif * t, eps)?;
    let n = prop.n_states();
    let mut v = pi0.to_vec();
    let mut scratch = vec![0.0; n];
    // Advance to the left edge of the window.
    for _ in 0..window.left {
        prop.step(&v, &mut scratch);
        std::mem::swap(&mut v, &mut scratch);
    }
    let mut out = vec![0.0; n];
    for (i, &w) in window.weights.iter().enumerate() {
        for (o, &vi) in out.iter_mut().zip(&v) {
            *o += w * vi;
        }
        if i + 1 < window.weights.len() {
            prop.step(&v, &mut scratch);
            std::mem::swap(&mut v, &mut scratch);
        }
    }
    // Renormalize the truncation loss.
    let mass: f64 = out.iter().sum();
    if mass > 0.0 {
        for o in &mut out {
            *o /= mass;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CtmcBuilder;

    fn two_state() -> Ctmc {
        CtmcBuilder::new()
            .state("a", ["a"])
            .state("b", ["b"])
            .transition("a", "b", 2.0)
            .unwrap()
            .transition("b", "a", 1.0)
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn dense_and_sparse_backends_agree_bitwise() {
        // Same uniformization rate, same Poisson window, same arithmetic
        // order in the accumulation — the two kernels differ only in how
        // the product v·P is formed, which for this complete 2-state
        // generator touches the same rates.
        let dense = two_state();
        let sparse = SparseCtmc::from_triplets(2, &[(0, 1, 2.0), (1, 0, 1.0)]).unwrap();
        let dp = DensePropagator::new(&dense);
        let sp = SparsePropagator::new(&sparse);
        assert_eq!(dp.unif_rate(), sp.unif_rate());
        let pd = propagate_distribution(&dp, &[1.0, 0.0], 1.3, 1e-13).unwrap();
        let ps = propagate_distribution(&sp, &[1.0, 0.0], 1.3, 1e-13).unwrap();
        for (a, b) in pd.iter().zip(&ps) {
            assert!((a - b).abs() < 1e-12);
        }
        let exact = 1.0 / 3.0 + 2.0 / 3.0 * (-3.0_f64 * 1.3).exp();
        assert!((pd[0] - exact).abs() < 1e-10);
    }

    #[test]
    fn propagator_is_object_safe() {
        let dense = two_state();
        let sparse = SparseCtmc::from_triplets(2, &[(0, 1, 2.0), (1, 0, 1.0)]).unwrap();
        let dp = DensePropagator::new(&dense);
        let sp = SparsePropagator::new(&sparse);
        let boxed: Vec<Box<dyn Propagator + '_>> = vec![Box::new(dp), Box::new(sp)];
        for prop in &boxed {
            let pi = propagate_distribution(prop.as_ref(), &[0.5, 0.5], 0.7, 1e-12).unwrap();
            assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn frozen_chain_and_zero_time() {
        let frozen = CtmcBuilder::new().state("only", ["x"]).build().unwrap();
        let prop = DensePropagator::new(&frozen);
        assert_eq!(prop.unif_rate(), 0.0);
        let pi = propagate_distribution(&prop, &[1.0], 5.0, 1e-12).unwrap();
        assert_eq!(pi, vec![1.0]);
        let live = DensePropagator::new(&two_state());
        let pi = propagate_distribution(&live, &[0.4, 0.6], 0.0, 1e-12).unwrap();
        assert_eq!(pi, vec![0.4, 0.6]);
        // eps is still validated on the early-return paths.
        assert!(propagate_distribution(&live, &[0.4, 0.6], 0.0, 0.0).is_err());
    }

    #[test]
    fn validates_time() {
        let prop = DensePropagator::new(&two_state());
        assert!(propagate_distribution(&prop, &[1.0, 0.0], -1.0, 1e-12).is_err());
        assert!(propagate_distribution(&prop, &[1.0, 0.0], f64::NAN, 1e-12).is_err());
    }

    #[test]
    fn backend_heuristic() {
        // Small chains always go dense.
        assert_eq!(choose_backend(3, 6), Backend::Dense);
        assert_eq!(choose_backend(63, 10), Backend::Dense);
        // Large sparse chains go sparse.
        assert_eq!(choose_backend(1000, 6000), Backend::Sparse);
        // Large dense chains stay dense.
        assert_eq!(choose_backend(100, 9900), Backend::Dense);
    }
}
