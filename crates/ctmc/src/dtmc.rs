//! Discrete-time Markov chains.
//!
//! Two DTMCs are derived from a CTMC: the *embedded* jump chain (used for
//! absorption-probability systems) and the *uniformized* chain (the
//! workhorse of uniformization-based transient analysis). The paper notes
//! (Sec. II-B) that all its results adapt to discrete-time mean-field
//! models, whose local model is a DTMC — this module provides that
//! substrate.

use mfcsl_math::lu::LuDecomposition;
use mfcsl_math::Matrix;
use serde::{Deserialize, Serialize};

use crate::{Ctmc, CtmcError};

/// Row-sum tolerance for stochastic-matrix validation.
const STOCHASTIC_TOL: f64 = 1e-9;

/// A finite discrete-time Markov chain (a validated stochastic matrix).
///
/// # Example
///
/// ```
/// use mfcsl_ctmc::dtmc::Dtmc;
/// use mfcsl_math::Matrix;
///
/// # fn main() -> Result<(), mfcsl_ctmc::CtmcError> {
/// let p = Matrix::from_rows(&[&[0.9, 0.1], &[0.5, 0.5]])?;
/// let d = Dtmc::new(p)?;
/// let pi = d.steady_state()?;
/// assert!((pi[0] - 5.0 / 6.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dtmc {
    p: Matrix,
}

impl Dtmc {
    /// Validates and wraps a stochastic matrix.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::InvalidGenerator`] if `p` is not square, has
    /// entries outside `[0, 1]`, or rows not summing to 1.
    pub fn new(p: Matrix) -> Result<Self, CtmcError> {
        if !p.is_square() {
            return Err(CtmcError::InvalidGenerator(format!(
                "transition matrix is {}x{}",
                p.rows(),
                p.cols()
            )));
        }
        if p.rows() == 0 {
            return Err(CtmcError::InvalidGenerator(
                "chain must have at least one state".into(),
            ));
        }
        for i in 0..p.rows() {
            let mut sum = 0.0;
            for j in 0..p.cols() {
                let v = p[(i, j)];
                if !v.is_finite() || !(-STOCHASTIC_TOL..=1.0 + STOCHASTIC_TOL).contains(&v) {
                    return Err(CtmcError::InvalidGenerator(format!(
                        "entry ({i}, {j}) = {v} is not a probability"
                    )));
                }
                sum += v;
            }
            if (sum - 1.0).abs() > STOCHASTIC_TOL {
                return Err(CtmcError::InvalidGenerator(format!(
                    "row {i} sums to {sum}"
                )));
            }
        }
        Ok(Dtmc { p })
    }

    /// The embedded jump chain of a CTMC: `P_ij = q_ij / E(i)` for
    /// non-absorbing `i`, the identity row for absorbing states.
    #[must_use]
    pub fn embedded(ctmc: &Ctmc) -> Self {
        let n = ctmc.n_states();
        let q = ctmc.generator();
        let mut p = Matrix::zeros(n, n);
        for i in 0..n {
            let exit = ctmc.exit_rate(i);
            if exit <= 0.0 {
                p[(i, i)] = 1.0;
            } else {
                for j in 0..n {
                    if j != i {
                        p[(i, j)] = q[(i, j)] / exit;
                    }
                }
            }
        }
        Dtmc { p }
    }

    /// The uniformized chain `P = I + Q/Λ` of a CTMC.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::InvalidArgument`] if `lambda` is smaller than
    /// the chain's maximum exit rate (the result would not be stochastic).
    pub fn uniformized(ctmc: &Ctmc, lambda: f64) -> Result<Self, CtmcError> {
        if !(lambda >= ctmc.max_exit_rate()) || lambda <= 0.0 {
            return Err(CtmcError::InvalidArgument(format!(
                "uniformization rate {lambda} must be positive and at least the maximum \
                 exit rate {}",
                ctmc.max_exit_rate()
            )));
        }
        let n = ctmc.n_states();
        let mut p = ctmc.generator().scaled(1.0 / lambda);
        for i in 0..n {
            p[(i, i)] += 1.0;
        }
        Ok(Dtmc { p })
    }

    /// Number of states.
    #[must_use]
    pub fn n_states(&self) -> usize {
        self.p.rows()
    }

    /// The transition matrix.
    #[must_use]
    pub fn transition_matrix(&self) -> &Matrix {
        &self.p
    }

    /// Distribution after `steps` steps starting from `pi0`.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::InvalidDistribution`] for a bad `pi0`.
    pub fn transient(&self, pi0: &[f64], steps: usize) -> Result<Vec<f64>, CtmcError> {
        if pi0.len() != self.n_states() {
            return Err(CtmcError::InvalidDistribution(format!(
                "distribution has length {}, expected {}",
                pi0.len(),
                self.n_states()
            )));
        }
        mfcsl_math::simplex::check_distribution(pi0, mfcsl_math::simplex::DEFAULT_SUM_TOL)
            .map_err(|e| CtmcError::InvalidDistribution(e.to_string()))?;
        let mut v = pi0.to_vec();
        for _ in 0..steps {
            v = self.p.vec_mul(&v).expect("shape fixed");
        }
        Ok(v)
    }

    /// Stationary distribution `π = πP, Σπ = 1` of an irreducible aperiodic
    /// chain (unique-solution case).
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::Math`] with a singular system if the stationary
    /// distribution is not unique.
    pub fn steady_state(&self) -> Result<Vec<f64>, CtmcError> {
        let n = self.n_states();
        if n == 1 {
            return Ok(vec![1.0]);
        }
        // (Pᵀ - I) πᵀ = 0 with a normalization row.
        let mut system = self.p.transpose();
        for i in 0..n {
            system[(i, i)] -= 1.0;
        }
        for j in 0..n {
            system[(n - 1, j)] = 1.0;
        }
        let mut rhs = vec![0.0; n];
        rhs[n - 1] = 1.0;
        let mut pi = LuDecomposition::new(&system)?.solve(&rhs)?;
        for v in &mut pi {
            *v = v.max(0.0);
        }
        let total: f64 = pi.iter().sum();
        for v in &mut pi {
            *v /= total;
        }
        Ok(pi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CtmcBuilder;

    fn ctmc_ab() -> Ctmc {
        CtmcBuilder::new()
            .state("a", ["a"])
            .state("b", ["b"])
            .transition("a", "b", 2.0)
            .unwrap()
            .transition("b", "a", 1.0)
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn validation_rejects_bad_matrices() {
        assert!(Dtmc::new(Matrix::zeros(2, 3)).is_err());
        assert!(Dtmc::new(Matrix::zeros(0, 0)).is_err());
        let bad = Matrix::from_rows(&[&[0.5, 0.4], &[0.5, 0.5]]).unwrap();
        assert!(Dtmc::new(bad).is_err());
        let neg = Matrix::from_rows(&[&[1.5, -0.5], &[0.5, 0.5]]).unwrap();
        assert!(Dtmc::new(neg).is_err());
    }

    #[test]
    fn embedded_chain_of_ctmc() {
        let d = Dtmc::embedded(&ctmc_ab());
        assert_eq!(d.transition_matrix()[(0, 1)], 1.0);
        assert_eq!(d.transition_matrix()[(1, 0)], 1.0);
        // Absorbing state becomes identity row.
        let c = CtmcBuilder::new()
            .state("live", ["l"])
            .state("dead", ["d"])
            .transition("live", "dead", 1.0)
            .unwrap()
            .build()
            .unwrap();
        let d = Dtmc::embedded(&c);
        assert_eq!(d.transition_matrix()[(1, 1)], 1.0);
    }

    #[test]
    fn uniformized_chain_is_stochastic() {
        let c = ctmc_ab();
        let d = Dtmc::uniformized(&c, 4.0).unwrap();
        assert_eq!(d.transition_matrix()[(0, 0)], 0.5);
        assert_eq!(d.transition_matrix()[(0, 1)], 0.5);
        assert!(Dtmc::uniformized(&c, 1.0).is_err());
        assert!(Dtmc::uniformized(&c, -1.0).is_err());
    }

    #[test]
    fn transient_and_steady_state() {
        let p = Matrix::from_rows(&[&[0.9, 0.1], &[0.5, 0.5]]).unwrap();
        let d = Dtmc::new(p).unwrap();
        let one = d.transient(&[1.0, 0.0], 1).unwrap();
        assert!((one[0] - 0.9).abs() < 1e-15);
        let many = d.transient(&[1.0, 0.0], 200).unwrap();
        let pi = d.steady_state().unwrap();
        for (a, b) in many.iter().zip(&pi) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!(d.transient(&[1.0], 1).is_err());
        assert!(d.transient(&[0.6, 0.6], 1).is_err());
    }

    #[test]
    fn uniformized_steady_state_matches_ctmc() {
        let c = ctmc_ab();
        let d = Dtmc::uniformized(&c, 4.0).unwrap();
        let pi = d.steady_state().unwrap();
        // CTMC steady state: (1/3, 2/3).
        assert!((pi[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((pi[1] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn single_state_chain() {
        let d = Dtmc::new(Matrix::identity(1)).unwrap();
        assert_eq!(d.steady_state().unwrap(), vec![1.0]);
        assert_eq!(d.transient(&[1.0], 10).unwrap(), vec![1.0]);
    }
}
