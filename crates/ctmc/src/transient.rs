//! Transient analysis of time-homogeneous CTMCs.
//!
//! Two independent methods are provided:
//!
//! * **uniformization** — the numerically robust production path. The chain
//!   is embedded into a Poisson-subordinated DTMC with uniformization rate
//!   `Λ ≥ max exit rate`, and `π(t) = Σ_k Poisson(Λt; k) · π P^k`. The
//!   Poisson layer weights are computed with a self-contained
//!   mode-centered scheme (a simplified Fox–Glynn) that is stable for large
//!   `Λt`;
//! * **matrix exponential** — `Π(t) = e^{Qt}` via `mfcsl-math`, used as an
//!   independent cross-check and as an ablation point in the benches.

use mfcsl_math::expm::expm_scaled;
use mfcsl_math::Matrix;

use crate::{Ctmc, CtmcError};

/// Default truncation error for the Poisson layer.
pub const DEFAULT_EPSILON: f64 = 1e-12;

/// Poisson probability weights `P(N_{λ} = k)` for `k` in a truncated window
/// `[left, left + weights.len())` whose total mass is at least `1 - eps`.
///
/// Computed mode-centered in linear space with one global normalization, so
/// it is stable for large `λ` where naive recursion from `k = 0`
/// underflows.
#[derive(Debug, Clone, PartialEq)]
pub struct PoissonWindow {
    /// First index of the window.
    pub left: usize,
    /// Weights for `k = left, left+1, …`.
    pub weights: Vec<f64>,
}

impl PoissonWindow {
    /// Computes the truncated Poisson distribution with parameter `lambda`.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::InvalidArgument`] for negative or non-finite
    /// `lambda` or `eps` outside `(0, 1)`.
    pub fn new(lambda: f64, eps: f64) -> Result<Self, CtmcError> {
        if !(lambda >= 0.0) || !lambda.is_finite() {
            return Err(CtmcError::InvalidArgument(format!(
                "poisson parameter must be finite and non-negative, got {lambda}"
            )));
        }
        if !(eps > 0.0 && eps < 1.0) {
            return Err(CtmcError::InvalidArgument(format!(
                "truncation epsilon must be in (0, 1), got {eps}"
            )));
        }
        if lambda == 0.0 {
            return Ok(PoissonWindow {
                left: 0,
                weights: vec![1.0],
            });
        }
        let mode = lambda.floor() as usize;
        // Unnormalized weights relative to the mode (value 1 at the mode).
        // Window radius: generous Chernoff-style bound.
        let radius = (6.0 * (lambda.sqrt() + 1.0) * (1.0 / eps).ln().sqrt()) as usize + 5;
        let left = mode.saturating_sub(radius);
        let right = mode + radius;
        let mut weights = vec![0.0; right - left + 1];
        let mode_idx = mode - left;
        weights[mode_idx] = 1.0;
        // Recur right: w(k+1) = w(k) * lambda / (k+1).
        for k in mode..right {
            weights[k - left + 1] = weights[k - left] * lambda / (k + 1) as f64;
        }
        // Recur left: w(k-1) = w(k) * k / lambda. The pmf decreases
        // monotonically below the mode, so stop as soon as a term falls
        // under the per-term error budget: the unnormalized total is at
        // least 1 (the mode term), so the skipped terms contribute less
        // than eps/4 of normalized mass in aggregate — the same budget
        // the tail trim below works with. For large Λt this skips the
        // bulk of the left radius instead of recurring down to it.
        let floor = eps / (4.0 * weights.len() as f64);
        let mut first = mode_idx;
        for k in (left + 1..=mode).rev() {
            let w = weights[k - left] * k as f64 / lambda;
            if w < floor {
                break;
            }
            weights[k - left - 1] = w;
            first = k - left - 1;
        }
        let total: f64 = weights[first..].iter().sum();
        for w in &mut weights[first..] {
            *w /= total;
        }
        // Trim negligible tails so callers do fewer matrix products.
        let tail = eps / 4.0;
        let mut lo = first;
        let mut acc = 0.0;
        while lo < weights.len() && acc + weights[lo] < tail {
            acc += weights[lo];
            lo += 1;
        }
        let mut hi = weights.len();
        acc = 0.0;
        while hi > lo + 1 && acc + weights[hi - 1] < tail {
            acc += weights[hi - 1];
            hi -= 1;
        }
        Ok(PoissonWindow {
            left: left + lo,
            weights: weights[lo..hi].to_vec(),
        })
    }

    /// Total mass of the window (close to, and at most, 1).
    #[must_use]
    pub fn total_mass(&self) -> f64 {
        self.weights.iter().sum()
    }
}

/// Computes the transient distribution `π(t) = π(0)·e^{Qt}` by
/// uniformization.
///
/// # Errors
///
/// Returns [`CtmcError::InvalidDistribution`] for a bad initial
/// distribution, [`CtmcError::InvalidArgument`] for negative `t` or bad
/// `eps`.
///
/// # Example
///
/// ```
/// use mfcsl_ctmc::{transient::transient_distribution, CtmcBuilder};
///
/// # fn main() -> Result<(), mfcsl_ctmc::CtmcError> {
/// let c = CtmcBuilder::new()
///     .state("a", ["a"]).state("b", ["b"])
///     .transition("a", "b", 1.0)?
///     .build()?;
/// let pi = transient_distribution(&c, &[1.0, 0.0], 1.0, 1e-12)?;
/// assert!((pi[0] - (-1.0_f64).exp()).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn transient_distribution(
    ctmc: &Ctmc,
    pi0: &[f64],
    t: f64,
    eps: f64,
) -> Result<Vec<f64>, CtmcError> {
    ctmc.check_distribution(pi0)?;
    let prop = crate::propagator::DensePropagator::new(ctmc);
    crate::propagator::propagate_distribution(&prop, pi0, t, eps)
}

/// [`transient_distribution`] with each uniformized step split into column
/// blocks on `pool` — bitwise identical to the serial path at any thread
/// count (see [`crate::propagator::propagate_distribution_on`]).
///
/// # Errors
///
/// As [`transient_distribution`].
pub fn transient_distribution_on(
    pool: Option<&mfcsl_pool::ThreadPool>,
    ctmc: &Ctmc,
    pi0: &[f64],
    t: f64,
    eps: f64,
) -> Result<Vec<f64>, CtmcError> {
    ctmc.check_distribution(pi0)?;
    let prop = crate::propagator::DensePropagator::new(ctmc);
    crate::propagator::propagate_distribution_on(pool, &prop, pi0, t, eps)
}

/// Computes the full transient probability matrix `Π(t) = e^{Qt}` by
/// uniformization (row `s` is the distribution at time `t` given start `s`).
///
/// # Errors
///
/// See [`transient_distribution`].
pub fn transient_matrix(ctmc: &Ctmc, t: f64, eps: f64) -> Result<Matrix, CtmcError> {
    transient_matrix_on(None, ctmc, t, eps)
}

/// [`transient_matrix`] with the row integrations fanned out on `pool`.
///
/// Each row of `Π(t)` is the independent Kolmogorov propagation of one
/// unit vector; rows are dispatched as pool tasks, computed by the same
/// per-row kernel the serial path runs, and written to disjoint output
/// rows in fixed index order — so the matrix is bitwise identical to the
/// serial one at any thread count.
///
/// # Errors
///
/// See [`transient_distribution`].
pub fn transient_matrix_on(
    pool: Option<&mfcsl_pool::ThreadPool>,
    ctmc: &Ctmc,
    t: f64,
    eps: f64,
) -> Result<Matrix, CtmcError> {
    if !(t >= 0.0) || !t.is_finite() {
        return Err(CtmcError::InvalidArgument(format!(
            "time must be finite and non-negative, got {t}"
        )));
    }
    if ctmc.max_exit_rate() == 0.0 || t == 0.0 {
        return Ok(Matrix::identity(ctmc.n_states()));
    }
    let prop = crate::propagator::DensePropagator::new(ctmc);
    transient_matrix_for(pool, &prop, t, eps)
}

/// The transient matrix of any uniformization backend: row `s` of the
/// result is the distribution at time `t` of the unit mass started in
/// state `s`, each row propagated independently (and in parallel when a
/// pool is given). This is what lets the *sparse* backend produce
/// transient matrices too — the dense path is [`transient_matrix_on`].
///
/// # Errors
///
/// See [`transient_distribution`].
pub fn transient_matrix_for<P: crate::propagator::Propagator + Sync>(
    pool: Option<&mfcsl_pool::ThreadPool>,
    prop: &P,
    t: f64,
    eps: f64,
) -> Result<Matrix, CtmcError> {
    if !(t >= 0.0) || !t.is_finite() {
        return Err(CtmcError::InvalidArgument(format!(
            "time must be finite and non-negative, got {t}"
        )));
    }
    let n = prop.n_states();
    if prop.unif_rate() == 0.0 || t == 0.0 {
        return Ok(Matrix::identity(n));
    }
    // One Poisson window shared by every row (same Λt), computed up front.
    let window = PoissonWindow::new(prop.unif_rate() * t, eps)?;
    let row_of = |r: usize| -> Vec<f64> {
        let mut v = vec![0.0; n];
        v[r] = 1.0;
        propagate_row(prop, v, &window)
    };
    let rows: Vec<Vec<f64>> = match pool {
        Some(pool) if pool.threads() > 1 => pool.map_indexed(n, row_of),
        _ => (0..n).map(row_of).collect(),
    };
    let mut out = Matrix::zeros(n, n);
    for (i, row) in rows.iter().enumerate() {
        out.row_mut(i).copy_from_slice(row);
    }
    Ok(out)
}

/// One row's windowed uniformization: the same accumulate-and-renormalize
/// arithmetic as the distribution driver, against a precomputed window.
fn propagate_row<P: crate::propagator::Propagator>(
    prop: &P,
    mut v: Vec<f64>,
    window: &PoissonWindow,
) -> Vec<f64> {
    let n = v.len();
    let mut scratch = vec![0.0; n];
    for _ in 0..window.left {
        prop.step(&v, &mut scratch);
        std::mem::swap(&mut v, &mut scratch);
    }
    let mut out = vec![0.0; n];
    for (i, &w) in window.weights.iter().enumerate() {
        for (o, &vi) in out.iter_mut().zip(&v) {
            *o += w * vi;
        }
        if i + 1 < window.weights.len() {
            prop.step(&v, &mut scratch);
            std::mem::swap(&mut v, &mut scratch);
        }
    }
    let mass: f64 = out.iter().sum();
    if mass > 0.0 {
        for o in &mut out {
            *o /= mass;
        }
    }
    out
}

/// Computes `Π(t) = e^{Qt}` with the matrix exponential — the independent
/// cross-check for [`transient_matrix`].
///
/// # Errors
///
/// Returns [`CtmcError::InvalidArgument`] for negative `t` and propagates
/// numerical failures.
pub fn transient_matrix_expm(ctmc: &Ctmc, t: f64) -> Result<Matrix, CtmcError> {
    if !(t >= 0.0) || !t.is_finite() {
        return Err(CtmcError::InvalidArgument(format!(
            "time must be finite and non-negative, got {t}"
        )));
    }
    Ok(expm_scaled(ctmc.generator(), t)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CtmcBuilder;
    use proptest::prelude::*;

    fn two_state() -> Ctmc {
        CtmcBuilder::new()
            .state("a", ["a"])
            .state("b", ["b"])
            .transition("a", "b", 2.0)
            .unwrap()
            .transition("b", "a", 1.0)
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn poisson_window_small_lambda() {
        let w = PoissonWindow::new(1.0, 1e-12).unwrap();
        assert_eq!(w.left, 0);
        // P(N=0) = e^{-1}.
        assert!((w.weights[0] - (-1.0_f64).exp()).abs() < 1e-12);
        assert!((w.total_mass() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn poisson_window_large_lambda_is_stable() {
        let w = PoissonWindow::new(5000.0, 1e-12).unwrap();
        assert!(w.left > 4000, "window should be centered near the mode");
        assert!((w.total_mass() - 1.0).abs() < 1e-9);
        assert!(w.weights.iter().all(|&x| x.is_finite() && x >= 0.0));
        // Mean of the window distribution should be close to lambda.
        let mean: f64 = w
            .weights
            .iter()
            .enumerate()
            .map(|(i, &p)| (w.left + i) as f64 * p)
            .sum();
        assert!((mean - 5000.0).abs() < 1.0);
    }

    #[test]
    fn poisson_window_left_truncation_keeps_invariants() {
        // The left recursion stops at the error budget instead of running
        // to the window edge; mass and mean must be unaffected at any λ.
        for &lambda in &[7.0, 50.0, 500.0, 20_000.0] {
            let w = PoissonWindow::new(lambda, 1e-12).unwrap();
            assert!((w.total_mass() - 1.0).abs() < 1e-9, "λ = {lambda}");
            let mean: f64 = w
                .weights
                .iter()
                .enumerate()
                .map(|(i, &p)| (w.left + i) as f64 * p)
                .sum();
            assert!((mean - lambda).abs() < 1.0, "λ = {lambda}, mean {mean}");
            assert!(w.weights.iter().all(|&x| x.is_finite() && x >= 0.0));
            // No zero padding survives at the edges of the kept window.
            assert!(w.weights[0] > 0.0 && *w.weights.last().unwrap() > 0.0);
        }
    }

    #[test]
    fn poisson_window_zero_lambda() {
        let w = PoissonWindow::new(0.0, 1e-12).unwrap();
        assert_eq!(w.weights, vec![1.0]);
    }

    #[test]
    fn poisson_window_validates() {
        assert!(PoissonWindow::new(-1.0, 1e-12).is_err());
        assert!(PoissonWindow::new(1.0, 0.0).is_err());
        assert!(PoissonWindow::new(1.0, 1.5).is_err());
        assert!(PoissonWindow::new(f64::NAN, 1e-12).is_err());
    }

    #[test]
    fn two_state_transient_matches_analytic() {
        // For rates a=2 (a->b), b=1 (b->a): pi_a(t) from (1,0) is
        // 1/3 + 2/3 e^{-3t}.
        let c = two_state();
        for &t in &[0.1, 0.5, 1.0, 3.0] {
            let pi = transient_distribution(&c, &[1.0, 0.0], t, 1e-13).unwrap();
            let exact = 1.0 / 3.0 + 2.0 / 3.0 * (-3.0 * t).exp();
            assert!((pi[0] - exact).abs() < 1e-10, "t = {t}");
            assert!((pi[0] + pi[1] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn uniformization_matches_expm() {
        let c = CtmcBuilder::new()
            .state("a", ["a"])
            .state("b", ["b"])
            .state("c", ["c"])
            .transition("a", "b", 1.3)
            .unwrap()
            .transition("b", "c", 0.7)
            .unwrap()
            .transition("c", "a", 2.5)
            .unwrap()
            .transition("b", "a", 0.2)
            .unwrap()
            .build()
            .unwrap();
        for &t in &[0.3, 1.7, 8.0] {
            let u = transient_matrix(&c, t, 1e-13).unwrap();
            let e = transient_matrix_expm(&c, t).unwrap();
            let diff = u.sub_matrix(&e).unwrap().norm_max();
            assert!(diff < 1e-9, "t = {t}, diff = {diff}");
        }
    }

    #[test]
    fn zero_time_and_frozen_chain() {
        let c = two_state();
        let pi = transient_distribution(&c, &[0.4, 0.6], 0.0, 1e-12).unwrap();
        assert_eq!(pi, vec![0.4, 0.6]);
        // A chain with no transitions stays put.
        let frozen = CtmcBuilder::new().state("only", ["x"]).build().unwrap();
        let pi = transient_distribution(&frozen, &[1.0], 5.0, 1e-12).unwrap();
        assert_eq!(pi, vec![1.0]);
        assert_eq!(
            transient_matrix(&frozen, 5.0, 1e-12).unwrap(),
            Matrix::identity(1)
        );
    }

    #[test]
    fn absorbing_state_traps_mass() {
        let c = CtmcBuilder::new()
            .state("live", ["live"])
            .state("dead", ["dead"])
            .transition("live", "dead", 1.0)
            .unwrap()
            .build()
            .unwrap();
        let pi = transient_distribution(&c, &[1.0, 0.0], 50.0, 1e-12).unwrap();
        assert!(pi[1] > 1.0 - 1e-12);
    }

    #[test]
    fn validates_arguments() {
        let c = two_state();
        assert!(transient_distribution(&c, &[0.5, 0.6], 1.0, 1e-12).is_err());
        assert!(transient_distribution(&c, &[1.0, 0.0], -1.0, 1e-12).is_err());
        assert!(transient_matrix(&c, f64::NAN, 1e-12).is_err());
        assert!(transient_matrix_expm(&c, -2.0).is_err());
    }

    #[test]
    fn pooled_matrix_is_bitwise_identical_to_serial() {
        let mut builder = CtmcBuilder::new();
        let names: Vec<String> = (0..40).map(|i| format!("s{i}")).collect();
        for name in &names {
            builder = builder.state(name, [name.as_str()]);
        }
        for i in 0..40 {
            builder = builder
                .transition(&names[i], &names[(i + 1) % 40], 0.5 + (i % 4) as f64)
                .unwrap()
                .transition(&names[i], &names[(i + 7) % 40], 0.3)
                .unwrap();
        }
        let c = builder.build().unwrap();
        let serial = transient_matrix(&c, 1.1, 1e-12).unwrap();
        for threads in [1, 2, 8] {
            let pool = mfcsl_pool::ThreadPool::new(threads);
            let parallel = transient_matrix_on(Some(&pool), &c, 1.1, 1e-12).unwrap();
            for (a, b) in serial.as_slice().iter().zip(parallel.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads = {threads}");
            }
        }
    }

    #[test]
    fn sparse_backend_matrix_matches_dense() {
        use crate::propagator::{DensePropagator, SparsePropagator};
        use crate::sparse::SparseCtmc;
        let c = two_state();
        let sparse = SparseCtmc::from_triplets(2, &[(0, 1, 2.0), (1, 0, 1.0)]).unwrap();
        let dp = DensePropagator::new(&c);
        let sp = SparsePropagator::new(&sparse);
        let md = transient_matrix_for(None, &dp, 0.9, 1e-13).unwrap();
        let ms = transient_matrix_for(None, &sp, 0.9, 1e-13).unwrap();
        for (a, b) in md.as_slice().iter().zip(ms.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    proptest! {
        /// Uniformization and expm agree on random 3-state chains, and the
        /// result rows are distributions (Chapman–Kolmogorov sanity).
        #[test]
        fn prop_uniformization_vs_expm(
            rates in proptest::collection::vec(0.0_f64..4.0, 6),
            t in 0.01_f64..5.0,
        ) {
            let c = CtmcBuilder::new()
                .state("a", ["a"]).state("b", ["b"]).state("c", ["c"])
                .transition("a", "b", rates[0]).unwrap()
                .transition("a", "c", rates[1]).unwrap()
                .transition("b", "a", rates[2]).unwrap()
                .transition("b", "c", rates[3]).unwrap()
                .transition("c", "a", rates[4]).unwrap()
                .transition("c", "b", rates[5]).unwrap()
                .build().unwrap();
            let u = transient_matrix(&c, t, 1e-13).unwrap();
            let e = transient_matrix_expm(&c, t).unwrap();
            prop_assert!(u.sub_matrix(&e).unwrap().norm_max() < 1e-8);
            for i in 0..3 {
                let s: f64 = u.row(i).iter().sum();
                prop_assert!((s - 1.0).abs() < 1e-9);
                prop_assert!(u.row(i).iter().all(|&v| v >= -1e-12));
            }
        }

        /// Semigroup property: Π(s)Π(t) = Π(s+t).
        #[test]
        fn prop_chapman_kolmogorov(s in 0.05_f64..2.0, t in 0.05_f64..2.0) {
            let c = two_state();
            let ps = transient_matrix(&c, s, 1e-13).unwrap();
            let pt = transient_matrix(&c, t, 1e-13).unwrap();
            let pst = transient_matrix(&c, s + t, 1e-13).unwrap();
            let prod = ps.matmul(&pt).unwrap();
            prop_assert!(prod.sub_matrix(&pst).unwrap().norm_max() < 1e-9);
        }
    }
}
