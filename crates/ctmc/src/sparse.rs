//! Sparse CTMCs in compressed-sparse-row form.
//!
//! The lumped overall chain of a finite-`N` mean-field system has
//! `C(N+K-1, K-1)` states but only `K(K-1)` transitions per state, so a
//! dense generator wastes quadratic memory. [`SparseCtmc`] stores only the
//! off-diagonal rates and supports the one operation transient analysis
//! needs: the uniformized vector–matrix product of uniformization.

use serde::{Deserialize, Serialize};

use crate::CtmcError;

/// A CTMC generator in CSR form (off-diagonal rates only; the diagonal is
/// implied by the row sums).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseCtmc {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    rates: Vec<f64>,
    exit: Vec<f64>,
}

impl SparseCtmc {
    /// Builds a sparse chain from `(from, to, rate)` triplets.
    ///
    /// Duplicate `(from, to)` pairs accumulate. Self-loops are rejected;
    /// rates must be finite and non-negative.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::InvalidGenerator`] for an empty state space,
    /// out-of-range indices, self-loops, or invalid rates.
    ///
    /// # Example
    ///
    /// ```
    /// use mfcsl_ctmc::sparse::SparseCtmc;
    ///
    /// let c = SparseCtmc::from_triplets(2, &[(0, 1, 2.0), (1, 0, 1.0)])?;
    /// assert_eq!(c.exit_rate(0), 2.0);
    /// let pi = c.transient_distribution(&[1.0, 0.0], 10.0, 1e-12)?;
    /// assert!((pi[0] - 1.0 / 3.0).abs() < 1e-9);
    /// # Ok::<(), mfcsl_ctmc::CtmcError>(())
    /// ```
    pub fn from_triplets(n: usize, triplets: &[(usize, usize, f64)]) -> Result<Self, CtmcError> {
        if n == 0 {
            return Err(CtmcError::InvalidGenerator(
                "chain must have at least one state".into(),
            ));
        }
        for &(from, to, rate) in triplets {
            if from >= n || to >= n {
                return Err(CtmcError::InvalidGenerator(format!(
                    "transition ({from}, {to}) out of range for {n} states"
                )));
            }
            if from == to {
                return Err(CtmcError::InvalidGenerator(format!(
                    "self-loop on state {from}"
                )));
            }
            if !rate.is_finite() || rate < 0.0 {
                return Err(CtmcError::InvalidGenerator(format!(
                    "rate {rate} at ({from}, {to}) must be finite and non-negative"
                )));
            }
        }
        // Counting sort by row.
        let mut counts = vec![0usize; n + 1];
        for &(from, _, _) in triplets {
            counts[from + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0usize; triplets.len()];
        let mut rates = vec![0.0; triplets.len()];
        let mut cursor = row_ptr.clone();
        for &(from, to, rate) in triplets {
            let slot = cursor[from];
            col_idx[slot] = to;
            rates[slot] = rate;
            cursor[from] += 1;
        }
        let mut exit = vec![0.0; n];
        for &(from, _, rate) in triplets {
            exit[from] += rate;
        }
        Ok(SparseCtmc {
            n,
            row_ptr,
            col_idx,
            rates,
            exit,
        })
    }

    /// Number of states.
    #[must_use]
    pub fn n_states(&self) -> usize {
        self.n
    }

    /// Number of stored transitions.
    #[must_use]
    pub fn n_transitions(&self) -> usize {
        self.rates.len()
    }

    /// Exit rate of a state.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[must_use]
    pub fn exit_rate(&self, s: usize) -> f64 {
        self.exit[s]
    }

    /// The largest exit rate (uniformization rate lower bound).
    #[must_use]
    pub fn max_exit_rate(&self) -> f64 {
        self.exit.iter().fold(0.0_f64, |m, &v| m.max(v))
    }

    /// Exit rates of every state (row sums of the off-diagonal rates).
    #[must_use]
    pub(crate) fn exit_rates(&self) -> &[f64] {
        &self.exit
    }

    /// The transitions in CSC order: `(col_ptr, row_idx, rates)` such that
    /// the incoming transitions of state `j` are `(row_idx[k], rates[k])`
    /// for `k ∈ col_ptr[j]..col_ptr[j+1]`, sorted by ascending source row.
    /// This is the layout the column-gather step kernel of
    /// [`crate::propagator::SparsePropagator`] reads.
    pub(crate) fn to_csc(&self) -> (Vec<usize>, Vec<usize>, Vec<f64>) {
        let nnz = self.rates.len();
        let mut counts = vec![0usize; self.n + 1];
        for &j in &self.col_idx {
            counts[j + 1] += 1;
        }
        for j in 0..self.n {
            counts[j + 1] += counts[j];
        }
        let col_ptr = counts.clone();
        let mut row_idx = vec![0usize; nnz];
        let mut rates = vec![0.0; nnz];
        let mut cursor = col_ptr.clone();
        // Walking the CSR rows in ascending order fills each column's
        // entries in ascending source row, the order the gather sums in.
        for i in 0..self.n {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[k];
                let slot = cursor[j];
                row_idx[slot] = i;
                rates[slot] = self.rates[k];
                cursor[j] += 1;
            }
        }
        (col_ptr, row_idx, rates)
    }

    /// Transient distribution `π(t) = π(0)·e^{Qt}` by uniformization with
    /// sparse vector–matrix products.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::InvalidDistribution`] for a bad initial
    /// distribution and [`CtmcError::InvalidArgument`] for a negative time
    /// or bad truncation `eps`.
    pub fn transient_distribution(
        &self,
        pi0: &[f64],
        t: f64,
        eps: f64,
    ) -> Result<Vec<f64>, CtmcError> {
        if pi0.len() != self.n {
            return Err(CtmcError::InvalidDistribution(format!(
                "distribution has length {}, expected {}",
                pi0.len(),
                self.n
            )));
        }
        mfcsl_math::simplex::check_distribution(pi0, mfcsl_math::simplex::DEFAULT_SUM_TOL)
            .map_err(|e| CtmcError::InvalidDistribution(e.to_string()))?;
        let prop = crate::propagator::SparsePropagator::new(self);
        crate::propagator::propagate_distribution(&prop, pi0, t, eps)
    }

    /// [`SparseCtmc::transient_distribution`] with each uniformized step
    /// split into column blocks on `pool` — bitwise identical to the
    /// serial path at any thread count (see
    /// [`crate::propagator::propagate_distribution_on`]).
    ///
    /// # Errors
    ///
    /// As [`SparseCtmc::transient_distribution`].
    pub fn transient_distribution_on(
        &self,
        pool: Option<&mfcsl_pool::ThreadPool>,
        pi0: &[f64],
        t: f64,
        eps: f64,
    ) -> Result<Vec<f64>, CtmcError> {
        if pi0.len() != self.n {
            return Err(CtmcError::InvalidDistribution(format!(
                "distribution has length {}, expected {}",
                pi0.len(),
                self.n
            )));
        }
        mfcsl_math::simplex::check_distribution(pi0, mfcsl_math::simplex::DEFAULT_SUM_TOL)
            .map_err(|e| CtmcError::InvalidDistribution(e.to_string()))?;
        let prop = crate::propagator::SparsePropagator::new(self);
        crate::propagator::propagate_distribution_on(pool, &prop, pi0, t, eps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transient::transient_distribution;
    use crate::CtmcBuilder;
    use proptest::prelude::*;

    #[test]
    fn construction_and_accessors() {
        let c = SparseCtmc::from_triplets(3, &[(0, 1, 1.0), (0, 2, 0.5), (2, 0, 2.0)]).unwrap();
        assert_eq!(c.n_states(), 3);
        assert_eq!(c.n_transitions(), 3);
        assert_eq!(c.exit_rate(0), 1.5);
        assert_eq!(c.exit_rate(1), 0.0);
        assert_eq!(c.max_exit_rate(), 2.0);
    }

    #[test]
    fn duplicate_triplets_accumulate() {
        let c = SparseCtmc::from_triplets(2, &[(0, 1, 1.0), (0, 1, 2.0)]).unwrap();
        assert_eq!(c.exit_rate(0), 3.0);
        let pi = c.transient_distribution(&[1.0, 0.0], 100.0, 1e-12).unwrap();
        assert!(pi[1] > 1.0 - 1e-9);
    }

    #[test]
    fn validation() {
        assert!(SparseCtmc::from_triplets(0, &[]).is_err());
        assert!(SparseCtmc::from_triplets(2, &[(0, 2, 1.0)]).is_err());
        assert!(SparseCtmc::from_triplets(2, &[(0, 0, 1.0)]).is_err());
        assert!(SparseCtmc::from_triplets(2, &[(0, 1, -1.0)]).is_err());
        assert!(SparseCtmc::from_triplets(2, &[(0, 1, f64::NAN)]).is_err());
        let c = SparseCtmc::from_triplets(2, &[(0, 1, 1.0)]).unwrap();
        assert!(c.transient_distribution(&[1.0], 1.0, 1e-12).is_err());
        assert!(c.transient_distribution(&[1.0, 0.0], -1.0, 1e-12).is_err());
    }

    #[test]
    fn frozen_chain_stays_put() {
        let c = SparseCtmc::from_triplets(2, &[(0, 1, 0.0)]).unwrap();
        let pi = c.transient_distribution(&[0.3, 0.7], 5.0, 1e-12).unwrap();
        assert_eq!(pi, vec![0.3, 0.7]);
    }

    proptest! {
        /// Sparse and dense uniformization agree on random chains.
        #[test]
        fn prop_matches_dense(
            rates in proptest::collection::vec(0.0_f64..3.0, 12),
            t in 0.01_f64..4.0,
        ) {
            let names = ["a", "b", "c", "d"];
            let mut builder = CtmcBuilder::new();
            for name in names {
                builder = builder.state(name, [name]);
            }
            let mut triplets = Vec::new();
            let mut idx = 0;
            for i in 0..4usize {
                for j in 0..4usize {
                    if i != j {
                        let r = rates[idx];
                        idx += 1;
                        builder = builder.transition(names[i], names[j], r).unwrap();
                        triplets.push((i, j, r));
                    }
                }
            }
            let dense = builder.build().unwrap();
            let sparse = SparseCtmc::from_triplets(4, &triplets).unwrap();
            let pi0 = [0.4, 0.3, 0.2, 0.1];
            let pd = transient_distribution(&dense, &pi0, t, 1e-13).unwrap();
            let ps = sparse.transient_distribution(&pi0, t, 1e-13).unwrap();
            for (a, b) in pd.iter().zip(&ps) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
    }
}
