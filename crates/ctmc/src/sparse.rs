//! Sparse CTMCs on the shared CSC matrix type.
//!
//! The lumped overall chain of a finite-`N` mean-field system has
//! `C(N+K-1, K-1)` states but only `K(K-1)` transitions per state, so a
//! dense generator wastes quadratic memory. [`SparseCtmc`] stores only the
//! off-diagonal rates — as a [`mfcsl_math::CscMatrix`] whose column `j`
//! lists the *incoming* transitions of state `j` — and supports the one
//! operation transient analysis needs: the uniformized vector–matrix
//! product of uniformization. The same CSC storage feeds the sparse
//! stationary solver in [`crate::steady`].

use mfcsl_math::CscMatrix;
use serde::{Deserialize, Serialize};

use crate::CtmcError;

/// A CTMC generator in sparse form (off-diagonal rates only; the diagonal
/// is implied by the row sums). Stored in CSC order so that the incoming
/// transitions of each state are contiguous — the layout both the
/// column-gather step kernel of [`crate::propagator::SparsePropagator`]
/// and the stationary bordered operator of [`crate::steady`] read.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseCtmc {
    /// Off-diagonal rates: entry `(i, j)` is the rate of `i → j`.
    csc: CscMatrix,
    /// Row sums of `csc` (exit rates), precomputed once.
    exit: Vec<f64>,
}

impl SparseCtmc {
    /// Builds a sparse chain from `(from, to, rate)` triplets.
    ///
    /// Duplicate `(from, to)` pairs accumulate into a single stored entry.
    /// Self-loops are rejected; rates must be finite and non-negative.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::InvalidGenerator`] for an empty state space,
    /// out-of-range indices, self-loops, or invalid rates.
    ///
    /// # Example
    ///
    /// ```
    /// use mfcsl_ctmc::sparse::SparseCtmc;
    ///
    /// let c = SparseCtmc::from_triplets(2, &[(0, 1, 2.0), (1, 0, 1.0)])?;
    /// assert_eq!(c.exit_rate(0), 2.0);
    /// let pi = c.transient_distribution(&[1.0, 0.0], 10.0, 1e-12)?;
    /// assert!((pi[0] - 1.0 / 3.0).abs() < 1e-9);
    /// # Ok::<(), mfcsl_ctmc::CtmcError>(())
    /// ```
    pub fn from_triplets(n: usize, triplets: &[(usize, usize, f64)]) -> Result<Self, CtmcError> {
        if n == 0 {
            return Err(CtmcError::InvalidGenerator(
                "chain must have at least one state".into(),
            ));
        }
        for &(from, to, rate) in triplets {
            if from >= n || to >= n {
                return Err(CtmcError::InvalidGenerator(format!(
                    "transition ({from}, {to}) out of range for {n} states"
                )));
            }
            if from == to {
                return Err(CtmcError::InvalidGenerator(format!(
                    "self-loop on state {from}"
                )));
            }
            if !rate.is_finite() || rate < 0.0 {
                return Err(CtmcError::InvalidGenerator(format!(
                    "rate {rate} at ({from}, {to}) must be finite and non-negative"
                )));
            }
        }
        let csc = CscMatrix::from_triplets(n, n, triplets)
            .map_err(|e| CtmcError::InvalidGenerator(e.to_string()))?;
        let mut exit = vec![0.0; n];
        for &(from, _, rate) in triplets {
            exit[from] += rate;
        }
        Ok(SparseCtmc { csc, exit })
    }

    /// Number of states.
    #[must_use]
    pub fn n_states(&self) -> usize {
        self.exit.len()
    }

    /// Number of stored transitions (after accumulating duplicates).
    #[must_use]
    pub fn n_transitions(&self) -> usize {
        self.csc.nnz()
    }

    /// Exit rate of a state.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[must_use]
    pub fn exit_rate(&self, s: usize) -> f64 {
        self.exit[s]
    }

    /// The largest exit rate (uniformization rate lower bound).
    #[must_use]
    pub fn max_exit_rate(&self) -> f64 {
        self.exit.iter().fold(0.0_f64, |m, &v| m.max(v))
    }

    /// Exit rates of every state (row sums of the off-diagonal rates).
    #[must_use]
    pub fn exit_rates(&self) -> &[f64] {
        &self.exit
    }

    /// The off-diagonal rates in CSC order: column `j` holds the incoming
    /// transitions of state `j`, sorted by ascending source row — the
    /// order the gather kernels sum in.
    #[must_use]
    pub fn rates_csc(&self) -> &CscMatrix {
        &self.csc
    }

    /// Bytes held by the sparse representation (pattern + rates + exit).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.csc.memory_bytes() + self.exit.len() * std::mem::size_of::<f64>()
    }

    /// Transient distribution `π(t) = π(0)·e^{Qt}` by uniformization with
    /// sparse vector–matrix products.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::InvalidDistribution`] for a bad initial
    /// distribution and [`CtmcError::InvalidArgument`] for a negative time
    /// or bad truncation `eps`.
    pub fn transient_distribution(
        &self,
        pi0: &[f64],
        t: f64,
        eps: f64,
    ) -> Result<Vec<f64>, CtmcError> {
        self.transient_distribution_on(None, pi0, t, eps)
    }

    /// [`SparseCtmc::transient_distribution`] with each uniformized step
    /// split into column blocks on `pool` — bitwise identical to the
    /// serial path at any thread count (see
    /// [`crate::propagator::propagate_distribution_on`]).
    ///
    /// # Errors
    ///
    /// As [`SparseCtmc::transient_distribution`].
    pub fn transient_distribution_on(
        &self,
        pool: Option<&mfcsl_pool::ThreadPool>,
        pi0: &[f64],
        t: f64,
        eps: f64,
    ) -> Result<Vec<f64>, CtmcError> {
        if pi0.len() != self.n_states() {
            return Err(CtmcError::InvalidDistribution(format!(
                "distribution has length {}, expected {}",
                pi0.len(),
                self.n_states()
            )));
        }
        mfcsl_math::simplex::check_distribution(pi0, mfcsl_math::simplex::DEFAULT_SUM_TOL)
            .map_err(|e| CtmcError::InvalidDistribution(e.to_string()))?;
        let prop = crate::propagator::SparsePropagator::new(self);
        crate::propagator::propagate_distribution_on(pool, &prop, pi0, t, eps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transient::transient_distribution;
    use crate::CtmcBuilder;
    use proptest::prelude::*;

    #[test]
    fn construction_and_accessors() {
        let c = SparseCtmc::from_triplets(3, &[(0, 1, 1.0), (0, 2, 0.5), (2, 0, 2.0)]).unwrap();
        assert_eq!(c.n_states(), 3);
        assert_eq!(c.n_transitions(), 3);
        assert_eq!(c.exit_rate(0), 1.5);
        assert_eq!(c.exit_rate(1), 0.0);
        assert_eq!(c.max_exit_rate(), 2.0);
    }

    #[test]
    fn duplicate_triplets_accumulate() {
        let c = SparseCtmc::from_triplets(2, &[(0, 1, 1.0), (0, 1, 2.0)]).unwrap();
        assert_eq!(c.exit_rate(0), 3.0);
        assert_eq!(c.n_transitions(), 1);
        let pi = c.transient_distribution(&[1.0, 0.0], 100.0, 1e-12).unwrap();
        assert!(pi[1] > 1.0 - 1e-9);
    }

    #[test]
    fn validation() {
        assert!(SparseCtmc::from_triplets(0, &[]).is_err());
        assert!(SparseCtmc::from_triplets(2, &[(0, 2, 1.0)]).is_err());
        assert!(SparseCtmc::from_triplets(2, &[(0, 0, 1.0)]).is_err());
        assert!(SparseCtmc::from_triplets(2, &[(0, 1, -1.0)]).is_err());
        assert!(SparseCtmc::from_triplets(2, &[(0, 1, f64::NAN)]).is_err());
        let c = SparseCtmc::from_triplets(2, &[(0, 1, 1.0)]).unwrap();
        assert!(c.transient_distribution(&[1.0], 1.0, 1e-12).is_err());
        assert!(c.transient_distribution(&[1.0, 0.0], -1.0, 1e-12).is_err());
    }

    #[test]
    fn frozen_chain_stays_put() {
        let c = SparseCtmc::from_triplets(2, &[(0, 1, 0.0)]).unwrap();
        let pi = c.transient_distribution(&[0.3, 0.7], 5.0, 1e-12).unwrap();
        assert_eq!(pi, vec![0.3, 0.7]);
    }

    #[test]
    fn csc_layout_lists_incoming_transitions() {
        let c = SparseCtmc::from_triplets(3, &[(0, 2, 1.0), (1, 2, 0.5), (2, 0, 2.0)]).unwrap();
        let (rows, rates) = c.rates_csc().col(2);
        assert_eq!(rows, &[0, 1]);
        assert_eq!(rates, &[1.0, 0.5]);
        assert!(c.memory_bytes() < 1024);
    }

    proptest! {
        /// Sparse and dense uniformization agree on random chains.
        #[test]
        fn prop_matches_dense(
            rates in proptest::collection::vec(0.0_f64..3.0, 12),
            t in 0.01_f64..4.0,
        ) {
            let names = ["a", "b", "c", "d"];
            let mut builder = CtmcBuilder::new();
            for name in names {
                builder = builder.state(name, [name]);
            }
            let mut triplets = Vec::new();
            let mut idx = 0;
            for i in 0..4usize {
                for j in 0..4usize {
                    if i != j {
                        let r = rates[idx];
                        idx += 1;
                        builder = builder.transition(names[i], names[j], r).unwrap();
                        triplets.push((i, j, r));
                    }
                }
            }
            let dense = builder.build().unwrap();
            let sparse = SparseCtmc::from_triplets(4, &triplets).unwrap();
            let pi0 = [0.4, 0.3, 0.2, 0.1];
            let pd = transient_distribution(&dense, &pi0, t, 1e-13).unwrap();
            let ps = sparse.transient_distribution(&pi0, t, 1e-13).unwrap();
            for (a, b) in pd.iter().zip(&ps) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
    }
}
