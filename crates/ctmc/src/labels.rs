//! Atomic-proposition labeling of states.
//!
//! Def. 1 of the paper equips each local state with a set of *local atomic
//! properties* (`LAP`). Labels are plain strings; each state holds a sorted
//! set of them.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::CtmcError;

/// The labeling function `L : S → 2^LAP` of a chain.
///
/// # Example
///
/// ```
/// use mfcsl_ctmc::Labeling;
///
/// let mut l = Labeling::new(3);
/// l.add(0, "not_infected");
/// l.add(1, "infected");
/// l.add(2, "infected");
/// l.add(2, "active");
/// assert!(l.has(2, "infected"));
/// assert_eq!(l.states_with("infected"), vec![1, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Labeling {
    labels: Vec<BTreeSet<String>>,
}

impl Labeling {
    /// Creates an empty labeling for `n_states` states.
    #[must_use]
    pub fn new(n_states: usize) -> Self {
        Labeling {
            labels: vec![BTreeSet::new(); n_states],
        }
    }

    /// Number of states covered.
    #[must_use]
    pub fn n_states(&self) -> usize {
        self.labels.len()
    }

    /// Adds label `lap` to state `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn add(&mut self, state: usize, lap: impl Into<String>) {
        self.labels[state].insert(lap.into());
    }

    /// Returns `true` if `state` carries label `lap`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[must_use]
    pub fn has(&self, state: usize, lap: &str) -> bool {
        self.labels[state].contains(lap)
    }

    /// The labels of `state`, sorted.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[must_use]
    pub fn of(&self, state: usize) -> &BTreeSet<String> {
        &self.labels[state]
    }

    /// All states carrying label `lap`, in increasing order.
    #[must_use]
    pub fn states_with(&self, lap: &str) -> Vec<usize> {
        (0..self.labels.len())
            .filter(|&s| self.labels[s].contains(lap))
            .collect()
    }

    /// The set of all labels used anywhere, sorted.
    #[must_use]
    pub fn alphabet(&self) -> BTreeSet<String> {
        self.labels.iter().flatten().cloned().collect()
    }

    /// Checks that `state` is a valid index.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::StateIndexOutOfRange`] otherwise.
    pub fn check_state(&self, state: usize) -> Result<(), CtmcError> {
        if state < self.labels.len() {
            Ok(())
        } else {
            Err(CtmcError::StateIndexOutOfRange {
                index: state,
                n_states: self.labels.len(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_operations() {
        let mut l = Labeling::new(2);
        assert_eq!(l.n_states(), 2);
        l.add(0, "a");
        l.add(0, "b");
        l.add(1, "a");
        assert!(l.has(0, "b"));
        assert!(!l.has(1, "b"));
        assert_eq!(l.states_with("a"), vec![0, 1]);
        assert_eq!(l.states_with("zzz"), Vec::<usize>::new());
        assert_eq!(l.of(0).len(), 2);
    }

    #[test]
    fn alphabet_collects_all_labels() {
        let mut l = Labeling::new(2);
        l.add(0, "x");
        l.add(1, "y");
        l.add(1, "x");
        let a = l.alphabet();
        assert_eq!(a.len(), 2);
        assert!(a.contains("x") && a.contains("y"));
    }

    #[test]
    fn check_state_bounds() {
        let l = Labeling::new(1);
        assert!(l.check_state(0).is_ok());
        assert!(matches!(
            l.check_state(1),
            Err(CtmcError::StateIndexOutOfRange { .. })
        ));
    }

    #[test]
    fn duplicate_adds_are_idempotent() {
        let mut l = Labeling::new(1);
        l.add(0, "a");
        l.add(0, "a");
        assert_eq!(l.of(0).len(), 1);
    }
}
