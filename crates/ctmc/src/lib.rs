//! Continuous-time Markov chain substrate.
//!
//! The local model `𝓜ˡ` of a mean-field system (Def. 1 of the paper) is a
//! CTMC whose rates may depend on the global occupancy vector; with the
//! occupancy frozen it is an ordinary time-homogeneous CTMC, and along a
//! mean-field trajectory it is a time-inhomogeneous one. This crate provides
//! both views plus the standard machinery CSL model checking needs:
//!
//! * [`ctmc::Ctmc`] / [`ctmc::CtmcBuilder`] — validated generator matrices
//!   with state names and atomic-proposition labels;
//! * [`transient`] — transient distributions and probability matrices via
//!   uniformization (with a self-contained Poisson-layer computation) and
//!   via the matrix exponential, cross-checkable against each other;
//! * [`steady`] — Tarjan SCC / BSCC decomposition and exact steady-state
//!   distributions for arbitrary (also reducible) chains;
//! * [`absorb`] — the formula-driven chain transformations `𝓜[Φ]` of CSL
//!   model checking (making states absorbing);
//! * [`dtmc`] — the embedded and uniformized discrete-time chains;
//! * [`inhomogeneous`] — time-varying generators `Q(t)` and the Kolmogorov
//!   equations (Eq. 5 of the paper) solved with `mfcsl-ode`;
//! * [`sparse`] — CSR generators with sparse uniformization, sized for
//!   the huge lumped overall chains of `mfcsl-sim`;
//! * [`propagator`] — the backend-agnostic uniformization step kernel
//!   shared by the dense and sparse transient solvers, with a size-based
//!   backend selection heuristic;
//! * [`simulate`] — exact path sampling for homogeneous chains and thinning
//!   for inhomogeneous ones, the statistical baseline for every checker.
//!
//! # Example
//!
//! ```
//! use mfcsl_ctmc::CtmcBuilder;
//!
//! # fn main() -> Result<(), mfcsl_ctmc::CtmcError> {
//! let ctmc = CtmcBuilder::new()
//!     .state("up", ["working"])
//!     .state("down", ["failed"])
//!     .transition("up", "down", 0.1)?
//!     .transition("down", "up", 2.0)?
//!     .build()?;
//! let pi = mfcsl_ctmc::steady::steady_state(&ctmc)?;
//! assert!((pi[0] - 2.0 / 2.1).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

// `!(x > 0.0)`-style guards are used deliberately throughout: unlike
// `x <= 0.0`, they classify NaN as invalid input instead of letting it
// through, which is exactly the intent of the validation sites.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod absorb;
pub mod ctmc;
pub mod dtmc;
pub mod error;
pub mod inhomogeneous;
pub mod labels;
pub mod propagator;
pub mod simulate;
pub mod sparse;
pub mod steady;
pub mod transient;

pub use ctmc::{Ctmc, CtmcBuilder};
pub use error::CtmcError;
pub use labels::Labeling;
