//! Exact path sampling.
//!
//! Sampled paths are the statistical ground truth against which every
//! analytic checker in the workspace is validated: the probability of a CSL
//! path formula can always be estimated by sampling paths and counting.
//!
//! * homogeneous chains are simulated directly (exponential holding times,
//!   embedded jump probabilities);
//! * time-inhomogeneous chains are simulated by **thinning** (Lewis &
//!   Shedler): candidate events from a Poisson process at an upper-bound
//!   rate are accepted with probability `rate(t)/bound`.

use rand::Rng;

use crate::inhomogeneous::TimeVaryingGenerator;
use crate::{Ctmc, CtmcError};

/// A sampled right-continuous CTMC path on `[t_start, t_end]`.
///
/// `states[i]` is occupied on `[times[i], times[i+1])` (with the last state
/// occupied until `t_end`).
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    states: Vec<usize>,
    times: Vec<f64>,
    t_end: f64,
}

impl Path {
    /// Builds a path from parallel state/entry-time arrays.
    ///
    /// # Errors
    ///
    /// Returns [`CtmcError::InvalidArgument`] if the arrays are empty or of
    /// different lengths, the times are not strictly increasing, or
    /// `t_end` precedes the last entry time.
    pub fn new(states: Vec<usize>, times: Vec<f64>, t_end: f64) -> Result<Self, CtmcError> {
        if states.is_empty() || states.len() != times.len() {
            return Err(CtmcError::InvalidArgument(format!(
                "path arrays must be nonempty and equal length ({} states, {} times)",
                states.len(),
                times.len()
            )));
        }
        if times.windows(2).any(|w| w[0] >= w[1]) {
            return Err(CtmcError::InvalidArgument(
                "entry times must be strictly increasing".into(),
            ));
        }
        if t_end < *times.last().expect("nonempty") {
            return Err(CtmcError::InvalidArgument(format!(
                "t_end = {t_end} precedes the last jump"
            )));
        }
        Ok(Path {
            states,
            times,
            t_end,
        })
    }

    /// Start time of the path.
    #[must_use]
    pub fn t_start(&self) -> f64 {
        self.times[0]
    }

    /// End of the observation window.
    #[must_use]
    pub fn t_end(&self) -> f64 {
        self.t_end
    }

    /// Number of jumps along the path.
    #[must_use]
    pub fn n_jumps(&self) -> usize {
        self.states.len() - 1
    }

    /// The visited states in order.
    #[must_use]
    pub fn states(&self) -> &[usize] {
        &self.states
    }

    /// Entry times (parallel to [`Path::states`]).
    #[must_use]
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The state occupied at time `t` (`σ@t` in the paper's notation).
    /// Clamps outside the observation window.
    #[must_use]
    pub fn state_at(&self, t: f64) -> usize {
        if t <= self.times[0] {
            return self.states[0];
        }
        let i = match self.times.partition_point(|&x| x <= t) {
            0 => 0,
            p => p - 1,
        };
        self.states[i]
    }

    /// Iterates over `(state, entry_time, exit_time)` sojourns.
    pub fn sojourns(&self) -> impl Iterator<Item = (usize, f64, f64)> + '_ {
        (0..self.states.len()).map(move |i| {
            let exit = if i + 1 < self.times.len() {
                self.times[i + 1]
            } else {
                self.t_end
            };
            (self.states[i], self.times[i], exit)
        })
    }
}

/// Samples a path of a time-homogeneous chain from `start` over
/// `[0, t_end]`.
///
/// # Errors
///
/// Returns [`CtmcError::StateIndexOutOfRange`] for a bad start state and
/// [`CtmcError::InvalidArgument`] for a negative horizon.
pub fn sample_path<R: Rng + ?Sized>(
    ctmc: &Ctmc,
    start: usize,
    t_end: f64,
    rng: &mut R,
) -> Result<Path, CtmcError> {
    ctmc.labeling().check_state(start)?;
    if !(t_end >= 0.0) || !t_end.is_finite() {
        return Err(CtmcError::InvalidArgument(format!(
            "horizon must be finite and non-negative, got {t_end}"
        )));
    }
    let q = ctmc.generator();
    let n = ctmc.n_states();
    let mut states = vec![start];
    let mut times = vec![0.0];
    let mut s = start;
    let mut t = 0.0;
    loop {
        let exit = ctmc.exit_rate(s);
        if exit <= 0.0 {
            break; // absorbing
        }
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        t += -u.ln() / exit;
        if t >= t_end {
            break;
        }
        // Choose the successor proportionally to its rate.
        let mut pick = rng.gen_range(0.0..exit);
        let mut next = s;
        for j in 0..n {
            if j == s {
                continue;
            }
            let r = q[(s, j)];
            if r <= 0.0 {
                continue;
            }
            if pick < r {
                next = j;
                break;
            }
            pick -= r;
        }
        s = next;
        states.push(s);
        times.push(t);
    }
    Path::new(states, times, t_end)
}

/// Samples a path of a time-inhomogeneous chain by thinning.
///
/// `rate_bound` must dominate every exit rate on `[0, t_end]`; it is
/// validated lazily (an observed exit rate above the bound is an error, as
/// the sample would be biased).
///
/// # Errors
///
/// Returns [`CtmcError::InvalidArgument`] for a non-positive bound, a
/// negative horizon, or a violated bound.
pub fn sample_path_inhomogeneous<G: TimeVaryingGenerator, R: Rng + ?Sized>(
    gen: &G,
    start: usize,
    t_end: f64,
    rate_bound: f64,
    rng: &mut R,
) -> Result<Path, CtmcError> {
    let n = gen.n_states();
    if start >= n {
        return Err(CtmcError::StateIndexOutOfRange {
            index: start,
            n_states: n,
        });
    }
    if !(t_end >= 0.0) || !t_end.is_finite() {
        return Err(CtmcError::InvalidArgument(format!(
            "horizon must be finite and non-negative, got {t_end}"
        )));
    }
    if !(rate_bound > 0.0) || !rate_bound.is_finite() {
        return Err(CtmcError::InvalidArgument(format!(
            "rate bound must be positive and finite, got {rate_bound}"
        )));
    }
    let mut q = mfcsl_math::Matrix::zeros(n, n);
    let mut states = vec![start];
    let mut times = vec![0.0];
    let mut s = start;
    let mut t = 0.0;
    loop {
        // Candidate event from the dominating Poisson process.
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        t += -u.ln() / rate_bound;
        if t >= t_end {
            break;
        }
        gen.write_generator(t, &mut q);
        let exit = -q[(s, s)];
        if exit > rate_bound * (1.0 + 1e-9) {
            return Err(CtmcError::InvalidArgument(format!(
                "exit rate {exit} at t = {t} exceeds the thinning bound {rate_bound}"
            )));
        }
        // Accept with probability exit/bound, then pick a successor.
        if rng.gen_range(0.0..1.0) < exit / rate_bound {
            let mut pick = rng.gen_range(0.0..exit);
            let mut next = s;
            for j in 0..n {
                if j == s {
                    continue;
                }
                let r = q[(s, j)];
                if r <= 0.0 {
                    continue;
                }
                if pick < r {
                    next = j;
                    break;
                }
                pick -= r;
            }
            if next != s {
                s = next;
                states.push(s);
                times.push(t);
            }
        }
    }
    Path::new(states, times, t_end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inhomogeneous::{ConstGenerator, FnGenerator};
    use crate::CtmcBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_state() -> Ctmc {
        CtmcBuilder::new()
            .state("a", ["a"])
            .state("b", ["b"])
            .transition("a", "b", 2.0)
            .unwrap()
            .transition("b", "a", 1.0)
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn path_accessors() {
        let p = Path::new(vec![0, 1, 0], vec![0.0, 1.0, 2.5], 4.0).unwrap();
        assert_eq!(p.t_start(), 0.0);
        assert_eq!(p.t_end(), 4.0);
        assert_eq!(p.n_jumps(), 2);
        assert_eq!(p.state_at(0.0), 0);
        assert_eq!(p.state_at(0.99), 0);
        assert_eq!(p.state_at(1.0), 1);
        assert_eq!(p.state_at(3.0), 0);
        assert_eq!(p.state_at(99.0), 0);
        let soj: Vec<_> = p.sojourns().collect();
        assert_eq!(soj, vec![(0, 0.0, 1.0), (1, 1.0, 2.5), (0, 2.5, 4.0)]);
    }

    #[test]
    fn path_validation() {
        assert!(Path::new(vec![], vec![], 1.0).is_err());
        assert!(Path::new(vec![0], vec![0.0, 1.0], 2.0).is_err());
        assert!(Path::new(vec![0, 1], vec![0.0, 0.0], 2.0).is_err());
        assert!(Path::new(vec![0, 1], vec![0.0, 3.0], 2.0).is_err());
    }

    #[test]
    fn homogeneous_sampling_matches_transient() {
        // Fraction of paths in state a at t compared to uniformization.
        let c = two_state();
        let mut rng = StdRng::seed_from_u64(42);
        let t = 0.7;
        let n_paths = 20_000;
        let mut count = 0usize;
        for _ in 0..n_paths {
            let p = sample_path(&c, 0, t, &mut rng).unwrap();
            if p.state_at(t) == 0 {
                count += 1;
            }
        }
        let est = count as f64 / n_paths as f64;
        let exact = crate::transient::transient_distribution(&c, &[1.0, 0.0], t, 1e-13).unwrap()[0];
        assert!(
            (est - exact).abs() < 0.015,
            "estimate {est} vs exact {exact}"
        );
    }

    #[test]
    fn absorbing_state_ends_path() {
        let c = CtmcBuilder::new()
            .state("live", ["l"])
            .state("dead", ["d"])
            .transition("live", "dead", 100.0)
            .unwrap()
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let p = sample_path(&c, 0, 10.0, &mut rng).unwrap();
        assert_eq!(p.state_at(10.0), 1);
        assert_eq!(p.n_jumps(), 1);
    }

    #[test]
    fn thinning_matches_direct_for_constant_rates() {
        let c = two_state();
        let gen = ConstGenerator::new(&c);
        let mut rng = StdRng::seed_from_u64(7);
        let t = 0.7;
        let n_paths = 20_000;
        let mut count = 0usize;
        for _ in 0..n_paths {
            let p = sample_path_inhomogeneous(&gen, 0, t, 2.5, &mut rng).unwrap();
            if p.state_at(t) == 0 {
                count += 1;
            }
        }
        let est = count as f64 / n_paths as f64;
        let exact = crate::transient::transient_distribution(&c, &[1.0, 0.0], t, 1e-13).unwrap()[0];
        assert!(
            (est - exact).abs() < 0.015,
            "estimate {est} vs exact {exact}"
        );
    }

    #[test]
    fn thinning_matches_analytic_time_varying_rate() {
        // One-way chain with rate t: survival to T is exp(-T²/2).
        let gen = FnGenerator::new(2, |t: f64, q: &mut mfcsl_math::Matrix| {
            q[(0, 0)] = -t;
            q[(0, 1)] = t;
            q[(1, 0)] = 0.0;
            q[(1, 1)] = 0.0;
        });
        let mut rng = StdRng::seed_from_u64(11);
        let t_end = 1.5;
        let n_paths = 20_000;
        let mut survived = 0usize;
        for _ in 0..n_paths {
            let p = sample_path_inhomogeneous(&gen, 0, t_end, 1.5, &mut rng).unwrap();
            if p.state_at(t_end) == 0 {
                survived += 1;
            }
        }
        let est = survived as f64 / n_paths as f64;
        let exact = (-t_end * t_end / 2.0_f64).exp();
        assert!(
            (est - exact).abs() < 0.015,
            "estimate {est} vs exact {exact}"
        );
    }

    #[test]
    fn thinning_detects_violated_bound() {
        let gen = FnGenerator::new(2, |_t: f64, q: &mut mfcsl_math::Matrix| {
            q[(0, 0)] = -10.0;
            q[(0, 1)] = 10.0;
            q[(1, 0)] = 0.0;
            q[(1, 1)] = 0.0;
        });
        let mut rng = StdRng::seed_from_u64(3);
        let err = sample_path_inhomogeneous(&gen, 0, 10.0, 1.0, &mut rng).unwrap_err();
        assert!(matches!(err, CtmcError::InvalidArgument(_)));
    }

    #[test]
    fn sampling_validates_arguments() {
        let c = two_state();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(sample_path(&c, 9, 1.0, &mut rng).is_err());
        assert!(sample_path(&c, 0, -1.0, &mut rng).is_err());
        let gen = ConstGenerator::new(&c);
        assert!(sample_path_inhomogeneous(&gen, 9, 1.0, 3.0, &mut rng).is_err());
        assert!(sample_path_inhomogeneous(&gen, 0, 1.0, 0.0, &mut rng).is_err());
        assert!(sample_path_inhomogeneous(&gen, 0, f64::NAN, 3.0, &mut rng).is_err());
    }
}
